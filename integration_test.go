package eona_test

// Full-stack integration: the Figure 5 decision cycle with the interface
// data flowing over REAL loopback HTTP through the looking-glass servers —
// collector → A2I server → client → InfP policy, and ISP state → I2A
// server → client → AppP policy — rather than through in-process views.
// This is the composition a production deployment would run; the simulated
// network only stands in for the data plane.

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"eona"
	"eona/internal/control"
	"eona/internal/core"
	"eona/internal/isp"
	"eona/internal/netsim"
)

func TestFullStackFigure5OverHTTP(t *testing.T) {
	// --- Simulated data plane: the Figure 5 topology. ---
	topo := netsim.NewTopology()
	access := topo.AddLink("clients", "border", 1e9, 2*time.Millisecond, "access")
	linkB := topo.AddLink("border", "cdnX", 100e6, time.Millisecond, "peering-B")
	linkC := topo.AddLink("border", "ixp", 400e6, 3*time.Millisecond, "peering-C")
	topo.AddLink("ixp", "cdnX", 400e6, time.Millisecond, "ixp-cdnX")
	topo.AddLink("ixp", "cdnY", 80e6, time.Millisecond, "ixp-cdnY")
	net := netsim.NewNetwork(topo)
	net.MaxRate = 10e9
	ispNet := isp.New(net, isp.Config{Name: "isp1", ClientNode: "clients", Border: "border", Access: access})
	ispNet.AddPeering("B", linkB, "cdnX")
	ispNet.AddPeering("C", linkC, "cdnX", "cdnY")

	const demand = 150e6
	currentCDN := "cdnX"
	flow, err := ispNet.Connect(currentCDN, "cdnX", demand, "appp")
	if err != nil {
		t.Fatal(err)
	}

	// --- AppP looking glass: exports the traffic estimate over HTTP. ---
	apppAuth := eona.NewAuthStore()
	apppAuth.Register("isp-token", "isp1", eona.ScopeA2ITraffic)
	apppSrv := eona.NewServer(apppAuth, nil, eona.Sources{
		TrafficEstimates: func() []eona.TrafficEstimate {
			return []eona.TrafficEstimate{{AppP: "vod", CDN: currentCDN, VolumeBps: demand, Sessions: demand / 3e6}}
		},
	})
	apppTS := httptest.NewServer(apppSrv.Handler())
	defer apppTS.Close()

	// --- InfP looking glass: exports peering state over HTTP. ---
	infpAuth := eona.NewAuthStore()
	infpAuth.Register("appp-token", "vod", eona.ScopeI2APeering, eona.ScopeI2AAttrib)
	infpSrv := eona.NewServer(infpAuth, nil, eona.Sources{
		PeeringInfo: func(cdnName string) []eona.PeeringInfo {
			var out []eona.PeeringInfo
			for _, r := range ispNet.PeeringReports() {
				p := ispNet.Peering(r.PeeringID)
				for _, cn := range []string{"cdnX", "cdnY"} {
					if !p.Reaches(cn) || (cdnName != "" && cn != cdnName) {
						continue
					}
					out = append(out, eona.PeeringInfo{
						PeeringID: r.PeeringID, CDN: cn,
						Congestion:  r.Congestion,
						HeadroomBps: r.HeadroomBps, CapacityBps: r.CapacityBps,
						Current: ispNet.EgressOf(cn).ID == r.PeeringID,
					})
				}
			}
			return out
		},
		Attribution: func(cdnName string) (eona.Attribution, bool) {
			eg := ispNet.EgressOf(cdnName)
			if eg == nil {
				return eona.Attribution{}, false
			}
			att := eona.Attribution{CDN: cdnName, Segment: eona.SegmentNone}
			for _, r := range ispNet.PeeringReports() {
				if r.PeeringID == eg.ID && r.Utilization >= 0.9 {
					att.Segment = eona.SegmentPeering
					att.Level = r.Congestion
				}
			}
			return att, true
		},
	})
	infpTS := httptest.NewServer(infpSrv.Handler())
	defer infpTS.Close()

	ispClient := eona.NewClient(apppTS.URL, "isp-token")
	apppClient := eona.NewClient(infpTS.URL, "appp-token")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Precondition: default egress B is saturated by the 150 Mbps flow.
	if got := net.Congestion(linkB.ID); got != netsim.CongestionSevere {
		t.Fatalf("precondition: peering B congestion = %v, want severe", got)
	}

	infPolicy := &eona.EONAInfP{Margin: 0.1, HighWater: 0.9}
	appPolicy := &eona.EONAAppP{Threshold: 60}

	// Run three control epochs; every observation crosses HTTP.
	for epoch := 0; epoch < 3; epoch++ {
		// InfP epoch: fetch A2I over the wire, decide, actuate.
		traffic, err := ispClient.TrafficEstimates(ctx)
		if err != nil {
			t.Fatalf("epoch %d: InfP fetching A2I: %v", epoch, err)
		}
		infObs := control.InfPObs{
			Peerings: ispNet.PeeringReports(),
			Egress: map[string]string{
				"cdnX": ispNet.EgressOf("cdnX").ID,
				"cdnY": ispNet.EgressOf("cdnY").ID,
			},
			Reach: map[string][]string{"cdnX": {"B", "C"}, "cdnY": {"C"}},
			A2I:   &control.A2IView{Traffic: traffic},
		}
		for cdnName, want := range infPolicy.Decide(infObs).Egress {
			if want != ispNet.EgressOf(cdnName).ID {
				if err := ispNet.SetEgress(cdnName, want); err != nil {
					t.Fatalf("epoch %d: SetEgress: %v", epoch, err)
				}
			}
		}

		// AppP epoch: fetch I2A over the wire, decide.
		peering, err := apppClient.PeeringInfo(ctx, "")
		if err != nil {
			t.Fatalf("epoch %d: AppP fetching I2A: %v", epoch, err)
		}
		att, err := apppClient.Attribution(ctx, currentCDN)
		if err != nil {
			t.Fatalf("epoch %d: AppP fetching attribution: %v", epoch, err)
		}
		score := 100 * flow.Rate / demand // crude per-epoch QoE proxy
		appObs := control.AppPObs{
			Current: currentCDN, Score: score, DemandBps: demand,
			CDNs: []control.CDNStat{
				{Name: "cdnX", Score: score, ServingCapacityBps: 400e6},
				{Name: "cdnY", Score: 70, ServingCapacityBps: 80e6},
			},
			I2A: &control.I2AView{
				Peering:     peering,
				Attribution: map[string]core.Attribution{currentCDN: att},
			},
		}
		dec := appPolicy.Decide(appObs)
		if dec.CDN != currentCDN {
			currentCDN = dec.CDN
			if err := ispNet.Retarget(flow, currentCDN, netsim.NodeID(currentCDN)); err != nil {
				t.Fatalf("epoch %d: retarget: %v", epoch, err)
			}
		}
	}

	// Converged to the paper's green path: CDN X via peering C, full rate.
	if currentCDN != "cdnX" {
		t.Errorf("final CDN = %s, want cdnX (AppP should not have fled)", currentCDN)
	}
	if got := ispNet.EgressOf("cdnX").ID; got != "C" {
		t.Errorf("final egress = %s, want C", got)
	}
	if flow.Rate < demand*0.999 {
		t.Errorf("final delivered rate = %v, want full %v", flow.Rate, float64(demand))
	}
	if got := net.Congestion(linkB.ID); got != netsim.CongestionNone {
		t.Errorf("peering B still congested: %v", got)
	}
	if ispNet.EgressChanges != 1 {
		t.Errorf("egress changes = %d, want exactly 1 (no churn)", ispNet.EgressChanges)
	}
}
