// Lookingglass runs both sides of a live EONA exchange over real loopback
// HTTP: an AppP's looking-glass exporting A2I summaries and traffic
// estimates, an InfP's looking-glass exporting I2A peering state and
// attribution, and each side querying the other with scoped bearer tokens —
// the complete §3 architecture in one process.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"eona"
)

func main() {
	// --- AppP side: collect sessions, export A2I. ---
	col := eona.NewA2ICollector(eona.CollectorConfig{
		AppP:   "vod",
		Policy: eona.ExportPolicy{MinGroupSessions: 2},
		Window: 5 * time.Minute,
		Seed:   1,
	})
	model := eona.DefaultModel()
	for i := 0; i < 60; i++ {
		cdnName := "cdnX"
		buffering := time.Duration(i%4) * time.Second
		if i%3 == 0 {
			cdnName = "cdnY"
			buffering = time.Duration(20+i%10) * time.Second // Y is suffering
		}
		m := eona.SessionMetrics{
			StartupDelay:  time.Second,
			PlayTime:      10 * time.Minute,
			BufferingTime: buffering,
			AvgBitrate:    2.5e6,
		}
		col.Ingest(eona.RecordFrom(model, m, fmt.Sprintf("s%02d", i),
			"vod", "isp-a", cdnName, "east", time.Duration(i)*time.Second))
	}
	apppAuth := eona.NewAuthStore()
	apppAuth.Register("token-for-isp", "isp-a", eona.ScopeA2IQoE, eona.ScopeA2ITraffic)
	apppSrv := eona.NewServer(apppAuth, nil, eona.Sources{
		QoESummaries:     col.Summaries,
		TrafficEstimates: func() []eona.TrafficEstimate { return col.TrafficEstimates(60 * time.Second) },
	})
	apppURL := serve(apppSrv)

	// --- InfP side: export I2A peering state. ---
	infpAuth := eona.NewAuthStore()
	infpAuth.Register("token-for-appp", "vod", eona.ScopeI2APeering, eona.ScopeI2AAttrib)
	infpSrv := eona.NewServer(infpAuth, nil, eona.Sources{
		PeeringInfo: func(cdnName string) []eona.PeeringInfo {
			return []eona.PeeringInfo{
				{PeeringID: "B", CDN: "cdnX", Congestion: 3, HeadroomBps: 1e6, CapacityBps: 100e6, Current: true},
				{PeeringID: "C", CDN: "cdnX", Congestion: 0, HeadroomBps: 300e6, CapacityBps: 400e6},
			}
		},
		Attribution: func(cdnName string) (eona.Attribution, bool) {
			return eona.Attribution{CDN: cdnName, Segment: eona.SegmentPeering, Level: 3}, true
		},
	})
	infpURL := serve(infpSrv)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// --- The ISP queries the AppP's A2I. ---
	ispClient := eona.NewClient(apppURL, "token-for-isp")
	sums, err := ispClient.QoESummaries(ctx)
	if err != nil {
		log.Fatalf("ISP querying A2I: %v", err)
	}
	fmt.Println("ISP's view through EONA-A2I (per-CDN experience of its subscribers):")
	for _, s := range sums {
		fmt.Printf("  %s → %s: %3.0f sessions, score %5.1f, buffering %4.1f%%\n",
			s.Key.ClientISP, s.Key.CDN, s.Sessions, s.MeanScore, 100*s.MeanBufferingRatio)
	}
	traffic, err := ispClient.TrafficEstimates(ctx)
	if err != nil {
		log.Fatalf("ISP querying traffic: %v", err)
	}
	for _, te := range traffic {
		fmt.Printf("  intended volume toward %s: %.1f Mbps (%0.f sessions)\n",
			te.CDN, te.VolumeBps/1e6, te.Sessions)
	}
	fmt.Println()

	// --- The AppP queries the InfP's I2A. ---
	apppClient := eona.NewClient(infpURL, "token-for-appp")
	peering, err := apppClient.PeeringInfo(ctx, "cdnX")
	if err != nil {
		log.Fatalf("AppP querying I2A: %v", err)
	}
	fmt.Println("AppP's view through EONA-I2A (the ISP's peering state for cdnX):")
	for _, p := range peering {
		cur := ""
		if p.Current {
			cur = "  ← ISP's current egress"
		}
		fmt.Printf("  peering %s: congestion %v, headroom %.0f Mbps of %.0f%s\n",
			p.PeeringID, p.Congestion, p.HeadroomBps/1e6, p.CapacityBps/1e6, cur)
	}
	att, err := apppClient.Attribution(ctx, "cdnX")
	if err != nil {
		log.Fatalf("AppP querying attribution: %v", err)
	}
	fmt.Printf("  bottleneck attribution: %v (level %v)\n", att.Segment, att.Level)
	fmt.Println()
	fmt.Println("With both views, the AppP knows to stay on cdnX (the congested peering")
	fmt.Println("has an uncongested alternative the ISP can move to), and the ISP knows")
	fmt.Println("the offered volume it must fit — the Figure 5 oscillation never starts.")

	// --- Scope enforcement, demonstrated. ---
	if _, err := ispClient.PeeringInfo(ctx, "cdnX"); err != nil {
		fmt.Printf("\n(scope check: the ISP's A2I token cannot read I2A surfaces: %v)\n", err)
	}
}

// serve starts a looking-glass on an ephemeral loopback port and returns
// its base URL.
func serve(srv *eona.Server) string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	go func() {
		s := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
		if err := s.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Printf("serve: %v", err)
		}
	}()
	return "http://" + ln.Addr().String()
}
