// Collaborators demonstrates per-partner interface exports: one AppP, two
// ISPs with different trust levels. The same looking-glass endpoint serves
// each partner a differently-blinded view, driven by a collaborator
// registry — §3's "choose the subset of collaborators" and §4's "specify
// what can or cannot be shared", running over real loopback HTTP.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"eona"
)

func main() {
	// The AppP's raw collection: a busy group on cdnX, a small (and
	// therefore identifying) group on cdnY.
	col := eona.NewA2ICollector(eona.CollectorConfig{AppP: "vod", Window: 5 * time.Minute, Seed: 1})
	model := eona.DefaultModel()
	for i := 0; i < 40; i++ {
		m := eona.SessionMetrics{PlayTime: 10 * time.Minute, AvgBitrate: 2.5e6,
			StartupDelay: time.Second, BufferingTime: time.Duration(i%12) * time.Second}
		col.Ingest(eona.RecordFrom(model, m, fmt.Sprintf("s%d", i), "vod", "isp-a", "cdnX", "east", 0))
	}
	for i := 0; i < 2; i++ {
		m := eona.SessionMetrics{PlayTime: 5 * time.Minute, AvgBitrate: 1e6, StartupDelay: 4 * time.Second}
		col.Ingest(eona.RecordFrom(model, m, fmt.Sprintf("y%d", i), "vod", "isp-a", "cdnY", "west", 0))
	}

	// Collaborator standings: the long-standing partner gets exact
	// aggregates; the new partner gets k-anonymity, noise, and coarse
	// scores.
	reg := eona.NewRegistry()
	reg.Register(eona.Partner{
		Name:      "isp-longterm",
		Policy:    eona.ExportPolicy{},
		NoiseSeed: 11,
		Surfaces:  map[eona.Surface]bool{eona.SurfaceQoESummaries: true},
	})
	reg.Register(eona.Partner{
		Name:      "isp-new",
		Policy:    eona.ExportPolicy{MinGroupSessions: 10, NoiseEpsilon: 0.5, CoarsenScoreStep: 5},
		NoiseSeed: 22,
		Surfaces:  map[eona.Surface]bool{eona.SurfaceQoESummaries: true},
	})

	store := eona.NewAuthStore()
	store.Register("tok-longterm", "isp-longterm", eona.ScopeA2IQoE)
	store.Register("tok-new", "isp-new", eona.ScopeA2IQoE)

	srv := eona.NewServer(store, nil, eona.Sources{
		QoESummariesFor: func(partner string) []eona.QoESummary {
			if !reg.Allowed(partner, eona.SurfaceQoESummaries) {
				return nil
			}
			policy, seed := reg.PolicyFor(partner)
			return col.SummariesUnder(policy, seed)
		},
	})
	url := serve(srv)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	for _, partner := range []struct{ name, token string }{
		{"isp-longterm (trusted)", "tok-longterm"},
		{"isp-new (restricted)", "tok-new"},
	} {
		sums, err := eona.NewClient(url, partner.token).QoESummaries(ctx)
		if err != nil {
			log.Fatalf("%s: %v", partner.name, err)
		}
		fmt.Printf("%s sees %d group(s):\n", partner.name, len(sums))
		for _, s := range sums {
			fmt.Printf("  %s/%s: %.1f sessions, score %.1f\n",
				s.Key.CDN, s.Key.Cluster, s.Sessions, s.MeanScore)
		}
		fmt.Println()
	}
	fmt.Println("The restricted partner never sees the 2-session cdnY group (k-anonymity),")
	fmt.Println("and its counts and scores are noised and coarsened; the trusted partner")
	fmt.Println("sees exact aggregates. Same endpoint, same data, per-partner policy.")
}

func serve(srv *eona.Server) string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	go func() {
		s := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
		if err := s.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Printf("serve: %v", err)
		}
	}()
	return "http://" + ln.Addr().String()
}
