// Quickstart: derive an EONA interface with the §4 recipe, collect some
// client-side QoE into an A2I export, and run the headline oscillation
// experiment — the minimal tour of the public API.
package main

import (
	"fmt"
	"time"

	"eona"
)

func main() {
	// 1. The §4 recipe, executable: enumerate knobs/data with owners and
	// the global controller's uses, derive the wide interface, narrow it.
	recipe := eona.Figure5Recipe()
	iface, err := recipe.WideInterface()
	if err != nil {
		panic(err)
	}
	fmt.Println("Wide interface for the Figure 5 use case:")
	for _, item := range iface.Items {
		fmt.Printf("  %-4s %-24s needed by %v\n", item.Direction, item.Data, item.Consumers)
	}
	narrow := iface.Narrow("qoe_per_cdn", "peering_congestion", "current_egress")
	fmt.Printf("Narrowed to %d of %d attributes.\n\n", narrow.Size(), iface.Size())

	// 2. A2I collection: per-session measurements roll up into blinded
	// group summaries.
	col := eona.NewA2ICollector(eona.CollectorConfig{
		AppP:   "demo-vod",
		Policy: eona.ExportPolicy{MinGroupSessions: 3},
		Window: time.Minute,
		Seed:   7,
	})
	model := eona.DefaultModel()
	for i := 0; i < 10; i++ {
		m := eona.SessionMetrics{
			StartupDelay:  1500 * time.Millisecond,
			PlayTime:      8 * time.Minute,
			BufferingTime: time.Duration(i) * 2 * time.Second,
			AvgBitrate:    2.5e6,
		}
		rec := eona.RecordFrom(model, m, fmt.Sprintf("s%02d", i),
			"demo-vod", "isp-a", "cdnX", "east", time.Duration(i)*10*time.Second)
		col.Ingest(rec)
	}
	fmt.Println("A2I summaries:")
	for _, s := range col.Summaries() {
		fmt.Printf("  %s via %s/%s: %d sessions, score %.1f, buffering %.2f%%\n",
			s.Key.ClientISP, s.Key.CDN, s.Key.Cluster,
			int(s.Sessions), s.MeanScore, 100*s.MeanBufferingRatio)
	}
	fmt.Println()

	// 3. The headline result: independent control loops oscillate;
	// the EONA exchange converges to the paper's green path.
	if tb, ok := eona.RunExperiment("E2", eona.ExperimentConfig{Seed: 1}); ok {
		fmt.Print(tb.String())
	}
}
