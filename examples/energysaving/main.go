// Energysaving reproduces the §2 configuration-change scenario: a cluster
// operator shutting servers down off-peak. Without application visibility
// the operator is "too conservative or too aggressive"; the A2I QoE
// feedback loop finds the efficient frontier. The example prints the policy
// table and then traces the A2I-feedback controller hour by hour.
package main

import (
	"fmt"

	"eona"
)

func main() {
	r := eona.RunEnergySavingConfig(eona.ExperimentConfig{Seed: 1})
	fmt.Print(r.Table().String())
	fmt.Println()

	fmt.Println("Reading the table:")
	for _, arm := range r.Arms {
		var verdict string
		switch {
		case arm.EnergyPct == 100:
			verdict = "the QoE ceiling — and the energy bill to match"
		case arm.OverloadEpochs > 10:
			verdict = "pays for its savings in overloaded epochs (the 'too aggressive' operator)"
		case arm.EnergyPct > 70:
			verdict = "safe but wasteful (the 'too conservative' operator)"
		default:
			verdict = "QoE feedback: sleeps into the trough, wakes on the first degraded summary"
		}
		fmt.Printf("  %-34s %s\n", arm.Name+":", verdict)
	}
}
