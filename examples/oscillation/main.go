// Oscillation walks the Figure 5 scenario through four interface
// configurations — none, one-way (each direction), and the paper's two-way
// narrow interface — printing the decision traces so the limit cycle and
// its fix are visible, then compares everything against the global
// controller oracle.
package main

import (
	"fmt"
	"strings"
	"time"

	"eona"
)

func main() {
	arms := []struct {
		name       string
		appP, infP eona.Mode
	}{
		{"no sharing (status quo)", eona.ModeBaseline, eona.ModeBaseline},
		{"I2A only (ISP → app)", eona.ModeEONA, eona.ModeBaseline},
		{"A2I only (app → ISP)", eona.ModeBaseline, eona.ModeEONA},
		{"two-way narrow (EONA)", eona.ModeEONA, eona.ModeEONA},
	}

	var oracle float64
	for _, arm := range arms {
		cfg := eona.ScenarioConfig{
			Seed:     1,
			Horizon:  time.Hour,
			AppPMode: arm.appP,
			InfPMode: arm.infP,
		}
		res := eona.RunScenario(cfg)
		oracle = eona.ScenarioOracle(cfg)
		fmt.Printf("%-26s score %6.1f  switches %3d  %s\n",
			arm.name, res.MeanScore,
			res.ISPSwitches+res.AppPSwitches,
			stability(res))
		fmt.Printf("%26s egress: %s\n", "", trace(res.EgressHistory))
		fmt.Printf("%26s cdn:    %s\n\n", "", trace(res.CDNHistory))
	}
	fmt.Printf("%-26s score %6.1f  (hypothetical global controller)\n", "oracle", oracle)
}

func stability(r eona.ScenarioResult) string {
	if r.Oscillating {
		return fmt.Sprintf("LIMIT CYCLE (period %d)", r.CyclePeriod)
	}
	return "converged"
}

func trace(h []string) string {
	if len(h) > 12 {
		return strings.Join(h[:12], " ") + fmt.Sprintf(" … (%d total)", len(h))
	}
	return strings.Join(h, " ")
}
