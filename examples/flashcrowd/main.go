// Flashcrowd reproduces Figure 3 with a fleet of simulated adaptive
// players: a live-event arrival spike congests the ISP access link; the
// baseline fleet flaps between CDNs while the EONA fleet receives the
// ISP's congestion attribution and caps bitrate instead. The example also
// sweeps the crowd intensity to show where the two arms diverge.
package main

import (
	"fmt"

	"eona"
)

func main() {
	fmt.Println("Figure 3 at the default crowd intensity:")
	if tb, ok := eona.RunExperiment("E1", eona.ExperimentConfig{Seed: 1}); ok {
		fmt.Print(tb.String())
	}
	fmt.Println()

	fmt.Println("Sweep of peak arrival rate (sessions/s) — engagement minutes out of 10:")
	fmt.Printf("%8s  %22s  %22s\n", "peak", "baseline (eng | buf%)", "EONA (eng | buf%)")
	for _, peak := range []float64{0.6, 0.9, 1.2, 1.5} {
		// Both arms see an identical workload at each intensity.
		b := runArm(peak, false)
		e := runArm(peak, true)
		fmt.Printf("%8.1f  %13.2f | %5.2f  %13.2f | %5.2f\n",
			peak,
			b.EngagementMinutes, 100*b.MeanBufRatio,
			e.EngagementMinutes, 100*e.MeanBufRatio)
	}
	fmt.Println("\nThe heavier the crowd, the more the baseline's futile CDN switching")
	fmt.Println("costs, and the more the I2A congestion signal is worth.")
}

func runArm(peak float64, useEONA bool) eona.FlashCrowdArm {
	return eona.RunFlashCrowdConfig(eona.FlashCrowdConfig{Seed: 1, PeakRate: peak, EONA: useEONA})
}
