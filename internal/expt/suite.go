package expt

import (
	"runtime"
	"sync"
)

// Experiment is one runnable entry of the E-suite.
type Experiment struct {
	// ID is the short name ("E7") used by eona-bench's -only filter.
	ID string
	// Slow marks the experiments eona-bench's -skip-slow excludes.
	Slow bool
	// Run executes the experiment and renders its table.
	Run func() *Table
}

// Suite returns the full E1–E15 experiment list, each closure bound to the
// given seed. Every experiment draws randomness from its own
// rand.New(rand.NewSource(seed)) and simulates against private state, so
// suite entries are independent and safe to run concurrently with
// RunConcurrent. The caveat is wall-clock honesty, not correctness: E7's
// throughput rows are timing measurements, and co-running experiments
// steal cycles from them — run E7 alone (or with parallelism 1) when its
// absolute numbers matter.
//
// Deprecated: use BindAll(Config{Seed: seed, E7: e7}), which draws from
// the experiment registry (Definitions); Suite is a thin wrapper kept for
// callers of the original two-argument shape.
func Suite(seed int64, e7 E7Config) []Experiment {
	return BindAll(Config{Seed: seed, E7: e7})
}

// RunConcurrent executes the experiments with at most parallelism workers
// (GOMAXPROCS(0) when parallelism <= 0) and returns their tables in input
// order. parallelism 1 reproduces the sequential runner exactly.
func RunConcurrent(exps []Experiment, parallelism int) []*Table {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, parallelism)
	out := make([]*Table, len(exps))
	var wg sync.WaitGroup
	for i, e := range exps {
		wg.Add(1)
		go func(i int, e Experiment) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i] = e.Run()
		}(i, e)
	}
	wg.Wait()
	return out
}
