package expt

import (
	"fmt"
	"time"

	"eona/internal/control"
	"eona/internal/core"
	"eona/internal/faults"
	"eona/internal/isp"
	"eona/internal/lookingglass"
	"eona/internal/netsim"
	"eona/internal/privacy"
	"eona/internal/qoe"
	"eona/internal/sim"
	"eona/internal/stability"
)

// This file builds the paper's Figure 5 scenario as a reusable runner. It
// backs experiments E2 (oscillation), E6 (staleness), E8 (interface width),
// E9 (timescales), and E11 (privacy blinding).
//
// Topology (capacities configurable):
//
//	clients --access--> border --B(100M)--------> cdnX
//	                    border --C(400M)--> ixp --> cdnX (400M)
//	                                        ixp --> cdnY (80M)   ← CDN Y is undersized
//
// The AppP routes an aggregate of sessions (nominal 3 Mbps each) to one CDN
// at a time; the ISP picks the egress per CDN. Traffic is modelled as one
// aggregate fluid flow, and per-epoch QoE is scored from the delivered
// per-session rate (bitrate utility minus a starvation/buffering penalty
// and a disruption penalty on switch epochs).

// Mode selects a party's control policy generation.
type Mode int

const (
	// Baseline is today's EONA-less control loop.
	Baseline Mode = iota
	// EONA is the interface-informed control loop.
	EONA
)

// String names the mode.
func (m Mode) String() string {
	if m == EONA {
		return "eona"
	}
	return "baseline"
}

// Fig5Config parameterizes the scenario.
type Fig5Config struct {
	Seed    int64
	Horizon time.Duration // default 2h
	// Epoch is the measurement period and the default control period.
	Epoch time.Duration // default 1min
	// TEPeriod and AppPPeriod override the parties' control periods
	// (E9); both default to Epoch.
	TEPeriod, AppPPeriod time.Duration
	// Demand is the AppP's offered load in bits/s over time; default
	// constant 150 Mbps.
	Demand func(time.Duration) float64
	// NominalBitrate is the per-session target rate. Default 3 Mbps.
	NominalBitrate float64
	// Capacities (defaults: access 1G, B 100M, C 400M, ixp→X 400M,
	// ixp→Y 80M).
	AccessBps, PeerBBps, PeerCBps, IXPToXBps, IXPToYBps float64

	AppPMode, InfPMode Mode
	// Staleness delays both EONA interfaces (E6).
	Staleness time.Duration
	// NoiseEpsilon adds Laplace noise to the A2I volume estimate (E11);
	// 0 disables.
	NoiseEpsilon float64
	// Dampening wraps both parties' actions in hysteresis + randomized
	// exponential backoff (E9). DampHysteresis and DampBackoff enable
	// the two mechanisms individually for ablation.
	Dampening                   bool
	DampHysteresis, DampBackoff bool
	// Failure injection: at FailPeerBAt (if positive), peering B's
	// capacity degrades to FailPeerBToBps (e.g., a partial outage).
	FailPeerBAt    time.Duration
	FailPeerBToBps float64
	// Faults is a deterministic chaos plan (E15): its link faults are
	// scheduled onto the topology (names: access, peering-B, peering-C,
	// ixp-cdnX, ixp-cdnY) and its partner faults gate the EONA interface
	// exchange — epochs inside an outage or error-burst window publish
	// nothing, so the parties keep deciding on their last-received hints.
	// Nil injects nothing.
	Faults *faults.Plan
	// HintHalfLife is the confidence half-life applied to interface data
	// age (see lookingglass.DecayConfidence); 0 means hints never lose
	// confidence.
	HintHalfLife time.Duration
	// ConfidenceFloor is passed to the EONA policies: below this hint
	// confidence they degrade to baseline rules. 0 keeps legacy
	// always-trust behaviour.
	ConfidenceFloor float64
}

func (c *Fig5Config) applyDefaults() {
	if c.Horizon == 0 {
		c.Horizon = 2 * time.Hour
	}
	if c.Epoch == 0 {
		c.Epoch = time.Minute
	}
	if c.TEPeriod == 0 {
		c.TEPeriod = c.Epoch
	}
	if c.AppPPeriod == 0 {
		c.AppPPeriod = c.Epoch
	}
	if c.Demand == nil {
		c.Demand = func(time.Duration) float64 { return 150e6 }
	}
	if c.NominalBitrate == 0 {
		c.NominalBitrate = 3e6
	}
	if c.AccessBps == 0 {
		c.AccessBps = 1e9
	}
	if c.PeerBBps == 0 {
		c.PeerBBps = 100e6
	}
	if c.PeerCBps == 0 {
		c.PeerCBps = 400e6
	}
	if c.IXPToXBps == 0 {
		c.IXPToXBps = 400e6
	}
	if c.IXPToYBps == 0 {
		c.IXPToYBps = 80e6
	}
}

// Fig5Result summarizes a run.
type Fig5Result struct {
	Config Fig5Config
	// MeanScore is the mean per-epoch QoE score after warm-up.
	MeanScore float64
	// ISPSwitches and AppPSwitches count knob changes over the run.
	ISPSwitches, AppPSwitches int
	// Oscillating reports a live limit cycle in either knob's history,
	// with its period in epochs.
	Oscillating bool
	CyclePeriod int
	// EgressHistory and CDNHistory are the decision traces.
	EgressHistory, CDNHistory []string
	// ScoreHistory is the per-epoch QoE score after warm-up.
	ScoreHistory []float64
	// Epochs is the number of scored epochs.
	Epochs int
}

// Sparkline renders the score history as a compact unicode strip (0–100
// mapped onto eight levels) for terminal timelines.
func (r Fig5Result) Sparkline() string {
	if len(r.ScoreHistory) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	out := make([]rune, len(r.ScoreHistory))
	for i, s := range r.ScoreHistory {
		idx := int(s / 100 * float64(len(levels)))
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		if idx < 0 {
			idx = 0
		}
		out[i] = levels[idx]
	}
	return string(out)
}

const (
	cdnXName = "cdnX"
	cdnYName = "cdnY"
)

// RunFig5 executes the scenario.
func RunFig5(cfg Fig5Config) Fig5Result {
	cfg.applyDefaults()
	eng := sim.NewEngine(cfg.Seed)

	topo := netsim.NewTopology()
	access := topo.AddLink("clients", "border", cfg.AccessBps, 2*time.Millisecond, "access")
	linkB := topo.AddLink("border", "cdnX", cfg.PeerBBps, time.Millisecond, "peering-B")
	linkC := topo.AddLink("border", "ixp", cfg.PeerCBps, 3*time.Millisecond, "peering-C")
	ixpX := topo.AddLink("ixp", "cdnX", cfg.IXPToXBps, time.Millisecond, "ixp-cdnX")
	ixpY := topo.AddLink("ixp", "cdnY", cfg.IXPToYBps, time.Millisecond, "ixp-cdnY")
	net := netsim.NewNetwork(topo)
	net.MaxRate = 10e9 // aggregate flow: no per-NIC cap

	if err := cfg.Faults.Schedule(eng, net, map[string]faults.Target{
		"access":    {ID: access.ID, BaseBps: cfg.AccessBps},
		"peering-B": {ID: linkB.ID, BaseBps: cfg.PeerBBps},
		"peering-C": {ID: linkC.ID, BaseBps: cfg.PeerCBps},
		"ixp-cdnX":  {ID: ixpX.ID, BaseBps: cfg.IXPToXBps},
		"ixp-cdnY":  {ID: ixpY.ID, BaseBps: cfg.IXPToYBps},
	}); err != nil {
		panic(fmt.Sprintf("expt: fig5 fault plan: %v", err))
	}

	ispNet := isp.New(net, isp.Config{Name: "isp1", ClientNode: "clients", Border: "border", Access: access})
	ispNet.AddPeering("B", linkB, cdnXName)
	ispNet.AddPeering("C", linkC, cdnXName, cdnYName)

	model := qoe.DefaultModel()
	model.MaxBitrate = cfg.NominalBitrate

	// --- state ---
	currentCDN := cdnXName
	capBps := 0.0 // AppP bitrate cap (0 = uncapped)
	cdnScore := map[string]float64{cdnXName: 70, cdnYName: 70}
	var switchedThisEpoch bool
	var egressTrack, cdnTrack stability.Tracker
	var scores []float64

	i2aStore := core.NewDelayed[control.I2AView](cfg.Staleness)
	a2iStore := core.NewDelayed[control.A2IView](cfg.Staleness)
	volNoiser := privacy.NewNoiser(cfg.NoiseEpsilon, 3e6, cfg.Seed+7)

	// lastExchange is when the parties last completed an interface
	// exchange (−1 = never); partner faults freeze it, and hint
	// confidence decays from it on HintHalfLife.
	lastExchange := time.Duration(-1)
	hintConfidence := func(now time.Duration) float64 {
		if lastExchange < 0 {
			return 0
		}
		return lookingglass.DecayConfidence(now-lastExchange, cfg.HintHalfLife)
	}

	demandNow := func(now time.Duration) float64 {
		d := cfg.Demand(now)
		if d < cfg.NominalBitrate {
			d = cfg.NominalBitrate
		}
		return d
	}
	sessionsAt := func(now time.Duration) float64 {
		return demandNow(now) / cfg.NominalBitrate
	}
	flowDemand := func(now time.Duration) float64 {
		per := cfg.NominalBitrate
		if capBps > 0 && capBps < per {
			per = capBps
		}
		return sessionsAt(now) * per
	}

	flow, err := ispNet.Connect(currentCDN, netsim.NodeID(currentCDN), flowDemand(0), "appp")
	if err != nil {
		panic(fmt.Sprintf("expt: fig5 setup: %v", err))
	}
	egressTrack.Record(0, ispNet.EgressOf(cdnXName).ID)
	cdnTrack.Record(0, currentCDN)

	if cfg.FailPeerBAt > 0 {
		eng.ScheduleAt(cfg.FailPeerBAt, func(*sim.Engine) {
			net.SetLinkCapacity(linkB.ID, cfg.FailPeerBToBps)
		})
	}

	reachable := map[string][]string{cdnXName: {"B", "C"}, cdnYName: {"C"}}

	// epochScore computes the per-epoch QoE proxy.
	epochScore := func(now time.Duration) float64 {
		sessions := sessionsAt(now)
		perDelivered := flow.Rate / sessions
		perTarget := flow.Demand / sessions
		starvation := 0.0
		if perTarget > 0 && perDelivered < perTarget {
			starvation = 1 - perDelivered/perTarget
		}
		// Starved sessions stall for a fraction of wall time
		// proportional to the deficit (fluid approximation).
		bufRatio := 0.5 * starvation
		s := 100*model.BitrateUtility(perDelivered) - model.BufferingPenalty*100*bufRatio
		if switchedThisEpoch {
			s -= 10 // disruption: re-join, lowest-rung restart
		}
		if s < 0 {
			s = 0
		}
		if s > 100 {
			s = 100
		}
		return s
	}

	buildI2A := func() control.I2AView {
		reports := ispNet.PeeringReports()
		var infos []core.PeeringInfo
		for _, r := range reports {
			p := ispNet.Peering(r.PeeringID)
			for _, cdnName := range []string{cdnXName, cdnYName} {
				if !p.Reaches(cdnName) {
					continue
				}
				infos = append(infos, core.PeeringInfo{
					PeeringID:   r.PeeringID,
					CDN:         cdnName,
					Congestion:  r.Congestion,
					HeadroomBps: r.HeadroomBps,
					CapacityBps: r.CapacityBps,
					Current:     ispNet.EgressOf(cdnName).ID == r.PeeringID,
				})
			}
		}
		atts := map[string]core.Attribution{}
		accessRep := ispNet.AccessReport()
		for _, cdnName := range []string{cdnXName, cdnYName} {
			att := core.Attribution{CDN: cdnName, Segment: core.SegmentNone}
			eg := ispNet.EgressOf(cdnName)
			egUtil := 0.0
			for _, r := range reports {
				if r.PeeringID == eg.ID {
					egUtil = r.Utilization
					att.Level = r.Congestion
				}
			}
			switch {
			case accessRep.Congestion >= netsim.CongestionHigh:
				att.Segment = core.SegmentAccess
				flows := net.FlowsOn(access.ID)
				if flows > 0 {
					att.SuggestedCapBps = 0.95 * accessRep.CapacityBps / sessionsAt(eng.Now())
				}
				att.Level = accessRep.Congestion
			case egUtil >= 0.9:
				att.Segment = core.SegmentPeering
			}
			atts[cdnName] = att
		}
		return control.I2AView{Peering: infos, Attribution: atts}
	}

	buildA2I := func(now time.Duration) control.A2IView {
		vol := demandNow(now)
		if cfg.NoiseEpsilon > 0 {
			if v := volNoiser.Noise(vol); v > 0 {
				vol = v
			} else {
				vol = 0
			}
		}
		return control.A2IView{Traffic: []core.TrafficEstimate{{
			AppP: "vod", CDN: currentCDN, VolumeBps: vol, Sessions: sessionsAt(now),
		}}}
	}

	// --- policies ---
	useHyst := cfg.Dampening || cfg.DampHysteresis
	useBackoff := cfg.Dampening || cfg.DampBackoff

	var appPolicy control.AppPPolicy
	var infPolicy control.InfPPolicy
	if cfg.AppPMode == EONA {
		e := &control.EONAAppP{Threshold: 60, CapHeadroom: 0.95, ConfidenceFloor: cfg.ConfidenceFloor}
		if useHyst {
			e.Hysteresis = &stability.Hysteresis{Margin: 0.2}
		}
		appPolicy = e
	} else {
		appPolicy = &control.BaselineAppP{Threshold: 60}
	}
	if cfg.InfPMode == EONA {
		infPolicy = &control.EONAInfP{Margin: 0.1, HighWater: 0.9, ConfidenceFloor: cfg.ConfidenceFloor}
	} else {
		infPolicy = &control.BaselineInfP{HighWater: 0.9, LowWater: 0.5}
	}
	var ispBackoff, appBackoff *stability.Backoff
	if useBackoff {
		ispBackoff = stability.NewBackoff(cfg.TEPeriod, 30*cfg.TEPeriod, 2, 0.2, cfg.Seed+11)
		appBackoff = stability.NewBackoff(cfg.AppPPeriod, 30*cfg.AppPPeriod, 2, 0.2, cfg.Seed+13)
	}
	// Scenario-level hysteresis for the baseline AppP (the policy itself
	// has no dampening hook): a CDN switch must promise a clearly better
	// score than the incumbent's.
	const baselineHystMargin = 5.0

	// --- measurement process (publishes interface data) ---
	warmup := 2
	epoch := 0
	eng.Every(cfg.Epoch, func(e *sim.Engine) bool {
		now := e.Now()
		s := epochScore(now)
		cdnScore[currentCDN] = s
		epoch++
		if epoch > warmup {
			scores = append(scores, s)
		}
		switchedThisEpoch = false
		// Partner faults gate the exchange: during an outage or error
		// burst nothing is published, so the stores (and hence the
		// policies) keep serving the last completed exchange.
		if cfg.Faults.PartnerUp(now) && !cfg.Faults.PartnerErrored(now) {
			i2aStore.Set(now, buildI2A())
			a2iStore.Set(now, buildA2I(now))
			lastExchange = now
		}
		// Demand may be time-varying; keep the flow's demand current.
		net.SetDemand(flow, flowDemand(now))
		return true
	})

	// --- InfP control loop ---
	eng.Every(cfg.TEPeriod, func(e *sim.Engine) bool {
		now := e.Now()
		obs := control.InfPObs{
			Now:      now,
			Peerings: ispNet.PeeringReports(),
			Egress: map[string]string{
				cdnXName: ispNet.EgressOf(cdnXName).ID,
				cdnYName: ispNet.EgressOf(cdnYName).ID,
			},
			Reach: reachable,
		}
		if cfg.InfPMode == EONA {
			if v, ok := a2iStore.Get(now); ok {
				obs.A2I = &v
				obs.A2IConfidence = hintConfidence(now)
			}
		}
		dec := infPolicy.Decide(obs)
		for _, cdnName := range []string{cdnXName, cdnYName} {
			want, ok := dec.Egress[cdnName]
			if !ok || want == ispNet.EgressOf(cdnName).ID {
				continue
			}
			if ispBackoff != nil {
				if !ispBackoff.Allow(now) {
					continue
				}
				ispBackoff.OnAction(now)
			}
			if err := ispNet.SetEgress(cdnName, want); err != nil {
				panic(fmt.Sprintf("expt: fig5 TE: %v", err))
			}
		}
		egressTrack.Record(now, ispNet.EgressOf(cdnXName).ID)
		return true
	})

	// --- AppP control loop ---
	eng.Every(cfg.AppPPeriod, func(e *sim.Engine) bool {
		now := e.Now()
		obs := control.AppPObs{
			Now:       now,
			Current:   currentCDN,
			Score:     cdnScore[currentCDN],
			DemandBps: demandNow(now),
			CDNs: []control.CDNStat{
				{Name: cdnXName, Score: cdnScore[cdnXName], ServingCapacityBps: cfg.IXPToXBps},
				{Name: cdnYName, Score: cdnScore[cdnYName], ServingCapacityBps: cfg.IXPToYBps},
			},
		}
		if cfg.AppPMode == EONA {
			if v, ok := i2aStore.Get(now); ok {
				obs.I2A = &v
				obs.I2AConfidence = hintConfidence(now)
			}
		}
		dec := appPolicy.Decide(obs)
		capBps = dec.BitrateCapBps
		if dec.CDN != currentCDN {
			allowed := true
			if useHyst && cfg.AppPMode == Baseline &&
				cdnScore[dec.CDN] <= cdnScore[currentCDN]+baselineHystMargin {
				allowed = false
			}
			if allowed && appBackoff != nil {
				if !appBackoff.Allow(now) {
					allowed = false
				} else {
					appBackoff.OnAction(now)
				}
			}
			if allowed {
				currentCDN = dec.CDN
				switchedThisEpoch = true
				if err := ispNet.Retarget(flow, currentCDN, netsim.NodeID(currentCDN)); err != nil {
					panic(fmt.Sprintf("expt: fig5 retarget: %v", err))
				}
			}
		}
		net.SetDemand(flow, flowDemand(now))
		cdnTrack.Record(now, currentCDN)
		return true
	})

	eng.Run(cfg.Horizon)

	res := Fig5Result{
		Config:        cfg,
		ISPSwitches:   egressTrack.Switches(),
		AppPSwitches:  cdnTrack.Switches(),
		EgressHistory: egressTrack.History(),
		CDNHistory:    cdnTrack.History(),
		ScoreHistory:  scores,
		Epochs:        len(scores),
	}
	for _, s := range scores {
		res.MeanScore += s
	}
	if len(scores) > 0 {
		res.MeanScore /= float64(len(scores))
	}
	if p, ok := stability.DetectCycle(res.EgressHistory); ok {
		res.Oscillating, res.CyclePeriod = true, p
	} else if p, ok := stability.DetectCycle(res.CDNHistory); ok {
		res.Oscillating, res.CyclePeriod = true, p
	}
	return res
}

// Fig5Oracle computes the global-controller upper bound for the scenario:
// it enumerates every static joint configuration (CDN choice × egress for
// CDN X × capped/uncapped bitrate) and returns the best steady-state epoch
// score. This is recipe step 2 — the hypothetical controller that uses all
// data and all knobs.
func Fig5Oracle(cfg Fig5Config) float64 {
	cfg.applyDefaults()
	model := qoe.DefaultModel()
	model.MaxBitrate = cfg.NominalBitrate
	demand := cfg.Demand(0)
	sessions := demand / cfg.NominalBitrate

	best := 0.0
	for _, choice := range []struct {
		cdn    string
		egress string
		path   float64 // bottleneck capacity
	}{
		{cdnXName, "B", min2(cfg.AccessBps, cfg.PeerBBps)},
		{cdnXName, "C", min2(cfg.AccessBps, min2(cfg.PeerCBps, cfg.IXPToXBps))},
		{cdnYName, "C", min2(cfg.AccessBps, min2(cfg.PeerCBps, cfg.IXPToYBps))},
	} {
		for _, capped := range []bool{false, true} {
			perTarget := cfg.NominalBitrate
			if capped {
				// The oracle sets the cap so aggregate demand
				// exactly fits the path.
				fit := choice.path / sessions
				if fit < perTarget {
					perTarget = fit
				}
			}
			agg := perTarget * sessions
			rate := agg
			if rate > choice.path {
				rate = choice.path
			}
			perDelivered := rate / sessions
			starvation := 0.0
			if perTarget > 0 && perDelivered < perTarget {
				starvation = 1 - perDelivered/perTarget
			}
			s := 100*model.BitrateUtility(perDelivered) - model.BufferingPenalty*100*0.5*starvation
			if s < 0 {
				s = 0
			}
			if s > 100 {
				s = 100
			}
			if s > best {
				best = s
			}
		}
	}
	return best
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
