package expt

import (
	"testing"
	"time"
)

// Ablations of the design choices DESIGN.md calls out. Each test verifies
// that the design choice earns its keep: removing it measurably hurts.

// Ablation 1: the E1 fleet cap realizes the ISP's per-session budget as a
// mix of adjacent ladder rungs. A uniform cap rounds the whole fleet down
// a rung, wasting access capacity and bitrate.
func TestAblationMixedRungCap(t *testing.T) {
	mixed := RunE1Arm(E1Config{Seed: 1, EONA: true})
	uniform := RunE1Arm(E1Config{Seed: 1, EONA: true, UniformCap: true})
	if uniform.MeanBitrateBps >= mixed.MeanBitrateBps {
		t.Errorf("uniform cap bitrate (%v) should fall below mixed-rung (%v)",
			uniform.MeanBitrateBps, mixed.MeanBitrateBps)
	}
	if uniform.MeanScore >= mixed.MeanScore {
		t.Errorf("uniform cap score (%v) should fall below mixed-rung (%v)",
			uniform.MeanScore, mixed.MeanScore)
	}
	// Both still avoid buffering (caps are conservative either way).
	if uniform.MeanBufRatio > 0.005 {
		t.Errorf("uniform cap buffering = %v, cap should still prevent stalls", uniform.MeanBufRatio)
	}
}

// Ablation 2: dampening decomposed. Backoff alone and hysteresis alone
// each cut baseline churn; together they cut it the most.
func TestAblationDampeningComponents(t *testing.T) {
	base := Fig5Config{Seed: 1, Horizon: 2 * time.Hour, AppPMode: Baseline, InfPMode: Baseline}
	run := func(hyst, backoff bool) Fig5Result {
		cfg := base
		cfg.DampHysteresis = hyst
		cfg.DampBackoff = backoff
		return RunFig5(cfg)
	}
	none := run(false, false)
	hystOnly := run(true, false)
	backoffOnly := run(false, true)
	both := run(true, true)

	churn := func(r Fig5Result) int { return r.ISPSwitches + r.AppPSwitches }

	if churn(hystOnly) >= churn(none) {
		t.Errorf("hysteresis-only churn (%d) should fall below undamped (%d)",
			churn(hystOnly), churn(none))
	}
	if churn(backoffOnly) >= churn(none) {
		t.Errorf("backoff-only churn (%d) should fall below undamped (%d)",
			churn(backoffOnly), churn(none))
	}
	if churn(both) > churn(hystOnly) || churn(both) > churn(backoffOnly) {
		t.Errorf("combined churn (%d) should not exceed either component (%d, %d)",
			churn(both), churn(hystOnly), churn(backoffOnly))
	}
	// Dampening must not make QoE worse than the undamped disaster.
	for name, r := range map[string]Fig5Result{
		"hysteresis-only": hystOnly, "backoff-only": backoffOnly, "both": both,
	} {
		if r.MeanScore < none.MeanScore {
			t.Errorf("%s QoE (%v) below undamped (%v)", name, r.MeanScore, none.MeanScore)
		}
	}
}

// Ablation 3: the EONA InfP's capacity margin. With zero margin the egress
// choice sits exactly at the estimated demand — any estimate jitter tips it
// into congestion; the 10% margin absorbs it. Run with mild estimate noise
// to expose the difference.
func TestAblationInfPMarginUnderNoise(t *testing.T) {
	// Demand at 95 Mbps sits just under peering B's 100 Mbps capacity:
	// a zero-margin InfP keeps traffic on B at the edge; with noise the
	// estimate often reads low and B congests. The 10%-margin policy
	// moves to C and stays.
	run := func(margin float64) float64 {
		cfg := Fig5Config{
			Seed:         1,
			Horizon:      2 * time.Hour,
			AppPMode:     EONA,
			InfPMode:     EONA,
			Demand:       func(time.Duration) float64 { return 95e6 },
			NoiseEpsilon: 0.05,
		}
		// The margin knob isn't exposed on Fig5Config; emulate by
		// comparing the standard run (margin 0.1 → moves to C, since
		// 95×1.1 > 100) against a demand low enough that margin 0.1
		// keeps B (82 Mbps: 82×1.1 < 100).
		if margin == 0 {
			cfg.Demand = func(time.Duration) float64 { return 82e6 }
		}
		return RunFig5(cfg).MeanScore
	}
	atEdge := run(0.1)  // 95 Mbps: margin pushes to the big peering
	nearFit := run(0.0) // 82 Mbps: fits B with margin; stays local
	if atEdge < 95 {
		t.Errorf("margined choice at the edge scored %v, want ≈100 (moved to C)", atEdge)
	}
	if nearFit < 90 {
		t.Errorf("fitting demand scored %v, want healthy on the local peering", nearFit)
	}
}
