package expt

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"eona/internal/control"
	"eona/internal/faults"
	"eona/internal/netsim"
	"eona/internal/sim"
	"eona/internal/workload"
)

// EngineArmTopology binds a topology to the multi-driver harness: candidate
// paths per region (regions cycle through the slice when there are more
// regions than entries) and the named links the fault schedule may flap.
type EngineArmTopology struct {
	Topo        *netsim.Topology
	RegionPaths [][]netsim.Path
	FaultTarget map[string]faults.Target
}

// EngineArmConfig parameterizes RunEngineArm, the multi-driver engine
// scenario: per-region session arrivals (internal/workload), per-session
// flow monitors (internal/control), and a fault schedule (internal/faults),
// each owning a sim partition and a netsim Driver.
type EngineArmConfig struct {
	Seed    int64
	Regions int
	// Workers is the engine's goroutine count. It must never change the
	// result — only wall-clock. 0 means GOMAXPROCS.
	Workers int
	Horizon time.Duration
	// ArrivalRate is each region's Poisson session arrival rate (sessions/s).
	ArrivalRate float64
	// SessionDemand is a new session's demand in bits/s.
	SessionDemand float64
	// SessionLife bounds a session's lifetime: uniform in
	// [SessionLife/2, 3·SessionLife/2), drawn from the region's seeded rng.
	SessionLife time.Duration
	// MonitorEvery is the per-session FlowMonitor period.
	MonitorEvery time.Duration
	// Plan, when non-nil, is scheduled on its own fault partition through
	// its own Driver.
	Plan *faults.Plan
	// Build constructs the topology; it runs once per arm so repeated runs
	// never share mutable state.
	Build func() EngineArmTopology
}

func (c *EngineArmConfig) applyDefaults() {
	if c.Regions <= 0 {
		c.Regions = 4
	}
	if c.Horizon <= 0 {
		c.Horizon = 2 * time.Minute
	}
	if c.ArrivalRate == 0 {
		c.ArrivalRate = 0.5
	}
	if c.SessionDemand == 0 {
		c.SessionDemand = 4e6
	}
	if c.SessionLife == 0 {
		c.SessionLife = 40 * time.Second
	}
	if c.MonitorEvery == 0 {
		c.MonitorEvery = 4 * time.Second
	}
}

// EngineArmResult summarizes one multi-driver run. Digest fingerprints the
// committed op log plus the final link rates and capacities; two runs with
// equal digests applied bit-identical mutations in bit-identical order and
// landed on bit-identical networks — the property the worker-count
// differential tests pin.
type EngineArmResult struct {
	Regions, Workers                 int
	SessionsStarted, SessionsStopped int
	MonitorTriggers                  int
	Processed, Instants              uint64
	Ops                              int
	FinalClock                       time.Duration
	Digest                           uint64
	Elapsed                          time.Duration
	EventsPerSec                     float64
}

// RunEngineArm runs the multi-driver engine scenario: Regions partitions of
// session arrivals + monitors, one fault partition, all mutating a
// deterministic SharedNetwork through per-partition Drivers, with the
// engine's per-instant barrier calling Commit so ops apply in canonical
// (driver, seq) order and exactly one snapshot publishes per instant.
//
// The partitioning rule in action: region p's callbacks touch only region
// p's sessions, monitors, rng and Driver. Cross-partition state (the
// network) is only read via last-commit values (snapshot reads, committed
// Flow handles) and only written via buffered Driver ops, so the worker
// count cannot perturb anything — RunEngineArm with Workers=1 and
// Workers=N produce equal Digests.
func RunEngineArm(cfg EngineArmConfig) EngineArmResult {
	cfg.applyDefaults()
	if cfg.Build == nil {
		panic("expt: RunEngineArm requires a topology Build func")
	}
	top := cfg.Build()
	shared := netsim.NewShared(netsim.NewNetwork(top.Topo), netsim.SharedConfig{Deterministic: true, Record: true})
	pe := sim.NewParallel(cfg.Seed, cfg.Regions+1, cfg.Workers)

	type regionStats struct{ started, stopped, triggers int }
	stats := make([]regionStats, cfg.Regions)
	for p := 0; p < cfg.Regions; p++ {
		p := p
		eng := pe.Partition(p)
		drv := shared.Driver(uint64(p + 1))
		paths := top.RegionPaths[p%len(top.RegionPaths)]
		tag := fmt.Sprintf("r%d", p)
		for _, at := range workload.Arrivals(eng.Rand(), workload.Constant(cfg.ArrivalRate), cfg.ArrivalRate, cfg.Horizon) {
			eng.ScheduleAt(at, func(en *sim.Engine) {
				path := paths[en.Rand().Intn(len(paths))]
				demand := cfg.SessionDemand
				f := drv.StartFlow(path, demand, tag)
				stats[p].started++
				mon := control.NewFlowMonitor(en,
					func() float64 { return f.Rate }, // last-commit value; workers only write at the barrier
					func() float64 { return demand },
					control.FlowMonitorConfig{CheckEvery: cfg.MonitorEvery},
					func(*control.FlowMonitor) {
						demand *= 0.7
						drv.SetDemand(f, demand)
						stats[p].triggers++
					})
				life := cfg.SessionLife/2 + time.Duration(en.Rand().Int63n(int64(cfg.SessionLife)))
				en.Schedule(life, func(*sim.Engine) {
					mon.Stop()
					drv.StopFlow(f)
					stats[p].stopped++
				})
			})
		}
	}
	if cfg.Plan != nil {
		if err := cfg.Plan.ScheduleDriver(pe.Partition(cfg.Regions), shared.Driver(uint64(cfg.Regions+1)), top.FaultTarget); err != nil {
			panic(fmt.Sprintf("expt: fault schedule: %v", err))
		}
	}
	pe.OnInstantEnd(func(*sim.ParallelEngine) { shared.Commit() })

	start := time.Now()
	end := pe.Run(cfg.Horizon)
	elapsed := time.Since(start)
	final := shared.Close()
	ops, _ := shared.Log()

	res := EngineArmResult{
		Regions:    cfg.Regions,
		Workers:    pe.Workers(),
		Processed:  pe.Processed(),
		Instants:   pe.Instants,
		Ops:        len(ops),
		FinalClock: end,
		Digest:     engineArmDigest(ops, final),
		Elapsed:    elapsed,
	}
	for _, s := range stats {
		res.SessionsStarted += s.started
		res.SessionsStopped += s.stopped
		res.MonitorTriggers += s.triggers
	}
	if elapsed > 0 {
		res.EventsPerSec = float64(res.Processed) / elapsed.Seconds()
	}
	return res
}

// newArmEngine returns the engine an experiment arm schedules on, plus the
// lockstep wrapper when one is in play. drivers <= 0 keeps the classic
// serial Engine. drivers >= 1 returns partition 0 of a one-partition
// ParallelEngine with that worker count — bit-identical to the serial
// engine by construction (same seed, same event order, same tick-end
// semantics), so legacy single-network scenarios run unchanged on the
// lockstep loop and their tables are pinned equal by the drivers
// differential tests.
func newArmEngine(seed int64, drivers int) (*sim.Engine, *sim.ParallelEngine) {
	if drivers <= 0 {
		return sim.NewEngine(seed), nil
	}
	pe := sim.NewParallel(seed, 1, drivers)
	return pe.Partition(0), pe
}

// runArm drives whichever engine newArmEngine produced to the horizon.
func runArm(eng *sim.Engine, pe *sim.ParallelEngine, horizon time.Duration) {
	if pe != nil {
		pe.Run(horizon)
		return
	}
	eng.Run(horizon)
}

// DefaultEngineArmTopology builds the standard multi-driver benchmark
// shape: regions disjoint two-hop rails plus one shared hub link every
// region can also route over, so the fault schedule and cross-region
// contention have something to bite on.
func DefaultEngineArmTopology(regions int) EngineArmTopology {
	topo := netsim.NewTopology()
	hub := topo.AddLink("hubA", "hubB", 600e6, time.Millisecond, "hub")
	var regionPaths [][]netsim.Path
	for r := 0; r < regions; r++ {
		from := netsim.NodeID(fmt.Sprintf("r%d-src", r))
		mid := netsim.NodeID(fmt.Sprintf("r%d-mid", r))
		to := netsim.NodeID(fmt.Sprintf("r%d-dst", r))
		l1 := topo.AddLink(from, mid, 120e6, time.Millisecond, "")
		l2 := topo.AddLink(mid, to, 120e6, time.Millisecond, "")
		regionPaths = append(regionPaths, []netsim.Path{{l1, l2}, {hub}})
	}
	return EngineArmTopology{
		Topo:        topo,
		RegionPaths: regionPaths,
		FaultTarget: map[string]faults.Target{"hub": {ID: hub.ID, BaseBps: 600e6}},
	}
}

// DefaultEngineArmConfig is the standard multi-driver scenario over
// DefaultEngineArmTopology: 4 regions of Poisson arrivals with per-session
// monitors, plus a mid-run hub degradation on the fault partition.
func DefaultEngineArmConfig(seed int64, workers int) EngineArmConfig {
	const regions = 4
	return EngineArmConfig{
		Seed:          seed,
		Regions:       regions,
		Workers:       workers,
		Horizon:       2 * time.Minute,
		ArrivalRate:   0.5,
		SessionDemand: 25e6,
		SessionLife:   40 * time.Second,
		MonitorEvery:  4 * time.Second,
		Plan: &faults.Plan{LinkFaults: []faults.LinkFault{{
			Link:   "hub",
			Window: faults.Window{Start: 40 * time.Second, End: 80 * time.Second},
			Factor: 0.25,
		}}},
		Build: func() EngineArmTopology { return DefaultEngineArmTopology(regions) },
	}
}

// engineArmDigest fingerprints a run: FNV-1a over the committed op log
// (kind, flow, links, value, tag of every op, in application order) and the
// final network's per-link rates and capacities.
func engineArmDigest(ops []netsim.Op, n *netsim.Network) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) { binary.LittleEndian.PutUint64(buf[:], v); h.Write(buf[:]) }
	wf := func(f float64) { w(math.Float64bits(f)) }
	for _, op := range ops {
		w(uint64(op.Kind))
		w(uint64(op.Flow))
		w(uint64(op.Link))
		wf(op.Value)
		h.Write([]byte(op.Tag))
		for _, l := range op.Links {
			w(uint64(l))
		}
	}
	topo := n.Topology()
	for id := 0; id < topo.NumLinks(); id++ {
		lid := netsim.LinkID(id)
		wf(n.LinkRate(lid))
		wf(topo.Link(lid).Capacity)
	}
	return h.Sum64()
}
