package expt

import "testing"

func TestE13InferenceGap(t *testing.T) {
	r := RunE13(1)
	if r.Samples < 400 {
		t.Fatalf("corpus too small: %d", r.Samples)
	}
	// Both operator-side estimators carry material error vs the direct
	// measurement's zero.
	if r.TTFBOnly.MAE < 2 {
		t.Errorf("TTFB-proxy MAE = %v, suspiciously perfect", r.TTFBOnly.MAE)
	}
	if r.RadioFlow.MAE < 1 {
		t.Errorf("radio+flow MAE = %v, suspiciously perfect", r.RadioFlow.MAE)
	}
	// Richer operator features beat the single TTFB proxy — the reason
	// operators keep investing in inference — yet stay short of truth.
	if r.RadioFlow.MAE >= r.TTFBOnly.MAE {
		t.Errorf("radio+flow MAE (%v) should beat TTFB-only (%v)",
			r.RadioFlow.MAE, r.TTFBOnly.MAE)
	}
	if r.RadioFlow.Spearman <= r.TTFBOnly.Spearman {
		t.Errorf("radio+flow Spearman (%v) should beat TTFB-only (%v)",
			r.RadioFlow.Spearman, r.TTFBOnly.Spearman)
	}
	if r.RadioFlow.Spearman < 0.4 {
		t.Errorf("radio+flow Spearman = %v — the features should carry real signal", r.RadioFlow.Spearman)
	}
}

func TestE13AbortsExist(t *testing.T) {
	r := RunE13(1)
	// Poor radio and heavy pages must produce some abandoned loads —
	// the score-0 mass that makes inference hard.
	if r.AbortRate <= 0 || r.AbortRate > 0.5 {
		t.Errorf("abort rate = %v, want in (0, 0.5]", r.AbortRate)
	}
}

func TestE13Deterministic(t *testing.T) {
	a, b := RunE13(9), RunE13(9)
	if a.TTFBOnly.MAE != b.TTFBOnly.MAE || a.RadioFlow.RMSE != b.RadioFlow.RMSE {
		t.Error("E13 not deterministic per seed")
	}
}

func TestE13TableRenders(t *testing.T) {
	s := RunE13(1).Table().String()
	for _, want := range []string{"TTFB proxy", "radio + flow", "direct A2I"} {
		if !contains(s, want) {
			t.Errorf("table missing %q", want)
		}
	}
}
