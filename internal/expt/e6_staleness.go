package expt

import (
	"time"
)

// E6 — §5 "dealing with staleness".
//
// Paper claim: "the data exported by the EONA interfaces may have some
// inherent delay. Thus, the control logics must also be designed to be
// robust against such staleness or inaccuracies." We run the Figure 5
// scenario with *time-varying* demand (a slow swell from 60 to 150 Mbps and
// back) and sweep the interface delay. Fresh interfaces track the swell;
// stale ones mis-size the egress during the ramps, costing QoE — degrading
// gracefully toward (but staying above) the EONA-less baseline.

// E6Point is one staleness setting.
type E6Point struct {
	Staleness time.Duration
	Result    Fig5Result
}

// E6Result holds the sweep plus the no-EONA floor.
type E6Result struct {
	Points   []E6Point
	Baseline Fig5Result
}

// e6Demand is the swelling offered load: 60 Mbps base, ramping to 150 Mbps
// between t=30min and t=60min, holding, then back down between 90 and 120.
func e6Demand(t time.Duration) float64 {
	const lo, hi = 60e6, 150e6
	switch {
	case t < 30*time.Minute:
		return lo
	case t < 60*time.Minute:
		f := float64(t-30*time.Minute) / float64(30*time.Minute)
		return lo + f*(hi-lo)
	case t < 90*time.Minute:
		return hi
	case t < 120*time.Minute:
		f := float64(t-90*time.Minute) / float64(30*time.Minute)
		return hi - f*(hi-lo)
	default:
		return lo
	}
}

// E6Stalenesses is the swept delay ladder.
var E6Stalenesses = []time.Duration{
	0, 30 * time.Second, 2 * time.Minute, 5 * time.Minute, 10 * time.Minute, 20 * time.Minute,
}

// RunE6 executes the staleness sweep.
func RunE6(seed int64) E6Result {
	out := E6Result{}
	horizon := 150 * time.Minute
	for _, st := range E6Stalenesses {
		cfg := Fig5Config{
			Seed: seed, Horizon: horizon, Demand: e6Demand,
			AppPMode: EONA, InfPMode: EONA, Staleness: st,
		}
		out.Points = append(out.Points, E6Point{Staleness: st, Result: RunFig5(cfg)})
	}
	out.Baseline = RunFig5(Fig5Config{
		Seed: seed, Horizon: horizon, Demand: e6Demand,
		AppPMode: Baseline, InfPMode: Baseline,
	})
	return out
}

// Table renders the sweep.
func (r E6Result) Table() *Table {
	t := &Table{
		Title:   "E6 (§5): EONA control quality vs interface staleness (swelling demand)",
		Columns: []string{"interface delay", "mean QoE score", "ISP switches", "AppP switches"},
	}
	for _, p := range r.Points {
		t.AddRow(p.Staleness.String(), Cell(p.Result.MeanScore),
			Cell(float64(p.Result.ISPSwitches)), Cell(float64(p.Result.AppPSwitches)))
	}
	t.AddRow("(no EONA)", Cell(r.Baseline.MeanScore),
		Cell(float64(r.Baseline.ISPSwitches)), Cell(float64(r.Baseline.AppPSwitches)))
	t.Notes = append(t.Notes,
		"paper: 'control logics must also be designed to be robust against such staleness or inaccuracies'")
	return t
}
