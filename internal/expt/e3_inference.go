package expt

import (
	"math"
	"math/rand"
	"time"

	"eona/internal/infer"
	"eona/internal/netsim"
	"eona/internal/player"
	"eona/internal/qoe"
	"eona/internal/sim"
)

// E3 — Figure 4: inferring experience from network metrics vs measuring it.
//
// Paper claim: ISPs "are trying to infer application-level experience using
// network-level measurements ... While such efforts are useful, they are
// stop-gap solutions. InfPs can be empowered if they have direct
// application measurements to avoid inference, which can be inaccurate and
// require expensive deep inspection capabilities."
//
// We build a corpus of sessions under randomized network conditions
// (bottleneck capacity, cross traffic, propagation delay), each run through
// the real player model. The InfP-visible features are purely network-level
// — RTT, loss, utilization, flow count, TTFB — and two standard regressors
// (OLS, k-NN) are trained to predict the session QoE score from them. The
// A2I path simply reports the score, with zero error by construction.

// E3Result reports inference error for each method.
type E3Result struct {
	Samples int
	LinReg  infer.Eval
	KNN     infer.Eval
	// ScoreStdDev contextualizes the MAE (error vs natural spread).
	ScoreStdDev float64
}

// e3Sample runs one randomized session and returns (features, score).
func e3Sample(rng *rand.Rand) ([]float64, float64) {
	topo := netsim.NewTopology()
	capacity := 2e6 + rng.Float64()*18e6
	delay := time.Duration(5+rng.Intn(75)) * time.Millisecond
	bottleneck := topo.AddLink("client", "edge", capacity, delay, "bottleneck")
	tail := topo.AddLink("edge", "server", 1e9, 5*time.Millisecond, "tail")
	net := netsim.NewNetwork(topo)

	// Cross traffic the session contends with — one batched reallocation
	// for the whole background mix.
	nCross := rng.Intn(8)
	net.Batch(func() {
		for i := 0; i < nCross; i++ {
			net.StartFlow(netsim.Path{bottleneck}, 0.5e6+rng.Float64()*6e6, "cross")
		}
	})

	eng := sim.NewEngine(rng.Int63())
	path := netsim.Path{bottleneck, tail}
	flow := net.StartFlow(path, 0, "session")
	conn := &player.FlowConn{Net: net, Flow: flow}
	p := player.New(eng, player.Config{
		Ladder: []float64{300e3, 750e3, 1.5e6, 3e6, 4.5e6},
		ABR:    player.RateBased{Safety: 0.85},
	}, 90*time.Second)
	p.Start(conn, 200*time.Millisecond)

	// Mid-session network-level snapshot — what a passive ISP monitor
	// sees (it cannot see buffers or played bitrate).
	var rttMs, lossPct, util, flows float64
	eng.Schedule(45*time.Second, func(*sim.Engine) {
		rttMs = float64(net.PathRTT(path)) / float64(time.Millisecond)
		lossPct = 100 * net.PathLoss(path)
		util = net.Utilization(bottleneck.ID)
		flows = float64(net.FlowsOn(bottleneck.ID))
	})
	eng.Run(3 * time.Minute)

	m := p.Metrics()
	model := qoe.DefaultModel()
	model.MaxBitrate = 4.5e6
	ttfbMs := float64(2*delay)/float64(time.Millisecond) + 20
	features := []float64{rttMs, lossPct, util, flows, ttfbMs}
	return features, model.Score(m)
}

// RunE3 builds the corpus and evaluates both regressors.
func RunE3(seed int64) E3Result {
	rng := rand.New(rand.NewSource(seed))
	var d infer.Dataset
	const n = 240
	var mean, m2 float64
	for i := 0; i < n; i++ {
		x, y := e3Sample(rng)
		d.Add(x, y)
		delta := y - mean
		mean += delta / float64(i+1)
		m2 += delta * (y - mean)
	}
	train, test := d.Split(5)
	res := E3Result{Samples: n}
	if lin, err := infer.FitLinReg(train); err == nil {
		res.LinReg = infer.Evaluate(lin, test)
	}
	if knn, err := infer.FitKNN(train, 7); err == nil {
		res.KNN = infer.Evaluate(knn, test)
	}
	res.ScoreStdDev = math.Sqrt(m2 / float64(n))
	return res
}

// Table renders the comparison against direct measurement.
func (r E3Result) Table() *Table {
	t := &Table{
		Title:   "E3 (Figure 4): inferring QoE from network metrics vs direct A2I measurement",
		Columns: []string{"method", "MAE (score pts)", "RMSE", "rank corr (Spearman)"},
	}
	t.AddRow("OLS on network features", Cell(r.LinReg.MAE), Cell(r.LinReg.RMSE), Cell(r.LinReg.Spearman))
	t.AddRow("7-NN on network features", Cell(r.KNN.MAE), Cell(r.KNN.RMSE), Cell(r.KNN.Spearman))
	t.AddRow("direct A2I measurement", "0", "0", "1.000")
	t.Notes = append(t.Notes,
		Cell(r.ScoreStdDev)+" = natural score std-dev across conditions (context for the MAE)",
		"paper: inference 'can be inaccurate and require expensive deep inspection capabilities'")
	return t
}
