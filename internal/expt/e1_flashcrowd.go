package expt

import (
	"fmt"
	"math/rand"
	"time"

	"eona/internal/control"
	"eona/internal/core"
	"eona/internal/isp"
	"eona/internal/netsim"
	"eona/internal/player"
	"eona/internal/qoe"
	"eona/internal/sim"
	"eona/internal/workload"
)

// E1 — Figure 3: flash crowd congests the ISP access network.
//
// Paper claim: "the application-level control loop (i.e., HTTP adaptive
// player control logic) first tried to switch across multiple CDNs but
// clients still see very high buffering ... if the AppP could have known
// explicit congestion signals from the ISP, it should have adapted the
// video bitrate to make the ISP less congested and avoid buffering."
//
// A fleet of buffer-based adaptive players (live-event parameters: small
// buffers, segment-committed adaptation — the occupancy-driven rung
// overshoot and interaction pathology of [28,36]) rides a flash-crowd
// arrival spike behind a 60 Mbps access link with two well-provisioned CDNs
// beyond it.
// The baseline arm reacts to buffering the only way it can — switching
// CDNs (futile: the bottleneck is the access link, and every switch costs
// a reconnect outage and a conservative restart). The EONA arm polls the
// ISP's I2A attribution; on access congestion it caps every player's
// bitrate at the ISP's suggested sustainable per-session rate and
// suppresses pointless CDN switching.

// E1Config parameterizes the scenario.
type E1Config struct {
	Seed      int64
	EONA      bool
	AccessBps float64       // default 60 Mbps
	Horizon   time.Duration // default 16 min
	// Crowd shape (sessions/s): default base 0.12 → peak 1.2.
	BaseRate, PeakRate float64
	// UniformCap (ablation) applies the suggested per-session budget as
	// one fleet-wide cap instead of the mixed-rung realization, rounding
	// the whole fleet down a ladder rung.
	UniformCap bool
	// Trace, when non-nil, replays a recorded workload (see
	// workload.ReadTrace / cmd/eona-trace) instead of generating one.
	Trace []workload.Session
	// Drivers, when positive, runs the arm on the lockstep multi-driver
	// engine (one partition, Drivers workers) instead of the serial
	// Engine. Results are bit-identical either way; see newArmEngine.
	Drivers int
}

func (c *E1Config) applyDefaults() {
	if c.AccessBps == 0 {
		c.AccessBps = 60e6
	}
	if c.Horizon == 0 {
		c.Horizon = 16 * time.Minute
	}
	if c.BaseRate == 0 {
		c.BaseRate = 0.12
	}
	if c.PeakRate == 0 {
		c.PeakRate = 1.2
	}
}

// E1Result aggregates fleet experience.
type E1Result struct {
	Config                E1Config
	Sessions              int
	MeanScore             float64
	MeanBufRatio          float64
	MeanBitrateBps        float64
	MeanStartupSec        float64
	CDNSwitchesPerSession float64
	// EngagementMinutes is the mean engagement per session out of an
	// intended 10 minutes (Krishnan-slope model); sessions that never
	// started playing count as zero engagement.
	EngagementMinutes float64
	// ExpectedAbandonRate is the mean startup-abandonment probability
	// over sessions (Krishnan: 5.8%/s of startup delay beyond 2s).
	ExpectedAbandonRate float64
	// CapEpochs counts controller polls during which the EONA cap was
	// active (0 in the baseline arm).
	CapEpochs int
}

const (
	e1CDN1 = "cdn1"
	e1CDN2 = "cdn2"
)

// e1Workload derives the arm's default flash-crowd session list (exposed
// for trace archival tests; RunE1Arm uses it when no Trace is supplied).
func e1Workload(cfg E1Config) []workload.Session {
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 1000))
	crowd := workload.FlashCrowd{
		Base: cfg.BaseRate, Peak: cfg.PeakRate,
		Start: 3 * time.Minute, RampUp: 30 * time.Second,
		Hold: 8 * time.Minute, Down: time.Minute,
	}
	return workload.Generate(rng, workload.Spec{
		Rate:         crowd.Rate(),
		MaxRate:      cfg.PeakRate,
		Horizon:      cfg.Horizon - 2*time.Minute, // let the tail drain
		MeanDuration: 150 * time.Second,
		MinDuration:  45 * time.Second,
	})
}

// RunE1Arm executes one arm.
func RunE1Arm(cfg E1Config) E1Result {
	cfg.applyDefaults()
	eng, peng := newArmEngine(cfg.Seed, cfg.Drivers)

	topo := netsim.NewTopology()
	access := topo.AddLink("clients", "border", cfg.AccessBps, 2*time.Millisecond, "access")
	linkB := topo.AddLink("border", e1CDN1, 1e9, time.Millisecond, "peering-1")
	linkC := topo.AddLink("border", "ixp", 1e9, 3*time.Millisecond, "peering-2")
	topo.AddLink("ixp", e1CDN2, 1e9, time.Millisecond, "ixp-cdn2")
	net := netsim.NewNetwork(topo)

	ispNet := isp.New(net, isp.Config{Name: "isp1", ClientNode: "clients", Border: "border", Access: access})
	ispNet.AddPeering("P1", linkB, e1CDN1)
	ispNet.AddPeering("P2", linkC, e1CDN2)

	// All monitor reactions in one simulated instant — a flash crowd trips
	// many sessions at once — commit as one end-of-tick reallocation.
	coal := control.NewCoalescer(eng, net)

	ladder := []float64{300e3, 750e3, 1.5e6, 3e6}
	baseABR := player.ABR(player.BufferBased{Low: 2 * time.Second, High: 8 * time.Second})
	model := qoe.DefaultModel()
	model.MaxBitrate = ladder[len(ladder)-1]

	sessions := cfg.Trace
	if sessions == nil {
		sessions = e1Workload(cfg)
	}

	collector := core.NewCollector("vod", core.ExportPolicy{}, time.Minute, cfg.Seed)

	type session struct {
		p   *player.Player
		cdn string
		idx int
	}
	var active []*session
	var all []*session

	// attribution is the ISP's current I2A view for this scenario;
	// updated by the EONA controller's poll.
	attribution := core.Attribution{Segment: core.SegmentNone}
	// The EONA fleet cap: per-session budget B realized as a *mix* of
	// the two adjacent ladder rungs (a uniform cap would round the whole
	// fleet down a rung and waste capacity against a coarse ladder).
	capOn := false
	capLo, capHi := 0.0, 0.0
	capHiFrac := 0.0

	connect := func(cdnName string) (player.Conn, error) {
		dst := netsim.NodeID(cdnName)
		f, err := ispNet.Connect(cdnName, dst, 0, "session")
		if err != nil {
			return nil, err
		}
		return &player.FlowConn{Net: net, Flow: f, OnClose: func() { ispNet.Disconnect(f) }}, nil
	}

	abrFor := func(idx int) player.ABR {
		if !capOn {
			return nil // use configured ABR
		}
		cap := capLo
		if float64(idx%100) < capHiFrac*100 {
			cap = capHi
		}
		return player.Capped{Inner: baseABR, Cap: cap}
	}

	react := func(s *session) func(*control.Monitor, control.Reason) {
		return func(m *control.Monitor, r control.Reason) {
			if cfg.EONA && attribution.Segment == core.SegmentAccess {
				// EONA: the ISP says the bottleneck is the
				// access network — switching CDNs cannot help.
				return
			}
			// Baseline reaction (and EONA reaction to non-access
			// problems): switch to the other CDN. The switch is one
			// batched reallocation: new flow up, old flow down.
			other := e1CDN1
			if s.cdn == e1CDN1 {
				other = e1CDN2
			}
			net.Batch(func() {
				conn, err := connect(other)
				if err != nil {
					return
				}
				s.cdn = other
				s.p.Redirect(conn, 2*time.Second, player.SwitchCDN)
			})
		}
	}

	// Session arrivals.
	for i, ws := range sessions {
		ws := ws
		i := i
		eng.ScheduleAt(ws.Arrival, func(e *sim.Engine) {
			cdnName := e1CDN1
			if i%2 == 1 {
				cdnName = e1CDN2
			}
			// Session setup — flow attach plus the player's initial
			// demand parking — is one batched reallocation.
			var conn player.Conn
			var err error
			s := &session{cdn: cdnName, idx: i}
			net.BeginBatch()
			conn, err = connect(cdnName)
			if err != nil {
				net.EndBatch()
				return
			}
			// Flash crowds are live-event traffic: small buffers
			// (latency-bound), segment-committed adaptation, and
			// conservative smoothing — the regime where
			// misjudged rungs actually stall (cf. [28,36]).
			s.p = player.New(e, player.Config{
				Ladder:        ladder,
				ABR:           baseABR,
				BufferTarget:  10 * time.Second,
				StartupBuffer: 2 * time.Second,
				StallResume:   2 * time.Second,
				AdaptEvery:    8 * time.Second,
				EMAAlpha:      0.15,
			}, ws.IntendedDuration)
			s.p.OverrideABR = abrFor(i)
			sid := fmt.Sprintf("s%04d", i)
			s.p.OnComplete = func(m qoe.SessionMetrics) {
				collector.Ingest(core.RecordFrom(model, m, sid, "vod", "isp1", s.cdn, "-", e.Now()))
			}
			s.p.Start(conn, 500*time.Millisecond)
			net.EndBatch()
			control.NewMonitor(e, s.p, control.MonitorConfig{Coalesce: coal}, react(s))
			active = append(active, s)
			all = append(all, s)
		})
	}

	// EONA AppP controller: poll the ISP's attribution every 5s and
	// apply/lift the fleet-wide bitrate cap with hysteresis.
	capEpochs := 0
	if cfg.EONA {
		eng.Every(5*time.Second, func(e *sim.Engine) bool {
			rep := ispNet.AccessReport()
			n := net.FlowsOn(access.ID)
			switch {
			case rep.Utilization >= 0.90 && n > 0:
				attribution = core.Attribution{
					Segment:         core.SegmentAccess,
					Level:           rep.Congestion,
					SuggestedCapBps: cfg.AccessBps / float64(n),
				}
				// Realize the per-session budget as a mix of
				// the two surrounding rungs.
				budget := attribution.SuggestedCapBps
				capOn = true
				if cfg.UniformCap {
					lo, _, _ := mixRungs(ladder, budget)
					capLo, capHi, capHiFrac = lo, lo, 0
				} else {
					capLo, capHi, capHiFrac = mixRungs(ladder, budget)
				}
			case rep.Utilization < 0.85:
				attribution = core.Attribution{Segment: core.SegmentNone}
				capOn = false
			}
			if capOn {
				capEpochs++
			}
			kept := active[:0]
			for _, s := range active {
				if s.p.Done() {
					continue
				}
				s.p.OverrideABR = abrFor(s.idx)
				kept = append(kept, s)
			}
			active = kept
			return true
		})
	}

	runArm(eng, peng, cfg.Horizon)

	res := E1Result{Config: cfg, CapEpochs: capEpochs}
	for _, s := range all {
		m := s.p.Metrics()
		// Score every session that had at least 20s of wall time in
		// the system (startup counts: a session starved in startup
		// is the worst experience, not a non-session).
		if m.PlayTime+m.BufferingTime+m.StartupDelay < 20*time.Second {
			continue
		}
		res.Sessions++
		res.MeanScore += model.Score(m)
		res.MeanBufRatio += m.BufferingRatio()
		res.MeanBitrateBps += m.AvgBitrate
		res.MeanStartupSec += m.StartupDelay.Seconds()
		res.CDNSwitchesPerSession += float64(m.CDNSwitches)
		res.ExpectedAbandonRate += qoe.AbandonmentProbability(m.StartupDelay)
		if m.PlayTime > 0 {
			res.EngagementMinutes += model.EngagementMinutes(m, 10)
		}
	}
	if res.Sessions > 0 {
		n := float64(res.Sessions)
		res.MeanScore /= n
		res.MeanBufRatio /= n
		res.MeanBitrateBps /= n
		res.MeanStartupSec /= n
		res.CDNSwitchesPerSession /= n
		res.EngagementMinutes /= n
		res.ExpectedAbandonRate /= n
	}
	return res
}

// mixRungs expresses a per-session bitrate budget as the pair of adjacent
// ladder rungs bracketing it plus the fraction of sessions that get the
// higher rung, so the fleet's mean demand meets the budget exactly.
func mixRungs(ladder []float64, budget float64) (lo, hi, hiFrac float64) {
	if budget <= ladder[0] {
		return ladder[0], ladder[0], 0
	}
	top := ladder[len(ladder)-1]
	if budget >= top {
		return top, top, 1
	}
	for i := 1; i < len(ladder); i++ {
		if budget < ladder[i] {
			lo, hi = ladder[i-1], ladder[i]
			return lo, hi, (budget - lo) / (hi - lo)
		}
	}
	return top, top, 1
}

// E1Pair holds both arms.
type E1Pair struct {
	Baseline, EONA E1Result
}

// RunE1 executes both arms with identical workloads.
func RunE1(seed int64) E1Pair {
	return RunE1Drivers(seed, 0)
}

// RunE1Drivers is RunE1 on the lockstep multi-driver engine (drivers
// workers; 0 keeps the serial engine). Tables are bit-identical for every
// drivers value — pinned by TestE1DriversBitIdentical.
func RunE1Drivers(seed int64, drivers int) E1Pair {
	return E1Pair{
		Baseline: RunE1Arm(E1Config{Seed: seed, Drivers: drivers}),
		EONA:     RunE1Arm(E1Config{Seed: seed, EONA: true, Drivers: drivers}),
	}
}

// Table renders the comparison.
func (r E1Pair) Table() *Table {
	t := &Table{
		Title: "E1 (Figure 3): flash crowd at the ISP access link",
		Columns: []string{"arm", "sessions", "mean QoE score", "buffering ratio",
			"mean bitrate (Mbps)", "CDN switches/session", "engagement (min/10)"},
	}
	for _, row := range []struct {
		name string
		res  E1Result
	}{{"baseline (switch CDNs)", r.Baseline}, {"EONA (I2A congestion signal → cap bitrate)", r.EONA}} {
		t.AddRow(row.name,
			fmt.Sprintf("%d", row.res.Sessions),
			Cell(row.res.MeanScore),
			Cell(row.res.MeanBufRatio),
			Cell(row.res.MeanBitrateBps/1e6),
			Cell(row.res.CDNSwitchesPerSession),
			Cell(row.res.EngagementMinutes))
	}
	t.Notes = append(t.Notes,
		"paper: players 'switch CDNs and the access ISP is congested, while a better solution is to switch down bitrate'")
	return t
}
