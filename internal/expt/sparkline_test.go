package expt

import "testing"

func TestSparkline(t *testing.T) {
	r := Fig5Result{ScoreHistory: []float64{0, 50, 100, -5, 200}}
	s := []rune(r.Sparkline())
	if len(s) != 5 {
		t.Fatalf("sparkline length = %d, want 5", len(s))
	}
	if s[0] != '▁' || s[2] != '█' || s[4] != '█' {
		t.Errorf("sparkline = %q", string(s))
	}
	if s[3] != '▁' {
		t.Errorf("negative score should clamp low: %q", string(s))
	}
	if (Fig5Result{}).Sparkline() != "" {
		t.Error("empty history should render empty")
	}
}

func TestScoreHistoryPopulated(t *testing.T) {
	r := RunFig5(Fig5Config{Seed: 1, AppPMode: EONA, InfPMode: EONA})
	if len(r.ScoreHistory) != r.Epochs {
		t.Errorf("history length %d != epochs %d", len(r.ScoreHistory), r.Epochs)
	}
	sum := 0.0
	for _, s := range r.ScoreHistory {
		sum += s
	}
	if got := sum / float64(len(r.ScoreHistory)); got != r.MeanScore {
		t.Errorf("history mean %v != MeanScore %v", got, r.MeanScore)
	}
}
