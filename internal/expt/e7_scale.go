package expt

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sync"
	"time"

	"eona/internal/agg"
	"eona/internal/auth"
	"eona/internal/control"
	"eona/internal/core"
	"eona/internal/lookingglass"
	"eona/internal/netsim"
	"eona/internal/sim"
)

// E7 — §5 "scalability".
//
// Paper claim: "a typical AppP can collect user experience for tens [of]
// millions of sessions each day, and such large volumes of data can cause
// serious scalability challenges for the control logic of InfPs, to which
// recent advances in big data platforms ... may provide an approach."
//
// We measure the throughput of the single-process A2I pipeline this
// repository ships instead of a cluster: Collector ingest (the dimensional
// rollup every record passes through), count-min sketch updates, P²
// quantile updates, and the end-to-end looking-glass query latency. The
// headline number is the implied sessions/day capacity of one core.
//
// Unlike the other experiments' simulations these are wall-clock measurements; exact
// numbers vary by machine, but the shape — a single core comfortably above
// the paper's "tens of millions per day" — is the reproducible claim. The
// matching testing.B benchmarks live in bench_test.go.

// E7Config parameterizes the scalability run.
type E7Config struct {
	// Records is the ingest volume (default 500k when 0).
	Records int
	// ShardCounts lists the ShardedCollector sizes to sweep for the
	// cluster-mode rows (default 1, 2, 4, 8; nil uses the default, empty
	// non-nil skips the sweep).
	ShardCounts []int
	// DriverCounts lists the concurrent-goroutine driver counts to sweep
	// against one netsim.SharedNetwork (default 1, 2, 4; nil uses the
	// default, empty non-nil skips the sweep). Each driver mutates a
	// disjoint subset of rails while a reader goroutine spins on published
	// snapshots.
	DriverCounts []int
	// EngineWorkerCounts lists the worker counts to sweep for the
	// multi-driver engine rows (default 1, 2, 4; nil uses the default,
	// empty non-nil skips the sweep). Each row runs the full
	// DefaultEngineArmConfig scenario — partitioned arrivals, monitors and
	// faults in lockstep over a deterministic SharedNetwork — and must
	// produce the workers=1 digest bit for bit.
	EngineWorkerCounts []int
	// MeasureAllocs adds B/op and allocs/op columns to the allocator churn
	// and reaction rows (eona-bench -alloc), measured from the runtime's
	// cumulative allocation counters around each mutation loop.
	MeasureAllocs bool
}

// E7Alloc is one row's heap cost per operation, measured under -alloc.
type E7Alloc struct {
	Measured    bool
	BytesPerOp  float64
	AllocsPerOp float64
}

// E7DriverPoint is one shared-network measurement: mutation throughput
// with the given number of concurrent driver goroutines, relative to
// driving the serial Network directly (no command channel).
type E7DriverPoint struct {
	Drivers int
	// PerSec is committed mutations/second through the owner goroutine.
	PerSec float64
	// Speedup is PerSec over the direct serial-Network rate on the same
	// workload (< 1 on one core: the rows price the command-channel hop).
	Speedup float64
}

// E7EnginePoint is one multi-driver engine measurement: the full
// partitioned scenario (DefaultEngineArmConfig) run with the given worker
// count.
type E7EnginePoint struct {
	Workers int
	// PerSec is engine events processed per wall-clock second.
	PerSec float64
	// Speedup is PerSec over the workers=1 run of the same scenario.
	Speedup float64
	// Identical reports whether this run's op-log/final-state digest
	// matched the workers=1 reference — the determinism contract, checked
	// on every sweep, not just in tests.
	Identical bool
}

// E7ShardPoint is one cluster-mode measurement: ingest throughput with the
// sharded collector at a given shard count, each shard fed by its own
// producer goroutine.
type E7ShardPoint struct {
	Shards int
	// PerSec is IngestBatch records/second end-to-end (including drain).
	PerSec float64
	// Speedup is PerSec over the single-goroutine Collector's rate.
	Speedup float64
}

// E7Result carries measured rates.
type E7Result struct {
	// CollectorPerSec is Collector.Ingest records/second.
	CollectorPerSec float64
	// ImpliedSessionsPerDay = CollectorPerSec × 86400.
	ImpliedSessionsPerDay float64
	// SketchAddPerSec is count-min updates/second.
	SketchAddPerSec float64
	// P2AddPerSec is quantile updates/second.
	P2AddPerSec float64
	// SketchMemoryBytes is the count-min footprint at ε=0.1%, δ=0.1%.
	SketchMemoryBytes int
	// QueryP50 is the median looking-glass round trip over loopback
	// HTTP.
	QueryP50 time.Duration

	// Netsim allocator churn (session start/stop/adapt against the fair-
	// share allocator — the other per-session hot path besides ingest).
	// ChurnFullPerSec forces a full max-min recomputation per mutation;
	// ChurnIncrementalPerSec uses the batched + incremental allocator
	// with BFS dirty-set discovery (UseRegistry off).
	ChurnFullPerSec        float64
	ChurnIncrementalPerSec float64
	// ChurnSpeedup = incremental/full.
	ChurnSpeedup float64
	// ChurnRegistryPerSec repeats the incremental run with the persistent
	// component registry providing dirty-set discovery (the default path);
	// ChurnRegistrySpeedup compares it to the BFS incremental rate.
	ChurnRegistryPerSec  float64
	ChurnRegistrySpeedup float64
	// ChurnAutoTunePerSec repeats the registry run with AutoTuneCutoff
	// deriving the cutoff (per-component) instead of the fixed default.
	ChurnAutoTunePerSec float64
	// Per-mutation heap cost of each churn variant (E7Config.MeasureAllocs).
	ChurnFullAlloc        E7Alloc
	ChurnIncrementalAlloc E7Alloc
	ChurnRegistryAlloc    E7Alloc
	ChurnAutoTuneAlloc    E7Alloc
	// ChurnStats snapshots the allocator counters after the registry
	// churn run (printed under eona-bench -v).
	ChurnStats netsim.Stats

	// Coalesced-reaction churn: bursts of same-instant control-loop
	// reactions against a multi-component topology, committed one
	// reallocation each vs folded into one end-of-tick batch.
	ReactUncoalescedPerSec float64
	ReactCoalescedPerSec   float64
	// ReactFlowsSaved = flows re-solved uncoalesced ÷ coalesced (≥ 2 on
	// this shape: 8 same-instant reactions over 2 components).
	ReactFlowsSaved float64
	// Per-reaction heap cost of each variant (E7Config.MeasureAllocs).
	ReactUncoalescedAlloc E7Alloc
	ReactCoalescedAlloc   E7Alloc
	// ReactStats snapshots the coalesced run's allocator counters.
	ReactStats netsim.Stats

	// SharedSerialPerSec is the direct serial-Network mutation rate on the
	// shared-arm workload — the no-channel baseline the driver rows are
	// compared against.
	SharedSerialPerSec float64
	// DriverPoints are the shared-network rows (one per swept driver
	// count).
	DriverPoints []E7DriverPoint

	// ShardPoints are the cluster-mode rows (one per swept shard count).
	ShardPoints []E7ShardPoint
	// EnginePoints are the multi-driver engine rows (one per swept worker
	// count).
	EnginePoints []E7EnginePoint
	// Procs is runtime.GOMAXPROCS(0) at measurement time — shard speedups
	// are bounded by it.
	Procs int
}

// e7Records synthesizes a record stream across a realistic key space.
func e7Records(n int) []core.QoERecord {
	isps := []string{"isp-a", "isp-b", "isp-c", "isp-d", "isp-e"}
	cdns := []string{"cdnX", "cdnY", "cdnZ"}
	clusters := []string{"east", "west", "eu", "apac"}
	out := make([]core.QoERecord, n)
	for i := range out {
		out[i] = core.QoERecord{
			SessionID:      fmt.Sprintf("s%08d", i),
			Timestamp:      time.Duration(i) * time.Millisecond,
			AppP:           "vod",
			ClientISP:      isps[i%len(isps)],
			CDN:            cdns[i%len(cdns)],
			Cluster:        clusters[i%len(clusters)],
			Score:          float64(i % 100),
			BufferingRatio: float64(i%10) / 100,
			AvgBitrateBps:  float64(1+i%8) * 5e5,
			StartupDelay:   time.Duration(i%5000) * time.Millisecond,
			PlayTime:       10 * time.Minute,
		}
	}
	return out
}

// RunE7 measures the pipeline. n controls the ingest volume (default 500k
// when 0).
func RunE7(n int) E7Result {
	return RunE7Config(E7Config{Records: n})
}

// RunE7Config measures the pipeline with explicit knobs.
func RunE7Config(cfg E7Config) E7Result {
	n := cfg.Records
	if n <= 0 {
		n = 500_000
	}
	shardCounts := cfg.ShardCounts
	if shardCounts == nil {
		shardCounts = []int{1, 2, 4, 8}
	}
	recs := e7Records(n)
	var res E7Result
	res.Procs = runtime.GOMAXPROCS(0)

	// Collector ingest.
	col := core.NewCollector("vod", core.ExportPolicy{}, time.Minute, 1)
	start := time.Now()
	for i := range recs {
		col.Ingest(recs[i])
	}
	el := time.Since(start).Seconds()
	res.CollectorPerSec = float64(n) / el
	res.ImpliedSessionsPerDay = res.CollectorPerSec * 86400

	// Cluster mode: sharded collector ingest, one producer per shard.
	for _, nsh := range shardCounts {
		perSec := measureShardedIngest(recs, nsh)
		res.ShardPoints = append(res.ShardPoints, E7ShardPoint{
			Shards:  nsh,
			PerSec:  perSec,
			Speedup: perSec / res.CollectorPerSec,
		})
	}

	// Count-min.
	cm := agg.NewCountMinWithError(0.001, 0.001)
	res.SketchMemoryBytes = cm.MemoryBytes()
	start = time.Now()
	for i := range recs {
		cm.Add(recs[i].ClientISP, 1)
	}
	res.SketchAddPerSec = float64(n) / time.Since(start).Seconds()

	// P² quantile.
	p2 := agg.NewP2(0.95)
	start = time.Now()
	for i := range recs {
		p2.Add(recs[i].Score)
	}
	res.P2AddPerSec = float64(n) / time.Since(start).Seconds()

	// Looking-glass round trips over loopback.
	store := auth.NewStore()
	store.Register("tok", "isp-a", auth.ScopeA2IQoE)
	srv := lookingglass.NewServer(store, nil, lookingglass.Sources{
		QoESummaries: col.Summaries,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := lookingglass.NewClient(ts.URL, "tok", ts.Client())
	const reqs = 64
	lat := make([]time.Duration, 0, reqs)
	ctx := context.Background()
	for i := 0; i < reqs; i++ {
		t0 := time.Now()
		if _, err := client.QoESummaries(ctx); err != nil {
			panic(fmt.Sprintf("expt: E7 looking-glass query: %v", err))
		}
		lat = append(lat, time.Since(t0))
	}
	// Median by insertion sort (small n).
	for i := 1; i < len(lat); i++ {
		for j := i; j > 0 && lat[j] < lat[j-1]; j-- {
			lat[j], lat[j-1] = lat[j-1], lat[j]
		}
	}
	res.QueryP50 = lat[len(lat)/2]

	// Allocator churn: session start/stop/adapt mutations against a
	// many-component topology (64 disjoint "rails" of 3 links, 8 flows
	// each). Each mutation touches one rail; the incremental allocator
	// recomputes only that rail's component while the full pass re-solves
	// all 512 flows every time.
	const (
		churnRails    = 64
		churnLinks    = 3
		churnFlows    = 8
		churnMuts     = 6_000
		churnCapacity = 50e6
	)
	// measureAllocs wraps an ops-long hot loop with the runtime's cumulative
	// allocation counters (TotalAlloc/Mallocs are monotonic, so concurrent
	// GC cannot corrupt the deltas) when -alloc asked for heap columns.
	measureAllocs := func(ops int, loop func()) E7Alloc {
		if !cfg.MeasureAllocs {
			loop()
			return E7Alloc{}
		}
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		loop()
		runtime.ReadMemStats(&m1)
		return E7Alloc{
			Measured:    true,
			BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(ops),
			AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(ops),
		}
	}

	var churnStats netsim.Stats
	churn := func(cutoff float64, autoTune, useRegistry bool) (float64, E7Alloc) {
		topo := netsim.NewTopology()
		paths := make([]netsim.Path, churnRails)
		for r := 0; r < churnRails; r++ {
			for l := 0; l < churnLinks; l++ {
				lk := topo.AddLink(
					netsim.NodeID(fmt.Sprintf("r%d-n%d", r, l)),
					netsim.NodeID(fmt.Sprintf("r%d-n%d", r, l+1)),
					churnCapacity, time.Millisecond, "rail")
				paths[r] = append(paths[r], lk)
			}
		}
		nw := netsim.NewNetwork(topo)
		nw.IncrementalCutoff = cutoff
		nw.AutoTuneCutoff = autoTune
		nw.UseRegistry = useRegistry
		flows := make([]*netsim.Flow, 0, churnRails*churnFlows)
		nw.Batch(func() {
			for r := 0; r < churnRails; r++ {
				for i := 0; i < churnFlows; i++ {
					flows = append(flows, nw.StartFlow(paths[r], 4e6, "churn"))
				}
			}
		})
		var rate float64
		alloc := measureAllocs(churnMuts, func() {
			t0 := time.Now()
			for i := 0; i < churnMuts; i++ {
				// (i + i/len) decorrelates the value from the flow index so
				// every visit actually changes the demand/weight (the setters
				// no-op on unchanged values).
				switch i % 3 {
				case 0:
					nw.SetDemand(flows[i%len(flows)], float64(1+(i+i/len(flows))%8)*1e6)
				case 1:
					r := i % churnRails
					nw.StopFlow(flows[r*churnFlows])
					flows[r*churnFlows] = nw.StartFlow(paths[r], 4e6, "churn")
				default:
					nw.SetWeight(flows[i%len(flows)], float64(1+(i+i/len(flows))%4))
				}
			}
			rate = float64(churnMuts) / time.Since(t0).Seconds()
		})
		churnStats = nw.Stats()
		return rate, alloc
	}
	res.ChurnFullPerSec, res.ChurnFullAlloc = churn(0, false, false) // cutoff 0 forces full recomputation
	res.ChurnIncrementalPerSec, res.ChurnIncrementalAlloc = churn(netsim.DefaultIncrementalCutoff, false, false)
	res.ChurnRegistryPerSec, res.ChurnRegistryAlloc = churn(netsim.DefaultIncrementalCutoff, false, true)
	res.ChurnStats = churnStats
	res.ChurnAutoTunePerSec, res.ChurnAutoTuneAlloc = churn(netsim.DefaultIncrementalCutoff, true, true)
	if res.ChurnFullPerSec > 0 {
		res.ChurnSpeedup = res.ChurnIncrementalPerSec / res.ChurnFullPerSec
	}
	if res.ChurnIncrementalPerSec > 0 {
		res.ChurnRegistrySpeedup = res.ChurnRegistryPerSec / res.ChurnIncrementalPerSec
	}

	// Coalesced-reaction churn: 8 same-instant monitor-style reactions per
	// simulated tick, spread over 2 of 4 components (8 flows each),
	// committed one-by-one vs folded into one end-of-tick batch by
	// control.Coalescer.
	const reactTicks, reactPerTick = 4_000, 8
	var uncoalStats, coalStats netsim.Stats
	react := func(coalesce bool) (float64, E7Alloc) {
		const comps, perComp, spread = 4, 8, 2
		eng := sim.NewEngine(1)
		topo := netsim.NewTopology()
		paths := make([]netsim.Path, comps)
		for c := 0; c < comps; c++ {
			paths[c] = netsim.Path{topo.AddLink(
				netsim.NodeID(fmt.Sprintf("c%d-a", c)),
				netsim.NodeID(fmt.Sprintf("c%d-b", c)),
				churnCapacity, time.Millisecond, "react")}
		}
		nw := netsim.NewNetwork(topo)
		flows := make([]*netsim.Flow, 0, comps*perComp)
		nw.Batch(func() {
			for c := 0; c < comps; c++ {
				for i := 0; i < perComp; i++ {
					flows = append(flows, nw.StartFlow(paths[c], 4e6, "react"))
				}
			}
		})
		coal := control.NewCoalescer(eng, nw)
		tick := 0
		eng.Every(time.Millisecond, func(*sim.Engine) bool {
			tick++
			if tick > reactTicks {
				return false
			}
			for r := 0; r < reactPerTick; r++ {
				f := flows[(r%spread)*perComp+(tick+r/spread)%perComp]
				val := 1e6 * float64(1+(tick+r)%8)
				if coalesce {
					coal.Defer(func() { nw.SetDemand(f, val) })
				} else {
					nw.SetDemand(f, val)
				}
			}
			return true
		})
		var rate float64
		alloc := measureAllocs(reactTicks*reactPerTick, func() {
			t0 := time.Now()
			eng.Run(time.Duration(reactTicks+1) * time.Millisecond)
			rate = float64(reactTicks*reactPerTick) / time.Since(t0).Seconds()
		})
		if coalesce {
			coalStats = nw.Stats()
		} else {
			uncoalStats = nw.Stats()
		}
		return rate, alloc
	}
	res.ReactUncoalescedPerSec, res.ReactUncoalescedAlloc = react(false)
	res.ReactCoalescedPerSec, res.ReactCoalescedAlloc = react(true)
	res.ReactStats = coalStats
	if coalStats.FlowsRecomputed > 0 {
		res.ReactFlowsSaved = float64(uncoalStats.FlowsRecomputed) / float64(coalStats.FlowsRecomputed)
	}

	// Shared-network driver sweep: the same lifecycle churn routed through
	// a netsim.SharedNetwork's owner goroutine from N concurrent drivers.
	driverCounts := cfg.DriverCounts
	if driverCounts == nil {
		driverCounts = []int{1, 2, 4}
	}
	if len(driverCounts) > 0 {
		res.SharedSerialPerSec = measureSharedDrivers(0)
		for _, d := range driverCounts {
			perSec := measureSharedDrivers(d)
			pt := E7DriverPoint{Drivers: d, PerSec: perSec}
			if res.SharedSerialPerSec > 0 {
				pt.Speedup = perSec / res.SharedSerialPerSec
			}
			res.DriverPoints = append(res.DriverPoints, pt)
		}
	}

	// Multi-driver engine sweep: the whole partitioned scenario — arrivals,
	// monitors, faults, per-instant Commit barrier — at each worker count,
	// with every run's digest checked against the workers=1 reference.
	workerCounts := cfg.EngineWorkerCounts
	if workerCounts == nil {
		workerCounts = []int{1, 2, 4}
	}
	if len(workerCounts) > 0 {
		ref := RunEngineArm(DefaultEngineArmConfig(7, 1))
		refPerSec := ref.EventsPerSec
		for _, w := range workerCounts {
			arm := ref
			if w != 1 {
				arm = RunEngineArm(DefaultEngineArmConfig(7, w))
			}
			pt := E7EnginePoint{
				Workers:   w,
				PerSec:    arm.EventsPerSec,
				Identical: arm.Digest == ref.Digest,
			}
			if refPerSec > 0 {
				pt.Speedup = arm.EventsPerSec / refPerSec
			}
			res.EnginePoints = append(res.EnginePoints, pt)
		}
	}
	return res
}

// measureSharedDrivers times lifecycle churn against one SharedNetwork:
// `drivers` goroutines each own a disjoint subset of rails and push
// demand/stop/start mutations through the owner goroutine while one reader
// goroutine spins on published snapshots. drivers == 0 measures the
// baseline: the identical single-goroutine workload applied directly to
// the serial Network (no command channel, no snapshots).
func measureSharedDrivers(drivers int) float64 {
	const (
		sRails    = 32
		sLinks    = 2
		sFlows    = 4
		sMuts     = 8_000
		sCapacity = 50e6
	)
	topo := netsim.NewTopology()
	paths := make([]netsim.Path, sRails)
	for r := 0; r < sRails; r++ {
		for l := 0; l < sLinks; l++ {
			lk := topo.AddLink(
				netsim.NodeID(fmt.Sprintf("sr%d-n%d", r, l)),
				netsim.NodeID(fmt.Sprintf("sr%d-n%d", r, l+1)),
				sCapacity, time.Millisecond, "shared-rail")
			paths[r] = append(paths[r], lk)
		}
	}
	nw := netsim.NewNetwork(topo)
	flows := make([][]*netsim.Flow, sRails)
	nw.Batch(func() {
		for r := 0; r < sRails; r++ {
			for i := 0; i < sFlows; i++ {
				flows[r] = append(flows[r], nw.StartFlow(paths[r], 4e6, "shared"))
			}
		}
	})

	// churnRail applies one mutation to rail r using the given mutators.
	type mutator struct {
		setDemand func(f *netsim.Flow, bps float64)
		stop      func(f *netsim.Flow)
		start     func(p netsim.Path, bps float64) *netsim.Flow
	}
	churnRail := func(m mutator, r, i int) {
		fs := flows[r]
		switch i % 3 {
		case 0:
			m.setDemand(fs[i%len(fs)], float64(1+(i+i/len(fs))%8)*1e6)
		case 1:
			m.stop(fs[0])
			fs[0] = m.start(paths[r], 4e6)
		default:
			m.setDemand(fs[(i+1)%len(fs)], float64(1+(i+i/len(fs))%4)*2e6)
		}
	}

	if drivers == 0 {
		m := mutator{
			setDemand: nw.SetDemand,
			stop:      nw.StopFlow,
			start:     func(p netsim.Path, bps float64) *netsim.Flow { return nw.StartFlow(p, bps, "shared") },
		}
		t0 := time.Now()
		for i := 0; i < sMuts; i++ {
			churnRail(m, i%sRails, i)
		}
		return float64(sMuts) / time.Since(t0).Seconds()
	}

	if drivers > sRails {
		drivers = sRails // one rail is the smallest unit of ownership
	}
	s := netsim.NewShared(nw, netsim.SharedConfig{})
	m := mutator{
		setDemand: s.SetDemand,
		stop:      s.StopFlow,
		start:     func(p netsim.Path, bps float64) *netsim.Flow { return s.StartFlow(p, bps, "shared") },
	}
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			sn := s.Snapshot()
			_ = sn.Utilization(paths[i%sRails][0].ID)
			_ = sn.NumFlows()
			i++
		}
	}()
	perDriver := sMuts / drivers
	t0 := time.Now()
	var wg sync.WaitGroup
	for d := 0; d < drivers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			// Disjoint rail ownership: driver d churns exactly the rails
			// ≡ d (mod drivers), so per-rail flow-handle slices are never
			// shared between drivers.
			var own []int
			for r := d; r < sRails; r += drivers {
				own = append(own, r)
			}
			for i := 0; i < perDriver; i++ {
				churnRail(m, own[i%len(own)], i)
			}
		}(d)
	}
	wg.Wait()
	el := time.Since(t0).Seconds()
	close(stop)
	readerWG.Wait()
	s.Close()
	return float64(drivers*perDriver) / el
}

// measureShardedIngest times end-to-end sharded ingest of recs: nsh shards,
// one producer goroutine per shard pushing 512-record batches, closed and
// drained before the clock stops.
func measureShardedIngest(recs []core.QoERecord, nsh int) float64 {
	sc := core.NewShardedCollector("vod", core.ExportPolicy{}, time.Minute, 1, nsh)
	chunk := (len(recs) + nsh - 1) / nsh
	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < nsh; p++ {
		lo := p * chunk
		hi := min(lo+chunk, len(recs))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(part []core.QoERecord) {
			defer wg.Done()
			const batch = 512
			for i := 0; i < len(part); i += batch {
				sc.IngestBatch(part[i:min(i+batch, len(part))])
			}
		}(recs[lo:hi])
	}
	wg.Wait()
	sc.Close()
	return float64(len(recs)) / time.Since(start).Seconds()
}

// Table renders the measurements. When any row carries alloc columns
// (eona-bench -alloc) the table widens to five columns and rows without a
// measurement show "-".
func (r E7Result) Table() *Table {
	allocMode := r.ChurnFullAlloc.Measured || r.ChurnIncrementalAlloc.Measured ||
		r.ChurnRegistryAlloc.Measured || r.ChurnAutoTuneAlloc.Measured ||
		r.ReactUncoalescedAlloc.Measured || r.ReactCoalescedAlloc.Measured
	t := &Table{
		Title:   "E7 (§5): A2I pipeline scalability (single core)",
		Columns: []string{"stage", "throughput", "note"},
	}
	if allocMode {
		t.Columns = []string{"stage", "throughput", "B/op", "allocs/op", "note"}
	}
	add := func(stage, throughput string, al E7Alloc, note string) {
		if !allocMode {
			t.AddRow(stage, throughput, note)
			return
		}
		bop, aop := "-", "-"
		if al.Measured {
			bop = fmt.Sprintf("%.0f", al.BytesPerOp)
			aop = fmt.Sprintf("%.2f", al.AllocsPerOp)
		}
		t.AddRow(stage, throughput, bop, aop, note)
	}
	add("Collector.Ingest (full rollup)",
		fmt.Sprintf("%.2fM rec/s", r.CollectorPerSec/1e6), E7Alloc{},
		fmt.Sprintf("≈ %.1fB sessions/day", r.ImpliedSessionsPerDay/1e9))
	for _, p := range r.ShardPoints {
		add(fmt.Sprintf("cluster ingest (%d shards)", p.Shards),
			fmt.Sprintf("%.2fM rec/s", p.PerSec/1e6), E7Alloc{},
			fmt.Sprintf("%.2f× vs single-goroutine", p.Speedup))
	}
	add("count-min sketch add",
		fmt.Sprintf("%.2fM ops/s", r.SketchAddPerSec/1e6), E7Alloc{},
		fmt.Sprintf("%.1f MiB at ε=δ=0.1%%", float64(r.SketchMemoryBytes)/(1<<20)))
	add("P² quantile add",
		fmt.Sprintf("%.2fM ops/s", r.P2AddPerSec/1e6), E7Alloc{}, "O(1) memory")
	add("looking-glass query (loopback)",
		fmt.Sprintf("p50 %s", r.QueryP50), E7Alloc{}, "auth + encode + HTTP round trip")
	add("allocator churn (full recompute)",
		fmt.Sprintf("%.1fk muts/s", r.ChurnFullPerSec/1e3), r.ChurnFullAlloc,
		"512 flows, 64 components, re-solve all per mutation")
	add("allocator churn (incremental, BFS discovery)",
		fmt.Sprintf("%.1fk muts/s", r.ChurnIncrementalPerSec/1e3), r.ChurnIncrementalAlloc,
		fmt.Sprintf("affected component only — %.0f× faster", r.ChurnSpeedup))
	add("allocator churn (component registry)",
		fmt.Sprintf("%.1fk muts/s", r.ChurnRegistryPerSec/1e3), r.ChurnRegistryAlloc,
		fmt.Sprintf("persistent membership, no per-commit BFS — %.2f× vs BFS", r.ChurnRegistrySpeedup))
	add("allocator churn (auto-tuned cutoff)",
		fmt.Sprintf("%.1fk muts/s", r.ChurnAutoTunePerSec/1e3), r.ChurnAutoTuneAlloc,
		"registry + per-component cutoff tuning")
	if len(r.DriverPoints) > 0 {
		add("shared-network churn (serial baseline)",
			fmt.Sprintf("%.1fk muts/s", r.SharedSerialPerSec/1e3), E7Alloc{},
			"same workload on the raw Network, no command channel")
		for _, p := range r.DriverPoints {
			add(fmt.Sprintf("shared-network churn (%d drivers)", p.Drivers),
				fmt.Sprintf("%.1fk muts/s", p.PerSec/1e3), E7Alloc{},
				fmt.Sprintf("%.2f× vs direct serial; snapshot reader live", p.Speedup))
		}
	}
	for _, p := range r.EnginePoints {
		ident := "bit-identical to workers=1"
		if !p.Identical {
			ident = "DIGEST MISMATCH vs workers=1"
		}
		add(fmt.Sprintf("multi-driver engine (%d workers)", p.Workers),
			fmt.Sprintf("%.1fk ev/s", p.PerSec/1e3), E7Alloc{},
			fmt.Sprintf("%.2f× vs 1 worker; %s", p.Speedup, ident))
	}
	if r.ReactUncoalescedPerSec > 0 {
		add("reaction churn (uncoalesced)",
			fmt.Sprintf("%.1fk react/s", r.ReactUncoalescedPerSec/1e3), r.ReactUncoalescedAlloc,
			"8 same-instant reactions → 8 reallocations per tick")
		add("reaction churn (coalesced end-of-tick)",
			fmt.Sprintf("%.1fk react/s", r.ReactCoalescedPerSec/1e3), r.ReactCoalescedAlloc,
			fmt.Sprintf("one batch per tick — %.1f× fewer flows re-solved", r.ReactFlowsSaved))
	}
	if allocMode {
		t.Notes = append(t.Notes,
			"B/op and allocs/op are runtime MemStats deltas over each mutation loop (-alloc); lifecycle restarts keep the per-flow handle allocation")
	}
	t.Notes = append(t.Notes,
		"paper: 'tens [of] millions of sessions each day' — one core covers that with orders of magnitude to spare")
	if len(r.ShardPoints) > 0 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("cluster rows measured at GOMAXPROCS=%d; shard speedup is bounded by available cores", r.Procs))
	}
	if len(r.DriverPoints) > 0 {
		note := fmt.Sprintf("driver rows measured at GOMAXPROCS=%d", r.Procs)
		if r.Procs == 1 {
			note += "; on one core they price the command-channel hop, not parallel speedup"
		}
		t.Notes = append(t.Notes, note)
	}
	if len(r.EnginePoints) > 0 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("engine rows run the full partitioned scenario at GOMAXPROCS=%d; worker count never changes results (digest-checked), only wall-clock", r.Procs))
	}
	t.Verbose = append(t.Verbose,
		fmt.Sprintf("registry churn stats: %s", statsLine(r.ChurnStats)),
		fmt.Sprintf("coalesced reaction stats: %s", statsLine(r.ReactStats)))
	return t
}

// statsLine renders an allocator stats snapshot for -v output.
func statsLine(s netsim.Stats) string {
	return fmt.Sprintf(
		"reallocs=%d incremental=%d flows-recomputed=%d components-recomputed=%d registry-rebuilds=%d coalesced-reactions=%d",
		s.Reallocations, s.IncrementalReallocations, s.FlowsRecomputed,
		s.ComponentsRecomputed, s.RegistryRebuilds, s.CoalescedReactions)
}
