package expt

import (
	"reflect"
	"testing"
	"time"

	"eona/internal/faults"
	"eona/internal/netsim"
)

// engineArmFixtures mirrors the topology shapes the allocator differentials
// are pinned on (netsim's line/rails/e1/skewed fixture set), packaged for
// the multi-driver harness: per-region candidate paths plus named fault
// targets.
func engineArmFixtures() map[string]func() EngineArmTopology {
	return map[string]func() EngineArmTopology{
		"line": func() EngineArmTopology {
			topo := netsim.NewTopology()
			a := topo.AddLink("src", "m1", 100e6, 2*time.Millisecond, "a")
			b := topo.AddLink("m1", "m2", 80e6, 2*time.Millisecond, "b")
			c := topo.AddLink("m2", "dst", 120e6, 2*time.Millisecond, "c")
			return EngineArmTopology{
				Topo: topo,
				RegionPaths: [][]netsim.Path{
					{{a, b, c}, {a}},
					{{b, c}, {a, b}},
				},
				FaultTarget: map[string]faults.Target{"mid": {ID: b.ID, BaseBps: 80e6}},
			}
		},
		"rails": func() EngineArmTopology {
			topo := netsim.NewTopology()
			var regions [][]netsim.Path
			var first *netsim.Link
			for r := 0; r < 4; r++ {
				from := netsim.NodeID(rune('a' + r))
				mid := netsim.NodeID(rune('m'))
				to := netsim.NodeID(rune('A' + r))
				l1 := topo.AddLink(from, mid, 90e6, time.Millisecond, "")
				l2 := topo.AddLink(mid, to, 90e6, time.Millisecond, "")
				if first == nil {
					first = l1
				}
				regions = append(regions, []netsim.Path{{l1, l2}, {l1}})
			}
			return EngineArmTopology{
				Topo:        topo,
				RegionPaths: regions,
				FaultTarget: map[string]faults.Target{"rail0": {ID: first.ID, BaseBps: 90e6}},
			}
		},
		"e1": func() EngineArmTopology {
			// The flash-crowd shape: two CDN paths funnelling into one
			// shared access bottleneck.
			topo := netsim.NewTopology()
			cdn1 := topo.AddLink("cdn1", "peer", 400e6, 5*time.Millisecond, "cdn1")
			cdn2 := topo.AddLink("cdn2", "peer", 400e6, 15*time.Millisecond, "cdn2")
			access := topo.AddLink("peer", "users", 150e6, 3*time.Millisecond, "access")
			return EngineArmTopology{
				Topo: topo,
				RegionPaths: [][]netsim.Path{
					{{cdn1, access}},
					{{cdn2, access}},
				},
				FaultTarget: map[string]faults.Target{"access": {ID: access.ID, BaseBps: 150e6}},
			}
		},
		"skewed": func() EngineArmTopology {
			topo := netsim.NewTopology()
			hub := topo.AddLink("hubA", "hubB", 1000e6, time.Millisecond, "hub")
			regions := [][]netsim.Path{{{hub}}}
			for i := 0; i < 4; i++ {
				from := netsim.NodeID(rune('a' + i))
				to := netsim.NodeID(rune('A' + i))
				regions = append(regions, []netsim.Path{{topo.AddLink(from, to, 90e6, time.Millisecond, "")}})
			}
			return EngineArmTopology{
				Topo:        topo,
				RegionPaths: regions,
				FaultTarget: map[string]faults.Target{"hub": {ID: hub.ID, BaseBps: 1000e6}},
			}
		},
	}
}

func engineArmConfig(build func() EngineArmTopology, workers int) EngineArmConfig {
	return EngineArmConfig{
		Seed:          7,
		Regions:       4,
		Workers:       workers,
		Horizon:       90 * time.Second,
		ArrivalRate:   0.4,
		SessionDemand: 30e6,
		SessionLife:   30 * time.Second,
		MonitorEvery:  4 * time.Second,
		Plan: &faults.Plan{LinkFaults: []faults.LinkFault{{
			Link:   firstTargetName(build()),
			Window: faults.Window{Start: 30 * time.Second, End: 60 * time.Second},
			Factor: 0.3,
		}}},
		Build: build,
	}
}

func firstTargetName(top EngineArmTopology) string {
	for name := range top.FaultTarget {
		return name
	}
	return ""
}

// TestEngineArmDifferentialOnFixtures is the multi-driver determinism pin:
// on every topology fixture, the same scenario run with 1 worker (the
// serial reference) and with 4 workers commits a bit-identical op log and
// lands on a bit-identical network (equal digests), processes the same
// event count, and stops at the same clock.
func TestEngineArmDifferentialOnFixtures(t *testing.T) {
	for name, build := range engineArmFixtures() {
		build := build
		t.Run(name, func(t *testing.T) {
			serial := RunEngineArm(engineArmConfig(build, 1))
			parallel := RunEngineArm(engineArmConfig(build, 4))
			if serial.Digest != parallel.Digest {
				t.Errorf("digest %x (workers=1) != %x (workers=4)", serial.Digest, parallel.Digest)
			}
			if serial.Processed != parallel.Processed {
				t.Errorf("Processed %d != %d", serial.Processed, parallel.Processed)
			}
			if serial.FinalClock != parallel.FinalClock {
				t.Errorf("FinalClock %v != %v", serial.FinalClock, parallel.FinalClock)
			}
			if serial.Ops != parallel.Ops {
				t.Errorf("op count %d != %d", serial.Ops, parallel.Ops)
			}
			if serial.SessionsStarted != parallel.SessionsStarted ||
				serial.SessionsStopped != parallel.SessionsStopped ||
				serial.MonitorTriggers != parallel.MonitorTriggers {
				t.Errorf("session stats differ: %+v vs %+v", serial, parallel)
			}
			if serial.SessionsStarted == 0 {
				t.Error("scenario started no sessions; differential is vacuous")
			}
			if serial.Ops == 0 {
				t.Error("no ops committed; differential is vacuous")
			}
		})
	}
}

// Same config twice → same digest: the harness has no hidden run-to-run
// state (wall-clock, map iteration, scheduler timing).
func TestEngineArmRepeatable(t *testing.T) {
	build := engineArmFixtures()["e1"]
	a := RunEngineArm(engineArmConfig(build, 0)) // 0 = GOMAXPROCS
	b := RunEngineArm(engineArmConfig(build, 0))
	if a.Digest != b.Digest || a.Processed != b.Processed {
		t.Errorf("repeat run diverged: digest %x/%x processed %d/%d",
			a.Digest, b.Digest, a.Processed, b.Processed)
	}
}

// BenchmarkEngineArm prices a full multi-driver run at 1 and 4 workers; on
// a multi-core runner the workers-4 row shows the wall-clock speedup the
// lockstep engine buys (on one core both rows cost the same, which the
// bench gate tolerates).
func BenchmarkEngineArm(b *testing.B) {
	build := engineArmFixtures()["rails"]
	for _, workers := range []int{1, 4} {
		name := map[int]string{1: "workers-1", 4: "workers-4"}[workers]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				RunEngineArm(engineArmConfig(build, workers))
			}
		})
	}
}

// TestE1DriversBitIdentical pins the facade contract: an E1 arm run on the
// serial engine, on the lockstep engine with 1 worker, and with 4 workers
// produces the same result bit for bit.
func TestE1DriversBitIdentical(t *testing.T) {
	arm := func(drivers int) E1Result {
		r := RunE1Arm(E1Config{Seed: 11, Horizon: 4 * time.Minute, Drivers: drivers})
		r.Config = E1Config{} // configs differ only in Drivers
		return r
	}
	serial := arm(0)
	for _, d := range []int{1, 4} {
		if got := arm(d); !reflect.DeepEqual(got, serial) {
			t.Errorf("Drivers=%d diverged from serial:\n%+v\nvs\n%+v", d, got, serial)
		}
	}
	if serial.Sessions == 0 {
		t.Error("arm saw no sessions; identity check is vacuous")
	}
}

// TestE4DriversBitIdentical is the E4 counterpart.
func TestE4DriversBitIdentical(t *testing.T) {
	arm := func(drivers int) E4Result {
		r := RunE4Arm(E4Config{Seed: 11, Horizon: 3 * time.Minute, FailAt: time.Minute, Drivers: drivers})
		r.Config = E4Config{}
		return r
	}
	serial := arm(0)
	for _, d := range []int{1, 4} {
		if got := arm(d); !reflect.DeepEqual(got, serial) {
			t.Errorf("Drivers=%d diverged from serial:\n%+v\nvs\n%+v", d, got, serial)
		}
	}
	if serial.Sessions == 0 {
		t.Error("arm saw no sessions; identity check is vacuous")
	}
}
