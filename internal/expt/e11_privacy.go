package expt

import (
	"math"

	"eona/internal/privacy"
	"eona/internal/qoe"
)

// E11 — §4 "balancing effectiveness vs. minimality".
//
// Paper claim: "In order that necessary information is shared while
// preserving privacy concerns, one can think of using standard techniques
// such as aggregation or other types of 'blinding' techniques." The §4
// example gives A2I "an estimate of the total volume of traffic intended to
// different CDNs so that the InfP can decide a suitable traffic split
// across peering points."
//
// We implement exactly that traffic-split use: every epoch the ISP sizes
// the share of CDN X's traffic it egresses via the cheap local peering B
// (capacity 100 Mbps) from the AppP's volume estimate, spilling the rest to
// the IXP peering C. The estimate carries Laplace noise at privacy budget
// ε (sensitivity: one 3 Mbps session). Underestimates oversubscribe B and
// starve sessions; the sweep maps blinding level onto retained control
// quality. Without any estimate the ISP falls back to cost preference
// (everything via B) — the no-sharing floor.

// E11Point is one privacy level.
type E11Point struct {
	// Epsilon is the Laplace privacy budget; +Inf means exact export.
	Epsilon float64
	// MeanScore is the mean per-epoch QoE score.
	MeanScore float64
	// CongestedEpochs counts epochs where the B slice was starved.
	CongestedEpochs int
	// MeanAbsEstErrBps is the mean absolute estimate error.
	MeanAbsEstErrBps float64
}

// E11Result is the sweep plus the no-sharing floor.
type E11Result struct {
	Points []E11Point
	// BaselineScore is the no-sharing (cost-preference) floor.
	BaselineScore float64
	Epochs        int
}

// E11Epsilons is the privacy ladder (Inf = exact).
var E11Epsilons = []float64{math.Inf(1), 1, 0.03, 0.01, 0.003}

const (
	e11Nominal = 3e6
	e11CapB    = 100e6
	e11CapC    = 400e6
	e11Epochs  = 240
)

// e11Demand swells between 110 and 190 Mbps so both peerings stay relevant.
func e11Demand(epoch int) float64 {
	return 150e6 + 40e6*math.Sin(2*math.Pi*float64(epoch)/60)
}

// e11Score scores one epoch of a split: traffic split into a B slice and a
// C slice, each delivering min(demand, capacity) with the fig5 scoring
// model (bitrate utility minus starvation penalty).
func e11Score(model qoe.Model, demandB, demandC float64) float64 {
	total := demandB + demandC
	if total <= 0 {
		return 100
	}
	score := 0.0
	for _, slice := range []struct{ demand, cap float64 }{
		{demandB, e11CapB}, {demandC, e11CapC},
	} {
		if slice.demand <= 0 {
			continue
		}
		sessions := slice.demand / e11Nominal
		delivered := math.Min(slice.demand, slice.cap)
		per := delivered / sessions
		starvation := 1 - per/e11Nominal
		if starvation < 0 {
			starvation = 0
		}
		s := 100*model.BitrateUtility(per) - model.BufferingPenalty*100*0.5*starvation
		if s < 0 {
			s = 0
		}
		score += s * slice.demand / total
	}
	return score
}

// RunE11 executes the privacy sweep.
func RunE11(seed int64) E11Result {
	model := qoe.DefaultModel()
	model.MaxBitrate = e11Nominal
	out := E11Result{Epochs: e11Epochs}

	for _, eps := range E11Epsilons {
		noiser := privacy.NewNoiser(0, e11Nominal, seed)
		if !math.IsInf(eps, 1) {
			noiser = privacy.NewNoiser(eps, e11Nominal, seed)
		}
		var p E11Point
		p.Epsilon = eps
		for epoch := 0; epoch < e11Epochs; epoch++ {
			v := e11Demand(epoch)
			est := noiser.Noise(v)
			if est < 0 {
				est = 0
			}
			p.MeanAbsEstErrBps += math.Abs(est - v)
			// ISP sizes the cheap-B slice to the estimate, with
			// 10% safety margin, spilling the rest to C. With no
			// estimated traffic it defaults to cost preference:
			// everything via the cheap local peering B.
			fB := 1.0
			if est > 0 {
				fB = math.Min(e11CapB/1.1, est) / est
			}
			demandB := fB * v
			demandC := v - demandB
			if demandB > e11CapB {
				p.CongestedEpochs++
			}
			p.MeanScore += e11Score(model, demandB, demandC)
		}
		p.MeanScore /= e11Epochs
		p.MeanAbsEstErrBps /= e11Epochs
		out.Points = append(out.Points, p)
	}

	// No-sharing floor: cost preference sends everything via B until it
	// observes congestion — modelled as routing min(v, capB) blindly by
	// *yesterday's* habit: all traffic via B (the pre-EONA default).
	for epoch := 0; epoch < e11Epochs; epoch++ {
		v := e11Demand(epoch)
		out.BaselineScore += e11Score(model, v, 0)
	}
	out.BaselineScore /= e11Epochs
	return out
}

// Table renders the ladder.
func (r E11Result) Table() *Table {
	t := &Table{
		Title:   "E11 (§4): A2I volume-estimate blinding vs traffic-split quality",
		Columns: []string{"noise ε", "mean QoE score", "congested epochs", "mean |est err| (Mbps)"},
	}
	for _, p := range r.Points {
		name := "exact (no noise)"
		if !math.IsInf(p.Epsilon, 1) {
			name = Cell(p.Epsilon)
		}
		t.AddRow(name, Cell(p.MeanScore),
			Cell(float64(p.CongestedEpochs)),
			Cell(p.MeanAbsEstErrBps/1e6))
	}
	t.AddRow("(no sharing: all via cheap B)", Cell(r.BaselineScore), "-", "-")
	t.Notes = append(t.Notes,
		"paper §4: A2I provides 'an estimate of the total volume of traffic intended to different CDNs so that the InfP can decide a suitable traffic split across peering points'",
		"blinding (Laplace noise) trades privacy against split quality; light noise is free, heavy noise approaches the unshared floor")
	return t
}
