package expt

import (
	"math"
	"math/rand"

	"eona/internal/cdn"
)

// E5 — §2 "impacts of configuration changes" / §5 InfP control logic.
//
// Paper claim: operators "may want [to] shut down some servers to save
// energy during off-peak hours. However, they are often too conservative or
// too aggressive in the decisions because they cannot observe how these
// decisions impact user applications", and with A2I the InfP "can model how
// the server capacity impacts quality of experience and redeploy servers if
// the quality degrades significantly."
//
// A 20-server cluster rides a diurnal demand cycle (24h in 15-minute
// epochs). Four shutdown policies are compared:
//
//   - always-on: every server awake (QoE ceiling, energy floor is 100%).
//   - util-conservative: size to last epoch's demand with a 50% margin —
//     the "too conservative" operator.
//   - util-aggressive: 5% margin — the "too aggressive" operator; demand
//     noise and the reaction lag cause overload epochs.
//   - A2I feedback: moderate 15% margin *plus* the QoE summary from the
//     AppP: wake servers when the observed score drops below target, sleep
//     only while QoE is healthy.
type e5Policy interface {
	// Awake returns servers to keep awake this epoch, given last
	// epoch's observed demand (sessions) and last epoch's QoE score.
	Awake(lastDemand float64, lastScore float64) int
}

const (
	e5Servers     = 20
	e5PerServer   = 50 // concurrent sessions per server
	e5Epochs      = 96 // 24h of 15-minute epochs
	e5ScoreTarget = 90.0
	e5MinAwake    = 2
)

type e5AlwaysOn struct{}

func (e5AlwaysOn) Awake(float64, float64) int { return e5Servers }

type e5Util struct{ margin float64 }

func (p e5Util) Awake(lastDemand, _ float64) int {
	need := int(math.Ceil(lastDemand * (1 + p.margin) / e5PerServer))
	return clampServers(need)
}

type e5A2I struct {
	margin float64
	cur    int
}

func (p *e5A2I) Awake(lastDemand, lastScore float64) int {
	if p.cur == 0 {
		p.cur = e5Servers
	}
	need := int(math.Ceil(lastDemand * (1 + p.margin) / e5PerServer))
	switch {
	case lastScore < e5ScoreTarget:
		// Experience degraded: wake capacity immediately.
		p.cur = clampServers(maxInt(p.cur+2, need+1))
	case p.cur > need:
		// Healthy and over-provisioned: sleep one server per epoch.
		p.cur = clampServers(p.cur - 1)
	default:
		p.cur = clampServers(maxInt(p.cur, need))
	}
	return p.cur
}

func clampServers(n int) int {
	if n < e5MinAwake {
		return e5MinAwake
	}
	if n > e5Servers {
		return e5Servers
	}
	return n
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// e5Demand is the diurnal concurrent-session curve: trough ~150 at 4am,
// peak ~900 at 8pm, with multiplicative noise.
func e5Demand(epoch int, rng *rand.Rand) float64 {
	t := float64(epoch) / e5Epochs // day fraction
	base := 525 - 375*math.Cos(2*math.Pi*(t-0.833))
	noise := 1 + 0.08*rng.NormFloat64()
	d := base * noise
	if d < 0 {
		return 0
	}
	return d
}

// e5Score maps epoch load to a QoE score: overload (demand beyond capacity)
// rejects/degrades sessions hard; running servers hot costs a little.
func e5Score(demand, capacity float64) float64 {
	if demand <= 0 {
		return 100
	}
	util := demand / capacity
	overload := 0.0
	if util > 1 {
		overload = 1 - capacity/demand
	}
	s := 100 - 500*overload
	if util > 0.9 && util <= 1 {
		s -= 100 * (util - 0.9) // hot servers: queueing-induced degradation
	}
	if s < 0 {
		return 0
	}
	return s
}

// E5Arm is one policy's outcome.
type E5Arm struct {
	Name string
	// MeanScore and WorstScore summarize QoE over epochs.
	MeanScore, WorstScore float64
	// EnergyPct is server-epochs used relative to always-on.
	EnergyPct float64
	// OverloadEpochs counts epochs with demand above capacity.
	OverloadEpochs int
}

// E5Result holds all arms.
type E5Result struct {
	Arms []E5Arm
}

// RunE5 executes the policy comparison on identical demand traces. Each
// arm operates a real cdn.Cluster: the policy's decision is applied by
// putting servers to sleep or waking them, and capacity is whatever the
// cluster reports.
func RunE5(seed int64) E5Result {
	policies := []struct {
		name string
		p    e5Policy
	}{
		{"always-on", e5AlwaysOn{}},
		{"util-conservative (+50%)", e5Util{margin: 0.5}},
		{"util-aggressive (+5%)", e5Util{margin: 0.05}},
		{"A2I feedback (+15% & QoE target)", &e5A2I{margin: 0.15}},
	}
	var out E5Result
	for _, pol := range policies {
		rng := rand.New(rand.NewSource(seed)) // identical trace per arm
		cluster := cdn.NewCluster("dc1", "dc1", e5Servers, e5PerServer, 1, 0)
		arm := E5Arm{Name: pol.name, WorstScore: 100}
		lastDemand, lastScore := 500.0, 100.0
		usedServerEpochs := 0
		for epoch := 0; epoch < e5Epochs; epoch++ {
			target := pol.p.Awake(lastDemand, lastScore)
			applySleepTarget(cluster, target)
			awake := cluster.AwakeServers()
			capacity := float64(cluster.TotalCapacity())
			demand := e5Demand(epoch, rng)
			score := e5Score(demand, capacity)
			usedServerEpochs += awake
			arm.MeanScore += score
			if score < arm.WorstScore {
				arm.WorstScore = score
			}
			if demand > capacity {
				arm.OverloadEpochs++
			}
			lastDemand, lastScore = demand, score
		}
		arm.MeanScore /= e5Epochs
		arm.EnergyPct = 100 * float64(usedServerEpochs) / float64(e5Servers*e5Epochs)
		out.Arms = append(out.Arms, arm)
	}
	return out
}

// applySleepTarget wakes or sleeps servers (highest-index first asleep) so
// exactly target servers are awake.
func applySleepTarget(cluster *cdn.Cluster, target int) {
	if target < 0 {
		target = 0
	}
	if target > len(cluster.Servers) {
		target = len(cluster.Servers)
	}
	for i, s := range cluster.Servers {
		s.SetAsleep(i >= target)
	}
}

// Table renders the policy comparison.
func (r E5Result) Table() *Table {
	t := &Table{
		Title:   "E5 (§2/§5): off-peak server shutdown — energy vs experience",
		Columns: []string{"policy", "mean QoE score", "worst epoch", "overload epochs", "energy (% of always-on)"},
	}
	for _, a := range r.Arms {
		t.AddRow(a.Name, Cell(a.MeanScore), Cell(a.WorstScore),
			Cell(float64(a.OverloadEpochs)), Cell(a.EnergyPct))
	}
	t.Notes = append(t.Notes,
		"paper: operators are 'often too conservative or too aggressive ... because they cannot observe how these decisions impact user applications'",
		"the A2I-feedback policy matches always-on QoE at a fraction of the energy")
	return t
}
