package expt

import "testing"

func TestE2SensitivityRegime(t *testing.T) {
	points := RunE2Sensitivity(1)
	if len(points) != 6 {
		t.Fatalf("points = %d", len(points))
	}
	byDemand := map[float64]E2SensitivityPoint{}
	for _, p := range points {
		byDemand[p.DemandBps] = p
	}
	// Well below peering B's capacity there is nothing to oscillate
	// about.
	if byDemand[50e6].BaselineOscillates {
		t.Error("baseline oscillated at light load")
	}
	// At exactly the TE high-water boundary (90 Mbps = 0.9×B) the
	// cost-greedy ISP may flap egresses, but harmlessly: both paths fit
	// the load, so the flapping must not cost QoE.
	if byDemand[90e6].BaselineScore < 99 {
		t.Errorf("boundary flapping cost QoE: %v", byDemand[90e6].BaselineScore)
	}
	// In the paper's regime (demand > B, > Y) the cycle appears.
	for _, d := range []float64{110e6, 150e6, 250e6} {
		if !byDemand[d].BaselineOscillates {
			t.Errorf("baseline did not oscillate at %.0f Mbps", d/1e6)
		}
	}
	// EONA dominates or ties everywhere (small tolerance for the
	// one-epoch initial transient).
	for _, p := range points {
		if p.EONAScore < p.BaselineScore-1 {
			t.Errorf("at %.0f Mbps EONA (%v) fell below baseline (%v)",
				p.DemandBps/1e6, p.EONAScore, p.BaselineScore)
		}
	}
}

func TestE2SensitivityTableRenders(t *testing.T) {
	s := SensitivityTable(RunE2Sensitivity(1)).String()
	if !contains(s, "oscillation regime") || !contains(s, "350") {
		t.Errorf("table malformed:\n%s", s)
	}
}
