package expt

import "testing"

// E1 runs a ~1.5s fleet simulation; share one result across assertions.
var e1Cached *E1Pair

func e1(t *testing.T) E1Pair {
	t.Helper()
	if e1Cached == nil {
		r := RunE1(1)
		e1Cached = &r
	}
	return *e1Cached
}

func TestE1ArmsSeeSameWorkload(t *testing.T) {
	r := e1(t)
	if r.Baseline.Sessions == 0 {
		t.Fatal("no scoreable sessions")
	}
	if r.Baseline.Sessions != r.EONA.Sessions {
		t.Errorf("session counts differ: %d vs %d", r.Baseline.Sessions, r.EONA.Sessions)
	}
}

func TestE1BaselineSwitchesFutilely(t *testing.T) {
	r := e1(t)
	if r.Baseline.CDNSwitchesPerSession <= 0.1 {
		t.Errorf("baseline switches/session = %v, want visible churn", r.Baseline.CDNSwitchesPerSession)
	}
	if r.EONA.CDNSwitchesPerSession != 0 {
		t.Errorf("EONA switches/session = %v, want 0 (attribution suppresses them)", r.EONA.CDNSwitchesPerSession)
	}
	// Despite all that switching, the baseline still buffers more —
	// the paper's 'switched CDNs but clients still see very high
	// buffering'.
	if r.Baseline.MeanBufRatio <= 2*r.EONA.MeanBufRatio {
		t.Errorf("baseline buffering (%v) not clearly above EONA (%v)",
			r.Baseline.MeanBufRatio, r.EONA.MeanBufRatio)
	}
}

func TestE1EONAImprovesExperience(t *testing.T) {
	r := e1(t)
	if r.EONA.MeanScore <= r.Baseline.MeanScore {
		t.Errorf("EONA score (%v) not above baseline (%v)", r.EONA.MeanScore, r.Baseline.MeanScore)
	}
	if r.EONA.EngagementMinutes <= r.Baseline.EngagementMinutes {
		t.Errorf("EONA engagement (%v) not above baseline (%v)",
			r.EONA.EngagementMinutes, r.Baseline.EngagementMinutes)
	}
	if r.EONA.CapEpochs == 0 {
		t.Error("EONA cap never engaged — scenario not stressing the access link")
	}
}

func TestE1BitrateTradeoffBounded(t *testing.T) {
	// The cap trades a little bitrate for a lot of smoothness; it must
	// not collapse bitrate (that would be the wrong lesson).
	r := e1(t)
	if r.EONA.MeanBitrateBps < 0.85*r.Baseline.MeanBitrateBps {
		t.Errorf("EONA bitrate (%v) collapsed vs baseline (%v)",
			r.EONA.MeanBitrateBps, r.Baseline.MeanBitrateBps)
	}
}

func TestE1TableRenders(t *testing.T) {
	r := e1(t)
	s := r.Table().String()
	for _, want := range []string{"baseline (switch CDNs)", "EONA", "buffering ratio"} {
		if !contains(s, want) {
			t.Errorf("table missing %q", want)
		}
	}
}

func TestE1Deterministic(t *testing.T) {
	a := RunE1Arm(E1Config{Seed: 5, Horizon: 0})
	b := RunE1Arm(E1Config{Seed: 5})
	if a.MeanScore != b.MeanScore || a.Sessions != b.Sessions {
		t.Error("E1 arm not deterministic for equal seeds")
	}
}
