// Package expt contains the experiment harness: one runnable experiment per
// figure/scenario of the paper, as indexed in DESIGN.md §4 (E1–E15). Each
// experiment is a pure function from a typed config (with a seed) to a
// typed result, so the same code backs the unit tests that assert the
// paper's qualitative claims, the top-level benchmarks that regenerate the
// tables in EXPERIMENTS.md, and the cmd/eona-bench binary.
package expt

import (
	"fmt"
	"strings"
)

// Table is a printable experiment result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carry the paper-claim context printed under the table.
	Notes []string
	// Verbose carries diagnostic lines (e.g. allocator stats counters)
	// that String omits; eona-bench -v renders them via VerboseString.
	Verbose []string
}

// AddRow appends a formatted row; values are rendered with %v (floats with
// Cell for formatting control).
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Cell formats a float at a sensible experiment precision.
func Cell(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// VerboseString renders the table plus its Verbose diagnostic lines.
func (t *Table) VerboseString() string {
	var b strings.Builder
	b.WriteString(t.String())
	for _, v := range t.Verbose {
		fmt.Fprintf(&b, "  -v %s\n", v)
	}
	return b.String()
}
