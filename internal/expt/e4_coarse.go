package expt

import (
	"fmt"
	"math/rand"
	"time"

	"eona/internal/cdn"
	"eona/internal/control"
	"eona/internal/netsim"
	"eona/internal/player"
	"eona/internal/qoe"
	"eona/internal/sim"
	"eona/internal/workload"
)

// E4 — §2 "coarse control": intra-CDN server switching via I2A hints.
//
// Paper claim: "if a video player detects an issue with a particular server
// within a CDN, it has no choice but to switch to an alternative CDN ...
// e.g., if the alternative CDN does not have the content in its cache yet.
// In this case, if the CDN can provide hints on alternative servers, the
// video player can reconnect to a different server and continue to play the
// video. By retaining the traffic the CDN can retain its share of revenue
// and by exploiting intra-CDN caching the application will experience less
// disruption."
//
// A server inside CDN X's (cache-warm) cluster fails mid-run. Baseline
// sessions on it can only switch to CDN Y — whose cache is cold, so the
// reconnect pays an origin fetch and the player restarts conservatively.
// EONA sessions follow the CDN's alternative-server hint to a sibling
// server behind the same warm cache and keep playing.

// E4Config parameterizes the scenario.
type E4Config struct {
	Seed    int64
	EONA    bool
	Horizon time.Duration // default 10 min
	// ArrivalRate is sessions/s; default 0.8.
	ArrivalRate float64
	// FailAt is when server east-s00 dies. Default 4 min.
	FailAt time.Duration
	// Drivers, when positive, runs the arm on the lockstep multi-driver
	// engine (one partition, Drivers workers) instead of the serial
	// Engine. Results are bit-identical either way; see newArmEngine.
	Drivers int
}

func (c *E4Config) applyDefaults() {
	if c.Horizon == 0 {
		c.Horizon = 10 * time.Minute
	}
	if c.ArrivalRate == 0 {
		c.ArrivalRate = 0.8
	}
	if c.FailAt == 0 {
		c.FailAt = 4 * time.Minute
	}
}

// E4Result aggregates the fleet plus the failure-affected cohort.
type E4Result struct {
	Config   E4Config
	Sessions int
	// Affected is the number of sessions on the failed server.
	Affected int
	// Cohort metrics are over affected sessions only.
	CohortMeanScore      float64
	CohortMeanStallSec   float64 // post-failure buffering
	CohortServerSwitches float64
	CohortCDNSwitches    float64
	// CDNXRetention is the fraction of affected sessions still on CDN X
	// at the end ("the CDN can retain its share of revenue").
	CDNXRetention float64
	// WarmHitRatio is CDN X's cluster cache hit ratio; ColdMisses counts
	// origin fetches at CDN Y caused by failovers.
	WarmHitRatio float64
	ColdMisses   uint64
}

// RunE4Arm executes one arm.
func RunE4Arm(cfg E4Config) E4Result {
	cfg.applyDefaults()
	eng, peng := newArmEngine(cfg.Seed, cfg.Drivers)
	rng := rand.New(rand.NewSource(cfg.Seed + 2000))

	topo := netsim.NewTopology()
	toX := topo.AddLink("clients", "cdnX-east", 2e9, 5*time.Millisecond, "to-cdnX")
	toY := topo.AddLink("clients", "cdnY-west", 2e9, 8*time.Millisecond, "to-cdnY")
	net := netsim.NewNetwork(topo)

	east := cdn.NewCluster("east", "cdnX-east", 5, 40, 300, 2500*time.Millisecond)
	west := cdn.NewCluster("west", "cdnY-west", 5, 40, 300, 2500*time.Millisecond)

	// A server failure trips many monitors at the same instant; coalesce
	// their reactions into one end-of-tick reallocation.
	coal := control.NewCoalescer(eng, net)

	// CDN X has been serving this catalog all day: warm cache for the
	// popular head. CDN Y is the standby with a cold cache.
	catalog := 500
	for id := 0; id < 200; id++ {
		east.Cache.Warm(cdn.ContentID(id))
	}

	ladder := []float64{300e3, 750e3, 1.5e6, 3e6}
	model := qoe.DefaultModel()
	model.MaxBitrate = ladder[len(ladder)-1]
	zipf := workload.NewZipf(rng, 1.2, catalog)

	type session struct {
		p       *player.Player
		content cdn.ContentID
		assign  *cdn.Assignment
		curFlow *netsim.Flow
		onCDNX  bool
		// stallBefore snapshots buffering at failure time.
		stallBefore time.Duration
		affected    bool
	}
	var all []*session
	coldMisses := uint64(0)

	connectVia := func(s *session, link *netsim.Link, a *cdn.Assignment) player.Conn {
		f := net.StartFlow(netsim.Path{link}, 0, "session")
		s.curFlow = f
		return &player.FlowConn{Net: net, Flow: f, OnClose: func() {
			net.StopFlow(f)
			a.Release()
		}}
	}

	react := func(s *session) func(*control.Monitor, control.Reason) {
		return func(m *control.Monitor, r control.Reason) {
			if s.p.Done() || !s.onCDNX {
				return
			}
			if cfg.EONA {
				// I2A hint: alternative servers in the same
				// cluster, least-loaded first.
				alts := east.Alternatives(s.assign.Server)
				if len(alts) > 0 {
					na, err := east.AssignTo(alts[0], s.content)
					if err == nil {
						s.assign = na
						// Server switch = one batched
						// reallocation: new flow + old
						// flow teardown together.
						net.Batch(func() {
							s.p.Redirect(connectVia(s, toX, na), 300*time.Millisecond+na.StartupPenalty, player.SwitchServer)
						})
						return
					}
				}
			}
			// Baseline (or EONA with no hint available): whole-CDN
			// switch to the cold standby.
			na, err := west.Assign(s.content)
			if err != nil {
				return
			}
			if !na.CacheHit {
				coldMisses++
			}
			s.assign = na
			s.onCDNX = false
			net.Batch(func() {
				s.p.Redirect(connectVia(s, toY, na), time.Second+na.StartupPenalty, player.SwitchCDN)
			})
		}
	}

	arrivals := workload.Arrivals(rng, workload.Constant(cfg.ArrivalRate), cfg.ArrivalRate, cfg.Horizon-2*time.Minute)
	for i, at := range arrivals {
		i := i
		at := at
		eng.ScheduleAt(at, func(e *sim.Engine) {
			content := cdn.ContentID(zipf.Draw())
			a, err := east.Assign(content)
			if err != nil {
				return // CDN X full; arrival lost
			}
			s := &session{content: content, assign: a, onCDNX: true}
			dur := time.Duration(rng.ExpFloat64()*float64(150*time.Second)) + 45*time.Second
			s.p = player.New(e, player.Config{
				Ladder:       ladder,
				ABR:          player.RateBased{Safety: 0.85},
				BufferTarget: 8 * time.Second,
			}, dur)
			s.p.Start(connectVia(s, toX, a), 500*time.Millisecond+a.StartupPenalty)
			control.NewMonitor(e, s.p, control.MonitorConfig{NoProgressAfter: 6 * time.Second, Coalesce: coal}, react(s))
			all = append(all, s)
			_ = i
		})
	}

	// The failure: server east-s00 dies. Its sessions' flows stop
	// delivering (the conn stays attached reading Rate()=0, starving
	// the player until its monitor reacts).
	eng.ScheduleAt(cfg.FailAt, func(e *sim.Engine) {
		east.Servers[0].SetHealthy(false)
		// Mass churn: every affected flow stops in one batched
		// reallocation.
		net.Batch(func() {
			for _, s := range all {
				if s.p.Done() || !s.onCDNX || s.assign.Server != east.Servers[0] {
					continue
				}
				s.affected = true
				s.stallBefore = s.p.Metrics().BufferingTime
				net.StopFlow(s.curFlow)
			}
		})
	})

	runArm(eng, peng, cfg.Horizon)

	res := E4Result{Config: cfg}
	hits, misses := east.Cache.Stats()
	if hits+misses > 0 {
		res.WarmHitRatio = float64(hits) / float64(hits+misses)
	}
	res.ColdMisses = coldMisses
	for _, s := range all {
		m := s.p.Metrics()
		if m.PlayTime+m.BufferingTime < 5*time.Second {
			continue
		}
		res.Sessions++
		if !s.affected {
			continue
		}
		res.Affected++
		res.CohortMeanScore += model.Score(m)
		res.CohortMeanStallSec += (m.BufferingTime - s.stallBefore).Seconds()
		res.CohortServerSwitches += float64(m.ServerSwitches)
		res.CohortCDNSwitches += float64(m.CDNSwitches)
		if s.onCDNX {
			res.CDNXRetention++
		}
	}
	if res.Affected > 0 {
		n := float64(res.Affected)
		res.CohortMeanScore /= n
		res.CohortMeanStallSec /= n
		res.CohortServerSwitches /= n
		res.CohortCDNSwitches /= n
		res.CDNXRetention /= n
	}
	return res
}

// E4Pair holds both arms.
type E4Pair struct {
	Baseline, EONA E4Result
}

// RunE4 executes both arms with identical workloads and failure.
func RunE4(seed int64) E4Pair {
	return RunE4Drivers(seed, 0)
}

// RunE4Drivers is RunE4 on the lockstep multi-driver engine (drivers
// workers; 0 keeps the serial engine). Tables are bit-identical for every
// drivers value — pinned by TestE4DriversBitIdentical.
func RunE4Drivers(seed int64, drivers int) E4Pair {
	return E4Pair{
		Baseline: RunE4Arm(E4Config{Seed: seed, Drivers: drivers}),
		EONA:     RunE4Arm(E4Config{Seed: seed, EONA: true, Drivers: drivers}),
	}
}

// Table renders the comparison.
func (r E4Pair) Table() *Table {
	t := &Table{
		Title: "E4 (§2 coarse control): server failure — CDN switch vs I2A server hint",
		Columns: []string{"arm", "affected sessions", "cohort score", "post-failure stall (s)",
			"server switches", "CDN switches", "CDN X retention"},
	}
	for _, row := range []struct {
		name string
		res  E4Result
	}{{"baseline (whole-CDN switch)", r.Baseline}, {"EONA (alternative-server hint)", r.EONA}} {
		t.AddRow(row.name,
			fmt.Sprintf("%d", row.res.Affected),
			Cell(row.res.CohortMeanScore),
			Cell(row.res.CohortMeanStallSec),
			Cell(row.res.CohortServerSwitches),
			Cell(row.res.CohortCDNSwitches),
			Cell(row.res.CDNXRetention))
	}
	t.Notes = append(t.Notes,
		"paper: with server hints 'the video player can reconnect to a different server and continue to play'",
		"paper: 'by retaining the traffic the CDN can retain its share of revenue'")
	return t
}
