package expt

import (
	"math"
	"math/rand"

	"eona/internal/infer"
	"eona/internal/qoe"
	"eona/internal/web"
)

// E13 — Figures 1(a) and 4 in their native setting: web over cellular.
//
// Paper claim (Figure 4): cellular operators infer application experience
// "based on radio network characteristics [IRAT handover, etc.] or
// network-level behaviors [flow flag, etc.]" — including using HTTP
// time-to-first-byte as a proxy for web experience (Halepovic et al.,
// IMC'12 [27]) — "while application experience is available from clients."
//
// A corpus of page loads over sampled cellular channels is generated with
// the web substrate. Three estimators of the web experience score are
// compared against the direct client-side measurement:
//
//   - TTFB proxy: the [27] approach — predict the score from TTFB alone.
//   - Radio + flow features: OLS over everything the operator sees (radio
//     state, cell load, RTT, handovers, bytes, TTFB) — the Prometheus/
//     MobiCom-style approach of [14,16].
//   - Direct A2I: the client reports WebScore; zero error by construction.

// E13Result reports error per estimator.
type E13Result struct {
	Samples int
	// TTFBOnly is the single-feature [27]-style estimator.
	TTFBOnly infer.Eval
	// RadioFlow is OLS over all operator-visible features.
	RadioFlow infer.Eval
	// AbortRate is the fraction of aborted loads (score 0 mass).
	AbortRate float64
	// ScoreStdDev contextualizes the errors.
	ScoreStdDev float64
}

// RunE13 builds the corpus and evaluates the estimators.
func RunE13(seed int64) E13Result {
	rng := rand.New(rand.NewSource(seed))
	const n = 600
	var full, ttfbOnly infer.Dataset
	var mean, m2 float64
	aborts := 0
	for i := 0; i < n; i++ {
		ch := web.SampleChannel(rng)
		pg := web.SamplePage(rng)
		m := web.Load(pg, ch)
		score := qoe.WebScore(m)
		if m.Aborted {
			aborts++
		}
		ttfbMs := float64(m.TTFB.Milliseconds())
		// Operator-visible features: radio characteristics and flow
		// statistics — but not the page structure or the rendered
		// experience.
		full.Add([]float64{
			float64(ch.State),
			ch.CellLoad,
			float64(ch.RTT.Milliseconds()),
			float64(ch.Handovers),
			ttfbMs,
		}, score)
		ttfbOnly.Add([]float64{ttfbMs}, score)

		delta := score - mean
		mean += delta / float64(i+1)
		m2 += delta * (score - mean)
	}

	res := E13Result{Samples: n, AbortRate: float64(aborts) / n}
	if trainT, testT := ttfbOnly.Split(5); trainT.Len() > 0 {
		if m, err := infer.FitLinReg(trainT); err == nil {
			res.TTFBOnly = infer.Evaluate(m, testT)
		}
	}
	if trainF, testF := full.Split(5); trainF.Len() > 0 {
		if m, err := infer.FitLinReg(trainF); err == nil {
			res.RadioFlow = infer.Evaluate(m, testF)
		}
	}
	res.ScoreStdDev = math.Sqrt(m2 / float64(n))
	return res
}

// Table renders the estimator comparison.
func (r E13Result) Table() *Table {
	t := &Table{
		Title:   "E13 (Figs 1a+4): cellular web experience — operator inference vs direct A2I",
		Columns: []string{"estimator", "MAE (score pts)", "RMSE", "rank corr (Spearman)"},
	}
	t.AddRow("TTFB proxy [27]", Cell(r.TTFBOnly.MAE), Cell(r.TTFBOnly.RMSE), Cell(r.TTFBOnly.Spearman))
	t.AddRow("radio + flow features [14,16]", Cell(r.RadioFlow.MAE), Cell(r.RadioFlow.RMSE), Cell(r.RadioFlow.Spearman))
	t.AddRow("direct A2I measurement", "0", "0", "1.000")
	t.Notes = append(t.Notes,
		Cell(r.ScoreStdDev)+" = natural score std-dev; abort rate "+Cell(100*r.AbortRate)+"%",
		"paper (Fig 4): operators infer experience from 'IRAT handover, etc.' and 'flow flag, etc.' while 'application experience is available from clients'")
	return t
}
