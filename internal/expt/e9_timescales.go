package expt

import (
	"fmt"
	"time"
)

// E9 — §5 "control conflicts and instabilities": timescale coupling.
//
// Paper claim: "today the InfPs and AppPs are operating on very different
// timescales; e.g., ISP traffic engineering operates on the scales of tens
// of minutes ... while video players react on the timescales of a few
// seconds. With a EONA world where both ... are operating in synchrony, we
// could introduce new types of instabilities", and "we speculate that some
// sort of dampening or backoff algorithms can help here."
//
// We hold the AppP control period at 1 minute and sweep the ISP TE period
// from 1 minute (fully synchronized — the dangerous regime) to 32 minutes
// (today's separation), in the EONA-less baseline where the loops conflict.
// Undampened, synchronized loops flap maximally; hysteresis + randomized
// exponential backoff suppress the churn at every period.

// E9Point is one TE-period setting with both dampening arms.
type E9Point struct {
	TEPeriod             time.Duration
	Undampened, Dampened Fig5Result
}

// E9Result is the sweep.
type E9Result struct {
	Points []E9Point
}

// E9TEPeriods is the swept TE period ladder.
var E9TEPeriods = []time.Duration{
	time.Minute, 2 * time.Minute, 4 * time.Minute, 8 * time.Minute, 16 * time.Minute, 32 * time.Minute,
}

// RunE9 executes the timescale sweep.
func RunE9(seed int64) E9Result {
	out := E9Result{}
	horizon := 4 * time.Hour
	for _, te := range E9TEPeriods {
		base := Fig5Config{
			Seed: seed, Horizon: horizon,
			AppPMode: Baseline, InfPMode: Baseline,
			TEPeriod: te, AppPPeriod: time.Minute,
		}
		damp := base
		damp.Dampening = true
		out.Points = append(out.Points, E9Point{
			TEPeriod:   te,
			Undampened: RunFig5(base),
			Dampened:   RunFig5(damp),
		})
	}
	return out
}

// Table renders switch rates per hour against the timescale ratio.
func (r E9Result) Table() *Table {
	t := &Table{
		Title: "E9 (§5): timescale coupling — total switches/hour, undampened vs dampened",
		Columns: []string{"TE period", "AppP period", "switches/h (undamped)", "switches/h (damped)",
			"QoE (undamped)", "QoE (damped)"},
	}
	for _, p := range r.Points {
		hours := p.Undampened.Config.Horizon.Hours()
		su := float64(p.Undampened.ISPSwitches+p.Undampened.AppPSwitches) / hours
		sd := float64(p.Dampened.ISPSwitches+p.Dampened.AppPSwitches) / hours
		t.AddRow(p.TEPeriod.String(), "1m0s",
			Cell(su), Cell(sd),
			Cell(p.Undampened.MeanScore), Cell(p.Dampened.MeanScore))
	}
	t.Notes = append(t.Notes,
		"paper: synchronized control loops 'could introduce new types of instabilities or oscillation problems'",
		fmt.Sprintf("paper: 'some sort of dampening or backoff algorithms can help here' — dampened arms use hysteresis (20%%) + randomized exponential backoff"))
	return t
}
