package expt

import (
	"testing"
	"time"
)

func TestE3InferenceIsImperfect(t *testing.T) {
	r := RunE3(1)
	if r.Samples < 100 {
		t.Fatalf("corpus too small: %d", r.Samples)
	}
	// The paper's point: inference from network metrics carries real
	// error, unlike direct measurement (0 by construction).
	if r.LinReg.MAE < 2 {
		t.Errorf("OLS MAE = %v — suspiciously perfect; the inference gap should be visible", r.LinReg.MAE)
	}
	if r.KNN.MAE < 2 {
		t.Errorf("kNN MAE = %v — suspiciously perfect", r.KNN.MAE)
	}
	// But the features are not useless either: rank correlation should
	// be clearly positive (ISPs do get *signal*, just not truth).
	if r.LinReg.Spearman < 0.3 && r.KNN.Spearman < 0.3 {
		t.Errorf("both Spearman correlations weak (%v, %v) — corpus degenerate?",
			r.LinReg.Spearman, r.KNN.Spearman)
	}
	// Errors should be material relative to natural spread but below it
	// (a regressor worse than predicting the mean would be broken).
	if r.LinReg.RMSE >= r.ScoreStdDev*1.1 {
		t.Errorf("OLS RMSE %v not better than trivial predictor (std %v)", r.LinReg.RMSE, r.ScoreStdDev)
	}
}

func TestE3TableRenders(t *testing.T) {
	s := RunE3(2).Table().String()
	for _, want := range []string{"OLS", "7-NN", "direct A2I measurement"} {
		if !contains(s, want) {
			t.Errorf("table missing %q", want)
		}
	}
}

func TestE5PolicyOrdering(t *testing.T) {
	r := RunE5(1)
	byName := map[string]E5Arm{}
	for _, a := range r.Arms {
		byName[a.Name] = a
	}
	always := byName["always-on"]
	conservative := byName["util-conservative (+50%)"]
	aggressive := byName["util-aggressive (+5%)"]
	a2i := byName["A2I feedback (+15% & QoE target)"]

	if always.EnergyPct != 100 {
		t.Errorf("always-on energy = %v, want 100", always.EnergyPct)
	}
	// The paper's dichotomy: conservative wastes energy, aggressive
	// hurts QoE.
	if conservative.EnergyPct <= a2i.EnergyPct {
		t.Errorf("conservative energy (%v) should exceed A2I feedback (%v)",
			conservative.EnergyPct, a2i.EnergyPct)
	}
	if aggressive.MeanScore >= a2i.MeanScore {
		t.Errorf("aggressive QoE (%v) should fall below A2I feedback (%v)",
			aggressive.MeanScore, a2i.MeanScore)
	}
	if aggressive.OverloadEpochs == 0 {
		t.Error("aggressive policy never overloaded — scenario too easy")
	}
	// A2I feedback ≈ always-on QoE (within 3 points) at much less energy.
	if a2i.MeanScore < always.MeanScore-3 {
		t.Errorf("A2I QoE (%v) too far below always-on (%v)", a2i.MeanScore, always.MeanScore)
	}
	if a2i.EnergyPct > 80 {
		t.Errorf("A2I energy (%v%%) saves too little", a2i.EnergyPct)
	}
}

func TestE5Deterministic(t *testing.T) {
	a, b := RunE5(7), RunE5(7)
	for i := range a.Arms {
		if a.Arms[i].MeanScore != b.Arms[i].MeanScore || a.Arms[i].EnergyPct != b.Arms[i].EnergyPct {
			t.Fatal("E5 not deterministic")
		}
	}
	if s := RunE5(1).Table().String(); !contains(s, "always-on") {
		t.Error("table malformed")
	}
}

func TestE10EONAEqualizesUsers(t *testing.T) {
	r := RunE10(1)
	if r.EONA.JainPerUser <= r.Baseline.JainPerUser {
		t.Errorf("EONA Jain (%v) not above baseline (%v)", r.EONA.JainPerUser, r.Baseline.JainPerUser)
	}
	if r.EONA.JainPerUser < 0.999 {
		t.Errorf("EONA Jain = %v, want ≈1 (uniform per-user rates)", r.EONA.JainPerUser)
	}
	// Baseline per-pipe fairness gives the small AppP's users more than
	// the big AppP's users.
	big := r.Baseline.AppPs[0].DeliveredPerUserBps
	small := r.Baseline.AppPs[2].DeliveredPerUserBps
	if small <= big {
		t.Errorf("baseline should favor small AppP users: big=%v small=%v", big, small)
	}
}

func TestE10CapacityConserved(t *testing.T) {
	for _, arm := range []E10Arm{RunE10(1).Baseline, RunE10(1).EONA} {
		total := 0.0
		for _, a := range arm.AppPs {
			total += a.DeliveredPerUserBps * a.Sessions
			if a.DeliveredPerUserBps > e10Nominal+1e-9 {
				t.Errorf("%s: %s per-user rate %v exceeds nominal", arm.Name, a.Name, a.DeliveredPerUserBps)
			}
		}
		if total > e10Capacity+1e-6 {
			t.Errorf("%s: allocated %v exceeds capacity %v", arm.Name, total, e10Capacity)
		}
	}
}

func TestE10TableRenders(t *testing.T) {
	if s := RunE10(1).Table().String(); !contains(s, "Jain") {
		t.Error("table malformed")
	}
}

func TestJainIndex(t *testing.T) {
	if got := jain([]float64{1, 1, 1}); got != 1 {
		t.Errorf("uniform Jain = %v, want 1", got)
	}
	if got := jain([]float64{1, 0, 0}); got < 0.33 || got > 0.34 {
		t.Errorf("concentrated Jain = %v, want 1/3", got)
	}
	if got := jain([]float64{0, 0}); got != 1 {
		t.Errorf("degenerate Jain = %v, want 1", got)
	}
}

func TestE12CausalAttributesRankTop(t *testing.T) {
	r := RunE12(1)
	if len(r.Ranking) != 4 {
		t.Fatalf("ranking has %d entries", len(r.Ranking))
	}
	top2 := map[string]bool{r.Ranking[0].Attribute: true, r.Ranking[1].Attribute: true}
	if !top2["cdn"] || !top2["isp"] {
		t.Errorf("top-2 attributes = %v,%v; want cdn and isp",
			r.Ranking[0].Attribute, r.Ranking[1].Attribute)
	}
	// The causal attributes must carry clearly more information than
	// the noise attributes.
	causalMin := r.Ranking[1].Gain
	noiseMax := r.Ranking[2].Gain
	if causalMin < 2*noiseMax && causalMin < noiseMax+0.1 {
		t.Errorf("causal gain (%v) not clearly above noise gain (%v)", causalMin, noiseMax)
	}
}

func TestE12TableRenders(t *testing.T) {
	if s := RunE12(1).Table().String(); !contains(s, "information gain") {
		t.Error("table malformed")
	}
}

// TestE7SharedDriverArm pins the multi-driver rows: a serial baseline plus
// one row per swept driver count, each with a positive throughput and a
// speedup relative to the baseline. Runs under -race in check.sh, so it
// doubles as the hammer for N drivers pushing through one owner goroutine
// while a snapshot reader spins.
func TestE7SharedDriverArm(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	r := RunE7Config(E7Config{
		Records:      2_000,
		ShardCounts:  []int{}, // skip cluster rows; this test is about drivers
		DriverCounts: []int{1, 3},
	})
	if r.SharedSerialPerSec <= 0 {
		t.Fatalf("serial baseline = %v muts/s", r.SharedSerialPerSec)
	}
	if len(r.DriverPoints) != 2 {
		t.Fatalf("driver points = %+v, want 2 entries", r.DriverPoints)
	}
	for _, p := range r.DriverPoints {
		if p.PerSec <= 0 || p.Speedup <= 0 {
			t.Errorf("driver point %+v has non-positive rate or speedup", p)
		}
	}
	s := r.Table().String()
	for _, want := range []string{
		"shared-network churn (serial baseline)",
		"shared-network churn (1 drivers)",
		"shared-network churn (3 drivers)",
		"vs direct serial",
	} {
		if !contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
}

// TestE7DriverSweepSkips pins the sweep-gating contract: a non-nil empty
// DriverCounts skips the arm entirely (no baseline measured, no rows).
func TestE7DriverSweepSkips(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	r := RunE7Config(E7Config{Records: 2_000, ShardCounts: []int{}, DriverCounts: []int{}})
	if r.SharedSerialPerSec != 0 || len(r.DriverPoints) != 0 {
		t.Errorf("empty DriverCounts should skip the arm; got baseline=%v points=%+v",
			r.SharedSerialPerSec, r.DriverPoints)
	}
	if s := r.Table().String(); contains(s, "shared-network churn") {
		t.Error("table should have no shared-network rows when the sweep is skipped")
	}
}

func TestE7PipelineMeetsPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	r := RunE7(100_000)
	// "Tens of millions of sessions each day" needs only ~400/s
	// sustained; require two orders of magnitude headroom.
	if r.CollectorPerSec < 40_000 {
		t.Errorf("collector ingest = %v rec/s, below required headroom", r.CollectorPerSec)
	}
	if r.SketchAddPerSec < 100_000 {
		t.Errorf("sketch adds = %v ops/s, suspiciously slow", r.SketchAddPerSec)
	}
	if r.QueryP50 <= 0 || r.QueryP50 > time.Second {
		t.Errorf("query p50 = %v, out of sane range", r.QueryP50)
	}
	if s := r.Table().String(); !contains(s, "sessions/day") {
		t.Error("table malformed")
	}
}
