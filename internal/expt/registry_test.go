package expt

import "testing"

func TestRegistryShape(t *testing.T) {
	defs := Definitions()
	if len(defs) != 17 {
		t.Fatalf("registry has %d definitions, want 17", len(defs))
	}
	slow := map[string]bool{"E1": true, "E4": true, "E7": true, "E17": true}
	for i, d := range defs {
		if d.ID == "" || d.Title == "" || d.Run == nil {
			t.Fatalf("definition %d incomplete: %+v", i, d)
		}
		if d.Slow != slow[d.ID] {
			t.Errorf("%s Slow = %v, want %v", d.ID, d.Slow, slow[d.ID])
		}
		if want := "E" + itoa(i+1); d.ID != want {
			t.Errorf("definition %d has ID %s, want %s (suite order)", i, d.ID, want)
		}
	}
	if _, ok := Lookup("E7"); !ok {
		t.Error("Lookup(E7) missed")
	}
	if _, ok := Lookup("E18"); ok {
		t.Error("Lookup(E18) hit a ghost experiment")
	}
	d, _ := Lookup("E4")
	e := d.Bind(Config{Seed: 9})
	if e.ID != "E4" || !e.Slow || e.Run == nil {
		t.Errorf("Bind dropped identity: %+v", e)
	}
}

// TestRegistryMatchesDeprecatedWrappers pins the deprecation contract: the
// registry path renders the same table as the original RunE* entry points
// (checked on the fast, deterministic experiments).
func TestRegistryMatchesDeprecatedWrappers(t *testing.T) {
	const seed = 5
	direct := map[string]string{
		"E2":  RunE2(seed).Table().String(),
		"E8":  RunE8(seed).Table().String(),
		"E12": RunE12(seed).Table().String(),
	}
	for id, want := range direct {
		d, ok := Lookup(id)
		if !ok {
			t.Fatalf("%s not registered", id)
		}
		if got := d.Run(Config{Seed: seed}); got.String() != want {
			t.Errorf("%s: registry table differs from direct RunE* call", id)
		}
	}
}

func itoa(n int) string {
	if n >= 10 {
		return string(rune('0'+n/10)) + string(rune('0'+n%10))
	}
	return string(rune('0' + n))
}
