package expt

import (
	"fmt"
	"math/rand"
	"time"

	"eona/internal/feature"
	"eona/internal/netsim"
	"eona/internal/player"
	"eona/internal/qoe"
	"eona/internal/sim"
)

// E12 — §4 "identifying useful knobs and data".
//
// Paper claim: "it may not be trivial to identify which knobs or data have
// significant impact on experience as there might be several confounding
// factors ... we might need some type of feature selection techniques
// (e.g., information gain) to identify the relevant attributes."
//
// We generate a labelled session corpus where by construction two
// attributes drive experience — the chosen CDN (one is degraded) and the
// client ISP (one has a congested access) — while two others (device type,
// time of day) are irrelevant. Information gain over the discretized QoE
// label must rank the causal attributes above the noise attributes,
// demonstrating the §4 technique an AppP would use to decide what belongs
// in a narrow interface.

// E12Result carries the ranking.
type E12Result struct {
	Samples int
	Ranking []feature.Ranked
}

// RunE12 builds the corpus and ranks the attributes.
func RunE12(seed int64) E12Result {
	rng := rand.New(rand.NewSource(seed))
	const n = 200

	cdns := []string{"cdnX", "cdnY"}   // cdnY's servers are overloaded
	isps := []string{"isp-a", "isp-b"} // isp-b's access is congested
	devices := []string{"phone", "tv", "desktop"}
	dayparts := []string{"morning", "evening"}

	attrs := map[string][]string{"cdn": nil, "isp": nil, "device": nil, "daypart": nil}
	var scores []float64

	for i := 0; i < n; i++ {
		cdnName := cdns[rng.Intn(2)]
		ispName := isps[rng.Intn(2)]
		device := devices[rng.Intn(3)]
		daypart := dayparts[rng.Intn(2)]

		// Session capacity is governed by the causal attributes.
		serverCap := 8e6
		if cdnName == "cdnY" {
			serverCap = 0.9e6 // degraded CDN
		}
		accessCap := 10e6
		if ispName == "isp-b" {
			accessCap = 1.4e6 // congested access
		}

		topo := netsim.NewTopology()
		access := topo.AddLink("client", "border", accessCap, 10*time.Millisecond, "")
		serve := topo.AddLink("border", "server", serverCap, 10*time.Millisecond, "")
		net := netsim.NewNetwork(topo)
		eng := sim.NewEngine(rng.Int63())
		flow := net.StartFlow(netsim.Path{access, serve}, 0, "")
		p := player.New(eng, player.Config{
			Ladder: []float64{300e3, 750e3, 1.5e6, 3e6},
			ABR:    player.RateBased{Safety: 0.85},
		}, time.Minute)
		p.Start(&player.FlowConn{Net: net, Flow: flow}, 200*time.Millisecond)
		eng.Run(2 * time.Minute)

		model := qoe.DefaultModel()
		model.MaxBitrate = 3e6
		attrs["cdn"] = append(attrs["cdn"], cdnName)
		attrs["isp"] = append(attrs["isp"], ispName)
		attrs["device"] = append(attrs["device"], device)
		attrs["daypart"] = append(attrs["daypart"], daypart)
		scores = append(scores, model.Score(p.Metrics()))
	}

	labels := feature.Discretize(scores, 3) // bad / ok / good
	return E12Result{Samples: n, Ranking: feature.Rank(attrs, labels)}
}

// Table renders the ranking.
func (r E12Result) Table() *Table {
	t := &Table{
		Title:   "E12 (§4): information gain ranks the attributes that matter for experience",
		Columns: []string{"rank", "attribute", "information gain (bits)"},
	}
	for i, rk := range r.Ranking {
		t.AddRow(fmt.Sprintf("%d", i+1), rk.Attribute, Cell(rk.Gain))
	}
	t.Notes = append(t.Notes,
		"ground truth: 'cdn' and 'isp' drive capacity in this corpus; 'device' and 'daypart' are noise",
		"paper: 'we might need some type of feature selection techniques (e.g., information gain)'")
	return t
}
