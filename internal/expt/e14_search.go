package expt

import (
	"fmt"
	"math"
	"strconv"

	"eona/internal/control"
	"eona/internal/qoe"
)

// E14 — §5 "search space exploration".
//
// Paper claim: "Both AppPs and InfPs are deploying new capabilities that
// give them more control knobs. With more knobs, however, the search space
// of options grows combinatorially. A natural question is if and how EONA
// interfaces can simplify this exploration process."
//
// A multi-region delivery configuration problem: each of R client regions
// picks a CDN (X or Y) and a bitrate-cap level (3 options); the ISP picks
// the egress for CDN X (B or C). The regions couple through shared link
// capacities, so the joint space is 6^R × 2. The global controller explores
// it exhaustively. The EONA alternative is coordinate ascent: each knob is
// optimized in turn against the shared view — possible only because the
// interfaces expose the other party's decisions and state (otherwise a
// party cannot evaluate the joint objective at all). E14 measures the
// evaluation-count gap and the fraction of the exhaustive optimum the
// decomposed search reaches.

// E14Point is one problem size.
type E14Point struct {
	Regions int
	// SpaceSize is the joint configuration count.
	SpaceSize int
	// Exhaustive/Ascent evaluation counts and scores.
	ExhaustiveEvals int
	ExhaustiveScore float64
	AscentEvals     int
	AscentScore     float64
}

// E14Result is the sweep over problem sizes.
type E14Result struct {
	Points []E14Point
}

// e14Eval builds the joint objective for R regions: per-region demand of
// 60+10r Mbps, capacities B=100, C=400 (shared with the IXP paths), CDN Y
// serving 80. The score is the demand-weighted mean of the e11-style
// utility/starvation score across regions.
func e14Eval(regions int) (spaces []control.KnobSpace, eval func(control.Assignment) float64) {
	model := qoe.DefaultModel()
	model.MaxBitrate = 3e6

	demands := make([]float64, regions)
	for r := range demands {
		demands[r] = 60e6 + 10e6*float64(r)
	}
	capLevels := map[string]float64{"1.0": 1.0, "0.66": 0.66, "0.33": 0.33}

	// Coarse infrastructure knob first (see control.CoordinateAscent's
	// ordering contract), then the per-region application knobs.
	spaces = append(spaces, control.KnobSpace{Name: "egressX", Options: []string{"B", "C"}})
	for r := 0; r < regions; r++ {
		spaces = append(spaces,
			control.KnobSpace{Name: "cdn" + strconv.Itoa(r), Options: []string{"X", "Y"}},
			control.KnobSpace{Name: "cap" + strconv.Itoa(r), Options: []string{"1.0", "0.66", "0.33"}},
		)
	}

	eval = func(a control.Assignment) float64 {
		const capB, capC, capY = 100e6, 400e6, 80e6
		// Offered load per shared link.
		var loadB, loadC, loadY float64
		offered := make([]float64, regions)
		for r := 0; r < regions; r++ {
			d := demands[r] * capLevels[a["cap"+strconv.Itoa(r)]]
			offered[r] = d
			if a["cdn"+strconv.Itoa(r)] == "X" {
				if a["egressX"] == "B" {
					loadB += d
				} else {
					loadC += d
				}
			} else {
				loadC += d
				loadY += d
			}
		}
		// Per-link delivery fraction under proportional sharing.
		frac := func(load, cap float64) float64 {
			if load <= cap || load == 0 {
				return 1
			}
			return cap / load
		}
		fB, fC, fY := frac(loadB, capB), frac(loadC, capC), frac(loadY, capY)

		total, weighted := 0.0, 0.0
		for r := 0; r < regions; r++ {
			per := offered[r] / (demands[r] / 3e6) // per-session target
			f := 1.0
			if a["cdn"+strconv.Itoa(r)] == "X" {
				if a["egressX"] == "B" {
					f = fB
				} else {
					f = fC
				}
			} else {
				f = math.Min(fC, fY)
			}
			delivered := per * f
			starv := 1 - f
			s := 100*model.BitrateUtility(delivered) - model.BufferingPenalty*100*0.5*starv
			if s < 0 {
				s = 0
			}
			weighted += s * demands[r]
			total += demands[r]
		}
		return weighted / total
	}
	return spaces, eval
}

// RunE14 sweeps problem sizes.
func RunE14(_ int64) E14Result {
	var out E14Result
	for _, regions := range []int{2, 3, 4, 5, 6} {
		spaces, eval := e14Eval(regions)
		space := 2 * pow(6, regions)
		_, exScore, exEvals := control.Enumerate(spaces, eval)
		_, caScore, caEvals := control.CoordinateAscent(spaces, eval, nil, 0)
		out.Points = append(out.Points, E14Point{
			Regions:         regions,
			SpaceSize:       space,
			ExhaustiveEvals: exEvals,
			ExhaustiveScore: exScore,
			AscentEvals:     caEvals,
			AscentScore:     caScore,
		})
	}
	return out
}

func pow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}

// Table renders the sweep.
func (r E14Result) Table() *Table {
	t := &Table{
		Title: "E14 (§5): search-space exploration — exhaustive vs EONA-guided coordinate search",
		Columns: []string{"regions", "joint space", "exhaustive evals", "ascent evals",
			"ascent score", "% of optimum"},
	}
	for _, p := range r.Points {
		t.AddRow(
			fmt.Sprintf("%d", p.Regions),
			fmt.Sprintf("%d", p.SpaceSize),
			fmt.Sprintf("%d", p.ExhaustiveEvals),
			fmt.Sprintf("%d", p.AscentEvals),
			Cell(p.AscentScore),
			Cell(100*p.AscentScore/p.ExhaustiveScore))
	}
	t.Notes = append(t.Notes,
		"paper: 'with more knobs ... the search space of options grows combinatorially'",
		"coordinate search is only possible with the EONA view: evaluating a knob needs the other party's decisions and state")
	return t
}
