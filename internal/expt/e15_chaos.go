package expt

import (
	"strconv"
	"time"

	"eona/internal/faults"
)

// E15 — chaos sweep: EONA under deterministic fault injection.
//
// Paper claim (§5, "dealing with staleness"): the EONA interfaces carry
// hints across an administrative boundary, so the partner can disappear —
// and the control logic "must also be designed to be robust against such
// staleness or inaccuracies". E15 makes that failure mode concrete: the
// Figure 5 scenario runs under a seeded fault plan that flaps the ISP's
// access link (2.5% capacity for 20 minutes) and then takes the partner
// exchange down entirely, so the AppP's last received I2A view says
// "access congested, cap your bitrate" long after the congestion has
// cleared.
//
// Three control variants face the same plan:
//
//   - baseline: today's EONA-less loops (never read hints at all);
//   - naive EONA: trusts the last hints forever (ConfidenceFloor 0);
//   - confidence-aware EONA: hint confidence decays on a half-life and
//     below a floor the policies degrade to exactly the baseline rules.
//
// Expected shape: naive EONA keeps the stale bitrate cap pinned for the
// whole partner outage, so its mean score falls below even the baseline
// once the outage is long compared to the hint half-life. Confidence-aware
// EONA rides the hints while they are trustworthy and pays only the
// baseline's (bounded) trial-and-error cost once they are not — it stays
// at or above the baseline at every outage length. A second sweep varies
// the number of seed-placed link flaps at a fixed outage, as a
// fault-density stress check.

// E15 scenario constants. The access flap drops the 1G access link to
// 30 Mbps — ~1 Mbps per session at the 85 Mbps offered load — and the
// partner outage begins right as the flap ends, freezing the congested-
// access attribution in the naive AppP's hands.
const (
	e15Horizon    = 4 * time.Hour
	e15DemandBps  = 85e6
	e15IXPToYBps  = 60e6 // undersized CDN Y: switching there cannot fit demand
	e15FlapAt     = 40*time.Minute + 30*time.Second
	e15FlapLen    = 20 * time.Minute
	e15FlapFactor = 0.03
	e15OutageAt   = e15FlapAt + e15FlapLen

	// E15HalfLife is the hint-confidence half-life of the aware variant;
	// E15Floor is its degrade-to-baseline confidence floor. With these,
	// hints older than ~10 minutes are no longer acted on.
	E15HalfLife = 30 * time.Minute
	E15Floor    = 0.8
)

// E15OutageLens is the swept partner-outage duration (the independent
// variable of the main sweep). It brackets the hint half-life.
var E15OutageLens = []time.Duration{
	0, 10 * time.Minute, 30 * time.Minute, time.Hour, 2 * time.Hour,
}

// E15FlapCounts is the swept number of seed-placed access flaps for the
// fault-density rows.
var E15FlapCounts = []int{1, 2, 4}

// E15Point is one partner-outage length, run under all three variants.
type E15Point struct {
	OutageLen time.Duration
	Baseline  Fig5Result
	Naive     Fig5Result
	Aware     Fig5Result
}

// E15FlapPoint is one link-flap density, run under all three variants.
type E15FlapPoint struct {
	Flaps    int
	Baseline Fig5Result
	Naive    Fig5Result
	Aware    Fig5Result
}

// E15Result holds both sweeps.
type E15Result struct {
	Seed      int64
	Outages   []E15Point
	FlapRates []E15FlapPoint
}

// e15OutagePlan builds the main-sweep fault plan: one pinned access flap
// and a partner outage of the given length starting at the flap's end.
func e15OutagePlan(seed int64, outageLen time.Duration) *faults.Plan {
	return faults.Generate(faults.Config{
		Seed:    seed,
		Horizon: e15Horizon,
		Links: []faults.LinkFaultConfig{
			{Link: "access", At: e15FlapAt, Duration: e15FlapLen, Factor: e15FlapFactor},
		},
		Partner: faults.PartnerFaultConfig{OutageAt: e15OutageAt, OutageLen: outageLen},
	})
}

// e15FlapPlan builds the density-sweep plan: n seed-placed access flaps
// plus the fixed one-hour partner outage.
func e15FlapPlan(seed int64, n int) *faults.Plan {
	return faults.Generate(faults.Config{
		Seed:    seed,
		Horizon: e15Horizon,
		Links: []faults.LinkFaultConfig{
			{Link: "access", Count: n, Duration: 10 * time.Minute, Factor: e15FlapFactor},
		},
		Partner: faults.PartnerFaultConfig{OutageAt: e15OutageAt, OutageLen: time.Hour},
	})
}

// e15Variant runs the Figure 5 scenario under the given plan and hint
// handling. halfLife/floor zero is the naive always-trust stance.
func e15Variant(seed int64, plan *faults.Plan, mode Mode, halfLife time.Duration, floor float64) Fig5Result {
	return RunFig5(Fig5Config{
		Seed:            seed,
		Horizon:         e15Horizon,
		Demand:          func(time.Duration) float64 { return e15DemandBps },
		IXPToYBps:       e15IXPToYBps,
		AppPMode:        mode,
		InfPMode:        mode,
		Faults:          plan,
		HintHalfLife:    halfLife,
		ConfidenceFloor: floor,
	})
}

// RunE15 executes the chaos sweep.
func RunE15(seed int64) E15Result {
	out := E15Result{Seed: seed}
	for _, l := range E15OutageLens {
		plan := e15OutagePlan(seed, l)
		out.Outages = append(out.Outages, E15Point{
			OutageLen: l,
			Baseline:  e15Variant(seed, plan, Baseline, 0, 0),
			Naive:     e15Variant(seed, plan, EONA, 0, 0),
			Aware:     e15Variant(seed, plan, EONA, E15HalfLife, E15Floor),
		})
	}
	for _, n := range E15FlapCounts {
		plan := e15FlapPlan(seed, n)
		out.FlapRates = append(out.FlapRates, E15FlapPoint{
			Flaps:    n,
			Baseline: e15Variant(seed, plan, Baseline, 0, 0),
			Naive:    e15Variant(seed, plan, EONA, 0, 0),
			Aware:    e15Variant(seed, plan, EONA, E15HalfLife, E15Floor),
		})
	}
	return out
}

// Table renders both sweeps.
func (r E15Result) Table() *Table {
	t := &Table{
		Title: "E15 (§5): chaos sweep — access flap + partner-exchange outage",
		Columns: []string{
			"scenario", "baseline", "naive eona", "aware eona",
			"naive switches", "aware switches",
		},
	}
	for _, p := range r.Outages {
		t.AddRow("outage "+p.OutageLen.String(),
			Cell(p.Baseline.MeanScore), Cell(p.Naive.MeanScore), Cell(p.Aware.MeanScore),
			Cell(float64(p.Naive.AppPSwitches)), Cell(float64(p.Aware.AppPSwitches)))
	}
	for _, p := range r.FlapRates {
		t.AddRow("flaps ×"+strconv.Itoa(p.Flaps)+" (outage 1h)",
			Cell(p.Baseline.MeanScore), Cell(p.Naive.MeanScore), Cell(p.Aware.MeanScore),
			Cell(float64(p.Naive.AppPSwitches)), Cell(float64(p.Aware.AppPSwitches)))
	}
	t.Notes = append(t.Notes,
		"mean QoE score per variant; access flap to 2.5% capacity for 20m, partner exchange lost for the row's duration right after",
		"aware eona: hint confidence half-life "+E15HalfLife.String()+", degrade-to-baseline floor "+Cell(E15Floor),
		"paper: 'control logics must also be designed to be robust against such staleness or inaccuracies'")
	return t
}
