package expt

import (
	"math"
	"testing"
	"time"
)

func TestE8LadderMonotone(t *testing.T) {
	r := RunE8(1)
	if len(r.Arms) != 4 {
		t.Fatalf("arms = %d", len(r.Arms))
	}
	byName := map[string]Fig5Result{}
	for _, a := range r.Arms {
		byName[a.Name] = a.Result
	}
	none := byName["none (status quo)"]
	i2a := byName["I2A only"]
	a2i := byName["A2I only"]
	both := byName["narrow two-way (paper)"]

	// The paper's core ordering: any sharing beats none; two-way beats
	// either one-way arm; everything is bounded by the oracle.
	if i2a.MeanScore <= none.MeanScore {
		t.Errorf("I2A-only (%v) should beat none (%v)", i2a.MeanScore, none.MeanScore)
	}
	if a2i.MeanScore <= none.MeanScore {
		t.Errorf("A2I-only (%v) should beat none (%v)", a2i.MeanScore, none.MeanScore)
	}
	if both.MeanScore < i2a.MeanScore || both.MeanScore < a2i.MeanScore {
		t.Errorf("two-way (%v) should dominate one-way arms (%v, %v)",
			both.MeanScore, i2a.MeanScore, a2i.MeanScore)
	}
	for name, res := range byName {
		if res.MeanScore > r.Oracle+1e-9 {
			t.Errorf("%s (%v) exceeds oracle (%v)", name, res.MeanScore, r.Oracle)
		}
	}
	// The paper's thesis: the narrow two-way interface is close to the
	// global controller.
	if both.MeanScore < 0.9*r.Oracle {
		t.Errorf("narrow interface (%v) not close to oracle (%v)", both.MeanScore, r.Oracle)
	}
	if r.WideSize != 5 {
		t.Errorf("wide interface size = %d, want 5 (per recipe test)", r.WideSize)
	}
}

func TestE8ItemCountsAscend(t *testing.T) {
	r := RunE8(1)
	if r.Arms[0].ItemsShared != 0 {
		t.Error("none arm should share nothing")
	}
	if r.Arms[3].ItemsShared != r.Arms[1].ItemsShared+r.Arms[2].ItemsShared {
		t.Error("two-way items should equal sum of one-way items")
	}
	s := r.Table().String()
	if !contains(s, "oracle") {
		t.Error("table missing oracle row")
	}
}

func TestE6FreshBeatsStale(t *testing.T) {
	r := RunE6(1)
	fresh := r.Points[0].Result.MeanScore
	stalest := r.Points[len(r.Points)-1].Result.MeanScore
	if fresh <= stalest {
		t.Errorf("fresh (%v) should beat stalest (%v)", fresh, stalest)
	}
	// All EONA points should beat the EONA-less baseline.
	for _, p := range r.Points {
		if p.Result.MeanScore <= r.Baseline.MeanScore {
			t.Errorf("staleness %v: EONA (%v) fell below baseline (%v)",
				p.Staleness, p.Result.MeanScore, r.Baseline.MeanScore)
		}
	}
}

func TestE6RoughlyMonotone(t *testing.T) {
	r := RunE6(1)
	// Allow small non-monotonicities (discrete epochs) but the trend
	// from 0 to 20min staleness must be downward.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Result.MeanScore > r.Points[i-1].Result.MeanScore+5 {
			t.Errorf("staleness %v score %v jumped above %v score %v",
				r.Points[i].Staleness, r.Points[i].Result.MeanScore,
				r.Points[i-1].Staleness, r.Points[i-1].Result.MeanScore)
		}
	}
	if s := r.Table().String(); !contains(s, "no EONA") {
		t.Error("table missing baseline row")
	}
}

func TestE9SynchronizedWorstAndDampeningHelps(t *testing.T) {
	r := RunE9(1)
	first := r.Points[0]              // TE = AppP = 1min: synchronized
	last := r.Points[len(r.Points)-1] // TE = 32min: today's separation
	hours := first.Undampened.Config.Horizon.Hours()
	syncRate := float64(first.Undampened.ISPSwitches+first.Undampened.AppPSwitches) / hours
	slowRate := float64(last.Undampened.ISPSwitches+last.Undampened.AppPSwitches) / hours
	if syncRate <= slowRate {
		t.Errorf("synchronized churn (%v/h) should exceed separated churn (%v/h)", syncRate, slowRate)
	}
	// Dampening must cut churn at every period.
	for _, p := range r.Points {
		u := p.Undampened.ISPSwitches + p.Undampened.AppPSwitches
		d := p.Dampened.ISPSwitches + p.Dampened.AppPSwitches
		if d >= u {
			t.Errorf("TE %v: dampened switches %d not below undampened %d", p.TEPeriod, d, u)
		}
	}
}

func TestE9TableRenders(t *testing.T) {
	if s := RunE9(1).Table().String(); !contains(s, "switches/h") {
		t.Error("table malformed")
	}
}

func TestE11ExactIsNoiseFree(t *testing.T) {
	r := RunE11(1)
	exact := r.Points[0]
	if !math.IsInf(exact.Epsilon, 1) {
		t.Fatal("first point should be exact")
	}
	if exact.MeanAbsEstErrBps != 0 {
		t.Errorf("exact arm has estimate error %v", exact.MeanAbsEstErrBps)
	}
	if exact.CongestedEpochs != 0 {
		t.Errorf("exact arm congested %d epochs, want 0", exact.CongestedEpochs)
	}
}

func TestE11HeavyNoiseDegrades(t *testing.T) {
	r := RunE11(1)
	exact := r.Points[0].MeanScore
	heaviest := r.Points[len(r.Points)-1].MeanScore
	if heaviest >= exact {
		t.Errorf("heavy noise (%v) should degrade vs exact (%v)", heaviest, exact)
	}
	// Light noise (ε=1: scale 3 Mbps on a ~150 Mbps estimate) is ~free.
	if light := r.Points[1].MeanScore; light < 0.98*exact {
		t.Errorf("light noise (%v) should be near exact (%v)", light, exact)
	}
	// Even heavily-blinded sharing should beat the unshared floor.
	if heaviest <= r.BaselineScore {
		t.Errorf("noised sharing (%v) not above no-sharing floor (%v)", heaviest, r.BaselineScore)
	}
	// Estimate error must grow as ε shrinks.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].MeanAbsEstErrBps < r.Points[i-1].MeanAbsEstErrBps {
			t.Errorf("estimate error not increasing at ε=%v", r.Points[i].Epsilon)
		}
	}
}

func TestE11TableRenders(t *testing.T) {
	if s := RunE11(1).Table().String(); !contains(s, "exact (no noise)") {
		t.Error("table malformed")
	}
}

func TestE6DemandProfile(t *testing.T) {
	if e6Demand(0) != 60e6 {
		t.Error("base demand wrong")
	}
	if e6Demand(75*time.Minute) != 150e6 {
		t.Error("peak demand wrong")
	}
	if got := e6Demand(45 * time.Minute); math.Abs(got-105e6) > 1e-6 {
		t.Errorf("mid-ramp = %v, want 105e6", got)
	}
	if e6Demand(10*time.Hour) != 60e6 {
		t.Error("post-swell demand wrong")
	}
}
