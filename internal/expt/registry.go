package expt

// The experiment registry is the one place the E-suite is enumerated.
// Callers used to reach for fifteen RunE* functions with drifting
// signatures (some take a seed, some a record count, some a config
// struct); the registry collapses that to a single shape — look up a
// Definition, bind it to a Config, run it — while the RunE* functions
// remain the typed per-experiment entry points underneath.

// Config carries every knob an experiment can draw from. Zero value is
// runnable: seed 0 and E7's built-in defaults.
type Config struct {
	// Seed drives each experiment's private rand.New(rand.NewSource(Seed)).
	Seed int64
	// E7 parameterizes the scalability pipeline (record volume, shard and
	// driver sweeps). Only E7 reads it.
	E7 E7Config
	// EngineDrivers, when positive, runs the simulation-backed arms that
	// support it (E1, E4) on the lockstep multi-driver engine with that
	// many workers. Tables are bit-identical to the serial engine for
	// every value — the knob exists so eona-bench can exercise and time
	// the parallel path across the suite.
	EngineDrivers int
}

// Definition is one registered experiment: its identity plus a Run hook
// taking the shared Config. Definitions are static; bind one to a Config
// with Bind to get a runnable Experiment.
type Definition struct {
	// ID is the short name ("E7") used by eona-bench's -only filter and
	// Lookup.
	ID string
	// Title is the one-line description shown in listings (the table
	// renders its own full heading).
	Title string
	// Slow marks the experiments eona-bench's -skip-slow excludes.
	Slow bool
	// Run executes the experiment under cfg and renders its table.
	Run func(cfg Config) *Table
}

// Bind fixes the Definition's config, yielding the closure form the
// concurrent runner consumes.
func (d Definition) Bind(cfg Config) Experiment {
	return Experiment{ID: d.ID, Slow: d.Slow, Run: func() *Table { return d.Run(cfg) }}
}

// Definitions returns the full E1–E17 registry in suite order. The slice
// is freshly allocated; callers may filter or reorder it.
func Definitions() []Definition {
	return []Definition{
		{ID: "E1", Title: "flash crowd at the ISP access link (Figure 3)", Slow: true,
			Run: func(c Config) *Table { return RunE1Drivers(c.Seed, c.EngineDrivers).Table() }},
		{ID: "E2", Title: "independent control loops oscillate; EONA converges (Figure 5)",
			Run: func(c Config) *Table { return RunE2(c.Seed).Table() }},
		{ID: "E3", Title: "inferring QoE from network metrics vs direct A2I (Figure 4)",
			Run: func(c Config) *Table { return RunE3(c.Seed).Table() }},
		{ID: "E4", Title: "server failure — CDN switch vs I2A server hint (§2)", Slow: true,
			Run: func(c Config) *Table { return RunE4Drivers(c.Seed, c.EngineDrivers).Table() }},
		{ID: "E5", Title: "off-peak server shutdown — energy vs experience (§2/§5)",
			Run: func(c Config) *Table { return RunE5(c.Seed).Table() }},
		{ID: "E6", Title: "control quality vs interface staleness (§5)",
			Run: func(c Config) *Table { return RunE6(c.Seed).Table() }},
		{ID: "E7", Title: "A2I pipeline scalability (§5)", Slow: true,
			Run: func(c Config) *Table { return RunE7Config(c.E7).Table() }},
		{ID: "E8", Title: "interface width vs control quality (§4)",
			Run: func(c Config) *Table { return RunE8(c.Seed).Table() }},
		{ID: "E9", Title: "timescale coupling — undampened vs dampened switching (§5)",
			Run: func(c Config) *Table { return RunE9(c.Seed).Table() }},
		{ID: "E10", Title: "fairness across AppPs sharing one peering (§5)",
			Run: func(c Config) *Table { return RunE10(c.Seed).Table() }},
		{ID: "E11", Title: "A2I volume-estimate blinding vs traffic-split quality (§4)",
			Run: func(c Config) *Table { return RunE11(c.Seed).Table() }},
		{ID: "E12", Title: "information gain over session attributes (§4)",
			Run: func(c Config) *Table { return RunE12(c.Seed).Table() }},
		{ID: "E13", Title: "cellular web experience — inference vs direct A2I (Figs 1a+4)",
			Run: func(c Config) *Table { return RunE13(c.Seed).Table() }},
		{ID: "E14", Title: "exhaustive vs EONA-guided knob search (§5)",
			Run: func(c Config) *Table { return RunE14(c.Seed).Table() }},
		{ID: "E15", Title: "chaos sweep — access flap + partner-exchange outage (§5)",
			Run: func(c Config) *Table { return RunE15(c.Seed).Table() }},
		{ID: "E16", Title: "crash/recovery sweep — recovery time vs journal length",
			Run: func(c Config) *Table { return RunE16(c.Seed).Table() }},
		{ID: "E17", Title: "projection resume — recovery cost vs history length", Slow: true,
			Run: func(c Config) *Table { return RunE17(c.Seed).Table() }},
	}
}

// Lookup returns the Definition with the given ID ("E7"), if registered.
func Lookup(id string) (Definition, bool) {
	for _, d := range Definitions() {
		if d.ID == id {
			return d, true
		}
	}
	return Definition{}, false
}

// BindAll binds every registered definition to cfg, in suite order —
// the registry-backed replacement for Suite.
func BindAll(cfg Config) []Experiment {
	defs := Definitions()
	exps := make([]Experiment, len(defs))
	for i, d := range defs {
		exps[i] = d.Bind(cfg)
	}
	return exps
}
