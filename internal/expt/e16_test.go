package expt

import (
	"sync"
	"testing"
)

// RunE16 journals and recovers six arms (disk I/O, thousands of ops);
// share one run across the assertions.
var e16Once struct {
	sync.Once
	res E16Result
}

func e16Result() E16Result {
	e16Once.Do(func() { e16Once.res = RunE16(1) })
	return e16Once.res
}

// Every recovery must be digest-verified against the live pre-crash
// network — an unverified arm means the journal does not reproduce the
// run it recorded.
func TestE16AllRecoveriesVerified(t *testing.T) {
	for _, p := range e16Result().Points {
		if !p.Verified {
			t.Errorf("ops=%d snapEvery=%d: recovered digest != live digest", p.Ops, p.SnapEvery)
		}
	}
}

// The snapshot contract: without snapshots the tail is the whole log;
// with them the replayed tail is bounded by the snapshot interval.
func TestE16SnapshotsBoundTheTail(t *testing.T) {
	for _, p := range e16Result().Points {
		switch {
		case p.SnapEvery == 0 && p.TailOps != p.Ops:
			t.Errorf("ops=%d no-snapshot arm replayed %d tail ops, want the whole log", p.Ops, p.TailOps)
		case p.SnapEvery > 0 && p.TailOps > p.SnapEvery:
			t.Errorf("ops=%d snapEvery=%d arm replayed %d tail ops, want <= interval", p.Ops, p.SnapEvery, p.TailOps)
		}
	}
}

// The fault plan (4 access flaps = degrade + restore instants) must land
// in the journal's event stream on every arm.
func TestE16FaultEventsJournaled(t *testing.T) {
	for _, p := range e16Result().Points {
		if p.FaultEvents != 8 {
			t.Errorf("ops=%d snapEvery=%d: %d fault events journaled, want 8", p.Ops, p.SnapEvery, p.FaultEvents)
		}
	}
}

func TestE16TableShape(t *testing.T) {
	tab := e16Result().Table()
	if want := 2 * len(E16OpCounts); len(tab.Rows) != want {
		t.Fatalf("table has %d rows, want %d", len(tab.Rows), want)
	}
}
