package expt

import "eona/internal/qoe"

// E10 — §5 "fairness and trust": one InfP serving multiple AppPs.
//
// Paper claim: "There are other natural concerns, such as fairness when an
// InfP serves multiple AppPs."
//
// Three AppPs of very different sizes share one 400 Mbps peering. Without
// A2I the ISP's link just runs max-min fairness over the AppPs' aggregate
// flows — which is fair to *pipes*, not to *users*: the small AppP's users
// get their full bitrate while the big AppP's users starve. With A2I
// per-AppP volume estimates (demand = sessions × bitrate), the ISP can
// apportion the peering in proportion to sessions, equalizing per-user
// experience across AppPs. We report Jain's fairness index over per-user
// delivered rates and the per-AppP scores.

// E10AppP describes one application provider's load.
type E10AppP struct {
	Name     string
	Sessions float64
	// DemandBps = Sessions × nominal bitrate.
	DemandBps float64
	// DeliveredPerUserBps and Score are filled per arm.
	DeliveredPerUserBps float64
	Score               float64
}

// E10Arm is one allocation discipline's outcome.
type E10Arm struct {
	Name  string
	AppPs []E10AppP
	// JainPerUser is Jain's index over per-user delivered rates.
	JainPerUser float64
	// MeanScore is the session-weighted mean score.
	MeanScore float64
}

// E10Result holds both arms.
type E10Result struct {
	Baseline, EONA E10Arm
}

const (
	e10Nominal  = 3e6
	e10Capacity = 400e6
)

func e10AppPs() []E10AppP {
	mk := func(name string, sessions float64) E10AppP {
		return E10AppP{Name: name, Sessions: sessions, DemandBps: sessions * e10Nominal}
	}
	// Big, medium, small — total demand 504 Mbps over a 400 Mbps pipe.
	return []E10AppP{mk("vod-big", 84), mk("vod-mid", 50), mk("live-small", 34)}
}

// RunE10 computes both allocations analytically (the link is the only
// bottleneck, so fluid max-min has a closed form). The scenario is
// deterministic; the seed parameter keeps the experiment signatures
// uniform.
func RunE10(_ int64) E10Result {
	model := qoe.DefaultModel()
	model.MaxBitrate = e10Nominal

	score := func(perUser float64) float64 {
		starv := 1 - perUser/e10Nominal
		if starv < 0 {
			starv = 0
		}
		s := 100*model.BitrateUtility(perUser) - model.BufferingPenalty*100*0.5*starv
		if s < 0 {
			return 0
		}
		return s
	}

	finish := func(arm *E10Arm) {
		var sumRate, sumRate2, totalSessions, weightedScore float64
		for i := range arm.AppPs {
			a := &arm.AppPs[i]
			a.Score = score(a.DeliveredPerUserBps)
			sumRate += a.Sessions * a.DeliveredPerUserBps
			sumRate2 += a.Sessions * a.DeliveredPerUserBps * a.DeliveredPerUserBps
			totalSessions += a.Sessions
			weightedScore += a.Sessions * a.Score
		}
		// Jain over users: each AppP contributes Sessions users at its
		// per-user rate.
		arm.JainPerUser = sumRate * sumRate / (totalSessions * sumRate2)
		arm.MeanScore = weightedScore / totalSessions
	}

	// Baseline: max-min over the three aggregate flows (per-pipe
	// fairness). Progressive filling with demands.
	base := E10Arm{Name: "baseline (per-pipe max-min)", AppPs: e10AppPs()}
	{
		remaining := e10Capacity
		unfrozen := []int{0, 1, 2}
		alloc := make([]float64, 3)
		for len(unfrozen) > 0 {
			share := remaining / float64(len(unfrozen))
			progressed := false
			var still []int
			for _, i := range unfrozen {
				if base.AppPs[i].DemandBps <= share {
					alloc[i] = base.AppPs[i].DemandBps
					remaining -= alloc[i]
					progressed = true
				} else {
					still = append(still, i)
				}
			}
			if !progressed {
				for _, i := range still {
					alloc[i] = share
				}
				remaining = 0
				still = nil
			}
			unfrozen = still
		}
		for i := range base.AppPs {
			base.AppPs[i].DeliveredPerUserBps = alloc[i] / base.AppPs[i].Sessions
		}
	}
	finish(&base)

	// EONA: the ISP apportions capacity in proportion to the A2I session
	// counts (per-user fairness), capped by each AppP's own demand.
	eona := E10Arm{Name: "EONA (A2I session-proportional)", AppPs: e10AppPs()}
	{
		var totalSessions float64
		for _, a := range eona.AppPs {
			totalSessions += a.Sessions
		}
		perUser := e10Capacity / totalSessions
		if perUser > e10Nominal {
			perUser = e10Nominal
		}
		for i := range eona.AppPs {
			eona.AppPs[i].DeliveredPerUserBps = perUser
		}
	}
	finish(&eona)

	return E10Result{Baseline: base, EONA: eona}
}

// Table renders both arms.
func (r E10Result) Table() *Table {
	t := &Table{
		Title:   "E10 (§5): fairness across AppPs sharing one peering (per-user rates, Mbps)",
		Columns: []string{"arm", "vod-big", "vod-mid", "live-small", "Jain (per-user)", "mean score"},
	}
	for _, arm := range []E10Arm{r.Baseline, r.EONA} {
		t.AddRow(arm.Name,
			Cell(arm.AppPs[0].DeliveredPerUserBps/1e6),
			Cell(arm.AppPs[1].DeliveredPerUserBps/1e6),
			Cell(arm.AppPs[2].DeliveredPerUserBps/1e6),
			Cell(arm.JainPerUser),
			Cell(arm.MeanScore))
	}
	t.Notes = append(t.Notes,
		"per-pipe max-min favors the small AppP's users; A2I session counts let the InfP equalize per-user experience")
	return t
}

// jain computes Jain's fairness index over values (exported for tests).
func jain(values []float64) float64 {
	var sum, sum2 float64
	for _, v := range values {
		sum += v
		sum2 += v * v
	}
	if sum2 == 0 {
		return 1
	}
	return sum * sum / (float64(len(values)) * sum2)
}
