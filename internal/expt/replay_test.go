package expt

import (
	"bytes"
	"testing"

	"eona/internal/workload"
)

// Trace replay: an experiment driven by a serialized workload must match
// the same experiment driven by the in-memory sessions — the archival /
// replay path of cmd/eona-trace.
func TestE1TraceReplayMatchesInMemory(t *testing.T) {
	// Capture the workload the default E1 arm would generate by running
	// a tiny arm with an explicit trace round-tripped through CSV.
	cfg := E1Config{Seed: 3, Horizon: 0}
	direct := RunE1Arm(cfg)

	// Regenerate the identical session list the arm builds internally
	// (same derivation as RunE1Arm's default path), round-trip it
	// through CSV, and replay.
	sessions := e1Workload(cfg)
	var buf bytes.Buffer
	if err := workload.WriteTrace(&buf, sessions); err != nil {
		t.Fatal(err)
	}
	replayed, err := workload.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfgReplay := cfg
	cfgReplay.Trace = replayed
	viaTrace := RunE1Arm(cfgReplay)

	// Millisecond truncation in CSV can shift tick boundaries slightly;
	// the fleet statistics must agree tightly.
	if direct.Sessions != viaTrace.Sessions {
		t.Fatalf("session counts differ: %d vs %d", direct.Sessions, viaTrace.Sessions)
	}
	if d := direct.MeanScore - viaTrace.MeanScore; d > 0.5 || d < -0.5 {
		t.Errorf("scores diverge: %v vs %v", direct.MeanScore, viaTrace.MeanScore)
	}
}
