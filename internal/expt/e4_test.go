package expt

import "testing"

var e4Cached *E4Pair

func e4(t *testing.T) E4Pair {
	t.Helper()
	if e4Cached == nil {
		r := RunE4(1)
		e4Cached = &r
	}
	return *e4Cached
}

func TestE4FailureAffectsSameCohort(t *testing.T) {
	r := e4(t)
	if r.Baseline.Affected == 0 {
		t.Fatal("no sessions affected by the failure")
	}
	if r.Baseline.Affected != r.EONA.Affected {
		t.Errorf("cohorts differ: %d vs %d", r.Baseline.Affected, r.EONA.Affected)
	}
}

func TestE4SwitchKinds(t *testing.T) {
	r := e4(t)
	// Baseline can only do whole-CDN switches; EONA does intra-CDN
	// server switches.
	if r.Baseline.CohortCDNSwitches < 0.9 {
		t.Errorf("baseline CDN switches = %v, want ≈1 per affected session", r.Baseline.CohortCDNSwitches)
	}
	if r.Baseline.CohortServerSwitches != 0 {
		t.Errorf("baseline server switches = %v, want 0 (no hints available)", r.Baseline.CohortServerSwitches)
	}
	if r.EONA.CohortServerSwitches < 0.9 {
		t.Errorf("EONA server switches = %v, want ≈1", r.EONA.CohortServerSwitches)
	}
	if r.EONA.CohortCDNSwitches != 0 {
		t.Errorf("EONA CDN switches = %v, want 0", r.EONA.CohortCDNSwitches)
	}
}

func TestE4EONALessDisruption(t *testing.T) {
	r := e4(t)
	if r.EONA.CohortMeanStallSec >= r.Baseline.CohortMeanStallSec {
		t.Errorf("EONA stall (%v) not below baseline (%v)",
			r.EONA.CohortMeanStallSec, r.Baseline.CohortMeanStallSec)
	}
	if r.EONA.CohortMeanScore <= r.Baseline.CohortMeanScore {
		t.Errorf("EONA cohort score (%v) not above baseline (%v)",
			r.EONA.CohortMeanScore, r.Baseline.CohortMeanScore)
	}
}

func TestE4Retention(t *testing.T) {
	r := e4(t)
	// "By retaining the traffic the CDN can retain its share of revenue."
	if r.EONA.CDNXRetention != 1 {
		t.Errorf("EONA retention = %v, want 1.0", r.EONA.CDNXRetention)
	}
	if r.Baseline.CDNXRetention != 0 {
		t.Errorf("baseline retention = %v, want 0 (all failovers leave)", r.Baseline.CDNXRetention)
	}
}

func TestE4ColdMisses(t *testing.T) {
	r := e4(t)
	// Baseline failovers land on CDN Y's cold cache and pay origin
	// fetches; EONA failovers stay behind CDN X's warm cache.
	if r.Baseline.ColdMisses == 0 {
		t.Error("baseline produced no cold misses at CDN Y")
	}
	if r.EONA.ColdMisses != 0 {
		t.Errorf("EONA cold misses = %d, want 0", r.EONA.ColdMisses)
	}
	if r.EONA.WarmHitRatio < 0.5 {
		t.Errorf("CDN X warm hit ratio = %v, suspiciously low", r.EONA.WarmHitRatio)
	}
}

func TestE4TableRenders(t *testing.T) {
	s := e4(t).Table().String()
	for _, want := range []string{"whole-CDN switch", "alternative-server hint", "retention"} {
		if !contains(s, want) {
			t.Errorf("table missing %q", want)
		}
	}
}
