package expt

import (
	"sync"
	"testing"
)

// RunE15 is the most expensive sweep in the suite (24 four-hour runs);
// compute it once and let every assertion read the shared result.
var e15Once struct {
	sync.Once
	res E15Result
}

func e15Result() E15Result {
	e15Once.Do(func() { e15Once.res = RunE15(1) })
	return e15Once.res
}

// The headline robustness claim: confidence-aware EONA never does worse
// than the EONA-less baseline, at any partner-outage length. Falling back
// to baseline rules under stale hints bounds the downside by construction.
func TestE15AwareNeverWorseThanBaseline(t *testing.T) {
	for _, p := range e15Result().Outages {
		if p.Aware.MeanScore < p.Baseline.MeanScore {
			t.Errorf("outage %v: aware EONA %.1f < baseline %.1f",
				p.OutageLen, p.Aware.MeanScore, p.Baseline.MeanScore)
		}
	}
}

// The failure mode E15 exists to demonstrate: EONA that trusts hints
// forever keeps the stale "cap your bitrate" attribution pinned for the
// whole partner outage, and once the outage is at least the hint
// half-life it scores below even the baseline.
func TestE15NaiveFallsBelowBaselineOnLongOutage(t *testing.T) {
	for _, p := range e15Result().Outages {
		if p.OutageLen >= E15HalfLife && p.Naive.MeanScore >= p.Baseline.MeanScore {
			t.Errorf("outage %v: naive EONA %.1f did not fall below baseline %.1f",
				p.OutageLen, p.Naive.MeanScore, p.Baseline.MeanScore)
		}
		// And the flip side: while hints are fresh (no outage), EONA
		// beats the baseline — the fault injection must not erase the
		// paper's core result.
		if p.OutageLen == 0 && p.Naive.MeanScore <= p.Baseline.MeanScore {
			t.Errorf("no outage: EONA %.1f did not beat baseline %.1f",
				p.Naive.MeanScore, p.Baseline.MeanScore)
		}
	}
}

// Longer outages must never help the naive variant: its mean score is
// non-increasing in outage length (the stale cap applies strictly longer).
func TestE15NaiveMonotoneInOutageLength(t *testing.T) {
	pts := e15Result().Outages
	for i := 1; i < len(pts); i++ {
		if pts[i].Naive.MeanScore > pts[i-1].Naive.MeanScore+1e-9 {
			t.Errorf("naive EONA improved with a longer outage: %v→%.2f after %v→%.2f",
				pts[i].OutageLen, pts[i].Naive.MeanScore,
				pts[i-1].OutageLen, pts[i-1].Naive.MeanScore)
		}
	}
}

// Same seed, byte-identical results: the whole chaos pipeline (plan
// generation, scheduling, scoring) must be deterministic.
func TestE15Deterministic(t *testing.T) {
	a := e15Result().Table().String()
	b := RunE15(1).Table().String()
	if a != b {
		t.Errorf("same-seed E15 runs differ:\n%s\n----\n%s", a, b)
	}
}

func TestE15TableShape(t *testing.T) {
	tab := e15Result().Table()
	if want := len(E15OutageLens) + len(E15FlapCounts); len(tab.Rows) != want {
		t.Errorf("table rows = %d, want %d", len(tab.Rows), want)
	}
}
