package expt

import (
	"sync"
	"testing"
)

// RunE17 journals and recovers nine arms (disk I/O, thousands of records);
// share one run across the assertions.
var e17Once struct {
	sync.Once
	res E17Result
}

func e17Result() E17Result {
	e17Once.Do(func() { e17Once.res = RunE17(1) })
	return e17Once.res
}

// Every arm must be digest-verified: the rebuilt network equal to the live
// pre-crash digest and every folder fingerprint equal to its live
// counterpart. An unverified arm means a recovery path that silently
// diverges from the history it claims to rebuild.
func TestE17AllArmsVerified(t *testing.T) {
	for _, p := range e17Result().Points {
		if !p.Verified {
			t.Errorf("records=%d arm=%s: rebuilt state diverged from live", p.Records, p.Arm)
		}
	}
}

// The checkpoint contract: replay-all refolds the whole stream at every
// size; projection-resume's folded tail is bounded by the checkpoint
// cadence — flat in history length — and therefore strictly below
// replay-all everywhere. Wall times are reported, not asserted (CI noise);
// the tails are the structural fact the times follow.
func TestE17ResumeTailBounded(t *testing.T) {
	// A resume tail may trail the last checkpoint batch by up to one
	// cadence of folded records plus the sibling checkpoint frames.
	const bound = E17Every + 8
	for _, p := range e17Result().Points {
		switch p.Arm {
		case E17ReplayAll:
			if p.TailRecords != p.Stream || p.TailOps != p.Ops {
				t.Errorf("records=%d replay-all folded %d/%d records, replayed %d/%d ops; want the whole history",
					p.Records, p.TailRecords, p.Stream, p.TailOps, p.Ops)
			}
		case E17NetSnapshot:
			if p.TailOps > E17Every {
				t.Errorf("records=%d net-snapshot replayed %d tail ops, want <= %d", p.Records, p.TailOps, E17Every)
			}
			if p.TailRecords != p.Stream {
				t.Errorf("records=%d net-snapshot folded %d records, want the whole stream %d", p.Records, p.TailRecords, p.Stream)
			}
		case E17ProjResume:
			if p.TailRecords > bound {
				t.Errorf("records=%d projection-resume folded %d tail records, want <= %d (cadence-bounded)",
					p.Records, p.TailRecords, bound)
			}
			if p.TailRecords >= p.Stream {
				t.Errorf("records=%d projection-resume folded %d of %d records; checkpoint unused",
					p.Records, p.TailRecords, p.Stream)
			}
			if p.TailOps > E17Every {
				t.Errorf("records=%d projection-resume replayed %d tail ops, want <= %d", p.Records, p.TailOps, E17Every)
			}
		}
	}
}

// The histories must actually grow: each swept size's recovered stream
// strictly longer than the last, so the flat resume tail is measured
// against a genuinely growing log.
func TestE17HistoriesGrow(t *testing.T) {
	prev := 0
	for _, p := range e17Result().Points {
		if p.Arm != E17ReplayAll {
			continue
		}
		if p.Stream <= prev {
			t.Errorf("records=%d: stream %d not longer than previous size %d", p.Records, p.Stream, prev)
		}
		if p.Stream < p.Records {
			t.Errorf("records=%d: stream %d shorter than requested", p.Records, p.Stream)
		}
		prev = p.Stream
	}
}

func TestE17TableShape(t *testing.T) {
	tab := e17Result().Table()
	if want := 3 * len(E17RecordCounts); len(tab.Rows) != want {
		t.Fatalf("table has %d rows, want %d", len(tab.Rows), want)
	}
}
