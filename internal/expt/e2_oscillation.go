package expt

import (
	"fmt"
	"time"
)

// E2 — Figure 5: control-loop oscillation.
//
// Paper claim: with independent control loops, the AppP's CDN choice and
// the ISP's egress choice chase each other in an infinite limit cycle;
// with the EONA exchange (A2I traffic volume, I2A peering state + current
// decision) both loops converge, and the green path (CDN X via peering C)
// is found and kept.

// E2Result holds the two arms plus the oracle bound.
type E2Result struct {
	Baseline Fig5Result
	EONA     Fig5Result
	Oracle   float64
}

// RunE2 executes both arms of the oscillation experiment.
func RunE2(seed int64) E2Result {
	base := Fig5Config{Seed: seed, AppPMode: Baseline, InfPMode: Baseline}
	eona := Fig5Config{Seed: seed, AppPMode: EONA, InfPMode: EONA}
	return E2Result{
		Baseline: RunFig5(base),
		EONA:     RunFig5(eona),
		Oracle:   Fig5Oracle(eona),
	}
}

// E2SensitivityPoint is one demand level of the sensitivity sweep.
type E2SensitivityPoint struct {
	DemandBps          float64
	BaselineOscillates bool
	BaselineScore      float64
	EONAScore          float64
}

// RunE2Sensitivity maps the oscillation regime: sweep offered load from
// well under peering B's capacity to beyond peering C's, and record where
// the baseline limit cycle lives and how the EONA arm fares. The cycle
// requires demand that overloads the cheap peering (B, 100 Mbps) while the
// fallback CDN (Y, 80 Mbps) cannot absorb it — the paper's exact
// preconditions.
func RunE2Sensitivity(seed int64) []E2SensitivityPoint {
	var out []E2SensitivityPoint
	for _, demand := range []float64{50e6, 90e6, 110e6, 150e6, 250e6, 350e6} {
		d := demand
		mk := func(mode Mode) Fig5Result {
			return RunFig5(Fig5Config{
				Seed: seed, Horizon: time.Hour,
				Demand:   func(time.Duration) float64 { return d },
				AppPMode: mode, InfPMode: mode,
			})
		}
		b, e := mk(Baseline), mk(EONA)
		out = append(out, E2SensitivityPoint{
			DemandBps:          demand,
			BaselineOscillates: b.Oscillating,
			BaselineScore:      b.MeanScore,
			EONAScore:          e.MeanScore,
		})
	}
	return out
}

// SensitivityTable renders the sweep.
func SensitivityTable(points []E2SensitivityPoint) *Table {
	t := &Table{
		Title:   "E2 sensitivity: where the Figure 5 oscillation regime lives",
		Columns: []string{"offered load (Mbps)", "baseline oscillates", "baseline score", "EONA score"},
	}
	for _, p := range points {
		osc := "no"
		if p.BaselineOscillates {
			osc = "yes"
		}
		t.AddRow(Cell(p.DemandBps/1e6), osc, Cell(p.BaselineScore), Cell(p.EONAScore))
	}
	t.Notes = append(t.Notes,
		"the damaging limit cycle needs load that overloads the cheap peering while the fallback CDN cannot absorb it",
		"at exactly the TE high-water boundary the cost-greedy ISP can flap harmlessly (churn without QoE damage)",
		"EONA dominates or ties the baseline at every load level")
	return t
}

// Table renders the E2 result.
func (r E2Result) Table() *Table {
	t := &Table{
		Title:   "E2 (Figure 5): independent control loops oscillate; EONA converges",
		Columns: []string{"arm", "mean QoE score", "ISP egress switches", "AppP CDN switches", "limit cycle"},
	}
	rows := []struct {
		name string
		res  Fig5Result
	}{{"baseline/baseline", r.Baseline}, {"EONA/EONA", r.EONA}}
	for _, row := range rows {
		cycle := "no"
		if row.res.Oscillating {
			cycle = fmt.Sprintf("yes (period %d epochs)", row.res.CyclePeriod)
		}
		t.AddRow(row.name, Cell(row.res.MeanScore),
			fmt.Sprintf("%d", row.res.ISPSwitches),
			fmt.Sprintf("%d", row.res.AppPSwitches), cycle)
	}
	t.AddRow("global oracle", Cell(r.Oracle), "-", "-", "-")
	t.Notes = append(t.Notes,
		"paper: 'creating an (infinite) oscillating loop in both AppP and InfP'",
		"paper: 'the oscillation can be avoided if the AppP switches CDN based on peering points' capacity and ISP's peering point selection'")
	return t
}
