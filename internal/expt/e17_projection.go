package expt

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"time"

	"eona/internal/core"
	"eona/internal/faults"
	"eona/internal/journal"
	"eona/internal/netsim"
	"eona/internal/projection"
)

// E17 — projection resume: recovery cost vs history length.
//
// internal/projection claims a restarted node rebuilds its read models from
// (checkpoint state, committed offset) by folding only the record tail —
// O(checkpoint delta), not O(history). E17 quantifies that claim: one seeded
// mixed workload (netsim op churn + session ingests + looking-glass polls +
// fault events, all journaled through a projection.Engine with snapshot and
// checkpoint cadence E17Every) is recorded at several history lengths, then
// recovered three ways:
//
//   - replay-all: serial op replay from the topology record plus a
//     from-scratch fold of the entire stream — ignores snapshots and
//     checkpoints both; the naive O(history) baseline.
//   - net-snapshot: snapshot-accelerated network recovery, but read models
//     still folded from scratch — what PR7's journal alone could do.
//   - projection-resume: snapshot-accelerated network recovery plus
//     checkpoint resume of every folder — the full O(tail) path.
//
// Every arm is digest-verified: the rebuilt network must match the live
// pre-crash digest and every folder's state fingerprint must match its live
// counterpart. The journal scan (Recover: segment read + decode, O(history)
// for every arm by construction) is timed separately from the rebuild so the
// arms compare what actually differs.
//
// Expected shape: replay-all and net-snapshot rebuild costs grow with
// history (both refold the whole stream); projection-resume stays flat —
// its folded tail is bounded by the checkpoint cadence, not the log length.

// E17RecordCounts is the swept journal length (records of all kinds).
var E17RecordCounts = []int{400, 1600, 6400}

// E17Every is the snapshot and checkpoint cadence of the journaled runs.
const E17Every = 256

// E17Arm names one recovery strategy.
type E17Arm string

const (
	E17ReplayAll   E17Arm = "replay-all"
	E17NetSnapshot E17Arm = "net-snapshot"
	E17ProjResume  E17Arm = "projection-resume"
)

// E17Point is one (history length, recovery strategy) measurement.
type E17Point struct {
	Records int // requested history length
	Stream  int // actual recovered record-stream length
	Ops     int // netsim ops in the history
	Arm     E17Arm
	// ScanMS is the Recover wall time (segment read + decode), identical
	// work for every arm.
	ScanMS float64
	// RebuildMS is the arm's rebuild wall time: network replay/import plus
	// read-model fold/resume.
	RebuildMS float64
	// TailOps counts ops replayed to rebuild the network.
	TailOps int
	// TailRecords counts stream records folded to rebuild the read models
	// (the maximum over folders; replay-all folds the whole stream).
	TailRecords int
	// Verified reports network digest and every folder fingerprint matched
	// the live pre-crash state.
	Verified bool
}

// E17Result is the full sweep.
type E17Result struct {
	Seed   int64
	Points []E17Point
}

// RunE17 executes the sweep.
func RunE17(seed int64) E17Result {
	r := E17Result{Seed: seed}
	for _, records := range E17RecordCounts {
		r.Points = append(r.Points, runE17History(seed, records)...)
	}
	return r
}

// e17Folders builds the standard read-model set.
func e17Folders() (*projection.QoE, *projection.Hints, *projection.Engagement, *projection.LinkUtil) {
	cfg := core.CollectorConfig{AppP: "appp-e17", Window: 5 * time.Minute, Seed: 99}
	return projection.NewQoE(cfg), projection.NewHints(), projection.NewEngagement(), projection.NewLinkUtil()
}

// runE17History journals one seeded history of the requested length and
// measures all three recovery arms against it.
func runE17History(seed int64, records int) []E17Point {
	dir, err := os.MkdirTemp("", "eona-e17-*")
	if err != nil {
		panic(fmt.Sprintf("expt: E17 temp dir: %v", err))
	}
	defer os.RemoveAll(dir)

	w, err := journal.Open(journal.Config{Dir: dir, SegmentBytes: 256 << 10, Sync: journal.SyncNever})
	if err != nil {
		panic(fmt.Sprintf("expt: E17 journal: %v", err))
	}
	qoe, hints, eng, lutil := e17Folders()
	e, err := projection.NewEngine(projection.Config{Writer: w, CheckpointEvery: E17Every},
		qoe, hints, eng, lutil)
	if err != nil {
		panic(fmt.Sprintf("expt: E17 engine: %v", err))
	}

	topo, paths := e16Topo()
	if err := e.AppendTopology(netsim.ExportTopology(topo)); err != nil {
		panic(fmt.Sprintf("expt: E17 topology record: %v", err))
	}
	s := netsim.NewShared(netsim.NewNetwork(topo), netsim.SharedConfig{
		Deterministic: true, Record: true,
		Journal: e, SnapshotEvery: E17Every,
	})
	churn := s.Driver(1)
	rng := rand.New(rand.NewSource(seed + int64(records)))
	isps := []string{"isp-a", "isp-b", "isp-c"}
	cdns := []string{"cdnX", "cdnY"}
	var handles []*netsim.Flow
	round := 0
	for int(w.Records()) < records {
		// One round: a burst of ops, a commit fence, then the A2I/I2A side.
		for k := 0; k < 16; k++ {
			switch p := rng.Intn(5); {
			case p == 0 || len(handles) == 0:
				handles = append(handles, churn.StartFlow(paths[rng.Intn(len(paths))], float64(1+rng.Intn(40))*1e6, "e17"))
			case p == 1 && len(handles) > 8:
				i := rng.Intn(len(handles))
				churn.StopFlow(handles[i])
				handles = append(handles[:i], handles[i+1:]...)
			default:
				churn.SetDemand(handles[rng.Intn(len(handles))], float64(1+rng.Intn(80))*1e6)
			}
		}
		s.Commit()
		for k := 0; k < 8; k++ {
			rec := core.QoERecord{
				SessionID: fmt.Sprintf("s%d-%d", round, k),
				Timestamp: time.Duration(round) * time.Second,
				AppP:      "appp-e17",
				ClientISP: isps[rng.Intn(len(isps))],
				CDN:       cdns[rng.Intn(len(cdns))],
				Cluster:   "c1",
				Score:     40 + 60*rng.Float64(),
				PlayTime:  time.Duration(60+rng.Intn(600)) * time.Second,
				Abandoned: rng.Intn(10) == 0,
			}
			if err := e.AppendIngest(rec); err != nil {
				panic(fmt.Sprintf("expt: E17 ingest: %v", err))
			}
		}
		if err := e.AppendPoll(journal.PollRecord{
			Source: "peer-" + isps[round%len(isps)],
			At:     time.Unix(0, int64(round)*1e9).UTC(),
			// Non-nil payload: a nil RawMessage marshals as JSON null and
			// recovers as the literal bytes "null", which would make the
			// live and recovered hint states differ.
			Data: json.RawMessage(`{}`),
		}); err != nil {
			panic(fmt.Sprintf("expt: E17 poll: %v", err))
		}
		if round%16 == 7 {
			if err := e.AppendFault(faults.Event{At: time.Duration(round) * time.Second}); err != nil {
				panic(fmt.Sprintf("expt: E17 fault: %v", err))
			}
		}
		round++
	}
	live := s.Close()
	if err := s.JournalError(); err != nil {
		panic(fmt.Sprintf("expt: E17 journal error: %v", err))
	}
	if err := w.Close(); err != nil {
		panic(fmt.Sprintf("expt: E17 close: %v", err))
	}
	liveNetDigest := live.StateDigest()
	liveFolderDigests := map[string]uint64{
		qoe.Name():   projection.StateDigest(qoe),
		hints.Name(): projection.StateDigest(hints),
		eng.Name():   projection.StateDigest(eng),
		lutil.Name(): projection.StateDigest(lutil),
	}

	var points []E17Point
	for _, arm := range []E17Arm{E17ReplayAll, E17NetSnapshot, E17ProjResume} {
		points = append(points, runE17Arm(dir, records, arm, liveNetDigest, liveFolderDigests))
	}
	return points
}

// runE17Arm recovers the journaled history one way and verifies it.
func runE17Arm(dir string, records int, arm E17Arm, liveNetDigest uint64, liveFolderDigests map[string]uint64) E17Point {
	p := E17Point{Records: records, Arm: arm}

	t0 := time.Now()
	rec, err := journal.Recover(dir)
	if err != nil {
		panic(fmt.Sprintf("expt: E17 recover: %v", err))
	}
	p.ScanMS = float64(time.Since(t0)) / float64(time.Millisecond)
	p.Stream = len(rec.Stream)
	p.Ops = len(rec.Ops)

	qoe, hints, eng, lutil := e17Folders()
	folders := []projection.Folder{qoe, hints, eng, lutil}

	var net *netsim.Network
	t1 := time.Now()
	switch arm {
	case E17ReplayAll:
		net, err = rec.ReplayPrefix(len(rec.Ops))
		if err != nil {
			panic(fmt.Sprintf("expt: E17 replay-all: %v", err))
		}
		p.TailOps = len(rec.Ops)
		for _, f := range folders {
			if err := projection.Fold(rec, f, len(rec.Stream)); err != nil {
				panic(fmt.Sprintf("expt: E17 replay-all fold: %v", err))
			}
		}
		p.TailRecords = len(rec.Stream)
	case E17NetSnapshot:
		var tail int
		net, tail, err = rec.RecoverNetwork()
		if err != nil {
			panic(fmt.Sprintf("expt: E17 net-snapshot: %v", err))
		}
		p.TailOps = tail
		for _, f := range folders {
			if err := projection.Fold(rec, f, len(rec.Stream)); err != nil {
				panic(fmt.Sprintf("expt: E17 net-snapshot fold: %v", err))
			}
		}
		p.TailRecords = len(rec.Stream)
	case E17ProjResume:
		var tail int
		net, tail, err = rec.RecoverNetwork()
		if err != nil {
			panic(fmt.Sprintf("expt: E17 projection-resume: %v", err))
		}
		p.TailOps = tail
		engine, err := projection.NewEngine(projection.Config{}, folders...)
		if err != nil {
			panic(fmt.Sprintf("expt: E17 resume engine: %v", err))
		}
		stats, err := engine.Resume(rec)
		if err != nil {
			panic(fmt.Sprintf("expt: E17 resume: %v", err))
		}
		for _, tf := range stats.TailFolded {
			if tf > p.TailRecords {
				p.TailRecords = tf
			}
		}
	}
	p.RebuildMS = float64(time.Since(t1)) / float64(time.Millisecond)

	p.Verified = net.StateDigest() == liveNetDigest
	for _, f := range folders {
		if projection.StateDigest(f) != liveFolderDigests[f.Name()] {
			p.Verified = false
		}
	}
	return p
}

// Table renders the sweep.
func (r E17Result) Table() *Table {
	t := &Table{
		Title: "E17: projection resume — recovery cost vs history length (projection)",
		Columns: []string{
			"records", "ops", "arm", "scan ms", "rebuild ms", "tail ops", "tail records", "verified",
		},
	}
	for _, p := range r.Points {
		ok := "yes"
		if !p.Verified {
			ok = "NO"
		}
		t.AddRow(strconv.Itoa(p.Stream), strconv.Itoa(p.Ops), string(p.Arm),
			Cell(p.ScanMS), Cell(p.RebuildMS),
			strconv.Itoa(p.TailOps), strconv.Itoa(p.TailRecords), ok)
	}
	t.Notes = append(t.Notes,
		"scan = journal.Recover (segment read + decode), identical work for every arm; rebuild = network replay/import + read-model fold/resume",
		"replay-all refolds the whole stream and replays every op; net-snapshot bounds the op tail only; projection-resume bounds both via folder checkpoints",
		fmt.Sprintf("snapshot and checkpoint cadence %d records; every arm digest-verified against the live pre-crash network and folder fingerprints", E17Every))
	return t
}
