package expt

import (
	"testing"
	"time"
)

// Failure injection: the EONA loops must re-converge after infrastructure
// state changes underneath them — the reactive half of the paper's §5 InfP
// control logic ("use reactive measures if they observe quality
// degradations").

func TestEONAReconvergesAfterPeeringDegradation(t *testing.T) {
	// Demand 85 Mbps fits peering B (100 Mbps) with margin, so the EONA
	// pair settles on the cheap local peering. At t=1h B degrades to
	// 60 Mbps; the A2I estimate (93.5 Mbps with margin) no longer fits,
	// the InfP moves CDN X to C, and everything is healthy again.
	cfg := Fig5Config{
		Seed:           1,
		Horizon:        2 * time.Hour,
		Demand:         func(time.Duration) float64 { return 85e6 },
		AppPMode:       EONA,
		InfPMode:       EONA,
		FailPeerBAt:    time.Hour,
		FailPeerBToBps: 60e6,
	}
	r := RunFig5(cfg)

	// Exactly one reactive egress change: B (pre-failure) then C.
	if len(r.EgressHistory) != 2 || r.EgressHistory[0] != "B" || r.EgressHistory[1] != "C" {
		t.Fatalf("egress history = %v, want [B C]", r.EgressHistory)
	}
	if r.AppPSwitches != 0 {
		t.Errorf("AppP switched CDN %d times; the peering move should have sufficed", r.AppPSwitches)
	}
	if r.Oscillating {
		t.Error("failure recovery oscillated")
	}
	// Mean score takes a dip around the failure epoch but stays high
	// overall (119 healthy epochs, ~1-2 degraded).
	if r.MeanScore < 95 {
		t.Errorf("mean score = %v, want ≥95 (fast recovery)", r.MeanScore)
	}
}

func TestBaselineChurnsAfterPeeringDegradation(t *testing.T) {
	// The same failure under baseline control: B degrades, utilization
	// spikes, the cost-greedy TE evacuates, B drains, it flips back —
	// and the AppP's flight to the undersized CDN Y (60 Mbps here) fails
	// too, so the post-failure regime churns on both knobs.
	cfg := Fig5Config{
		Seed:           1,
		Horizon:        2 * time.Hour,
		Demand:         func(time.Duration) float64 { return 85e6 },
		IXPToYBps:      60e6,
		AppPMode:       Baseline,
		InfPMode:       Baseline,
		FailPeerBAt:    time.Hour,
		FailPeerBToBps: 60e6,
	}
	r := RunFig5(cfg)
	if r.ISPSwitches < 10 {
		t.Errorf("baseline ISP switches = %d, expected post-failure churn", r.ISPSwitches)
	}
	eona := RunFig5(Fig5Config{
		Seed: 1, Horizon: 2 * time.Hour,
		Demand:    func(time.Duration) float64 { return 85e6 },
		IXPToYBps: 60e6,
		AppPMode:  EONA, InfPMode: EONA,
		FailPeerBAt: time.Hour, FailPeerBToBps: 60e6,
	})
	if eona.MeanScore <= r.MeanScore {
		t.Errorf("EONA post-failure score (%v) should beat baseline (%v)",
			eona.MeanScore, r.MeanScore)
	}
}

func TestFailureBeforeHorizonOnly(t *testing.T) {
	// A failure scheduled beyond the horizon never fires: identical to
	// the failure-free run.
	base := Fig5Config{Seed: 1, AppPMode: EONA, InfPMode: EONA}
	withLateFailure := base
	withLateFailure.FailPeerBAt = 100 * time.Hour
	withLateFailure.FailPeerBToBps = 1e6
	a, b := RunFig5(base), RunFig5(withLateFailure)
	if a.MeanScore != b.MeanScore || a.ISPSwitches != b.ISPSwitches {
		t.Error("failure beyond horizon affected the run")
	}
}
