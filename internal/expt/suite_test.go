package expt

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestSuiteShape(t *testing.T) {
	exps := Suite(1, E7Config{})
	if len(exps) != 17 {
		t.Fatalf("suite has %d experiments, want 17", len(exps))
	}
	slow := map[string]bool{"E1": true, "E4": true, "E7": true, "E17": true}
	for i, e := range exps {
		if e.ID == "" || e.Run == nil {
			t.Fatalf("experiment %d incomplete: %+v", i, e)
		}
		if e.Slow != slow[e.ID] {
			t.Errorf("%s Slow = %v, want %v", e.ID, e.Slow, slow[e.ID])
		}
	}
}

func TestRunConcurrentOrderAndCap(t *testing.T) {
	const n, parallelism = 20, 3
	var active, peak atomic.Int64
	var mu sync.Mutex
	exps := make([]Experiment, n)
	for i := range exps {
		i := i
		exps[i] = Experiment{ID: "X", Run: func() *Table {
			cur := active.Add(1)
			mu.Lock()
			if cur > peak.Load() {
				peak.Store(cur)
			}
			mu.Unlock()
			tb := &Table{Title: string(rune('a' + i))}
			active.Add(-1)
			return tb
		}}
	}
	out := RunConcurrent(exps, parallelism)
	if len(out) != n {
		t.Fatalf("got %d tables, want %d", len(out), n)
	}
	for i, tb := range out {
		if tb == nil || tb.Title != string(rune('a'+i)) {
			t.Fatalf("result %d out of order: %+v", i, tb)
		}
	}
	if p := peak.Load(); p > parallelism {
		t.Errorf("observed %d concurrent experiments, cap was %d", p, parallelism)
	}
}

// TestRunConcurrentMatchesSequential runs two fast suite entries both ways
// and checks the rendered tables agree — the determinism contract of the
// parallel runner.
func TestRunConcurrentMatchesSequential(t *testing.T) {
	pick := func() []Experiment {
		var out []Experiment
		for _, e := range Suite(3, E7Config{}) {
			if e.ID == "E6" || e.ID == "E9" {
				out = append(out, e)
			}
		}
		return out
	}
	seq := RunConcurrent(pick(), 1)
	par := RunConcurrent(pick(), 4)
	for i := range seq {
		if seq[i].String() != par[i].String() {
			t.Errorf("experiment %d differs between sequential and parallel runs", i)
		}
	}
}
