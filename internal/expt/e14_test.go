package expt

import "testing"

func TestE14AscentNearOptimalWithFarFewerEvals(t *testing.T) {
	r := RunE14(1)
	if len(r.Points) < 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		if p.ExhaustiveEvals != p.SpaceSize {
			t.Errorf("R=%d: exhaustive evals %d != space %d", p.Regions, p.ExhaustiveEvals, p.SpaceSize)
		}
		if p.AscentScore > p.ExhaustiveScore+1e-9 {
			t.Errorf("R=%d: ascent (%v) exceeds exhaustive optimum (%v)",
				p.Regions, p.AscentScore, p.ExhaustiveScore)
		}
		if p.AscentScore < 0.95*p.ExhaustiveScore {
			t.Errorf("R=%d: ascent (%v) below 95%% of optimum (%v)",
				p.Regions, p.AscentScore, p.ExhaustiveScore)
		}
	}
	// The evaluation-count gap must widen combinatorially.
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	gapFirst := float64(first.ExhaustiveEvals) / float64(first.AscentEvals)
	gapLast := float64(last.ExhaustiveEvals) / float64(last.AscentEvals)
	if gapLast < 10*gapFirst {
		t.Errorf("eval gap did not widen combinatorially: %v → %v", gapFirst, gapLast)
	}
	if last.AscentEvals >= last.ExhaustiveEvals/100 {
		t.Errorf("at R=%d ascent used %d evals vs %d exhaustive — gap too small",
			last.Regions, last.AscentEvals, last.ExhaustiveEvals)
	}
}

func TestE14Deterministic(t *testing.T) {
	a, b := RunE14(1), RunE14(2) // seed-independent by construction
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatal("E14 not deterministic")
		}
	}
}

func TestE14TableRenders(t *testing.T) {
	if s := RunE14(1).Table().String(); !contains(s, "exhaustive evals") {
		t.Error("table malformed")
	}
}
