package expt

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"time"

	"eona/internal/faults"
	"eona/internal/journal"
	"eona/internal/netsim"
	"eona/internal/sim"
)

// E16 — crash/recovery sweep: recovery time vs log length, with and
// without snapshots.
//
// The crash-safe event journal (internal/journal) claims a restarted node
// recovers by loading the latest snapshot and replaying only the op tail
// behind it. E16 quantifies that claim: the same seeded control workload —
// flow churn plus a fault plan injected through ScheduleDriverTo, so fault
// events land in the journal alongside the ops they caused — is journaled
// at several log lengths, once with snapshots disabled (recovery replays
// the whole log) and once with a snapshot every E16SnapshotEvery ops
// (recovery replays at most one snapshot interval). Every recovery is
// digest-verified against the live pre-crash state before it counts.
//
// Expected shape: without snapshots, recovery time grows linearly with log
// length; with snapshots it stays flat — bounded by the snapshot interval,
// not the history — at the cost of the snapshot records' bytes.

// E16OpCounts is the swept op-log length.
var E16OpCounts = []int{250, 1000, 4000}

// E16SnapshotEvery is the snapshot cadence of the snapshotted arms.
const E16SnapshotEvery = 256

// E16Point is one (log length, snapshot cadence) arm.
type E16Point struct {
	Ops       int
	SnapEvery int
	// JournalBytes is the on-disk journal size; Segments its file count.
	JournalBytes int64
	Segments     int
	// TailOps counts ops actually replayed on recovery (= Ops without
	// snapshots, at most the snapshot interval with).
	TailOps int
	// RecoveryMS is the wall time of Recover + RecoverNetwork.
	RecoveryMS float64
	// FaultEvents counts journaled fault-plan instants.
	FaultEvents int
	// Verified reports the recovered digest matched the live network's.
	Verified bool
}

// E16Result is the full sweep.
type E16Result struct {
	Seed   int64
	Points []E16Point
}

// e16Topo is the E16 scenario graph: an access link feeding a two-hop
// core, as (topology, candidate paths).
func e16Topo() (*netsim.Topology, []netsim.Path) {
	topo := netsim.NewTopology()
	access := topo.AddLink("isp", "ixp", 1e9, 2*time.Millisecond, "access")
	core1 := topo.AddLink("ixp", "pop1", 600e6, time.Millisecond, "")
	core2 := topo.AddLink("ixp", "pop2", 400e6, time.Millisecond, "")
	return topo, []netsim.Path{{access, core1}, {access, core2}, {access}}
}

// RunE16 executes the sweep.
func RunE16(seed int64) E16Result {
	r := E16Result{Seed: seed}
	for _, ops := range E16OpCounts {
		for _, snapEvery := range []int{0, E16SnapshotEvery} {
			r.Points = append(r.Points, runE16Arm(seed, ops, snapEvery))
		}
	}
	return r
}

func runE16Arm(seed int64, opsTarget, snapEvery int) E16Point {
	dir, err := os.MkdirTemp("", "eona-e16-*")
	if err != nil {
		panic(fmt.Sprintf("expt: E16 temp dir: %v", err))
	}
	defer os.RemoveAll(dir)

	w, err := journal.Open(journal.Config{Dir: dir, SegmentBytes: 256 << 10, Sync: journal.SyncNever})
	if err != nil {
		panic(fmt.Sprintf("expt: E16 journal: %v", err))
	}
	topo, paths := e16Topo()
	if err := w.AppendTopology(netsim.ExportTopology(topo)); err != nil {
		panic(fmt.Sprintf("expt: E16 topology record: %v", err))
	}
	s := netsim.NewShared(netsim.NewNetwork(topo), netsim.SharedConfig{
		Journal: w, SnapshotEvery: snapEvery,
	})
	churn := s.Driver(1)
	faulter := s.Driver(2)

	// Fault plan: seed-placed access flaps across the horizon, injected
	// through the fault driver and journaled as plan-level events.
	const horizon = time.Hour
	eng := sim.NewEngine(seed)
	plan := faults.Generate(faults.Config{
		Seed:    seed,
		Horizon: horizon,
		Links: []faults.LinkFaultConfig{
			{Link: "access", Count: 4, Duration: 5 * time.Minute, Factor: 0.1},
		},
	})
	targets := map[string]faults.Target{"access": {ID: 0, BaseBps: 1e9}}
	if err := plan.ScheduleDriverTo(eng, faulter, targets, w); err != nil {
		panic(fmt.Sprintf("expt: E16 fault schedule: %v", err))
	}
	eng.Run(horizon)

	// Churn workload: seeded starts/stops/demand edits until the op
	// target is reached (the fault instants above contribute the rest).
	rng := rand.New(rand.NewSource(seed + int64(opsTarget) + int64(snapEvery)))
	var handles []*netsim.Flow
	for issued := int(w.Ops()); issued < opsTarget; issued++ {
		switch k := rng.Intn(5); {
		case k == 0 || len(handles) == 0:
			handles = append(handles, churn.StartFlow(paths[rng.Intn(len(paths))], float64(1+rng.Intn(40))*1e6, "e16"))
		case k == 1 && len(handles) > 8:
			i := rng.Intn(len(handles))
			churn.StopFlow(handles[i])
			handles = append(handles[:i], handles[i+1:]...)
		default:
			churn.SetDemand(handles[rng.Intn(len(handles))], float64(1+rng.Intn(80))*1e6)
		}
	}
	live := s.Close()
	if err := s.JournalError(); err != nil {
		panic(fmt.Sprintf("expt: E16 journal error: %v", err))
	}
	if err := w.Close(); err != nil {
		panic(fmt.Sprintf("expt: E16 close: %v", err))
	}

	p := E16Point{Ops: opsTarget, SnapEvery: snapEvery}
	ents, err := os.ReadDir(dir)
	if err != nil {
		panic(fmt.Sprintf("expt: E16 read journal dir: %v", err))
	}
	for _, e := range ents {
		if info, ierr := e.Info(); ierr == nil {
			p.JournalBytes += info.Size()
			p.Segments++
		}
	}

	t0 := time.Now()
	rec, err := journal.Recover(dir)
	if err != nil {
		panic(fmt.Sprintf("expt: E16 recover: %v", err))
	}
	restored, tail, err := rec.RecoverNetwork()
	if err != nil {
		panic(fmt.Sprintf("expt: E16 recover network: %v", err))
	}
	p.RecoveryMS = float64(time.Since(t0)) / float64(time.Millisecond)
	p.TailOps = tail
	p.FaultEvents = len(rec.Faults)
	p.Verified = restored.StateDigest() == live.StateDigest()
	return p
}

// Table renders the sweep.
func (r E16Result) Table() *Table {
	t := &Table{
		Title: "E16: crash/recovery sweep — recovery time vs log length (journal)",
		Columns: []string{
			"ops", "snapshots", "journal KiB", "segments", "tail ops", "recovery ms", "verified",
		},
	}
	for _, p := range r.Points {
		snap := "off"
		if p.SnapEvery > 0 {
			snap = "every " + strconv.Itoa(p.SnapEvery)
		}
		ok := "yes"
		if !p.Verified {
			ok = "NO"
		}
		t.AddRow(strconv.Itoa(p.Ops), snap,
			Cell(float64(p.JournalBytes)/1024), strconv.Itoa(p.Segments),
			strconv.Itoa(p.TailOps), Cell(p.RecoveryMS), ok)
	}
	t.Notes = append(t.Notes,
		"recovery = Recover (scan+decode) + RecoverNetwork (snapshot import + tail replay), digest-verified against the live pre-crash state",
		"without snapshots the tail is the whole log; with them it is bounded by the snapshot interval",
		"workload: seeded flow churn plus 4 access-link flaps journaled via faults.ScheduleDriverTo")
	return t
}
