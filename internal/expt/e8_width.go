package expt

import (
	"fmt"

	"eona/internal/core"
)

// E8 — §4 recipe: interface width vs. control quality.
//
// Paper claim: the recipe derives a wide interface (everything the global
// controller's cross-owner optimization touches), then narrows it. The
// question is how much application quality each narrowing costs relative to
// the hypothetical global controller. We ladder the Figure 5 scenario
// through: no sharing → I2A only → A2I only → both (the paper's narrow
// interface) → global oracle, and also report the recipe's derived
// interface sizes.

// E8Arm is one rung of the ladder.
type E8Arm struct {
	Name string
	// ItemsShared counts interface attributes exchanged (from the §4
	// recipe for the Figure 5 use case).
	ItemsShared int
	Result      Fig5Result
}

// E8Result holds all arms.
type E8Result struct {
	Arms   []E8Arm
	Oracle float64
	// WideSize is the size of the recipe-derived wide interface.
	WideSize int
}

// RunE8 executes the interface-width ladder.
func RunE8(seed int64) E8Result {
	iface, err := core.Figure5Recipe().WideInterface()
	if err != nil {
		panic(fmt.Sprintf("expt: figure-5 recipe invalid: %v", err))
	}
	a2iItems := 0
	i2aItems := 0
	for _, it := range iface.Items {
		if it.Direction == core.A2I {
			a2iItems++
		} else {
			i2aItems++
		}
	}

	arms := []struct {
		name        string
		appP, infP  Mode
		itemsShared int
	}{
		{"none (status quo)", Baseline, Baseline, 0},
		{"I2A only", EONA, Baseline, i2aItems},
		{"A2I only", Baseline, EONA, a2iItems},
		{"narrow two-way (paper)", EONA, EONA, a2iItems + i2aItems},
	}
	out := E8Result{WideSize: iface.Size()}
	for _, a := range arms {
		cfg := Fig5Config{Seed: seed, AppPMode: a.appP, InfPMode: a.infP}
		out.Arms = append(out.Arms, E8Arm{
			Name:        a.name,
			ItemsShared: a.itemsShared,
			Result:      RunFig5(cfg),
		})
	}
	out.Oracle = Fig5Oracle(Fig5Config{Seed: seed})
	return out
}

// Table renders the ladder.
func (r E8Result) Table() *Table {
	t := &Table{
		Title:   "E8 (§4 recipe): interface width vs control quality",
		Columns: []string{"interface", "attrs shared", "mean QoE score", "% of oracle", "switches (ISP+AppP)", "oscillating"},
	}
	for _, a := range r.Arms {
		osc := "no"
		if a.Result.Oscillating {
			osc = "yes"
		}
		t.AddRow(a.Name,
			fmt.Sprintf("%d", a.ItemsShared),
			Cell(a.Result.MeanScore),
			Cell(100*a.Result.MeanScore/r.Oracle),
			fmt.Sprintf("%d", a.Result.ISPSwitches+a.Result.AppPSwitches),
			osc)
	}
	t.AddRow("global controller (oracle)", fmt.Sprintf("%d (wide)", r.WideSize), Cell(r.Oracle), "100", "-", "no")
	t.Notes = append(t.Notes,
		"paper: 'share a small subset ... such that the application quality is still close to that of the global controller'",
		"paper: 'Information sharing in EONA is bidirectional' — one-way arms underperform the two-way narrow interface")
	return t
}
