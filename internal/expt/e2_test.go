package expt

import "testing"

func TestE2BaselineOscillates(t *testing.T) {
	r := RunE2(1)
	b := r.Baseline
	if !b.Oscillating {
		t.Errorf("baseline did not oscillate: egress=%v cdn=%v", b.EgressHistory, b.CDNHistory)
	}
	if b.CyclePeriod != 2 {
		t.Errorf("cycle period = %d, want 2 (the Figure 5 B/C↔X/Y loop)", b.CyclePeriod)
	}
	// Two hours at one switch per side per epoch: both knobs churn hard.
	if b.ISPSwitches < 20 || b.AppPSwitches < 20 {
		t.Errorf("switches = %d/%d, want heavy churn", b.ISPSwitches, b.AppPSwitches)
	}
}

func TestE2EONAConverges(t *testing.T) {
	r := RunE2(1)
	e := r.EONA
	if e.Oscillating {
		t.Errorf("EONA arm oscillates: egress=%v cdn=%v", e.EgressHistory, e.CDNHistory)
	}
	// A couple of initial decisions are fine; sustained churn is not.
	if e.ISPSwitches > 2 {
		t.Errorf("EONA ISP switches = %d, want ≤2", e.ISPSwitches)
	}
	if e.AppPSwitches > 2 {
		t.Errorf("EONA AppP switches = %d, want ≤2", e.AppPSwitches)
	}
	// Converges to the green path: CDN X via peering C.
	if got := e.EgressHistory[len(e.EgressHistory)-1]; got != "C" {
		t.Errorf("final egress = %s, want C", got)
	}
	if got := e.CDNHistory[len(e.CDNHistory)-1]; got != "cdnX" {
		t.Errorf("final CDN = %s, want cdnX", got)
	}
}

func TestE2EONABeatsBaselineAndApproachesOracle(t *testing.T) {
	r := RunE2(1)
	if r.EONA.MeanScore <= r.Baseline.MeanScore+20 {
		t.Errorf("EONA score %v does not clearly beat baseline %v",
			r.EONA.MeanScore, r.Baseline.MeanScore)
	}
	if r.Oracle < r.EONA.MeanScore-1e-9 {
		t.Errorf("oracle %v below EONA %v (oracle must upper-bound)", r.Oracle, r.EONA.MeanScore)
	}
	// EONA should land within 10% of the oracle on this scenario.
	if r.EONA.MeanScore < 0.9*r.Oracle {
		t.Errorf("EONA %v not within 10%% of oracle %v", r.EONA.MeanScore, r.Oracle)
	}
}

func TestE2DeterministicAcrossRuns(t *testing.T) {
	a, b := RunE2(42), RunE2(42)
	if a.Baseline.MeanScore != b.Baseline.MeanScore || a.EONA.MeanScore != b.EONA.MeanScore {
		t.Error("E2 not deterministic for equal seeds")
	}
	if len(a.Baseline.EgressHistory) != len(b.Baseline.EgressHistory) {
		t.Error("decision histories differ across identical runs")
	}
}

func TestE2SeedRobust(t *testing.T) {
	// The qualitative claim must hold for any seed (the scenario is
	// deterministic modulo dampening jitter, which E2 does not use).
	for _, seed := range []int64{2, 3, 99} {
		r := RunE2(seed)
		if !r.Baseline.Oscillating || r.EONA.Oscillating {
			t.Errorf("seed %d: baseline osc=%v eona osc=%v",
				seed, r.Baseline.Oscillating, r.EONA.Oscillating)
		}
	}
}

func TestE2TableRenders(t *testing.T) {
	s := RunE2(1).Table().String()
	if len(s) == 0 {
		t.Fatal("empty table")
	}
	for _, want := range []string{"baseline/baseline", "EONA/EONA", "global oracle", "limit cycle"} {
		if !contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
