// Package qoe defines the application-experience metrics and models that
// EONA optimizes.
//
// The video metrics and their relative importance follow the measurement
// literature the paper builds on: buffering ratio is the dominant driver of
// engagement (Dobrian et al., SIGCOMM'11), a 1% increase in buffering ratio
// reduces viewing time by roughly 3 minutes, and each second of startup
// delay beyond 2s raises the abandonment probability by roughly 5.8%
// (Krishnan & Sitaraman, IMC'12). The web metrics model the
// web-over-cellular delivery chain of Figure 1(a).
package qoe

import (
	"math"
	"time"
)

// SessionMetrics are the client-side measurements an AppP collects for one
// video session. These are exactly the measurements exported over EONA-A2I.
type SessionMetrics struct {
	// StartupDelay is the join time: request to first frame.
	StartupDelay time.Duration
	// PlayTime is wall time spent actually rendering video.
	PlayTime time.Duration
	// BufferingTime is wall time spent stalled after startup.
	BufferingTime time.Duration
	// AvgBitrate is the time-averaged played bitrate in bits/s.
	AvgBitrate float64
	// BitrateSwitches counts ABR ladder changes.
	BitrateSwitches int
	// CDNSwitches counts whole-CDN switches (the coarse knob of §2).
	CDNSwitches int
	// ServerSwitches counts intra-CDN server switches (the fine knob
	// EONA-I2A hints enable).
	ServerSwitches int
	// Abandoned records that the viewer gave up before content ended.
	Abandoned bool
}

// BufferingRatio returns stalled time over total watch time, in [0,1].
func (m SessionMetrics) BufferingRatio() float64 {
	total := m.PlayTime + m.BufferingTime
	if total <= 0 {
		return 0
	}
	return float64(m.BufferingTime) / float64(total)
}

// Model scores sessions. The zero value is unusable; construct with
// DefaultModel and adjust fields as needed.
type Model struct {
	// MaxBitrate anchors the bitrate utility: playing at MaxBitrate
	// scores full bitrate credit. Bits/s.
	MaxBitrate float64
	// RefBitrate is the log-utility knee (the "acceptable" rate).
	RefBitrate float64
	// BufferingPenalty is score points lost per percentage point of
	// buffering ratio.
	BufferingPenalty float64
	// StartupPenalty is score points lost per second of startup delay
	// beyond StartupFreeSeconds.
	StartupPenalty float64
	// StartupFreeSeconds is the startup delay users tolerate for free.
	StartupFreeSeconds float64
	// SwitchPenalty is score points lost per CDN switch (a disruption:
	// the player re-buffers and often restarts at the lowest rung).
	SwitchPenalty float64
}

// DefaultModel returns the model used throughout the experiments: a 0–100
// score dominated by buffering ratio.
func DefaultModel() Model {
	return Model{
		MaxBitrate:         8e6,
		RefBitrate:         1e6,
		BufferingPenalty:   4.0, // 25% buffering wipes out a perfect score
		StartupPenalty:     2.0,
		StartupFreeSeconds: 2.0,
		SwitchPenalty:      1.0,
	}
}

// BitrateUtility maps a bitrate to [0,1] with logarithmic diminishing
// returns (doubling a low rate helps much more than doubling a high one).
func (mo Model) BitrateUtility(bps float64) float64 {
	if bps <= 0 {
		return 0
	}
	u := math.Log1p(bps/mo.RefBitrate) / math.Log1p(mo.MaxBitrate/mo.RefBitrate)
	return math.Min(u, 1)
}

// Score maps session metrics to a 0–100 experience score.
func (mo Model) Score(m SessionMetrics) float64 {
	s := 100 * mo.BitrateUtility(m.AvgBitrate)
	s -= mo.BufferingPenalty * 100 * m.BufferingRatio()
	extra := m.StartupDelay.Seconds() - mo.StartupFreeSeconds
	if extra > 0 {
		s -= mo.StartupPenalty * extra
	}
	s -= mo.SwitchPenalty * float64(m.CDNSwitches)
	return clamp(s, 0, 100)
}

// EngagementMinutes estimates minutes actually viewed out of an intended
// viewing duration, applying the ~3-minutes-lost-per-1%-buffering slope and
// capping at the intended duration.
func (mo Model) EngagementMinutes(m SessionMetrics, intendedMinutes float64) float64 {
	lost := 3.0 * 100 * m.BufferingRatio()
	v := intendedMinutes - lost
	return clamp(v, 0, intendedMinutes)
}

// AbandonmentProbability estimates the chance a viewer abandons during
// startup: 5.8% per second of startup delay beyond 2 seconds, capped at 0.9
// (somebody always waits).
func AbandonmentProbability(startup time.Duration) float64 {
	extra := startup.Seconds() - 2.0
	if extra <= 0 {
		return 0
	}
	return clamp(0.058*extra, 0, 0.9)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// WebMetrics are the client-side measurements for a web page load over the
// cellular delivery chain of Figure 1(a) / Figure 4.
type WebMetrics struct {
	// TTFB is time to first byte, the network-level proxy ISPs use when
	// they cannot see real experience (Halepovic et al., IMC'12).
	TTFB time.Duration
	// PageLoadTime is the full above-the-fold load time — the real
	// experience metric only the AppP observes.
	PageLoadTime time.Duration
	// Aborted records the user navigating away before load completes.
	Aborted bool
}

// WebScore maps page load time to a 0–100 satisfaction score using an
// APDEX-style curve: full score up to 1s, zero beyond 8s, log-linear
// in between.
func WebScore(m WebMetrics) float64 {
	if m.Aborted {
		return 0
	}
	s := m.PageLoadTime.Seconds()
	switch {
	case s <= 1:
		return 100
	case s >= 8:
		return 0
	default:
		return 100 * (1 - math.Log(s)/math.Log(8))
	}
}
