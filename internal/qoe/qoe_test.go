package qoe

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestBufferingRatio(t *testing.T) {
	m := SessionMetrics{PlayTime: 90 * time.Second, BufferingTime: 10 * time.Second}
	if got := m.BufferingRatio(); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("ratio = %v, want 0.1", got)
	}
	if (SessionMetrics{}).BufferingRatio() != 0 {
		t.Error("empty session should have zero buffering ratio")
	}
}

func TestBitrateUtilityMonotone(t *testing.T) {
	mo := DefaultModel()
	prev := -1.0
	for _, bps := range []float64{0, 1e5, 5e5, 1e6, 2e6, 4e6, 8e6} {
		u := mo.BitrateUtility(bps)
		if u < prev {
			t.Errorf("utility decreased at %v: %v < %v", bps, u, prev)
		}
		if u < 0 || u > 1 {
			t.Errorf("utility out of range at %v: %v", bps, u)
		}
		prev = u
	}
	if mo.BitrateUtility(mo.MaxBitrate) != 1 {
		t.Errorf("utility at MaxBitrate = %v, want 1", mo.BitrateUtility(mo.MaxBitrate))
	}
	if mo.BitrateUtility(2*mo.MaxBitrate) != 1 {
		t.Error("utility above MaxBitrate should clamp to 1")
	}
}

func TestScorePerfectSession(t *testing.T) {
	mo := DefaultModel()
	m := SessionMetrics{
		StartupDelay: time.Second,
		PlayTime:     10 * time.Minute,
		AvgBitrate:   mo.MaxBitrate,
	}
	if got := mo.Score(m); got != 100 {
		t.Errorf("perfect score = %v, want 100", got)
	}
}

func TestScoreBufferingDominates(t *testing.T) {
	mo := DefaultModel()
	good := SessionMetrics{PlayTime: 10 * time.Minute, AvgBitrate: 4e6, StartupDelay: time.Second}
	bad := good
	bad.BufferingTime = 2 * time.Minute // ~16.7% buffering
	if mo.Score(bad) >= mo.Score(good) {
		t.Error("buffering did not reduce score")
	}
	// 25% buffering at max bitrate should floor the score.
	floored := SessionMetrics{PlayTime: 45 * time.Second, BufferingTime: 15 * time.Second, AvgBitrate: mo.MaxBitrate}
	if got := mo.Score(floored); got != 0 {
		t.Errorf("score at 25%% buffering = %v, want 0", got)
	}
}

func TestScoreStartupAndSwitchPenalties(t *testing.T) {
	mo := DefaultModel()
	base := SessionMetrics{PlayTime: 10 * time.Minute, AvgBitrate: 2e6, StartupDelay: time.Second}
	slow := base
	slow.StartupDelay = 10 * time.Second
	if mo.Score(slow) >= mo.Score(base) {
		t.Error("startup delay did not reduce score")
	}
	switched := base
	switched.CDNSwitches = 3
	if got, want := mo.Score(base)-mo.Score(switched), 3*mo.SwitchPenalty; math.Abs(got-want) > 1e-9 {
		t.Errorf("CDN switch penalty = %v, want %v", got, want)
	}
}

func TestEngagementSlope(t *testing.T) {
	mo := DefaultModel()
	perfect := SessionMetrics{PlayTime: time.Hour}
	if got := mo.EngagementMinutes(perfect, 60); got != 60 {
		t.Errorf("perfect engagement = %v, want 60", got)
	}
	// 1% buffering loses ~3 minutes.
	onePct := SessionMetrics{PlayTime: 99 * time.Minute, BufferingTime: time.Minute}
	if got := mo.EngagementMinutes(onePct, 60); math.Abs(got-57) > 0.01 {
		t.Errorf("engagement at 1%% buffering = %v, want 57", got)
	}
	terrible := SessionMetrics{PlayTime: time.Minute, BufferingTime: time.Hour}
	if got := mo.EngagementMinutes(terrible, 60); got != 0 {
		t.Errorf("engagement should clamp at 0, got %v", got)
	}
}

func TestAbandonment(t *testing.T) {
	if AbandonmentProbability(time.Second) != 0 {
		t.Error("fast startup should never abandon")
	}
	p3 := AbandonmentProbability(3 * time.Second)
	if math.Abs(p3-0.058) > 1e-9 {
		t.Errorf("P(abandon|3s) = %v, want 0.058", p3)
	}
	if AbandonmentProbability(time.Hour) != 0.9 {
		t.Error("abandonment should cap at 0.9")
	}
}

func TestWebScore(t *testing.T) {
	if WebScore(WebMetrics{PageLoadTime: 500 * time.Millisecond}) != 100 {
		t.Error("sub-second load should score 100")
	}
	if WebScore(WebMetrics{PageLoadTime: 10 * time.Second}) != 0 {
		t.Error("10s load should score 0")
	}
	if WebScore(WebMetrics{PageLoadTime: time.Second, Aborted: true}) != 0 {
		t.Error("aborted load should score 0")
	}
	mid := WebScore(WebMetrics{PageLoadTime: 3 * time.Second})
	if mid <= 0 || mid >= 100 {
		t.Errorf("3s load score = %v, want in (0,100)", mid)
	}
}

func TestWebScoreMonotone(t *testing.T) {
	prev := 101.0
	for s := 1; s <= 9; s++ {
		got := WebScore(WebMetrics{PageLoadTime: time.Duration(s) * time.Second})
		if got > prev {
			t.Errorf("WebScore increased at %ds: %v > %v", s, got, prev)
		}
		prev = got
	}
}

// Property: scores are always within [0,100] and adding buffering never
// raises a score.
func TestQuickScoreBounds(t *testing.T) {
	mo := DefaultModel()
	f := func(playSec, bufSec, startMs uint16, brKbps uint16, switches uint8) bool {
		m := SessionMetrics{
			StartupDelay:  time.Duration(startMs) * time.Millisecond,
			PlayTime:      time.Duration(playSec) * time.Second,
			BufferingTime: time.Duration(bufSec) * time.Second,
			AvgBitrate:    float64(brKbps) * 1000,
			CDNSwitches:   int(switches),
		}
		s := mo.Score(m)
		if s < 0 || s > 100 {
			return false
		}
		worse := m
		worse.BufferingTime += 10 * time.Second
		return mo.Score(worse) <= s+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
