// Package wire defines the EONA exchange format: a small, versioned JSON
// envelope around typed payloads. The paper leaves format standardization
// to "some standard body (e.g., IETF)" (§4); this package is the concrete
// binding this implementation speaks — explicit version string, explicit
// message type, ISO-agnostic millisecond timestamps, and strict decoding
// (unknown versions and mismatched types are errors, unknown fields inside
// payloads are ignored for forward compatibility).
package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
)

// Version is the protocol version this implementation speaks.
const Version = "eona/1"

// versionAccepted reports whether v names a protocol this implementation
// can decode: the same major version at any minor revision ("eona/1",
// "eona/1.7"). Minor revisions only add fields — which payload decoding
// already ignores — so refusing them would break rolling upgrades where
// one side deploys first. A different major ("eona/2") is still rejected.
func versionAccepted(v string) bool {
	if v == Version {
		return true
	}
	minor, ok := strings.CutPrefix(v, Version+".")
	if !ok || minor == "" {
		return false
	}
	for i := 0; i < len(minor); i++ {
		if minor[i] < '0' || minor[i] > '9' {
			return false
		}
	}
	return true
}

// MessageType tags the payload inside an envelope.
type MessageType string

// The message types of the EONA interfaces.
const (
	// TypeQoESummaries carries []core.QoESummary (A2I).
	TypeQoESummaries MessageType = "a2i.qoe_summaries"
	// TypeTrafficEstimates carries []core.TrafficEstimate (A2I).
	TypeTrafficEstimates MessageType = "a2i.traffic_estimates"
	// TypePeeringInfo carries []core.PeeringInfo (I2A).
	TypePeeringInfo MessageType = "i2a.peering_info"
	// TypeAttribution carries core.Attribution (I2A).
	TypeAttribution MessageType = "i2a.attribution"
	// TypeServerHints carries []core.ServerHint (I2A).
	TypeServerHints MessageType = "i2a.server_hints"
	// TypeError carries an ErrorBody.
	TypeError MessageType = "error"
)

var knownTypes = map[MessageType]bool{
	TypeQoESummaries:     true,
	TypeTrafficEstimates: true,
	TypePeeringInfo:      true,
	TypeAttribution:      true,
	TypeServerHints:      true,
	TypeError:            true,
}

// Envelope is the outer message framing. Decoding tolerates unknown
// envelope fields (a newer minor revision may add some), an absent Schema,
// and any same-major Version string.
type Envelope struct {
	Version string      `json:"version"`
	Type    MessageType `json:"type"`
	// Schema is the envelope's minor schema revision. Absent on the wire
	// (0) means the original revision 1; decoders never reject a newer
	// value, since minor revisions only add fields. Read it via SchemaRev.
	Schema int `json:"schema,omitempty"`
	// GeneratedAtMs is the producer's clock (virtual or wall) in
	// milliseconds — consumers use it to judge staleness.
	GeneratedAtMs int64           `json:"generated_at_ms"`
	Payload       json.RawMessage `json:"payload"`
}

// SchemaRev returns the envelope's schema revision, mapping the legacy
// absent/zero encoding to revision 1.
func (e Envelope) SchemaRev() int {
	if e.Schema <= 0 {
		return 1
	}
	return e.Schema
}

// ErrorBody is the payload of a TypeError message.
type ErrorBody struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

// Encoding and decoding errors.
var (
	ErrVersion = errors.New("wire: unsupported protocol version")
	ErrType    = errors.New("wire: unknown or mismatched message type")
)

// Encode wraps payload in a versioned envelope.
func Encode(t MessageType, generatedAtMs int64, payload any) ([]byte, error) {
	if !knownTypes[t] {
		return nil, fmt.Errorf("%w: %q", ErrType, t)
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("wire: marshal payload: %w", err)
	}
	return json.Marshal(Envelope{
		Version:       Version,
		Type:          t,
		GeneratedAtMs: generatedAtMs,
		Payload:       raw,
	})
}

// Decode parses an envelope and validates its version and type.
func Decode(data []byte) (Envelope, error) {
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return Envelope{}, fmt.Errorf("wire: malformed envelope: %w", err)
	}
	if !versionAccepted(env.Version) {
		return Envelope{}, fmt.Errorf("%w: %q", ErrVersion, env.Version)
	}
	if !knownTypes[env.Type] {
		return Envelope{}, fmt.Errorf("%w: %q", ErrType, env.Type)
	}
	return env, nil
}

// DecodePayload parses an envelope's payload as T after checking the
// envelope carries the expected type.
func DecodePayload[T any](env Envelope, want MessageType) (T, error) {
	var v T
	if env.Type != want {
		return v, fmt.Errorf("%w: have %q, want %q", ErrType, env.Type, want)
	}
	if err := json.Unmarshal(env.Payload, &v); err != nil {
		return v, fmt.Errorf("wire: payload for %q: %w", want, err)
	}
	return v, nil
}
