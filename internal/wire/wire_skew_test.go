package wire

import (
	"encoding/json"
	"errors"
	"testing"

	"eona/internal/core"
)

func TestVersionAccepted(t *testing.T) {
	accept := []string{"eona/1", "eona/1.0", "eona/1.7", "eona/1.42"}
	reject := []string{"", "eona/2", "eona/2.1", "eona/1.", "eona/1.x", "eona/1.7.2", "eona/10", "EONA/1", "eona/1 "}
	for _, v := range accept {
		if !versionAccepted(v) {
			t.Errorf("versionAccepted(%q) = false", v)
		}
	}
	for _, v := range reject {
		if versionAccepted(v) {
			t.Errorf("versionAccepted(%q) = true", v)
		}
	}
}

// TestDecodeVersionSkew round-trips a payload through envelopes stamped by
// a hypothetical newer minor-revision producer: higher minor version,
// explicit schema revision, and envelope fields this implementation has
// never heard of. All must decode to the same payload; a new major must
// still be refused.
func TestDecodeVersionSkew(t *testing.T) {
	att := core.Attribution{CDN: "cdnX", SuggestedCapBps: 2e6}
	payload, err := json.Marshal(att)
	if err != nil {
		t.Fatal(err)
	}

	type futureEnvelope struct {
		Version       string          `json:"version"`
		Type          MessageType     `json:"type"`
		Schema        int             `json:"schema,omitempty"`
		GeneratedAtMs int64           `json:"generated_at_ms"`
		Payload       json.RawMessage `json:"payload"`
		TraceID       string          `json:"trace_id,omitempty"` // not in our Envelope
	}
	cases := []struct {
		name string
		env  futureEnvelope
		rev  int
	}{
		{"current", futureEnvelope{Version: "eona/1", Type: TypeAttribution, GeneratedAtMs: 5, Payload: payload}, 1},
		{"newer-minor", futureEnvelope{Version: "eona/1.7", Type: TypeAttribution, Schema: 7, GeneratedAtMs: 5, Payload: payload}, 7},
		{"newer-minor-extra-fields", futureEnvelope{Version: "eona/1.2", Type: TypeAttribution, Schema: 2, GeneratedAtMs: 5, Payload: payload, TraceID: "t-1"}, 2},
	}
	for _, tc := range cases {
		data, err := json.Marshal(tc.env)
		if err != nil {
			t.Fatal(err)
		}
		env, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if env.SchemaRev() != tc.rev {
			t.Errorf("%s: schema revision = %d, want %d", tc.name, env.SchemaRev(), tc.rev)
		}
		got, err := DecodePayload[core.Attribution](env, TypeAttribution)
		if err != nil {
			t.Fatalf("%s: payload: %v", tc.name, err)
		}
		if got != att {
			t.Errorf("%s: payload = %+v, want %+v", tc.name, got, att)
		}
	}

	next, _ := json.Marshal(futureEnvelope{Version: "eona/2", Type: TypeAttribution, GeneratedAtMs: 5, Payload: payload})
	if _, err := Decode(next); !errors.Is(err, ErrVersion) {
		t.Errorf("major bump: err = %v, want ErrVersion", err)
	}
}

// TestEncodeStaysLegacyShape pins that our own producer still emits the
// original envelope (version "eona/1", no schema field) — consumers at the
// previous release decode it unchanged.
func TestEncodeStaysLegacyShape(t *testing.T) {
	data, err := Encode(TypeError, 1, ErrorBody{Code: 400, Message: "m"})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if string(m["version"]) != `"eona/1"` {
		t.Errorf("version on wire = %s", m["version"])
	}
	if _, present := m["schema"]; present {
		t.Error("schema field emitted for the legacy revision; omitempty contract broken")
	}
}
