package wire

import (
	"testing"

	"eona/internal/core"
)

// FuzzDecode exercises the envelope decoder with arbitrary bytes: it must
// never panic, and anything it accepts must satisfy the protocol
// invariants. Run with `go test -fuzz=FuzzDecode ./internal/wire` for a
// real fuzzing session; the seed corpus runs as a normal unit test.
func FuzzDecode(f *testing.F) {
	// Seed corpus: valid envelopes of each type plus near-misses.
	if data, err := Encode(TypeAttribution, 1, core.Attribution{CDN: "cdnX"}); err == nil {
		f.Add(data)
	}
	if data, err := Encode(TypeQoESummaries, 2, []core.QoESummary{{}}); err == nil {
		f.Add(data)
	}
	f.Add([]byte(`{"version":"eona/1","type":"bogus","payload":{}}`))
	f.Add([]byte(`{"version":"eona/99","type":"i2a.attribution","payload":{}}`))
	// Version skew: newer minors decode, other majors and junk do not.
	f.Add([]byte(`{"version":"eona/1.7","schema":3,"type":"i2a.attribution","payload":{}}`))
	f.Add([]byte(`{"version":"eona/1.","type":"i2a.attribution","payload":{}}`))
	f.Add([]byte(`{"version":"eona/1.x","type":"i2a.attribution","payload":{}}`))
	f.Add([]byte(`{"version":"eona/2","type":"i2a.attribution","payload":{}}`))
	// Unknown envelope fields from a newer producer are tolerated.
	f.Add([]byte(`{"version":"eona/1","type":"error","payload":{},"trace_id":"abc","hop_count":2}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Decode(data)
		if err != nil {
			return
		}
		if !versionAccepted(env.Version) {
			t.Fatalf("accepted version %q", env.Version)
		}
		if env.SchemaRev() < 1 {
			t.Fatalf("accepted schema revision %d", env.SchemaRev())
		}
		if !knownTypes[env.Type] {
			t.Fatalf("accepted unknown type %q", env.Type)
		}
		// Accepted envelopes must be re-encodable via their payload.
		if _, err := Encode(env.Type, env.GeneratedAtMs, env.Payload); err != nil {
			t.Fatalf("accepted envelope failed to re-encode: %v", err)
		}
	})
}
