package wire

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"eona/internal/core"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := []core.QoESummary{{
		Key:       core.SummaryKey{ClientISP: "isp1", CDN: "cdnX", Cluster: "east"},
		Sessions:  42,
		MeanScore: 77.5,
	}}
	data, err := Encode(TypeQoESummaries, 12345, in)
	if err != nil {
		t.Fatal(err)
	}
	env, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if env.Version != Version || env.Type != TypeQoESummaries || env.GeneratedAtMs != 12345 {
		t.Errorf("envelope = %+v", env)
	}
	out, err := DecodePayload[[]core.QoESummary](env, TypeQoESummaries)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != in[0] {
		t.Errorf("round trip = %+v, want %+v", out, in)
	}
}

func TestEncodeUnknownType(t *testing.T) {
	if _, err := Encode(MessageType("bogus"), 0, nil); !errors.Is(err, ErrType) {
		t.Errorf("err = %v, want ErrType", err)
	}
}

func TestEncodeUnmarshalablePayload(t *testing.T) {
	if _, err := Encode(TypeAttribution, 0, make(chan int)); err == nil {
		t.Error("channel payload should fail to marshal")
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	data, _ := Encode(TypeAttribution, 0, core.Attribution{})
	tampered := strings.Replace(string(data), Version, "eona/99", 1)
	if _, err := Decode([]byte(tampered)); !errors.Is(err, ErrVersion) {
		t.Errorf("err = %v, want ErrVersion", err)
	}
}

func TestDecodeRejectsUnknownType(t *testing.T) {
	raw, _ := json.Marshal(Envelope{Version: Version, Type: "nope", Payload: []byte("{}")})
	if _, err := Decode(raw); !errors.Is(err, ErrType) {
		t.Errorf("err = %v, want ErrType", err)
	}
}

func TestDecodeMalformed(t *testing.T) {
	if _, err := Decode([]byte("{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestDecodePayloadTypeMismatch(t *testing.T) {
	data, _ := Encode(TypePeeringInfo, 0, []core.PeeringInfo{})
	env, _ := Decode(data)
	if _, err := DecodePayload[[]core.QoESummary](env, TypeQoESummaries); !errors.Is(err, ErrType) {
		t.Errorf("err = %v, want ErrType", err)
	}
}

func TestDecodePayloadMalformed(t *testing.T) {
	env := Envelope{Version: Version, Type: TypeAttribution, Payload: []byte(`{"segment": "not an int"`)}
	if _, err := DecodePayload[core.Attribution](env, TypeAttribution); err == nil {
		t.Error("malformed payload accepted")
	}
}

func TestForwardCompatibleUnknownPayloadFields(t *testing.T) {
	// A newer peer may add payload fields; decoding must ignore them.
	raw := `{"version":"eona/1","type":"i2a.attribution","generated_at_ms":1,` +
		`"payload":{"cdn":"cdnX","segment":1,"level":2,"suggested_cap_bps":1000,"future_field":"x"}}`
	env, err := Decode([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	att, err := DecodePayload[core.Attribution](env, TypeAttribution)
	if err != nil {
		t.Fatal(err)
	}
	if att.CDN != "cdnX" || att.Segment != core.SegmentAccess || att.SuggestedCapBps != 1000 {
		t.Errorf("attribution = %+v", att)
	}
}

// Property: Decode never panics and never returns both a valid envelope
// and an error, no matter the input bytes.
func TestQuickDecodeRobustness(t *testing.T) {
	f := func(data []byte) bool {
		env, err := Decode(data)
		if err != nil {
			return true
		}
		return env.Version == Version && knownTypes[env.Type]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Encode/Decode round-trips any attribution payload.
func TestQuickAttributionRoundTrip(t *testing.T) {
	f := func(seg uint8, cap float64, cdnName string) bool {
		if math.IsNaN(cap) || math.IsInf(cap, 0) {
			return true // JSON numbers cannot carry these
		}
		in := core.Attribution{
			CDN:             cdnName,
			Segment:         core.BottleneckSegment(seg % 4),
			SuggestedCapBps: cap,
		}
		data, err := Encode(TypeAttribution, 0, in)
		if err != nil {
			return false
		}
		env, err := Decode(data)
		if err != nil {
			return false
		}
		out, err := DecodePayload[core.Attribution](env, TypeAttribution)
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestErrorBodyRoundTrip(t *testing.T) {
	data, err := Encode(TypeError, 5, ErrorBody{Code: 403, Message: "forbidden"})
	if err != nil {
		t.Fatal(err)
	}
	env, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := DecodePayload[ErrorBody](env, TypeError)
	if err != nil {
		t.Fatal(err)
	}
	if eb.Code != 403 || eb.Message != "forbidden" {
		t.Errorf("error body = %+v", eb)
	}
}
