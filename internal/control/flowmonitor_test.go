package control

import (
	"testing"
	"time"

	"eona/internal/sim"
)

func TestFlowMonitorFiresOnStreak(t *testing.T) {
	e := sim.NewEngine(1)
	rate, demand := 100.0, 100.0
	fired := 0
	m := NewFlowMonitor(e,
		func() float64 { return rate },
		func() float64 { return demand },
		FlowMonitorConfig{CheckEvery: time.Second, Consecutive: 2, Cooldown: 10 * time.Second},
		func(*FlowMonitor) { fired++ })

	// Healthy for 3s, then starved.
	e.Schedule(3*time.Second+time.Millisecond, func(*sim.Engine) { rate = 10 })
	e.Run(4 * time.Second)
	if fired != 0 {
		t.Fatalf("fired after one starved check, want streak of 2")
	}
	e.Run(5 * time.Second)
	if fired != 1 {
		t.Fatalf("fired = %d after 2 starved checks, want 1", fired)
	}

	// Cooldown: still starved, but muted for 10s after the trigger.
	e.Run(14 * time.Second)
	if fired != 1 {
		t.Fatalf("fired = %d during cooldown, want 1", fired)
	}
	// Past the cooldown the streak rebuilds and fires again.
	e.Run(20 * time.Second)
	if fired != 2 {
		t.Fatalf("fired = %d after cooldown, want 2", fired)
	}
	if m.Triggers != fired {
		t.Errorf("Triggers = %d, want %d", m.Triggers, fired)
	}
}

func TestFlowMonitorRecoveryResetsStreak(t *testing.T) {
	e := sim.NewEngine(1)
	rate, demand := 10.0, 100.0
	m := NewFlowMonitor(e,
		func() float64 { return rate },
		func() float64 { return demand },
		FlowMonitorConfig{CheckEvery: time.Second, Consecutive: 3},
		nil)
	// One starved check, then recovery before the streak completes.
	e.Schedule(1500*time.Millisecond, func(*sim.Engine) { rate = 100 })
	e.Run(5 * time.Second)
	if m.Triggers != 0 {
		t.Errorf("Triggers = %d after recovery mid-streak, want 0", m.Triggers)
	}
	if m.Starved() != 0 {
		t.Errorf("streak = %d after recovery, want 0", m.Starved())
	}
}

func TestFlowMonitorZeroDemandIsHealthy(t *testing.T) {
	e := sim.NewEngine(1)
	m := NewFlowMonitor(e,
		func() float64 { return 0 },
		func() float64 { return 0 },
		FlowMonitorConfig{CheckEvery: time.Second, Consecutive: 1},
		nil)
	e.Run(5 * time.Second)
	if m.Triggers != 0 {
		t.Errorf("Triggers = %d on idle flow, want 0", m.Triggers)
	}
}

// Stop must cancel the pending tick outright: no dead event left to inflate
// Len or drag the clock (the sim.Every regression this PR fixes).
func TestFlowMonitorStopLeavesNoEvent(t *testing.T) {
	e := sim.NewEngine(1)
	m := NewFlowMonitor(e,
		func() float64 { return 0 },
		func() float64 { return 1 },
		FlowMonitorConfig{CheckEvery: time.Minute},
		nil)
	m.Stop()
	if got := e.Len(); got != 0 {
		t.Fatalf("Len after Stop = %d, want 0", got)
	}
	if end := e.RunUntilIdle(); end != 0 {
		t.Errorf("idle clock = %v after Stop, want 0", end)
	}
	if m.Checks != 0 {
		t.Errorf("Checks = %d after immediate Stop, want 0", m.Checks)
	}
}
