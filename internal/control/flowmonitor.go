package control

import (
	"time"

	"eona/internal/sim"
)

// FlowMonitorConfig parameterizes a FlowMonitor.
type FlowMonitorConfig struct {
	// CheckEvery is the monitoring period. Default 2s.
	CheckEvery time.Duration
	// StarvedBelow is the achieved/demanded rate ratio under which a check
	// counts as starved. Default 0.9.
	StarvedBelow float64
	// Consecutive is how many starved checks in a row trigger a reaction.
	// Default 2 — a single congested instant is noise, a streak is a signal.
	Consecutive int
	// Cooldown suppresses re-triggering after a reaction. Default 10s.
	Cooldown time.Duration
}

func (c *FlowMonitorConfig) applyDefaults() {
	if c.CheckEvery == 0 {
		c.CheckEvery = 2 * time.Second
	}
	if c.StarvedBelow == 0 {
		c.StarvedBelow = 0.9
	}
	if c.Consecutive == 0 {
		c.Consecutive = 2
	}
	if c.Cooldown == 0 {
		c.Cooldown = 10 * time.Second
	}
}

// FlowMonitor watches one flow's achieved rate against its demand and fires
// a reaction after a streak of starved checks. Unlike Monitor it is not
// coupled to a player: it reads through two caller-supplied funcs, so a
// partitioned scenario can hand it snapshot reads from a
// netsim.SharedNetwork (safe from any goroutine) while the flow itself is
// mutated elsewhere through per-partition Drivers. That makes it the
// monitor-fleet building block for the multi-driver engine: a region's
// monitors tick inside the region's sim partition and only observe
// last-commit state.
type FlowMonitor struct {
	cfg    FlowMonitorConfig
	rate   func() float64
	demand func() float64
	react  func(*FlowMonitor)

	starved    int
	mutedUntil time.Duration
	stop       func()

	// Triggers counts reactions fired.
	Triggers int
	// Checks counts monitor ticks, for test and table diagnostics.
	Checks int
}

// NewFlowMonitor starts a monitor on e that reads the flow's achieved rate
// and current demand through the given funcs. react runs inside the
// simulation loop, on e's goroutine/partition. A zero-demand read counts as
// healthy (the flow is idle, not starved).
func NewFlowMonitor(e *sim.Engine, rate, demand func() float64, cfg FlowMonitorConfig, react func(*FlowMonitor)) *FlowMonitor {
	cfg.applyDefaults()
	m := &FlowMonitor{cfg: cfg, rate: rate, demand: demand, react: react}
	m.stop = e.Every(cfg.CheckEvery, m.check)
	return m
}

// Stop detaches the monitor; its pending tick is cancelled, not orphaned.
func (m *FlowMonitor) Stop() {
	if m.stop != nil {
		m.stop()
	}
}

// Starved reports the current streak of starved checks.
func (m *FlowMonitor) Starved() int { return m.starved }

func (m *FlowMonitor) check(e *sim.Engine) bool {
	m.Checks++
	d := m.demand()
	if d <= 0 || m.rate() >= m.cfg.StarvedBelow*d {
		m.starved = 0
		return true
	}
	m.starved++
	if e.Now() < m.mutedUntil || m.starved < m.cfg.Consecutive {
		return true
	}
	m.Triggers++
	m.mutedUntil = e.Now() + m.cfg.Cooldown
	m.starved = 0
	if m.react != nil {
		m.react(m)
	}
	return true
}
