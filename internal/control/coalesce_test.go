package control

import (
	"sync"
	"testing"
	"time"

	"eona/internal/netsim"
	"eona/internal/sim"
)

// coalesceNet builds a multi-component topology: r single-link rails with
// flowsPerRail application-limited flows each.
func coalesceNet(r, flowsPerRail int) (*netsim.Network, []*netsim.Flow) {
	topo := netsim.NewTopology()
	var paths []netsim.Path
	for i := 0; i < r; i++ {
		from := netsim.NodeID(rune('a' + i))
		to := netsim.NodeID(rune('A' + i))
		paths = append(paths, netsim.Path{topo.AddLink(from, to, 90e6, time.Millisecond, "")})
	}
	net := netsim.NewNetwork(topo)
	var flows []*netsim.Flow
	net.Batch(func() {
		for i := 0; i < r; i++ {
			for k := 0; k < flowsPerRail; k++ {
				flows = append(flows, net.StartFlow(paths[i], 1e6*float64(1+k), ""))
			}
		}
	})
	return net, flows
}

// The regression test for the coalescing contract: M monitors tripping at
// the same simulated instant produce exactly ONE reallocation, counted via
// the allocator's stats, with every reaction still applied.
func TestSameInstantMonitorReactionsOneReallocation(t *testing.T) {
	const M = 6
	e := sim.NewEngine(1)
	net, flows := coalesceNet(3, M)
	coal := NewCoalescer(e, net)

	reacted := 0
	for i := 0; i < M; i++ {
		i := i
		p, conn := newSession(e, 1e6, 5*time.Minute)
		NewMonitor(e, p, MonitorConfig{Coalesce: coal}, func(*Monitor, Reason) {
			reacted++
			net.SetDemand(flows[i], 9e6)
		})
		// Starve every session at the same instant; the M identical
		// monitors then all trip at the same later check tick.
		e.Schedule(10*time.Second, func(*sim.Engine) { conn.rate = 1e4 })
	}
	base := net.Stats()
	e.Run(20 * time.Second) // one firing round: cooldown (10s) outlasts the horizon

	st := net.Stats()
	if reacted != M {
		t.Fatalf("%d of %d monitors reacted", reacted, M)
	}
	if got := st.CoalescedReactions - base.CoalescedReactions; got != M {
		t.Errorf("CoalescedReactions delta = %d, want %d", got, M)
	}
	if got := st.Reallocations - base.Reallocations; got != 1 {
		t.Errorf("%d same-instant reactions cost %d reallocations, want exactly 1", M, got)
	}
	for i := 0; i < M; i++ {
		if flows[i].Demand != 9e6 {
			t.Errorf("reaction %d not applied: demand = %v", i, flows[i].Demand)
		}
	}
}

// Without a Coalescer the same M monitors cost M reallocations — the
// baseline the coalescer is measured against.
func TestSameInstantMonitorReactionsUncoalescedBaseline(t *testing.T) {
	const M = 6
	e := sim.NewEngine(1)
	net, flows := coalesceNet(3, M)

	for i := 0; i < M; i++ {
		i := i
		p, conn := newSession(e, 1e6, 5*time.Minute)
		NewMonitor(e, p, MonitorConfig{}, func(*Monitor, Reason) {
			net.SetDemand(flows[i], 9e6)
		})
		e.Schedule(10*time.Second, func(*sim.Engine) { conn.rate = 1e4 })
	}
	base := net.Stats()
	e.Run(20 * time.Second)

	st := net.Stats()
	if got := st.Reallocations - base.Reallocations; got != M {
		t.Errorf("uncoalesced reactions cost %d reallocations, want %d", got, M)
	}
	if st.CoalescedReactions != 0 {
		t.Errorf("CoalescedReactions = %d without a coalescer", st.CoalescedReactions)
	}
}

// driveReactions fires reactionsPerTick same-instant demand changes per
// simulated millisecond for ticks ticks, spread over the first spreadComps
// components, either directly (one commit each) or via a Coalescer (one
// commit per tick). Returns the network for counter inspection.
func driveReactions(ticks, reactionsPerTick, comps, flowsPerComp, spreadComps int, coalesce bool) *netsim.Network {
	e := sim.NewEngine(1)
	net, flows := coalesceNet(comps, flowsPerComp)
	coal := NewCoalescer(e, net)
	tick := 0
	e.Every(time.Millisecond, func(*sim.Engine) bool {
		tick++
		if tick > ticks {
			return false
		}
		for r := 0; r < reactionsPerTick; r++ {
			comp := r % spreadComps
			idx := comp*flowsPerComp + (tick+r/spreadComps)%flowsPerComp
			f := flows[idx]
			val := 1e6 * float64(1+(tick+r)%16)
			if coalesce {
				coal.Defer(func() { net.SetDemand(f, val) })
			} else {
				net.SetDemand(f, val)
			}
		}
		return true
	})
	e.Run(time.Duration(ticks+1) * time.Millisecond)
	return net
}

// Coalescing same-instant reactions that land in the same components must
// re-solve ≥2× fewer flows: M commits × component size collapse into one
// commit over the union of the touched components.
func TestCoalescingHalvesFlowsRecomputed(t *testing.T) {
	const ticks, reactions, comps, perComp, spread = 50, 8, 4, 8, 2
	direct := driveReactions(ticks, reactions, comps, perComp, spread, false)
	coal := driveReactions(ticks, reactions, comps, perComp, spread, true)

	if coal.CoalescedReactions != ticks*reactions {
		t.Fatalf("CoalescedReactions = %d, want %d", coal.CoalescedReactions, ticks*reactions)
	}
	ratio := float64(direct.FlowsRecomputed) / float64(coal.FlowsRecomputed)
	if ratio < 2 {
		t.Errorf("coalescing re-solved only %.2f× fewer flows (%d vs %d), want ≥2×",
			ratio, direct.FlowsRecomputed, coal.FlowsRecomputed)
	}
	// 8 reactions over 2 components per tick: 8 single-component commits
	// collapse into 1 two-component commit → exactly 4× here.
	if ratio < 3.5 {
		t.Errorf("expected ~4× on this shape, got %.2f×", ratio)
	}
}

// BenchmarkCoalescedReactions measures end-of-tick reaction coalescing on a
// multi-component topology: 8 same-instant reactions per tick spread over 2
// of 4 components, committed one-by-one vs folded into one batch. The
// flows-recomputed/op metric records the ≥2× work reduction (op = one tick).
func BenchmarkCoalescedReactions(b *testing.B) {
	run := func(b *testing.B, coalesce bool) {
		net := driveReactions(b.N, 8, 4, 8, 2, coalesce)
		b.ReportMetric(float64(net.FlowsRecomputed)/float64(b.N), "flows-recomputed/op")
	}
	b.Run("uncoalesced", func(b *testing.B) { run(b, false) })
	b.Run("coalesced", func(b *testing.B) { run(b, true) })
}

// The shared-network variant of the coalescing contract: the sim thread
// drives monitors whose reactions commit through a SharedNetwork's owner
// goroutine (NewSharedCoalescer), while concurrent goroutines hammer the
// published snapshots. Same pin — M same-instant reactions, ONE
// reallocation — now with the read plane live and race-free.
func TestSharedCoalescerSnapshotReaders(t *testing.T) {
	const M = 6
	e := sim.NewEngine(1)
	raw, flows := coalesceNet(3, M)
	shared := netsim.NewShared(raw, netsim.SharedConfig{})
	coal := NewSharedCoalescer(e, shared)

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			i := g
			for {
				select {
				case <-stop:
					return
				default:
				}
				sn := shared.Snapshot()
				_ = sn.Utilization(netsim.LinkID(i % 3))
				_ = sn.Congestion(netsim.LinkID(i % 3))
				_ = sn.Stats()
				i++
			}
		}(g)
	}

	reacted := 0
	for i := 0; i < M; i++ {
		i := i
		p, conn := newSession(e, 1e6, 5*time.Minute)
		// Reactions run on the owner goroutine with the inner network
		// exclusively held (see NewSharedCoalescer), so mutating raw
		// directly is the intended wiring.
		NewMonitor(e, p, MonitorConfig{Coalesce: coal}, func(*Monitor, Reason) {
			reacted++
			raw.SetDemand(flows[i], 9e6)
		})
		e.Schedule(10*time.Second, func(*sim.Engine) { conn.rate = 1e4 })
	}
	base := shared.Stats()
	e.Run(20 * time.Second)
	close(stop)
	readers.Wait()
	shared.Close()

	st := shared.Stats()
	if reacted != M {
		t.Fatalf("%d of %d monitors reacted", reacted, M)
	}
	if got := st.CoalescedReactions - base.CoalescedReactions; got != M {
		t.Errorf("CoalescedReactions delta = %d, want %d", got, M)
	}
	if got := st.Reallocations - base.Reallocations; got != 1 {
		t.Errorf("%d same-instant reactions cost %d reallocations, want exactly 1", M, got)
	}
	sn := shared.Snapshot()
	for i := 0; i < M; i++ {
		if v, ok := sn.Flow(flows[i].ID); !ok || v.Demand != 9e6 {
			t.Errorf("reaction %d not applied: view %+v ok=%v", i, v, ok)
		}
	}
}
