package control

import (
	"strconv"
	"testing"
	"testing/quick"
)

func spaces2x3() []KnobSpace {
	return []KnobSpace{
		{Name: "cdn", Options: []string{"X", "Y"}},
		{Name: "cap", Options: []string{"hi", "mid", "lo"}},
	}
}

func TestEnumerateFindsGlobalOptimum(t *testing.T) {
	eval := func(a Assignment) float64 {
		s := 0.0
		if a["cdn"] == "X" {
			s += 10
		}
		if a["cap"] == "mid" {
			s += 5
		}
		return s
	}
	best, score, evals := Enumerate(spaces2x3(), eval)
	if best["cdn"] != "X" || best["cap"] != "mid" || score != 15 {
		t.Errorf("best = %v score %v", best, score)
	}
	if evals != 6 {
		t.Errorf("evals = %d, want 6", evals)
	}
}

func TestEnumerateEmptySpaces(t *testing.T) {
	_, score, evals := Enumerate(nil, func(Assignment) float64 { return 42 })
	if score != 42 || evals != 1 {
		t.Errorf("empty enumerate = %v, %d", score, evals)
	}
}

func TestEnumerateEmptyOptionsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty options did not panic")
		}
	}()
	Enumerate([]KnobSpace{{Name: "bad"}}, func(Assignment) float64 { return 0 })
}

func TestCoordinateAscentSeparableObjective(t *testing.T) {
	// Separable objectives are coordinate ascent's best case: it must
	// find the global optimum with far fewer evaluations.
	spaces := []KnobSpace{
		{Name: "a", Options: []string{"0", "1", "2", "3"}},
		{Name: "b", Options: []string{"0", "1", "2", "3"}},
		{Name: "c", Options: []string{"0", "1", "2", "3"}},
	}
	eval := func(as Assignment) float64 {
		s := 0.0
		for _, v := range as {
			x, _ := strconv.Atoi(v)
			s += float64(x)
		}
		return s
	}
	got, score, evals := CoordinateAscent(spaces, eval, nil, 0)
	if score != 9 || got["a"] != "3" || got["b"] != "3" || got["c"] != "3" {
		t.Errorf("ascent = %v score %v", got, score)
	}
	_, _, exhaustive := Enumerate(spaces, eval)
	if evals >= exhaustive {
		t.Errorf("ascent evals %d not below exhaustive %d", evals, exhaustive)
	}
}

func TestCoordinateAscentRespectsStart(t *testing.T) {
	spaces := spaces2x3()
	eval := func(a Assignment) float64 {
		if a["cdn"] == "Y" && a["cap"] == "lo" {
			return 100
		}
		return 1
	}
	start := Assignment{"cdn": "Y", "cap": "lo"}
	got, score, _ := CoordinateAscent(spaces, eval, start, 0)
	if score != 100 || got["cdn"] != "Y" {
		t.Errorf("ascent abandoned the provided optimum: %v %v", got, score)
	}
	// start is not mutated.
	if start["cdn"] != "Y" || start["cap"] != "lo" {
		t.Error("start assignment mutated")
	}
}

func TestCoordinateAscentCanStickAtLocalOptimum(t *testing.T) {
	// A genuine local optimum: from (0,1) every single-knob move is
	// strictly worse, while the global optimum (1,0) needs both knobs
	// to move together — documenting the known limitation that E14
	// quantifies (it does not bite in the EONA scenarios, where shared
	// information makes the objective near-separable).
	spaces := []KnobSpace{
		{Name: "a", Options: []string{"0", "1"}},
		{Name: "b", Options: []string{"0", "1"}},
	}
	table := map[string]float64{"0,1": 5, "1,1": 4, "0,0": 4, "1,0": 10}
	eval := func(as Assignment) float64 { return table[as["a"]+","+as["b"]] }
	got, score, _ := CoordinateAscent(spaces, eval, Assignment{"a": "0", "b": "1"}, 0)
	if score != 5 {
		t.Errorf("expected the local optimum (5), got %v at %v", score, got)
	}
}

func TestAssignmentClone(t *testing.T) {
	a := Assignment{"k": "v"}
	b := a.Clone()
	b["k"] = "w"
	if a["k"] != "v" {
		t.Error("Clone did not copy")
	}
	var nilA Assignment
	if c := nilA.Clone(); c == nil || len(c) != 0 {
		t.Error("nil Clone should yield empty map")
	}
}

// Property: ascent never returns a score below its starting evaluation,
// and never exceeds the exhaustive optimum.
func TestQuickAscentBounds(t *testing.T) {
	f := func(weights [6]int8, startA, startB uint8) bool {
		spaces := []KnobSpace{
			{Name: "a", Options: []string{"0", "1", "2"}},
			{Name: "b", Options: []string{"0", "1"}},
		}
		eval := func(as Assignment) float64 {
			ai, _ := strconv.Atoi(as["a"])
			bi, _ := strconv.Atoi(as["b"])
			return float64(weights[ai*2+bi])
		}
		start := Assignment{
			"a": strconv.Itoa(int(startA) % 3),
			"b": strconv.Itoa(int(startB) % 2),
		}
		startScore := eval(start)
		_, got, _ := CoordinateAscent(spaces, eval, start, 0)
		_, best, _ := Enumerate(spaces, eval)
		return got >= startScore && got <= best
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
