// Package control implements the control loops of §5 — both the status-quo
// baselines the paper criticizes and their EONA-enhanced versions:
//
//   - AppP side: BaselineAppP is the trial-and-error CDN switcher ("if QoE
//     is bad, switch CDN"); EONAAppP reads I2A peering hints and bottleneck
//     attribution to pick the *right* reaction (cap bitrate on access
//     congestion, sit tight while the ISP re-routes a congested peering,
//     switch CDN only when the CDN itself is the problem).
//   - InfP side: BaselineInfP is cost-greedy utilization-reactive traffic
//     engineering (the Figure 5 oscillator); EONAInfP sizes its egress
//     choice with the A2I per-CDN traffic estimate so decisions stick.
//
// Policies are pure decision functions over observation snapshots; the
// mechanisms they drive live in internal/isp and internal/player, and the
// scenario harness in internal/expt wires them together. Every policy is
// deterministic.
package control

import (
	"sort"
	"time"

	"eona/internal/core"
	"eona/internal/isp"
	"eona/internal/netsim"
	"eona/internal/stability"
)

// CDNStat is the AppP's own view of one CDN option.
type CDNStat struct {
	Name string
	// Score is the recent mean QoE score observed on this CDN; zero if
	// the AppP has no recent sessions there.
	Score float64
	// ServingCapacityBps is the AppP's contracted estimate of what the
	// CDN can serve it (known from its CDN contracts, not from EONA).
	ServingCapacityBps float64
}

// I2AView is the slice of InfP state visible to an AppP through EONA-I2A.
// A nil view means the AppP is running without EONA.
type I2AView struct {
	Peering     []core.PeeringInfo
	Attribution map[string]core.Attribution
}

// AppPObs is one epoch's observation for the AppP policy.
type AppPObs struct {
	Now time.Duration
	// Current is the CDN currently carrying the traffic.
	Current string
	// Score is the recent mean QoE score on the current CDN.
	Score float64
	// DemandBps is the AppP's own aggregate demand estimate.
	DemandBps float64
	// CDNs lists all options including the current one.
	CDNs []CDNStat
	// I2A is the EONA view (nil for baseline operation).
	I2A *I2AView
	// I2AConfidence grades how much the I2A view is still to be trusted
	// (1 = fresh exchange, decaying toward 0 with staleness — see
	// lookingglass.DecayConfidence). Only consulted by policies with a
	// ConfidenceFloor set; zero is fine for fully-fresh operation.
	I2AConfidence float64
}

// AppPDecision is the AppP's knob settings for the next epoch.
type AppPDecision struct {
	// CDN to route sessions to.
	CDN string
	// BitrateCapBps caps per-session bitrate (0 = uncapped) — the
	// Figure 3 reaction to access congestion.
	BitrateCapBps float64
}

// AppPPolicy decides AppP knobs each control epoch.
type AppPPolicy interface {
	Decide(AppPObs) AppPDecision
}

// BaselineAppP is today's trial-and-error control: if the current CDN's
// recent score drops below Threshold, rotate to the next CDN. It has no
// visibility into why quality dropped — exactly the "coarse control" and
// "lack of visibility" problems of §2.
type BaselineAppP struct {
	// Threshold is the QoE score below which the AppP switches away.
	Threshold float64
}

// Decide implements AppPPolicy.
func (b *BaselineAppP) Decide(obs AppPObs) AppPDecision {
	if obs.Score >= b.Threshold || len(obs.CDNs) < 2 {
		return AppPDecision{CDN: obs.Current}
	}
	// Rotate to the next CDN in listed order.
	names := cdnNames(obs.CDNs)
	idx := indexOf(names, obs.Current)
	next := names[(idx+1)%len(names)]
	return AppPDecision{CDN: next}
}

// EONAAppP uses the I2A view to react to the actual bottleneck.
type EONAAppP struct {
	// Threshold is the score below which the AppP investigates.
	Threshold float64
	// CapHeadroom discounts the InfP's suggested bitrate cap (0.9 means
	// run at 90% of the suggestion).
	CapHeadroom float64
	// Hysteresis dampens CDN switches; nil disables dampening.
	Hysteresis *stability.Hysteresis
	// ConfidenceFloor, when positive, is the minimum obs.I2AConfidence at
	// which the policy still trusts the I2A view. Below it the hints are
	// treated as absent and the policy degrades to exactly the baseline
	// decision rule — acting on a sufficiently stale attribution is worse
	// than acting on none (the E15 chaos result). Zero keeps the legacy
	// always-trust behaviour.
	ConfidenceFloor float64
}

// Decide implements AppPPolicy.
func (e *EONAAppP) Decide(obs AppPObs) AppPDecision {
	if obs.I2A == nil || (e.ConfidenceFloor > 0 && obs.I2AConfidence < e.ConfidenceFloor) {
		// Degrade gracefully to baseline behaviour: no hints, or hints
		// too stale to act on.
		return (&BaselineAppP{Threshold: e.Threshold}).Decide(obs)
	}
	dec := AppPDecision{CDN: obs.Current}
	att, hasAtt := obs.I2A.Attribution[obs.Current]
	if obs.Score >= e.Threshold {
		// Healthy: stay, and lift any cap unless the InfP still
		// reports access congestion.
		if hasAtt && att.Segment == core.SegmentAccess && att.SuggestedCapBps > 0 {
			dec.BitrateCapBps = e.cap(att.SuggestedCapBps)
		}
		return dec
	}
	if !hasAtt {
		return dec // degraded but no attribution yet: hold (dampened)
	}
	switch att.Segment {
	case core.SegmentAccess:
		// Figure 3: the bottleneck is the ISP's own access network.
		// Switching CDNs cannot help; adapt bitrate down instead.
		if att.SuggestedCapBps > 0 {
			dec.BitrateCapBps = e.cap(att.SuggestedCapBps)
		}
		return dec
	case core.SegmentPeering:
		// §4: attribute the problem to the peering point, not the
		// CDN. If the ISP has (or is moving to) an uncongested
		// peering for this CDN, stay put.
		if hasViablePeering(obs.I2A.Peering, obs.Current) {
			return dec
		}
		// No viable peering for this CDN at all: a different CDN
		// with a viable peering is genuinely better.
		if alt, ok := e.bestAlternative(obs); ok {
			dec.CDN = alt
		}
		return dec
	case core.SegmentCDN, core.SegmentNone:
		// Either the InfP points at the CDN, or it reports no
		// congestion on its own side while QoE is bad — in both
		// cases the ISP is exonerated and switching CDN is the right
		// move (if a viable, adequately sized alternative exists).
		if alt, ok := e.bestAlternative(obs); ok {
			dec.CDN = alt
		}
		return dec
	default:
		return dec
	}
}

func (e *EONAAppP) cap(suggested float64) float64 {
	h := e.CapHeadroom
	if h <= 0 || h > 1 {
		h = 1
	}
	return suggested * h
}

// bestAlternative picks the non-current CDN with a viable peering and the
// highest score, applying hysteresis when configured.
func (e *EONAAppP) bestAlternative(obs AppPObs) (string, bool) {
	var best *CDNStat
	for i := range obs.CDNs {
		c := &obs.CDNs[i]
		if c.Name == obs.Current {
			continue
		}
		if !hasViablePeering(obs.I2A.Peering, c.Name) {
			continue
		}
		if c.ServingCapacityBps > 0 && obs.DemandBps > 0 && c.ServingCapacityBps < obs.DemandBps {
			continue // known too small: the Figure 5 CDN-Y trap
		}
		if best == nil || c.Score > best.Score || (c.Score == best.Score && c.Name < best.Name) {
			best = c
		}
	}
	if best == nil {
		return "", false
	}
	if e.Hysteresis != nil {
		choice := e.Hysteresis.Decide(obs.Score, best.Name, best.Score)
		if choice != best.Name {
			return "", false
		}
	}
	return best.Name, true
}

func hasViablePeering(infos []core.PeeringInfo, cdnName string) bool {
	for _, p := range infos {
		if p.CDN != cdnName {
			continue
		}
		if p.Congestion <= netsim.CongestionModerate {
			return true
		}
	}
	return false
}

// A2IView is the slice of AppP state visible to an InfP through EONA-A2I.
// Nil means the InfP runs without EONA.
type A2IView struct {
	Traffic   []core.TrafficEstimate
	Summaries []core.QoESummary
}

// InfPObs is one epoch's observation for the InfP policy.
type InfPObs struct {
	Now time.Duration
	// Peerings is the InfP's own link state, in declaration order.
	Peerings []isp.LinkReport
	// Egress maps CDN name to the current peering choice.
	Egress map[string]string
	// Reach maps CDN name to the peering IDs that can serve it, in
	// declaration (cost-preference) order.
	Reach map[string][]string
	// A2I is the EONA view (nil for baseline operation).
	A2I *A2IView
	// A2IConfidence grades how much the A2I view is still to be trusted
	// (see AppPObs.I2AConfidence). Only consulted by policies with a
	// ConfidenceFloor set.
	A2IConfidence float64
}

// InfPDecision is the InfP's egress choice per CDN.
type InfPDecision struct {
	Egress map[string]string
}

// InfPPolicy decides InfP knobs each TE epoch.
type InfPPolicy interface {
	Decide(InfPObs) InfPDecision
}

// BaselineInfP is utilization-reactive, cost-greedy TE: use the preferred
// (first-listed, typically cheapest/local) peering for each CDN; evacuate
// when its utilization passes HighWater; fall back as soon as it drops
// below LowWater. Because it cannot see the AppP's demand, it flips back
// the moment the AppP's own reaction drains the link — the Figure 5
// oscillator.
type BaselineInfP struct {
	HighWater, LowWater float64
}

// Decide implements InfPPolicy.
func (b *BaselineInfP) Decide(obs InfPObs) InfPDecision {
	util := reportMap(obs.Peerings)
	out := InfPDecision{Egress: map[string]string{}}
	for _, cdnName := range sortedKeys(obs.Reach) {
		options := obs.Reach[cdnName]
		if len(options) == 0 {
			continue
		}
		preferred := options[0]
		current, ok := obs.Egress[cdnName]
		if !ok {
			current = preferred
		}
		choice := current
		if util[current] >= b.HighWater {
			// Evacuate to the least-utilized alternative.
			choice = leastUtilized(options, util, current)
		} else if current != preferred && util[preferred] < b.LowWater {
			// Cost preference pulls traffic back as soon as the
			// preferred link looks idle.
			choice = preferred
		}
		out.Egress[cdnName] = choice
	}
	return out
}

// EONAInfP sizes egress choices against the A2I per-CDN traffic estimate:
// choose the most-preferred peering whose *capacity* fits the estimated
// volume with margin. Because the decision depends on demand rather than
// on the link's instantaneous utilization, it does not flip when the AppP's
// traffic momentarily leaves the link.
type EONAInfP struct {
	// Margin is the required capacity headroom over the estimate
	// (0.1 = 10%).
	Margin float64
	// HighWater triggers utilization-based fallback when no estimate is
	// available for a CDN.
	HighWater float64
	// ConfidenceFloor, when positive, is the minimum obs.A2IConfidence at
	// which the A2I estimates are still trusted. Below it the estimates
	// are treated as absent and every CDN takes the utilization-reactive
	// fallback path — the baseline rule. Zero keeps the legacy
	// always-trust behaviour.
	ConfidenceFloor float64
}

// Decide implements InfPPolicy.
func (e *EONAInfP) Decide(obs InfPObs) InfPDecision {
	util := reportMap(obs.Peerings)
	capacity := map[string]float64{}
	for _, r := range obs.Peerings {
		capacity[r.PeeringID] = r.CapacityBps
	}
	demand := map[string]float64{}
	if obs.A2I != nil && !(e.ConfidenceFloor > 0 && obs.A2IConfidence < e.ConfidenceFloor) {
		for _, t := range obs.A2I.Traffic {
			demand[t.CDN] += t.VolumeBps
		}
	}
	out := InfPDecision{Egress: map[string]string{}}
	for _, cdnName := range sortedKeys(obs.Reach) {
		options := obs.Reach[cdnName]
		if len(options) == 0 {
			continue
		}
		current, ok := obs.Egress[cdnName]
		if !ok {
			current = options[0]
		}
		vol, hasVol := demand[cdnName]
		if !hasVol {
			// No estimate: behave like the utilization baseline.
			if util[current] >= e.HighWater {
				out.Egress[cdnName] = leastUtilized(options, util, current)
			} else {
				out.Egress[cdnName] = current
			}
			continue
		}
		need := vol * (1 + e.Margin)
		// Keep the current choice if it fits the demand.
		if capacity[current] >= need {
			out.Egress[cdnName] = current
			continue
		}
		// Otherwise the most-preferred option that fits; if none
		// fits, the largest.
		choice := ""
		for _, opt := range options {
			if capacity[opt] >= need {
				choice = opt
				break
			}
		}
		if choice == "" {
			choice = options[0]
			for _, opt := range options {
				if capacity[opt] > capacity[choice] {
					choice = opt
				}
			}
		}
		out.Egress[cdnName] = choice
	}
	return out
}

func reportMap(reports []isp.LinkReport) map[string]float64 {
	m := make(map[string]float64, len(reports))
	for _, r := range reports {
		m[r.PeeringID] = r.Utilization
	}
	return m
}

func leastUtilized(options []string, util map[string]float64, exclude string) string {
	best := ""
	for _, opt := range options {
		if opt == exclude {
			continue
		}
		if best == "" || util[opt] < util[best] {
			best = opt
		}
	}
	if best == "" {
		return exclude // nowhere else to go
	}
	return best
}

func cdnNames(stats []CDNStat) []string {
	out := make([]string, len(stats))
	for i, c := range stats {
		out[i] = c.Name
	}
	return out
}

func indexOf(names []string, name string) int {
	for i, n := range names {
		if n == name {
			return i
		}
	}
	return 0
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
