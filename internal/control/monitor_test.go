package control

import (
	"math"
	"testing"
	"time"

	"eona/internal/player"
	"eona/internal/sim"
)

type scriptConn struct {
	rate   float64
	demand float64
}

func (c *scriptConn) Rate() float64 {
	if c.demand == 0 {
		return 0
	}
	return math.Min(c.rate, c.demand)
}
func (c *scriptConn) SetDemand(bps float64) { c.demand = bps }
func (c *scriptConn) Close()                {}

func newSession(e *sim.Engine, rate float64, content time.Duration) (*player.Player, *scriptConn) {
	p := player.New(e, player.Config{
		Ladder: []float64{300e3, 1e6, 3e6},
		ABR:    player.Fixed{Bitrate: 1e6},
	}, content)
	c := &scriptConn{rate: rate}
	p.Start(c, 0)
	return p, c
}

func TestMonitorQuietOnHealthySession(t *testing.T) {
	e := sim.NewEngine(1)
	p, _ := newSession(e, 5e6, time.Minute)
	fired := 0
	NewMonitor(e, p, MonitorConfig{}, func(*Monitor, Reason) { fired++ })
	e.Run(2 * time.Minute)
	if fired != 0 {
		t.Errorf("monitor fired %d times on a healthy session", fired)
	}
}

func TestMonitorFiresOnBuffering(t *testing.T) {
	e := sim.NewEngine(1)
	p, conn := newSession(e, 1e6, 5*time.Minute)
	var reasons []Reason
	m := NewMonitor(e, p, MonitorConfig{}, func(_ *Monitor, r Reason) { reasons = append(reasons, r) })
	// Starve mid-session: 1e6 rung on a 100kbps link.
	e.Schedule(20*time.Second, func(*sim.Engine) { conn.rate = 1e5 })
	e.Run(90 * time.Second)
	if len(reasons) == 0 {
		t.Fatal("monitor never fired despite starvation")
	}
	if reasons[0] != ReasonBuffering {
		t.Errorf("first reason = %v, want buffering", reasons[0])
	}
	if m.Triggers[ReasonBuffering] != len(reasons) {
		t.Error("trigger counter mismatch")
	}
}

func TestMonitorCooldownLimitsFiring(t *testing.T) {
	e := sim.NewEngine(1)
	p, conn := newSession(e, 1e6, 10*time.Minute)
	fired := 0
	NewMonitor(e, p, MonitorConfig{Cooldown: 30 * time.Second}, func(*Monitor, Reason) { fired++ })
	e.Schedule(10*time.Second, func(*sim.Engine) { conn.rate = 1e4 })
	e.Run(70 * time.Second)
	// ~45s of continuous misery with a 30s cooldown: at most 2 firings.
	if fired > 2 {
		t.Errorf("fired %d times, cooldown not enforced", fired)
	}
	if fired == 0 {
		t.Error("never fired")
	}
}

func TestMonitorNoProgress(t *testing.T) {
	e := sim.NewEngine(1)
	p, conn := newSession(e, 2e6, 10*time.Minute)
	var got []Reason
	NewMonitor(e, p, MonitorConfig{NoProgressAfter: 6 * time.Second},
		func(_ *Monitor, r Reason) { got = append(got, r) })
	// Server dies completely at 20s.
	e.Schedule(20*time.Second, func(*sim.Engine) { conn.rate = 0 })
	e.Run(2 * time.Minute)
	foundNoProgress := false
	for _, r := range got {
		if r == ReasonNoProgress {
			foundNoProgress = true
		}
	}
	if !foundNoProgress {
		t.Errorf("reasons = %v, want a no-progress trigger", got)
	}
}

func TestMonitorStopsWithSession(t *testing.T) {
	e := sim.NewEngine(1)
	p, _ := newSession(e, 5e6, 10*time.Second)
	NewMonitor(e, p, MonitorConfig{}, nil)
	e.Run(time.Minute)
	if !p.Done() {
		t.Fatal("session should finish")
	}
	// After completion the monitor's ticker self-cancels; the engine
	// must drain (no immortal events).
	if left := e.Len(); left != 0 {
		t.Errorf("%d events still pending after session end", left)
	}
}

func TestMonitorStopDetaches(t *testing.T) {
	e := sim.NewEngine(1)
	p, conn := newSession(e, 1e6, 10*time.Minute)
	fired := 0
	m := NewMonitor(e, p, MonitorConfig{}, func(*Monitor, Reason) { fired++ })
	e.Schedule(5*time.Second, func(*sim.Engine) {
		m.Stop()
		conn.rate = 1e3 // would trigger if still attached
	})
	e.Run(time.Minute)
	if fired != 0 {
		t.Errorf("stopped monitor fired %d times", fired)
	}
	if m.Player() != p {
		t.Error("Player accessor wrong")
	}
}

func TestReasonStrings(t *testing.T) {
	if ReasonBuffering.String() != "buffering" || ReasonNoProgress.String() != "no-progress" {
		t.Error("reason strings wrong")
	}
	if Reason(42).String() != "unknown" {
		t.Error("unknown reason string wrong")
	}
}
