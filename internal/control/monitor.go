package control

import (
	"time"

	"eona/internal/player"
	"eona/internal/sim"
)

// Reason classifies why a session monitor fired.
type Reason int

const (
	// ReasonBuffering: the recent buffering ratio crossed the threshold.
	ReasonBuffering Reason = iota
	// ReasonNoProgress: throughput collapsed (e.g., the server died) —
	// nothing is arriving at all.
	ReasonNoProgress
	// ReasonSlowStart: playback has not begun after SlowStartAfter.
	ReasonSlowStart
)

// String names the reason.
func (r Reason) String() string {
	switch r {
	case ReasonBuffering:
		return "buffering"
	case ReasonNoProgress:
		return "no-progress"
	case ReasonSlowStart:
		return "slow-start"
	default:
		return "unknown"
	}
}

// MonitorConfig parameterizes a session monitor.
type MonitorConfig struct {
	// CheckEvery is the monitoring period. Default 2s.
	CheckEvery time.Duration
	// BufferingThreshold is the recent buffering ratio that triggers
	// ReasonBuffering. Default 0.15.
	BufferingThreshold float64
	// NoProgressAfter triggers ReasonNoProgress when the smoothed
	// throughput stays below 1 kbps for this long while the player is
	// not done. Default 6s.
	NoProgressAfter time.Duration
	// SlowStartAfter triggers ReasonSlowStart when playback has not
	// begun after this much startup delay. Default 20s.
	SlowStartAfter time.Duration
	// Cooldown suppresses re-triggering after a reaction. Default 10s.
	Cooldown time.Duration
	// Coalesce, when non-nil, defers this monitor's reactions to the end
	// of the current simulated instant, where the Coalescer folds every
	// reaction deferred there (by any monitor sharing it) into one
	// allocator batch. Trigger counters and the cooldown are still
	// updated at fire time. Nil keeps the immediate per-reaction
	// behaviour.
	Coalesce *Coalescer
}

func (c *MonitorConfig) applyDefaults() {
	if c.CheckEvery == 0 {
		c.CheckEvery = 2 * time.Second
	}
	if c.BufferingThreshold == 0 {
		c.BufferingThreshold = 0.15
	}
	if c.NoProgressAfter == 0 {
		c.NoProgressAfter = 6 * time.Second
	}
	if c.SlowStartAfter == 0 {
		c.SlowStartAfter = 20 * time.Second
	}
	if c.Cooldown == 0 {
		c.Cooldown = 10 * time.Second
	}
}

// Monitor watches one player session and invokes a reaction callback when
// experience degrades — this is the per-session half of an AppP control
// loop (the other half, the fleet-level policy, decides what the reaction
// does: baseline CDN switch vs. EONA-informed response).
type Monitor struct {
	cfg    MonitorConfig
	player *player.Player
	react  func(*Monitor, Reason)

	lastPlay      time.Duration
	lastBuffering time.Duration
	noProgressFor time.Duration
	mutedUntil    time.Duration
	stop          func()

	// Triggers counts reactions fired, by reason.
	Triggers map[Reason]int
}

// NewMonitor attaches a monitor to a player and starts its periodic check.
// react runs inside the simulation loop; it may redirect the player.
func NewMonitor(e *sim.Engine, p *player.Player, cfg MonitorConfig, react func(*Monitor, Reason)) *Monitor {
	cfg.applyDefaults()
	m := &Monitor{
		cfg:      cfg,
		player:   p,
		react:    react,
		Triggers: make(map[Reason]int),
	}
	m.stop = e.Every(cfg.CheckEvery, m.check)
	return m
}

// Player returns the monitored player.
func (m *Monitor) Player() *player.Player { return m.player }

// Stop detaches the monitor.
func (m *Monitor) Stop() {
	if m.stop != nil {
		m.stop()
	}
}

// RecentBufferingRatio returns the buffering ratio over the last check
// interval (not the whole session), so a long-healthy session still reacts
// quickly when conditions change.
func (m *Monitor) recentBufferingRatio() (float64, bool) {
	cur := m.player.Metrics()
	dPlay := cur.PlayTime - m.lastPlay
	dBuf := cur.BufferingTime - m.lastBuffering
	m.lastPlay = cur.PlayTime
	m.lastBuffering = cur.BufferingTime
	total := dPlay + dBuf
	if total <= 0 {
		return 0, false
	}
	return float64(dBuf) / float64(total), true
}

func (m *Monitor) check(e *sim.Engine) bool {
	if m.player.Done() {
		return false
	}
	ratio, ok := m.recentBufferingRatio()

	// No-progress detection.
	if m.player.ThroughputEMA() < 1e3 {
		m.noProgressFor += m.cfg.CheckEvery
	} else {
		m.noProgressFor = 0
	}

	if e.Now() < m.mutedUntil {
		return true
	}
	cur := m.player.Metrics()
	switch {
	case m.noProgressFor >= m.cfg.NoProgressAfter:
		m.fire(e, ReasonNoProgress)
	case cur.PlayTime == 0 && cur.StartupDelay >= m.cfg.SlowStartAfter:
		m.fire(e, ReasonSlowStart)
	case ok && ratio >= m.cfg.BufferingThreshold:
		m.fire(e, ReasonBuffering)
	}
	return true
}

func (m *Monitor) fire(e *sim.Engine, r Reason) {
	m.Triggers[r]++
	m.mutedUntil = e.Now() + m.cfg.Cooldown
	m.noProgressFor = 0
	if m.react == nil {
		return
	}
	if m.cfg.Coalesce != nil {
		m.cfg.Coalesce.Defer(func() { m.react(m, r) })
		return
	}
	m.react(m, r)
}
