package control

import (
	"eona/internal/netsim"
	"eona/internal/sim"
)

// Coalescer folds every reaction deferred during one simulated instant into
// a single netsim batch committed at the end of the tick. Without it, M
// monitors tripping at the same instant (a flash crowd hitting one CDN, a
// server dying under a whole fleet) cost M reallocations; with it they cost
// one — the same amortize-the-recompute shape B4 and SWAN use for batched
// TE solves. Share one Coalescer between all monitors driving the same
// Network.
//
// Deferring moves a reaction from its monitor's check event to the end of
// the same simulated instant. No simulated time passes in between, but
// other same-instant events observe the pre-reaction network state; the
// simulation stays deterministic either way.
//
// The commit target is pluggable: NewCoalescer batches directly on a serial
// Network, NewSharedCoalescer routes the same batch through a
// SharedNetwork's owner goroutine so concurrent snapshot readers stay
// race-free while the sim thread keeps writing.
type Coalescer struct {
	eng     *sim.Engine
	commit  func(fns []func())
	pending []func()
	// free is the previous flush's drained pending buffer, reused by the
	// next Defer so steady-state ticks don't grow a fresh slice. Kept
	// separate from pending because a reaction may Defer again while the
	// commit is still iterating the old buffer.
	free  []func()
	armed bool
}

// NewCoalescer returns a Coalescer committing deferred reactions on net at
// the end of each of eng's ticks.
func NewCoalescer(eng *sim.Engine, net *netsim.Network) *Coalescer {
	return &Coalescer{eng: eng, commit: func(fns []func()) {
		net.NoteCoalescedReactions(uint64(len(fns)))
		net.Batch(func() {
			for _, fn := range fns {
				fn()
			}
		})
	}}
}

// NewSharedCoalescer returns a Coalescer committing deferred reactions
// through a SharedNetwork: the whole tick's reactions run as one command on
// the owner goroutine, publishing a single new snapshot. The deferred
// closures run with the inner network exclusively held, so reactions built
// against the raw *Network the SharedNetwork wraps (the usual sim wiring:
// one simulation thread writes, other goroutines read snapshots) stay
// correct unchanged; reactions must not call back into the SharedNetwork's
// own mutation methods, which would deadlock on the owner.
func NewSharedCoalescer(eng *sim.Engine, net *netsim.SharedNetwork) *Coalescer {
	return &Coalescer{eng: eng, commit: func(fns []func()) {
		net.Batch(func(n *netsim.Network) {
			n.NoteCoalescedReactions(uint64(len(fns)))
			for _, fn := range fns {
				fn()
			}
		})
	}}
}

// Defer queues fn for the shared end-of-tick commit. The first deferral of
// each tick arms the engine hook; N same-instant deferrals then cost one
// reallocation instead of N. fn must not assume it runs before other events
// at the same instant.
func (c *Coalescer) Defer(fn func()) {
	c.pending = append(c.pending, fn)
	if !c.armed {
		c.armed = true
		c.eng.OnTickEnd(c.flush)
	}
}

// flush commits all reactions deferred this tick in one batch. A reaction
// that defers further work re-arms the hook for the same instant; it lands
// in the spare buffer, never the one the commit is iterating.
func (c *Coalescer) flush(*sim.Engine) {
	fns := c.pending
	c.pending = c.free[:0]
	c.free = nil
	c.armed = false
	if len(fns) == 0 {
		c.free = fns
		return
	}
	c.commit(fns)
	for i := range fns {
		fns[i] = nil
	}
	c.free = fns[:0]
}
