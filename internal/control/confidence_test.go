package control

import (
	"reflect"
	"testing"

	"eona/internal/core"
)

// Below the confidence floor the EONA AppP must behave exactly like the
// baseline — a stale access-congestion attribution would otherwise keep a
// bitrate cap pinned long after the congestion cleared (the E15 naive-EONA
// failure mode).
func TestEONAAppPConfidenceFloorFallsBackToBaseline(t *testing.T) {
	obs := AppPObs{
		Current: "cdnX", Score: 20, DemandBps: 150e6,
		CDNs: twoCDNs(), I2A: i2aAccessCongested(2e6),
	}
	p := &EONAAppP{Threshold: 60, CapHeadroom: 0.9, ConfidenceFloor: 0.5}
	base := &BaselineAppP{Threshold: 60}

	obs.I2AConfidence = 0.8
	if dec := p.Decide(obs); dec.CDN != "cdnX" || dec.BitrateCapBps != 1.8e6 {
		t.Errorf("confident decision = %+v, want EONA cap-and-stay", dec)
	}

	obs.I2AConfidence = 0.3
	dec := p.Decide(obs)
	if !reflect.DeepEqual(dec, base.Decide(obs)) {
		t.Errorf("stale-hint decision = %+v, want exactly baseline %+v", dec, base.Decide(obs))
	}
	if dec.BitrateCapBps != 0 {
		t.Errorf("stale hint still applied a cap: %+v", dec)
	}
}

func TestEONAAppPZeroFloorIgnoresConfidence(t *testing.T) {
	// Legacy behaviour: no floor configured, confidence (even zero) is
	// not consulted — E1–E14 results must not move.
	p := &EONAAppP{Threshold: 60, CapHeadroom: 0.9}
	dec := p.Decide(AppPObs{
		Current: "cdnX", Score: 20, DemandBps: 150e6,
		CDNs: twoCDNs(), I2A: i2aAccessCongested(2e6), I2AConfidence: 0,
	})
	if dec.CDN != "cdnX" || dec.BitrateCapBps != 1.8e6 {
		t.Errorf("zero-floor decision = %+v, want EONA cap-and-stay", dec)
	}
}

// Below the floor the EONA InfP must ignore the A2I estimate and take the
// utilization-reactive path for every CDN.
func TestEONAInfPConfidenceFloorFallsBackToUtilization(t *testing.T) {
	p := &EONAInfP{Margin: 0.1, HighWater: 0.9, ConfidenceFloor: 0.5}
	obs := infpObs(0.0, 0.0, "B")
	obs.A2I = &A2IView{Traffic: []core.TrafficEstimate{
		{AppP: "vod", CDN: "cdnX", VolumeBps: 150e6}, // does not fit B
	}}

	obs.A2IConfidence = 0.9
	if dec := p.Decide(obs); dec.Egress["cdnX"] != "C" {
		t.Errorf("confident egress = %v, want demand-sized C", dec.Egress)
	}

	// Stale estimate: B is idle, utilization fallback holds it there even
	// though the (distrusted) estimate says it cannot fit.
	obs.A2IConfidence = 0.2
	if dec := p.Decide(obs); dec.Egress["cdnX"] != "B" {
		t.Errorf("stale-estimate egress = %v, want utilization hold at B", dec.Egress)
	}
}
