package control

import (
	"testing"

	"eona/internal/core"
	"eona/internal/isp"
	"eona/internal/netsim"
	"eona/internal/stability"
)

func twoCDNs() []CDNStat {
	return []CDNStat{
		{Name: "cdnX", Score: 0, ServingCapacityBps: 500e6},
		{Name: "cdnY", Score: 0, ServingCapacityBps: 80e6},
	}
}

func TestBaselineAppPStaysWhenHealthy(t *testing.T) {
	p := &BaselineAppP{Threshold: 60}
	dec := p.Decide(AppPObs{Current: "cdnX", Score: 80, CDNs: twoCDNs()})
	if dec.CDN != "cdnX" || dec.BitrateCapBps != 0 {
		t.Errorf("decision = %+v, want stay uncapped", dec)
	}
}

func TestBaselineAppPRotatesWhenDegraded(t *testing.T) {
	p := &BaselineAppP{Threshold: 60}
	dec := p.Decide(AppPObs{Current: "cdnX", Score: 30, CDNs: twoCDNs()})
	if dec.CDN != "cdnY" {
		t.Errorf("decision = %+v, want rotate to cdnY", dec)
	}
	// And wraps around.
	dec = p.Decide(AppPObs{Current: "cdnY", Score: 30, CDNs: twoCDNs()})
	if dec.CDN != "cdnX" {
		t.Errorf("decision = %+v, want wrap to cdnX", dec)
	}
}

func TestBaselineAppPSingleCDNNeverSwitches(t *testing.T) {
	p := &BaselineAppP{Threshold: 60}
	dec := p.Decide(AppPObs{Current: "cdnX", Score: 0, CDNs: twoCDNs()[:1]})
	if dec.CDN != "cdnX" {
		t.Errorf("single-CDN decision = %+v", dec)
	}
}

func i2aAccessCongested(cap float64) *I2AView {
	return &I2AView{
		Peering: []core.PeeringInfo{
			{PeeringID: "B", CDN: "cdnX", Congestion: netsim.CongestionNone, CapacityBps: 100e6},
			{PeeringID: "C", CDN: "cdnY", Congestion: netsim.CongestionNone, CapacityBps: 400e6},
		},
		Attribution: map[string]core.Attribution{
			"cdnX": {CDN: "cdnX", Segment: core.SegmentAccess, Level: netsim.CongestionSevere, SuggestedCapBps: cap},
		},
	}
}

func TestEONAAppPCapsOnAccessCongestion(t *testing.T) {
	// Figure 3: degraded QoE, bottleneck is the access network → cap
	// bitrate, do NOT switch CDN.
	p := &EONAAppP{Threshold: 60, CapHeadroom: 0.9}
	dec := p.Decide(AppPObs{
		Current: "cdnX", Score: 20, DemandBps: 150e6,
		CDNs: twoCDNs(), I2A: i2aAccessCongested(2e6),
	})
	if dec.CDN != "cdnX" {
		t.Errorf("switched CDN under access congestion: %+v", dec)
	}
	if dec.BitrateCapBps != 1.8e6 {
		t.Errorf("cap = %v, want 0.9×2e6", dec.BitrateCapBps)
	}
}

func TestEONAAppPKeepsCapWhileAccessCongested(t *testing.T) {
	// Healthy score but the InfP still reports access congestion: keep
	// the cap (lifting it would re-congest — the stable fixed point).
	p := &EONAAppP{Threshold: 60}
	dec := p.Decide(AppPObs{
		Current: "cdnX", Score: 85,
		CDNs: twoCDNs(), I2A: i2aAccessCongested(2e6),
	})
	if dec.BitrateCapBps != 2e6 {
		t.Errorf("cap = %v, want 2e6 held", dec.BitrateCapBps)
	}
}

func TestEONAAppPUncapsWhenClear(t *testing.T) {
	p := &EONAAppP{Threshold: 60}
	view := &I2AView{Attribution: map[string]core.Attribution{
		"cdnX": {CDN: "cdnX", Segment: core.SegmentNone},
	}}
	dec := p.Decide(AppPObs{Current: "cdnX", Score: 85, CDNs: twoCDNs(), I2A: view})
	if dec.BitrateCapBps != 0 {
		t.Errorf("cap = %v, want lifted", dec.BitrateCapBps)
	}
}

func TestEONAAppPStaysOnPeeringCongestionWithAlternative(t *testing.T) {
	// Figure 5 fix: peering congested, but the ISP has another peering
	// for this CDN with capacity → attribute to peering, stay.
	view := &I2AView{
		Peering: []core.PeeringInfo{
			{PeeringID: "B", CDN: "cdnX", Congestion: netsim.CongestionSevere, CapacityBps: 100e6, Current: true},
			{PeeringID: "C", CDN: "cdnX", Congestion: netsim.CongestionNone, CapacityBps: 400e6},
			{PeeringID: "C", CDN: "cdnY", Congestion: netsim.CongestionNone, CapacityBps: 400e6},
		},
		Attribution: map[string]core.Attribution{
			"cdnX": {CDN: "cdnX", Segment: core.SegmentPeering, Level: netsim.CongestionSevere},
		},
	}
	p := &EONAAppP{Threshold: 60}
	dec := p.Decide(AppPObs{Current: "cdnX", Score: 20, DemandBps: 150e6, CDNs: twoCDNs(), I2A: view})
	if dec.CDN != "cdnX" {
		t.Errorf("switched CDN despite viable alternative peering: %+v", dec)
	}
}

func TestEONAAppPSwitchesWhenCDNIsTheProblem(t *testing.T) {
	view := &I2AView{
		Peering: []core.PeeringInfo{
			{PeeringID: "B", CDN: "cdnX", Congestion: netsim.CongestionNone, CapacityBps: 100e6},
			{PeeringID: "C", CDN: "cdnY", Congestion: netsim.CongestionNone, CapacityBps: 400e6},
		},
		Attribution: map[string]core.Attribution{
			"cdnX": {CDN: "cdnX", Segment: core.SegmentCDN, Level: netsim.CongestionSevere},
		},
	}
	cdns := []CDNStat{
		{Name: "cdnX", Score: 20, ServingCapacityBps: 500e6},
		{Name: "cdnY", Score: 75, ServingCapacityBps: 500e6},
	}
	p := &EONAAppP{Threshold: 60}
	dec := p.Decide(AppPObs{Current: "cdnX", Score: 20, DemandBps: 50e6, CDNs: cdns, I2A: view})
	if dec.CDN != "cdnY" {
		t.Errorf("did not switch away from a broken CDN: %+v", dec)
	}
}

func TestEONAAppPAvoidsUndersizedCDN(t *testing.T) {
	// The Figure 5 trap: CDN Y cannot absorb the demand; EONA AppP knows
	// its contracted capacity and refuses the pointless switch.
	view := &I2AView{
		Peering: []core.PeeringInfo{
			{PeeringID: "C", CDN: "cdnY", Congestion: netsim.CongestionNone, CapacityBps: 400e6},
		},
		Attribution: map[string]core.Attribution{
			"cdnX": {CDN: "cdnX", Segment: core.SegmentCDN, Level: netsim.CongestionSevere},
		},
	}
	p := &EONAAppP{Threshold: 60}
	dec := p.Decide(AppPObs{Current: "cdnX", Score: 20, DemandBps: 150e6, CDNs: twoCDNs(), I2A: view})
	if dec.CDN != "cdnX" {
		t.Errorf("switched to undersized CDN: %+v", dec)
	}
}

func TestEONAAppPHysteresisBlocksMarginalSwitch(t *testing.T) {
	view := &I2AView{
		Peering: []core.PeeringInfo{
			{PeeringID: "B", CDN: "cdnX", Congestion: netsim.CongestionNone, CapacityBps: 400e6},
			{PeeringID: "C", CDN: "cdnY", Congestion: netsim.CongestionNone, CapacityBps: 400e6},
		},
		Attribution: map[string]core.Attribution{
			"cdnX": {CDN: "cdnX", Segment: core.SegmentCDN},
		},
	}
	cdns := []CDNStat{
		{Name: "cdnX", Score: 55, ServingCapacityBps: 500e6},
		{Name: "cdnY", Score: 58, ServingCapacityBps: 500e6}, // only marginally better
	}
	h := &stability.Hysteresis{Margin: 0.2}
	h.Decide(0, "cdnX", 55) // incumbent
	p := &EONAAppP{Threshold: 60, Hysteresis: h}
	dec := p.Decide(AppPObs{Current: "cdnX", Score: 55, CDNs: cdns, I2A: view})
	if dec.CDN != "cdnX" {
		t.Errorf("hysteresis failed to block marginal switch: %+v", dec)
	}
}

func TestEONAAppPWithoutViewDegradesToBaseline(t *testing.T) {
	p := &EONAAppP{Threshold: 60}
	dec := p.Decide(AppPObs{Current: "cdnX", Score: 20, CDNs: twoCDNs()})
	if dec.CDN != "cdnY" {
		t.Errorf("nil-view fallback = %+v, want baseline rotation", dec)
	}
}

func infpObs(utilB, utilC float64, egress string) InfPObs {
	return InfPObs{
		Peerings: []isp.LinkReport{
			{PeeringID: "B", Utilization: utilB, CapacityBps: 100e6, HeadroomBps: (1 - utilB) * 100e6},
			{PeeringID: "C", Utilization: utilC, CapacityBps: 400e6, HeadroomBps: (1 - utilC) * 400e6},
		},
		Egress: map[string]string{"cdnX": egress},
		Reach:  map[string][]string{"cdnX": {"B", "C"}},
	}
}

func TestBaselineInfPEvacuatesCongestedPreferred(t *testing.T) {
	p := &BaselineInfP{HighWater: 0.9, LowWater: 0.5}
	dec := p.Decide(infpObs(0.99, 0.2, "B"))
	if dec.Egress["cdnX"] != "C" {
		t.Errorf("egress = %v, want evacuation to C", dec.Egress)
	}
}

func TestBaselineInfPFlipsBackWhenPreferredDrains(t *testing.T) {
	// The oscillation mechanism: B drained (because the AppP left), so
	// cost preference pulls traffic back.
	p := &BaselineInfP{HighWater: 0.9, LowWater: 0.5}
	dec := p.Decide(infpObs(0.05, 0.4, "C"))
	if dec.Egress["cdnX"] != "B" {
		t.Errorf("egress = %v, want flip back to B", dec.Egress)
	}
}

func TestBaselineInfPHoldsInBand(t *testing.T) {
	p := &BaselineInfP{HighWater: 0.9, LowWater: 0.5}
	dec := p.Decide(infpObs(0.7, 0.2, "B"))
	if dec.Egress["cdnX"] != "B" {
		t.Errorf("egress = %v, want hold at B", dec.Egress)
	}
}

func TestEONAInfPSizesEgressToDemand(t *testing.T) {
	p := &EONAInfP{Margin: 0.1, HighWater: 0.9}
	obs := infpObs(0.0, 0.0, "B") // B currently idle...
	obs.A2I = &A2IView{Traffic: []core.TrafficEstimate{
		{AppP: "vod", CDN: "cdnX", VolumeBps: 150e6}, // ...but demand is 150 Mbps
	}}
	dec := p.Decide(obs)
	if dec.Egress["cdnX"] != "C" {
		t.Errorf("egress = %v, want C (B cannot fit 150e6×1.1)", dec.Egress)
	}
}

func TestEONAInfPSticksWhenCurrentFits(t *testing.T) {
	p := &EONAInfP{Margin: 0.1, HighWater: 0.9}
	obs := infpObs(0.0, 0.3, "C")
	obs.A2I = &A2IView{Traffic: []core.TrafficEstimate{
		{AppP: "vod", CDN: "cdnX", VolumeBps: 150e6},
	}}
	// Even though B (preferred) is idle, demand doesn't fit B: stay on C.
	dec := p.Decide(obs)
	if dec.Egress["cdnX"] != "C" {
		t.Errorf("egress = %v, want stick with C", dec.Egress)
	}
}

func TestEONAInfPPrefersCheapWhenItFits(t *testing.T) {
	p := &EONAInfP{Margin: 0.1, HighWater: 0.9}
	obs := infpObs(0.0, 0.3, "C")
	obs.A2I = &A2IView{Traffic: []core.TrafficEstimate{
		{AppP: "vod", CDN: "cdnX", VolumeBps: 50e6}, // fits B (100e6)
	}}
	dec := p.Decide(obs)
	if dec.Egress["cdnX"] != "C" {
		// Current is C and C fits: policy sticks (no churn). This is
		// intentional: stickiness beats cost-chasing for stability.
		t.Errorf("egress = %v, want stickiness at C", dec.Egress)
	}
	// But starting from B, demand fits → stays B (cheap and stable).
	obs2 := infpObs(0.5, 0.0, "B")
	obs2.A2I = obs.A2I
	dec2 := p.Decide(obs2)
	if dec2.Egress["cdnX"] != "B" {
		t.Errorf("egress = %v, want stay at B", dec2.Egress)
	}
}

func TestEONAInfPOversizedDemandPicksLargest(t *testing.T) {
	p := &EONAInfP{Margin: 0.1, HighWater: 0.9}
	obs := infpObs(0.0, 0.0, "B")
	obs.A2I = &A2IView{Traffic: []core.TrafficEstimate{
		{AppP: "vod", CDN: "cdnX", VolumeBps: 900e6}, // fits nowhere
	}}
	dec := p.Decide(obs)
	if dec.Egress["cdnX"] != "C" {
		t.Errorf("egress = %v, want largest option C", dec.Egress)
	}
}

func TestEONAInfPNoEstimateFallsBackToUtilization(t *testing.T) {
	p := &EONAInfP{Margin: 0.1, HighWater: 0.9}
	obs := infpObs(0.99, 0.1, "B")
	obs.A2I = &A2IView{} // EONA on, but no estimate for cdnX yet
	dec := p.Decide(obs)
	if dec.Egress["cdnX"] != "C" {
		t.Errorf("egress = %v, want utilization fallback to C", dec.Egress)
	}
}

func TestPoliciesAreDeterministic(t *testing.T) {
	mk := func() string {
		p := &EONAInfP{Margin: 0.1, HighWater: 0.9}
		obs := infpObs(0.4, 0.4, "B")
		obs.Reach = map[string][]string{"cdnX": {"B", "C"}, "cdnY": {"C"}, "cdnZ": {"C", "B"}}
		obs.Egress = map[string]string{"cdnX": "B", "cdnY": "C", "cdnZ": "B"}
		obs.A2I = &A2IView{Traffic: []core.TrafficEstimate{
			{CDN: "cdnX", VolumeBps: 50e6}, {CDN: "cdnZ", VolumeBps: 120e6},
		}}
		dec := p.Decide(obs)
		out := ""
		for _, k := range []string{"cdnX", "cdnY", "cdnZ"} {
			out += k + "=" + dec.Egress[k] + ";"
		}
		return out
	}
	if mk() != mk() {
		t.Error("policy output not deterministic")
	}
}
