package control

// This file addresses the §5 open challenge "search space exploration":
// "Both AppPs and InfPs are deploying new capabilities that give them more
// control knobs. With more knobs, however, the search space of options
// grows combinatorially. A natural question is if and how EONA interfaces
// can simplify this exploration process."
//
// Two searchers over discrete knob spaces are provided. Exhaustive
// enumeration is the global controller's luxury; CoordinateAscent is what
// EONA enables — each knob is optimized in turn against an evaluation that
// reflects the *shared* view (the other party's current decisions and
// state, known through A2I/I2A), converging in a few rounds instead of
// exploring the product space. E14 measures the evaluation-count gap.

// KnobSpace is one discrete control variable and its options.
type KnobSpace struct {
	Name    string
	Options []string
}

// Assignment maps knob names to chosen options.
type Assignment map[string]string

// Clone copies an assignment.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// Enumerate evaluates every combination and returns the best assignment,
// its score, and the number of evaluations. Ties break toward the
// lexicographically earlier assignment (deterministic).
func Enumerate(spaces []KnobSpace, eval func(Assignment) float64) (Assignment, float64, int) {
	if len(spaces) == 0 {
		return Assignment{}, eval(Assignment{}), 1
	}
	for _, s := range spaces {
		if len(s.Options) == 0 {
			panic("control: knob space with no options: " + s.Name)
		}
	}
	best := Assignment{}
	bestScore := 0.0
	evals := 0
	cur := Assignment{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(spaces) {
			s := eval(cur)
			evals++
			if evals == 1 || s > bestScore {
				best = cur.Clone()
				bestScore = s
			}
			return
		}
		for _, opt := range spaces[i].Options {
			cur[spaces[i].Name] = opt
			rec(i + 1)
		}
	}
	rec(0)
	return best, bestScore, evals
}

// CoordinateAscent optimizes one knob at a time, holding the others fixed,
// sweeping all knobs per round until a round changes nothing or maxRounds
// is hit. Knobs are swept in declaration order — callers should declare
// coarse, slow knobs (infrastructure egress) before fine, fast ones
// (per-region caps), mirroring the timescale hierarchy of the real control
// loops; optimizing fine knobs around a misconfigured coarse knob invites
// coordination traps (ties that block the coarse move). start provides the
// initial assignment; missing knobs start at their first option. Returns
// the final assignment, score, and evaluation count.
func CoordinateAscent(spaces []KnobSpace, eval func(Assignment) float64, start Assignment, maxRounds int) (Assignment, float64, int) {
	if maxRounds <= 0 {
		maxRounds = 8
	}
	cur := start.Clone()
	if cur == nil {
		cur = Assignment{}
	}
	for _, s := range spaces {
		if len(s.Options) == 0 {
			panic("control: knob space with no options: " + s.Name)
		}
		if _, ok := cur[s.Name]; !ok {
			cur[s.Name] = s.Options[0]
		}
	}
	ordered := append([]KnobSpace(nil), spaces...)

	evals := 0
	score := eval(cur)
	evals++
	for round := 0; round < maxRounds; round++ {
		improved := false
		for _, s := range ordered {
			bestOpt := cur[s.Name]
			bestScore := score
			for _, opt := range s.Options {
				if opt == cur[s.Name] {
					continue
				}
				trial := cur.Clone()
				trial[s.Name] = opt
				ts := eval(trial)
				evals++
				if ts > bestScore {
					bestOpt, bestScore = opt, ts
				}
			}
			if bestOpt != cur[s.Name] {
				cur[s.Name] = bestOpt
				score = bestScore
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return cur, score, evals
}
