package infer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinRegRecoversPlane(t *testing.T) {
	// y = 3 + 2a - 5b, exactly.
	var d Dataset
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		d.Add([]float64{a, b}, 3+2*a-5*b)
	}
	m, err := FitLinReg(d)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, -5}
	for i, w := range want {
		if math.Abs(m.Weights[i]-w) > 1e-6 {
			t.Errorf("weight %d = %v, want %v", i, m.Weights[i], w)
		}
	}
	if got := m.Predict([]float64{1, 1}); math.Abs(got-0) > 1e-6 {
		t.Errorf("Predict(1,1) = %v, want 0", got)
	}
}

func TestLinRegNoisyFit(t *testing.T) {
	var d Dataset
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		x := rng.Float64() * 100
		d.Add([]float64{x}, 10+0.5*x+rng.NormFloat64()*3)
	}
	m, err := FitLinReg(d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Weights[1]-0.5) > 0.05 {
		t.Errorf("slope = %v, want ≈0.5", m.Weights[1])
	}
}

func TestLinRegErrors(t *testing.T) {
	if _, err := FitLinReg(Dataset{}); err == nil {
		t.Error("empty dataset should error")
	}
}

func TestLinRegCollinearStabilized(t *testing.T) {
	// Two identical features: ridge term keeps this solvable.
	var d Dataset
	for i := 0; i < 50; i++ {
		x := float64(i)
		d.Add([]float64{x, x}, 2*x)
	}
	m, err := FitLinReg(d)
	if err != nil {
		t.Fatalf("collinear fit failed: %v", err)
	}
	if got := m.Predict([]float64{10, 10}); math.Abs(got-20) > 0.1 {
		t.Errorf("Predict = %v, want 20", got)
	}
}

func TestPredictWidthMismatchPanics(t *testing.T) {
	var d Dataset
	d.Add([]float64{1, 2}, 3)
	d.Add([]float64{2, 3}, 4)
	d.Add([]float64{5, 1}, 2)
	m, err := FitLinReg(d)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("width mismatch did not panic")
		}
	}()
	m.Predict([]float64{1})
}

func TestDatasetAddWidthMismatchPanics(t *testing.T) {
	var d Dataset
	d.Add([]float64{1, 2}, 3)
	defer func() {
		if recover() == nil {
			t.Error("mismatched Add did not panic")
		}
	}()
	d.Add([]float64{1}, 2)
}

func TestSplit(t *testing.T) {
	var d Dataset
	for i := 0; i < 10; i++ {
		d.Add([]float64{float64(i)}, float64(i))
	}
	train, test := d.Split(5)
	if train.Len() != 8 || test.Len() != 2 {
		t.Errorf("split = %d/%d, want 8/2", train.Len(), test.Len())
	}
	if test.Y[0] != 0 || test.Y[1] != 5 {
		t.Errorf("test targets = %v", test.Y)
	}
	defer func() {
		if recover() == nil {
			t.Error("stride 1 did not panic")
		}
	}()
	d.Split(1)
}

func TestKNNExactNeighbor(t *testing.T) {
	var d Dataset
	d.Add([]float64{0, 0}, 1)
	d.Add([]float64{10, 10}, 2)
	d.Add([]float64{20, 20}, 3)
	m, err := FitKNN(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{10.1, 9.9}); got != 2 {
		t.Errorf("Predict near (10,10) = %v, want 2", got)
	}
}

func TestKNNAverages(t *testing.T) {
	var d Dataset
	d.Add([]float64{0}, 10)
	d.Add([]float64{1}, 20)
	d.Add([]float64{100}, 1000)
	m, err := FitKNN(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{0.5}); got != 15 {
		t.Errorf("2-NN average = %v, want 15", got)
	}
}

func TestKNNValidation(t *testing.T) {
	var d Dataset
	d.Add([]float64{1}, 1)
	if _, err := FitKNN(Dataset{}, 3); err == nil {
		t.Error("empty dataset should error")
	}
	if _, err := FitKNN(d, 0); err == nil {
		t.Error("k=0 should error")
	}
	m, err := FitKNN(d, 10) // k clamped to dataset size
	if err != nil {
		t.Fatal(err)
	}
	if m.K != 1 {
		t.Errorf("K = %d, want clamped to 1", m.K)
	}
}

func TestEvaluatePerfectModel(t *testing.T) {
	var d Dataset
	for i := 0; i < 100; i++ {
		d.Add([]float64{float64(i)}, float64(i)*2)
	}
	m, _ := FitLinReg(d)
	ev := Evaluate(m, d)
	if ev.MAE > 1e-6 || ev.RMSE > 1e-6 {
		t.Errorf("perfect model errors = %+v", ev)
	}
	if math.Abs(ev.Spearman-1) > 1e-9 {
		t.Errorf("Spearman = %v, want 1", ev.Spearman)
	}
	if got := Evaluate(m, Dataset{}); got != (Eval{}) {
		t.Error("empty test set should produce zero Eval")
	}
}

func TestSpearman(t *testing.T) {
	up := []float64{1, 2, 3, 4, 5}
	down := []float64{5, 4, 3, 2, 1}
	if got := Spearman(up, up); math.Abs(got-1) > 1e-9 {
		t.Errorf("identical Spearman = %v", got)
	}
	if got := Spearman(up, down); math.Abs(got+1) > 1e-9 {
		t.Errorf("reversed Spearman = %v", got)
	}
	if Spearman(up, []float64{1}) != 0 {
		t.Error("length mismatch should return 0")
	}
	if Spearman([]float64{1, 1, 1}, up[:3]) != 0 {
		t.Error("constant vector should return 0")
	}
	// Ties get average ranks: still perfectly monotone here.
	if got := Spearman([]float64{1, 2, 2, 3}, []float64{10, 20, 20, 30}); math.Abs(got-1) > 1e-9 {
		t.Errorf("tied Spearman = %v, want 1", got)
	}
}

func TestLinRegBeatsKNNOnLinearData(t *testing.T) {
	// Sanity check of the harness itself: on truly linear data OLS should
	// outperform 5-NN out of sample.
	var d Dataset
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		d.Add([]float64{a, b}, 1+2*a+3*b+rng.NormFloat64()*0.5)
	}
	train, test := d.Split(5)
	lin, err := FitLinReg(train)
	if err != nil {
		t.Fatal(err)
	}
	knn, err := FitKNN(train, 5)
	if err != nil {
		t.Fatal(err)
	}
	evLin, evKNN := Evaluate(lin, test), Evaluate(knn, test)
	if evLin.MAE >= evKNN.MAE {
		t.Errorf("OLS MAE %v not better than kNN MAE %v on linear data", evLin.MAE, evKNN.MAE)
	}
}

// Property: Spearman is always in [-1, 1] and symmetric.
func TestQuickSpearmanBounds(t *testing.T) {
	f := func(a, b []int8) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n < 2 {
			return true
		}
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i], y[i] = float64(a[i]), float64(b[i])
		}
		r1 := Spearman(x, y)
		r2 := Spearman(y, x)
		return r1 >= -1-1e-9 && r1 <= 1+1e-9 && math.Abs(r1-r2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
