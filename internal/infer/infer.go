// Package infer implements the baseline the paper argues against in
// Figure 4: an InfP estimating application experience from network-level
// measurements ("indirect inference") instead of receiving it directly over
// EONA-A2I.
//
// Two standard regressors are provided — ordinary least squares and k-NN —
// trained on (network features → QoE) pairs harvested from simulation runs.
// The E3 experiment compares their test error against the zero-error direct
// measurement path, reproducing the paper's claim that inference "can be
// inaccurate and require expensive deep inspection capabilities".
package infer

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Dataset is a design matrix with targets.
type Dataset struct {
	X [][]float64
	Y []float64
}

// Add appends an example. All examples must share a feature width.
func (d *Dataset) Add(x []float64, y float64) {
	if len(d.X) > 0 && len(x) != len(d.X[0]) {
		panic(fmt.Sprintf("infer: feature width %d != %d", len(x), len(d.X[0])))
	}
	d.X = append(d.X, append([]float64(nil), x...))
	d.Y = append(d.Y, y)
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.X) }

// Split partitions the dataset deterministically: every k-th example goes to
// test, the rest to train. k must be ≥ 2.
func (d *Dataset) Split(k int) (train, test Dataset) {
	if k < 2 {
		panic("infer: split stride must be ≥ 2")
	}
	for i := range d.X {
		if i%k == 0 {
			test.Add(d.X[i], d.Y[i])
		} else {
			train.Add(d.X[i], d.Y[i])
		}
	}
	return train, test
}

// Regressor predicts a target from a feature vector.
type Regressor interface {
	Predict(x []float64) float64
}

// LinReg is ordinary least squares with an intercept.
type LinReg struct {
	// Weights holds the intercept at index 0 followed by one weight per
	// feature.
	Weights []float64
}

// ErrSingular is returned when the normal equations are singular (e.g.,
// perfectly collinear features or too few examples).
var ErrSingular = errors.New("infer: singular normal equations")

// FitLinReg solves the normal equations (XᵀX)w = XᵀY by Gaussian
// elimination with partial pivoting. A tiny ridge term stabilizes
// near-singular systems.
func FitLinReg(d Dataset) (*LinReg, error) {
	n := len(d.X)
	if n == 0 {
		return nil, errors.New("infer: empty dataset")
	}
	p := len(d.X[0]) + 1 // +intercept

	// Build A = XᵀX and b = XᵀY with the implicit leading 1 feature.
	a := make([][]float64, p)
	for i := range a {
		a[i] = make([]float64, p+1)
	}
	feat := func(row []float64, j int) float64 {
		if j == 0 {
			return 1
		}
		return row[j-1]
	}
	for r := 0; r < n; r++ {
		for i := 0; i < p; i++ {
			fi := feat(d.X[r], i)
			for j := 0; j < p; j++ {
				a[i][j] += fi * feat(d.X[r], j)
			}
			a[i][p] += fi * d.Y[r]
		}
	}
	const ridge = 1e-9
	for i := 0; i < p; i++ {
		a[i][i] += ridge
	}

	// Gaussian elimination with partial pivoting on [A|b].
	for col := 0; col < p; col++ {
		pivot := col
		for r := col + 1; r < p; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		for r := 0; r < p; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c <= p; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	w := make([]float64, p)
	for i := 0; i < p; i++ {
		w[i] = a[i][p] / a[i][i]
	}
	return &LinReg{Weights: w}, nil
}

// Predict implements Regressor.
func (m *LinReg) Predict(x []float64) float64 {
	if len(x)+1 != len(m.Weights) {
		panic(fmt.Sprintf("infer: predict width %d != model %d", len(x), len(m.Weights)-1))
	}
	y := m.Weights[0]
	for i, xi := range x {
		y += m.Weights[i+1] * xi
	}
	return y
}

// KNN is a k-nearest-neighbour regressor with z-score feature scaling.
type KNN struct {
	K    int
	x    [][]float64
	y    []float64
	mean []float64
	std  []float64
}

// FitKNN memorizes the training data and its per-feature scaling.
func FitKNN(d Dataset, k int) (*KNN, error) {
	if d.Len() == 0 {
		return nil, errors.New("infer: empty dataset")
	}
	if k <= 0 {
		return nil, fmt.Errorf("infer: k must be positive, got %d", k)
	}
	if k > d.Len() {
		k = d.Len()
	}
	p := len(d.X[0])
	m := &KNN{K: k, x: d.X, y: d.Y, mean: make([]float64, p), std: make([]float64, p)}
	for j := 0; j < p; j++ {
		for i := range d.X {
			m.mean[j] += d.X[i][j]
		}
		m.mean[j] /= float64(d.Len())
		for i := range d.X {
			dx := d.X[i][j] - m.mean[j]
			m.std[j] += dx * dx
		}
		m.std[j] = math.Sqrt(m.std[j] / float64(d.Len()))
		if m.std[j] == 0 {
			m.std[j] = 1
		}
	}
	return m, nil
}

// Predict implements Regressor: the mean target of the K nearest scaled
// neighbours.
func (m *KNN) Predict(x []float64) float64 {
	type cand struct {
		dist float64
		y    float64
	}
	cands := make([]cand, len(m.x))
	for i := range m.x {
		d := 0.0
		for j := range x {
			dx := (x[j] - m.x[i][j]) / m.std[j]
			d += dx * dx
		}
		cands[i] = cand{dist: d, y: m.y[i]}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].dist < cands[b].dist })
	sum := 0.0
	for i := 0; i < m.K; i++ {
		sum += cands[i].y
	}
	return sum / float64(m.K)
}

// Eval holds regression error metrics.
type Eval struct {
	MAE, RMSE float64
	// Spearman is the rank correlation between predictions and truth —
	// the metric that matters when an InfP uses inferred QoE to *rank*
	// decisions.
	Spearman float64
}

// Evaluate runs the regressor over the test set.
func Evaluate(m Regressor, test Dataset) Eval {
	n := test.Len()
	if n == 0 {
		return Eval{}
	}
	preds := make([]float64, n)
	var sumAbs, sumSq float64
	for i := range test.X {
		preds[i] = m.Predict(test.X[i])
		d := preds[i] - test.Y[i]
		sumAbs += math.Abs(d)
		sumSq += d * d
	}
	return Eval{
		MAE:      sumAbs / float64(n),
		RMSE:     math.Sqrt(sumSq / float64(n)),
		Spearman: Spearman(preds, test.Y),
	}
}

// Spearman computes the Spearman rank correlation of two equal-length
// vectors, with average ranks for ties. Returns 0 for degenerate inputs.
func Spearman(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ra, rb := ranks(a), ranks(b)
	return pearson(ra, rb)
}

func ranks(v []float64) []float64 {
	n := len(v)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return v[idx[i]] < v[idx[j]] })
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		cov += (a[i] - ma) * (b[i] - mb)
		va += (a[i] - ma) * (a[i] - ma)
		vb += (b[i] - mb) * (b[i] - mb)
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}
