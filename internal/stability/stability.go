// Package stability makes control-loop oscillation (Figure 5, §5 "control
// conflicts and instabilities") a first-class observable, and implements
// the dampening mechanisms the paper speculates about ("some sort of
// dampening or backoff algorithms can help here"): hysteresis bands and
// randomized exponential backoff on control actions.
package stability

import (
	"math/rand"
	"time"
)

// Tracker records the successive values of one decision variable (an ISP's
// egress choice, an AppP's CDN choice) and counts switches.
type Tracker struct {
	times  []time.Duration
	values []string
}

// Record notes the decision value at virtual time at. Only changes count as
// switches; recording the same value repeatedly is free.
func (t *Tracker) Record(at time.Duration, value string) {
	if n := len(t.values); n > 0 && t.values[n-1] == value {
		return
	}
	t.times = append(t.times, at)
	t.values = append(t.values, value)
}

// Current returns the most recent value ("" before any Record).
func (t *Tracker) Current() string {
	if len(t.values) == 0 {
		return ""
	}
	return t.values[len(t.values)-1]
}

// Switches returns the number of value changes (transitions), excluding the
// initial assignment.
func (t *Tracker) Switches() int {
	if len(t.values) == 0 {
		return 0
	}
	return len(t.values) - 1
}

// SwitchesIn counts transitions that occurred in (from, to].
func (t *Tracker) SwitchesIn(from, to time.Duration) int {
	n := 0
	for i := 1; i < len(t.times); i++ {
		if t.times[i] > from && t.times[i] <= to {
			n++
		}
	}
	return n
}

// SwitchRate returns switches per minute over the tracked span (0 if fewer
// than 2 records).
func (t *Tracker) SwitchRate() float64 {
	if len(t.times) < 2 {
		return 0
	}
	span := t.times[len(t.times)-1] - t.times[0]
	if span <= 0 {
		return 0
	}
	return float64(t.Switches()) / span.Minutes()
}

// History returns a copy of the recorded values.
func (t *Tracker) History() []string { return append([]string(nil), t.values...) }

// DetectCycle reports whether the tail of a decision sequence is a limit
// cycle: the smallest period p ≥ 2 such that the last 2p (or more, up to
// the full sequence) entries repeat with period p and are not constant.
// Returns (0, false) for acyclic or constant sequences.
func DetectCycle(states []string) (period int, ok bool) {
	n := len(states)
	for p := 2; p <= n/2; p++ {
		// Verify the last 2p entries (at least two full periods).
		tail := states[n-2*p:]
		periodic := true
		for i := p; i < 2*p; i++ {
			if tail[i] != tail[i-p] {
				periodic = false
				break
			}
		}
		if !periodic {
			continue
		}
		// Reject constant cycles (no actual oscillation).
		constant := true
		for i := 1; i < p; i++ {
			if tail[i] != tail[0] {
				constant = false
				break
			}
		}
		if !constant {
			return p, true
		}
	}
	return 0, false
}

// Hysteresis gates a switch decision: a candidate must beat the incumbent's
// score by a relative margin before the switch is taken. This is the
// dampening that stops marginal, oscillation-prone switches.
type Hysteresis struct {
	// Margin is the required relative improvement (0.1 = 10% better).
	Margin float64
	// current is the incumbent choice.
	current string
}

// Current returns the incumbent ("" before the first decision).
func (h *Hysteresis) Current() string { return h.current }

// Decide returns the choice to use, given the incumbent's score and the
// best challenger with its score. The first call always adopts the
// challenger (there is no incumbent).
func (h *Hysteresis) Decide(incumbentScore float64, challenger string, challengerScore float64) string {
	if h.current == "" {
		h.current = challenger
		return h.current
	}
	if challenger != h.current && challengerScore > incumbentScore*(1+h.Margin) {
		h.current = challenger
	}
	return h.current
}

// Reset clears the incumbent.
func (h *Hysteresis) Reset() { h.current = "" }

// Backoff rate-limits control actions with randomized exponential backoff:
// after each action the next one is allowed only Base×Factor^n (±jitter)
// later, where n is the count of recent consecutive actions. Quiet periods
// reset the streak.
type Backoff struct {
	// Base is the initial hold-down after an action.
	Base time.Duration
	// Max caps the hold-down.
	Max time.Duration
	// Factor multiplies the hold-down per consecutive action (≥ 1).
	Factor float64
	// Jitter is the relative randomization (0.1 = ±10%); 0 disables.
	Jitter float64

	rng         *rand.Rand
	nextAllowed time.Duration
	streak      int
	lastAction  time.Duration
}

// NewBackoff builds a backoff with a deterministic jitter source.
func NewBackoff(base, max time.Duration, factor, jitter float64, seed int64) *Backoff {
	if base <= 0 || max < base || factor < 1 {
		panic("stability: invalid backoff parameters")
	}
	return &Backoff{Base: base, Max: max, Factor: factor, Jitter: jitter, rng: rand.New(rand.NewSource(seed))}
}

// Allow reports whether an action may be taken at virtual time now.
func (b *Backoff) Allow(now time.Duration) bool {
	return now >= b.nextAllowed
}

// OnAction records that an action was taken at now and schedules the next
// permitted action.
func (b *Backoff) OnAction(now time.Duration) {
	// A long quiet period (4× the current hold-down) resets the streak.
	hold := b.holdDown()
	if b.streak > 0 && now-b.lastAction > 4*hold {
		b.streak = 0
	}
	b.streak++
	b.lastAction = now
	d := b.holdDown()
	if b.Jitter > 0 {
		j := 1 + b.Jitter*(2*b.rng.Float64()-1)
		d = time.Duration(float64(d) * j)
	}
	b.nextAllowed = now + d
}

func (b *Backoff) holdDown() time.Duration {
	d := float64(b.Base)
	for i := 1; i < b.streak; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			return b.Max
		}
	}
	if d > float64(b.Max) {
		return b.Max
	}
	return time.Duration(d)
}

// Streak returns the current consecutive-action count.
func (b *Backoff) Streak() int { return b.streak }
