package stability

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTrackerCountsOnlyChanges(t *testing.T) {
	var tr Tracker
	tr.Record(0, "B")
	tr.Record(time.Minute, "B") // no change
	tr.Record(2*time.Minute, "C")
	tr.Record(3*time.Minute, "B")
	if tr.Switches() != 2 {
		t.Errorf("switches = %d, want 2", tr.Switches())
	}
	if tr.Current() != "B" {
		t.Errorf("current = %q", tr.Current())
	}
	if got := tr.SwitchesIn(time.Minute, 2*time.Minute); got != 1 {
		t.Errorf("SwitchesIn = %d, want 1", got)
	}
	if got := tr.History(); len(got) != 3 {
		t.Errorf("history = %v", got)
	}
}

func TestTrackerEmpty(t *testing.T) {
	var tr Tracker
	if tr.Switches() != 0 || tr.Current() != "" || tr.SwitchRate() != 0 {
		t.Error("empty tracker should be all-zero")
	}
}

func TestSwitchRate(t *testing.T) {
	var tr Tracker
	tr.Record(0, "a")
	tr.Record(time.Minute, "b")
	tr.Record(2*time.Minute, "a")
	if got := tr.SwitchRate(); got != 1 {
		t.Errorf("rate = %v switches/min, want 1", got)
	}
}

func TestDetectCycleOscillation(t *testing.T) {
	// The Figure 5 pattern: B,C,B,C,...
	states := []string{"B", "C", "B", "C", "B", "C"}
	p, ok := DetectCycle(states)
	if !ok || p != 2 {
		t.Errorf("DetectCycle = %d,%v want 2,true", p, ok)
	}
}

func TestDetectCycleLongerPeriod(t *testing.T) {
	states := []string{"x", "A", "B", "C", "A", "B", "C"}
	p, ok := DetectCycle(states)
	if !ok || p != 3 {
		t.Errorf("DetectCycle = %d,%v want 3,true", p, ok)
	}
}

func TestDetectCycleConstantIsNotCycle(t *testing.T) {
	states := []string{"B", "B", "B", "B", "B", "B"}
	if _, ok := DetectCycle(states); ok {
		t.Error("constant sequence reported as cycle")
	}
}

func TestDetectCycleAcyclic(t *testing.T) {
	states := []string{"A", "B", "C", "D", "E", "F"}
	if _, ok := DetectCycle(states); ok {
		t.Error("acyclic sequence reported as cycle")
	}
	if _, ok := DetectCycle([]string{"A"}); ok {
		t.Error("singleton reported as cycle")
	}
	if _, ok := DetectCycle(nil); ok {
		t.Error("empty reported as cycle")
	}
}

func TestDetectCycleConvergedTail(t *testing.T) {
	// Oscillation that settles: the tail is constant, so no live cycle.
	states := []string{"B", "C", "B", "C", "C", "C", "C", "C"}
	if p, ok := DetectCycle(states); ok {
		t.Errorf("settled sequence reported as cycle with period %d", p)
	}
}

func TestHysteresisBlocksMarginalSwitch(t *testing.T) {
	h := &Hysteresis{Margin: 0.2}
	if got := h.Decide(0, "X", 50); got != "X" {
		t.Fatalf("first decision = %q, want X", got)
	}
	// 10% better: below the 20% margin, stay.
	if got := h.Decide(50, "Y", 55); got != "X" {
		t.Errorf("marginal challenger adopted: %q", got)
	}
	// 50% better: switch.
	if got := h.Decide(50, "Y", 75); got != "Y" {
		t.Errorf("clear winner rejected: %q", got)
	}
	h.Reset()
	if h.Current() != "" {
		t.Error("Reset did not clear incumbent")
	}
}

func TestHysteresisSameChoiceNoOp(t *testing.T) {
	h := &Hysteresis{Margin: 0.1}
	h.Decide(0, "X", 50)
	if got := h.Decide(50, "X", 500); got != "X" {
		t.Errorf("re-choosing incumbent changed state: %q", got)
	}
}

func TestBackoffEscalates(t *testing.T) {
	b := NewBackoff(time.Second, time.Minute, 2, 0, 1)
	if !b.Allow(0) {
		t.Fatal("first action should be allowed")
	}
	b.OnAction(0)
	if b.Allow(500 * time.Millisecond) {
		t.Error("action allowed during base hold-down")
	}
	if !b.Allow(time.Second) {
		t.Error("action denied after base hold-down")
	}
	b.OnAction(time.Second) // streak 2: hold-down 2s
	if b.Allow(2 * time.Second) {
		t.Error("action allowed during doubled hold-down")
	}
	if !b.Allow(3 * time.Second) {
		t.Error("action denied after doubled hold-down")
	}
	if b.Streak() != 2 {
		t.Errorf("streak = %d, want 2", b.Streak())
	}
}

func TestBackoffCapsAtMax(t *testing.T) {
	b := NewBackoff(time.Second, 4*time.Second, 10, 0, 1)
	now := time.Duration(0)
	for i := 0; i < 5; i++ {
		b.OnAction(now)
		now += 4 * time.Second
		if !b.Allow(now) {
			t.Fatalf("action %d denied after max hold-down", i)
		}
	}
}

func TestBackoffQuietPeriodResets(t *testing.T) {
	b := NewBackoff(time.Second, time.Minute, 2, 0, 1)
	b.OnAction(0)
	b.OnAction(time.Second)
	if b.Streak() != 2 {
		t.Fatalf("streak = %d", b.Streak())
	}
	// Long quiet: streak resets on the next action.
	b.OnAction(time.Hour)
	if b.Streak() != 1 {
		t.Errorf("streak after quiet period = %d, want 1", b.Streak())
	}
}

func TestBackoffJitterDeterministic(t *testing.T) {
	mk := func() []bool {
		b := NewBackoff(time.Second, time.Minute, 2, 0.3, 42)
		var out []bool
		now := time.Duration(0)
		for i := 0; i < 10; i++ {
			now += 700 * time.Millisecond
			if b.Allow(now) {
				b.OnAction(now)
				out = append(out, true)
			} else {
				out = append(out, false)
			}
		}
		return out
	}
	a, bb := mk(), mk()
	for i := range a {
		if a[i] != bb[i] {
			t.Fatal("jittered backoff not deterministic per seed")
		}
	}
}

func TestBackoffValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { NewBackoff(0, time.Second, 2, 0, 1) },
		func() { NewBackoff(time.Second, time.Millisecond, 2, 0, 1) },
		func() { NewBackoff(time.Second, time.Minute, 0.5, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: DetectCycle on a truly periodic non-constant suffix always
// reports a divisor-compatible period.
func TestQuickDetectCyclePeriodic(t *testing.T) {
	f := func(a, b uint8, reps uint8) bool {
		if a%26 == b%26 {
			return true
		}
		r := int(reps%6) + 2
		var states []string
		for i := 0; i < r; i++ {
			states = append(states, string(rune('A'+a%26)), string(rune('A'+b%26)))
		}
		p, ok := DetectCycle(states)
		return ok && p == 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
