package agg

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Reservoir keeps a uniform random sample of a stream using Vitter's
// algorithm R. Determinism comes from the caller-supplied seed.
type Reservoir struct {
	k      int
	seen   uint64
	sample []float64
	rng    *rand.Rand
}

// NewReservoir keeps at most k values.
func NewReservoir(k int, seed int64) *Reservoir {
	if k <= 0 {
		panic("agg: reservoir size must be positive")
	}
	return &Reservoir{k: k, rng: rand.New(rand.NewSource(seed))}
}

// Add offers a value to the sample.
func (r *Reservoir) Add(v float64) {
	r.seen++
	if len(r.sample) < r.k {
		r.sample = append(r.sample, v)
		return
	}
	if j := r.rng.Int63n(int64(r.seen)); j < int64(r.k) {
		r.sample[j] = v
	}
}

// Seen returns how many values were offered.
func (r *Reservoir) Seen() uint64 { return r.seen }

// Sample returns a copy of the current sample.
func (r *Reservoir) Sample() []float64 {
	out := make([]float64, len(r.sample))
	copy(out, r.sample)
	return out
}

// Quantile returns the q-quantile (q in [0,1]) of the sample, or 0 if the
// sample is empty.
func (r *Reservoir) Quantile(q float64) float64 {
	if len(r.sample) == 0 {
		return 0
	}
	s := r.Sample()
	sort.Float64s(s)
	idx := int(q * float64(len(s)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// P2 estimates a single quantile online with O(1) memory using the P²
// algorithm (Jain & Chlamtac, 1985). It is the constant-memory alternative
// to Reservoir for the high-rate A2I ingest path.
type P2 struct {
	q       float64
	n       int
	heights [5]float64
	pos     [5]float64
	desired [5]float64
	incr    [5]float64
	initial []float64
}

// NewP2 estimates quantile q in (0,1).
func NewP2(q float64) *P2 {
	if q <= 0 || q >= 1 {
		panic(fmt.Sprintf("agg: P2 quantile %v out of (0,1)", q))
	}
	p := &P2{q: q}
	p.desired = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
	p.incr = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p
}

// Add feeds an observation.
func (p *P2) Add(v float64) {
	if p.n < 5 {
		p.initial = append(p.initial, v)
		p.n++
		if p.n == 5 {
			sort.Float64s(p.initial)
			copy(p.heights[:], p.initial)
			p.pos = [5]float64{1, 2, 3, 4, 5}
			p.initial = nil
		}
		return
	}
	p.n++
	var k int
	switch {
	case v < p.heights[0]:
		p.heights[0] = v
		k = 0
	case v >= p.heights[4]:
		p.heights[4] = v
		k = 3
	default:
		for i := 1; i < 5; i++ {
			if v < p.heights[i] {
				k = i - 1
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := 0; i < 5; i++ {
		p.desired[i] += p.incr[i]
	}
	// Adjust interior markers.
	for i := 1; i < 4; i++ {
		d := p.desired[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := p.parabolic(i, sign)
			if p.heights[i-1] < h && h < p.heights[i+1] {
				p.heights[i] = h
			} else {
				p.heights[i] = p.linear(i, sign)
			}
			p.pos[i] += sign
		}
	}
}

func (p *P2) parabolic(i int, d float64) float64 {
	return p.heights[i] + d/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+d)*(p.heights[i+1]-p.heights[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-d)*(p.heights[i]-p.heights[i-1])/(p.pos[i]-p.pos[i-1]))
}

func (p *P2) linear(i int, d float64) float64 {
	return p.heights[i] + d*(p.heights[i+int(d)]-p.heights[i])/(p.pos[i+int(d)]-p.pos[i])
}

// Value returns the current quantile estimate. With fewer than five
// observations it returns the exact sample quantile.
func (p *P2) Value() float64 {
	if p.n == 0 {
		return 0
	}
	if p.n < 5 {
		s := append([]float64(nil), p.initial...)
		sort.Float64s(s)
		idx := int(p.q * float64(len(s)-1))
		return s[idx]
	}
	return p.heights[2]
}

// Count returns the number of observations fed.
func (p *P2) Count() int { return p.n }

// Welford accumulates count/mean/variance online.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add feeds an observation.
func (w *Welford) Add(v float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = v, v
	} else {
		if v < w.min {
			w.min = v
		}
		if v > w.max {
			w.max = v
		}
	}
	d := v - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (v - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() uint64 { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance (0 for fewer than 2 samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Min and Max return the observed extremes (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the maximum observation (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// Windowed is a ring of time buckets accumulating a sum — the sliding
// window behind "sessions in the last N minutes" A2I summaries.
type Windowed struct {
	bucketDur time.Duration
	buckets   []float64
	starts    []time.Duration
}

// NewWindowed covers a window of n buckets of the given duration.
func NewWindowed(n int, bucket time.Duration) *Windowed {
	if n <= 0 || bucket <= 0 {
		panic("agg: Windowed needs positive bucket count and duration")
	}
	w := &Windowed{bucketDur: bucket, buckets: make([]float64, n), starts: make([]time.Duration, n)}
	for i := range w.starts {
		w.starts[i] = -1
	}
	return w
}

func (w *Windowed) bucketFor(at time.Duration) int {
	idx := int(at/w.bucketDur) % len(w.buckets)
	start := at - at%w.bucketDur
	if w.starts[idx] != start {
		w.buckets[idx] = 0
		w.starts[idx] = start
	}
	return idx
}

// Add accumulates v at virtual time at.
func (w *Windowed) Add(at time.Duration, v float64) {
	w.buckets[w.bucketFor(at)] += v
}

// Sum returns the windowed total as of virtual time now: the sum of buckets
// whose start is within the window ending at now.
func (w *Windowed) Sum(now time.Duration) float64 {
	window := w.bucketDur * time.Duration(len(w.buckets))
	total := 0.0
	for i, s := range w.starts {
		if s < 0 {
			continue
		}
		if s >= now-window && s <= now {
			total += w.buckets[i]
		}
	}
	return total
}
