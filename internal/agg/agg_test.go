package agg

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestCountMinNeverUndercounts(t *testing.T) {
	cm := NewCountMin(64, 4)
	truth := map[string]uint64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("k%d", rng.Intn(200))
		cm.Add(key, 1)
		truth[key]++
	}
	for k, want := range truth {
		if got := cm.Estimate(k); got < want {
			t.Errorf("Estimate(%s) = %d < true %d", k, got, want)
		}
	}
	if cm.Total() != 5000 {
		t.Errorf("Total = %d, want 5000", cm.Total())
	}
}

func TestCountMinErrorBound(t *testing.T) {
	cm := NewCountMinWithError(0.01, 0.01)
	const n = 100000
	rng := rand.New(rand.NewSource(2))
	truth := map[string]uint64{}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", rng.Intn(1000))
		cm.Add(key, 1)
		truth[key]++
	}
	// With ε=0.01 the overcount should be ≤ εN = 1000 for (nearly) all
	// keys; tolerate a handful of violations per the δ bound.
	bad := 0
	for k, want := range truth {
		if cm.Estimate(k) > want+n/100 {
			bad++
		}
	}
	if bad > 20 {
		t.Errorf("%d keys exceeded the εN error bound", bad)
	}
	if cm.MemoryBytes() <= 0 {
		t.Error("MemoryBytes should be positive")
	}
}

func TestCountMinValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { NewCountMin(0, 1) },
		func() { NewCountMin(1, 0) },
		func() { NewCountMinWithError(0, 0.5) },
		func() { NewCountMinWithError(0.5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestReservoirUnderfill(t *testing.T) {
	r := NewReservoir(10, 1)
	for i := 0; i < 5; i++ {
		r.Add(float64(i))
	}
	s := r.Sample()
	if len(s) != 5 {
		t.Fatalf("sample size = %d, want 5", len(s))
	}
	if r.Seen() != 5 {
		t.Errorf("Seen = %d", r.Seen())
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Each element of a 1000-long stream should appear in a 100-slot
	// reservoir with probability ~0.1; check the mean of sampled values
	// is near the stream mean.
	r := NewReservoir(100, 3)
	for i := 0; i < 1000; i++ {
		r.Add(float64(i))
	}
	s := r.Sample()
	if len(s) != 100 {
		t.Fatalf("sample size = %d", len(s))
	}
	mean := 0.0
	for _, v := range s {
		mean += v
	}
	mean /= float64(len(s))
	if mean < 350 || mean > 650 {
		t.Errorf("sample mean = %v, want ≈500", mean)
	}
}

func TestReservoirQuantile(t *testing.T) {
	r := NewReservoir(1000, 4)
	for i := 1; i <= 1000; i++ {
		r.Add(float64(i))
	}
	if med := r.Quantile(0.5); math.Abs(med-500) > 2 {
		t.Errorf("median = %v, want ≈500", med)
	}
	if NewReservoir(5, 1).Quantile(0.5) != 0 {
		t.Error("empty reservoir quantile should be 0")
	}
	if got := r.Quantile(0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := r.Quantile(1); got != 1000 {
		t.Errorf("q1 = %v, want 1000", got)
	}
}

func TestReservoirValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k=0 did not panic")
		}
	}()
	NewReservoir(0, 1)
}

func TestP2Median(t *testing.T) {
	p := NewP2(0.5)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50000; i++ {
		p.Add(rng.NormFloat64()*10 + 100)
	}
	if got := p.Value(); math.Abs(got-100) > 1 {
		t.Errorf("P² median = %v, want ≈100", got)
	}
	if p.Count() != 50000 {
		t.Errorf("Count = %d", p.Count())
	}
}

func TestP2TailQuantile(t *testing.T) {
	p := NewP2(0.95)
	for i := 1; i <= 10000; i++ {
		p.Add(float64(i % 1000))
	}
	if got := p.Value(); got < 900 || got > 1000 {
		t.Errorf("p95 of uniform[0,1000) = %v, want ≈950", got)
	}
}

func TestP2SmallSamples(t *testing.T) {
	p := NewP2(0.5)
	if p.Value() != 0 {
		t.Error("empty P2 should report 0")
	}
	p.Add(7)
	if p.Value() != 7 {
		t.Errorf("single-sample value = %v, want 7", p.Value())
	}
	p.Add(1)
	p.Add(9)
	if got := p.Value(); got != 7 {
		t.Errorf("3-sample median = %v, want 7", got)
	}
}

func TestP2Validation(t *testing.T) {
	for _, q := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewP2(%v) did not panic", q)
				}
			}()
			NewP2(q)
		}()
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 {
		t.Error("empty Welford should be zero")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(v)
	}
	if w.Count() != 8 {
		t.Errorf("Count = %d", w.Count())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	if math.Abs(w.Variance()-4) > 1e-12 {
		t.Errorf("Variance = %v, want 4", w.Variance())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestWindowedSum(t *testing.T) {
	w := NewWindowed(6, 10*time.Second) // 60s window
	w.Add(5*time.Second, 1)
	w.Add(15*time.Second, 2)
	w.Add(25*time.Second, 3)
	if got := w.Sum(30 * time.Second); got != 6 {
		t.Errorf("Sum(30s) = %v, want 6", got)
	}
	// At t=70s the first bucket (start 0s) has aged out.
	if got := w.Sum(70 * time.Second); got != 5 {
		t.Errorf("Sum(70s) = %v, want 5", got)
	}
}

func TestWindowedBucketReuse(t *testing.T) {
	w := NewWindowed(2, time.Second)
	w.Add(0, 10)
	// t=2s reuses bucket 0; the old value must be discarded.
	w.Add(2*time.Second, 1)
	if got := w.Sum(2 * time.Second); got != 1 {
		t.Errorf("Sum after reuse = %v, want 1", got)
	}
}

func TestWindowedValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { NewWindowed(0, time.Second) },
		func() { NewWindowed(2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestRollupGroups(t *testing.T) {
	type key struct{ ISP, CDN string }
	r := NewRollup[key]()
	r.Observe(key{"isp1", "cdnX"}, "score", 80)
	r.Observe(key{"isp1", "cdnX"}, "score", 60)
	r.Observe(key{"isp1", "cdnY"}, "score", 40)
	r.Observe(key{"isp1", "cdnX"}, "bufratio", 0.1)
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	g := r.Group(key{"isp1", "cdnX"})
	if g == nil {
		t.Fatal("group missing")
	}
	if got := g.Metric("score").Mean(); got != 70 {
		t.Errorf("mean score = %v, want 70", got)
	}
	names := g.Metrics()
	if len(names) != 2 || names[0] != "bufratio" || names[1] != "score" {
		t.Errorf("metric names = %v", names)
	}
	if r.Group(key{"isp2", "cdnX"}) != nil {
		t.Error("missing group should be nil")
	}
	keys := r.Keys()
	if len(keys) != 2 || keys[0] != (key{"isp1", "cdnX"}) {
		t.Errorf("Keys = %v (want first-observation order)", keys)
	}
}

// Property: Welford mean/variance match the naive two-pass computation.
func TestQuickWelfordMatchesNaive(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		var w Welford
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
			w.Add(vals[i])
		}
		mean := 0.0
		for _, v := range vals {
			mean += v
		}
		mean /= float64(len(vals))
		variance := 0.0
		for _, v := range vals {
			variance += (v - mean) * (v - mean)
		}
		variance /= float64(len(vals))
		return math.Abs(w.Mean()-mean) < 1e-9 && math.Abs(w.Variance()-variance) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: P² estimates stay within the observed min/max.
func TestQuickP2Bounded(t *testing.T) {
	f := func(raw []uint16, qSel uint8) bool {
		if len(raw) == 0 {
			return true
		}
		q := []float64{0.1, 0.5, 0.9}[int(qSel)%3]
		p := NewP2(q)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range raw {
			x := float64(v)
			p.Add(x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		got := p.Value()
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestP2AccuracyAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, q := range []float64{0.25, 0.5, 0.9, 0.99} {
		p := NewP2(q)
		var all []float64
		for i := 0; i < 20000; i++ {
			v := rng.ExpFloat64() * 100
			p.Add(v)
			all = append(all, v)
		}
		sort.Float64s(all)
		exact := all[int(q*float64(len(all)-1))]
		rel := math.Abs(p.Value()-exact) / exact
		if rel > 0.1 {
			t.Errorf("q=%v: P²=%v exact=%v (rel err %.3f)", q, p.Value(), exact, rel)
		}
	}
}

func BenchmarkCountMinAdd(b *testing.B) {
	cm := NewCountMinWithError(0.001, 0.001)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("isp%d/cdn%d", i%32, i%7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm.Add(keys[i%len(keys)], 1)
	}
}

func BenchmarkP2Add(b *testing.B) {
	p := NewP2(0.95)
	for i := 0; i < b.N; i++ {
		p.Add(float64(i % 10000))
	}
}
