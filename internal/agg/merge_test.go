package agg

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestCountMinMergeMatchesSingle(t *testing.T) {
	parent := NewCountMin(128, 4)
	shardA, shardB := parent.Clone(), parent.Clone()
	single := parent.Clone()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("k%d", rng.Intn(300))
		single.Add(key, 1)
		if i%2 == 0 {
			shardA.Add(key, 1)
		} else {
			shardB.Add(key, 1)
		}
	}
	shardA.Merge(shardB)
	if shardA.Total() != single.Total() {
		t.Fatalf("merged total = %d, want %d", shardA.Total(), single.Total())
	}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("k%d", i)
		if shardA.Estimate(key) != single.Estimate(key) {
			t.Fatalf("Estimate(%s): merged %d != single %d",
				key, shardA.Estimate(key), single.Estimate(key))
		}
	}
}

func TestCountMinMergeShapeMismatchPanics(t *testing.T) {
	a := NewCountMin(64, 4)
	b := NewCountMin(128, 4)
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch did not panic")
		}
	}()
	a.Merge(b)
}

func TestCountMinMergeSeedMismatchPanics(t *testing.T) {
	a := NewCountMin(64, 4)
	b := NewCountMin(64, 4) // fresh seeds, not Clone-related
	defer func() {
		if recover() == nil {
			t.Error("seed mismatch did not panic")
		}
	}()
	a.Merge(b)
}

func TestWelfordMergeMatchesSingle(t *testing.T) {
	var single, a, b Welford
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		v := rng.NormFloat64()*7 + 3
		single.Add(v)
		if i%3 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	if a.Count() != single.Count() {
		t.Fatalf("count = %d, want %d", a.Count(), single.Count())
	}
	if math.Abs(a.Mean()-single.Mean()) > 1e-9 {
		t.Errorf("mean = %v, want %v", a.Mean(), single.Mean())
	}
	if math.Abs(a.Variance()-single.Variance()) > 1e-9 {
		t.Errorf("variance = %v, want %v", a.Variance(), single.Variance())
	}
	if a.Min() != single.Min() || a.Max() != single.Max() {
		t.Error("min/max not preserved by merge")
	}
}

func TestWelfordMergeEmptySides(t *testing.T) {
	var empty, full Welford
	full.Add(1)
	full.Add(3)
	cp := full
	cp.Merge(&empty) // no-op
	if cp.Count() != 2 || cp.Mean() != 2 {
		t.Error("merging empty changed the accumulator")
	}
	var dst Welford
	dst.Merge(&full)
	if dst.Count() != 2 || dst.Mean() != 2 || dst.Min() != 1 || dst.Max() != 3 {
		t.Errorf("merge into empty = %+v", dst)
	}
}

func TestRollupMerge(t *testing.T) {
	a, b := NewRollup[string](), NewRollup[string]()
	a.Observe("isp1/cdnX", "score", 80)
	a.Observe("isp1/cdnX", "score", 60)
	b.Observe("isp1/cdnX", "score", 40)
	b.Observe("isp2/cdnY", "score", 90)
	a.Merge(b)
	if a.Len() != 2 {
		t.Fatalf("merged groups = %d, want 2", a.Len())
	}
	if got := a.Group("isp1/cdnX").Metric("score").Mean(); got != 60 {
		t.Errorf("merged mean = %v, want 60", got)
	}
	if got := a.Group("isp1/cdnX").Metric("score").Count(); got != 3 {
		t.Errorf("merged count = %v, want 3", got)
	}
	if a.Group("isp2/cdnY") == nil {
		t.Error("foreign group not merged in")
	}
	keys := a.Keys()
	if keys[0] != "isp1/cdnX" || keys[1] != "isp2/cdnY" {
		t.Errorf("key order after merge = %v", keys)
	}
}

func TestRollupClone(t *testing.T) {
	r := NewRollup[string]()
	r.Observe("a", "score", 10)
	r.Observe("b", "score", 20)
	cp := r.Clone()
	cp.Observe("a", "score", 90)
	cp.Observe("c", "score", 5)
	if got := r.Group("a").Metric("score").Count(); got != 1 {
		t.Errorf("original mutated through clone: count = %d", got)
	}
	if r.Group("c") != nil || r.Len() != 2 {
		t.Error("clone's new group leaked into original")
	}
	if got := cp.Group("a").Metric("score").Mean(); got != 50 {
		t.Errorf("clone mean = %v, want 50", got)
	}
	keys := cp.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Errorf("clone key order = %v", keys)
	}
}

func TestWindowedMergeMatchesSingle(t *testing.T) {
	const n, bucket = 6, time.Second
	single := NewWindowed(n, bucket)
	a, b := NewWindowed(n, bucket), NewWindowed(n, bucket)
	// Spread adds over three window-lengths so ring indices are reused
	// with different epochs on each side of the partition.
	for i := 0; i < 40; i++ {
		at := time.Duration(i) * 450 * time.Millisecond
		v := float64(i + 1)
		single.Add(at, v)
		if i%3 == 0 {
			a.Add(at, v)
		} else {
			b.Add(at, v)
		}
	}
	a.Merge(b)
	for _, now := range []time.Duration{0, 3 * time.Second, 10 * time.Second, 18 * time.Second, time.Minute} {
		if got, want := a.Sum(now), single.Sum(now); got != want {
			t.Errorf("Sum(%v): merged %v != single %v", now, got, want)
		}
	}
}

func TestWindowedMergeNewerEpochWins(t *testing.T) {
	a, b := NewWindowed(2, time.Second), NewWindowed(2, time.Second)
	a.Add(0, 3)              // index 0, epoch 0s
	b.Add(10*time.Second, 7) // index 0, epoch 10s — strictly newer
	a.Merge(b)
	if got := a.Sum(10 * time.Second); got != 7 {
		t.Errorf("Sum after epoch-conflict merge = %v, want 7 (newer epoch)", got)
	}
	// The reverse merge direction must agree: older epochs are dropped.
	c := NewWindowed(2, time.Second)
	c.Add(10*time.Second, 7)
	d := NewWindowed(2, time.Second)
	d.Add(0, 3)
	c.Merge(d)
	if got := c.Sum(10 * time.Second); got != 7 {
		t.Errorf("reverse merge = %v, want 7", got)
	}
}

func TestWindowedMergeShapeMismatchPanics(t *testing.T) {
	a := NewWindowed(4, time.Second)
	b := NewWindowed(8, time.Second)
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch did not panic")
		}
	}()
	a.Merge(b)
}

func TestWindowedClone(t *testing.T) {
	w := NewWindowed(4, time.Second)
	w.Add(time.Second, 5)
	cp := w.Clone()
	cp.Add(2*time.Second, 9)
	if got := w.Sum(3 * time.Second); got != 5 {
		t.Errorf("original mutated through clone: %v", got)
	}
	if got := cp.Sum(3 * time.Second); got != 14 {
		t.Errorf("clone sum = %v, want 14", got)
	}
}

// Property: merging two Welford shards equals feeding one accumulator,
// for any partition of any value sequence.
func TestQuickWelfordMergeEquivalence(t *testing.T) {
	f := func(vals []int8, mask uint64) bool {
		var single, a, b Welford
		for i, raw := range vals {
			v := float64(raw)
			single.Add(v)
			if mask&(1<<(uint(i)%64)) != 0 {
				a.Add(v)
			} else {
				b.Add(v)
			}
		}
		a.Merge(&b)
		if a.Count() != single.Count() {
			return false
		}
		if single.Count() == 0 {
			return true
		}
		return math.Abs(a.Mean()-single.Mean()) < 1e-9 &&
			math.Abs(a.Variance()-single.Variance()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
