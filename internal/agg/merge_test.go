package agg

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCountMinMergeMatchesSingle(t *testing.T) {
	parent := NewCountMin(128, 4)
	shardA, shardB := parent.Clone(), parent.Clone()
	single := parent.Clone()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("k%d", rng.Intn(300))
		single.Add(key, 1)
		if i%2 == 0 {
			shardA.Add(key, 1)
		} else {
			shardB.Add(key, 1)
		}
	}
	shardA.Merge(shardB)
	if shardA.Total() != single.Total() {
		t.Fatalf("merged total = %d, want %d", shardA.Total(), single.Total())
	}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("k%d", i)
		if shardA.Estimate(key) != single.Estimate(key) {
			t.Fatalf("Estimate(%s): merged %d != single %d",
				key, shardA.Estimate(key), single.Estimate(key))
		}
	}
}

func TestCountMinMergeShapeMismatchPanics(t *testing.T) {
	a := NewCountMin(64, 4)
	b := NewCountMin(128, 4)
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch did not panic")
		}
	}()
	a.Merge(b)
}

func TestCountMinMergeSeedMismatchPanics(t *testing.T) {
	a := NewCountMin(64, 4)
	b := NewCountMin(64, 4) // fresh seeds, not Clone-related
	defer func() {
		if recover() == nil {
			t.Error("seed mismatch did not panic")
		}
	}()
	a.Merge(b)
}

func TestWelfordMergeMatchesSingle(t *testing.T) {
	var single, a, b Welford
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		v := rng.NormFloat64()*7 + 3
		single.Add(v)
		if i%3 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	if a.Count() != single.Count() {
		t.Fatalf("count = %d, want %d", a.Count(), single.Count())
	}
	if math.Abs(a.Mean()-single.Mean()) > 1e-9 {
		t.Errorf("mean = %v, want %v", a.Mean(), single.Mean())
	}
	if math.Abs(a.Variance()-single.Variance()) > 1e-9 {
		t.Errorf("variance = %v, want %v", a.Variance(), single.Variance())
	}
	if a.Min() != single.Min() || a.Max() != single.Max() {
		t.Error("min/max not preserved by merge")
	}
}

func TestWelfordMergeEmptySides(t *testing.T) {
	var empty, full Welford
	full.Add(1)
	full.Add(3)
	cp := full
	cp.Merge(&empty) // no-op
	if cp.Count() != 2 || cp.Mean() != 2 {
		t.Error("merging empty changed the accumulator")
	}
	var dst Welford
	dst.Merge(&full)
	if dst.Count() != 2 || dst.Mean() != 2 || dst.Min() != 1 || dst.Max() != 3 {
		t.Errorf("merge into empty = %+v", dst)
	}
}

func TestRollupMerge(t *testing.T) {
	a, b := NewRollup[string](), NewRollup[string]()
	a.Observe("isp1/cdnX", "score", 80)
	a.Observe("isp1/cdnX", "score", 60)
	b.Observe("isp1/cdnX", "score", 40)
	b.Observe("isp2/cdnY", "score", 90)
	a.Merge(b)
	if a.Len() != 2 {
		t.Fatalf("merged groups = %d, want 2", a.Len())
	}
	if got := a.Group("isp1/cdnX").Metric("score").Mean(); got != 60 {
		t.Errorf("merged mean = %v, want 60", got)
	}
	if got := a.Group("isp1/cdnX").Metric("score").Count(); got != 3 {
		t.Errorf("merged count = %v, want 3", got)
	}
	if a.Group("isp2/cdnY") == nil {
		t.Error("foreign group not merged in")
	}
	keys := a.Keys()
	if keys[0] != "isp1/cdnX" || keys[1] != "isp2/cdnY" {
		t.Errorf("key order after merge = %v", keys)
	}
}

// Property: merging two Welford shards equals feeding one accumulator,
// for any partition of any value sequence.
func TestQuickWelfordMergeEquivalence(t *testing.T) {
	f := func(vals []int8, mask uint64) bool {
		var single, a, b Welford
		for i, raw := range vals {
			v := float64(raw)
			single.Add(v)
			if mask&(1<<(uint(i)%64)) != 0 {
				a.Add(v)
			} else {
				b.Add(v)
			}
		}
		a.Merge(&b)
		if a.Count() != single.Count() {
			return false
		}
		if single.Count() == 0 {
			return true
		}
		return math.Abs(a.Mean()-single.Mean()) < 1e-9 &&
			math.Abs(a.Variance()-single.Variance()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
