package agg

import "sort"

// Group holds named metric accumulators for one rollup key.
type Group struct {
	metrics map[string]*Welford
}

// Metric returns the accumulator for a named metric, creating it on first
// use.
func (g *Group) Metric(name string) *Welford {
	w, ok := g.metrics[name]
	if !ok {
		w = &Welford{}
		g.metrics[name] = w
	}
	return w
}

// Metrics returns the metric names observed so far, sorted.
func (g *Group) Metrics() []string {
	names := make([]string, 0, len(g.metrics))
	for n := range g.metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Rollup is a dimensional group-by aggregator: it keeps per-key Welford
// accumulators for any number of named metrics. This is the shape of an A2I
// summary: key = (client ISP, CDN, cluster), metrics = QoE measures.
type Rollup[K comparable] struct {
	groups map[K]*Group
	// keyLess orders Keys(); nil means insertion order is not defined
	// and Keys() sorts by the order groups were created.
	order []K
}

// NewRollup returns an empty rollup.
func NewRollup[K comparable]() *Rollup[K] {
	return &Rollup[K]{groups: make(map[K]*Group)}
}

// Observe records value v for metric under key k.
func (r *Rollup[K]) Observe(k K, metric string, v float64) {
	g, ok := r.groups[k]
	if !ok {
		g = &Group{metrics: make(map[string]*Welford)}
		r.groups[k] = g
		r.order = append(r.order, k)
	}
	g.Metric(metric).Add(v)
}

// Group returns the group for k, or nil if never observed.
func (r *Rollup[K]) Group(k K) *Group { return r.groups[k] }

// Keys returns all keys in first-observation order (deterministic given a
// deterministic input stream).
func (r *Rollup[K]) Keys() []K { return append([]K(nil), r.order...) }

// Len returns the number of groups.
func (r *Rollup[K]) Len() int { return len(r.groups) }
