// Package agg provides the streaming-aggregation machinery an AppP needs to
// turn tens of millions of per-session QoE records per day (§5
// "Scalability") into the compact summaries exported over EONA-A2I:
// count-min sketches for heavy-hitter counting, reservoir samples, P²
// streaming quantiles, windowed counters, and dimensional group-by rollups.
//
// Everything here is O(1) or O(log n) per record and bounded-memory — the
// paper's "big data platform" requirement scaled to a single process. The
// E7 benchmark measures ingest throughput of this path end to end.
package agg

import (
	"fmt"
	"hash/maphash"
	"math"
)

// CountMin is a count-min sketch: a fixed-memory frequency estimator whose
// Estimate never undercounts and overcounts by at most εN with probability
// 1-δ for width=⌈e/ε⌉, depth=⌈ln(1/δ)⌉.
type CountMin struct {
	width, depth int
	counts       [][]uint64
	seeds        []maphash.Seed
	total        uint64
}

// NewCountMin builds a sketch with the given width and depth.
func NewCountMin(width, depth int) *CountMin {
	if width <= 0 || depth <= 0 {
		panic(fmt.Sprintf("agg: invalid count-min dimensions %dx%d", width, depth))
	}
	cm := &CountMin{width: width, depth: depth}
	for i := 0; i < depth; i++ {
		cm.counts = append(cm.counts, make([]uint64, width))
		cm.seeds = append(cm.seeds, maphash.MakeSeed())
	}
	return cm
}

// NewCountMinWithError builds a sketch sized for additive error ε (as a
// fraction of total count) with failure probability δ.
func NewCountMinWithError(epsilon, delta float64) *CountMin {
	if epsilon <= 0 || epsilon >= 1 || delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("agg: invalid count-min error params ε=%v δ=%v", epsilon, delta))
	}
	width := int(math.Ceil(math.E / epsilon))
	depth := int(math.Ceil(math.Log(1 / delta)))
	return NewCountMin(width, depth)
}

func (cm *CountMin) index(row int, key string) int {
	var h maphash.Hash
	h.SetSeed(cm.seeds[row])
	h.WriteString(key)
	return int(h.Sum64() % uint64(cm.width))
}

// Add increments key's count by n.
func (cm *CountMin) Add(key string, n uint64) {
	for row := 0; row < cm.depth; row++ {
		cm.counts[row][cm.index(row, key)] += n
	}
	cm.total += n
}

// Estimate returns an upper-biased estimate of key's count.
func (cm *CountMin) Estimate(key string) uint64 {
	est := uint64(math.MaxUint64)
	for row := 0; row < cm.depth; row++ {
		if c := cm.counts[row][cm.index(row, key)]; c < est {
			est = c
		}
	}
	return est
}

// Total returns the sum of all added counts.
func (cm *CountMin) Total() uint64 { return cm.total }

// MemoryBytes returns the approximate memory footprint of the counters.
func (cm *CountMin) MemoryBytes() int { return cm.width * cm.depth * 8 }
