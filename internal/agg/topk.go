package agg

import (
	"container/heap"
	"sort"
)

// TopK tracks the approximate k heaviest keys of a stream using a count-min
// sketch for frequencies plus a small min-heap of candidates — the
// "which client ISPs / CDNs dominate the traffic" question an AppP's A2I
// pipeline answers before deciding which InfPs are worth an EONA
// relationship.
type TopK struct {
	k      int
	sketch *CountMin
	heap   topkHeap
	index  map[string]int // key → heap position
}

// Entry is one heavy hitter.
type Entry struct {
	Key   string
	Count uint64
}

type topkHeap []Entry

func (h topkHeap) Len() int           { return len(h) }
func (h topkHeap) Less(i, j int) bool { return h[i].Count < h[j].Count }
func (h topkHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *topkHeap) Push(x any)        { *h = append(*h, x.(Entry)) }
func (h *topkHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// NewTopK tracks the k heaviest keys with a sketch of the given error
// parameters.
func NewTopK(k int, epsilon, delta float64) *TopK {
	if k <= 0 {
		panic("agg: TopK needs k > 0")
	}
	return &TopK{
		k:      k,
		sketch: NewCountMinWithError(epsilon, delta),
		index:  make(map[string]int),
	}
}

// Add counts one occurrence of key and updates the candidate set.
func (t *TopK) Add(key string, n uint64) {
	t.sketch.Add(key, n)
	est := t.sketch.Estimate(key)
	if pos, ok := t.index[key]; ok {
		t.heap[pos].Count = est
		heap.Fix(&t.heap, pos)
		t.reindex()
		return
	}
	if len(t.heap) < t.k {
		heap.Push(&t.heap, Entry{Key: key, Count: est})
		t.reindex()
		return
	}
	if est > t.heap[0].Count {
		delete(t.index, t.heap[0].Key)
		t.heap[0] = Entry{Key: key, Count: est}
		heap.Fix(&t.heap, 0)
		t.reindex()
	}
}

func (t *TopK) reindex() {
	for i, e := range t.heap {
		t.index[e.Key] = i
	}
}

// Top returns the current heavy hitters, heaviest first (ties by key).
func (t *TopK) Top() []Entry {
	out := append([]Entry(nil), t.heap...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// MemoryBytes approximates the footprint (sketch + candidates).
func (t *TopK) MemoryBytes() int {
	return t.sketch.MemoryBytes() + t.k*32
}
