package agg

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestTopKFindsHeavyHitters(t *testing.T) {
	tk := NewTopK(3, 0.001, 0.001)
	rng := rand.New(rand.NewSource(1))
	// Three heavy keys among a sea of light ones.
	for i := 0; i < 30000; i++ {
		switch {
		case i%3 == 0:
			tk.Add("isp-big", 1)
		case i%5 == 0:
			tk.Add("isp-mid", 1)
		case i%7 == 0:
			tk.Add("isp-small", 1)
		default:
			tk.Add(fmt.Sprintf("noise-%d", rng.Intn(5000)), 1)
		}
	}
	top := tk.Top()
	if len(top) != 3 {
		t.Fatalf("top = %d entries, want 3", len(top))
	}
	if top[0].Key != "isp-big" || top[1].Key != "isp-mid" || top[2].Key != "isp-small" {
		t.Errorf("top order = %v", top)
	}
	if top[0].Count < 9000 || top[0].Count > 11000 {
		t.Errorf("isp-big count = %d, want ≈10000", top[0].Count)
	}
}

func TestTopKUnderfilled(t *testing.T) {
	tk := NewTopK(10, 0.01, 0.01)
	tk.Add("a", 5)
	tk.Add("b", 3)
	top := tk.Top()
	if len(top) != 2 || top[0].Key != "a" || top[0].Count != 5 {
		t.Errorf("top = %v", top)
	}
}

func TestTopKWeightedAdds(t *testing.T) {
	tk := NewTopK(2, 0.01, 0.01)
	tk.Add("x", 100)
	tk.Add("y", 1)
	tk.Add("z", 50)
	top := tk.Top()
	if top[0].Key != "x" || top[1].Key != "z" {
		t.Errorf("top = %v", top)
	}
}

func TestTopKValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k=0 did not panic")
		}
	}()
	NewTopK(0, 0.01, 0.01)
}

func TestTopKMemoryBounded(t *testing.T) {
	tk := NewTopK(5, 0.01, 0.01)
	for i := 0; i < 100000; i++ {
		tk.Add(fmt.Sprintf("k%d", i), 1)
	}
	if len(tk.heap) > 5 {
		t.Errorf("candidate set grew to %d", len(tk.heap))
	}
	if tk.MemoryBytes() <= 0 {
		t.Error("MemoryBytes should be positive")
	}
}

func BenchmarkTopKAdd(b *testing.B) {
	tk := NewTopK(10, 0.001, 0.001)
	keys := make([]string, 512)
	for i := range keys {
		keys[i] = fmt.Sprintf("isp-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.Add(keys[i%len(keys)], 1)
	}
}
