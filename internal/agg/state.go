package agg

import (
	"fmt"
	"time"
)

// This file is the aggregator state surface: every accumulator a projection
// checkpoint needs to persist exposes its internals as plain data, and can
// be rebuilt from that data bit-identically. The states are exact — no
// re-observation, no approximation — so a collector restored from a
// checkpoint answers every query exactly as the original would have.

// WelfordState is a Welford accumulator as data.
type WelfordState struct {
	N        uint64
	Mean, M2 float64
	Min, Max float64
}

// State exports the accumulator.
func (w *Welford) State() WelfordState {
	return WelfordState{N: w.n, Mean: w.mean, M2: w.m2, Min: w.min, Max: w.max}
}

// Restore overwrites the accumulator with an exported state.
func (w *Welford) Restore(st WelfordState) {
	w.n, w.mean, w.m2, w.min, w.max = st.N, st.Mean, st.M2, st.Min, st.Max
}

// WindowedState is a Windowed ring as data: bucket duration plus the
// parallel bucket/start arrays (starts of -1 mark never-touched buckets,
// exactly as NewWindowed initializes them).
type WindowedState struct {
	BucketDur time.Duration
	Buckets   []float64
	Starts    []time.Duration
}

// State exports the ring. The result shares no memory with the ring.
func (w *Windowed) State() WindowedState {
	st := WindowedState{
		BucketDur: w.bucketDur,
		Buckets:   make([]float64, len(w.buckets)),
		Starts:    make([]time.Duration, len(w.starts)),
	}
	copy(st.Buckets, w.buckets)
	copy(st.Starts, w.starts)
	return st
}

// RestoreWindowed rebuilds a ring from an exported state. The result shares
// no memory with st.
func RestoreWindowed(st WindowedState) (*Windowed, error) {
	if st.BucketDur <= 0 || len(st.Buckets) == 0 || len(st.Buckets) != len(st.Starts) {
		return nil, fmt.Errorf("agg: malformed WindowedState (%d buckets, %d starts, bucket %v)",
			len(st.Buckets), len(st.Starts), st.BucketDur)
	}
	w := &Windowed{
		bucketDur: st.BucketDur,
		buckets:   make([]float64, len(st.Buckets)),
		starts:    make([]time.Duration, len(st.Starts)),
	}
	copy(w.buckets, st.Buckets)
	copy(w.starts, st.Starts)
	return w, nil
}

// Ensure returns the group for k, creating (and registering it in
// first-observation order) if absent — the restore-path counterpart of
// Observe, which would otherwise need a phantom observation.
func (r *Rollup[K]) Ensure(k K) *Group {
	g, ok := r.groups[k]
	if !ok {
		g = &Group{metrics: make(map[string]*Welford)}
		r.groups[k] = g
		r.order = append(r.order, k)
	}
	return g
}
