package agg

import (
	"fmt"
	"hash/maphash"
	"time"
)

// Merge operations let aggregation shard across workers and combine — the
// map/reduce shape of the "big data platforms (e.g., Spark)" the paper
// points at for A2I scale. A Collector front-end can run per ingest shard
// and merge summaries before export.

// Merge adds another sketch's counts into cm. Both sketches must have been
// created by Clone from a common ancestor (identical dimensions and hash
// seeds) — merging sketches with different seeds would silently corrupt
// estimates, so mismatched shapes panic.
func (cm *CountMin) Merge(other *CountMin) {
	if cm.width != other.width || cm.depth != other.depth {
		panic(fmt.Sprintf("agg: merging count-min of shape %dx%d with %dx%d",
			cm.width, cm.depth, other.width, other.depth))
	}
	for i := range cm.seeds {
		if cm.seeds[i] != other.seeds[i] {
			panic("agg: merging count-min sketches with different hash seeds (not Clone-related)")
		}
	}
	for row := range cm.counts {
		for col := range cm.counts[row] {
			cm.counts[row][col] += other.counts[row][col]
		}
	}
	cm.total += other.total
}

// Clone returns an empty sketch sharing cm's dimensions and hash seeds, so
// shards built from clones can later Merge.
func (cm *CountMin) Clone() *CountMin {
	out := &CountMin{width: cm.width, depth: cm.depth}
	out.seeds = append([]maphash.Seed(nil), cm.seeds...)
	for i := 0; i < cm.depth; i++ {
		out.counts = append(out.counts, make([]uint64, cm.width))
	}
	return out
}

// Merge folds another accumulator into w using the parallel-variance
// (Chan et al.) formula, as if all observations had been fed to w.
func (w *Welford) Merge(other *Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *other
		return
	}
	n1, n2 := float64(w.n), float64(other.n)
	delta := other.mean - w.mean
	total := n1 + n2
	w.mean += delta * n2 / total
	w.m2 += other.m2 + delta*delta*n1*n2/total
	w.n += other.n
	if other.min < w.min {
		w.min = other.min
	}
	if other.max > w.max {
		w.max = other.max
	}
}

// Merge folds another rollup into r, merging per-group per-metric
// accumulators. Groups unique to other keep their first-observation order
// after r's own groups.
func (r *Rollup[K]) Merge(other *Rollup[K]) {
	for _, k := range other.order {
		og := other.groups[k]
		g, ok := r.groups[k]
		if !ok {
			g = &Group{metrics: make(map[string]*Welford)}
			r.groups[k] = g
			r.order = append(r.order, k)
		}
		for _, name := range og.Metrics() {
			g.Metric(name).Merge(og.metrics[name])
		}
	}
}

// Clone returns a deep copy of the rollup: the copy and the original
// aggregate independently afterwards. A per-shard worker hands clones to a
// merge step so the reader never touches live accumulators.
func (r *Rollup[K]) Clone() *Rollup[K] {
	out := NewRollup[K]()
	out.order = append([]K(nil), r.order...)
	for k, g := range r.groups {
		cg := &Group{metrics: make(map[string]*Welford, len(g.metrics))}
		for name, w := range g.metrics {
			cw := *w
			cg.metrics[name] = &cw
		}
		out.groups[k] = cg
	}
	return out
}

// Merge folds another window's buckets into w, as if w had received every
// Add of both. Both windows must share the same shape (bucket count and
// duration) — merging mismatched windows would mis-bucket time, so they
// panic. When the two windows hold different epochs at the same ring index,
// the newer epoch wins, matching the single-window behaviour of bucketFor
// zeroing an aged-out slot on reuse.
func (w *Windowed) Merge(other *Windowed) {
	if w.bucketDur != other.bucketDur || len(w.buckets) != len(other.buckets) {
		panic(fmt.Sprintf("agg: merging windowed of shape %dx%v with %dx%v",
			len(w.buckets), w.bucketDur, len(other.buckets), other.bucketDur))
	}
	for i, s := range other.starts {
		if s < 0 {
			continue
		}
		switch {
		case w.starts[i] == s:
			w.buckets[i] += other.buckets[i]
		case w.starts[i] < s:
			w.starts[i] = s
			w.buckets[i] = other.buckets[i]
		}
	}
}

// Clone returns an independent copy of the window.
func (w *Windowed) Clone() *Windowed {
	return &Windowed{
		bucketDur: w.bucketDur,
		buckets:   append([]float64(nil), w.buckets...),
		starts:    append([]time.Duration(nil), w.starts...),
	}
}
