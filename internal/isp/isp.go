// Package isp models an access ISP: a client population behind a shared
// access link, a border router, and a set of peering points through which
// traffic egresses toward CDNs and IXPs.
//
// The ISP's knob is the egress (peering point) used for each CDN's traffic —
// exactly the knob in the paper's Figure 5 oscillation scenario. The ISP
// also *observes* link congestion, which is the raw data behind its
// EONA-I2A exports (peering congestion levels, capacity headroom, and
// bottleneck attribution). Decision *policies* live in internal/control;
// this package provides mechanism: routing flows via the chosen egress,
// rerouting them when the choice changes, and reporting link state.
package isp

import (
	"fmt"
	"sort"

	"eona/internal/netsim"
)

// PeeringPoint is one egress adjacency of the ISP.
type PeeringPoint struct {
	// ID names the point ("B-local", "C-ixp").
	ID string
	// Link is the egress link from the ISP border to the peer side.
	Link *netsim.Link
	// reachable is the set of CDN names whose clusters can be reached
	// beyond this point.
	reachable map[string]bool
}

// Reaches reports whether cdnName is reachable via this peering point.
func (p *PeeringPoint) Reaches(cdnName string) bool { return p.reachable[cdnName] }

// ISP is the access network. Not safe for concurrent use; driven from the
// simulator goroutine.
type ISP struct {
	Name string
	// Border is the node where peering links start.
	Border netsim.NodeID
	// ClientNode is where the client population attaches.
	ClientNode netsim.NodeID
	// Access is the shared access/aggregation link from clients to the
	// border (the congested link in the Figure 3 flash-crowd scenario).
	Access *netsim.Link

	net      *netsim.Network
	peerings []*PeeringPoint
	egress   map[string]*PeeringPoint // current egress per CDN
	// flows tracks the destination of each flow this ISP routed, so a
	// TE change can re-path live traffic.
	flows map[netsim.FlowID]*routedFlow
	// EgressChanges counts TE re-decisions, the oscillation observable.
	EgressChanges int
}

type routedFlow struct {
	flow *netsim.Flow
	cdn  string
	dst  netsim.NodeID
}

// Config describes an ISP to build.
type Config struct {
	Name       string
	ClientNode netsim.NodeID
	Border     netsim.NodeID
	Access     *netsim.Link
}

// New builds an ISP. The access link must run from ClientNode to Border.
func New(net *netsim.Network, cfg Config) *ISP {
	if cfg.Access == nil || cfg.Access.From != cfg.ClientNode || cfg.Access.To != cfg.Border {
		panic(fmt.Sprintf("isp: access link must run %s->%s", cfg.ClientNode, cfg.Border))
	}
	return &ISP{
		Name:       cfg.Name,
		Border:     cfg.Border,
		ClientNode: cfg.ClientNode,
		Access:     cfg.Access,
		net:        net,
		egress:     make(map[string]*PeeringPoint),
		flows:      make(map[netsim.FlowID]*routedFlow),
	}
}

// AddPeering declares a peering point on an existing link from the border,
// reachable for the given CDN names.
func (i *ISP) AddPeering(id string, link *netsim.Link, cdns ...string) *PeeringPoint {
	if link.From != i.Border {
		panic(fmt.Sprintf("isp: peering link must start at border %s", i.Border))
	}
	p := &PeeringPoint{ID: id, Link: link, reachable: make(map[string]bool)}
	for _, c := range cdns {
		p.reachable[c] = true
	}
	i.peerings = append(i.peerings, p)
	return p
}

// Peerings returns all peering points in declaration order.
func (i *ISP) Peerings() []*PeeringPoint { return i.peerings }

// PeeringsFor returns the peering points that reach cdnName, in declaration
// order.
func (i *ISP) PeeringsFor(cdnName string) []*PeeringPoint {
	var out []*PeeringPoint
	for _, p := range i.peerings {
		if p.Reaches(cdnName) {
			out = append(out, p)
		}
	}
	return out
}

// Peering returns the peering point with the given ID, or nil.
func (i *ISP) Peering(id string) *PeeringPoint {
	for _, p := range i.peerings {
		if p.ID == id {
			return p
		}
	}
	return nil
}

// EgressOf returns the current egress choice for a CDN; if none was set it
// defaults to the first peering point that reaches the CDN (and records
// that default). Returns nil if no peering reaches the CDN.
func (i *ISP) EgressOf(cdnName string) *PeeringPoint {
	if p, ok := i.egress[cdnName]; ok {
		return p
	}
	for _, p := range i.peerings {
		if p.Reaches(cdnName) {
			i.egress[cdnName] = p
			return p
		}
	}
	return nil
}

// PathTo computes the current path from the ISP's clients to dst for
// cdnName's traffic: access link, the chosen egress link, then the shortest
// path from the peer side to dst.
func (i *ISP) PathTo(cdnName string, dst netsim.NodeID) (netsim.Path, error) {
	eg := i.EgressOf(cdnName)
	if eg == nil {
		return nil, fmt.Errorf("isp %s: no peering reaches CDN %q", i.Name, cdnName)
	}
	tail, err := i.net.Topology().ShortestPath(eg.Link.To, dst)
	if err != nil {
		return nil, fmt.Errorf("isp %s: egress %s cannot reach %s: %w", i.Name, eg.ID, dst, err)
	}
	p := netsim.Path{i.Access, eg.Link}
	return append(p, tail...), nil
}

// Connect starts a flow from the clients to dst, routed via the current
// egress for cdnName, and registers it for rerouting on TE changes.
func (i *ISP) Connect(cdnName string, dst netsim.NodeID, demand float64, tag string) (*netsim.Flow, error) {
	p, err := i.PathTo(cdnName, dst)
	if err != nil {
		return nil, err
	}
	f := i.net.StartFlow(p, demand, tag)
	i.flows[f.ID] = &routedFlow{flow: f, cdn: cdnName, dst: dst}
	return f, nil
}

// Disconnect stops a flow previously created with Connect.
func (i *ISP) Disconnect(f *netsim.Flow) {
	if f == nil {
		return
	}
	delete(i.flows, f.ID)
	i.net.StopFlow(f)
}

// Retarget updates the registered CDN and destination of a live flow (the
// AppP switched CDN or server) and re-paths it via the egress for the new
// CDN.
func (i *ISP) Retarget(f *netsim.Flow, cdnName string, dst netsim.NodeID) error {
	rf, ok := i.flows[f.ID]
	if !ok {
		return fmt.Errorf("isp %s: flow %d not registered", i.Name, f.ID)
	}
	p, err := i.PathTo(cdnName, dst)
	if err != nil {
		return err
	}
	rf.cdn = cdnName
	rf.dst = dst
	i.net.SetPath(f, p)
	return nil
}

// SetEgress points cdnName's traffic at peering point id and re-paths all
// registered flows for that CDN. Setting the already-current egress is a
// no-op (and does not count as a change).
func (i *ISP) SetEgress(cdnName, peeringID string) error {
	p := i.Peering(peeringID)
	if p == nil {
		return fmt.Errorf("isp %s: unknown peering %q", i.Name, peeringID)
	}
	if !p.Reaches(cdnName) {
		return fmt.Errorf("isp %s: peering %s does not reach CDN %q", i.Name, peeringID, cdnName)
	}
	if i.egress[cdnName] == p {
		return nil
	}
	i.egress[cdnName] = p
	i.EgressChanges++
	// Re-path live flows for this CDN deterministically (by flow ID),
	// batched: one TE change re-paths the whole CDN's flow set in a
	// single reallocation instead of one per flow.
	ids := make([]netsim.FlowID, 0)
	for id, rf := range i.flows {
		if rf.cdn == cdnName {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	var err error
	i.net.Batch(func() {
		for _, id := range ids {
			rf := i.flows[id]
			np, perr := i.PathTo(cdnName, rf.dst)
			if perr != nil {
				err = perr
				return
			}
			i.net.SetPath(rf.flow, np)
		}
	})
	return err
}

// TrafficVia returns the total allocated rate of this ISP's registered
// flows crossing the given peering point, in bits/s.
func (i *ISP) TrafficVia(peeringID string) float64 {
	p := i.Peering(peeringID)
	if p == nil {
		return 0
	}
	total := 0.0
	for _, rf := range i.flows {
		for _, l := range rf.flow.Path {
			if l == p.Link {
				total += rf.flow.Rate
				break
			}
		}
	}
	return total
}

// LinkReport is the ISP's observation of one of its links — the raw data
// for EONA-I2A exports.
type LinkReport struct {
	// PeeringID is empty for the access link.
	PeeringID  string
	Congestion netsim.CongestionLevel
	// Utilization in [0,1].
	Utilization float64
	// HeadroomBps is unallocated capacity in bits/s.
	HeadroomBps float64
	// CapacityBps is the link capacity in bits/s.
	CapacityBps float64
}

// AccessReport returns the current state of the access link.
func (i *ISP) AccessReport() LinkReport {
	id := i.Access.ID
	return LinkReport{
		Congestion:  i.net.Congestion(id),
		Utilization: i.net.Utilization(id),
		HeadroomBps: i.net.Headroom(id),
		CapacityBps: i.Access.Capacity,
	}
}

// PeeringReports returns the state of every peering link, in declaration
// order.
func (i *ISP) PeeringReports() []LinkReport {
	out := make([]LinkReport, 0, len(i.peerings))
	for _, p := range i.peerings {
		id := p.Link.ID
		out = append(out, LinkReport{
			PeeringID:   p.ID,
			Congestion:  i.net.Congestion(id),
			Utilization: i.net.Utilization(id),
			HeadroomBps: i.net.Headroom(id),
			CapacityBps: p.Link.Capacity,
		})
	}
	return out
}

// Network returns the underlying simulated network.
func (i *ISP) Network() *netsim.Network { return i.net }
