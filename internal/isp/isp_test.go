package isp

import (
	"math"
	"testing"
	"time"

	"eona/internal/netsim"
)

// fixture builds the Figure 5 topology:
//
//	clients --access--> border --B--> cdnX
//	                    border --C--> ixp --> cdnX
//	                                  ixp --> cdnY
func fixture(t testing.TB) (*netsim.Network, *ISP, *netsim.Link, *netsim.Link) {
	t.Helper()
	topo := netsim.NewTopology()
	access := topo.AddLink("clients", "border", 1000e6, 2*time.Millisecond, "access")
	linkB := topo.AddLink("border", "cdnX", 100e6, 1*time.Millisecond, "peering-B")
	linkC := topo.AddLink("border", "ixp", 500e6, 3*time.Millisecond, "peering-C")
	topo.AddLink("ixp", "cdnX", 400e6, 1*time.Millisecond, "ixp-cdnX")
	topo.AddLink("ixp", "cdnY", 400e6, 1*time.Millisecond, "ixp-cdnY")
	net := netsim.NewNetwork(topo)
	i := New(net, Config{Name: "isp1", ClientNode: "clients", Border: "border", Access: access})
	i.AddPeering("B", linkB, "cdnX")
	i.AddPeering("C", linkC, "cdnX", "cdnY")
	return net, i, linkB, linkC
}

func TestNewValidatesAccessLink(t *testing.T) {
	topo := netsim.NewTopology()
	wrong := topo.AddLink("a", "b", 1, 0, "")
	net := netsim.NewNetwork(topo)
	defer func() {
		if recover() == nil {
			t.Error("mismatched access link did not panic")
		}
	}()
	New(net, Config{ClientNode: "x", Border: "y", Access: wrong})
}

func TestAddPeeringValidatesBorder(t *testing.T) {
	net, i, _, _ := fixture(t)
	bad := net.Topology().AddLink("ixp", "cdnZ", 1, 0, "")
	defer func() {
		if recover() == nil {
			t.Error("peering not at border did not panic")
		}
	}()
	i.AddPeering("bad", bad, "cdnZ")
}

func TestDefaultEgressIsFirstReaching(t *testing.T) {
	_, i, _, _ := fixture(t)
	if eg := i.EgressOf("cdnX"); eg == nil || eg.ID != "B" {
		t.Errorf("default egress for cdnX = %v, want B", eg)
	}
	if eg := i.EgressOf("cdnY"); eg == nil || eg.ID != "C" {
		t.Errorf("default egress for cdnY = %v, want C", eg)
	}
	if eg := i.EgressOf("cdnZ"); eg != nil {
		t.Errorf("egress for unknown CDN = %v, want nil", eg)
	}
}

func TestPathToFollowsEgress(t *testing.T) {
	_, i, _, _ := fixture(t)
	p, err := i.PathTo("cdnX", "cdnX")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "clients->border->cdnX" {
		t.Errorf("path via B = %v", p)
	}
	if err := i.SetEgress("cdnX", "C"); err != nil {
		t.Fatal(err)
	}
	p, err = i.PathTo("cdnX", "cdnX")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "clients->border->ixp->cdnX" {
		t.Errorf("path via C = %v", p)
	}
}

func TestPathToErrors(t *testing.T) {
	_, i, _, _ := fixture(t)
	if _, err := i.PathTo("cdnZ", "cdnZ"); err == nil {
		t.Error("unreachable CDN should error")
	}
	if _, err := i.PathTo("cdnX", "nonexistent"); err == nil {
		t.Error("unknown destination should error")
	}
}

func TestConnectAndTrafficVia(t *testing.T) {
	_, i, _, _ := fixture(t)
	f, err := i.Connect("cdnX", "cdnX", 50e6, "s1")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Rate-50e6) > 1 {
		t.Errorf("rate = %v, want 50e6", f.Rate)
	}
	if got := i.TrafficVia("B"); math.Abs(got-50e6) > 1 {
		t.Errorf("traffic via B = %v, want 50e6", got)
	}
	if got := i.TrafficVia("C"); got != 0 {
		t.Errorf("traffic via C = %v, want 0", got)
	}
	if got := i.TrafficVia("missing"); got != 0 {
		t.Errorf("traffic via unknown point = %v", got)
	}
	i.Disconnect(f)
	if got := i.TrafficVia("B"); got != 0 {
		t.Errorf("traffic after disconnect = %v, want 0", got)
	}
	i.Disconnect(nil)
}

func TestSetEgressReroutesLiveFlows(t *testing.T) {
	net, i, linkB, linkC := fixture(t)
	f1, _ := i.Connect("cdnX", "cdnX", 40e6, "")
	f2, _ := i.Connect("cdnX", "cdnX", 30e6, "")
	if net.LinkRate(linkB.ID) != 70e6 {
		t.Fatalf("pre-TE rate on B = %v", net.LinkRate(linkB.ID))
	}
	if err := i.SetEgress("cdnX", "C"); err != nil {
		t.Fatal(err)
	}
	if net.LinkRate(linkB.ID) != 0 {
		t.Errorf("B still carries %v after TE", net.LinkRate(linkB.ID))
	}
	if got := net.LinkRate(linkC.ID); math.Abs(got-70e6) > 1 {
		t.Errorf("C carries %v, want 70e6", got)
	}
	if i.EgressChanges != 1 {
		t.Errorf("EgressChanges = %d, want 1", i.EgressChanges)
	}
	_ = f1
	_ = f2
}

func TestSetEgressNoopAndErrors(t *testing.T) {
	_, i, _, _ := fixture(t)
	i.EgressOf("cdnX") // default B
	if err := i.SetEgress("cdnX", "B"); err != nil {
		t.Fatal(err)
	}
	if i.EgressChanges != 0 {
		t.Error("no-op egress set counted as a change")
	}
	if err := i.SetEgress("cdnX", "missing"); err == nil {
		t.Error("unknown peering accepted")
	}
	if err := i.SetEgress("cdnY", "B"); err == nil {
		t.Error("peering that does not reach CDN accepted")
	}
}

func TestRetarget(t *testing.T) {
	net, i, linkB, _ := fixture(t)
	f, _ := i.Connect("cdnX", "cdnX", 40e6, "")
	if err := i.Retarget(f, "cdnY", "cdnY"); err != nil {
		t.Fatal(err)
	}
	if net.LinkRate(linkB.ID) != 0 {
		t.Error("flow still on B after retarget to cdnY")
	}
	// Egress change for cdnX no longer moves this flow.
	if err := i.SetEgress("cdnX", "C"); err != nil {
		t.Fatal(err)
	}
	p, _ := i.PathTo("cdnY", "cdnY")
	if f.Path.String() != p.String() {
		t.Errorf("retargeted flow path = %v, want %v", f.Path, p)
	}
	other := net.StartFlow(netsim.Path{}, 1, "")
	if err := i.Retarget(other, "cdnX", "cdnX"); err == nil {
		t.Error("retargeting unregistered flow should error")
	}
}

func TestReports(t *testing.T) {
	_, i, _, _ := fixture(t)
	// Saturate peering B (capacity 100e6).
	i.Connect("cdnX", "cdnX", 99e6, "")
	ar := i.AccessReport()
	if ar.Congestion != netsim.CongestionNone {
		t.Errorf("access congestion = %v, want none", ar.Congestion)
	}
	if ar.CapacityBps != 1000e6 {
		t.Errorf("access capacity = %v", ar.CapacityBps)
	}
	prs := i.PeeringReports()
	if len(prs) != 2 {
		t.Fatalf("reports = %d, want 2", len(prs))
	}
	if prs[0].PeeringID != "B" || prs[0].Congestion != netsim.CongestionSevere {
		t.Errorf("B report = %+v, want severe congestion", prs[0])
	}
	if prs[1].PeeringID != "C" || prs[1].Congestion != netsim.CongestionNone {
		t.Errorf("C report = %+v, want no congestion", prs[1])
	}
	if math.Abs(prs[0].HeadroomBps-1e6) > 1 {
		t.Errorf("B headroom = %v, want 1e6", prs[0].HeadroomBps)
	}
}

func TestPeeringsFor(t *testing.T) {
	_, i, _, _ := fixture(t)
	if got := i.PeeringsFor("cdnX"); len(got) != 2 {
		t.Errorf("peerings for cdnX = %d, want 2", len(got))
	}
	if got := i.PeeringsFor("cdnY"); len(got) != 1 || got[0].ID != "C" {
		t.Errorf("peerings for cdnY = %v", got)
	}
	if got := i.PeeringsFor("cdnZ"); len(got) != 0 {
		t.Errorf("peerings for cdnZ = %v, want none", got)
	}
}

// A TE change re-paths every registered flow for the CDN in one batched
// reallocation, not one per flow.
func TestSetEgressBatchesReallocation(t *testing.T) {
	net, i, _, linkC := fixture(t)
	var flows []*netsim.Flow
	net.Batch(func() {
		for k := 0; k < 20; k++ {
			f, err := i.Connect("cdnX", "cdnX", math.Inf(1), "s")
			if err != nil {
				t.Fatalf("Connect: %v", err)
			}
			flows = append(flows, f)
		}
	})
	before := net.Reallocations
	if err := i.SetEgress("cdnX", "C"); err != nil {
		t.Fatalf("SetEgress: %v", err)
	}
	if got := net.Reallocations - before; got != 1 {
		t.Errorf("SetEgress over 20 flows cost %d reallocations, want 1", got)
	}
	for _, f := range flows {
		onC := false
		for _, l := range f.Path {
			if l == linkC {
				onC = true
			}
		}
		if !onC {
			t.Fatalf("flow %d not re-pathed via C", f.ID)
		}
	}
}
