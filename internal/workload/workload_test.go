package workload

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestConstantRate(t *testing.T) {
	r := Constant(5)
	if r(0) != 5 || r(time.Hour) != 5 {
		t.Error("constant rate not constant")
	}
}

func TestFlashCrowdProfile(t *testing.T) {
	fc := FlashCrowd{Base: 1, Peak: 11, Start: 10 * time.Second,
		RampUp: 10 * time.Second, Hold: 20 * time.Second, Down: 10 * time.Second}
	r := fc.Rate()
	cases := []struct {
		t    time.Duration
		want float64
	}{
		{0, 1}, {9 * time.Second, 1},
		{15 * time.Second, 6},  // halfway up the ramp
		{20 * time.Second, 11}, // peak start
		{30 * time.Second, 11}, // holding
		{45 * time.Second, 6},  // halfway down
		{60 * time.Second, 1},  // back to base
		{time.Hour, 1},
	}
	for _, c := range cases {
		if got := r(c.t); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("rate(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestDiurnalProfile(t *testing.T) {
	d := Diurnal{Mean: 10, Amplitude: 5, Period: 24 * time.Hour, Phase: 0}
	r := d.Rate()
	if got := r(0); math.Abs(got-15) > 1e-9 {
		t.Errorf("peak rate = %v, want 15", got)
	}
	if got := r(12 * time.Hour); math.Abs(got-5) > 1e-9 {
		t.Errorf("trough rate = %v, want 5", got)
	}
	// Clamps at zero when amplitude exceeds mean.
	neg := Diurnal{Mean: 1, Amplitude: 5, Period: 24 * time.Hour}
	if got := neg.Rate()(12 * time.Hour); got != 0 {
		t.Errorf("clamped rate = %v, want 0", got)
	}
}

func TestDiurnalZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero period did not panic")
		}
	}()
	Diurnal{Mean: 1, Period: 0}.Rate()
}

func TestArrivalsRateMatchesExpectation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	got := Arrivals(rng, Constant(10), 10, 1000*time.Second)
	// Expect ~10000 arrivals; Poisson sd ≈ 100.
	if n := len(got); n < 9500 || n > 10500 {
		t.Errorf("arrivals = %d, want ≈10000", n)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Error("arrivals not sorted")
	}
}

func TestArrivalsThinning(t *testing.T) {
	// Rate 2 during first half, 8 during second half.
	rate := func(t time.Duration) float64 {
		if t < 500*time.Second {
			return 2
		}
		return 8
	}
	rng := rand.New(rand.NewSource(2))
	got := Arrivals(rng, rate, 8, 1000*time.Second)
	var first, second int
	for _, at := range got {
		if at < 500*time.Second {
			first++
		} else {
			second++
		}
	}
	if first < 800 || first > 1200 {
		t.Errorf("first-half arrivals = %d, want ≈1000", first)
	}
	if second < 3600 || second > 4400 {
		t.Errorf("second-half arrivals = %d, want ≈4000", second)
	}
}

func TestArrivalsDeterministic(t *testing.T) {
	a := Arrivals(rand.New(rand.NewSource(7)), Constant(5), 5, 100*time.Second)
	b := Arrivals(rand.New(rand.NewSource(7)), Constant(5), 5, 100*time.Second)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs", i)
		}
	}
}

func TestArrivalsBadMaxRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive maxRate did not panic")
		}
	}()
	Arrivals(rand.New(rand.NewSource(1)), Constant(1), 0, time.Second)
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := NewZipf(rng, 1.2, 1000)
	counts := make(map[int]int)
	for i := 0; i < 20000; i++ {
		id := z.Draw()
		if id < 0 || id >= 1000 {
			t.Fatalf("Zipf draw out of range: %d", id)
		}
		counts[id]++
	}
	if counts[0] <= counts[500] {
		t.Error("Zipf head not more popular than tail")
	}
	// The head item should carry a large share.
	if counts[0] < 2000 {
		t.Errorf("head share = %d/20000, suspiciously flat", counts[0])
	}
}

func TestZipfBadParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		s float64
		n int
	}{{1.2, 0}, {0.5, 10}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(s=%v,n=%d) did not panic", tc.s, tc.n)
				}
			}()
			NewZipf(rng, tc.s, tc.n)
		}()
	}
}

func TestWeightedChoiceProportions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := NewWeightedChoice([]string{"comcast", "verizon", "att"}, []float64{6, 3, 1})
	counts := map[string]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[w.Pick(rng)]++
	}
	if got := float64(counts["comcast"]) / n; math.Abs(got-0.6) > 0.02 {
		t.Errorf("comcast share = %v, want ≈0.6", got)
	}
	if got := float64(counts["att"]) / n; math.Abs(got-0.1) > 0.02 {
		t.Errorf("att share = %v, want ≈0.1", got)
	}
}

func TestWeightedChoiceValidation(t *testing.T) {
	for _, tc := range []struct {
		labels  []string
		weights []float64
	}{
		{[]string{"a"}, []float64{1, 2}},
		{nil, nil},
		{[]string{"a"}, []float64{-1}},
		{[]string{"a", "b"}, []float64{0, 0}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWeightedChoice(%v,%v) did not panic", tc.labels, tc.weights)
				}
			}()
			NewWeightedChoice(tc.labels, tc.weights)
		}()
	}
}

func TestWeightedChoiceZeroWeightNeverPicked(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := NewWeightedChoice([]string{"never", "always"}, []float64{0, 1})
	for i := 0; i < 1000; i++ {
		if w.Pick(rng) == "never" {
			t.Fatal("zero-weight label picked")
		}
	}
}

func TestGenerateDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	sessions := Generate(rng, Spec{
		Rate:    Constant(5),
		MaxRate: 5,
		Horizon: 200 * time.Second,
		Groups:  NewWeightedChoice([]string{"ispA", "ispB"}, []float64{1, 1}),
	})
	if len(sessions) < 800 || len(sessions) > 1200 {
		t.Fatalf("session count = %d, want ≈1000", len(sessions))
	}
	for _, s := range sessions {
		if s.IntendedDuration < 30*time.Second {
			t.Fatalf("duration %v below floor", s.IntendedDuration)
		}
		if s.ContentID < 0 || s.ContentID >= 1000 {
			t.Fatalf("content ID %d outside default catalog", s.ContentID)
		}
		if s.ClientGroup != "ispA" && s.ClientGroup != "ispB" {
			t.Fatalf("unexpected group %q", s.ClientGroup)
		}
	}
}

// Property: arrival times always fall inside the horizon and are sorted, for
// any seed and horizon.
func TestQuickArrivalsInHorizon(t *testing.T) {
	f := func(seed int64, horizonSec uint8) bool {
		h := time.Duration(horizonSec) * time.Second
		got := Arrivals(rand.New(rand.NewSource(seed)), Constant(3), 3, h)
		for i, at := range got {
			if at < 0 || at >= h {
				return false
			}
			if i > 0 && got[i] < got[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
