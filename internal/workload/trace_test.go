package workload

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestTraceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	orig := Generate(rng, Spec{
		Rate:    Constant(2),
		MaxRate: 2,
		Horizon: time.Minute,
		Groups:  NewWeightedChoice([]string{"isp-a", "isp-b"}, []float64{1, 1}),
	})
	if len(orig) == 0 {
		t.Fatal("no sessions generated")
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("round trip length %d != %d", len(got), len(orig))
	}
	for i := range got {
		// Times round-trip at millisecond precision.
		if got[i].ContentID != orig[i].ContentID || got[i].ClientGroup != orig[i].ClientGroup {
			t.Fatalf("row %d: %+v != %+v", i, got[i], orig[i])
		}
		if d := got[i].Arrival - orig[i].Arrival.Truncate(time.Millisecond); d != 0 {
			t.Fatalf("row %d arrival drift %v", i, d)
		}
	}
}

func TestTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty trace round trip = %d sessions", len(got))
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"bad header":    "a,b,c,d\n1,2,g,3\n",
		"neg arrival":   "arrival_ms,content_id,client_group,intended_duration_ms\n-5,1,g,100\n",
		"bad content":   "arrival_ms,content_id,client_group,intended_duration_ms\n1,x,g,100\n",
		"zero duration": "arrival_ms,content_id,client_group,intended_duration_ms\n1,2,g,0\n",
		"unsorted":      "arrival_ms,content_id,client_group,intended_duration_ms\n50,1,g,100\n10,1,g,100\n",
		"short row":     "arrival_ms,content_id,client_group,intended_duration_ms\n1,2\n",
	}
	for name, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadTraceEmptyInput(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("")); err == nil {
		t.Error("empty input should fail (no header)")
	}
}
