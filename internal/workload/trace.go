package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Trace persistence: session workloads serialize to CSV so an experiment's
// exact inputs can be archived, diffed, and replayed — the reproducibility
// counterpart of the production traces the paper's scenarios come from.
//
// Format (header + one row per session):
//
//	arrival_ms,content_id,client_group,intended_duration_ms

// traceHeader is the expected CSV header.
var traceHeader = []string{"arrival_ms", "content_id", "client_group", "intended_duration_ms"}

// WriteTrace serializes sessions to w as CSV.
func WriteTrace(w io.Writer, sessions []Session) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(traceHeader); err != nil {
		return fmt.Errorf("workload: write header: %w", err)
	}
	for i, s := range sessions {
		row := []string{
			strconv.FormatInt(s.Arrival.Milliseconds(), 10),
			strconv.Itoa(s.ContentID),
			s.ClientGroup,
			strconv.FormatInt(s.IntendedDuration.Milliseconds(), 10),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("workload: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTrace parses a CSV trace written by WriteTrace. It validates the
// header, field counts, and value ranges (non-negative times, sorted
// arrivals).
func ReadTrace(r io.Reader) ([]Session, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(traceHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: read header: %w", err)
	}
	for i, want := range traceHeader {
		if header[i] != want {
			return nil, fmt.Errorf("workload: header column %d = %q, want %q", i, header[i], want)
		}
	}
	var out []Session
	var prev time.Duration
	for row := 1; ; row++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: row %d: %w", row, err)
		}
		arrivalMs, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil || arrivalMs < 0 {
			return nil, fmt.Errorf("workload: row %d: bad arrival %q", row, rec[0])
		}
		contentID, err := strconv.Atoi(rec[1])
		if err != nil || contentID < 0 {
			return nil, fmt.Errorf("workload: row %d: bad content id %q", row, rec[1])
		}
		durMs, err := strconv.ParseInt(rec[3], 10, 64)
		if err != nil || durMs <= 0 {
			return nil, fmt.Errorf("workload: row %d: bad duration %q", row, rec[3])
		}
		s := Session{
			Arrival:          time.Duration(arrivalMs) * time.Millisecond,
			ContentID:        contentID,
			ClientGroup:      rec[2],
			IntendedDuration: time.Duration(durMs) * time.Millisecond,
		}
		if s.Arrival < prev {
			return nil, fmt.Errorf("workload: row %d: arrivals not sorted", row)
		}
		prev = s.Arrival
		out = append(out, s)
	}
	return out, nil
}
