// Package workload generates synthetic session workloads: Poisson arrival
// processes with time-varying rates (flash crowds, diurnal cycles), Zipf
// content popularity, and client-population mixes across ISPs.
//
// This substitutes for the production traces the paper's scenarios come from
// ("a large-scale application delivery optimization service" — Conviva):
// control-plane behaviour depends on arrival dynamics and the client/content
// mix, which these generators parameterize, not on real user identity.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// RateFunc gives the instantaneous arrival rate in sessions per second at
// virtual time t.
type RateFunc func(t time.Duration) float64

// Constant returns a fixed-rate function.
func Constant(perSecond float64) RateFunc {
	return func(time.Duration) float64 { return perSecond }
}

// FlashCrowd describes a load spike: base rate, then a linear ramp to peak,
// a hold at peak, and a linear ramp back down. This is the Figure 3
// scenario: a sudden crowd overwhelming an ISP's access capacity.
type FlashCrowd struct {
	Base, Peak         float64 // sessions/s
	Start              time.Duration
	RampUp, Hold, Down time.Duration
}

// Rate returns the RateFunc for the flash crowd profile.
func (f FlashCrowd) Rate() RateFunc {
	return func(t time.Duration) float64 {
		switch {
		case t < f.Start:
			return f.Base
		case t < f.Start+f.RampUp:
			frac := float64(t-f.Start) / float64(f.RampUp)
			return f.Base + frac*(f.Peak-f.Base)
		case t < f.Start+f.RampUp+f.Hold:
			return f.Peak
		case t < f.Start+f.RampUp+f.Hold+f.Down:
			frac := float64(t-f.Start-f.RampUp-f.Hold) / float64(f.Down)
			return f.Peak - frac*(f.Peak-f.Base)
		default:
			return f.Base
		}
	}
}

// Diurnal is a sinusoidal daily load pattern (the off-peak/peak cycle behind
// the §2 server energy-saving scenario).
type Diurnal struct {
	Mean      float64 // sessions/s averaged over a period
	Amplitude float64 // peak deviation from mean, ≤ Mean
	Period    time.Duration
	Phase     time.Duration // time of first peak
}

// Rate returns the RateFunc for the diurnal profile. It is clamped at zero.
func (d Diurnal) Rate() RateFunc {
	if d.Period <= 0 {
		panic("workload: Diurnal.Period must be positive")
	}
	return func(t time.Duration) float64 {
		x := 2 * math.Pi * float64(t-d.Phase) / float64(d.Period)
		r := d.Mean + d.Amplitude*math.Cos(x)
		if r < 0 {
			r = 0
		}
		return r
	}
}

// Arrivals samples a non-homogeneous Poisson process with rate function
// rate, bounded above by maxRate, over [0, horizon), using thinning. The
// returned times are sorted. maxRate must dominate rate everywhere; points
// where rate exceeds maxRate are effectively clipped.
func Arrivals(rng *rand.Rand, rate RateFunc, maxRate float64, horizon time.Duration) []time.Duration {
	if maxRate <= 0 {
		panic("workload: maxRate must be positive")
	}
	var out []time.Duration
	t := 0.0
	hs := horizon.Seconds()
	for {
		t += rng.ExpFloat64() / maxRate
		if t >= hs {
			break
		}
		at := time.Duration(t * float64(time.Second))
		r := rate(at)
		if r > maxRate {
			r = maxRate
		}
		if rng.Float64() < r/maxRate {
			out = append(out, at)
		}
	}
	return out
}

// Zipf draws content IDs 0..n-1 with Zipf(s) popularity, the standard model
// for video catalog popularity. IDs are returned most-popular-first (ID 0 is
// the most popular item).
type Zipf struct {
	z *rand.Zipf
}

// NewZipf creates a Zipf sampler over n items with exponent s > 1... rand.Zipf
// requires s > 1; use s≈1.1 for a long tail typical of video catalogs.
func NewZipf(rng *rand.Rand, s float64, n int) *Zipf {
	if n <= 0 {
		panic("workload: Zipf needs n > 0")
	}
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	if z == nil {
		panic(fmt.Sprintf("workload: invalid Zipf parameters s=%v n=%d", s, n))
	}
	return &Zipf{z: z}
}

// Draw returns a content ID in [0, n).
func (z *Zipf) Draw() int { return int(z.z.Uint64()) }

// WeightedChoice selects among labelled alternatives with fixed weights —
// used for the client-ISP mix and device mix.
type WeightedChoice struct {
	labels []string
	cum    []float64
	total  float64
}

// NewWeightedChoice builds a picker. Weights must be non-negative with a
// positive sum. The label order given here fixes the sampling order, keeping
// runs deterministic.
func NewWeightedChoice(labels []string, weights []float64) *WeightedChoice {
	if len(labels) != len(weights) || len(labels) == 0 {
		panic("workload: labels and weights must be equal-length and non-empty")
	}
	w := &WeightedChoice{labels: append([]string(nil), labels...)}
	for _, x := range weights {
		if x < 0 {
			panic("workload: negative weight")
		}
		w.total += x
		w.cum = append(w.cum, w.total)
	}
	if w.total <= 0 {
		panic("workload: zero total weight")
	}
	return w
}

// Pick draws a label.
func (w *WeightedChoice) Pick(rng *rand.Rand) string {
	x := rng.Float64() * w.total
	i := sort.SearchFloat64s(w.cum, x)
	if i >= len(w.labels) {
		i = len(w.labels) - 1
	}
	return w.labels[i]
}

// Session is one generated viewing session.
type Session struct {
	// Arrival is the offset from simulation start.
	Arrival time.Duration
	// ContentID indexes the catalog (Zipf-popular).
	ContentID int
	// ClientGroup labels the client population (typically the ISP).
	ClientGroup string
	// IntendedDuration is how long the viewer intends to watch.
	IntendedDuration time.Duration
}

// Spec describes a workload to generate.
type Spec struct {
	Rate        RateFunc
	MaxRate     float64
	Horizon     time.Duration
	CatalogSize int
	ZipfS       float64 // default 1.2 if zero
	Groups      *WeightedChoice
	// MeanDuration is the mean of the exponentially distributed intended
	// viewing duration. Default 10 minutes if zero.
	MeanDuration time.Duration
	// MinDuration floors the intended duration. Default 30s if zero.
	MinDuration time.Duration
}

// Generate produces the session list for a spec.
func Generate(rng *rand.Rand, s Spec) []Session {
	if s.CatalogSize <= 0 {
		s.CatalogSize = 1000
	}
	if s.ZipfS == 0 {
		s.ZipfS = 1.2
	}
	if s.MeanDuration == 0 {
		s.MeanDuration = 10 * time.Minute
	}
	if s.MinDuration == 0 {
		s.MinDuration = 30 * time.Second
	}
	zipf := NewZipf(rng, s.ZipfS, s.CatalogSize)
	arrivals := Arrivals(rng, s.Rate, s.MaxRate, s.Horizon)
	out := make([]Session, 0, len(arrivals))
	for _, at := range arrivals {
		dur := time.Duration(rng.ExpFloat64() * float64(s.MeanDuration))
		if dur < s.MinDuration {
			dur = s.MinDuration
		}
		grp := ""
		if s.Groups != nil {
			grp = s.Groups.Pick(rng)
		}
		out = append(out, Session{
			Arrival:          at,
			ContentID:        zipf.Draw(),
			ClientGroup:      grp,
			IntendedDuration: dur,
		})
	}
	return out
}
