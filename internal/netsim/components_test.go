package netsim

import (
	"testing"
	"time"
)

// TestSnapshotComponents pins the control-plane membership accessor: two
// link-disjoint flow groups must surface as two components, each listing its
// flow IDs in ascending order.
func TestSnapshotComponents(t *testing.T) {
	topo := NewTopology()
	la := topo.AddLink("a", "b", 10e6, time.Millisecond, "left")
	lb := topo.AddLink("c", "d", 10e6, time.Millisecond, "right")
	n := NewNetwork(topo)

	f1 := n.StartFlow(Path{la}, 1e6, "l1")
	f2 := n.StartFlow(Path{la}, 1e6, "l2")
	f3 := n.StartFlow(Path{lb}, 1e6, "r1")

	comps := n.Snapshot().Components()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2 (%+v)", len(comps), comps)
	}
	byFirst := map[FlowID][]FlowID{}
	for _, c := range comps {
		if len(c.Flows) == 0 {
			t.Fatalf("empty component %+v", c)
		}
		for i := 1; i < len(c.Flows); i++ {
			if c.Flows[i-1] >= c.Flows[i] {
				t.Errorf("component %d flows not ascending: %v", c.Slot, c.Flows)
			}
		}
		byFirst[c.Flows[0]] = c.Flows
	}
	if got := byFirst[f1.ID]; len(got) != 2 || got[0] != f1.ID || got[1] != f2.ID {
		t.Errorf("left component = %v, want [%d %d]", got, f1.ID, f2.ID)
	}
	if got := byFirst[f3.ID]; len(got) != 1 || got[0] != f3.ID {
		t.Errorf("right component = %v, want [%d]", got, f3.ID)
	}

	// Stopping a group removes its component from the next snapshot.
	n.StopFlow(f3)
	if comps := n.Snapshot().Components(); len(comps) != 1 {
		t.Errorf("after stop, components = %d, want 1", len(comps))
	}
}
