package netsim

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"
)

// sharedFixtures mirrors the registry differential's fixture set: every
// topology shape the allocator is pinned on, as (fresh network, candidate
// paths) builders.
func sharedFixtures() map[string]func() (*Network, []Path) {
	return map[string]func() (*Network, []Path){
		"line": func() (*Network, []Path) {
			topo, p := line(100, 80, 120)
			return NewNetwork(topo), []Path{p, {p[0]}, {p[1], p[2]}}
		},
		"rails": func() (*Network, []Path) {
			topo, links := rails(4, 3, 90)
			n := NewNetwork(topo)
			var ps []Path
			for i := range links {
				ps = append(ps,
					Path(links[i]),
					Path{links[i][0]},
					Path{links[i][1], links[i][2]})
			}
			return n, ps
		},
		"e1": func() (*Network, []Path) {
			n, p1, p2 := e1SetupTopology()
			return n, []Path{p1, p2}
		},
		"skewed": func() (*Network, []Path) {
			topo := NewTopology()
			hub := topo.AddLink("hubA", "hubB", 1000, time.Millisecond, "")
			ps := []Path{{hub}}
			for i := 0; i < 4; i++ {
				from := NodeID(rune('a' + i))
				to := NodeID(rune('A' + i))
				ps = append(ps, Path{topo.AddLink(from, to, 90, time.Millisecond, "")})
			}
			return NewNetwork(topo), ps
		},
	}
}

// requireIdenticalNetworks asserts two networks agree bit for bit: same
// flows (ID, rate, demand, weight, tag), same link rates, same capacities.
func requireIdenticalNetworks(t *testing.T, label string, a, b *Network) {
	t.Helper()
	sa, sb := a.Snapshot(), b.Snapshot()
	if sa.NumFlows() != sb.NumFlows() {
		t.Fatalf("%s: %d flows vs %d", label, sa.NumFlows(), sb.NumFlows())
	}
	for id := 0; id < a.Topology().NumLinks(); id++ {
		l := LinkID(id)
		if sa.LinkRate(l) != sb.LinkRate(l) {
			t.Fatalf("%s: link %d rate %v != %v", label, id, sa.LinkRate(l), sb.LinkRate(l))
		}
		if sa.Headroom(l) != sb.Headroom(l) {
			t.Fatalf("%s: link %d headroom %v != %v (capacity drift)", label, id, sa.Headroom(l), sb.Headroom(l))
		}
	}
	sa.Flows(func(v FlowView) {
		w, ok := sb.Flow(v.ID)
		if !ok {
			t.Fatalf("%s: flow %d missing from mirror", label, v.ID)
		}
		if v != w {
			t.Fatalf("%s: flow %d state %+v != %+v", label, v.ID, v, w)
		}
	})
}

// driveSharedDeterministic runs the canonical concurrent workload: drivers
// goroutines issue seeded random op streams against a deterministic-mode
// SharedNetwork, synchronizing on Commit barriers between rounds. It
// returns the op log and the final (closed) network.
func driveSharedDeterministic(t *testing.T, build func() (*Network, []Path), seed int64, drivers, rounds, opsPerRound int) ([]Op, *Network) {
	t.Helper()
	net, paths := build()
	s := NewShared(net, SharedConfig{Deterministic: true, Record: true})
	drv := make([]*Driver, drivers)
	handles := make([][]*Flow, drivers)
	for d := range drv {
		drv[d] = s.Driver(uint64(d + 1))
	}
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		for d := 0; d < drivers; d++ {
			wg.Add(1)
			go func(d int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed*1_000_000 + int64(d)*1_000 + int64(r)))
				h := handles[d]
				for k := 0; k < opsPerRound; k++ {
					op := rng.Intn(6)
					if len(h) == 0 {
						op = 0
					}
					pi := rng.Intn(len(paths))
					val := float64(1 + rng.Intn(300))
					if rng.Intn(6) == 0 {
						val = math.Inf(1)
					}
					switch op {
					case 0:
						h = append(h, drv[d].StartFlow(paths[pi], val, "shared"))
					case 1:
						drv[d].StopFlow(h[rng.Intn(len(h))])
					case 2:
						drv[d].SetDemand(h[rng.Intn(len(h))], val)
					case 3:
						drv[d].SetWeight(h[rng.Intn(len(h))], float64(1+rng.Intn(4)))
					case 4:
						drv[d].SetPath(h[rng.Intn(len(h))], paths[pi])
					case 5:
						p := paths[pi]
						drv[d].SetLinkCapacity(p[rng.Intn(len(p))].ID, float64(50+rng.Intn(200)))
					}
				}
				handles[d] = h
			}(d)
		}
		wg.Wait()
		s.Commit()
	}
	final := s.Close()
	ops, complete := s.Log()
	if !complete {
		t.Fatal("op log reported incomplete without any opaque Batch")
	}
	return ops, final
}

// TestSharedDifferentialOnFixtures is the tentpole pin: on every topology
// fixture, a deterministic-mode SharedNetwork driven by 4 concurrent
// goroutines with Commit barriers (a) reproduces the identical op log and
// final state when run twice — scheduling cannot perturb it — and (b)
// matches a serial Network replaying the committed op sequence bit for
// bit, flows and links alike.
func TestSharedDifferentialOnFixtures(t *testing.T) {
	for name, build := range sharedFixtures() {
		build := build
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				ops1, net1 := driveSharedDeterministic(t, build, seed, 4, 6, 12)
				ops2, net2 := driveSharedDeterministic(t, build, seed, 4, 6, 12)
				if !reflect.DeepEqual(ops1, ops2) {
					t.Fatalf("seed %d: two runs produced different op logs (%d vs %d ops)", seed, len(ops1), len(ops2))
				}
				requireIdenticalNetworks(t, "run1 vs run2", net1, net2)

				mirror, _ := build()
				if err := Replay(mirror, ops1); err != nil {
					t.Fatalf("seed %d: replay: %v", seed, err)
				}
				requireIdenticalNetworks(t, "shared vs serial replay", net1, mirror)
			}
		})
	}
}

// TestSharedImmediateHammer exercises immediate mode under -race: writer
// goroutines doing lifecycle churn, reader goroutines spinning on
// snapshots, and a capacity churner — all concurrent. Afterwards the op
// log replayed serially must reproduce the final state exactly (immediate
// mode logs ops in application order).
func TestSharedImmediateHammer(t *testing.T) {
	build := sharedFixtures()["rails"]
	net, paths := build()
	s := NewShared(net, SharedConfig{Record: true})
	nl := net.Topology().NumLinks()

	const writers = 4
	const opsPerWriter = 150
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: pure snapshot consumers, stopped once writers finish.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := g
			for {
				select {
				case <-stop:
					return
				default:
				}
				sn := s.Snapshot()
				id := LinkID(i % nl)
				_ = sn.Utilization(id)
				_ = sn.Congestion(id)
				_ = sn.QueueDelay(id)
				_ = sn.PathRTT(paths[i%len(paths)])
				_ = sn.Stats()
				_ = s.NumFlows() // Reader-through-SharedNetwork path
				i++
			}
		}(g)
	}

	var writerWG sync.WaitGroup
	for d := 0; d < writers; d++ {
		writerWG.Add(1)
		go func(d int) {
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(int64(d)))
			var h []*Flow
			for k := 0; k < opsPerWriter; k++ {
				op := rng.Intn(6)
				if len(h) == 0 {
					op = 0
				}
				pi := rng.Intn(len(paths))
				switch op {
				case 0:
					h = append(h, s.StartFlow(paths[pi], float64(1+rng.Intn(300)), "hammer"))
				case 1:
					s.StopFlow(h[rng.Intn(len(h))])
				case 2:
					s.SetDemand(h[rng.Intn(len(h))], float64(1+rng.Intn(300)))
				case 3:
					s.SetWeight(h[rng.Intn(len(h))], float64(1+rng.Intn(4)))
				case 4:
					s.SetPath(h[rng.Intn(len(h))], paths[pi])
				case 5:
					p := paths[pi]
					s.SetLinkCapacity(p[rng.Intn(len(p))].ID, float64(50+rng.Intn(200)))
				}
			}
		}(d)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	final := s.Close()
	ops, complete := s.Log()
	if !complete {
		t.Fatal("op log incomplete without any Batch")
	}
	// No-ops on already-stopped handles are not logged, so the log is at
	// most one op per issued mutation.
	if len(ops) == 0 || len(ops) > writers*opsPerWriter {
		t.Fatalf("logged %d ops, want 1..%d", len(ops), writers*opsPerWriter)
	}
	mirror, _ := build()
	if err := Replay(mirror, ops); err != nil {
		t.Fatalf("replay: %v", err)
	}
	requireIdenticalNetworks(t, "hammer vs serial replay", final, mirror)
}

func TestSharedImmediateBasics(t *testing.T) {
	topo, p := line(100)
	s := NewShared(NewNetwork(topo), SharedConfig{Record: true})
	f1 := s.StartFlow(p, math.Inf(1), "a")
	f2 := s.StartFlow(p, math.Inf(1), "b")
	// Single-writer immediate mode keeps serial semantics: the commit
	// happened before StartFlow returned, so handle fields are current.
	if f1.Rate != 50 || f2.Rate != 50 {
		t.Fatalf("rates = %v, %v, want 50, 50", f1.Rate, f2.Rate)
	}
	sn := s.Snapshot()
	if got := sn.LinkRate(p[0].ID); got != 100 {
		t.Errorf("snapshot link rate = %v, want 100", got)
	}
	if v, ok := sn.Flow(f1.ID); !ok || v.Rate != 50 || v.Tag != "a" {
		t.Errorf("snapshot flow view = %+v, %v", v, ok)
	}
	if got := s.Utilization(p[0].ID); got != 1 {
		t.Errorf("shared utilization = %v, want 1", got)
	}
	s.SetDemand(f1, 20)
	if f1.Rate != 20 || f2.Rate != 80 {
		t.Errorf("after SetDemand rates = %v, %v, want 20, 80", f1.Rate, f2.Rate)
	}
	if s.Snapshot().Seq == sn.Seq {
		t.Error("commit did not publish a new snapshot")
	}
	s.StopFlow(f2)
	s.StopFlow(f2) // no-op, must not log
	net := s.Close()
	ops, complete := s.Log()
	// 2 starts + 1 set-demand + 1 stop; the second stop is a detached
	// no-op and must not be logged.
	if !complete || len(ops) != 4 {
		t.Fatalf("log = %d ops (complete=%v), want 4 complete", len(ops), complete)
	}
	if net.NumFlows() != 1 {
		t.Errorf("final flows = %d, want 1", net.NumFlows())
	}
}

func TestSharedDeterministicPlaceholders(t *testing.T) {
	topo, p := line(100)
	s := NewShared(NewNetwork(topo), SharedConfig{Deterministic: true})
	f := s.StartFlow(p, math.Inf(1), "")
	if got := s.NumFlows(); got != 0 {
		t.Errorf("flow visible before Commit: NumFlows = %d", got)
	}
	s.SetDemand(f, 30) // targets the placeholder, applied after its start
	s.Commit()
	if got := s.NumFlows(); got != 1 {
		t.Fatalf("NumFlows after Commit = %d, want 1", got)
	}
	if v, ok := s.Snapshot().Flow(f.ID); !ok || v.Rate != 30 {
		t.Errorf("flow view = %+v, %v; want rate 30", v, ok)
	}
	s.Close()
}

func TestSharedBatchMarksLogIncomplete(t *testing.T) {
	topo, p := line(100)
	s := NewShared(NewNetwork(topo), SharedConfig{Record: true})
	s.Batch(func(n *Network) {
		n.StartFlow(p, 10, "inside")
		n.NoteCoalescedReactions(3)
	})
	if got := s.Stats().CoalescedReactions; got != 3 {
		t.Errorf("CoalescedReactions = %d, want 3", got)
	}
	if got := s.NumFlows(); got != 1 {
		t.Errorf("NumFlows = %d, want 1", got)
	}
	s.Close()
	if _, complete := s.Log(); complete {
		t.Error("log claims complete despite an opaque Batch")
	}
}

func TestSharedUseAfterClosePanics(t *testing.T) {
	topo, p := line(100)
	s := NewShared(NewNetwork(topo), SharedConfig{})
	s.Close()
	s.Close() // idempotent
	defer func() {
		if recover() == nil {
			t.Error("mutation after Close did not panic")
		}
	}()
	s.StartFlow(p, 1, "")
}

// BenchmarkSharedReadScaling measures snapshot reads under RunParallel —
// the acceptance pin that the read path is one atomic load plus array
// indexing, with no mutex to serialize behind: the under-writes arm keeps
// a writer goroutine committing demand churn (and thus publishing
// snapshots) for the whole measurement.
func BenchmarkSharedReadScaling(b *testing.B) {
	setup := func() (*SharedNetwork, []Path, int) {
		topo, links := rails(16, 3, 1e8)
		n := NewNetwork(topo)
		var paths []Path
		n.Batch(func() {
			for i := range links {
				p := Path(links[i])
				paths = append(paths, p)
				for k := 0; k < 8; k++ {
					n.StartFlow(p, 1e6*float64(1+k), "bench")
				}
			}
		})
		return NewShared(n, SharedConfig{}), paths, topo.NumLinks()
	}
	readLoop := func(b *testing.B, s *SharedNetwork, paths []Path, nl int) {
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				sn := s.Snapshot()
				id := LinkID(i % nl)
				_ = sn.Utilization(id)
				_ = sn.Congestion(id)
				_ = sn.Headroom(id)
				_ = sn.PathRTT(paths[i%len(paths)])
				i++
			}
		})
	}
	b.Run("idle", func(b *testing.B) {
		s, paths, nl := setup()
		defer s.Close()
		b.ResetTimer()
		readLoop(b, s, paths, nl)
	})
	b.Run("under-writes", func(b *testing.B) {
		s, paths, nl := setup()
		f := s.StartFlow(paths[0], 1e6, "churn")
		stop := make(chan struct{})
		done := make(chan struct{})
		// One writer churning a flow's demand as fast as the owner accepts.
		go func() {
			defer close(done)
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.SetDemand(f, 1e6*float64(1+i%16))
				i++
			}
		}()
		b.ResetTimer()
		readLoop(b, s, paths, nl)
		b.StopTimer()
		close(stop)
		<-done
		s.Close()
	})
}
