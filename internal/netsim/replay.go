package netsim

import "fmt"

// Replayer applies a SharedNetwork op log to a fresh serial Network one op
// at a time — the stepping form of Replay that journal bisection needs to
// compare state after every individual op. Flow IDs are re-assigned by the
// network in the same order they were assigned during the recorded run;
// Apply verifies they match, which guards against replaying onto a
// non-fresh network.
type Replayer struct {
	n       *Network
	handles map[FlowID]*Flow
	applied int
}

// NewReplayer prepares to replay onto n, which must be fresh (no flows ever
// started) unless it was populated through ImportState — in that case the
// imported flows are adopted as live replay handles, so a snapshot-restored
// network can catch up by replaying the log tail.
func NewReplayer(n *Network) *Replayer {
	r := &Replayer{n: n, handles: make(map[FlowID]*Flow, len(n.flows))}
	for id, f := range n.flows {
		r.handles[id] = f
	}
	return r
}

// Applied returns the number of ops applied so far.
func (r *Replayer) Applied() int { return r.applied }

// Apply replays one op. The error is descriptive and carries the op's index
// within this replay; a log that references a flow the replay never started
// (corrupt or hand-edited) fails with "unknown flow" instead of silently
// mutating nothing.
func (r *Replayer) Apply(op Op) error {
	i := r.applied
	switch op.Kind {
	case OpStart:
		p, err := r.n.topo.pathOf(op.Links)
		if err != nil {
			return fmt.Errorf("op %d: %w", i, err)
		}
		f := r.n.StartFlow(p, op.Value, op.Tag)
		if f.ID != op.Flow {
			return fmt.Errorf("op %d: replay assigned flow %d, log has %d (network not fresh?)", i, f.ID, op.Flow)
		}
		r.handles[f.ID] = f
	case OpStop:
		f, ok := r.handles[op.Flow]
		if !ok {
			return fmt.Errorf("op %d: unknown flow %d", i, op.Flow)
		}
		r.n.StopFlow(f)
	case OpSetDemand:
		f, ok := r.handles[op.Flow]
		if !ok {
			return fmt.Errorf("op %d: unknown flow %d", i, op.Flow)
		}
		r.n.SetDemand(f, op.Value)
	case OpSetWeight:
		f, ok := r.handles[op.Flow]
		if !ok {
			return fmt.Errorf("op %d: unknown flow %d", i, op.Flow)
		}
		r.n.SetWeight(f, op.Value)
	case OpSetPath:
		f, ok := r.handles[op.Flow]
		if !ok {
			return fmt.Errorf("op %d: unknown flow %d", i, op.Flow)
		}
		p, err := r.n.topo.pathOf(op.Links)
		if err != nil {
			return fmt.Errorf("op %d: %w", i, err)
		}
		r.n.SetPath(f, p)
	case OpSetLinkCapacity:
		if r.n.topo.Link(op.Link) == nil {
			return fmt.Errorf("op %d: replay references unknown link %d", i, op.Link)
		}
		r.n.SetLinkCapacity(op.Link, op.Value)
	default:
		return fmt.Errorf("op %d: unknown kind %v", i, op.Kind)
	}
	r.applied++
	return nil
}

// Replay applies a SharedNetwork op log to a fresh serial Network built on
// an identical topology. Replaying the log serially reproduces the shared
// run's flow and link rates bit for bit (pinned by
// TestSharedDifferentialOnFixtures). Ops that reference a flow the log
// never started — a corrupt or hand-edited log — fail with a descriptive
// "op %d: unknown flow" error rather than silently no-opping.
func Replay(n *Network, ops []Op) error {
	r := NewReplayer(n)
	for _, op := range ops {
		if err := r.Apply(op); err != nil {
			return err
		}
	}
	return nil
}
