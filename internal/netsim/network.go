package netsim

import (
	"fmt"
	"math"
	"slices"
	"time"
)

// FlowID identifies an active flow.
type FlowID int64

// Flow is a fluid flow over a path. Rate is maintained by the Network's
// max-min fair allocator; callers read it, never write it.
type Flow struct {
	ID   FlowID
	Path Path
	// Demand is the application-limited sending rate ceiling in bits/s.
	// Use math.Inf(1) (or Network.MaxRate) for a greedy flow such as a
	// video segment download.
	Demand float64
	// Rate is the currently allocated rate in bits/s.
	Rate float64
	// Weight scales the flow's share under contention (weighted max-min:
	// a weight-2 flow gets twice a weight-1 flow's share at a shared
	// bottleneck). Zero or negative means 1. Set via SetWeight.
	Weight float64
	// Tag is an opaque scenario label ("cdnX", "appP2") used by
	// experiments to group flows when reading link statistics.
	Tag string
	// idx is the flow's dense arena index (arena.go) while attached, and
	// noIdx when detached.
	idx int32
}

func (f *Flow) weight() float64 {
	if f.Weight <= 0 {
		return 1
	}
	return f.Weight
}

// DefaultMaxRate caps greedy flows at a last-mile/NIC limit so that every
// allocation is finite even on an empty path. 1 Gbps.
const DefaultMaxRate = 1e9

// DefaultIncrementalCutoff is the fraction of active flows above which a
// dirty recomputation falls back to a full pass: past this point the
// component search bookkeeping buys nothing over just refilling everything.
const DefaultIncrementalCutoff = 0.5

// Network owns a topology plus the set of active flows and keeps flow rates
// max-min fair. It is not safe for concurrent use; all EONA experiments
// drive it from a single simulator goroutine.
//
// Allocation is component-decomposed: flows that (transitively) share a
// link form a connected component, and each component's rates depend only
// on that component's flows and links. A mutation therefore recomputes only
// the components it dirties; rates in untouched components are not written
// at all, so they stay byte-identical across unrelated churn. Batch /
// BeginBatch / EndBatch coalesce any number of mutations into a single
// recomputation of the union of their dirty components.
type Network struct {
	topo  *Topology
	flows map[FlowID]*Flow
	// linkRate[l] is the current total allocated rate on link l.
	linkRate []float64
	// linkFlows[l] indexes the flows currently crossing link l, for
	// component discovery and O(1) FlowsOn.
	linkFlows []map[FlowID]*Flow
	nextID    FlowID
	// MaxRate bounds every flow's rate (models the client NIC / last
	// hop). Set it before starting flows, or via SetMaxRate afterwards
	// (a bare field write is only picked up by the next recomputation
	// of each component).
	MaxRate float64
	// IncrementalCutoff is the fraction of active flows above which a
	// dirty recomputation falls back to a full pass. Zero forces every
	// recomputation to be full (useful for differential testing);
	// NewNetwork sets DefaultIncrementalCutoff.
	IncrementalCutoff float64
	// AutoTuneCutoff, when set, re-derives IncrementalCutoff after every
	// recomputation from the observed affected-flow fraction: the cutoff
	// tracks a decayed maximum of recent component sizes, with margin, so
	// a topology whose dirty components are consistently large (where the
	// hand-picked default would thrash into full passes) keeps taking the
	// cheaper incremental path, and a topology of many small components
	// keeps a tight cutoff. Opt-in; rates are unaffected — only the
	// incremental-vs-full decision moves.
	AutoTuneCutoff bool
	// tuneFrac is the decayed maximum affected-flow fraction observed by
	// the auto-tuner.
	tuneFrac float64
	// UseRegistry selects the persistent component registry (registry.go)
	// for dirty-set discovery instead of per-commit BFS over linkFlows.
	// NewNetwork enables it — the two paths allocate bit-identical rates
	// (proven by the differential tests), the registry just discovers the
	// touched components in O(dirty set). Disable before starting any
	// flows to get the BFS path (differential tests, benchmarks).
	UseRegistry bool
	// UseSoA routes progressive fills through the arena-backed SoA filler
	// (fillSoA, arena.go): parallel demand/weight/rate arrays and []int32
	// path adjacency instead of *Flow pointer chasing, and no per-fill
	// allocation. NewNetwork enables it; disable (any time) to force the
	// pointer-walking reference filler — rates are bit-identical either
	// way, pinned by the SoA on/off differential tests.
	UseSoA bool
	// comp is the registry's flow→component membership; nil entries never
	// occur for live flows while UseRegistry is set from the start.
	comp map[FlowID]*component

	// Reallocations counts fair-share recomputation events (one per
	// unbatched mutation or per batch commit), for benchmarks.
	Reallocations uint64
	// IncrementalReallocations counts recomputation events that took the
	// incremental path (a strict subset of Reallocations).
	IncrementalReallocations uint64
	// FlowsRecomputed sums the component sizes passed through the
	// progressive filler — the actual allocator work done.
	FlowsRecomputed uint64
	// ComponentsRecomputed counts individual component fills.
	ComponentsRecomputed uint64
	// RegistryRebuilds counts lazy re-splits of stale registry components;
	// tests assert these stay rare under churn.
	RegistryRebuilds uint64
	// CoalescedReactions counts control-loop reactions folded into shared
	// end-of-tick batches; incremented by control.Coalescer, read via
	// Stats.
	CoalescedReactions uint64

	// Batching and dirty tracking.
	batchDepth int
	pending    bool
	dirtyAll   bool
	dirtyFlows map[FlowID]struct{}
	dirtyLinks map[LinkID]struct{}

	// Scratch buffers reused across fills (indexed by LinkID; only
	// entries for the component being filled are initialized).
	scratchAvail  []float64
	scratchWeight []float64

	// digestIDs is StateDigest's flow-ID sort buffer, reused per call so
	// per-op digesting (journal capture, replay verification) stays
	// allocation-free.
	digestIDs []FlowID

	// Index arena (arena.go): parallel arrays over dense flow indices,
	// kept in lockstep by the mutators regardless of UseSoA.
	arFlow   []*Flow
	arID     []FlowID
	arDemand []float64
	arWeight []float64 // effective weight (weight())
	arRate   []float64
	arPath   [][]int32
	arFree   []int32 // freelist of recycled arena indices

	// Epoch-stamped "seen" marks (arena.go): a flow/link is seen iff its
	// stamp equals epoch, so clearing a mark set is one increment.
	flowMark []uint64 // by arena index
	linkMark []uint64 // by LinkID
	epoch    uint64

	// Scratch reused across commits; never escapes a single reallocate.
	scratchStack    []*Flow   // expand's DFS stack
	scratchSeeds    []*Flow   // BFS reallocate's deduped seed list
	scratchFlows    []*Flow   // discovered component members, flat
	scratchLinks    []LinkID  // discovered component links, flat
	scratchEnds     [][2]int  // per-component [flowEnd, linkEnd] boundaries
	scratchIdxs     []int32   // discovery-side index list (fullRealloc)
	scratchFillIdxs []int32   // fill-dispatcher index list (must be distinct)
	scratchRate     []float64 // per-component fill rates
	scratchFrozen   []bool    // per-component fill freeze marks
	scratchComps    []*component
	scratchFracs    []float64
	compPool        []*component // recycled component husks (cleared maps)

	// Snapshot copy-on-write bookkeeping (snapshot.go): per-facet dirty
	// flags consumed by SharedNetwork's snapshotDelta, and per-component
	// chunk slots for the flow table.
	slotComp     []*component // slot → owning component (nil when free)
	slotFree     []int32      // freelist of chunk slots
	chunkDirty   []bool       // slot → chunk rates/demands need rebuild
	chunkStatic  []bool       // slot → chunk membership/weights changed too
	dirtyChunks  int
	rateDirty    []bool          // link → rate changed since last delta snapshot
	rateList     []LinkID        // the set bits of rateDirty, in mark order
	rateAll      bool            // every link rate may have changed (full realloc)
	snapCap      bool            // a link capacity changed
	snapOn       bool            // flowsOn/activeOn changed
	snapAllFlows bool            // flow table must be fully rebuilt
	snapIndex    bool            // flow→chunk index must be rebuilt
	snapDelay    []time.Duration // immutable per-link delays, shared by snapshots
	activeOn     []int32         // per-link count of flows with Demand > 0
}

// NewNetwork wraps a topology. The topology must not gain links afterwards.
func NewNetwork(t *Topology) *Network {
	n := &Network{
		topo:              t,
		flows:             make(map[FlowID]*Flow),
		linkRate:          make([]float64, t.NumLinks()),
		linkFlows:         make([]map[FlowID]*Flow, t.NumLinks()),
		MaxRate:           DefaultMaxRate,
		IncrementalCutoff: DefaultIncrementalCutoff,
		UseRegistry:       true,
		UseSoA:            true,
		comp:              make(map[FlowID]*component),
		dirtyFlows:        make(map[FlowID]struct{}),
		dirtyLinks:        make(map[LinkID]struct{}),
		scratchAvail:      make([]float64, t.NumLinks()),
		scratchWeight:     make([]float64, t.NumLinks()),
		linkMark:          make([]uint64, t.NumLinks()),
		rateDirty:         make([]bool, t.NumLinks()),
		activeOn:          make([]int32, t.NumLinks()),
		snapDelay:         make([]time.Duration, t.NumLinks()),
	}
	for i := range n.snapDelay {
		n.snapDelay[i] = t.links[i].Delay
	}
	return n
}

// Topology returns the underlying topology.
func (n *Network) Topology() *Topology { return n.topo }

// NumFlows returns the number of active flows.
func (n *Network) NumFlows() int { return len(n.flows) }

// Batch runs fn with reallocation deferred: however many mutations fn
// performs, rates are recomputed once, over the union of the dirtied
// components, when fn returns. Batches nest; the recomputation happens when
// the outermost batch ends. The deferred commit also runs if fn panics, so
// the network is left consistent while the panic unwinds.
func (n *Network) Batch(fn func()) {
	n.BeginBatch()
	defer n.EndBatch()
	fn()
}

// BeginBatch defers reallocation until the matching EndBatch. Prefer Batch,
// which is panic-safe by construction; with BeginBatch the caller owns the
// unwinding (defer n.EndBatch()).
func (n *Network) BeginBatch() { n.batchDepth++ }

// EndBatch closes the innermost batch; closing the outermost batch commits
// any pending mutations in a single reallocation. EndBatch without a
// matching BeginBatch panics.
func (n *Network) EndBatch() {
	if n.batchDepth == 0 {
		panic("netsim: EndBatch without BeginBatch")
	}
	n.batchDepth--
	if n.batchDepth == 0 && n.pending {
		n.pending = false
		n.reallocate()
	}
}

// InBatch reports whether a batch is open. While true, Flow.Rate and link
// statistics are stale: they reflect the state before the batch began.
func (n *Network) InBatch() bool { return n.batchDepth > 0 }

// commit triggers a reallocation now, or records that one is owed if a
// batch is open.
func (n *Network) commit() {
	if n.batchDepth > 0 {
		n.pending = true
		return
	}
	n.reallocate()
}

func (n *Network) markFlowDirty(f *Flow) {
	n.dirtyFlows[f.ID] = struct{}{}
}

func (n *Network) markPathDirty(p Path) {
	for _, l := range p {
		n.dirtyLinks[l.ID] = struct{}{}
	}
}

func (n *Network) indexFlow(f *Flow) {
	for _, l := range f.Path {
		if n.linkFlows[l.ID] == nil {
			n.linkFlows[l.ID] = make(map[FlowID]*Flow)
		}
		n.linkFlows[l.ID][f.ID] = f
	}
}

func (n *Network) unindexFlow(f *Flow) {
	for _, l := range f.Path {
		delete(n.linkFlows[l.ID], f.ID)
	}
}

// attached reports whether f is a live flow of this network. Detached
// (stopped) flows are dead objects: mutating them must not disturb the
// allocation.
func (n *Network) attached(f *Flow) bool {
	if f == nil {
		return false
	}
	g, ok := n.flows[f.ID]
	return ok && g == f
}

// StartFlow attaches a flow on path with the given demand and tag, then
// reallocates. The path must be connected (panics otherwise: a disconnected
// path is a scenario bug, not a runtime condition).
func (n *Network) StartFlow(path Path, demand float64, tag string) *Flow {
	f := &Flow{}
	n.startFlowAs(f, path, demand, tag)
	return f
}

// startFlowAs attaches a caller-provided flow handle. SharedNetwork's
// deterministic mode hands callers their *Flow before the op is applied;
// the owner goroutine fills it in here so the caller's handle and the
// network's handle are the same object.
func (n *Network) startFlowAs(f *Flow, path Path, demand float64, tag string) {
	if !path.Valid("", "") {
		panic(fmt.Sprintf("netsim: disconnected path %v", path))
	}
	if demand < 0 {
		demand = 0
	}
	f.ID, f.Path, f.Demand, f.Rate, f.Weight, f.Tag = n.nextID, path, demand, 0, 0, tag
	n.nextID++
	n.flows[f.ID] = f
	n.indexFlow(f)
	n.arenaAttach(f)
	if n.UseRegistry {
		n.regAdd(f)
	}
	if demand > 0 {
		n.bumpActive(path, 1)
	}
	n.snapOn = true
	n.markFlowDirty(f)
	n.commit()
}

// bumpActive adjusts the incremental per-link active-flow counters for a
// flow with positive demand entering (+1) or leaving (-1) the links of p.
func (n *Network) bumpActive(p Path, delta int32) {
	for _, l := range p {
		n.activeOn[l.ID] += delta
	}
}

// StopFlow detaches a flow and reallocates. Stopping an unknown or
// already-stopped flow is a no-op.
func (n *Network) StopFlow(f *Flow) {
	if !n.attached(f) {
		return
	}
	delete(n.flows, f.ID)
	n.unindexFlow(f)
	if n.UseRegistry {
		n.regRemove(f)
	}
	n.arenaDetach(f)
	if f.Demand > 0 {
		n.bumpActive(f.Path, -1)
	}
	n.snapOn = true
	delete(n.dirtyFlows, f.ID)
	f.Rate = 0
	n.markPathDirty(f.Path)
	n.commit()
}

// SetDemand updates a flow's demand ceiling and reallocates. Calling it on
// a stopped (detached) flow is a no-op, mirroring StopFlow.
func (n *Network) SetDemand(f *Flow, demand float64) {
	if !n.attached(f) {
		return
	}
	if demand < 0 {
		demand = 0
	}
	if f.Demand == demand {
		return
	}
	if (f.Demand > 0) != (demand > 0) {
		if demand > 0 {
			n.bumpActive(f.Path, 1)
		} else {
			n.bumpActive(f.Path, -1)
		}
		n.snapOn = true
	}
	f.Demand = demand
	n.arDemand[f.idx] = demand
	n.markFlowDirty(f)
	n.commit()
}

// SetWeight updates a flow's fair-share weight and reallocates. Calling it
// on a stopped (detached) flow is a no-op, mirroring StopFlow.
func (n *Network) SetWeight(f *Flow, weight float64) {
	if !n.attached(f) {
		return
	}
	if f.Weight == weight {
		return
	}
	f.Weight = weight
	n.arWeight[f.idx] = f.weight()
	if n.UseRegistry {
		if c := n.comp[f.ID]; c != nil {
			n.markChunkStatic(c) // weight is a static snapshot field
		}
	}
	n.markFlowDirty(f)
	n.commit()
}

// SetPath re-routes a flow (e.g., after an ISP egress change) and
// reallocates. Calling it on a stopped (detached) flow is a no-op,
// mirroring StopFlow.
func (n *Network) SetPath(f *Flow, path Path) {
	if !path.Valid("", "") {
		panic(fmt.Sprintf("netsim: disconnected path %v", path))
	}
	if !n.attached(f) {
		return
	}
	n.unindexFlow(f)
	if n.UseRegistry {
		n.regRemove(f) // leaves the old component, possibly marking it stale
	}
	n.markPathDirty(f.Path) // the links the flow is leaving
	if f.Demand > 0 {
		n.bumpActive(f.Path, -1)
	}
	f.Path = path
	n.arenaSetPath(f)
	n.indexFlow(f)
	if n.UseRegistry {
		n.regAdd(f) // joins (or founds) the component of the new path
	}
	if f.Demand > 0 {
		n.bumpActive(path, 1)
	}
	n.snapOn = true
	n.markFlowDirty(f)
	n.commit()
}

// SetLinkCapacity changes a link's capacity at runtime (maintenance,
// degradation, an upgrade) and reallocates. Capacity must stay positive —
// model a dead link as a tiny capacity (flows stay routed but starve),
// or re-path flows off it.
func (n *Network) SetLinkCapacity(id LinkID, capacity float64) {
	l := n.topo.Link(id)
	if l == nil {
		panic(fmt.Sprintf("netsim: SetLinkCapacity on unknown link %d", id))
	}
	if capacity <= 0 {
		panic(fmt.Sprintf("netsim: non-positive capacity %v for link %s->%s", capacity, l.From, l.To))
	}
	if l.Capacity == capacity {
		return
	}
	l.Capacity = capacity
	n.snapCap = true
	n.dirtyLinks[id] = struct{}{}
	n.commit()
}

// SetMaxRate changes the per-flow rate bound and reallocates everything
// (every component depends on it).
func (n *Network) SetMaxRate(bps float64) {
	if bps <= 0 {
		panic(fmt.Sprintf("netsim: non-positive MaxRate %v", bps))
	}
	if n.MaxRate == bps {
		return
	}
	n.MaxRate = bps
	n.dirtyAll = true
	n.commit()
}

// Reallocate forces a full recomputation of every flow's rate immediately,
// regardless of dirty state or open batches. Normal mutations recompute
// incrementally on their own; this remains for benchmarks and as the
// fallback the incremental path takes for oversized components.
func (n *Network) Reallocate() {
	n.Reallocations++
	n.fullRealloc()
	n.clearDirty()
}

func (n *Network) clearDirty() {
	n.dirtyAll = false
	for id := range n.dirtyFlows {
		delete(n.dirtyFlows, id)
	}
	for id := range n.dirtyLinks {
		delete(n.dirtyLinks, id)
	}
}

// Auto-tuner constants: the cutoff chases a decayed maximum of observed
// affected-flow fractions, with headroom, clamped to a sane band.
const (
	autoTuneDecay  = 0.97
	autoTuneMargin = 1.15
	autoTuneMin    = 0.05
	autoTuneMax    = 0.90
)

// tuneObserve feeds one recomputation's affected-flow fraction to the
// auto-tuner and re-derives IncrementalCutoff.
func (n *Network) tuneObserve(frac float64) {
	n.tuneFrac *= autoTuneDecay
	if frac > n.tuneFrac {
		n.tuneFrac = frac
	}
	c := n.tuneFrac * autoTuneMargin
	if c < autoTuneMin {
		c = autoTuneMin
	}
	if c > autoTuneMax {
		c = autoTuneMax
	}
	n.IncrementalCutoff = c
}

// reallocate recomputes rates for the dirtied components, falling back to a
// full pass when the affected set exceeds IncrementalCutoff of all flows.
func (n *Network) reallocate() {
	n.Reallocations++
	if n.dirtyAll {
		if n.AutoTuneCutoff {
			n.tuneObserve(1)
		}
		n.fullRealloc()
		n.clearDirty()
		return
	}
	if n.UseRegistry {
		n.reallocateRegistry()
		return
	}
	// The BFS path doesn't maintain per-component snapshot chunks; any
	// published snapshot rebuilds its flow table from scratch.
	n.snapAllFlows = true

	// Seed the component search from explicitly dirtied flows and from
	// every flow crossing a dirtied link, deduplicated under one epoch.
	n.bumpEpoch()
	seeds := n.scratchSeeds[:0]
	for id := range n.dirtyFlows {
		if f, ok := n.flows[id]; ok && !n.flowSeen(f) {
			n.markFlow(f)
			seeds = append(seeds, f)
		}
	}
	for id := range n.dirtyLinks {
		for _, f := range n.linkFlows[id] {
			if !n.flowSeen(f) {
				n.markFlow(f)
				seeds = append(seeds, f)
			}
		}
	}
	n.scratchSeeds = seeds

	// Expand seeds to full components under a fresh epoch (seed marks
	// from the dedup pass above must not read as "already expanded").
	// Components land flat in scratchFlows/scratchLinks with per-component
	// end boundaries; seeds swallowed by an earlier expansion are skipped.
	n.bumpEpoch()
	flowsFlat := n.scratchFlows[:0]
	linksFlat := n.scratchLinks[:0]
	ends := n.scratchEnds[:0]
	full := false
	cutoff := int(n.IncrementalCutoff * float64(len(n.flows)))
	for _, seed := range seeds {
		if n.flowSeen(seed) {
			continue
		}
		flowsFlat, linksFlat = n.expand(seed, flowsFlat, linksFlat)
		ends = append(ends, [2]int{len(flowsFlat), len(linksFlat)})
		// Under auto-tuning, keep expanding so the tuner sees the true
		// affected fraction; the full-vs-incremental decision is made
		// afterwards against the freshly tuned cutoff.
		if !n.AutoTuneCutoff && len(flowsFlat) > cutoff {
			full = true
			break
		}
	}
	affected := len(flowsFlat)
	n.scratchFlows, n.scratchLinks, n.scratchEnds = flowsFlat, linksFlat, ends
	if n.AutoTuneCutoff {
		frac := 0.0
		if len(n.flows) > 0 {
			frac = float64(affected) / float64(len(n.flows))
		}
		n.tuneObserve(frac)
		cutoff = int(n.IncrementalCutoff * float64(len(n.flows)))
		full = affected > cutoff
	}
	if full {
		n.fullRealloc()
		n.clearDirty()
		return
	}
	n.IncrementalReallocations++
	f0, l0 := 0, 0
	for _, e := range ends {
		n.fill(flowsFlat[f0:e[0]], linksFlat[l0:e[1]])
		f0, l0 = e[0], e[1]
	}
	// A dirtied link that no longer carries any flow belongs to no
	// component; zero its stale allocation.
	for id := range n.dirtyLinks {
		if len(n.linkFlows[id]) == 0 {
			n.linkRate[id] = 0
			n.markRateDirty(id)
		}
	}
	n.clearDirty()
}

// flowIDCmp orders flows by ascending ID — the canonical component order.
func flowIDCmp(a, b *Flow) int {
	switch {
	case a.ID < b.ID:
		return -1
	case a.ID > b.ID:
		return 1
	default:
		return 0
	}
}

// expand grows the connected component containing seed — flow → its links →
// every flow on those links, transitively — appending members and links to
// the caller's buffers and returning them extended. Seen marks are epoch
// stamps: the caller bumps the epoch once per discovery pass, so nothing is
// cleared afterwards. The appended flow range is sorted by ID.
func (n *Network) expand(seed *Flow, flows []*Flow, links []LinkID) ([]*Flow, []LinkID) {
	f0 := len(flows)
	stack := append(n.scratchStack[:0], seed)
	n.markFlow(seed)
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		flows = append(flows, f)
		for _, l := range f.Path {
			if n.linkSeen(l.ID) {
				continue
			}
			n.markLink(l.ID)
			links = append(links, l.ID)
			for _, g := range n.linkFlows[l.ID] {
				if !n.flowSeen(g) {
					n.markFlow(g)
					stack = append(stack, g)
				}
			}
		}
	}
	n.scratchStack = stack
	slices.SortFunc(flows[f0:], flowIDCmp)
	return flows, links
}

// fullRealloc recomputes every component from scratch.
func (n *Network) fullRealloc() {
	n.rateAll = true
	n.snapAllFlows = true
	for i := range n.linkRate {
		n.linkRate[i] = 0
	}
	if len(n.flows) == 0 {
		return
	}
	// Deterministic component order: walk live arena slots by ascending
	// flow ID.
	idxs := n.scratchIdxs[:0]
	for i, f := range n.arFlow {
		if f != nil {
			idxs = append(idxs, int32(i))
		}
	}
	n.sortIdxsByID(idxs)
	n.scratchIdxs = idxs
	n.bumpEpoch()
	for _, i := range idxs {
		seed := n.arFlow[i]
		if n.flowSeen(seed) {
			continue
		}
		flows, links := n.expand(seed, n.scratchFlows[:0], n.scratchLinks[:0])
		n.scratchFlows, n.scratchLinks = flows, links
		n.fill(flows, links)
	}
}

// fill runs weighted max-min progressive filling over one link-connected
// component. flows must be sorted by ID and links must be exactly the links
// those flows cross; because components are link-disjoint, the result is
// independent of every other component. The fill level λ is in
// rate-per-weight units: an unfrozen flow's tentative rate is λ×weight, so
// at a shared bottleneck flows split capacity in proportion to their
// weights. Runs in O(iterations × links × flows) over the component, where
// iterations ≤ flows (see BenchmarkReallocate and
// BenchmarkReallocateIncremental).
//
// fill is a deterministic function of (flow IDs, paths, demands, weights,
// link capacities, MaxRate): recomputing an unchanged component reproduces
// its rates byte-identically, which is what the differential test in
// batch_test.go leans on. Under UseSoA the arithmetic runs over the arena's
// parallel arrays (fillSoA, arena.go); the float operations and their order
// are identical, so the two fillers are bit-identical.
func (n *Network) fill(flows []*Flow, links []LinkID) {
	if n.UseSoA {
		idxs := n.scratchFillIdxs[:0]
		for _, f := range flows {
			idxs = append(idxs, f.idx)
		}
		n.scratchFillIdxs = idxs
		n.fillSoA(idxs, links)
		return
	}
	n.fillRef(flows, links)
}

// fillRef is the pointer-walking reference filler; see fill.
func (n *Network) fillRef(flows []*Flow, links []LinkID) {
	n.FlowsRecomputed += uint64(len(flows))
	n.ComponentsRecomputed++
	avail, weight := n.scratchAvail, n.scratchWeight
	for _, id := range links {
		avail[id] = n.topo.links[id].Capacity
		weight[id] = 0
		n.linkRate[id] = 0
		n.markRateDirty(id)
	}
	for _, f := range flows {
		for _, l := range f.Path {
			weight[l.ID] += f.weight()
		}
	}

	n.growFillScratch(len(flows))
	rate := n.scratchRate[:len(flows)]
	frozen := n.scratchFrozen[:len(flows)]
	for i := range frozen {
		frozen[i] = false
	}
	unfrozen := len(flows)
	for unfrozen > 0 {
		// Fill level λ (rate per unit weight): the smallest over
		// links that carry unfrozen flows. Flows not constrained by
		// any link are bounded by MaxRate via the demand step below.
		level := math.Inf(1)
		for _, id := range links {
			if weight[id] > 0 {
				if s := avail[id] / weight[id]; s < level {
					level = s
				}
			}
		}
		// Flows whose capped demand is reached at or below the level
		// freeze at that demand.
		frozeAny := false
		for i, f := range flows {
			if frozen[i] {
				continue
			}
			w := f.weight()
			d := math.Min(f.Demand, n.MaxRate)
			if d/w <= level {
				rate[i] = d
				frozen[i] = true
				unfrozen--
				frozeAny = true
				for _, l := range f.Path {
					avail[l.ID] -= d
					if avail[l.ID] < 0 {
						avail[l.ID] = 0
					}
					weight[l.ID] -= w
					if weight[l.ID] < 0 {
						weight[l.ID] = 0
					}
				}
			}
		}
		if frozeAny {
			continue
		}
		// Otherwise freeze every unfrozen flow that crosses a
		// bottleneck link (a link whose fill level equals λ) at
		// λ×weight.
		const eps = 1e-9
		for i, f := range flows {
			if frozen[i] {
				continue
			}
			w := f.weight()
			bottlenecked := false
			for _, l := range f.Path {
				if weight[l.ID] > 0 && avail[l.ID]/weight[l.ID] <= level*(1+eps)+eps {
					bottlenecked = true
					break
				}
			}
			if bottlenecked {
				r := level * w
				rate[i] = r
				frozen[i] = true
				unfrozen--
				frozeAny = true
				for _, l := range f.Path {
					avail[l.ID] -= r
					if avail[l.ID] < 0 {
						avail[l.ID] = 0
					}
					weight[l.ID] -= w
					if weight[l.ID] < 0 {
						weight[l.ID] = 0
					}
				}
			}
		}
		if !frozeAny {
			// Cannot happen: some link always attains the level.
			panic("netsim: progressive filling made no progress")
		}
	}

	for i, f := range flows {
		f.Rate = rate[i]
		n.arRate[f.idx] = rate[i]
		for _, l := range f.Path {
			n.linkRate[l.ID] += rate[i]
		}
	}
}

// LinkRate returns the total allocated rate on a link in bits/s.
func (n *Network) LinkRate(id LinkID) float64 {
	if int(id) < 0 || int(id) >= len(n.linkRate) {
		return 0
	}
	return n.linkRate[id]
}

// Utilization returns allocated/capacity for a link, in [0,1].
func (n *Network) Utilization(id LinkID) float64 {
	l := n.topo.Link(id)
	if l == nil {
		return 0
	}
	return utilizationOf(n.linkRate[id], l.Capacity)
}

// FlowsOn returns the number of flows crossing a link.
func (n *Network) FlowsOn(id LinkID) int {
	if int(id) < 0 || int(id) >= len(n.linkFlows) {
		return 0
	}
	return len(n.linkFlows[id])
}

// ActiveFlowsOn returns the number of flows crossing a link with positive
// demand — what an operator sees as "currently sending" when sizing
// per-flow guidance.
func (n *Network) ActiveFlowsOn(id LinkID) int {
	if int(id) < 0 || int(id) >= len(n.linkFlows) {
		return 0
	}
	c := 0
	for _, f := range n.linkFlows[id] {
		if f.Demand > 0 {
			c++
		}
	}
	return c
}

// QueueDelay estimates the queueing delay added by a link at its current
// utilization, using a capped M/M/1-style growth curve: delay rises as
// util/(1-util), capped at 50× the propagation delay (a bufferbloat bound).
func (n *Network) QueueDelay(id LinkID) time.Duration {
	l := n.topo.Link(id)
	if l == nil {
		return 0
	}
	return queueDelayOf(n.Utilization(id), l.Delay)
}

// PathRTT returns the round-trip time of a path including queueing delay on
// the forward direction (the reverse/ACK direction is approximated as
// uncongested, which matches the download-dominated scenarios here).
func (n *Network) PathRTT(p Path) time.Duration {
	rtt := 2 * p.PropDelay()
	for _, l := range p {
		rtt += n.QueueDelay(l.ID)
	}
	return rtt
}

// LossRate estimates the packet loss probability on a link: zero below 90%
// utilization, rising quadratically to 5% at full utilization. This feeds
// the network-level features used by the inference baseline (Figure 4).
func (n *Network) LossRate(id LinkID) float64 {
	return lossRateOf(n.Utilization(id))
}

// PathLoss returns the combined loss probability along a path.
func (n *Network) PathLoss(p Path) float64 {
	keep := 1.0
	for _, l := range p {
		keep *= 1 - n.LossRate(l.ID)
	}
	return 1 - keep
}

// CongestionLevel classifies a link's utilization for I2A export.
type CongestionLevel int

const (
	// CongestionNone: utilization below 70%.
	CongestionNone CongestionLevel = iota
	// CongestionModerate: utilization in [70%, 90%).
	CongestionModerate
	// CongestionHigh: utilization in [90%, 98%).
	CongestionHigh
	// CongestionSevere: utilization at or above 98%.
	CongestionSevere
)

// String returns the lowercase name of the level.
func (c CongestionLevel) String() string {
	switch c {
	case CongestionNone:
		return "none"
	case CongestionModerate:
		return "moderate"
	case CongestionHigh:
		return "high"
	case CongestionSevere:
		return "severe"
	default:
		return fmt.Sprintf("CongestionLevel(%d)", int(c))
	}
}

// Congestion classifies the current utilization of a link.
func (n *Network) Congestion(id LinkID) CongestionLevel {
	return congestionOf(n.Utilization(id))
}

// Headroom returns the unallocated capacity of a link in bits/s.
func (n *Network) Headroom(id LinkID) float64 {
	l := n.topo.Link(id)
	if l == nil {
		return 0
	}
	h := l.Capacity - n.linkRate[id]
	if h < 0 {
		h = 0
	}
	return h
}

// NoteCoalescedReactions adds k to the CoalescedReactions counter. Control
// loops call this (rather than writing the field) so the accounting has a
// single entry point that SharedNetwork.Batch can route through its owner
// goroutine.
func (n *Network) NoteCoalescedReactions(k uint64) {
	n.CoalescedReactions += k
}
