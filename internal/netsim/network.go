package netsim

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// FlowID identifies an active flow.
type FlowID int64

// Flow is a fluid flow over a path. Rate is maintained by the Network's
// max-min fair allocator; callers read it, never write it.
type Flow struct {
	ID   FlowID
	Path Path
	// Demand is the application-limited sending rate ceiling in bits/s.
	// Use math.Inf(1) (or Network.MaxRate) for a greedy flow such as a
	// video segment download.
	Demand float64
	// Rate is the currently allocated rate in bits/s.
	Rate float64
	// Weight scales the flow's share under contention (weighted max-min:
	// a weight-2 flow gets twice a weight-1 flow's share at a shared
	// bottleneck). Zero or negative means 1. Set via SetWeight.
	Weight float64
	// Tag is an opaque scenario label ("cdnX", "appP2") used by
	// experiments to group flows when reading link statistics.
	Tag string
}

func (f *Flow) weight() float64 {
	if f.Weight <= 0 {
		return 1
	}
	return f.Weight
}

// DefaultMaxRate caps greedy flows at a last-mile/NIC limit so that every
// allocation is finite even on an empty path. 1 Gbps.
const DefaultMaxRate = 1e9

// Network owns a topology plus the set of active flows and keeps flow rates
// max-min fair. It is not safe for concurrent use; all EONA experiments
// drive it from a single simulator goroutine.
type Network struct {
	topo  *Topology
	flows map[FlowID]*Flow
	// linkRate[l] is the current total allocated rate on link l.
	linkRate []float64
	nextID   FlowID
	// MaxRate bounds every flow's rate (models the client NIC / last
	// hop). Defaults to DefaultMaxRate.
	MaxRate float64
	// Reallocations counts fair-share recomputations, for benchmarks.
	Reallocations uint64
}

// NewNetwork wraps a topology. The topology must not gain links afterwards.
func NewNetwork(t *Topology) *Network {
	return &Network{
		topo:     t,
		flows:    make(map[FlowID]*Flow),
		linkRate: make([]float64, t.NumLinks()),
		MaxRate:  DefaultMaxRate,
	}
}

// Topology returns the underlying topology.
func (n *Network) Topology() *Topology { return n.topo }

// NumFlows returns the number of active flows.
func (n *Network) NumFlows() int { return len(n.flows) }

// StartFlow attaches a flow on path with the given demand and tag, then
// reallocates. The path must be connected (panics otherwise: a disconnected
// path is a scenario bug, not a runtime condition).
func (n *Network) StartFlow(path Path, demand float64, tag string) *Flow {
	if !path.Valid("", "") {
		panic(fmt.Sprintf("netsim: disconnected path %v", path))
	}
	if demand < 0 {
		demand = 0
	}
	f := &Flow{ID: n.nextID, Path: path, Demand: demand, Tag: tag}
	n.nextID++
	n.flows[f.ID] = f
	n.Reallocate()
	return f
}

// StopFlow detaches a flow and reallocates. Stopping an unknown or
// already-stopped flow is a no-op.
func (n *Network) StopFlow(f *Flow) {
	if f == nil {
		return
	}
	if _, ok := n.flows[f.ID]; !ok {
		return
	}
	delete(n.flows, f.ID)
	f.Rate = 0
	n.Reallocate()
}

// SetDemand updates a flow's demand ceiling and reallocates.
func (n *Network) SetDemand(f *Flow, demand float64) {
	if demand < 0 {
		demand = 0
	}
	if f.Demand == demand {
		return
	}
	f.Demand = demand
	n.Reallocate()
}

// SetWeight updates a flow's fair-share weight and reallocates.
func (n *Network) SetWeight(f *Flow, weight float64) {
	if f.Weight == weight {
		return
	}
	f.Weight = weight
	n.Reallocate()
}

// SetPath re-routes a flow (e.g., after an ISP egress change) and
// reallocates.
func (n *Network) SetPath(f *Flow, path Path) {
	if !path.Valid("", "") {
		panic(fmt.Sprintf("netsim: disconnected path %v", path))
	}
	f.Path = path
	n.Reallocate()
}

// SetLinkCapacity changes a link's capacity at runtime (maintenance,
// degradation, an upgrade) and reallocates. Capacity must stay positive —
// model a dead link as a tiny capacity (flows stay routed but starve),
// or re-path flows off it.
func (n *Network) SetLinkCapacity(id LinkID, capacity float64) {
	l := n.topo.Link(id)
	if l == nil {
		panic(fmt.Sprintf("netsim: SetLinkCapacity on unknown link %d", id))
	}
	if capacity <= 0 {
		panic(fmt.Sprintf("netsim: non-positive capacity %v for link %s->%s", capacity, l.From, l.To))
	}
	if l.Capacity == capacity {
		return
	}
	l.Capacity = capacity
	n.Reallocate()
}

// Reallocate recomputes all flow rates by progressive filling — weighted
// max-min fairness with demand caps. The fill level λ is in rate-per-weight
// units: an unfrozen flow's tentative rate is λ×weight, so at a shared
// bottleneck flows split capacity in proportion to their weights. Runs in
// O(iterations × links × flows) where iterations ≤ flows; topologies in
// this repo are small enough that this is never the bottleneck (see
// BenchmarkReallocate).
func (n *Network) Reallocate() {
	n.Reallocations++
	for i := range n.linkRate {
		n.linkRate[i] = 0
	}
	if len(n.flows) == 0 {
		return
	}

	// Deterministic flow order.
	flows := make([]*Flow, 0, len(n.flows))
	for _, f := range n.flows {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i].ID < flows[j].ID })

	rate := make([]float64, len(flows))        // working rates
	frozen := make([]bool, len(flows))         // flow finished?
	avail := make([]float64, len(n.linkRate))  // remaining link capacity
	weight := make([]float64, len(n.linkRate)) // unfrozen weight per link
	for i, l := range n.topo.Links() {
		avail[i] = l.Capacity
		_ = l
	}
	for _, f := range flows {
		for _, l := range f.Path {
			weight[l.ID] += f.weight()
		}
	}

	unfrozen := len(flows)
	for unfrozen > 0 {
		// Fill level λ (rate per unit weight): the smallest over
		// links that carry unfrozen flows. Flows not constrained by
		// any link are bounded by MaxRate via the demand step below.
		level := math.Inf(1)
		for i := range avail {
			if weight[i] > 0 {
				if s := avail[i] / weight[i]; s < level {
					level = s
				}
			}
		}
		// Flows whose capped demand is reached at or below the level
		// freeze at that demand.
		frozeAny := false
		for i, f := range flows {
			if frozen[i] {
				continue
			}
			w := f.weight()
			d := math.Min(f.Demand, n.MaxRate)
			if d/w <= level {
				rate[i] = d
				frozen[i] = true
				unfrozen--
				frozeAny = true
				for _, l := range f.Path {
					avail[l.ID] -= d
					if avail[l.ID] < 0 {
						avail[l.ID] = 0
					}
					weight[l.ID] -= w
					if weight[l.ID] < 0 {
						weight[l.ID] = 0
					}
				}
			}
		}
		if frozeAny {
			continue
		}
		// Otherwise freeze every unfrozen flow that crosses a
		// bottleneck link (a link whose fill level equals λ) at
		// λ×weight.
		const eps = 1e-9
		for i, f := range flows {
			if frozen[i] {
				continue
			}
			w := f.weight()
			bottlenecked := false
			for _, l := range f.Path {
				if weight[l.ID] > 0 && avail[l.ID]/weight[l.ID] <= level*(1+eps)+eps {
					bottlenecked = true
					break
				}
			}
			if bottlenecked {
				r := level * w
				rate[i] = r
				frozen[i] = true
				unfrozen--
				frozeAny = true
				for _, l := range f.Path {
					avail[l.ID] -= r
					if avail[l.ID] < 0 {
						avail[l.ID] = 0
					}
					weight[l.ID] -= w
					if weight[l.ID] < 0 {
						weight[l.ID] = 0
					}
				}
			}
		}
		if !frozeAny {
			// Cannot happen: some link always attains the level.
			panic("netsim: progressive filling made no progress")
		}
	}

	for i, f := range flows {
		f.Rate = rate[i]
		for _, l := range f.Path {
			n.linkRate[l.ID] += rate[i]
		}
	}
}

// LinkRate returns the total allocated rate on a link in bits/s.
func (n *Network) LinkRate(id LinkID) float64 {
	if int(id) < 0 || int(id) >= len(n.linkRate) {
		return 0
	}
	return n.linkRate[id]
}

// Utilization returns allocated/capacity for a link, in [0,1].
func (n *Network) Utilization(id LinkID) float64 {
	l := n.topo.Link(id)
	if l == nil {
		return 0
	}
	u := n.linkRate[id] / l.Capacity
	if u > 1 {
		u = 1 // numerical safety; allocation never exceeds capacity
	}
	return u
}

// FlowsOn returns the number of flows crossing a link.
func (n *Network) FlowsOn(id LinkID) int {
	c := 0
	for _, f := range n.flows {
		for _, l := range f.Path {
			if l.ID == id {
				c++
				break
			}
		}
	}
	return c
}

// ActiveFlowsOn returns the number of flows crossing a link with positive
// demand — what an operator sees as "currently sending" when sizing
// per-flow guidance.
func (n *Network) ActiveFlowsOn(id LinkID) int {
	c := 0
	for _, f := range n.flows {
		if f.Demand <= 0 {
			continue
		}
		for _, l := range f.Path {
			if l.ID == id {
				c++
				break
			}
		}
	}
	return c
}

// QueueDelay estimates the queueing delay added by a link at its current
// utilization, using a capped M/M/1-style growth curve: delay rises as
// util/(1-util), capped at 50× the propagation delay (a bufferbloat bound).
func (n *Network) QueueDelay(id LinkID) time.Duration {
	l := n.topo.Link(id)
	if l == nil {
		return 0
	}
	u := n.Utilization(id)
	if u >= 0.999 {
		u = 0.999
	}
	base := l.Delay
	if base == 0 {
		base = time.Millisecond
	}
	q := time.Duration(float64(base) * 0.5 * u / (1 - u))
	if max := 50 * base; q > max {
		q = max
	}
	return q
}

// PathRTT returns the round-trip time of a path including queueing delay on
// the forward direction (the reverse/ACK direction is approximated as
// uncongested, which matches the download-dominated scenarios here).
func (n *Network) PathRTT(p Path) time.Duration {
	rtt := 2 * p.PropDelay()
	for _, l := range p {
		rtt += n.QueueDelay(l.ID)
	}
	return rtt
}

// LossRate estimates the packet loss probability on a link: zero below 90%
// utilization, rising quadratically to 5% at full utilization. This feeds
// the network-level features used by the inference baseline (Figure 4).
func (n *Network) LossRate(id LinkID) float64 {
	u := n.Utilization(id)
	if u <= 0.9 {
		return 0
	}
	x := (u - 0.9) / 0.1
	return 0.05 * x * x
}

// PathLoss returns the combined loss probability along a path.
func (n *Network) PathLoss(p Path) float64 {
	keep := 1.0
	for _, l := range p {
		keep *= 1 - n.LossRate(l.ID)
	}
	return 1 - keep
}

// CongestionLevel classifies a link's utilization for I2A export.
type CongestionLevel int

const (
	// CongestionNone: utilization below 70%.
	CongestionNone CongestionLevel = iota
	// CongestionModerate: utilization in [70%, 90%).
	CongestionModerate
	// CongestionHigh: utilization in [90%, 98%).
	CongestionHigh
	// CongestionSevere: utilization at or above 98%.
	CongestionSevere
)

// String returns the lowercase name of the level.
func (c CongestionLevel) String() string {
	switch c {
	case CongestionNone:
		return "none"
	case CongestionModerate:
		return "moderate"
	case CongestionHigh:
		return "high"
	case CongestionSevere:
		return "severe"
	default:
		return fmt.Sprintf("CongestionLevel(%d)", int(c))
	}
}

// Congestion classifies the current utilization of a link.
func (n *Network) Congestion(id LinkID) CongestionLevel {
	u := n.Utilization(id)
	switch {
	case u >= 0.98:
		return CongestionSevere
	case u >= 0.90:
		return CongestionHigh
	case u >= 0.70:
		return CongestionModerate
	default:
		return CongestionNone
	}
}

// Headroom returns the unallocated capacity of a link in bits/s.
func (n *Network) Headroom(id LinkID) float64 {
	l := n.topo.Link(id)
	if l == nil {
		return 0
	}
	h := l.Capacity - n.linkRate[id]
	if h < 0 {
		h = 0
	}
	return h
}
