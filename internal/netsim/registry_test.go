package netsim

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// --- Registry/SoA ≡ BFS differential on the existing topology fixtures -----

// runRegistryDifferential drives four mirror networks — every combination of
// {registry, BFS} × {SoA fill, reference fill} — through an identical
// randomized mutation sequence over the fixture's path set, asserting after
// every mutation that every flow rate and every link rate agrees exactly,
// bit for bit, across all four. The registry+SoA mirror is the production
// configuration; the BFS+reference mirror is the simplest possible oracle.
func runRegistryDifferential(t *testing.T, seed int64, build func() (*Network, []Path)) uint64 {
	t.Helper()
	type mirror struct {
		n     *Network
		paths []Path
		flows []*Flow
	}
	mirrors := make([]*mirror, 4)
	for i := range mirrors {
		n, paths := build()
		n.UseRegistry = i < 2
		n.UseSoA = i%2 == 0
		mirrors[i] = &mirror{n: n, paths: paths}
	}
	ref := mirrors[0]
	rng := rand.New(rand.NewSource(seed))
	nflows := 0
	for step := 0; step < 400; step++ {
		op := rng.Intn(5)
		if nflows == 0 {
			op = 0
		}
		pi := rng.Intn(len(ref.paths))
		val := float64(1+rng.Intn(300)) * 1e0
		if rng.Intn(5) == 0 {
			val = math.Inf(1)
		}
		fi, w := 0, 0.0
		if nflows > 0 {
			fi = rng.Intn(nflows)
		}
		if op == 3 {
			w = float64(1 + rng.Intn(4))
		}
		for _, m := range mirrors {
			switch op {
			case 0:
				m.flows = append(m.flows, m.n.StartFlow(m.paths[pi], val, ""))
			case 1:
				m.n.StopFlow(m.flows[fi])
			case 2:
				m.n.SetDemand(m.flows[fi], val)
			case 3:
				m.n.SetWeight(m.flows[fi], w)
			case 4:
				m.n.SetPath(m.flows[fi], m.paths[pi])
			}
		}
		if op == 0 {
			nflows++
		}
		for _, m := range mirrors[1:] {
			for i := range ref.flows {
				if ref.flows[i].Rate != m.flows[i].Rate {
					t.Fatalf("step %d flow %d: registry+SoA rate %v != mirror(reg=%v soa=%v) rate %v",
						step, i, ref.flows[i].Rate, m.n.UseRegistry, m.n.UseSoA, m.flows[i].Rate)
				}
			}
			for id := 0; id < ref.n.Topology().NumLinks(); id++ {
				if ref.n.LinkRate(LinkID(id)) != m.n.LinkRate(LinkID(id)) {
					t.Fatalf("step %d link %d: registry+SoA %v != mirror(reg=%v soa=%v) %v", step, id,
						ref.n.LinkRate(LinkID(id)), m.n.UseRegistry, m.n.UseSoA, m.n.LinkRate(LinkID(id)))
				}
			}
		}
	}
	return ref.n.IncrementalReallocations
}

// diffFixtures is the topology fixture set every differential test runs
// over: a deep line, parallel rails with sub-paths, the E1 scenario topology
// and a hub-and-spokes star with skewed capacities.
func diffFixtures() map[string]func() (*Network, []Path) {
	return map[string]func() (*Network, []Path){
		"line": func() (*Network, []Path) {
			topo, p := line(100)
			return NewNetwork(topo), []Path{p}
		},
		"rails": func() (*Network, []Path) {
			topo, links := rails(4, 3, 90)
			n := NewNetwork(topo)
			var ps []Path
			for i := range links {
				ps = append(ps,
					Path(links[i]),
					Path{links[i][0]},
					Path{links[i][1], links[i][2]})
			}
			return n, ps
		},
		"e1": func() (*Network, []Path) {
			n, p1, p2 := e1SetupTopology()
			return n, []Path{p1, p2}
		},
		"skewed": func() (*Network, []Path) {
			topo := NewTopology()
			hub := topo.AddLink("hubA", "hubB", 1000, time.Millisecond, "")
			ps := []Path{{hub}}
			for i := 0; i < 4; i++ {
				from := NodeID(rune('a' + i))
				to := NodeID(rune('A' + i))
				ps = append(ps, Path{topo.AddLink(from, to, 90, time.Millisecond, "")})
			}
			return NewNetwork(topo), ps
		},
	}
}

func TestRegistryDifferentialOnFixtures(t *testing.T) {
	// Single-component fixtures (line, e1 under heavy sharing) legitimately
	// never take the incremental path; assert it was exercised somewhere
	// across the fixture set rather than per fixture.
	var incremental uint64
	for name, build := range diffFixtures() {
		build := build
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 5; seed++ {
				incremental += runRegistryDifferential(t, seed, build)
			}
		})
	}
	if incremental == 0 {
		t.Error("registry incremental path never exercised across any fixture")
	}
}

// --- Registry invalidation under nested batches ----------------------------

// SetPath inside a nested batch moves flows between components; the commit
// at the outermost EndBatch must see coherent membership and cost exactly
// one reallocation.
func TestRegistrySetPathInsideNestedBatch(t *testing.T) {
	build := func() (*Network, [][]*Link, []*Flow) {
		topo, links := rails(3, 2, 90)
		n := NewNetwork(topo)
		var flows []*Flow
		n.Batch(func() {
			for i := range links {
				for k := 0; k < 3; k++ {
					flows = append(flows, n.StartFlow(Path(links[i]), math.Inf(1), ""))
				}
			}
		})
		return n, links, flows
	}
	mutate := func(n *Network, links [][]*Link, flows []*Flow) {
		n.Batch(func() {
			n.SetDemand(flows[0], 5)
			n.Batch(func() {
				n.SetPath(flows[1], Path(links[1]))    // rail 0 → rail 1
				n.SetPath(flows[4], Path{links[2][1]}) // rail 1 → rail 2 suffix
				n.StopFlow(flows[2])
			})
			n.StartFlow(Path{links[0][0]}, 40, "")
		})
	}

	n, links, flows := build()
	before := n.Reallocations
	mutate(n, links, flows)
	if got := n.Reallocations - before; got != 1 {
		t.Errorf("nested batch cost %d reallocations, want 1", got)
	}

	ref, refLinks, refFlows := build()
	ref.IncrementalCutoff = 0
	mutate(ref, refLinks, refFlows)
	ref.Reallocate()
	for i := range flows {
		if flows[i].Rate != refFlows[i].Rate {
			t.Errorf("flow %d: rate %v != reference %v", i, flows[i].Rate, refFlows[i].Rate)
		}
	}
}

// Stopping and restarting flows on the same path must keep membership
// coherent without ever re-splitting: the surviving flows still cover the
// whole path, which the cheap removal check proves.
func TestRegistryStopThenRestart(t *testing.T) {
	topo, links := rails(2, 2, 90)
	n := NewNetwork(topo)
	var flows []*Flow
	n.Batch(func() {
		for i := range links {
			for k := 0; k < 4; k++ {
				flows = append(flows, n.StartFlow(Path(links[i]), math.Inf(1), ""))
			}
		}
	})
	for round := 0; round < 10; round++ {
		idx := round % len(flows)
		old := flows[idx]
		n.Batch(func() {
			n.StopFlow(old)
			flows[idx] = n.StartFlow(old.Path, math.Inf(1), "")
		})
	}
	if n.RegistryRebuilds != 0 {
		t.Errorf("identical-path stop/restart churn caused %d rebuilds, want 0", n.RegistryRebuilds)
	}
	// All four flows per rail share the 90-capacity rail equally.
	for i, f := range flows {
		if !almostEq(f.Rate, 22.5) {
			t.Errorf("flow %d rate = %v, want 22.5", i, f.Rate)
		}
	}
}

// When the last flows stop, their components must be dropped entirely —
// long-running sims must not accumulate empty component husks.
func TestRegistryEmptyComponentCleanup(t *testing.T) {
	topo, links := rails(3, 2, 90)
	n := NewNetwork(topo)
	var flows []*Flow
	n.Batch(func() {
		for i := range links {
			for k := 0; k < 2; k++ {
				flows = append(flows, n.StartFlow(Path(links[i]), 30, ""))
			}
		}
	})
	if len(n.comp) != len(flows) {
		t.Fatalf("registry tracks %d flows, want %d", len(n.comp), len(flows))
	}
	n.Batch(func() {
		for _, f := range flows {
			n.StopFlow(f)
		}
	})
	if len(n.comp) != 0 {
		t.Errorf("registry still tracks %d flows after all stopped", len(n.comp))
	}
	for id := 0; id < topo.NumLinks(); id++ {
		if n.LinkRate(LinkID(id)) != 0 {
			t.Errorf("link %d rate = %v after all flows stopped", id, n.LinkRate(LinkID(id)))
		}
	}
}

// --- Lazy re-split ----------------------------------------------------------

// Removing a bridge flow splits its component; the registry must detect the
// possible split (one rebuild), produce exact components, and from then on
// keep unrelated halves untouched.
func TestRegistryBridgeRemovalSplits(t *testing.T) {
	topo := NewTopology()
	a := topo.AddLink("A", "B", 100, time.Millisecond, "")
	b := topo.AddLink("B", "C", 200, time.Millisecond, "")
	n := NewNetwork(topo)
	f1 := n.StartFlow(Path{a}, math.Inf(1), "")
	f2 := n.StartFlow(Path{b}, math.Inf(1), "")
	bridge := n.StartFlow(Path{a, b}, math.Inf(1), "")
	if !almostEq(f1.Rate, 50) || !almostEq(bridge.Rate, 50) || !almostEq(f2.Rate, 150) {
		t.Fatalf("pre-split rates = %v %v %v", f1.Rate, f2.Rate, bridge.Rate)
	}
	n.StopFlow(bridge)
	if n.RegistryRebuilds != 1 {
		t.Errorf("bridge removal caused %d rebuilds, want 1", n.RegistryRebuilds)
	}
	if !almostEq(f1.Rate, 100) || !almostEq(f2.Rate, 200) {
		t.Errorf("post-split rates = %v %v, want 100 200", f1.Rate, f2.Rate)
	}
	// The halves are now separate components: churning one must not
	// rewrite the other's bits.
	before := f2.Rate
	inc := n.IncrementalReallocations
	n.SetDemand(f1, 7)
	if n.IncrementalReallocations != inc+1 {
		t.Error("post-split mutation did not take the incremental path")
	}
	if f2.Rate != before {
		t.Errorf("churn in split-off half disturbed the other: %v -> %v", before, f2.Rate)
	}
	if !almostEq(f1.Rate, 7) {
		t.Errorf("f1 rate = %v, want 7", f1.Rate)
	}
}

// A removal whose surviving co-flows provably keep the component connected
// (the cover check) must not rebuild at all.
func TestRegistryNoRebuildWhenCovered(t *testing.T) {
	topo, links := rails(1, 3, 90)
	n := NewNetwork(topo)
	full := Path(links[0])
	cover := n.StartFlow(full, math.Inf(1), "") // spans every link
	mid := n.StartFlow(Path{links[0][1]}, math.Inf(1), "")
	span := n.StartFlow(full, math.Inf(1), "")
	n.StopFlow(span) // cover still spans all populated links: no split possible
	if n.RegistryRebuilds != 0 {
		t.Errorf("covered removal caused %d rebuilds, want 0", n.RegistryRebuilds)
	}
	if !almostEq(cover.Rate, 45) || !almostEq(mid.Rate, 45) {
		t.Errorf("rates = %v %v, want 45 45", cover.Rate, mid.Rate)
	}
}

// --- Per-component auto-tuning ---------------------------------------------

// A wide batch touching many small components must not inflate the
// auto-tuned cutoff the way one genuinely large component should: the
// registry feeds per-component fractions, the BFS path can only feed the
// batch sum.
func TestRegistryAutoTunePerComponent(t *testing.T) {
	build := func(useRegistry bool) (*Network, []*Flow) {
		topo, links := rails(10, 1, 90)
		n := NewNetwork(topo)
		n.UseRegistry = useRegistry
		n.AutoTuneCutoff = true
		var flows []*Flow
		n.Batch(func() {
			for i := range links {
				for k := 0; k < 4; k++ {
					flows = append(flows, n.StartFlow(Path(links[i]), math.Inf(1), ""))
				}
			}
		})
		return n, flows
	}
	reg, regFlows := build(true)
	bfs, bfsFlows := build(false)
	// One flow in each of 8 rails: 8 components × 4 flows = 80% of all
	// flows in one batch, but no single component above 10%.
	churn := func(n *Network, flows []*Flow, val float64) {
		n.Batch(func() {
			for rail := 0; rail < 8; rail++ {
				n.SetDemand(flows[rail*4], val)
			}
		})
	}
	for i := 0; i < 5; i++ {
		churn(reg, regFlows, float64(10+i))
		churn(bfs, bfsFlows, float64(10+i))
	}
	if reg.IncrementalCutoff >= bfs.IncrementalCutoff {
		t.Errorf("per-component cutoff %v not tighter than batch-sum cutoff %v",
			reg.IncrementalCutoff, bfs.IncrementalCutoff)
	}
	if reg.IncrementalCutoff > 0.2 {
		t.Errorf("per-component cutoff %v, want ≤ 0.2 with no component above 10%%", reg.IncrementalCutoff)
	}
	for i := range regFlows {
		if regFlows[i].Rate != bfsFlows[i].Rate {
			t.Fatalf("flow %d: registry rate %v != BFS rate %v", i, regFlows[i].Rate, bfsFlows[i].Rate)
		}
	}
}

// --- Stats snapshot ---------------------------------------------------------

func TestStatsSnapshot(t *testing.T) {
	topo, links := rails(2, 2, 90)
	n := NewNetwork(topo)
	f := n.StartFlow(Path(links[0]), math.Inf(1), "")
	n.StartFlow(Path(links[1]), math.Inf(1), "")
	n.SetDemand(f, 30)
	st := n.Stats()
	if st.Reallocations != n.Reallocations || st.IncrementalReallocations != n.IncrementalReallocations ||
		st.FlowsRecomputed != n.FlowsRecomputed || st.ComponentsRecomputed != n.ComponentsRecomputed ||
		st.RegistryRebuilds != n.RegistryRebuilds || st.CoalescedReactions != n.CoalescedReactions {
		t.Errorf("snapshot %+v diverges from counters", st)
	}
	if st.Reallocations != 3 {
		t.Errorf("Reallocations = %d, want 3", st.Reallocations)
	}
	if st.FlowsRecomputed == 0 || st.ComponentsRecomputed == 0 {
		t.Error("work counters stayed zero")
	}
	if st.CoalescedReactions != 0 {
		t.Error("CoalescedReactions nonzero without a coalescer")
	}
}

// --- Benchmarks -------------------------------------------------------------

// BenchmarkChurnDiscovery measures single-mutation commits on the 64×3-rail
// topology (512 flows in 64 components): registry vs BFS dirty-set
// discovery. The fill work is identical — one 8-flow component per op — so
// the delta is pure discovery cost.
func BenchmarkChurnDiscovery(b *testing.B) {
	run := func(b *testing.B, useRegistry bool) {
		topo, links := rails(64, 3, 1e8)
		n := NewNetwork(topo)
		n.UseRegistry = useRegistry
		var flows []*Flow
		n.Batch(func() {
			for i := range links {
				for k := 0; k < 8; k++ {
					flows = append(flows, n.StartFlow(Path(links[i]), 1e6*float64(1+k), ""))
				}
			}
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n.SetDemand(flows[i%len(flows)], 1e6*float64(1+(i+i/len(flows))%16))
		}
		b.ReportMetric(float64(n.FlowsRecomputed)/float64(b.N), "flows-recomputed/op")
	}
	b.Run("registry", func(b *testing.B) { run(b, true) })
	b.Run("bfs", func(b *testing.B) { run(b, false) })
}

// BenchmarkChurnLifecycle exercises the registry's maintenance path:
// stop+restart of a flow per op (the session-arrival/departure shape), where
// the registry must remove and re-union membership while proving no split.
func BenchmarkChurnLifecycle(b *testing.B) {
	run := func(b *testing.B, useRegistry bool) {
		topo, links := rails(64, 3, 1e8)
		n := NewNetwork(topo)
		n.UseRegistry = useRegistry
		var flows []*Flow
		n.Batch(func() {
			for i := range links {
				for k := 0; k < 8; k++ {
					flows = append(flows, n.StartFlow(Path(links[i]), 1e6*float64(1+k), ""))
				}
			}
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			idx := i % len(flows)
			old := flows[idx]
			n.Batch(func() {
				n.StopFlow(old)
				flows[idx] = n.StartFlow(old.Path, old.Demand, "")
			})
		}
		b.StopTimer()
		b.ReportMetric(float64(n.RegistryRebuilds)/float64(b.N), "rebuilds/op")
	}
	b.Run("registry", func(b *testing.B) { run(b, true) })
	b.Run("bfs", func(b *testing.B) { run(b, false) })
}
