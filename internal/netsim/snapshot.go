package netsim

import "time"

// Reader is the read surface shared by the live *Network, an immutable
// *Snapshot of it, and a *SharedNetwork (which serves every read from its
// latest published snapshot). Control loops, the I2A looking glass and the
// ISP report code are written against Reader so the same logic runs
// single-threaded over a Network or lock-free over a snapshot.
type Reader interface {
	LinkRate(LinkID) float64
	Utilization(LinkID) float64
	Congestion(LinkID) CongestionLevel
	Headroom(LinkID) float64
	QueueDelay(LinkID) time.Duration
	PathRTT(Path) time.Duration
	LossRate(LinkID) float64
	PathLoss(Path) float64
	FlowsOn(LinkID) int
	ActiveFlowsOn(LinkID) int
	NumFlows() int
	Stats() Stats
}

var (
	_ Reader = (*Network)(nil)
	_ Reader = (*Snapshot)(nil)
	_ Reader = (*SharedNetwork)(nil)
)

// Shared read-model formulas. Network and Snapshot answer every derived
// read (utilization, congestion class, queue delay, loss) through these
// helpers so the two surfaces cannot drift.

func utilizationOf(rate, capacity float64) float64 {
	if capacity <= 0 {
		return 0
	}
	u := rate / capacity
	if u > 1 {
		u = 1 // numerical safety; allocation never exceeds capacity
	}
	return u
}

// queueDelayOf estimates the queueing delay added by a link at utilization
// u, using a capped M/M/1-style growth curve: delay rises as util/(1-util),
// capped at 50× the propagation delay (a bufferbloat bound).
func queueDelayOf(u float64, base time.Duration) time.Duration {
	if u >= 0.999 {
		u = 0.999
	}
	if base == 0 {
		base = time.Millisecond
	}
	q := time.Duration(float64(base) * 0.5 * u / (1 - u))
	if max := 50 * base; q > max {
		q = max
	}
	return q
}

// lossRateOf estimates the packet loss probability at utilization u: zero
// below 90%, rising quadratically to 5% at full utilization.
func lossRateOf(u float64) float64 {
	if u <= 0.9 {
		return 0
	}
	x := (u - 0.9) / 0.1
	return 0.05 * x * x
}

// congestionOf classifies utilization for I2A export.
func congestionOf(u float64) CongestionLevel {
	switch {
	case u >= 0.98:
		return CongestionSevere
	case u >= 0.90:
		return CongestionHigh
	case u >= 0.70:
		return CongestionModerate
	default:
		return CongestionNone
	}
}

// FlowView is a flow's state frozen into a Snapshot.
type FlowView struct {
	ID     FlowID
	Rate   float64
	Demand float64
	Weight float64
	Tag    string
}

// flowChunk is one registry component's flows frozen at snapshot time,
// sorted by ascending flow ID. Chunks are immutable once built, so
// consecutive snapshots share the chunks of components untouched between
// them. The static fields (ID, Weight, Tag) live in views; Rate and Demand
// live in dyn, so a pure re-fill — by far the hottest publish — shares the
// views slice and rebuilds only the two floats per flow.
type flowChunk struct {
	views []FlowView // static fields; Rate/Demand left zero
	dyn   []float64  // [rate, demand] per flow, same order as views
}

func (ch *flowChunk) view(pos int) FlowView {
	v := ch.views[pos]
	v.Rate = ch.dyn[2*pos]
	v.Demand = ch.dyn[2*pos+1]
	return v
}

// flowTable is a snapshot's flow set: per-component chunks indexed by the
// component's slot, plus an ID index packing slot<<32|pos. The index is
// shared across snapshots while membership is unchanged — a pure re-fill
// keeps every view at the same (slot, pos) because chunk order is sorted by
// ID and membership didn't move.
type flowTable struct {
	count  int
	chunks []*flowChunk     // by slot; nil for free slots
	index  map[FlowID]int64 // id → slot<<32 | pos
}

func (t *flowTable) lookup(id FlowID) (FlowView, bool) {
	packed, ok := t.index[id]
	if !ok {
		return FlowView{}, false
	}
	return t.chunks[packed>>32].view(int(packed & 0xffffffff)), true
}

// ratePatch is one changed link rate relative to a snapshot's shared base
// array: consecutive snapshots under steady churn share the base and carry
// only the dirtied component's links as a patch, compacted back into a
// fresh base once the patch would exceed maxRatePatch.
type ratePatch struct {
	id  LinkID
	val float64
}

// maxRatePatch bounds the patch overlay (and so the per-read scan).
const maxRatePatch = 16

// --- component slot / chunk-dirty bookkeeping (Network side) ---------------

// newComp takes a component husk from the pool (or allocates one) and
// assigns it a snapshot chunk slot.
func (n *Network) newComp() *component {
	var c *component
	if k := len(n.compPool); k > 0 {
		c = n.compPool[k-1]
		n.compPool = n.compPool[:k-1]
	} else {
		c = &component{flows: make(map[FlowID]*Flow)}
	}
	c.stale, c.mark = false, false
	n.assignSlot(c)
	return c
}

// retireComp frees a component's slot and parks its cleared husk in the
// pool. The component must no longer be reachable from n.comp.
func (n *Network) retireComp(c *component) {
	n.freeSlot(c)
	clear(c.flows)
	c.stale, c.mark = false, false
	n.compPool = append(n.compPool, c)
}

func (n *Network) assignSlot(c *component) {
	if k := len(n.slotFree); k > 0 {
		s := n.slotFree[k-1]
		n.slotFree = n.slotFree[:k-1]
		c.slot = s
		n.slotComp[s] = c
	} else {
		c.slot = int32(len(n.slotComp))
		n.slotComp = append(n.slotComp, c)
		n.chunkDirty = append(n.chunkDirty, false)
		n.chunkStatic = append(n.chunkStatic, false)
	}
	n.markChunkStatic(c)
}

func (n *Network) freeSlot(c *component) {
	s := c.slot
	n.slotComp[s] = nil
	if n.chunkDirty[s] {
		n.chunkDirty[s] = false
		n.dirtyChunks--
	}
	n.chunkStatic[s] = false
	n.slotFree = append(n.slotFree, s)
	c.slot = -1
	n.snapIndex = true // the slot's chunk disappears from the next table
}

// markChunkDirty flags a component's snapshot chunk for a dynamic rebuild
// (rates/demands) at the next delta publication.
func (n *Network) markChunkDirty(c *component) {
	s := c.slot
	if s < 0 {
		return
	}
	if !n.chunkDirty[s] {
		n.chunkDirty[s] = true
		n.dirtyChunks++
	}
}

// markChunkStatic flags a component's snapshot chunk for a full rebuild:
// its membership or a static flow field (weight) changed, so the previous
// chunk's views slice cannot be shared.
func (n *Network) markChunkStatic(c *component) {
	n.markChunkDirty(c)
	if c.slot >= 0 {
		n.chunkStatic[c.slot] = true
	}
}

// markRateDirty records that a link's allocated rate may differ from the
// last published snapshot; the publish path turns the accumulated set into
// a patch overlay over the previous snapshot's rate array.
func (n *Network) markRateDirty(id LinkID) {
	if !n.rateDirty[id] {
		n.rateDirty[id] = true
		n.rateList = append(n.rateList, id)
	}
}

// buildChunk freezes one component into a chunk.
func (n *Network) buildChunk(c *component) *flowChunk {
	idxs := n.scratchIdxs[:0]
	for _, f := range c.flows {
		idxs = append(idxs, f.idx)
	}
	n.sortIdxsByID(idxs)
	n.scratchIdxs = idxs
	ch := &flowChunk{views: make([]FlowView, len(idxs)), dyn: make([]float64, 2*len(idxs))}
	for pos, i := range idxs {
		f := n.arFlow[i]
		ch.views[pos] = FlowView{ID: f.ID, Weight: f.Weight, Tag: f.Tag}
		ch.dyn[2*pos] = n.arRate[i]
		ch.dyn[2*pos+1] = n.arDemand[i]
	}
	return ch
}

// refreshChunkDyn rebuilds only a chunk's dynamic half (rates and demands),
// sharing prev's static views. Valid only while the component's membership
// and static fields are unchanged since prev was built — guaranteed by the
// chunkStatic mark, which every membership or weight mutation sets. The
// member order matches prev.views because both sort by flow ID.
func (n *Network) refreshChunkDyn(c *component, prev *flowChunk) *flowChunk {
	idxs := n.scratchIdxs[:0]
	for _, f := range c.flows {
		idxs = append(idxs, f.idx)
	}
	n.sortIdxsByID(idxs)
	n.scratchIdxs = idxs
	dyn := make([]float64, 2*len(idxs))
	for pos, i := range idxs {
		dyn[2*pos] = n.arRate[i]
		dyn[2*pos+1] = n.arDemand[i]
	}
	return &flowChunk{views: prev.views, dyn: dyn}
}

// buildFlowTable freezes every live flow: per-component chunks under the
// registry, one flat chunk otherwise.
func (n *Network) buildFlowTable() flowTable {
	t := flowTable{count: len(n.flows)}
	if n.UseRegistry {
		t.chunks = make([]*flowChunk, len(n.slotComp))
		t.index = make(map[FlowID]int64, len(n.flows))
		for s, c := range n.slotComp {
			if c == nil {
				continue
			}
			ch := n.buildChunk(c)
			t.chunks[s] = ch
			for pos, v := range ch.views {
				t.index[v.ID] = int64(s)<<32 | int64(pos)
			}
		}
		return t
	}
	idxs := n.scratchIdxs[:0]
	for i, f := range n.arFlow {
		if f != nil {
			idxs = append(idxs, int32(i))
		}
	}
	n.sortIdxsByID(idxs)
	n.scratchIdxs = idxs
	ch := &flowChunk{views: make([]FlowView, len(idxs)), dyn: make([]float64, 2*len(idxs))}
	t.index = make(map[FlowID]int64, len(idxs))
	for pos, i := range idxs {
		f := n.arFlow[i]
		ch.views[pos] = FlowView{ID: f.ID, Weight: f.Weight, Tag: f.Tag}
		ch.dyn[2*pos] = n.arRate[i]
		ch.dyn[2*pos+1] = n.arDemand[i]
		t.index[f.ID] = int64(pos) // single chunk: slot 0
	}
	t.chunks = []*flowChunk{ch}
	return t
}

// deltaFlowTable builds the next snapshot's flow table, sharing the previous
// table's chunks for components untouched since it was published, and the
// static views of components that were only re-filled.
func (n *Network) deltaFlowTable(prev *flowTable) flowTable {
	if n.snapAllFlows || !n.UseRegistry {
		return n.buildFlowTable()
	}
	if !n.snapIndex && n.dirtyChunks == 0 {
		return *prev
	}
	t := flowTable{count: len(n.flows), chunks: make([]*flowChunk, len(n.slotComp))}
	for s, c := range n.slotComp {
		if c == nil {
			continue
		}
		prevCh := (*flowChunk)(nil)
		if s < len(prev.chunks) {
			prevCh = prev.chunks[s]
		}
		switch {
		case !n.chunkDirty[s] && prevCh != nil:
			t.chunks[s] = prevCh
		case !n.chunkStatic[s] && prevCh != nil && len(prevCh.views) == len(c.flows):
			t.chunks[s] = n.refreshChunkDyn(c, prevCh)
		default:
			t.chunks[s] = n.buildChunk(c)
		}
	}
	if !n.snapIndex && prev.index != nil {
		// Pure re-fills keep (slot, pos) stable; the index carries over.
		t.index = prev.index
	} else {
		t.index = make(map[FlowID]int64, t.count)
		for s, ch := range t.chunks {
			if ch == nil {
				continue
			}
			for pos, v := range ch.views {
				t.index[v.ID] = int64(s)<<32 | int64(pos)
			}
		}
	}
	return t
}

// Snapshot is an immutable copy of a Network's read surface: per-link rates
// and capacities, per-flow allocations, and the allocator work counters.
// It is safe for unsynchronized use from any number of goroutines and
// answers every Reader query without touching the live network — this is
// the value a SharedNetwork publishes through its atomic pointer at each
// commit, and the one canonical read model a multi-process cluster mode
// can serialize.
//
// Path-shaped queries (PathRTT, PathLoss) index the snapshot's arrays by
// the path's link IDs; the *Link pointers themselves are only read for ID
// and propagation delay, both immutable after topology construction.
type Snapshot struct {
	// Seq is the publication sequence number: 0 for a snapshot taken
	// directly off a Network, and a strictly increasing commit counter for
	// snapshots published by a SharedNetwork.
	Seq uint64

	// rateBase plus ratePatch is the per-link allocated rate: ratePatch
	// overrides rateBase for the few links changed since the snapshot the
	// base was copied for. Patches are bounded by maxRatePatch; beyond that
	// the publish path compacts into a fresh base.
	rateBase  []float64
	ratePatch []ratePatch
	capacity  []float64
	delay     []time.Duration
	flowsOn   []int32
	activeOn  []int32
	flows     flowTable
	stats     Stats
}

// rateOf resolves a link's allocated rate through the patch overlay.
func (s *Snapshot) rateOf(id LinkID) float64 {
	for _, p := range s.ratePatch {
		if p.id == id {
			return p.val
		}
	}
	return s.rateBase[id]
}

// Snapshot freezes the network's current read surface. O(links + flows).
// Serial snapshots never consume the delta flags — those belong to the
// SharedNetwork publish path (snapshotDelta).
func (n *Network) Snapshot() *Snapshot { return n.snapshotFull(0) }

func (n *Network) snapshotFull(seq uint64) *Snapshot {
	nl := n.topo.NumLinks()
	s := &Snapshot{
		Seq:      seq,
		rateBase: make([]float64, nl),
		capacity: make([]float64, nl),
		delay:    n.snapDelay, // immutable after construction; shared
		flowsOn:  make([]int32, nl),
		activeOn: make([]int32, nl),
		flows:    n.buildFlowTable(),
		stats:    n.Stats(),
	}
	copy(s.rateBase, n.linkRate)
	for id, l := range n.topo.links {
		s.capacity[id] = l.Capacity
		s.flowsOn[id] = int32(len(n.linkFlows[id]))
	}
	copy(s.activeOn, n.activeOn)
	return s
}

// snapshotDelta is the SharedNetwork publish path: a copy-on-write snapshot
// that shares every facet of prev the mutations since prev did not touch,
// then consumes the delta flags. Immutability is preserved by construction —
// shared arrays are only ever read, changed facets get fresh arrays (or, for
// link rates, a small patch overlay on the previous base).
func (n *Network) snapshotDelta(seq uint64, prev *Snapshot) *Snapshot {
	if prev == nil {
		s := n.snapshotFull(seq)
		n.clearSnapFlags()
		return s
	}
	s := &Snapshot{Seq: seq, delay: n.snapDelay, stats: n.Stats()}
	switch {
	case n.rateAll:
		s.rateBase = append([]float64(nil), n.linkRate...)
	case len(n.rateList) == 0:
		s.rateBase, s.ratePatch = prev.rateBase, prev.ratePatch
	default:
		// Carry forward the previous overlay entries not re-dirtied, add the
		// freshly changed links; compact into a new base past the bound.
		keep := 0
		for _, p := range prev.ratePatch {
			if !n.rateDirty[p.id] {
				keep++
			}
		}
		if keep+len(n.rateList) > maxRatePatch {
			s.rateBase = append([]float64(nil), n.linkRate...)
		} else {
			patch := make([]ratePatch, 0, keep+len(n.rateList))
			for _, p := range prev.ratePatch {
				if !n.rateDirty[p.id] {
					patch = append(patch, p)
				}
			}
			for _, id := range n.rateList {
				patch = append(patch, ratePatch{id: id, val: n.linkRate[id]})
			}
			s.rateBase, s.ratePatch = prev.rateBase, patch
		}
	}
	if n.snapCap {
		s.capacity = make([]float64, len(n.topo.links))
		for id, l := range n.topo.links {
			s.capacity[id] = l.Capacity
		}
	} else {
		s.capacity = prev.capacity
	}
	if n.snapOn {
		s.flowsOn = make([]int32, n.topo.NumLinks())
		for id := range n.topo.links {
			s.flowsOn[id] = int32(len(n.linkFlows[id]))
		}
		s.activeOn = append([]int32(nil), n.activeOn...)
	} else {
		s.flowsOn = prev.flowsOn
		s.activeOn = prev.activeOn
	}
	s.flows = n.deltaFlowTable(&prev.flows)
	n.clearSnapFlags()
	return s
}

// clearSnapFlags resets the per-facet delta flags, chunk dirty marks and the
// rate-dirty set after a delta publication consumed them.
func (n *Network) clearSnapFlags() {
	n.snapCap, n.snapOn, n.snapAllFlows, n.snapIndex = false, false, false, false
	if n.dirtyChunks > 0 {
		for i, d := range n.chunkDirty {
			if d {
				n.chunkDirty[i] = false
				n.chunkStatic[i] = false
			}
		}
		n.dirtyChunks = 0
	}
	for _, id := range n.rateList {
		n.rateDirty[id] = false
	}
	n.rateList = n.rateList[:0]
	n.rateAll = false
}

func (s *Snapshot) inRange(id LinkID) bool {
	return int(id) >= 0 && int(id) < len(s.rateBase)
}

// LinkRate returns the total allocated rate on a link in bits/s.
func (s *Snapshot) LinkRate(id LinkID) float64 {
	if !s.inRange(id) {
		return 0
	}
	return s.rateOf(id)
}

// Utilization returns allocated/capacity for a link, in [0,1].
func (s *Snapshot) Utilization(id LinkID) float64 {
	if !s.inRange(id) {
		return 0
	}
	return utilizationOf(s.rateOf(id), s.capacity[id])
}

// Congestion classifies the link's utilization at snapshot time.
func (s *Snapshot) Congestion(id LinkID) CongestionLevel {
	return congestionOf(s.Utilization(id))
}

// Capacity returns a link's capacity at snapshot time in bits/s (capacity
// is mutable at runtime via SetLinkCapacity, so it is frozen per snapshot).
func (s *Snapshot) Capacity(id LinkID) float64 {
	if !s.inRange(id) {
		return 0
	}
	return s.capacity[id]
}

// Headroom returns the unallocated capacity of a link in bits/s.
func (s *Snapshot) Headroom(id LinkID) float64 {
	if !s.inRange(id) {
		return 0
	}
	h := s.capacity[id] - s.rateOf(id)
	if h < 0 {
		h = 0
	}
	return h
}

// QueueDelay estimates the queueing delay added by a link at its
// snapshot-time utilization.
func (s *Snapshot) QueueDelay(id LinkID) time.Duration {
	if !s.inRange(id) {
		return 0
	}
	return queueDelayOf(s.Utilization(id), s.delay[id])
}

// PathRTT returns the round-trip time of a path including forward-direction
// queueing delay at snapshot-time utilizations.
func (s *Snapshot) PathRTT(p Path) time.Duration {
	rtt := 2 * p.PropDelay()
	for _, l := range p {
		rtt += s.QueueDelay(l.ID)
	}
	return rtt
}

// LossRate estimates the packet loss probability on a link at its
// snapshot-time utilization.
func (s *Snapshot) LossRate(id LinkID) float64 {
	return lossRateOf(s.Utilization(id))
}

// PathLoss returns the combined loss probability along a path.
func (s *Snapshot) PathLoss(p Path) float64 {
	keep := 1.0
	for _, l := range p {
		keep *= 1 - s.LossRate(l.ID)
	}
	return 1 - keep
}

// FlowsOn returns the number of flows crossing a link at snapshot time.
func (s *Snapshot) FlowsOn(id LinkID) int {
	if !s.inRange(id) {
		return 0
	}
	return int(s.flowsOn[id])
}

// ActiveFlowsOn returns the number of flows with positive demand crossing a
// link at snapshot time.
func (s *Snapshot) ActiveFlowsOn(id LinkID) int {
	if !s.inRange(id) {
		return 0
	}
	return int(s.activeOn[id])
}

// NumFlows returns the number of active flows at snapshot time.
func (s *Snapshot) NumFlows() int { return s.flows.count }

// NumLinks returns the number of links the snapshot covers.
func (s *Snapshot) NumLinks() int { return len(s.rateBase) }

// Flow returns the frozen state of one flow, if it was live at snapshot
// time.
func (s *Snapshot) Flow(id FlowID) (FlowView, bool) {
	return s.flows.lookup(id)
}

// Flows calls fn for every flow live at snapshot time, in unspecified
// order.
func (s *Snapshot) Flows(fn func(FlowView)) {
	for _, ch := range s.flows.chunks {
		if ch == nil {
			continue
		}
		for pos := range ch.views {
			fn(ch.view(pos))
		}
	}
}

// Stats returns the allocator work counters at snapshot time.
func (s *Snapshot) Stats() Stats { return s.stats }

// ComponentView is one registry component's membership frozen at snapshot
// time: the component's chunk slot and its flow IDs in ascending order.
type ComponentView struct {
	Slot  int      `json:"slot"`
	Flows []FlowID `json:"flows"`
}

// Components returns the link-connected component membership at snapshot
// time, ordered by slot. Snapshots taken without the component registry
// report a single component holding every flow. This is a query-surface
// accessor: it allocates the result and is not part of the publish path.
func (s *Snapshot) Components() []ComponentView {
	var out []ComponentView
	for slot, ch := range s.flows.chunks {
		if ch == nil || len(ch.views) == 0 {
			continue
		}
		ids := make([]FlowID, len(ch.views))
		for i, v := range ch.views {
			ids[i] = v.ID
		}
		out = append(out, ComponentView{Slot: slot, Flows: ids})
	}
	return out
}
