package netsim

import "time"

// Reader is the read surface shared by the live *Network, an immutable
// *Snapshot of it, and a *SharedNetwork (which serves every read from its
// latest published snapshot). Control loops, the I2A looking glass and the
// ISP report code are written against Reader so the same logic runs
// single-threaded over a Network or lock-free over a snapshot.
type Reader interface {
	LinkRate(LinkID) float64
	Utilization(LinkID) float64
	Congestion(LinkID) CongestionLevel
	Headroom(LinkID) float64
	QueueDelay(LinkID) time.Duration
	PathRTT(Path) time.Duration
	LossRate(LinkID) float64
	PathLoss(Path) float64
	FlowsOn(LinkID) int
	ActiveFlowsOn(LinkID) int
	NumFlows() int
	Stats() Stats
}

var (
	_ Reader = (*Network)(nil)
	_ Reader = (*Snapshot)(nil)
	_ Reader = (*SharedNetwork)(nil)
)

// Shared read-model formulas. Network and Snapshot answer every derived
// read (utilization, congestion class, queue delay, loss) through these
// helpers so the two surfaces cannot drift.

func utilizationOf(rate, capacity float64) float64 {
	if capacity <= 0 {
		return 0
	}
	u := rate / capacity
	if u > 1 {
		u = 1 // numerical safety; allocation never exceeds capacity
	}
	return u
}

// queueDelayOf estimates the queueing delay added by a link at utilization
// u, using a capped M/M/1-style growth curve: delay rises as util/(1-util),
// capped at 50× the propagation delay (a bufferbloat bound).
func queueDelayOf(u float64, base time.Duration) time.Duration {
	if u >= 0.999 {
		u = 0.999
	}
	if base == 0 {
		base = time.Millisecond
	}
	q := time.Duration(float64(base) * 0.5 * u / (1 - u))
	if max := 50 * base; q > max {
		q = max
	}
	return q
}

// lossRateOf estimates the packet loss probability at utilization u: zero
// below 90%, rising quadratically to 5% at full utilization.
func lossRateOf(u float64) float64 {
	if u <= 0.9 {
		return 0
	}
	x := (u - 0.9) / 0.1
	return 0.05 * x * x
}

// congestionOf classifies utilization for I2A export.
func congestionOf(u float64) CongestionLevel {
	switch {
	case u >= 0.98:
		return CongestionSevere
	case u >= 0.90:
		return CongestionHigh
	case u >= 0.70:
		return CongestionModerate
	default:
		return CongestionNone
	}
}

// FlowView is a flow's state frozen into a Snapshot.
type FlowView struct {
	ID     FlowID
	Rate   float64
	Demand float64
	Weight float64
	Tag    string
}

// Snapshot is an immutable copy of a Network's read surface: per-link rates
// and capacities, per-flow allocations, and the allocator work counters.
// It is safe for unsynchronized use from any number of goroutines and
// answers every Reader query without touching the live network — this is
// the value a SharedNetwork publishes through its atomic pointer at each
// commit, and the one canonical read model a multi-process cluster mode
// can serialize.
//
// Path-shaped queries (PathRTT, PathLoss) index the snapshot's arrays by
// the path's link IDs; the *Link pointers themselves are only read for ID
// and propagation delay, both immutable after topology construction.
type Snapshot struct {
	// Seq is the publication sequence number: 0 for a snapshot taken
	// directly off a Network, and a strictly increasing commit counter for
	// snapshots published by a SharedNetwork.
	Seq uint64

	linkRate []float64
	capacity []float64
	delay    []time.Duration
	flowsOn  []int32
	activeOn []int32
	flows    map[FlowID]FlowView
	stats    Stats
}

// Snapshot freezes the network's current read surface. O(links + flows).
func (n *Network) Snapshot() *Snapshot { return n.snapshotSeq(0) }

func (n *Network) snapshotSeq(seq uint64) *Snapshot {
	nl := n.topo.NumLinks()
	s := &Snapshot{
		Seq:      seq,
		linkRate: make([]float64, nl),
		capacity: make([]float64, nl),
		delay:    make([]time.Duration, nl),
		flowsOn:  make([]int32, nl),
		activeOn: make([]int32, nl),
		flows:    make(map[FlowID]FlowView, len(n.flows)),
		stats:    n.Stats(),
	}
	copy(s.linkRate, n.linkRate)
	for id, l := range n.topo.links {
		s.capacity[id] = l.Capacity
		s.delay[id] = l.Delay
		s.flowsOn[id] = int32(len(n.linkFlows[id]))
		for _, f := range n.linkFlows[id] {
			if f.Demand > 0 {
				s.activeOn[id]++
			}
		}
	}
	for id, f := range n.flows {
		s.flows[id] = FlowView{ID: id, Rate: f.Rate, Demand: f.Demand, Weight: f.Weight, Tag: f.Tag}
	}
	return s
}

func (s *Snapshot) inRange(id LinkID) bool {
	return int(id) >= 0 && int(id) < len(s.linkRate)
}

// LinkRate returns the total allocated rate on a link in bits/s.
func (s *Snapshot) LinkRate(id LinkID) float64 {
	if !s.inRange(id) {
		return 0
	}
	return s.linkRate[id]
}

// Utilization returns allocated/capacity for a link, in [0,1].
func (s *Snapshot) Utilization(id LinkID) float64 {
	if !s.inRange(id) {
		return 0
	}
	return utilizationOf(s.linkRate[id], s.capacity[id])
}

// Congestion classifies the link's utilization at snapshot time.
func (s *Snapshot) Congestion(id LinkID) CongestionLevel {
	return congestionOf(s.Utilization(id))
}

// Capacity returns a link's capacity at snapshot time in bits/s (capacity
// is mutable at runtime via SetLinkCapacity, so it is frozen per snapshot).
func (s *Snapshot) Capacity(id LinkID) float64 {
	if !s.inRange(id) {
		return 0
	}
	return s.capacity[id]
}

// Headroom returns the unallocated capacity of a link in bits/s.
func (s *Snapshot) Headroom(id LinkID) float64 {
	if !s.inRange(id) {
		return 0
	}
	h := s.capacity[id] - s.linkRate[id]
	if h < 0 {
		h = 0
	}
	return h
}

// QueueDelay estimates the queueing delay added by a link at its
// snapshot-time utilization.
func (s *Snapshot) QueueDelay(id LinkID) time.Duration {
	if !s.inRange(id) {
		return 0
	}
	return queueDelayOf(s.Utilization(id), s.delay[id])
}

// PathRTT returns the round-trip time of a path including forward-direction
// queueing delay at snapshot-time utilizations.
func (s *Snapshot) PathRTT(p Path) time.Duration {
	rtt := 2 * p.PropDelay()
	for _, l := range p {
		rtt += s.QueueDelay(l.ID)
	}
	return rtt
}

// LossRate estimates the packet loss probability on a link at its
// snapshot-time utilization.
func (s *Snapshot) LossRate(id LinkID) float64 {
	return lossRateOf(s.Utilization(id))
}

// PathLoss returns the combined loss probability along a path.
func (s *Snapshot) PathLoss(p Path) float64 {
	keep := 1.0
	for _, l := range p {
		keep *= 1 - s.LossRate(l.ID)
	}
	return 1 - keep
}

// FlowsOn returns the number of flows crossing a link at snapshot time.
func (s *Snapshot) FlowsOn(id LinkID) int {
	if !s.inRange(id) {
		return 0
	}
	return int(s.flowsOn[id])
}

// ActiveFlowsOn returns the number of flows with positive demand crossing a
// link at snapshot time.
func (s *Snapshot) ActiveFlowsOn(id LinkID) int {
	if !s.inRange(id) {
		return 0
	}
	return int(s.activeOn[id])
}

// NumFlows returns the number of active flows at snapshot time.
func (s *Snapshot) NumFlows() int { return len(s.flows) }

// NumLinks returns the number of links the snapshot covers.
func (s *Snapshot) NumLinks() int { return len(s.linkRate) }

// Flow returns the frozen state of one flow, if it was live at snapshot
// time.
func (s *Snapshot) Flow(id FlowID) (FlowView, bool) {
	v, ok := s.flows[id]
	return v, ok
}

// Flows calls fn for every flow live at snapshot time, in unspecified
// order.
func (s *Snapshot) Flows(fn func(FlowView)) {
	for _, v := range s.flows {
		fn(v)
	}
}

// Stats returns the allocator work counters at snapshot time.
func (s *Snapshot) Stats() Stats { return s.stats }
