package netsim

import (
	"math"
	"testing"
	"time"
)

// TestExportImportRoundTrip drives churn on every fixture, exports the
// state, imports it into a fresh network, and requires bit-identical flows,
// rates and capacities — plus matching digests and a continued ID sequence.
func TestExportImportRoundTrip(t *testing.T) {
	for name, build := range sharedFixtures() {
		build := build
		t.Run(name, func(t *testing.T) {
			ops, orig := driveSharedDeterministic(t, build, 3, 4, 4, 10)
			if len(ops) == 0 {
				t.Fatal("fixture produced no ops")
			}
			st := orig.ExportState()

			restored, _ := build()
			if err := restored.ImportState(st); err != nil {
				t.Fatalf("import: %v", err)
			}
			requireIdenticalNetworks(t, "export/import", orig, restored)
			if a, b := orig.StateDigest(), restored.StateDigest(); a != b {
				t.Fatalf("digest %x != %x after round trip", a, b)
			}
			// Exported rates match the live allocation.
			for id, r := range st.LinkRates {
				if got := restored.LinkRate(LinkID(id)); got != r {
					t.Fatalf("link %d rate %v != exported %v", id, got, r)
				}
			}
			// The ID counter resumes: the next flow on each network gets
			// the same ID.
			p, _ := restored.topo.pathOf(linkIDs(findAnyFlowPath(orig)))
			f1 := orig.StartFlow(findAnyFlowPath(orig), 1, "x")
			f2 := restored.StartFlow(p, 1, "x")
			if f1.ID != f2.ID {
				t.Fatalf("post-import StartFlow assigned %d, original %d", f2.ID, f1.ID)
			}
		})
	}
}

// findAnyFlowPath returns some live flow's path, or panics (fixtures always
// leave flows running).
func findAnyFlowPath(n *Network) Path {
	for _, f := range n.flows {
		return f.Path
	}
	panic("no live flows")
}

func TestImportStateRejectsNonFresh(t *testing.T) {
	topo, p := line(100)
	n := NewNetwork(topo)
	n.StartFlow(p, 10, "")
	if err := n.ImportState(NetState{Capacities: make([]float64, topo.NumLinks())}); err == nil {
		t.Fatal("ImportState on a used network succeeded")
	}
}

func TestImportStateRejectsBadState(t *testing.T) {
	topo, _ := line(100)
	fresh := func() *Network { return NewNetwork(topo) }
	nl := topo.NumLinks()
	caps := func() []float64 {
		c := make([]float64, nl)
		for i := range c {
			c[i] = 100
		}
		return c
	}
	if err := fresh().ImportState(NetState{Capacities: caps()[:nl-1]}); err == nil {
		t.Error("capacity count mismatch accepted")
	}
	bad := caps()
	bad[0] = 0
	if err := fresh().ImportState(NetState{Capacities: bad}); err == nil {
		t.Error("non-positive capacity accepted")
	}
	if err := fresh().ImportState(NetState{Capacities: caps(), NextID: 1, Flows: []FlowState{
		{ID: 1, Links: []LinkID{0}, Demand: 1}, {ID: 1, Links: []LinkID{0}, Demand: 1},
	}}); err == nil {
		t.Error("non-ascending flow IDs accepted")
	}
	if err := fresh().ImportState(NetState{Capacities: caps(), NextID: 0, Flows: []FlowState{
		{ID: 3, Links: []LinkID{99}, Demand: 1},
	}}); err == nil {
		t.Error("unknown link in flow path accepted")
	}
}

// TestStateDigestSensitivity: the digest must move on every allocator
// input — flow set, demand, weight, path, tag, capacity, MaxRate — and must
// not move on reads or snapshots.
func TestStateDigestSensitivity(t *testing.T) {
	topo := NewTopology()
	a := topo.AddLink("a", "b", 100, time.Millisecond, "")
	b := topo.AddLink("b", "c", 100, time.Millisecond, "")
	n := NewNetwork(topo)
	seen := map[uint64]string{n.StateDigest(): "initial"}
	step := func(label string, mutate func()) {
		t.Helper()
		mutate()
		d := n.StateDigest()
		if prev, dup := seen[d]; dup {
			t.Fatalf("digest after %q collides with %q", label, prev)
		}
		seen[d] = label
	}
	f := n.StartFlow(Path{a, b}, math.Inf(1), "t")
	step("start", func() {})
	step("set-demand", func() { n.SetDemand(f, 40) })
	step("set-weight", func() { n.SetWeight(f, 2) })
	step("set-path", func() { n.SetPath(f, Path{a}) })
	step("set-capacity", func() { n.SetLinkCapacity(b.ID, 55) })
	step("max-rate", func() { n.SetMaxRate(5e8) })

	d := n.StateDigest()
	_ = n.Snapshot()
	_ = n.Utilization(a.ID)
	if n.StateDigest() != d {
		t.Fatal("reads moved the digest")
	}
	// Stopping the flow changes the digest even though the flow set
	// returns to empty-plus-counter: nextID advanced past the start.
	step("stop", func() { n.StopFlow(f) })
}

// TestStateDigestStableInsideBatch: the digest reflects inputs eagerly, so
// it is identical whether ops were applied batched or one at a time — the
// property that makes per-op journal digests comparable across
// SharedNetwork's immediate and deterministic modes.
func TestStateDigestStableInsideBatch(t *testing.T) {
	topo, p := line(100, 80, 120)
	serial := NewNetwork(topo)
	batched := NewNetwork(topo)

	fs := serial.StartFlow(p, 10, "x")
	serial.SetDemand(fs, 70)
	serial.SetLinkCapacity(p[0].ID, 90)
	want := serial.StateDigest()

	var got uint64
	batched.Batch(func() {
		fb := batched.StartFlow(p, 10, "x")
		batched.SetDemand(fb, 70)
		batched.SetLinkCapacity(p[0].ID, 90)
		got = batched.StateDigest() // mid-batch: rates stale, inputs current
	})
	if got != want {
		t.Fatalf("mid-batch digest %x != serial digest %x", got, want)
	}
	if batched.StateDigest() != want {
		t.Fatalf("post-batch digest moved: %x != %x", batched.StateDigest(), want)
	}
}

func TestTopoStateRoundTrip(t *testing.T) {
	topo := NewTopology()
	topo.AddLink("a", "b", 100, 2*time.Millisecond, "access")
	topo.AddDuplexLink("b", "c", 50, time.Millisecond, "peer")
	rebuilt := ExportTopology(topo).Build()
	if rebuilt.NumLinks() != topo.NumLinks() {
		t.Fatalf("rebuilt %d links, want %d", rebuilt.NumLinks(), topo.NumLinks())
	}
	for i := 0; i < topo.NumLinks(); i++ {
		a, b := topo.Link(LinkID(i)), rebuilt.Link(LinkID(i))
		if a.From != b.From || a.To != b.To || a.Capacity != b.Capacity || a.Delay != b.Delay || a.Name != b.Name {
			t.Fatalf("link %d: %+v != %+v", i, a, b)
		}
	}
}
