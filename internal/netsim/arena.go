package netsim

import (
	"math"
	"slices"
)

// Index arena: the struct-of-arrays (SoA) core of the allocator.
//
// Every live flow owns a dense arena index, assigned at StartFlow and
// recycled through a freelist at StopFlow, so the allocator's inner loops
// can run over parallel []float64 demand/weight/rate slices and []int32
// path adjacency instead of chasing *Flow pointers and map entries. The
// arena mirrors exactly the inputs the progressive filler reads — demand
// (post-clamp), effective weight (weight(): ≤0 means 1) and the path's link
// IDs — and is kept in lockstep by the mutation surface regardless of
// whether the SoA fill is enabled, so UseSoA can be toggled for
// differential testing without rebuilding anything.
//
// "Seen" bookkeeping (component expansion, link dedup, split checks) uses
// epoch-stamped marks instead of clear-after-use bitmaps: a flow or link is
// seen iff its stamp equals the current epoch, so starting a fresh mark set
// is one counter increment and nothing is ever cleared. See DESIGN.md
// "Index arena & SoA fill".

// noIdx marks a detached flow's arena index.
const noIdx = -1

// arenaAttach assigns f a dense arena index (recycling the freelist) and
// mirrors its allocator inputs into the parallel arrays. Call after f's
// fields are final for this attach.
func (n *Network) arenaAttach(f *Flow) {
	var i int32
	if k := len(n.arFree); k > 0 {
		i = n.arFree[k-1]
		n.arFree = n.arFree[:k-1]
	} else {
		i = int32(len(n.arFlow))
		n.arFlow = append(n.arFlow, nil)
		n.arID = append(n.arID, 0)
		n.arDemand = append(n.arDemand, 0)
		n.arWeight = append(n.arWeight, 0)
		n.arRate = append(n.arRate, 0)
		n.arPath = append(n.arPath, nil)
		n.flowMark = append(n.flowMark, 0)
	}
	f.idx = i
	n.arFlow[i] = f
	n.arID[i] = f.ID
	n.arDemand[i] = f.Demand
	n.arWeight[i] = f.weight()
	n.arRate[i] = 0
	n.arenaSetPath(f)
	n.flowMark[i] = 0
}

// arenaDetach releases f's arena index back to the freelist.
func (n *Network) arenaDetach(f *Flow) {
	i := f.idx
	n.arFlow[i] = nil
	n.arRate[i] = 0
	n.arFree = append(n.arFree, i)
	f.idx = noIdx
}

// arenaSetPath refreshes the []int32 path adjacency for f's slot, reusing
// the slot's previous backing array.
func (n *Network) arenaSetPath(f *Flow) {
	p := n.arPath[f.idx][:0]
	for _, l := range f.Path {
		p = append(p, int32(l.ID))
	}
	n.arPath[f.idx] = p
}

// --- epoch-stamped seen marks ----------------------------------------------

// bumpEpoch starts a fresh "seen" mark set for flows and links: all existing
// stamps become stale in O(1).
func (n *Network) bumpEpoch() { n.epoch++ }

func (n *Network) flowSeen(f *Flow) bool { return n.flowMark[f.idx] == n.epoch }
func (n *Network) markFlow(f *Flow)      { n.flowMark[f.idx] = n.epoch }
func (n *Network) linkSeen(id LinkID) bool {
	return n.linkMark[id] == n.epoch
}
func (n *Network) markLink(id LinkID) { n.linkMark[id] = n.epoch }

// --- SoA progressive fill ----------------------------------------------------

// sortIdxsByID orders arena indices by ascending FlowID — the canonical
// component order fill expects.
func (n *Network) sortIdxsByID(idxs []int32) {
	ids := n.arID
	slices.SortFunc(idxs, func(a, b int32) int {
		switch {
		case ids[a] < ids[b]:
			return -1
		case ids[a] > ids[b]:
			return 1
		default:
			return 0
		}
	})
}

// growFillScratch sizes the per-component rate/frozen scratch.
func (n *Network) growFillScratch(k int) {
	if cap(n.scratchRate) < k {
		n.scratchRate = make([]float64, k)
		n.scratchFrozen = make([]bool, k)
	}
}

// fillSoA is fill() over arena indices: the same progressive-filling
// arithmetic, reading demands and weights from the parallel arrays and the
// []int32 adjacency instead of *Flow fields. Performing the identical float
// operations in the identical order keeps its rates bit-identical to
// fillRef — pinned by the SoA on/off differential tests.
//
// idxs must be sorted by flow ID and links must be exactly the links those
// flows cross.
func (n *Network) fillSoA(idxs []int32, links []LinkID) {
	n.FlowsRecomputed += uint64(len(idxs))
	n.ComponentsRecomputed++
	avail, weight := n.scratchAvail, n.scratchWeight
	for _, id := range links {
		avail[id] = n.topo.links[id].Capacity
		weight[id] = 0
		n.linkRate[id] = 0
		n.markRateDirty(id)
	}
	for _, i := range idxs {
		w := n.arWeight[i]
		for _, l := range n.arPath[i] {
			weight[l] += w
		}
	}

	n.growFillScratch(len(idxs))
	rate := n.scratchRate[:len(idxs)]
	frozen := n.scratchFrozen[:len(idxs)]
	for i := range frozen {
		frozen[i] = false
	}
	unfrozen := len(idxs)
	for unfrozen > 0 {
		level := math.Inf(1)
		for _, id := range links {
			if weight[id] > 0 {
				if s := avail[id] / weight[id]; s < level {
					level = s
				}
			}
		}
		frozeAny := false
		for k, i := range idxs {
			if frozen[k] {
				continue
			}
			w := n.arWeight[i]
			d := math.Min(n.arDemand[i], n.MaxRate)
			if d/w <= level {
				rate[k] = d
				frozen[k] = true
				unfrozen--
				frozeAny = true
				for _, l := range n.arPath[i] {
					avail[l] -= d
					if avail[l] < 0 {
						avail[l] = 0
					}
					weight[l] -= w
					if weight[l] < 0 {
						weight[l] = 0
					}
				}
			}
		}
		if frozeAny {
			continue
		}
		const eps = 1e-9
		for k, i := range idxs {
			if frozen[k] {
				continue
			}
			w := n.arWeight[i]
			bottlenecked := false
			for _, l := range n.arPath[i] {
				if weight[l] > 0 && avail[l]/weight[l] <= level*(1+eps)+eps {
					bottlenecked = true
					break
				}
			}
			if bottlenecked {
				r := level * w
				rate[k] = r
				frozen[k] = true
				unfrozen--
				frozeAny = true
				for _, l := range n.arPath[i] {
					avail[l] -= r
					if avail[l] < 0 {
						avail[l] = 0
					}
					weight[l] -= w
					if weight[l] < 0 {
						weight[l] = 0
					}
				}
			}
		}
		if !frozeAny {
			panic("netsim: progressive filling made no progress")
		}
	}

	for k, i := range idxs {
		r := rate[k]
		n.arRate[i] = r
		n.arFlow[i].Rate = r
		for _, l := range n.arPath[i] {
			n.linkRate[l] += r
		}
	}
}
