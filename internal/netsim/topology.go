// Package netsim models a capacitated network as a directed graph and
// allocates bandwidth to flows by max-min fairness (progressive filling).
//
// The model is the standard fluid approximation for long-lived TCP flows:
// each flow traverses a path of links, every link divides its capacity
// fairly among the flows that cross it, and a flow's rate is set by its most
// constrained link (or by its own demand, whichever is smaller). Rates are
// recomputed whenever the flow set or a demand changes, so "congestion" is
// always well-defined. Latency and loss are derived from link utilization
// with simple queueing-inspired formulas, giving the inference experiments
// (Figure 4) realistic network-level features.
package netsim

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// NodeID names a node in the topology (a client pool, a CDN cluster, a
// peering router, an origin, ...). IDs are free-form strings chosen by the
// scenario.
type NodeID string

// LinkID identifies a directed link. IDs are assigned densely by AddLink in
// insertion order, so they can index slices.
type LinkID int

// Link is a directed, capacitated link.
type Link struct {
	ID       LinkID
	From, To NodeID
	// Capacity is in bits per second.
	Capacity float64
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// Name is an optional human-readable label ("peering-B", "access").
	Name string
}

// Topology is a directed multigraph. It is mutable only before flows are
// attached; scenarios build it once at setup time.
type Topology struct {
	nodes map[NodeID]bool
	links []*Link
	out   map[NodeID][]*Link
}

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{
		nodes: make(map[NodeID]bool),
		out:   make(map[NodeID][]*Link),
	}
}

// AddNode declares a node. Adding an existing node is a no-op.
func (t *Topology) AddNode(id NodeID) {
	t.nodes[id] = true
}

// HasNode reports whether id was added.
func (t *Topology) HasNode(id NodeID) bool { return t.nodes[id] }

// Nodes returns all node IDs in sorted order.
func (t *Topology) Nodes() []NodeID {
	ids := make([]NodeID, 0, len(t.nodes))
	for id := range t.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// AddLink adds a directed link and returns it. Both endpoints are added to
// the node set if absent. Capacity must be positive.
func (t *Topology) AddLink(from, to NodeID, capacity float64, delay time.Duration, name string) *Link {
	if capacity <= 0 {
		panic(fmt.Sprintf("netsim: non-positive capacity %v on link %s->%s", capacity, from, to))
	}
	if delay < 0 {
		panic(fmt.Sprintf("netsim: negative delay on link %s->%s", from, to))
	}
	t.AddNode(from)
	t.AddNode(to)
	l := &Link{ID: LinkID(len(t.links)), From: from, To: to, Capacity: capacity, Delay: delay, Name: name}
	t.links = append(t.links, l)
	t.out[from] = append(t.out[from], l)
	return l
}

// AddDuplexLink adds a pair of links (one per direction) with identical
// capacity and delay, returning (forward, reverse).
func (t *Topology) AddDuplexLink(a, b NodeID, capacity float64, delay time.Duration, name string) (*Link, *Link) {
	f := t.AddLink(a, b, capacity, delay, name)
	r := t.AddLink(b, a, capacity, delay, name+"-rev")
	return f, r
}

// Link returns the link with the given ID, or nil.
func (t *Topology) Link(id LinkID) *Link {
	if int(id) < 0 || int(id) >= len(t.links) {
		return nil
	}
	return t.links[id]
}

// Links returns all links in insertion order.
func (t *Topology) Links() []*Link { return t.links }

// NumLinks returns the number of links.
func (t *Topology) NumLinks() int { return len(t.links) }

// Out returns the outgoing links of a node.
func (t *Topology) Out(id NodeID) []*Link { return t.out[id] }

// Path is an ordered sequence of links from a source to a destination.
// An empty path is legal and models endpoints co-located on one node.
type Path []*Link

// Valid reports whether consecutive links are connected and, when from/to
// are non-empty, whether the path starts and ends there.
func (p Path) Valid(from, to NodeID) bool {
	if len(p) == 0 {
		return from == to || from == "" || to == ""
	}
	if from != "" && p[0].From != from {
		return false
	}
	for i := 1; i < len(p); i++ {
		if p[i].From != p[i-1].To {
			return false
		}
	}
	if to != "" && p[len(p)-1].To != to {
		return false
	}
	return true
}

// PropDelay returns the total one-way propagation delay of the path.
func (p Path) PropDelay() time.Duration {
	var d time.Duration
	for _, l := range p {
		d += l.Delay
	}
	return d
}

// MinCapacity returns the smallest link capacity on the path, or +Inf for an
// empty path.
func (p Path) MinCapacity() float64 {
	min := math.Inf(1)
	for _, l := range p {
		if l.Capacity < min {
			min = l.Capacity
		}
	}
	return min
}

// String renders the path as "a->b->c".
func (p Path) String() string {
	if len(p) == 0 {
		return "(local)"
	}
	s := string(p[0].From)
	for _, l := range p {
		s += "->" + string(l.To)
	}
	return s
}

// ShortestPath returns the minimum-propagation-delay path from src to dst
// using Dijkstra's algorithm, or an error if dst is unreachable. Ties are
// broken by link insertion order, keeping routing deterministic.
func (t *Topology) ShortestPath(src, dst NodeID) (Path, error) {
	if !t.nodes[src] || !t.nodes[dst] {
		return nil, fmt.Errorf("netsim: unknown node in path %s->%s", src, dst)
	}
	if src == dst {
		return Path{}, nil
	}
	const inf = time.Duration(1<<63 - 1)
	dist := map[NodeID]time.Duration{src: 0}
	prev := map[NodeID]*Link{}
	visited := map[NodeID]bool{}
	for {
		// Extract the unvisited node with the smallest distance,
		// breaking ties by node ID for determinism.
		var u NodeID
		best := inf
		found := false
		for id, d := range dist {
			if visited[id] {
				continue
			}
			if d < best || (d == best && (!found || id < u)) {
				u, best, found = id, d, true
			}
		}
		if !found {
			return nil, fmt.Errorf("netsim: no path %s->%s", src, dst)
		}
		if u == dst {
			break
		}
		visited[u] = true
		for _, l := range t.out[u] {
			nd := best + l.Delay
			if cur, ok := dist[l.To]; !ok || nd < cur {
				dist[l.To] = nd
				prev[l.To] = l
			}
		}
	}
	var rev Path
	for at := dst; at != src; {
		l := prev[at]
		rev = append(rev, l)
		at = l.From
	}
	p := make(Path, len(rev))
	for i := range rev {
		p[i] = rev[len(rev)-1-i]
	}
	return p, nil
}
