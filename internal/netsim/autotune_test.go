package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"
)

// setupRails starts flowsPerRail greedy flows on each rail of a rails(r, l)
// topology — the many-small-components regime.
func setupRails(r, l, flowsPerRail int, auto bool) (*Network, []*Flow) {
	topo, links := rails(r, l, 90)
	n := NewNetwork(topo)
	n.AutoTuneCutoff = auto
	var flows []*Flow
	n.Batch(func() {
		for i := range links {
			p := Path(links[i])
			for k := 0; k < flowsPerRail; k++ {
				flows = append(flows, n.StartFlow(p, math.Inf(1), ""))
			}
		}
	})
	return n, flows
}

// setupSkewed builds the skewed-component regime: one hub link carrying
// bigFlows greedy flows (one large component) plus r rails of 3 flows each
// (small satellite components). Churn targets the hub component, whose
// size sits between the default cutoff and the whole network.
func setupSkewed(bigFlows, r int, auto bool) (*Network, []*Flow) {
	topo := NewTopology()
	hub := topo.AddLink("hubA", "hubB", 1000, time.Millisecond, "")
	var railPaths []Path
	for i := 0; i < r; i++ {
		from := NodeID(fmt.Sprintf("r%d-a", i))
		to := NodeID(fmt.Sprintf("r%d-b", i))
		railPaths = append(railPaths, Path{topo.AddLink(from, to, 90, time.Millisecond, "")})
	}
	n := NewNetwork(topo)
	n.AutoTuneCutoff = auto
	var big []*Flow
	n.Batch(func() {
		for k := 0; k < bigFlows; k++ {
			big = append(big, n.StartFlow(Path{hub}, math.Inf(1), ""))
		}
		for _, p := range railPaths {
			for k := 0; k < 3; k++ {
				n.StartFlow(p, math.Inf(1), "")
			}
		}
	})
	return n, big
}

// churnDemands mutates demands of the given flows with a seeded rng —
// byte-identical workload across runs.
func churnDemands(n *Network, flows []*Flow, muts int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < muts; i++ {
		f := flows[rng.Intn(len(flows))]
		n.SetDemand(f, float64(1+rng.Intn(200)))
	}
}

func ratesOf(flows []*Flow) []float64 {
	out := make([]float64, len(flows))
	for i, f := range flows {
		out[i] = f.Rate
	}
	return out
}

// TestAutoTuneMatchesFixedOnRails: in the regime the hand-picked default
// cutoff was tuned for (many small components), the auto-tuner does no more
// allocator work than the fixed cutoff and produces byte-identical rates.
func TestAutoTuneMatchesFixedOnRails(t *testing.T) {
	fixed, fixedFlows := setupRails(16, 3, 4, false)
	auto, autoFlows := setupRails(16, 3, 4, true)
	const muts = 400
	churnDemands(fixed, fixedFlows, muts, 7)
	churnDemands(auto, autoFlows, muts, 7)

	if auto.FlowsRecomputed > fixed.FlowsRecomputed {
		t.Errorf("auto-tuned recomputed %d flows, fixed cutoff %d — auto must not do more work here",
			auto.FlowsRecomputed, fixed.FlowsRecomputed)
	}
	fr, ar := ratesOf(fixedFlows), ratesOf(autoFlows)
	for i := range fr {
		if fr[i] != ar[i] {
			t.Fatalf("flow %d rate diverged: fixed %v, auto %v", i, fr[i], ar[i])
		}
	}
}

// TestAutoTuneBeatsFixedOnSkewed: when churn concentrates in one component
// holding ~70% of flows, the fixed 0.5 cutoff degrades every mutation to a
// full pass while the auto-tuner raises the cutoff and keeps the incremental
// path — strictly less allocator work, identical rates.
func TestAutoTuneBeatsFixedOnSkewed(t *testing.T) {
	fixed, fixedBig := setupSkewed(140, 20, false)
	auto, autoBig := setupSkewed(140, 20, true)
	const muts = 200
	churnDemands(fixed, fixedBig, muts, 13)
	churnDemands(auto, autoBig, muts, 13)

	if auto.FlowsRecomputed >= fixed.FlowsRecomputed {
		t.Errorf("auto-tuned recomputed %d flows, fixed cutoff %d — want strictly less on skewed churn",
			auto.FlowsRecomputed, fixed.FlowsRecomputed)
	}
	if auto.IncrementalReallocations <= fixed.IncrementalReallocations {
		t.Errorf("auto incremental passes = %d, fixed = %d — auto should stay incremental",
			auto.IncrementalReallocations, fixed.IncrementalReallocations)
	}
	fr, ar := ratesOf(fixedBig), ratesOf(autoBig)
	for i := range fr {
		if fr[i] != ar[i] {
			t.Fatalf("flow %d rate diverged: fixed %v, auto %v", i, fr[i], ar[i])
		}
	}
}

// TestAutoTuneCutoffBounds: the derived cutoff stays within
// [autoTuneMin, autoTuneMax] whatever the observations.
func TestAutoTuneCutoffBounds(t *testing.T) {
	n, _ := setupSkewed(10, 2, true)
	// Whole-network mutations push the observed fraction to 1.
	for i := 0; i < 5; i++ {
		n.SetMaxRate(1e8 + float64(i))
	}
	if n.IncrementalCutoff > autoTuneMax {
		t.Errorf("cutoff %v above max %v", n.IncrementalCutoff, autoTuneMax)
	}
	// Long quiet decay with tiny components floors at autoTuneMin.
	rails, flows := setupRails(32, 1, 2, true)
	churnDemands(rails, flows, 500, 3)
	if rails.IncrementalCutoff < autoTuneMin {
		t.Errorf("cutoff %v below min %v", rails.IncrementalCutoff, autoTuneMin)
	}
	if rails.IncrementalCutoff > 2*autoTuneMin {
		t.Errorf("cutoff %v did not decay toward min %v under tiny components",
			rails.IncrementalCutoff, autoTuneMin)
	}
}

func benchChurn(b *testing.B, setup func(auto bool) (*Network, []*Flow), auto bool) {
	n, flows := setup(auto)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := flows[rng.Intn(len(flows))]
		n.SetDemand(f, float64(1+rng.Intn(200)))
	}
	b.ReportMetric(float64(n.FlowsRecomputed)/float64(b.N), "flows-recomputed/op")
}

func BenchmarkChurnRailsFixed(b *testing.B) {
	benchChurn(b, func(auto bool) (*Network, []*Flow) { return setupRails(16, 3, 4, auto) }, false)
}

func BenchmarkChurnRailsAuto(b *testing.B) {
	benchChurn(b, func(auto bool) (*Network, []*Flow) { return setupRails(16, 3, 4, auto) }, true)
}

func BenchmarkChurnSkewedFixed(b *testing.B) {
	benchChurn(b, func(auto bool) (*Network, []*Flow) { return setupSkewed(140, 20, auto) }, false)
}

func BenchmarkChurnSkewedAuto(b *testing.B) {
	benchChurn(b, func(auto bool) (*Network, []*Flow) { return setupSkewed(140, 20, auto) }, true)
}
