package netsim

import "slices"

// Component registry: persistent flow→component membership.
//
// The incremental allocator needs, at every commit, the set of connected
// components touched by the dirty flows and links. Without the registry that
// set is re-discovered by BFS over linkFlows (expand), costing O(component)
// map traffic per commit even when the membership did not change. The
// registry keeps membership across commits, maintained on the only three
// mutations that can change it — StartFlow, StopFlow and SetPath — so
// dirty-set discovery becomes a map lookup per dirty flow plus one per dirty
// link.
//
// Invariants (see DESIGN.md §5 for the full argument):
//
//   - Every live flow maps to exactly one component, and all flows sharing a
//     link are in the same component. A component is therefore always a
//     superset-or-equal of the true connected component of each member.
//   - A component is exact unless marked stale. Additions never make a
//     component stale (union of exact sets along shared links is exact);
//     only a removal can, by deleting the flow that bridged two halves.
//   - Stale components are re-split into exact ones lazily, at the first
//     commit that touches them and before any rate is computed. fill()
//     therefore always runs on exact components, which keeps the registry
//     path bit-identical to the BFS path (filling a union of disjoint
//     components would reorder float operations and drift).
//
// The structure is a weighted quick-union on direct component pointers
// rather than a classic parent-pointer DSU: merging moves the smaller
// member map into the larger (O(n log n) pointer moves amortized over a
// component's lifetime), and deleting a flow is a plain map delete — no
// tombstones to leak over millions of session arrivals and departures.
// Retired components (emptied, or the loser of a union) park in a pool with
// their member maps cleared, so steady-state churn recycles husks instead of
// allocating.
type component struct {
	flows map[FlowID]*Flow
	// stale marks that a removal may have disconnected this component: it
	// is still a superset of each member's true component, but must be
	// re-split (resplit) before its sizes or memberships are trusted.
	stale bool
	// mark is scratch used by reallocateRegistry to dedupe the touched
	// set without allocating; always false between commits.
	mark bool
	// slot is the component's snapshot chunk slot (snapshot.go): published
	// snapshots cache one FlowView chunk per component and share the
	// chunks of components untouched since the previous snapshot.
	slot int32
}

// regAdd registers a newly indexed flow: it starts as a singleton component
// and unions with the component of every link it shares. Because all flows
// on one link already share a component, inspecting a single co-resident
// per link suffices.
func (n *Network) regAdd(f *Flow) {
	c := n.newComp()
	c.flows[f.ID] = f
	n.comp[f.ID] = c
	for _, l := range f.Path {
		for gid := range n.linkFlows[l.ID] {
			if gid == f.ID {
				continue
			}
			c = n.regUnion(c, n.comp[gid])
			break
		}
	}
	n.markChunkStatic(c)
	n.snapIndex = true
}

// regUnion merges two components, moving the smaller member map into the
// larger, and returns the survivor. Staleness is contagious: a superset of
// a stale superset is still only a superset. The loser's husk is pooled.
func (n *Network) regUnion(a, b *component) *component {
	if a == b {
		return a
	}
	if len(a.flows) < len(b.flows) {
		a, b = b, a
	}
	for id, f := range b.flows {
		a.flows[id] = f
		n.comp[id] = a
	}
	if b.stale {
		a.stale = true
	}
	n.markChunkStatic(a)
	n.retireComp(b)
	return a
}

// regRemove forgets a flow that has just been unindexed (StopFlow, or the
// removal half of SetPath). Must run after unindexFlow and before f.Path is
// replaced. The surviving component is marked stale only when the removal
// could actually have disconnected it (removalMaySplit); empty components
// are retired entirely so long-running sims don't accumulate husks.
func (n *Network) regRemove(f *Flow) {
	c := n.comp[f.ID]
	if c == nil {
		return
	}
	delete(n.comp, f.ID)
	delete(c.flows, f.ID)
	n.snapIndex = true
	if len(c.flows) == 0 {
		n.retireComp(c)
		return
	}
	n.markChunkStatic(c)
	if c.stale {
		return
	}
	if n.removalMaySplit(f) {
		c.stale = true
	}
}

// removalMaySplit reports whether removing f can have disconnected its
// component. Two cheap sufficient conditions prove it cannot: f's path has
// at most one link still carrying flows (f bridged nothing), or the
// smallest-ID survivor on the first still-populated link itself crosses
// every still-populated link of f's path (that survivor bridges everything
// f did). The smallest-ID scan — rather than "any map key" — keeps the
// stale/exact decision, and hence RegistryRebuilds, deterministic across
// runs. When neither condition holds the caller conservatively marks the
// component stale; a false positive only costs one lazy re-split.
func (n *Network) removalMaySplit(f *Flow) bool {
	n.bumpEpoch()
	populated := n.scratchLinks[:0]
	for _, l := range f.Path {
		if len(n.linkFlows[l.ID]) > 0 && !n.linkSeen(l.ID) {
			n.markLink(l.ID)
			populated = append(populated, l.ID)
		}
	}
	n.scratchLinks = populated
	if len(populated) <= 1 {
		return false
	}
	var cand *Flow
	for _, g := range n.linkFlows[populated[0]] {
		if cand == nil || g.ID < cand.ID {
			cand = g
		}
	}
	n.bumpEpoch()
	for _, l := range cand.Path {
		n.markLink(l.ID)
	}
	for _, id := range populated {
		if !n.linkSeen(id) {
			return true
		}
	}
	return false
}

// resplit rebuilds the exact components of a stale one by BFS over its
// members only (a true component is a subset of its stale superset, so
// expand never escapes it). Counted in RegistryRebuilds; registry tests
// assert this stays rare under realistic churn.
func (n *Network) resplit(c *component) {
	n.RegistryRebuilds++
	n.bumpEpoch()
	for _, f := range c.flows {
		if n.flowSeen(f) {
			continue
		}
		flows, links := n.expand(f, n.scratchFlows[:0], n.scratchLinks[:0])
		n.scratchFlows, n.scratchLinks = flows, links
		nc := n.newComp()
		for _, g := range flows {
			nc.flows[g.ID] = g
			n.comp[g.ID] = nc
		}
		n.markChunkStatic(nc)
	}
	// Retire the stale superset only after the member walk above: it still
	// owns c.flows while we iterate.
	n.retireComp(c)
	n.snapIndex = true
}

// compFlowsLinks flattens a (fresh) component into the sorted flow slice and
// link set that fillRef expects, reusing the commit-scoped scratch buffers.
func (n *Network) compFlowsLinks(c *component) ([]*Flow, []LinkID) {
	flows := n.scratchFlows[:0]
	for _, f := range c.flows {
		flows = append(flows, f)
	}
	slices.SortFunc(flows, flowIDCmp)
	n.bumpEpoch()
	links := n.scratchLinks[:0]
	for _, f := range flows {
		for _, l := range f.Path {
			if !n.linkSeen(l.ID) {
				n.markLink(l.ID)
				links = append(links, l.ID)
			}
		}
	}
	n.scratchFlows, n.scratchLinks = flows, links
	return flows, links
}

// compIdxLinks is compFlowsLinks over arena indices, for fillSoA.
func (n *Network) compIdxLinks(c *component) ([]int32, []LinkID) {
	idxs := n.scratchFillIdxs[:0]
	for _, f := range c.flows {
		idxs = append(idxs, f.idx)
	}
	n.sortIdxsByID(idxs)
	n.bumpEpoch()
	links := n.scratchLinks[:0]
	for _, i := range idxs {
		for _, l := range n.arPath[i] {
			id := LinkID(l)
			if !n.linkSeen(id) {
				n.markLink(id)
				links = append(links, id)
			}
		}
	}
	n.scratchFillIdxs, n.scratchLinks = idxs, links
	return idxs, links
}

// reallocateRegistry is the registry-backed commit path: dirty flows and
// links map straight to their persistent components — re-splitting stale
// ones first — so discovery costs O(dirty set + touched members) with no
// BFS over linkFlows and no per-commit visited map.
func (n *Network) reallocateRegistry() {
	// Pass 1: re-split every stale component the dirty set touches.
	// Splitting before collecting means a dirty flow in a shrunken
	// component no longer drags the detached remainder into the
	// recomputation.
	for id := range n.dirtyFlows {
		if c := n.comp[id]; c != nil && c.stale {
			n.resplit(c)
		}
	}
	for id := range n.dirtyLinks {
		for fid := range n.linkFlows[id] {
			if c := n.comp[fid]; c != nil && c.stale {
				n.resplit(c)
			}
			break // all flows on a link share one component
		}
	}

	// Pass 2: collect the touched components. Sizes come straight from
	// the member maps — no expansion.
	comps := n.scratchComps[:0]
	affected := 0
	for id := range n.dirtyFlows {
		if c := n.comp[id]; c != nil && !c.mark {
			c.mark = true
			comps = append(comps, c)
			affected += len(c.flows)
		}
	}
	for id := range n.dirtyLinks {
		for fid := range n.linkFlows[id] {
			if c := n.comp[fid]; c != nil && !c.mark {
				c.mark = true
				comps = append(comps, c)
				affected += len(c.flows)
			}
			break
		}
	}
	for _, c := range comps {
		c.mark = false
	}
	n.scratchComps = comps

	total := len(n.flows)
	if n.AutoTuneCutoff {
		// Per-component tuning (the registry makes sizes free): feed
		// each touched component's own fraction rather than the batch
		// sum, so a wide batch of small components doesn't inflate the
		// cutoff the way one genuinely large component should. Fed
		// largest-first because the decayed maximum is order-sensitive
		// and map iteration order is not deterministic.
		fracs := n.scratchFracs[:0]
		for _, c := range comps {
			fr := 0.0
			if total > 0 {
				fr = float64(len(c.flows)) / float64(total)
			}
			fracs = append(fracs, fr)
		}
		slices.Sort(fracs)
		for i := len(fracs) - 1; i >= 0; i-- {
			n.tuneObserve(fracs[i])
		}
		n.scratchFracs = fracs
	}
	cutoff := int(n.IncrementalCutoff * float64(total))
	if affected > cutoff {
		n.fullRealloc()
		n.clearDirty()
		return
	}
	n.IncrementalReallocations++
	for _, c := range comps {
		n.markChunkDirty(c)
		if n.UseSoA {
			idxs, links := n.compIdxLinks(c)
			n.fillSoA(idxs, links)
		} else {
			flows, links := n.compFlowsLinks(c)
			n.fillRef(flows, links)
		}
	}
	// A dirtied link that no longer carries any flow belongs to no
	// component; zero its stale allocation.
	for id := range n.dirtyLinks {
		if len(n.linkFlows[id]) == 0 {
			n.linkRate[id] = 0
			n.markRateDirty(id)
		}
	}
	n.clearDirty()
}

// Stats is a point-in-time snapshot of the allocator's work counters,
// suitable for asserting incremental behaviour in tests and printing under
// `eona-bench -v`. Deltas between snapshots around an operation give the
// operation's cost.
type Stats struct {
	// Reallocations counts commit events (one per unbatched mutation or
	// batch close); IncrementalReallocations is the subset that took the
	// incremental path.
	Reallocations            uint64
	IncrementalReallocations uint64
	// FlowsRecomputed sums component sizes passed through the progressive
	// filler; ComponentsRecomputed counts the fills themselves.
	FlowsRecomputed      uint64
	ComponentsRecomputed uint64
	// RegistryRebuilds counts lazy re-splits of stale components.
	RegistryRebuilds uint64
	// CoalescedReactions counts control-loop reactions folded into shared
	// end-of-tick batches (incremented by control.Coalescer).
	CoalescedReactions uint64
}

// Stats returns a snapshot of the allocator's work counters.
func (n *Network) Stats() Stats {
	return Stats{
		Reallocations:            n.Reallocations,
		IncrementalReallocations: n.IncrementalReallocations,
		FlowsRecomputed:          n.FlowsRecomputed,
		ComponentsRecomputed:     n.ComponentsRecomputed,
		RegistryRebuilds:         n.RegistryRebuilds,
		CoalescedReactions:       n.CoalescedReactions,
	}
}
