package netsim

import (
	"testing"
	"time"
)

func TestAddNodeAndLink(t *testing.T) {
	topo := NewTopology()
	topo.AddNode("x")
	l := topo.AddLink("a", "b", 100, 5*time.Millisecond, "ab")
	if !topo.HasNode("a") || !topo.HasNode("b") || !topo.HasNode("x") {
		t.Error("nodes missing after AddLink/AddNode")
	}
	if topo.Link(l.ID) != l {
		t.Error("Link lookup failed")
	}
	if topo.Link(LinkID(99)) != nil || topo.Link(LinkID(-1)) != nil {
		t.Error("out-of-range Link lookup should return nil")
	}
	if topo.NumLinks() != 1 {
		t.Errorf("NumLinks = %d", topo.NumLinks())
	}
}

func TestNodesSorted(t *testing.T) {
	topo := NewTopology()
	topo.AddNode("c")
	topo.AddNode("a")
	topo.AddNode("b")
	ids := topo.Nodes()
	if len(ids) != 3 || ids[0] != "a" || ids[1] != "b" || ids[2] != "c" {
		t.Errorf("Nodes() = %v", ids)
	}
}

func TestAddLinkValidation(t *testing.T) {
	topo := NewTopology()
	for _, tc := range []struct {
		cap   float64
		delay time.Duration
	}{{0, 0}, {-5, 0}, {10, -time.Second}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddLink(cap=%v, delay=%v) did not panic", tc.cap, tc.delay)
				}
			}()
			topo.AddLink("a", "b", tc.cap, tc.delay, "")
		}()
	}
}

func TestDuplexLink(t *testing.T) {
	topo := NewTopology()
	f, r := topo.AddDuplexLink("a", "b", 100, time.Millisecond, "ab")
	if f.From != "a" || f.To != "b" || r.From != "b" || r.To != "a" {
		t.Error("duplex endpoints wrong")
	}
	if len(topo.Out("a")) != 1 || len(topo.Out("b")) != 1 {
		t.Error("Out adjacency wrong")
	}
}

func TestPathValid(t *testing.T) {
	topo := NewTopology()
	ab := topo.AddLink("a", "b", 1, 0, "")
	bc := topo.AddLink("b", "c", 1, 0, "")
	cd := topo.AddLink("c", "d", 1, 0, "")
	if !(Path{ab, bc, cd}).Valid("a", "d") {
		t.Error("connected path reported invalid")
	}
	if (Path{ab, cd}).Valid("", "") {
		t.Error("disconnected path reported valid")
	}
	if (Path{ab}).Valid("b", "") {
		t.Error("wrong source accepted")
	}
	if (Path{ab}).Valid("", "c") {
		t.Error("wrong destination accepted")
	}
	if !(Path{}).Valid("a", "a") {
		t.Error("empty path with equal endpoints rejected")
	}
	if (Path{}).Valid("a", "b") {
		t.Error("empty path with distinct endpoints accepted")
	}
}

func TestPathMetricsAndString(t *testing.T) {
	topo := NewTopology()
	ab := topo.AddLink("a", "b", 10, 2*time.Millisecond, "")
	bc := topo.AddLink("b", "c", 5, 3*time.Millisecond, "")
	p := Path{ab, bc}
	if p.PropDelay() != 5*time.Millisecond {
		t.Errorf("PropDelay = %v", p.PropDelay())
	}
	if p.MinCapacity() != 5 {
		t.Errorf("MinCapacity = %v", p.MinCapacity())
	}
	if p.String() != "a->b->c" {
		t.Errorf("String = %q", p.String())
	}
	if (Path{}).String() != "(local)" {
		t.Errorf("empty String = %q", (Path{}).String())
	}
}

func TestShortestPath(t *testing.T) {
	topo := NewTopology()
	topo.AddLink("a", "b", 1, 10*time.Millisecond, "")
	topo.AddLink("b", "d", 1, 10*time.Millisecond, "")
	topo.AddLink("a", "c", 1, 5*time.Millisecond, "")
	topo.AddLink("c", "d", 1, 5*time.Millisecond, "")
	p, err := topo.ShortestPath("a", "d")
	if err != nil {
		t.Fatal(err)
	}
	if p.PropDelay() != 10*time.Millisecond || p[0].To != "c" {
		t.Errorf("shortest path = %v (%v)", p, p.PropDelay())
	}
}

func TestShortestPathSameNode(t *testing.T) {
	topo := NewTopology()
	topo.AddNode("a")
	p, err := topo.ShortestPath("a", "a")
	if err != nil || len(p) != 0 {
		t.Errorf("self path = %v, %v", p, err)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	topo := NewTopology()
	topo.AddNode("a")
	topo.AddNode("z")
	if _, err := topo.ShortestPath("a", "z"); err == nil {
		t.Error("unreachable destination returned no error")
	}
	if _, err := topo.ShortestPath("a", "missing"); err == nil {
		t.Error("unknown node returned no error")
	}
}

func TestShortestPathDeterministicTieBreak(t *testing.T) {
	build := func() (*Topology, Path) {
		topo := NewTopology()
		topo.AddLink("a", "b", 1, 5*time.Millisecond, "")
		topo.AddLink("b", "d", 1, 5*time.Millisecond, "")
		topo.AddLink("a", "c", 1, 5*time.Millisecond, "")
		topo.AddLink("c", "d", 1, 5*time.Millisecond, "")
		p, _ := topo.ShortestPath("a", "d")
		return topo, p
	}
	_, p1 := build()
	_, p2 := build()
	if p1.String() != p2.String() {
		t.Errorf("tie-break not deterministic: %v vs %v", p1, p2)
	}
}
