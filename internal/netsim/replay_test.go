package netsim

import (
	"math"
	"strings"
	"testing"
)

// TestReplayUnknownFlowErrors is the regression test for the corrupt-log
// hole: Replay used to pass a nil handle into StopFlow/SetDemand/SetWeight/
// SetPath when an op referenced a FlowID the log never started, and the
// nil-handle no-op semantics silently swallowed the op — a corrupt or
// hand-edited log replayed "successfully" into the wrong state. Each kind
// must now fail with a descriptive per-op error.
func TestReplayUnknownFlowErrors(t *testing.T) {
	topo, p := line(100)
	ids := linkIDs(p)
	cases := map[string]Op{
		"stop":       {Kind: OpStop, Flow: 7},
		"set-demand": {Kind: OpSetDemand, Flow: 7, Value: 10},
		"set-weight": {Kind: OpSetWeight, Flow: 7, Value: 2},
		"set-path":   {Kind: OpSetPath, Flow: 7, Links: ids},
	}
	for name, bad := range cases {
		t.Run(name, func(t *testing.T) {
			n := NewNetwork(topo)
			ops := []Op{
				{Kind: OpStart, Flow: 0, Links: ids, Value: math.Inf(1), Tag: "a"},
				bad,
			}
			err := Replay(n, ops)
			if err == nil {
				t.Fatal("replay of an op referencing an unknown flow succeeded")
			}
			if !strings.Contains(err.Error(), "op 1") || !strings.Contains(err.Error(), "unknown flow 7") {
				t.Fatalf("error %q does not name the op index and unknown flow", err)
			}
		})
	}
}

// TestReplayerStepsMatchReplay pins that per-op stepping through a Replayer
// reaches the same final state as the one-shot Replay.
func TestReplayerStepsMatchReplay(t *testing.T) {
	build := sharedFixtures()["rails"]
	ops, want := driveSharedDeterministic(t, build, 11, 3, 4, 10)

	stepped, _ := build()
	r := NewReplayer(stepped)
	for i, op := range ops {
		if err := r.Apply(op); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if r.Applied() != len(ops) {
		t.Fatalf("Applied() = %d, want %d", r.Applied(), len(ops))
	}
	requireIdenticalNetworks(t, "stepped vs recorded", stepped, want)
}

// TestReplayerFromImportedState pins the snapshot + catch-up rule at the
// netsim level: export mid-run state, import it into a fresh network, and
// replay only the tail — the result must equal a full replay from scratch.
func TestReplayerFromImportedState(t *testing.T) {
	build := sharedFixtures()["e1"]
	ops, want := driveSharedDeterministic(t, build, 5, 4, 5, 8)
	if len(ops) < 10 {
		t.Fatalf("fixture produced only %d ops", len(ops))
	}
	cut := len(ops) / 2

	// Replay the prefix, export, import onto a fresh network, replay the
	// tail through a Replayer seeded with the imported handles.
	prefix, _ := build()
	if err := Replay(prefix, ops[:cut]); err != nil {
		t.Fatalf("prefix replay: %v", err)
	}
	st := prefix.ExportState()

	restored, _ := build()
	if err := restored.ImportState(st); err != nil {
		t.Fatalf("import: %v", err)
	}
	r := NewReplayer(restored)
	for i, op := range ops[cut:] {
		if err := r.Apply(op); err != nil {
			t.Fatalf("tail op %d: %v", i, err)
		}
	}
	requireIdenticalNetworks(t, "snapshot+tail vs full run", restored, want)
}
