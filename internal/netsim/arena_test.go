package netsim

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// --- Flow-index recycling under stop/restart storms -------------------------

// stormMirror pairs the production configuration (registry + SoA fill) with
// the simplest oracle (BFS + reference fill) and checks them bit-identical.
type stormMirror struct {
	reg, bfs           *Network
	regPaths, bfsPaths []Path
	regFlows, bfsFlows []*Flow
}

func newStormMirror(t *testing.T, build func() (*Network, []Path)) *stormMirror {
	t.Helper()
	m := &stormMirror{}
	m.reg, m.regPaths = build()
	m.bfs, m.bfsPaths = build()
	m.bfs.UseRegistry = false
	m.bfs.UseSoA = false
	if len(m.regPaths) != len(m.bfsPaths) {
		t.Fatal("fixture builders diverged")
	}
	return m
}

func (m *stormMirror) start(pi int, demand float64) {
	m.regFlows = append(m.regFlows, m.reg.StartFlow(m.regPaths[pi], demand, ""))
	m.bfsFlows = append(m.bfsFlows, m.bfs.StartFlow(m.bfsPaths[pi], demand, ""))
}

func (m *stormMirror) stop(fi int) {
	m.reg.StopFlow(m.regFlows[fi])
	m.bfs.StopFlow(m.bfsFlows[fi])
}

func (m *stormMirror) check(t *testing.T, phase string) {
	t.Helper()
	for i := range m.regFlows {
		if m.regFlows[i].Rate != m.bfsFlows[i].Rate {
			t.Fatalf("%s: flow %d: registry+SoA rate %v != BFS rate %v",
				phase, i, m.regFlows[i].Rate, m.bfsFlows[i].Rate)
		}
	}
	for id := 0; id < m.reg.Topology().NumLinks(); id++ {
		if m.reg.LinkRate(LinkID(id)) != m.bfs.LinkRate(LinkID(id)) {
			t.Fatalf("%s: link %d: registry+SoA %v != BFS %v",
				phase, id, m.reg.LinkRate(LinkID(id)), m.bfs.LinkRate(LinkID(id)))
		}
	}
}

// TestFlowIndexRecyclingStorms drives stop/restart storms that fully drain
// and refill the arena freelist, interleaved with the mutations that split
// and re-merge registry components, on every differential topology fixture.
// After the first storm the arena must never grow again — every restart
// recycles indices — and the registry+SoA configuration must stay
// bit-identical to the BFS reference throughout.
func TestFlowIndexRecyclingStorms(t *testing.T) {
	var rebuilds uint64
	for name, build := range diffFixtures() {
		build := build
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			m := newStormMirror(t, build)
			stormSize := 3 * len(m.regPaths)
			var arenaCap int
			for round := 0; round < 4; round++ {
				// Start storm: grows the arena in round 0, must run entirely
				// off the freelist afterwards.
				for k := 0; k < stormSize; k++ {
					d := float64(1 + rng.Intn(200))
					if rng.Intn(4) == 0 {
						d = math.Inf(1)
					}
					m.start(rng.Intn(len(m.regPaths)), d)
				}
				m.check(t, "start storm")
				if round == 0 {
					arenaCap = len(m.reg.arFlow)
				} else if got := len(m.reg.arFlow); got != arenaCap {
					t.Fatalf("round %d: arena grew to %d slots, want it capped at %d (freelist not recycled)",
						round, got, arenaCap)
				}

				// Split-inducing interleave: stop a random half (bridge flows
				// among them force re-splits) with demand churn in between.
				live := len(m.regFlows)
				for k := 0; k < live/2; k++ {
					fi := rng.Intn(live)
					m.stop(fi)
					if k%3 == 0 {
						gi := rng.Intn(live)
						v := float64(1 + rng.Intn(99))
						m.reg.SetDemand(m.regFlows[gi], v)
						m.bfs.SetDemand(m.bfsFlows[gi], v)
					}
				}
				m.check(t, "half stop")

				// Stop everything: the freelist must absorb the whole arena.
				for fi := range m.regFlows {
					m.stop(fi) // stopping an already-stopped flow is a no-op
				}
				if m.reg.NumFlows() != 0 {
					t.Fatalf("round %d: %d flows live after stop-all", round, m.reg.NumFlows())
				}
				if got := len(m.reg.arFree); got != len(m.reg.arFlow) {
					t.Fatalf("round %d: freelist holds %d of %d arena slots after stop-all",
						round, got, len(m.reg.arFlow))
				}
				m.check(t, "stop all")
				m.regFlows, m.bfsFlows = m.regFlows[:0], m.bfsFlows[:0]
			}
			rebuilds += m.reg.RegistryRebuilds
		})
	}
	if rebuilds == 0 {
		t.Error("storms never triggered a registry re-split across any fixture")
	}
}

// TestFreelistExhaustionGrowth pins the freelist hand-off point: restarts up
// to the high-water mark recycle indices; going past it grows the arena by
// exactly the overflow.
func TestFreelistExhaustionGrowth(t *testing.T) {
	topo, links := rails(4, 3, 1e8)
	n := NewNetwork(topo)
	var flows []*Flow
	for i := range links {
		for k := 0; k < 4; k++ {
			flows = append(flows, n.StartFlow(Path(links[i]), 10, ""))
		}
	}
	high := len(n.arFlow)
	if high != len(flows) {
		t.Fatalf("arena has %d slots for %d flows", high, len(flows))
	}
	for _, f := range flows {
		n.StopFlow(f)
	}
	if len(n.arFree) != high {
		t.Fatalf("freelist holds %d slots, want %d", len(n.arFree), high)
	}
	// Restart exactly to the high-water mark: all recycled, no growth.
	flows = flows[:0]
	for i := 0; i < high; i++ {
		flows = append(flows, n.StartFlow(Path(links[i%len(links)]), 10, ""))
	}
	if len(n.arFlow) != high || len(n.arFree) != 0 {
		t.Fatalf("after refill: arena %d slots (want %d), freelist %d (want 0)",
			len(n.arFlow), high, len(n.arFree))
	}
	// One past: the arena must grow by exactly one slot.
	flows = append(flows, n.StartFlow(Path(links[0]), 10, ""))
	if len(n.arFlow) != high+1 {
		t.Fatalf("arena has %d slots after overflow, want %d", len(n.arFlow), high+1)
	}
	// Every index is dense and unique.
	seen := make(map[int32]bool)
	for _, f := range flows {
		if f.idx < 0 || int(f.idx) >= len(n.arFlow) || seen[f.idx] {
			t.Fatalf("flow %d has invalid or duplicate arena index %d", f.ID, f.idx)
		}
		seen[f.idx] = true
	}
}

// --- Zero-allocation steady states ------------------------------------------

// TestSteadyStateAllocs pins the allocation-free steady states the SoA
// refactor bought: demand churn on the rails topology (fixed and auto-tuned
// cutoff) and idle snapshot reads through a SharedNetwork. Regressions here
// are silent GC pressure in every simulation tick, so they fail loudly.
func TestSteadyStateAllocs(t *testing.T) {
	churn := func(auto bool) func(*testing.T) {
		return func(t *testing.T) {
			topo, links := rails(16, 3, 1e8)
			n := NewNetwork(topo)
			n.AutoTuneCutoff = auto
			var flows []*Flow
			n.Batch(func() {
				for i := range links {
					for k := 0; k < 8; k++ {
						flows = append(flows, n.StartFlow(Path(links[i]), 1e6*float64(1+k), ""))
					}
				}
			})
			i := 0
			op := func() {
				n.SetDemand(flows[i%len(flows)], 1e6*float64(1+(i+i/len(flows))%16))
				i++
			}
			for warm := 0; warm < 2*len(flows); warm++ {
				op() // grow scratch to steady state
			}
			if a := testing.AllocsPerRun(500, op); a != 0 {
				t.Errorf("rails churn (auto=%v) allocates %v allocs/op in steady state, want 0", auto, a)
			}
		}
	}
	t.Run("churn-fixed", churn(false))
	t.Run("churn-auto", churn(true))

	t.Run("idle-snapshot-reads", func(t *testing.T) {
		topo, links := rails(4, 3, 1e8)
		n := NewNetwork(topo)
		var paths []Path
		n.Batch(func() {
			for i := range links {
				p := Path(links[i])
				paths = append(paths, p)
				for k := 0; k < 4; k++ {
					n.StartFlow(p, 1e6*float64(1+k), "")
				}
			}
		})
		s := NewShared(n, SharedConfig{})
		defer s.Close()
		i := 0
		read := func() {
			sn := s.Snapshot()
			id := LinkID(i % topo.NumLinks())
			_ = sn.Utilization(id)
			_ = sn.Congestion(id)
			_ = sn.Headroom(id)
			_ = sn.PathRTT(paths[i%len(paths)])
			_, _ = sn.Flow(FlowID(i % 16))
			i++
		}
		if a := testing.AllocsPerRun(500, read); a != 0 {
			t.Errorf("idle snapshot reads allocate %v allocs/op, want 0", a)
		}
	})
}

// TestStormsUnderRegistrySplitsShared reruns a compressed storm through a
// SharedNetwork in deterministic mode, so freelist recycling also meets the
// pooled command path and delta snapshot publication. The published snapshot
// must agree with a serial replay of the same ops.
func TestStormsUnderRegistrySplitsShared(t *testing.T) {
	topo := NewTopology()
	a := topo.AddLink("A", "B", 100, time.Millisecond, "")
	b := topo.AddLink("B", "C", 200, time.Millisecond, "")
	paths := []Path{{a}, {b}, {a, b}}

	n := NewNetwork(topo)
	s := NewShared(n, SharedConfig{})
	defer s.Close()
	mirror := NewNetwork(topo)

	rng := rand.New(rand.NewSource(7))
	var sFlows, mFlows []*Flow
	for round := 0; round < 50; round++ {
		pi := rng.Intn(len(paths))
		d := float64(1 + rng.Intn(150))
		sFlows = append(sFlows, s.StartFlow(paths[pi], d, ""))
		mFlows = append(mFlows, mirror.StartFlow(paths[pi], d, ""))
		if round%3 == 2 { // stop the bridge-most recent third, forcing splits
			fi := rng.Intn(len(sFlows))
			s.StopFlow(sFlows[fi])
			mirror.StopFlow(mFlows[fi])
		}
		sn := s.Snapshot()
		for i, mf := range mFlows {
			v, ok := sn.Flow(sFlows[i].ID)
			if mirror.attached(mf) != ok {
				t.Fatalf("round %d: flow %d liveness diverged (shared %v, serial %v)", round, i, ok, mirror.attached(mf))
			}
			if ok && v.Rate != mf.Rate {
				t.Fatalf("round %d: flow %d rate %v != serial %v", round, i, v.Rate, mf.Rate)
			}
		}
		for id := 0; id < topo.NumLinks(); id++ {
			if sn.LinkRate(LinkID(id)) != mirror.LinkRate(LinkID(id)) {
				t.Fatalf("round %d: link %d rate %v != serial %v", round, id,
					sn.LinkRate(LinkID(id)), mirror.LinkRate(LinkID(id)))
			}
		}
	}
}
