package netsim

import (
	"math"
	"testing"
	"time"
)

func TestSetLinkCapacityReallocates(t *testing.T) {
	topo, p := line(100)
	n := NewNetwork(topo)
	f := n.StartFlow(p, math.Inf(1), "")
	if !almostEq(f.Rate, 100) {
		t.Fatalf("rate = %v", f.Rate)
	}
	// Degradation: capacity halves, the flow follows immediately.
	n.SetLinkCapacity(p[0].ID, 50)
	if !almostEq(f.Rate, 50) {
		t.Errorf("rate after degradation = %v, want 50", f.Rate)
	}
	// Upgrade: capacity grows, the flow recovers.
	n.SetLinkCapacity(p[0].ID, 200)
	if !almostEq(f.Rate, 200) {
		t.Errorf("rate after upgrade = %v, want 200", f.Rate)
	}
	if !almostEq(n.Utilization(p[0].ID), 1) {
		t.Errorf("utilization = %v, want 1", n.Utilization(p[0].ID))
	}
}

func TestSetLinkCapacityNoopOnSameValue(t *testing.T) {
	topo, p := line(100)
	n := NewNetwork(topo)
	n.StartFlow(p, 10, "")
	before := n.Reallocations
	n.SetLinkCapacity(p[0].ID, 100)
	if n.Reallocations != before {
		t.Error("same-capacity set triggered a reallocation")
	}
}

func TestSetLinkCapacityValidation(t *testing.T) {
	topo, p := line(100)
	n := NewNetwork(topo)
	for i, fn := range []func(){
		func() { n.SetLinkCapacity(LinkID(99), 10) },
		func() { n.SetLinkCapacity(p[0].ID, 0) },
		func() { n.SetLinkCapacity(p[0].ID, -5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestCapacityDropPreservesMaxMin(t *testing.T) {
	// After a capacity change the allocation must still satisfy the
	// max-min invariants (shared with the property test's checks).
	topo := NewTopology()
	l1 := topo.AddLink("a", "b", 100, time.Millisecond, "")
	l2 := topo.AddLink("b", "c", 100, time.Millisecond, "")
	n := NewNetwork(topo)
	fAB := n.StartFlow(Path{l1}, math.Inf(1), "")
	fABC := n.StartFlow(Path{l1, l2}, math.Inf(1), "")
	fBC := n.StartFlow(Path{l2}, math.Inf(1), "")
	n.SetLinkCapacity(l2.ID, 20)
	// l2 (cap 20) splits between fABC and fBC; fAB takes the rest of l1.
	if !almostEq(fABC.Rate, 10) || !almostEq(fBC.Rate, 10) {
		t.Errorf("l2 flows = %v, %v, want 10 each", fABC.Rate, fBC.Rate)
	}
	if !almostEq(fAB.Rate, 90) {
		t.Errorf("fAB = %v, want 90", fAB.Rate)
	}
}
