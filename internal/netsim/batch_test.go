package netsim

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// --- Batching semantics ---------------------------------------------------

func TestBatchCoalescesReallocations(t *testing.T) {
	topo, p := line(100)
	n := NewNetwork(topo)
	before := n.Reallocations
	var flows []*Flow
	n.Batch(func() {
		for i := 0; i < 10; i++ {
			flows = append(flows, n.StartFlow(p, math.Inf(1), ""))
		}
	})
	if got := n.Reallocations - before; got != 1 {
		t.Errorf("batched 10 starts cost %d reallocations, want 1", got)
	}
	for _, f := range flows {
		if !almostEq(f.Rate, 10) {
			t.Errorf("flow %d rate = %v, want 10", f.ID, f.Rate)
		}
	}
}

func TestBatchNesting(t *testing.T) {
	topo, p := line(100)
	n := NewNetwork(topo)
	before := n.Reallocations
	var f *Flow
	n.Batch(func() {
		n.Batch(func() {
			f = n.StartFlow(p, math.Inf(1), "")
		})
		if !n.InBatch() {
			t.Error("outer batch not open after inner EndBatch")
		}
		if n.Reallocations != before {
			t.Error("inner EndBatch committed inside outer batch")
		}
		n.StartFlow(p, math.Inf(1), "")
	})
	if got := n.Reallocations - before; got != 1 {
		t.Errorf("nested batches cost %d reallocations, want 1", got)
	}
	if !almostEq(f.Rate, 50) {
		t.Errorf("rate = %v, want 50", f.Rate)
	}
}

func TestBatchPanicStillCommits(t *testing.T) {
	topo, p := line(100)
	n := NewNetwork(topo)
	var f *Flow
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate out of Batch")
			}
		}()
		n.Batch(func() {
			f = n.StartFlow(p, math.Inf(1), "")
			panic("scenario bug")
		})
	}()
	if n.InBatch() {
		t.Error("batch still open after panic unwind")
	}
	if !almostEq(f.Rate, 100) {
		t.Errorf("rate after panic unwind = %v, want 100 (pending batch must commit)", f.Rate)
	}
}

func TestEndBatchWithoutBegin(t *testing.T) {
	n := NewNetwork(NewTopology())
	defer func() {
		if recover() == nil {
			t.Error("unbalanced EndBatch did not panic")
		}
	}()
	n.EndBatch()
}

func TestBatchEmptyCommitsNothing(t *testing.T) {
	topo, _ := line(100)
	n := NewNetwork(topo)
	before := n.Reallocations
	n.Batch(func() {})
	if n.Reallocations != before {
		t.Errorf("empty batch triggered %d reallocations", n.Reallocations-before)
	}
}

// --- Detached-flow regression (satellite bugfix) --------------------------

func TestMutationsOnStoppedFlowAreNoOps(t *testing.T) {
	topo, p := line(100)
	n := NewNetwork(topo)
	dead := n.StartFlow(p, math.Inf(1), "")
	live := n.StartFlow(p, math.Inf(1), "")
	n.StopFlow(dead)
	if !almostEq(live.Rate, 100) {
		t.Fatalf("live rate = %v, want 100", live.Rate)
	}
	before := n.Reallocations

	n.SetDemand(dead, 1)
	n.SetWeight(dead, 7)
	n.SetPath(dead, p)
	n.StopFlow(dead) // double stop, already a documented no-op

	if n.Reallocations != before {
		t.Errorf("mutating a stopped flow triggered %d reallocations", n.Reallocations-before)
	}
	if dead.Demand != math.Inf(1) || dead.Weight != 0 {
		// SetDemand/SetWeight return before writing, so the dead flow
		// object keeps the values it died with.
		t.Errorf("detached flow mutated: demand=%v weight=%v", dead.Demand, dead.Weight)
	}
	if dead.Rate != 0 {
		t.Errorf("detached flow rate = %v, want 0", dead.Rate)
	}
	if !almostEq(live.Rate, 100) {
		t.Errorf("live rate disturbed to %v by dead-flow mutations", live.Rate)
	}
}

func TestMutationsOnNilFlowAreNoOps(t *testing.T) {
	topo, p := line(100)
	n := NewNetwork(topo)
	n.SetDemand(nil, 5)
	n.SetWeight(nil, 2)
	n.SetPath(nil, p)
	n.StopFlow(nil)
	if n.Reallocations != 0 {
		t.Errorf("nil-flow mutations triggered %d reallocations", n.Reallocations)
	}
}

// --- Incremental recomputation --------------------------------------------

// rails builds r disjoint chains of l links each, returning the link matrix.
// Flows on different rails are always in different components.
func rails(r, l int, capacity float64) (*Topology, [][]*Link) {
	topo := NewTopology()
	links := make([][]*Link, r)
	for i := 0; i < r; i++ {
		for j := 0; j < l; j++ {
			from := NodeID(rune('A'+i)) + NodeID(rune('a'+j))
			to := NodeID(rune('A'+i)) + NodeID(rune('a'+j+1))
			links[i] = append(links[i], topo.AddLink(from, to, capacity, time.Millisecond, ""))
		}
	}
	return topo, links
}

func TestIncrementalLeavesOtherComponentsUntouched(t *testing.T) {
	topo, links := rails(3, 2, 90)
	n := NewNetwork(topo)
	var flows [][]*Flow
	n.Batch(func() {
		for i := range links {
			var fs []*Flow
			for k := 0; k < 3; k++ {
				fs = append(fs, n.StartFlow(Path{links[i][0], links[i][1]}, math.Inf(1), ""))
			}
			flows = append(flows, fs)
		}
	})
	// Snapshot the exact bits of rails 1 and 2.
	var before []float64
	for _, f := range append(flows[1], flows[2]...) {
		before = append(before, f.Rate)
	}
	incBefore := n.IncrementalReallocations
	// Churn rail 0 only.
	n.SetDemand(flows[0][0], 5)
	n.StopFlow(flows[0][1])
	n.StartFlow(Path{links[0][0]}, 20, "")
	if n.IncrementalReallocations-incBefore != 3 {
		t.Errorf("expected 3 incremental reallocations, got %d", n.IncrementalReallocations-incBefore)
	}
	var after []float64
	for _, f := range append(flows[1], flows[2]...) {
		after = append(after, f.Rate)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Errorf("untouched component rate changed: %v -> %v", before[i], after[i])
		}
	}
}

func TestIncrementalFallsBackAboveCutoff(t *testing.T) {
	topo, p := line(100)
	n := NewNetwork(topo)
	var fs []*Flow
	n.Batch(func() {
		for i := 0; i < 4; i++ {
			fs = append(fs, n.StartFlow(p, math.Inf(1), ""))
		}
	})
	// Every flow shares the single link: any mutation dirties the whole
	// flow set, which exceeds the 50% cutoff, so no incremental pass.
	inc := n.IncrementalReallocations
	n.SetDemand(fs[0], 10)
	if n.IncrementalReallocations != inc {
		t.Errorf("mutation affecting 100%% of flows took the incremental path")
	}
	if !almostEq(fs[0].Rate, 10) || !almostEq(fs[1].Rate, 30) {
		t.Errorf("rates = %v, %v; want 10, 30", fs[0].Rate, fs[1].Rate)
	}
}

func TestEmptyPathFlowIncremental(t *testing.T) {
	topo, _ := line(100)
	n := NewNetwork(topo)
	f := n.StartFlow(Path{}, math.Inf(1), "local")
	if !almostEq(f.Rate, n.MaxRate) {
		t.Fatalf("local flow rate = %v, want MaxRate %v", f.Rate, n.MaxRate)
	}
	n.SetDemand(f, 42)
	if !almostEq(f.Rate, 42) {
		t.Errorf("local flow rate after SetDemand = %v, want 42", f.Rate)
	}
}

func TestStopLastFlowClearsLinkRate(t *testing.T) {
	topo, p := line(100)
	n := NewNetwork(topo)
	f := n.StartFlow(p, 60, "")
	if !almostEq(n.LinkRate(p[0].ID), 60) {
		t.Fatalf("link rate = %v, want 60", n.LinkRate(p[0].ID))
	}
	n.StopFlow(f)
	if n.LinkRate(p[0].ID) != 0 {
		t.Errorf("link rate after last flow stopped = %v, want 0", n.LinkRate(p[0].ID))
	}
}

func TestSetMaxRateReallocates(t *testing.T) {
	topo, _ := line(1e9)
	n := NewNetwork(topo)
	f := n.StartFlow(Path{}, math.Inf(1), "")
	n.SetMaxRate(5e6)
	if !almostEq(f.Rate, 5e6) {
		t.Errorf("rate after SetMaxRate = %v, want 5e6", f.Rate)
	}
}

// --- Differential test: batched/incremental ≡ full ------------------------

// mutOp is one recorded mutation, replayable against any mirror network.
type mutOp struct {
	kind   int // 0 start, 1 stop, 2 demand, 3 weight, 4 path, 5 linkcap
	flow   int // index into the mirror's flow list
	rail   int
	lo, hi int // sub-range of the rail for paths
	val    float64
}

func (op mutOp) apply(n *Network, links [][]*Link, flows *[]*Flow) {
	path := func() Path {
		var p Path
		for _, l := range links[op.rail][op.lo:op.hi] {
			p = append(p, l)
		}
		return p
	}
	switch op.kind {
	case 0:
		*flows = append(*flows, n.StartFlow(path(), op.val, "t"))
	case 1:
		n.StopFlow((*flows)[op.flow])
	case 2:
		n.SetDemand((*flows)[op.flow], op.val)
	case 3:
		n.SetWeight((*flows)[op.flow], op.val)
	case 4:
		n.SetPath((*flows)[op.flow], path())
	case 5:
		n.SetLinkCapacity(links[op.rail][op.lo].ID, op.val)
	}
}

// TestDifferentialIncrementalVsFull drives four mirror networks over
// randomized topologies with randomized mutation sequences:
//
//   - inc: the default network (component registry on), reallocating
//     incrementally per mutation
//   - bfs: UseRegistry = false, so dirty-set discovery BFS-es linkFlows
//   - bat: the same mutations grouped into random-size batches
//   - ref: IncrementalCutoff = 0, so every recomputation is a full pass
//
// and asserts, at every batch boundary, that all four agree on every flow
// rate and every link rate — exactly, bit for bit. This is the equivalence
// invariant of DESIGN.md §"Batched + incremental allocator": a component's
// fill is a deterministic function of its own flows and links, so
// recomputing a subset of components can never drift from the full pass —
// and the registry only changes how components are found, never their
// contents (registry.go invariants).
func TestDifferentialIncrementalVsFull(t *testing.T) {
	var incrementalPasses, bfsPasses uint64
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		nRails := 2 + rng.Intn(4)
		nLinks := 2 + rng.Intn(4)

		build := func() (*Network, [][]*Link) {
			topo := NewTopology()
			links := make([][]*Link, nRails)
			for i := 0; i < nRails; i++ {
				for j := 0; j < nLinks; j++ {
					from := NodeID(rune('A'+i)) + NodeID(rune('a'+j))
					to := NodeID(rune('A'+i)) + NodeID(rune('a'+j+1))
					// Deterministic per-position capacity so all
					// three topologies are identical.
					cap := 1e6 * float64(10+(trial*7+i*3+j)%90)
					links[i] = append(links[i], topo.AddLink(from, to, cap, time.Millisecond, ""))
				}
			}
			return NewNetwork(topo), links
		}
		inc, incLinks := build()
		bfs, bfsLinks := build()
		bfs.UseRegistry = false // per-commit BFS discovery
		bat, batLinks := build()
		ref, refLinks := build()
		ref.IncrementalCutoff = 0 // every recomputation is full

		var incFlows, bfsFlows, batFlows, refFlows []*Flow

		randOp := func() mutOp {
			op := mutOp{kind: rng.Intn(6), rail: rng.Intn(nRails), val: float64(rng.Intn(100)) * 1e5}
			op.lo = rng.Intn(nLinks)
			op.hi = op.lo + 1 + rng.Intn(nLinks-op.lo)
			if len(incFlows) > 0 {
				op.flow = rng.Intn(len(incFlows))
			} else {
				op.kind = 0
			}
			switch op.kind {
			case 0:
				if rng.Intn(4) == 0 {
					op.val = math.Inf(1) // greedy flow
				}
				if rng.Intn(8) == 0 {
					op.hi = op.lo // empty path
				}
			case 3:
				op.val = float64(1 + rng.Intn(4))
			case 5:
				op.val = 1e6 * float64(1+rng.Intn(100))
				op.hi = op.lo + 1
			}
			return op
		}

		for step := 0; step < 40; step++ {
			batchLen := 1 + rng.Intn(5)
			ops := make([]mutOp, batchLen)
			for i := range ops {
				// Ops are generated before any of them apply, so
				// flow indices refer to the pre-batch flow list —
				// identical across all three mirrors.
				ops[i] = randOp()
			}
			// Apply: inc per-mutation, bat in one batch, ref
			// per-mutation followed by a forced full pass.
			for _, op := range ops {
				op.apply(inc, incLinks, &incFlows)
			}
			for _, op := range ops {
				op.apply(bfs, bfsLinks, &bfsFlows)
			}
			bat.Batch(func() {
				for _, op := range ops {
					op.apply(bat, batLinks, &batFlows)
				}
			})
			for _, op := range ops {
				op.apply(ref, refLinks, &refFlows)
			}
			ref.Reallocate()

			if len(incFlows) != len(refFlows) || len(bfsFlows) != len(refFlows) || len(batFlows) != len(refFlows) {
				t.Fatalf("trial %d step %d: mirror flow counts diverged", trial, step)
			}
			for i := range refFlows {
				if incFlows[i].Rate != refFlows[i].Rate {
					t.Fatalf("trial %d step %d flow %d: registry rate %v != full rate %v",
						trial, step, i, incFlows[i].Rate, refFlows[i].Rate)
				}
				if bfsFlows[i].Rate != refFlows[i].Rate {
					t.Fatalf("trial %d step %d flow %d: BFS rate %v != full rate %v",
						trial, step, i, bfsFlows[i].Rate, refFlows[i].Rate)
				}
				if batFlows[i].Rate != refFlows[i].Rate {
					t.Fatalf("trial %d step %d flow %d: batched rate %v != full rate %v",
						trial, step, i, batFlows[i].Rate, refFlows[i].Rate)
				}
			}
			for id := 0; id < inc.Topology().NumLinks(); id++ {
				lid := LinkID(id)
				if inc.LinkRate(lid) != ref.LinkRate(lid) || bfs.LinkRate(lid) != ref.LinkRate(lid) || bat.LinkRate(lid) != ref.LinkRate(lid) {
					t.Fatalf("trial %d step %d link %d: link rates diverged: inc=%v bfs=%v bat=%v full=%v",
						trial, step, id, inc.LinkRate(lid), bfs.LinkRate(lid), bat.LinkRate(lid), ref.LinkRate(lid))
				}
			}
		}
		incrementalPasses += inc.IncrementalReallocations
		bfsPasses += bfs.IncrementalReallocations
	}
	if incrementalPasses == 0 {
		t.Error("registry incremental path never exercised across any trial")
	}
	if bfsPasses == 0 {
		t.Error("BFS incremental path never exercised across any trial")
	}
}

// --- The E1 flash-crowd setup path ----------------------------------------

// e1SetupTopology mirrors the E1 flash-crowd scenario: a shared 60 Mbps
// access link fronting two well-provisioned CDN paths.
func e1SetupTopology() (*Network, Path, Path) {
	topo := NewTopology()
	access := topo.AddLink("clients", "border", 60e6, 2*time.Millisecond, "access")
	linkB := topo.AddLink("border", "cdn1", 1e9, time.Millisecond, "peering-1")
	linkC := topo.AddLink("border", "ixp", 1e9, 3*time.Millisecond, "peering-2")
	ixp := topo.AddLink("ixp", "cdn2", 1e9, time.Millisecond, "ixp-cdn2")
	n := NewNetwork(topo)
	return n, Path{access, linkB}, Path{access, linkC, ixp}
}

// TestBatchedSetupReallocationSavings pins the acceptance criterion:
// building the flash-crowd peak flow set under Batch costs ≥ 5× fewer
// reallocations than the unbatched mutation-at-a-time path.
func TestBatchedSetupReallocationSavings(t *testing.T) {
	const sessions = 200
	setup := func(n *Network, p1, p2 Path) {
		for i := 0; i < sessions; i++ {
			p := p1
			if i%2 == 1 {
				p = p2
			}
			f := n.StartFlow(p, 0, "session")
			n.SetDemand(f, math.Inf(1))
		}
	}

	plain, p1, p2 := e1SetupTopology()
	setup(plain, p1, p2)

	batched, q1, q2 := e1SetupTopology()
	batched.Batch(func() { setup(batched, q1, q2) })

	if batched.Reallocations != 1 {
		t.Errorf("batched setup cost %d reallocations, want 1", batched.Reallocations)
	}
	if plain.Reallocations < 5*batched.Reallocations {
		t.Errorf("unbatched %d vs batched %d reallocations: want ≥ 5× savings",
			plain.Reallocations, batched.Reallocations)
	}
	// Both end in the same allocation.
	if plain.LinkRate(0) != batched.LinkRate(0) {
		t.Errorf("access link rate differs: %v vs %v", plain.LinkRate(0), batched.LinkRate(0))
	}
}

// --- Benchmarks -----------------------------------------------------------

// BenchmarkReallocateBatched measures the E1 flash-crowd setup path: the
// cost of establishing the peak concurrent flow set, unbatched vs batched.
// The batched arm performs one reallocation per setup; the unbatched arm
// performs one per mutation (2×sessions). The realloc ratio is reported as
// a metric.
func BenchmarkReallocateBatched(b *testing.B) {
	const sessions = 200
	setup := func(n *Network, p1, p2 Path) {
		for i := 0; i < sessions; i++ {
			p := p1
			if i%2 == 1 {
				p = p2
			}
			f := n.StartFlow(p, 0, "session")
			n.SetDemand(f, math.Inf(1))
		}
	}
	var plainReallocs, batchedReallocs uint64
	b.Run("unbatched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n, p1, p2 := e1SetupTopology()
			setup(n, p1, p2)
			plainReallocs = n.Reallocations
		}
	})
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n, p1, p2 := e1SetupTopology()
			n.Batch(func() { setup(n, p1, p2) })
			batchedReallocs = n.Reallocations
		}
	})
	if batchedReallocs > 0 {
		b.ReportMetric(float64(plainReallocs)/float64(batchedReallocs), "realloc-ratio")
	}
}

// BenchmarkReallocateIncremental measures single-mutation cost on a
// many-component network (64 rails × 3 links, 8 flows per rail): the
// incremental path touches one component of 8 flows; the full path refills
// all 512.
func BenchmarkReallocateIncremental(b *testing.B) {
	build := func(cutoff float64) (*Network, [][]*Link, []*Flow) {
		topo, links := rails(64, 3, 1e8)
		n := NewNetwork(topo)
		n.IncrementalCutoff = cutoff
		var flows []*Flow
		n.Batch(func() {
			for i := range links {
				for k := 0; k < 8; k++ {
					p := Path{links[i][0], links[i][1], links[i][2]}
					flows = append(flows, n.StartFlow(p, 1e6*float64(1+k), ""))
				}
			}
		})
		return n, links, flows
	}
	// The demand must actually change on every visit to a flow (SetDemand
	// no-ops on an unchanged value); i/len(flows) advances once per sweep.
	b.Run("incremental", func(b *testing.B) {
		n, _, flows := build(DefaultIncrementalCutoff)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n.SetDemand(flows[i%len(flows)], 1e6*float64(1+(i+i/len(flows))%16))
		}
	})
	b.Run("full", func(b *testing.B) {
		n, _, flows := build(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n.SetDemand(flows[i%len(flows)], 1e6*float64(1+(i+i/len(flows))%16))
		}
	})
}
