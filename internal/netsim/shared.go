package netsim

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"
)

// OpKind enumerates the mutations a SharedNetwork accepts and records.
type OpKind uint8

const (
	// OpStart attaches a flow (Links = path, Value = demand, Tag = tag;
	// Flow = the ID the network assigned at apply time).
	OpStart OpKind = iota
	// OpStop detaches flow Flow.
	OpStop
	// OpSetDemand sets flow Flow's demand ceiling to Value.
	OpSetDemand
	// OpSetWeight sets flow Flow's fair-share weight to Value.
	OpSetWeight
	// OpSetPath re-routes flow Flow onto Links.
	OpSetPath
	// OpSetLinkCapacity sets link Link's capacity to Value.
	OpSetLinkCapacity
)

// String returns the op kind's lowercase name.
func (k OpKind) String() string {
	switch k {
	case OpStart:
		return "start"
	case OpStop:
		return "stop"
	case OpSetDemand:
		return "set-demand"
	case OpSetWeight:
		return "set-weight"
	case OpSetPath:
		return "set-path"
	case OpSetLinkCapacity:
		return "set-link-capacity"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one committed mutation in a SharedNetwork's log: a value type that
// can be replayed onto a fresh serial Network (Replay) or serialized for a
// future multi-process cluster mode. The log records ops in application
// order, so replaying it serially reproduces the shared run's flow and
// link rates bit for bit (pinned by TestSharedDifferentialOnFixtures).
type Op struct {
	Kind  OpKind
	Flow  FlowID
	Links []LinkID // path for OpStart / OpSetPath
	Value float64  // demand, weight or capacity
	Link  LinkID   // target of OpSetLinkCapacity
	Tag   string
}

// pathOf resolves a recorded link-ID sequence back to a Path.
func (t *Topology) pathOf(ids []LinkID) (Path, error) {
	p := make(Path, len(ids))
	for i, id := range ids {
		l := t.Link(id)
		if l == nil {
			return nil, fmt.Errorf("netsim: replay references unknown link %d", id)
		}
		p[i] = l
	}
	return p, nil
}

// OpSink receives every committed op (and periodic state snapshots) as
// they apply — the hook a durable journal implements (internal/journal) so
// a SharedNetwork's history survives the process. All methods are called
// from the owner goroutine, in commit order; implementations need no
// locking against the network but must not call back into it.
type OpSink interface {
	// AppendOp records one committed op together with the post-apply
	// StateDigest of the network (an FNV-1a fingerprint of the allocator
	// inputs), which replay tools compare per op to bisect divergence.
	AppendOp(op Op, digest uint64) error
	// AppendSnapshot records a full state snapshot; recovery loads the
	// latest snapshot and replays only the ops after it.
	AppendSnapshot(st NetState, digest uint64) error
	// AppendOpaque marks an opaque Batch whose mutations cannot be
	// journaled; recovery from a journal containing one is unsound and
	// must say so.
	AppendOpaque() error
}

// SharedConfig configures a SharedNetwork.
type SharedConfig struct {
	// Queue is the command channel capacity (backpressure bound for
	// writers). Zero means DefaultSharedQueue.
	Queue int
	// Deterministic buffers mutations instead of applying them on arrival:
	// nothing commits until Commit(), which applies the buffered window
	// sorted by (driver, per-driver sequence). Concurrent drivers that
	// synchronize on Commit barriers therefore produce bit-identical runs
	// regardless of goroutine scheduling. In this mode mutation calls
	// return before their op is applied: a StartFlow handle's ID and Rate
	// are unspecified until the next Commit, and reads see the previous
	// commit's snapshot.
	Deterministic bool
	// Record keeps the op log (Log), enabling Replay-based differential
	// checks and op-sequence export.
	Record bool
	// Journal, when set, receives every committed op (and, on the
	// SnapshotEvery cadence, full state snapshots) in commit order — the
	// durable mirror of Record. Sink errors do not fail mutations; the
	// first one is retained and surfaced by JournalError after Close.
	Journal OpSink
	// SnapshotEvery appends a state snapshot to Journal after that many
	// journaled ops, always at a commit boundary (never mid-window in
	// deterministic mode). Zero disables automatic snapshots.
	SnapshotEvery int
}

// DefaultSharedQueue is the command channel capacity when SharedConfig.Queue
// is zero.
const DefaultSharedQueue = 128

type cmdKind uint8

const (
	cmdOp cmdKind = iota
	cmdBatch
	cmdCommit
	cmdClose
)

type sharedCmd struct {
	kind   cmdKind
	op     Op             // parameters for cmdOp (Flow field unset until apply)
	flow   *Flow          // target handle; for OpStart, the placeholder to attach
	path   Path           // resolved path for OpStart / OpSetPath
	fn     func(*Network) // cmdBatch body
	driver uint64
	seq    uint64
	reply  chan struct{} // cap-1; the owner sends when the command is done (unused for buffered det-mode ops)
}

// cmdPool recycles sharedCmd structs (with their reply channels) across
// mutations: the synchronous caller returns its command after the owner's
// reply, and in deterministic mode the owner returns the whole window after
// commit — the command path allocates nothing in steady state.
var cmdPool = sync.Pool{New: func() any {
	return &sharedCmd{reply: make(chan struct{}, 1)}
}}

func getCmd() *sharedCmd { return cmdPool.Get().(*sharedCmd) }

func putCmd(c *sharedCmd) {
	c.op = Op{}
	c.flow = nil
	c.path = nil
	c.fn = nil
	c.driver, c.seq = 0, 0
	cmdPool.Put(c)
}

// SharedNetwork makes one Network drivable from many goroutines without a
// lock on the read path. A single owner goroutine has exclusive access to
// the Network and drains a bounded command channel; every mutation is a
// command carrying the caller's *Flow handle, so callers keep the same
// handles and (in the default immediate mode) the same synchronous
// semantics as the serial API. At every commit the owner publishes an
// immutable *Snapshot through an atomic pointer; Snapshot() is one atomic
// load, so readers never block writers and writers never block readers.
//
// Two modes:
//
//   - Immediate (default): each mutation applies and commits before the
//     call returns, exactly like the serial Network, just serialized
//     through the owner. Safe for any number of concurrent writers;
//     the interleaving (and thus flow-ID assignment) follows arrival
//     order, so distinct runs may differ — the op log still makes any
//     single run exactly replayable.
//
//   - Deterministic (SharedConfig.Deterministic): mutations buffer into a
//     window and Commit() applies the window as one batch, ordered by
//     (driver ID, per-driver sequence). Give each concurrent goroutine its
//     own Driver and synchronize goroutines with the Commit barrier, and a
//     run's rates, flow IDs and op log are bit-identical across executions
//     regardless of scheduling.
//
// Callers must not touch the inner Network directly between NewShared and
// Close; Batch lends it out on the owner goroutine for compound mutations.
type SharedNetwork struct {
	net  *Network
	cfg  SharedConfig
	cmds chan *sharedCmd
	snap atomic.Pointer[Snapshot]
	done chan struct{}

	closed atomic.Bool
	seq0   atomic.Uint64 // op sequence for driver 0 (the SharedNetwork's own methods)

	// Owner-goroutine state.
	window       []*sharedCmd // deterministic mode: ops buffered until Commit
	log          []Op
	logComplete  bool
	pubSeq       uint64
	opsSinceSnap int
	journalErr   error
}

// NewShared wraps a serial Network and starts the owner goroutine, taking
// ownership of n (the caller must not use n directly afterwards). The
// initial snapshot reflects n's state at handoff, so n may be pre-populated
// serially before sharing.
func NewShared(n *Network, cfg SharedConfig) *SharedNetwork {
	if cfg.Queue <= 0 {
		cfg.Queue = DefaultSharedQueue
	}
	s := &SharedNetwork{
		net:         n,
		cfg:         cfg,
		cmds:        make(chan *sharedCmd, cfg.Queue),
		done:        make(chan struct{}),
		logComplete: true,
	}
	// The initial publication is a full snapshot that also consumes the
	// pending delta flags, so the first delta publish diffs against an
	// accurate baseline even when the network was mutated serially first.
	s.snap.Store(n.snapshotDelta(0, nil))
	go s.run()
	return s
}

// Network returns the inner serial network. Only safe before the first
// concurrent use or after Close; it exists so tests and post-run analysis
// can inspect final state exactly.
func (s *SharedNetwork) Network() *Network { return s.net }

// Snapshot returns the latest published read snapshot: one atomic load,
// never nil, safe from any goroutine.
func (s *SharedNetwork) Snapshot() *Snapshot { return s.snap.Load() }

// --- Reader: every read is served from the latest snapshot -----------------

// LinkRate returns the total allocated rate on a link at the last commit.
func (s *SharedNetwork) LinkRate(id LinkID) float64 { return s.Snapshot().LinkRate(id) }

// Utilization returns allocated/capacity for a link at the last commit.
func (s *SharedNetwork) Utilization(id LinkID) float64 { return s.Snapshot().Utilization(id) }

// Congestion classifies a link's utilization at the last commit.
func (s *SharedNetwork) Congestion(id LinkID) CongestionLevel { return s.Snapshot().Congestion(id) }

// Headroom returns a link's unallocated capacity at the last commit.
func (s *SharedNetwork) Headroom(id LinkID) float64 { return s.Snapshot().Headroom(id) }

// QueueDelay estimates a link's queueing delay at the last commit.
func (s *SharedNetwork) QueueDelay(id LinkID) time.Duration { return s.Snapshot().QueueDelay(id) }

// PathRTT returns a path's round-trip time at the last commit.
func (s *SharedNetwork) PathRTT(p Path) time.Duration { return s.Snapshot().PathRTT(p) }

// LossRate estimates a link's loss probability at the last commit.
func (s *SharedNetwork) LossRate(id LinkID) float64 { return s.Snapshot().LossRate(id) }

// PathLoss returns a path's combined loss probability at the last commit.
func (s *SharedNetwork) PathLoss(p Path) float64 { return s.Snapshot().PathLoss(p) }

// FlowsOn returns the number of flows crossing a link at the last commit.
func (s *SharedNetwork) FlowsOn(id LinkID) int { return s.Snapshot().FlowsOn(id) }

// ActiveFlowsOn returns the number of positive-demand flows on a link at
// the last commit.
func (s *SharedNetwork) ActiveFlowsOn(id LinkID) int { return s.Snapshot().ActiveFlowsOn(id) }

// NumFlows returns the number of active flows at the last commit.
func (s *SharedNetwork) NumFlows() int { return s.Snapshot().NumFlows() }

// Stats returns the allocator work counters at the last commit.
func (s *SharedNetwork) Stats() Stats { return s.Snapshot().Stats() }

// --- Write surface ----------------------------------------------------------

// StartFlow attaches a flow, like Network.StartFlow. In immediate mode the
// returned handle is fully attached (ID and Rate valid) when the call
// returns; in deterministic mode it is a placeholder the next Commit
// attaches. The path is validated in the calling goroutine so a scenario
// bug panics the caller, not the owner.
func (s *SharedNetwork) StartFlow(path Path, demand float64, tag string) *Flow {
	return s.startFlow(path, demand, tag, 0, s.seq0.Add(1))
}

// StopFlow detaches a flow. Unknown or already-stopped flows are a no-op.
func (s *SharedNetwork) StopFlow(f *Flow) {
	s.flowOp(Op{Kind: OpStop}, f, nil, 0, s.seq0.Add(1))
}

// SetDemand updates a flow's demand ceiling.
func (s *SharedNetwork) SetDemand(f *Flow, demand float64) {
	s.flowOp(Op{Kind: OpSetDemand, Value: demand}, f, nil, 0, s.seq0.Add(1))
}

// SetWeight updates a flow's fair-share weight.
func (s *SharedNetwork) SetWeight(f *Flow, weight float64) {
	s.flowOp(Op{Kind: OpSetWeight, Value: weight}, f, nil, 0, s.seq0.Add(1))
}

// SetPath re-routes a flow. The path is validated caller-side.
func (s *SharedNetwork) SetPath(f *Flow, path Path) {
	if !path.Valid("", "") {
		panic(fmt.Sprintf("netsim: disconnected path %v", path))
	}
	s.flowOp(Op{Kind: OpSetPath}, f, path, 0, s.seq0.Add(1))
}

// SetLinkCapacity changes a link's capacity. The link and capacity are
// validated caller-side (the topology's link set is immutable); the
// equal-capacity no-op check stays owner-side where reading Capacity is
// race-free.
func (s *SharedNetwork) SetLinkCapacity(id LinkID, capacity float64) {
	s.linkOp(id, capacity, 0, s.seq0.Add(1))
}

// Batch runs fn on the owner goroutine with exclusive access to the inner
// Network, committing once when fn returns — the compound-mutation escape
// hatch for control loops. fn must use the passed Network, not the
// SharedNetwork (calling back in would deadlock). A Batch's mutations are
// opaque to the op log, so Log reports the log incomplete after one. In
// deterministic mode the batch is buffered like any op and fn runs at the
// next Commit.
func (s *SharedNetwork) Batch(fn func(*Network)) {
	c := getCmd()
	c.kind, c.fn, c.driver, c.seq = cmdBatch, fn, 0, s.seq0.Add(1)
	if s.cfg.Deterministic {
		s.send(c) // the owner recycles it after commit
		return
	}
	s.send(c)
	<-c.reply
	putCmd(c)
}

// Commit is a synchronization barrier. In deterministic mode it applies the
// buffered window — sorted by (driver, sequence) — as one batch and
// publishes the resulting snapshot. In immediate mode it just republishes
// (every mutation already committed); it still serves as a fence: when
// Commit returns, every command sent before it has been applied.
func (s *SharedNetwork) Commit() {
	c := getCmd()
	c.kind = cmdCommit
	s.send(c)
	<-c.reply
	putCmd(c)
}

// Close commits any buffered window, publishes a final snapshot, stops the
// owner goroutine and returns the inner Network for serial inspection.
// Callers must quiesce writers first: a mutation issued concurrently with
// (or after) Close may panic or block forever. Close is idempotent.
func (s *SharedNetwork) Close() *Network {
	if s.closed.Swap(true) {
		<-s.done
		return s.net
	}
	c := getCmd()
	c.kind = cmdClose
	s.cmds <- c
	<-c.reply
	<-s.done
	putCmd(c)
	return s.net
}

// Log returns the recorded op log and whether it is complete (no opaque
// Batch diluted it). Only valid after Close; it panics otherwise, since the
// log belongs to the owner goroutine while it runs. Requires
// SharedConfig.Record.
func (s *SharedNetwork) Log() ([]Op, bool) {
	if !s.closed.Load() {
		panic("netsim: SharedNetwork.Log before Close")
	}
	<-s.done
	return s.log, s.logComplete
}

// JournalError returns the first error the journal sink reported, if any.
// Like Log it is only valid after Close (it panics otherwise): sink errors
// belong to the owner goroutine while it runs. A run whose JournalError is
// non-nil has an incomplete journal; its recovery is untrustworthy.
func (s *SharedNetwork) JournalError() error {
	if !s.closed.Load() {
		panic("netsim: SharedNetwork.JournalError before Close")
	}
	<-s.done
	return s.journalErr
}

// Driver returns a command handle with its own deterministic op sequence.
// In deterministic mode, give each concurrent goroutine a distinct driver
// ID (≥1; 0 is the SharedNetwork's own methods): the Commit sort key is
// (driver ID, issue order within the driver), which no scheduler
// interleaving can perturb. A Driver must not be shared between goroutines.
func (s *SharedNetwork) Driver(id uint64) *Driver { return &Driver{s: s, id: id} }

// Driver issues ops on behalf of one logical writer, stamping each with the
// driver's ID and a local sequence number. See SharedNetwork.Driver.
type Driver struct {
	s   *SharedNetwork
	id  uint64
	seq uint64
}

func (d *Driver) next() uint64 { d.seq++; return d.seq }

// StartFlow is SharedNetwork.StartFlow stamped with this driver's order.
func (d *Driver) StartFlow(path Path, demand float64, tag string) *Flow {
	return d.s.startFlow(path, demand, tag, d.id, d.next())
}

// StopFlow is SharedNetwork.StopFlow stamped with this driver's order.
func (d *Driver) StopFlow(f *Flow) {
	d.s.flowOp(Op{Kind: OpStop}, f, nil, d.id, d.next())
}

// SetDemand is SharedNetwork.SetDemand stamped with this driver's order.
func (d *Driver) SetDemand(f *Flow, demand float64) {
	d.s.flowOp(Op{Kind: OpSetDemand, Value: demand}, f, nil, d.id, d.next())
}

// SetWeight is SharedNetwork.SetWeight stamped with this driver's order.
func (d *Driver) SetWeight(f *Flow, weight float64) {
	d.s.flowOp(Op{Kind: OpSetWeight, Value: weight}, f, nil, d.id, d.next())
}

// SetPath is SharedNetwork.SetPath stamped with this driver's order.
func (d *Driver) SetPath(f *Flow, path Path) {
	if !path.Valid("", "") {
		panic(fmt.Sprintf("netsim: disconnected path %v", path))
	}
	d.s.flowOp(Op{Kind: OpSetPath}, f, path, d.id, d.next())
}

// SetLinkCapacity is SharedNetwork.SetLinkCapacity stamped with this
// driver's order.
func (d *Driver) SetLinkCapacity(id LinkID, capacity float64) {
	d.s.linkOp(id, capacity, d.id, d.next())
}

// --- Command plumbing -------------------------------------------------------

func (s *SharedNetwork) send(c *sharedCmd) {
	if s.closed.Load() {
		panic("netsim: SharedNetwork used after Close")
	}
	s.cmds <- c
}

// enqueue ships one mutation: buffered (fire into the window, recycled by
// the owner after commit) in deterministic mode, synchronous (recycled here
// after the owner's reply) in immediate mode.
func (s *SharedNetwork) enqueue(c *sharedCmd) {
	if s.cfg.Deterministic {
		s.send(c)
		return
	}
	s.send(c)
	<-c.reply
	putCmd(c)
}

func (s *SharedNetwork) startFlow(path Path, demand float64, tag string, driver, seq uint64) *Flow {
	if !path.Valid("", "") {
		panic(fmt.Sprintf("netsim: disconnected path %v", path))
	}
	f := &Flow{}
	c := getCmd()
	c.kind, c.op = cmdOp, Op{Kind: OpStart, Value: demand, Tag: tag}
	c.flow, c.path, c.driver, c.seq = f, path, driver, seq
	s.enqueue(c)
	return f
}

func (s *SharedNetwork) flowOp(op Op, f *Flow, path Path, driver, seq uint64) {
	c := getCmd()
	c.kind, c.op = cmdOp, op
	c.flow, c.path, c.driver, c.seq = f, path, driver, seq
	s.enqueue(c)
}

func (s *SharedNetwork) linkOp(id LinkID, capacity float64, driver, seq uint64) {
	l := s.net.topo.Link(id)
	if l == nil {
		panic(fmt.Sprintf("netsim: SetLinkCapacity on unknown link %d", id))
	}
	if capacity <= 0 {
		panic(fmt.Sprintf("netsim: non-positive capacity %v for link %s->%s", capacity, l.From, l.To))
	}
	c := getCmd()
	c.kind, c.op = cmdOp, Op{Kind: OpSetLinkCapacity, Link: id, Value: capacity}
	c.driver, c.seq = driver, seq
	s.enqueue(c)
}

// --- Owner goroutine --------------------------------------------------------

func (s *SharedNetwork) run() {
	defer close(s.done)
	for c := range s.cmds {
		switch c.kind {
		case cmdOp:
			if s.cfg.Deterministic {
				s.window = append(s.window, c)
				continue
			}
			s.apply(c)
			s.maybeSnapshot()
			s.publish()
			c.reply <- struct{}{}
		case cmdBatch:
			if s.cfg.Deterministic {
				s.window = append(s.window, c)
				continue
			}
			s.runBatch(c)
			s.publish()
			c.reply <- struct{}{}
		case cmdCommit:
			s.commitWindow()
			s.maybeSnapshot()
			s.publish()
			c.reply <- struct{}{}
		case cmdClose:
			s.commitWindow()
			s.publish()
			c.reply <- struct{}{}
			return
		}
	}
}

// commitWindow applies the deterministic window, sorted by (driver, seq),
// as one batch. A no-op when the window is empty or in immediate mode.
func (s *SharedNetwork) commitWindow() {
	if len(s.window) == 0 {
		return
	}
	slices.SortStableFunc(s.window, func(a, b *sharedCmd) int {
		if a.driver != b.driver {
			if a.driver < b.driver {
				return -1
			}
			return 1
		}
		switch {
		case a.seq < b.seq:
			return -1
		case a.seq > b.seq:
			return 1
		default:
			return 0
		}
	})
	s.net.Batch(func() {
		for _, c := range s.window {
			if c.kind == cmdBatch {
				s.runBatch(c)
				continue
			}
			s.apply(c)
		}
	})
	for i, c := range s.window {
		putCmd(c)
		s.window[i] = nil
	}
	s.window = s.window[:0]
}

func (s *SharedNetwork) runBatch(c *sharedCmd) {
	if s.cfg.Record {
		s.logComplete = false
	}
	if s.cfg.Journal != nil {
		s.noteJournalErr(s.cfg.Journal.AppendOpaque())
	}
	s.net.Batch(func() { c.fn(s.net) })
}

// apply performs one mutation on the inner network and records it. Ops on
// detached flows are no-ops and are not recorded (their handles may carry a
// stale or zero ID that would corrupt a replay). Recording happens after
// the mutation so the journal sink sees the post-apply state digest; the Op
// value (and its Links slice) is only materialized when a log or journal is
// actually attached, so unrecorded runs pay nothing for it.
func (s *SharedNetwork) apply(c *sharedCmd) {
	n := s.net
	live := true
	switch c.op.Kind {
	case OpStart:
		n.startFlowAs(c.flow, c.path, c.op.Value, c.op.Tag)
	case OpStop:
		live = n.attached(c.flow)
		n.StopFlow(c.flow)
	case OpSetDemand:
		live = n.attached(c.flow)
		n.SetDemand(c.flow, c.op.Value)
	case OpSetWeight:
		live = n.attached(c.flow)
		n.SetWeight(c.flow, c.op.Value)
	case OpSetPath:
		live = n.attached(c.flow)
		n.SetPath(c.flow, c.path)
	case OpSetLinkCapacity:
		n.SetLinkCapacity(c.op.Link, c.op.Value)
	}
	if !live || (!s.cfg.Record && s.cfg.Journal == nil) {
		return
	}
	var op Op
	switch c.op.Kind {
	case OpStart:
		op = Op{Kind: OpStart, Flow: c.flow.ID, Links: linkIDs(c.path), Value: c.op.Value, Tag: c.op.Tag}
	case OpStop:
		op = Op{Kind: OpStop, Flow: c.flow.ID}
	case OpSetDemand:
		op = Op{Kind: OpSetDemand, Flow: c.flow.ID, Value: c.op.Value}
	case OpSetWeight:
		op = Op{Kind: OpSetWeight, Flow: c.flow.ID, Value: c.op.Value}
	case OpSetPath:
		op = Op{Kind: OpSetPath, Flow: c.flow.ID, Links: linkIDs(c.path)}
	case OpSetLinkCapacity:
		op = Op{Kind: OpSetLinkCapacity, Link: c.op.Link, Value: c.op.Value}
	}
	s.record(op)
}

func (s *SharedNetwork) record(op Op) {
	if s.cfg.Record {
		s.log = append(s.log, op)
	}
	if s.cfg.Journal != nil {
		s.noteJournalErr(s.cfg.Journal.AppendOp(op, s.net.StateDigest()))
		s.opsSinceSnap++
	}
}

// maybeSnapshot appends a journal snapshot once SnapshotEvery ops have been
// journaled since the last one. Called only at commit boundaries (after an
// immediate-mode apply or a deterministic-mode commitWindow), never inside
// an open batch window.
func (s *SharedNetwork) maybeSnapshot() {
	j := s.cfg.Journal
	if j == nil || s.cfg.SnapshotEvery <= 0 || s.opsSinceSnap < s.cfg.SnapshotEvery {
		return
	}
	s.opsSinceSnap = 0
	s.noteJournalErr(j.AppendSnapshot(s.net.ExportState(), s.net.StateDigest()))
}

func (s *SharedNetwork) noteJournalErr(err error) {
	if err != nil && s.journalErr == nil {
		s.journalErr = err
	}
}

func (s *SharedNetwork) publish() {
	s.pubSeq++
	s.snap.Store(s.net.snapshotDelta(s.pubSeq, s.snap.Load()))
}

func linkIDs(p Path) []LinkID {
	ids := make([]LinkID, len(p))
	for i, l := range p {
		ids[i] = l.ID
	}
	return ids
}
