package netsim

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"time"
)

// FlowState is one flow's allocator-input state as captured by ExportState:
// everything that determines the flow's rate except the other flows.
type FlowState struct {
	ID     FlowID
	Links  []LinkID
	Demand float64
	Weight float64
	Tag    string
}

// NetState is a network's full allocator-input state at one instant: flow
// set, link capacities, ID counter and rate bound. Rates are deliberately
// derived data — they are a pure function of this state, so ImportState
// recomputes them instead of trusting a recording — but LinkRates carries
// the allocated per-link rates at export time so an external consumer (a
// journal snapshot, a recovery check) can verify a restored network
// reproduced them bit for bit.
type NetState struct {
	// NextID is the ID the next StartFlow will assign. Restoring it keeps
	// a snapshot-recovered network assigning the same IDs as the original
	// run, which tail replay depends on.
	NextID FlowID
	// MaxRate is the per-flow rate bound.
	MaxRate float64
	// Flows holds every live flow, sorted by ID.
	Flows []FlowState
	// Capacities holds every link's capacity, indexed by LinkID.
	Capacities []float64
	// LinkRates holds the allocated per-link rates at export time, indexed
	// by LinkID. Informational: ImportState ignores it.
	LinkRates []float64
}

// ExportState captures the network's allocator-input state. The result
// shares no memory with the network; it can be serialized, stored and
// re-imported on a fresh network over the same topology.
func (n *Network) ExportState() NetState {
	st := NetState{
		NextID:     n.nextID,
		MaxRate:    n.MaxRate,
		Capacities: make([]float64, n.topo.NumLinks()),
		LinkRates:  make([]float64, n.topo.NumLinks()),
	}
	for i, l := range n.topo.links {
		st.Capacities[i] = l.Capacity
	}
	copy(st.LinkRates, n.linkRate)
	ids := make([]FlowID, 0, len(n.flows))
	for id := range n.flows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	st.Flows = make([]FlowState, 0, len(ids))
	for _, id := range ids {
		f := n.flows[id]
		st.Flows = append(st.Flows, FlowState{
			ID: id, Links: linkIDs(f.Path), Demand: f.Demand, Weight: f.Weight, Tag: f.Tag,
		})
	}
	return st
}

// ImportState restores an exported state onto a fresh network built over an
// identical topology: capacities are applied, every flow is re-attached
// with its recorded ID, and the ID counter resumes where the export left
// off, so replaying a log tail recorded after the export continues exactly
// as the original run did. Rates are recomputed, not restored — they are a
// deterministic function of the imported inputs. The network must be
// fresh: importing over existing flows (or after any StartFlow) is an
// error.
func (n *Network) ImportState(st NetState) error {
	if len(n.flows) != 0 || n.nextID != 0 {
		return fmt.Errorf("netsim: ImportState on a non-fresh network (%d flows, next ID %d)", len(n.flows), n.nextID)
	}
	if len(st.Capacities) != n.topo.NumLinks() {
		return fmt.Errorf("netsim: ImportState capacity count %d does not match topology's %d links", len(st.Capacities), n.topo.NumLinks())
	}
	var err error
	n.Batch(func() {
		for i, c := range st.Capacities {
			if c <= 0 {
				err = fmt.Errorf("netsim: ImportState non-positive capacity %v for link %d", c, i)
				return
			}
			n.SetLinkCapacity(LinkID(i), c)
		}
		if st.MaxRate > 0 {
			n.SetMaxRate(st.MaxRate)
		}
		var prev FlowID = -1
		for _, fs := range st.Flows {
			if fs.ID <= prev {
				err = fmt.Errorf("netsim: ImportState flows not strictly ascending at ID %d", fs.ID)
				return
			}
			prev = fs.ID
			p, perr := n.topo.pathOf(fs.Links)
			if perr != nil {
				err = fmt.Errorf("netsim: ImportState flow %d: %w", fs.ID, perr)
				return
			}
			n.nextID = fs.ID
			f := n.StartFlow(p, fs.Demand, fs.Tag)
			if fs.Weight != 0 {
				n.SetWeight(f, fs.Weight)
			}
		}
		if st.NextID < prev+1 {
			err = fmt.Errorf("netsim: ImportState NextID %d below last flow ID %d", st.NextID, prev)
			return
		}
		n.nextID = st.NextID
	})
	return err
}

// StateDigest hashes the network's allocator-input state — flow set (IDs,
// paths, demands, weights, tags), link capacities, ID counter and MaxRate —
// with FNV-1a. Rates are excluded on purpose: inputs are updated eagerly
// even inside an open Batch, while rates lag until the batch commits, so an
// input digest is a well-defined per-op fingerprint in both SharedNetwork
// modes, and rates are a pure function of the digested inputs anyway. Two
// networks with equal digests that share an allocator therefore allocate
// bit-identical rates; the journal records this digest per op, and bisect
// replays a log until the digests part ways.
func (n *Network) StateDigest() uint64 {
	h := newFNV()
	h.u64(uint64(n.nextID))
	h.u64(math.Float64bits(n.MaxRate))
	// The ID sort buffer is owned by the network: digests are taken per
	// committed op on the journaling hot path and per replayed op during
	// recovery, so a fresh slice + sort closure here would dominate replay
	// allocations.
	ids := n.digestIDs[:0]
	for id := range n.flows {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	n.digestIDs = ids
	for _, id := range ids {
		f := n.flows[id]
		h.u64(uint64(id))
		h.u64(math.Float64bits(f.Demand))
		h.u64(math.Float64bits(f.Weight))
		h.str(f.Tag)
		h.u64(uint64(len(f.Path)))
		for _, l := range f.Path {
			h.u64(uint64(l.ID))
		}
	}
	for _, l := range n.topo.links {
		h.u64(math.Float64bits(l.Capacity))
	}
	return h.sum
}

// fnv is an incremental FNV-1a 64 hasher over fixed-width words, shared by
// StateDigest and the journal's digest checks.
type fnv struct{ sum uint64 }

func newFNV() *fnv { return &fnv{sum: 1469598103934665603} }

func (h *fnv) byte(b byte) {
	h.sum ^= uint64(b)
	h.sum *= 1099511628211
}

func (h *fnv) u64(v uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
}

func (h *fnv) str(s string) {
	h.u64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
}

// LinkState is one link of an exported topology.
type LinkState struct {
	From, To NodeID
	Capacity float64
	Delay    time.Duration
	Name     string
}

// TopoState is a topology serialized as data: links in LinkID order. A
// journal stores one so recovery (and offline tools like bisect) can
// rebuild the exact graph without access to the scenario code that built
// it. Capacities here are the construction-time values; runtime
// SetLinkCapacity edits live in the op log / NetState.
type TopoState struct {
	Links []LinkState
}

// ExportTopology flattens a topology into data.
func ExportTopology(t *Topology) TopoState {
	ts := TopoState{Links: make([]LinkState, 0, len(t.links))}
	for _, l := range t.links {
		ts.Links = append(ts.Links, LinkState{
			From: l.From, To: l.To, Capacity: l.Capacity, Delay: l.Delay, Name: l.Name,
		})
	}
	return ts
}

// Build reconstructs the topology: links are added in order, so LinkIDs
// match the exported graph.
func (ts TopoState) Build() *Topology {
	t := NewTopology()
	for _, l := range ts.Links {
		t.AddLink(l.From, l.To, l.Capacity, l.Delay, l.Name)
	}
	return t
}
