package netsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestWeightedSharing(t *testing.T) {
	topo, p := line(90)
	n := NewNetwork(topo)
	heavy := n.StartFlow(p, math.Inf(1), "")
	n.SetWeight(heavy, 2)
	light := n.StartFlow(p, math.Inf(1), "")
	if !almostEq(heavy.Rate, 60) || !almostEq(light.Rate, 30) {
		t.Errorf("rates = %v, %v, want 60/30 (2:1 split)", heavy.Rate, light.Rate)
	}
}

func TestWeightedDemandCapStillBinds(t *testing.T) {
	topo, p := line(90)
	n := NewNetwork(topo)
	heavy := n.StartFlow(p, 20, "") // demand-limited despite weight
	n.SetWeight(heavy, 10)
	light := n.StartFlow(p, math.Inf(1), "")
	if !almostEq(heavy.Rate, 20) {
		t.Errorf("heavy rate = %v, want demand 20", heavy.Rate)
	}
	if !almostEq(light.Rate, 70) {
		t.Errorf("light rate = %v, want leftover 70", light.Rate)
	}
}

func TestWeightedMultiBottleneck(t *testing.T) {
	// Weighted version of the classic two-bottleneck case.
	topo := NewTopology()
	l1 := topo.AddLink("a", "b", 30, time.Millisecond, "l1")
	l2 := topo.AddLink("b", "c", 100, time.Millisecond, "l2")
	n := NewNetwork(topo)
	fA := n.StartFlow(Path{l1}, math.Inf(1), "")
	n.SetWeight(fA, 2)
	fB := n.StartFlow(Path{l1, l2}, math.Inf(1), "")
	fC := n.StartFlow(Path{l2}, math.Inf(1), "")
	// l1: weights 2+1 → fA 20, fB 10; l2: fC takes the rest (90).
	if !almostEq(fA.Rate, 20) || !almostEq(fB.Rate, 10) {
		t.Errorf("l1 split = %v/%v, want 20/10", fA.Rate, fB.Rate)
	}
	if !almostEq(fC.Rate, 90) {
		t.Errorf("fC = %v, want 90", fC.Rate)
	}
}

func TestSetWeightReallocates(t *testing.T) {
	topo, p := line(90)
	n := NewNetwork(topo)
	f1 := n.StartFlow(p, math.Inf(1), "")
	f2 := n.StartFlow(p, math.Inf(1), "")
	if !almostEq(f1.Rate, 45) {
		t.Fatalf("pre rate = %v", f1.Rate)
	}
	before := n.Reallocations
	n.SetWeight(f1, 1) // 0→1 is a change of the stored field
	_ = before
	n.SetWeight(f2, 8)
	if !almostEq(f1.Rate, 10) || !almostEq(f2.Rate, 80) {
		t.Errorf("rates = %v/%v, want 10/80", f1.Rate, f2.Rate)
	}
	r := n.Reallocations
	n.SetWeight(f2, 8) // no-op
	if n.Reallocations != r {
		t.Error("same-weight set triggered a reallocation")
	}
}

func TestZeroWeightTreatedAsOne(t *testing.T) {
	topo, p := line(90)
	n := NewNetwork(topo)
	f1 := n.StartFlow(p, math.Inf(1), "")
	f2 := n.StartFlow(p, math.Inf(1), "")
	if !almostEq(f1.Rate, f2.Rate) {
		t.Errorf("default weights unequal: %v vs %v", f1.Rate, f2.Rate)
	}
}

// Property: weighted allocation conserves capacity and splits saturated
// links in weight proportion among greedy flows.
func TestQuickWeightedProportions(t *testing.T) {
	f := func(w1Raw, w2Raw uint8) bool {
		w1 := float64(w1Raw%8) + 1
		w2 := float64(w2Raw%8) + 1
		topo, p := line(100)
		n := NewNetwork(topo)
		f1 := n.StartFlow(p, math.Inf(1), "")
		f2 := n.StartFlow(p, math.Inf(1), "")
		n.SetWeight(f1, w1)
		n.SetWeight(f2, w2)
		total := f1.Rate + f2.Rate
		if math.Abs(total-100) > 1e-6 {
			return false
		}
		return math.Abs(f1.Rate/f2.Rate-w1/w2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
