package netsim

import (
	"math"
	"math/rand"
	"testing"
)

// TestSnapshotMatchesNetwork pins the snapshot read surface to the live
// one: after arbitrary churn, every Reader query answered from a Snapshot
// equals the same query answered by the Network it was taken from, exactly
// — the two share the formula helpers, so any drift is a bug.
func TestSnapshotMatchesNetwork(t *testing.T) {
	for name, build := range sharedFixtures() {
		build := build
		t.Run(name, func(t *testing.T) {
			n, paths := build()
			rng := rand.New(rand.NewSource(11))
			var flows []*Flow
			check := func(step int) {
				t.Helper()
				sn := n.Snapshot()
				if sn.NumFlows() != n.NumFlows() {
					t.Fatalf("step %d: NumFlows %d != %d", step, sn.NumFlows(), n.NumFlows())
				}
				if sn.Stats() != n.Stats() {
					t.Fatalf("step %d: stats diverge", step)
				}
				for id := 0; id < n.Topology().NumLinks(); id++ {
					l := LinkID(id)
					if sn.LinkRate(l) != n.LinkRate(l) ||
						sn.Utilization(l) != n.Utilization(l) ||
						sn.Congestion(l) != n.Congestion(l) ||
						sn.Headroom(l) != n.Headroom(l) ||
						sn.QueueDelay(l) != n.QueueDelay(l) ||
						sn.LossRate(l) != n.LossRate(l) ||
						sn.FlowsOn(l) != n.FlowsOn(l) ||
						sn.ActiveFlowsOn(l) != n.ActiveFlowsOn(l) {
						t.Fatalf("step %d: link %d snapshot reads diverge from live", step, id)
					}
				}
				for _, p := range paths {
					if sn.PathRTT(p) != n.PathRTT(p) || sn.PathLoss(p) != n.PathLoss(p) {
						t.Fatalf("step %d: path reads diverge from live", step)
					}
				}
				for _, f := range flows {
					v, ok := sn.Flow(f.ID)
					if n.attached(f) {
						if !ok || v.Rate != f.Rate || v.Demand != f.Demand || v.Weight != f.Weight || v.Tag != f.Tag {
							t.Fatalf("step %d: flow %d view %+v diverges from live", step, f.ID, v)
						}
					} else if ok {
						t.Fatalf("step %d: stopped flow %d present in snapshot", step, f.ID)
					}
				}
			}
			check(-1)
			for step := 0; step < 120; step++ {
				op := rng.Intn(6)
				if len(flows) == 0 {
					op = 0
				}
				pi := rng.Intn(len(paths))
				val := float64(1 + rng.Intn(300))
				if rng.Intn(6) == 0 {
					val = math.Inf(1)
				}
				switch op {
				case 0:
					flows = append(flows, n.StartFlow(paths[pi], val, "snap"))
				case 1:
					n.StopFlow(flows[rng.Intn(len(flows))])
				case 2:
					n.SetDemand(flows[rng.Intn(len(flows))], val)
				case 3:
					n.SetWeight(flows[rng.Intn(len(flows))], float64(1+rng.Intn(4)))
				case 4:
					n.SetPath(flows[rng.Intn(len(flows))], paths[pi])
				case 5:
					p := paths[pi]
					n.SetLinkCapacity(p[rng.Intn(len(p))].ID, float64(50+rng.Intn(200)))
				}
				check(step)
			}
		})
	}
}

// A snapshot taken before a mutation must not see it: immutability pin.
func TestSnapshotImmutable(t *testing.T) {
	topo, p := line(100)
	n := NewNetwork(topo)
	f := n.StartFlow(p, math.Inf(1), "")
	before := n.Snapshot()
	n.SetDemand(f, 10)
	n.SetLinkCapacity(p[0].ID, 40)
	if got := before.LinkRate(p[0].ID); got != 100 {
		t.Errorf("old snapshot link rate mutated: %v, want 100", got)
	}
	if v, _ := before.Flow(f.ID); v.Rate != 100 {
		t.Errorf("old snapshot flow rate mutated: %v, want 100", v.Rate)
	}
	if got := before.Headroom(p[0].ID); got != 0 {
		t.Errorf("old snapshot headroom mutated: %v, want 0", got)
	}
	if got := n.Snapshot().LinkRate(p[0].ID); got != 10 {
		t.Errorf("fresh snapshot link rate = %v, want 10", got)
	}
}
