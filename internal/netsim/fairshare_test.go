package netsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-6*(1+math.Abs(b)) }

// line builds a linear topology a->b->c... with the given per-link capacities.
func line(caps ...float64) (*Topology, Path) {
	t := NewTopology()
	var p Path
	for i, c := range caps {
		from := NodeID(rune('a' + i))
		to := NodeID(rune('a' + i + 1))
		p = append(p, t.AddLink(from, to, c, time.Millisecond, ""))
	}
	return t, p
}

func TestSingleFlowGetsBottleneck(t *testing.T) {
	topo, p := line(100, 10, 50)
	n := NewNetwork(topo)
	f := n.StartFlow(p, math.Inf(1), "")
	if !almostEq(f.Rate, 10) {
		t.Errorf("rate = %v, want 10", f.Rate)
	}
}

func TestDemandCap(t *testing.T) {
	topo, p := line(100)
	n := NewNetwork(topo)
	f := n.StartFlow(p, 30, "")
	if !almostEq(f.Rate, 30) {
		t.Errorf("rate = %v, want demand 30", f.Rate)
	}
}

func TestEqualSharing(t *testing.T) {
	topo, p := line(90)
	n := NewNetwork(topo)
	f1 := n.StartFlow(p, math.Inf(1), "")
	f2 := n.StartFlow(p, math.Inf(1), "")
	f3 := n.StartFlow(p, math.Inf(1), "")
	for _, f := range []*Flow{f1, f2, f3} {
		if !almostEq(f.Rate, 30) {
			t.Errorf("flow %d rate = %v, want 30", f.ID, f.Rate)
		}
	}
}

func TestMaxMinWithSmallDemand(t *testing.T) {
	// One flow is demand-limited to 10; the other two split the rest.
	topo, p := line(100)
	n := NewNetwork(topo)
	small := n.StartFlow(p, 10, "")
	big1 := n.StartFlow(p, math.Inf(1), "")
	big2 := n.StartFlow(p, math.Inf(1), "")
	if !almostEq(small.Rate, 10) {
		t.Errorf("small rate = %v, want 10", small.Rate)
	}
	if !almostEq(big1.Rate, 45) || !almostEq(big2.Rate, 45) {
		t.Errorf("big rates = %v, %v, want 45 each", big1.Rate, big2.Rate)
	}
}

func TestTwoBottlenecks(t *testing.T) {
	// Classic max-min example: flow A crosses link1(cap 10) shared with B;
	// B also crosses link2 (cap 100) shared with C.
	topo := NewTopology()
	l1 := topo.AddLink("a", "b", 10, time.Millisecond, "l1")
	l2 := topo.AddLink("b", "c", 100, time.Millisecond, "l2")
	n := NewNetwork(topo)
	fA := n.StartFlow(Path{l1}, math.Inf(1), "")
	fB := n.StartFlow(Path{l1, l2}, math.Inf(1), "")
	fC := n.StartFlow(Path{l2}, math.Inf(1), "")
	if !almostEq(fA.Rate, 5) || !almostEq(fB.Rate, 5) {
		t.Errorf("l1 flows = %v,%v want 5,5", fA.Rate, fB.Rate)
	}
	if !almostEq(fC.Rate, 95) {
		t.Errorf("fC = %v, want 95", fC.Rate)
	}
}

func TestStopFlowReleasesCapacity(t *testing.T) {
	topo, p := line(100)
	n := NewNetwork(topo)
	f1 := n.StartFlow(p, math.Inf(1), "")
	f2 := n.StartFlow(p, math.Inf(1), "")
	if !almostEq(f1.Rate, 50) {
		t.Fatalf("pre rate = %v", f1.Rate)
	}
	n.StopFlow(f2)
	if !almostEq(f1.Rate, 100) {
		t.Errorf("post rate = %v, want 100", f1.Rate)
	}
	if f2.Rate != 0 {
		t.Errorf("stopped flow rate = %v, want 0", f2.Rate)
	}
	n.StopFlow(f2) // no-op
	n.StopFlow(nil)
}

func TestSetDemandReallocates(t *testing.T) {
	topo, p := line(100)
	n := NewNetwork(topo)
	f1 := n.StartFlow(p, math.Inf(1), "")
	f2 := n.StartFlow(p, math.Inf(1), "")
	n.SetDemand(f1, 20)
	if !almostEq(f1.Rate, 20) || !almostEq(f2.Rate, 80) {
		t.Errorf("rates = %v,%v want 20,80", f1.Rate, f2.Rate)
	}
}

func TestSetPathReroutes(t *testing.T) {
	topo := NewTopology()
	l1 := topo.AddLink("a", "b", 10, time.Millisecond, "")
	l2 := topo.AddLink("a", "b", 100, time.Millisecond, "")
	n := NewNetwork(topo)
	f := n.StartFlow(Path{l1}, math.Inf(1), "")
	if !almostEq(f.Rate, 10) {
		t.Fatalf("rate = %v", f.Rate)
	}
	n.SetPath(f, Path{l2})
	if !almostEq(f.Rate, 100) {
		t.Errorf("rerouted rate = %v, want 100", f.Rate)
	}
	if !almostEq(n.LinkRate(l1.ID), 0) {
		t.Errorf("old link still carries %v", n.LinkRate(l1.ID))
	}
}

func TestEmptyPathCappedAtMaxRate(t *testing.T) {
	topo := NewTopology()
	topo.AddNode("a")
	n := NewNetwork(topo)
	f := n.StartFlow(Path{}, math.Inf(1), "")
	if !almostEq(f.Rate, DefaultMaxRate) {
		t.Errorf("rate = %v, want MaxRate", f.Rate)
	}
}

func TestMaxRateCapsAllFlows(t *testing.T) {
	topo, p := line(1e12)
	n := NewNetwork(topo)
	n.MaxRate = 5e6
	f := n.StartFlow(p, math.Inf(1), "")
	if !almostEq(f.Rate, 5e6) {
		t.Errorf("rate = %v, want 5e6", f.Rate)
	}
}

func TestUtilizationAndHeadroom(t *testing.T) {
	topo, p := line(100)
	n := NewNetwork(topo)
	n.StartFlow(p, 60, "")
	id := p[0].ID
	if !almostEq(n.Utilization(id), 0.6) {
		t.Errorf("util = %v, want 0.6", n.Utilization(id))
	}
	if !almostEq(n.Headroom(id), 40) {
		t.Errorf("headroom = %v, want 40", n.Headroom(id))
	}
}

func TestCongestionLevels(t *testing.T) {
	topo, p := line(100)
	n := NewNetwork(topo)
	f := n.StartFlow(p, 10, "")
	id := p[0].ID
	cases := []struct {
		demand float64
		want   CongestionLevel
	}{{10, CongestionNone}, {75, CongestionModerate}, {92, CongestionHigh}, {99, CongestionSevere}}
	for _, c := range cases {
		n.SetDemand(f, c.demand)
		if got := n.Congestion(id); got != c.want {
			t.Errorf("demand %v: congestion = %v, want %v", c.demand, got, c.want)
		}
	}
}

func TestLossRisesWithUtilization(t *testing.T) {
	topo, p := line(100)
	n := NewNetwork(topo)
	f := n.StartFlow(p, 50, "")
	if n.PathLoss(p) != 0 {
		t.Errorf("loss at 50%% util = %v, want 0", n.PathLoss(p))
	}
	n.SetDemand(f, 100)
	if n.PathLoss(p) <= 0 {
		t.Error("loss at 100% util should be positive")
	}
}

func TestQueueDelayGrowsWithLoad(t *testing.T) {
	topo, p := line(100)
	n := NewNetwork(topo)
	f := n.StartFlow(p, 10, "")
	low := n.PathRTT(p)
	n.SetDemand(f, 99)
	high := n.PathRTT(p)
	if high <= low {
		t.Errorf("RTT did not grow with load: %v -> %v", low, high)
	}
	if min := 2 * p.PropDelay(); low < min {
		t.Errorf("RTT %v below propagation floor %v", low, min)
	}
}

func TestFlowsOn(t *testing.T) {
	topo, p := line(100)
	n := NewNetwork(topo)
	n.StartFlow(p, 1, "")
	n.StartFlow(p, 1, "")
	if got := n.FlowsOn(p[0].ID); got != 2 {
		t.Errorf("FlowsOn = %d, want 2", got)
	}
}

// Property-based check of the max-min allocation invariants:
//  1. no link is over capacity,
//  2. no flow exceeds its demand or MaxRate,
//  3. every flow is bottlenecked: it either hits its demand/MaxRate or
//     crosses a link that is (numerically) saturated.
func TestQuickMaxMinInvariants(t *testing.T) {
	type flowSpec struct {
		A, B   uint8
		Demand uint16
	}
	f := func(specs []flowSpec) bool {
		topo := NewTopology()
		var links []*Link
		// 4-node ring with modest capacities so saturation happens.
		nodes := []NodeID{"n0", "n1", "n2", "n3"}
		for i := range nodes {
			links = append(links, topo.AddLink(nodes[i], nodes[(i+1)%4], 50+float64(i)*20, time.Millisecond, ""))
		}
		n := NewNetwork(topo)
		n.MaxRate = 500
		var flows []*Flow
		for _, s := range specs {
			if len(flows) >= 24 {
				break
			}
			src := int(s.A) % 4
			hops := 1 + int(s.B)%3
			var p Path
			for h := 0; h < hops; h++ {
				p = append(p, links[(src+h)%4])
			}
			d := float64(s.Demand%200) + 0.5
			flows = append(flows, n.StartFlow(p, d, ""))
		}
		const eps = 1e-6
		for _, l := range topo.Links() {
			if n.LinkRate(l.ID) > l.Capacity+eps {
				return false
			}
		}
		for _, fl := range flows {
			if fl.Rate > fl.Demand+eps || fl.Rate > n.MaxRate+eps {
				return false
			}
			bottlenecked := fl.Rate >= fl.Demand-eps || fl.Rate >= n.MaxRate-eps
			for _, l := range fl.Path {
				if n.LinkRate(l.ID) >= l.Capacity-eps {
					bottlenecked = true
				}
			}
			if !bottlenecked {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStartFlowDisconnectedPanics(t *testing.T) {
	topo := NewTopology()
	l1 := topo.AddLink("a", "b", 10, 0, "")
	l2 := topo.AddLink("c", "d", 10, 0, "")
	n := NewNetwork(topo)
	defer func() {
		if recover() == nil {
			t.Error("disconnected path did not panic")
		}
	}()
	n.StartFlow(Path{l1, l2}, 1, "")
}

func BenchmarkReallocate(b *testing.B) {
	topo := NewTopology()
	var links []*Link
	for i := 0; i < 20; i++ {
		links = append(links, topo.AddLink(NodeID(rune('a'+i)), NodeID(rune('a'+i+1)), 1e8, time.Millisecond, ""))
	}
	n := NewNetwork(topo)
	for i := 0; i < 200; i++ {
		start := i % 15
		p := Path{links[start], links[start+1], links[start+2]}
		n.StartFlow(p, math.Inf(1), "")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Reallocate()
	}
}
