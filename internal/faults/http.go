package faults

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"time"
)

// ErrPartnerDown is the error injected for exchanges attempted inside a
// partner outage window.
var ErrPartnerDown = errors.New("faults: injected partner outage")

// ErrInjected is the error injected for exchanges landing in an error
// burst (the partner answered, but uselessly).
var ErrInjected = errors.New("faults: injected exchange error")

// WallClock returns a clock mapping wall time to plan time, with t=0 at
// start. It positions real HTTP traffic (Transport, WrapFetch) on a plan's
// timeline.
func WallClock(start time.Time) func() time.Duration {
	return func() time.Duration { return time.Since(start) }
}

// WrapFetch gates a looking-glass-style fetch function with the plan's
// partner faults, positioning each call on the plan timeline via clock.
// Latency spikes delay the call (respecting ctx cancellation), outage
// windows fail it with ErrPartnerDown, and error bursts with ErrInjected;
// otherwise the underlying fetch runs unchanged. Wrap the function handed
// to lookingglass.Poll/PollWith to chaos-test a poller.
func WrapFetch[T any](p *Plan, clock func() time.Duration, fetch func(context.Context) (T, error)) func(context.Context) (T, error) {
	return func(ctx context.Context) (T, error) {
		var zero T
		now := clock()
		if err := injectDelay(ctx, p.PartnerDelay(now)); err != nil {
			return zero, err
		}
		if !p.PartnerUp(now) {
			return zero, ErrPartnerDown
		}
		if p.PartnerErrored(now) {
			return zero, ErrInjected
		}
		return fetch(ctx)
	}
}

// Transport is an http.RoundTripper that injects the plan's partner faults
// into real HTTP exchanges: requests inside an outage window fail with
// ErrPartnerDown, requests inside an error burst get a synthesized 503
// without touching the network, and latency spikes delay the round trip.
// Install it as the http.Client's Transport to chaos-test a
// lookingglass.Client end to end.
type Transport struct {
	// Plan supplies the fault windows; nil injects nothing.
	Plan *Plan
	// Clock positions each request on the plan timeline (see WallClock).
	Clock func() time.Duration
	// Base performs the real exchange; nil means http.DefaultTransport.
	Base http.RoundTripper
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	now := t.Clock()
	if err := injectDelay(req.Context(), t.Plan.PartnerDelay(now)); err != nil {
		return nil, err
	}
	if !t.Plan.PartnerUp(now) {
		return nil, ErrPartnerDown
	}
	if t.Plan.PartnerErrored(now) {
		const msg = "injected error burst"
		return &http.Response{
			Status:        "503 Service Unavailable",
			StatusCode:    http.StatusServiceUnavailable,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"text/plain"}},
			Body:          io.NopCloser(strings.NewReader(msg)),
			ContentLength: int64(len(msg)),
			Request:       req,
		}, nil
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}

func injectDelay(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}
