package faults

import (
	"reflect"
	"testing"
	"time"

	"eona/internal/netsim"
	"eona/internal/sim"
)

func sweepConfig(seed int64) Config {
	return Config{
		Seed:    seed,
		Horizon: 4 * time.Hour,
		Links: []LinkFaultConfig{
			{Link: "access", Count: 3, Duration: 10 * time.Minute, Factor: 0.1},
			{Link: "peering-B", Count: 2, Duration: 5 * time.Minute, Factor: 0},
		},
		Partner: PartnerFaultConfig{
			OutageAt: time.Hour, OutageLen: 30 * time.Minute,
			ErrorBursts: 2, BurstLen: 4 * time.Minute,
			LatencySpikes: 2, SpikeLen: 6 * time.Minute, SpikeExtra: 200 * time.Millisecond,
		},
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(sweepConfig(7)), Generate(sweepConfig(7))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different plans:\n%+v\n%+v", a, b)
	}
	c := Generate(sweepConfig(8))
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical plans")
	}
}

func TestGenerateWindowsWellFormed(t *testing.T) {
	p := Generate(sweepConfig(3))
	horizon := 4 * time.Hour
	perLink := map[string][]Window{}
	for _, f := range p.LinkFaults {
		if f.Start < 0 || f.End > horizon || f.End <= f.Start {
			t.Errorf("malformed fault window %+v", f)
		}
		perLink[f.Link] = append(perLink[f.Link], f.Window)
	}
	for link, ws := range perLink {
		for i := 1; i < len(ws); i++ {
			if ws[i].Start < ws[i-1].End {
				t.Errorf("link %s faults overlap: %+v then %+v", link, ws[i-1], ws[i])
			}
		}
	}
	if len(p.PartnerOutages) != 1 || p.PartnerOutages[0].Duration() != 30*time.Minute {
		t.Errorf("outages = %+v", p.PartnerOutages)
	}
	if len(p.ErrorBursts) != 2 || len(p.LatencySpikes) != 2 {
		t.Errorf("bursts = %+v spikes = %+v", p.ErrorBursts, p.LatencySpikes)
	}
}

func TestGeneratePinnedFault(t *testing.T) {
	p := Generate(Config{
		Seed:    1,
		Horizon: time.Hour,
		Links:   []LinkFaultConfig{{Link: "access", At: 10 * time.Minute, Duration: 5 * time.Minute, Factor: 0.5}},
	})
	want := Window{Start: 10 * time.Minute, End: 15 * time.Minute}
	if len(p.LinkFaults) != 1 || p.LinkFaults[0].Window != want {
		t.Fatalf("pinned fault = %+v, want window %+v", p.LinkFaults, want)
	}
}

func TestPartnerPredicates(t *testing.T) {
	p := &Plan{
		PartnerOutages: []Window{{Start: 10 * time.Minute, End: 20 * time.Minute}},
		ErrorBursts:    []Window{{Start: 30 * time.Minute, End: 31 * time.Minute}},
		LatencySpikes:  []LatencySpike{{Window: Window{Start: 40 * time.Minute, End: 41 * time.Minute}, Extra: time.Second}},
	}
	if !p.PartnerUp(9*time.Minute) || p.PartnerUp(10*time.Minute) || p.PartnerUp(19*time.Minute+59*time.Second) || !p.PartnerUp(20*time.Minute) {
		t.Error("outage window edges wrong (half-open [start,end) expected)")
	}
	if p.PartnerErrored(29*time.Minute) || !p.PartnerErrored(30*time.Minute) {
		t.Error("error burst window wrong")
	}
	if p.PartnerDelay(40*time.Minute+30*time.Second) != time.Second || p.PartnerDelay(42*time.Minute) != 0 {
		t.Error("latency spike wrong")
	}
	var nilPlan *Plan
	if !nilPlan.PartnerUp(0) || nilPlan.PartnerErrored(0) || nilPlan.PartnerDelay(0) != 0 {
		t.Error("nil plan must be the empty plan")
	}
}

// Schedule applies each fault instant as one batched reallocation, and
// restores base capacity afterwards.
func TestScheduleAppliesAndRestores(t *testing.T) {
	topo := netsim.NewTopology()
	a := topo.AddLink("src", "mid", 100e6, time.Millisecond, "a")
	b := topo.AddLink("mid", "dst", 100e6, time.Millisecond, "b")
	net := netsim.NewNetwork(topo)
	net.StartFlow(netsim.Path{a, b}, 90e6, "t")
	eng := sim.NewEngine(1)

	p := &Plan{LinkFaults: []LinkFault{
		// Two faults starting at the same instant: one event, one batch.
		{Link: "a", Window: Window{Start: 10 * time.Second, End: 20 * time.Second}, Factor: 0.1},
		{Link: "b", Window: Window{Start: 10 * time.Second, End: 30 * time.Second}, Factor: 0},
	}}
	targets := map[string]Target{
		"a": {ID: a.ID, BaseBps: 100e6},
		"b": {ID: b.ID, BaseBps: 100e6},
	}
	if err := p.Schedule(eng, net, targets); err != nil {
		t.Fatal(err)
	}

	before := net.Reallocations
	eng.Run(15 * time.Second)
	if a.Capacity != 10e6 {
		t.Errorf("link a capacity during fault = %v, want 10e6", a.Capacity)
	}
	if b.Capacity != 1 {
		t.Errorf("link b capacity during outage = %v, want floor 1", b.Capacity)
	}
	if got := net.Reallocations - before; got != 1 {
		t.Errorf("same-instant faults cost %d reallocations, want 1 (batched)", got)
	}

	eng.Run(time.Minute)
	if a.Capacity != 100e6 || b.Capacity != 100e6 {
		t.Errorf("capacities not restored: a=%v b=%v", a.Capacity, b.Capacity)
	}
}

func TestScheduleUnknownLink(t *testing.T) {
	topo := netsim.NewTopology()
	topo.AddLink("x", "y", 1e6, 0, "xy")
	net := netsim.NewNetwork(topo)
	p := &Plan{LinkFaults: []LinkFault{{Link: "nope", Window: Window{Start: 1, End: 2}, Factor: 0.5}}}
	if err := p.Schedule(sim.NewEngine(1), net, map[string]Target{}); err == nil {
		t.Fatal("unknown link name accepted")
	}
}

func TestScheduleNilPlan(t *testing.T) {
	var p *Plan
	if err := p.Schedule(sim.NewEngine(1), nil, nil); err != nil {
		t.Fatal(err)
	}
}

// ScheduleDriver routes the same fault schedule through a netsim.Driver on
// a deterministic SharedNetwork, committed once per instant by the
// ParallelEngine barrier — and lands the network in the same final state as
// the direct Schedule path.
func TestScheduleDriverMatchesSchedule(t *testing.T) {
	build := func() (*netsim.Topology, *netsim.Link, *netsim.Link) {
		topo := netsim.NewTopology()
		a := topo.AddLink("src", "mid", 100e6, time.Millisecond, "a")
		b := topo.AddLink("mid", "dst", 100e6, time.Millisecond, "b")
		return topo, a, b
	}
	plan := &Plan{LinkFaults: []LinkFault{
		{Link: "a", Window: Window{Start: 10 * time.Second, End: 20 * time.Second}, Factor: 0.1},
		{Link: "b", Window: Window{Start: 10 * time.Second, End: 30 * time.Second}, Factor: 0},
	}}

	// Reference: direct Schedule on a plain network, stopped mid-fault so
	// the degraded state is what we compare.
	topo1, a1, b1 := build()
	net1 := netsim.NewNetwork(topo1)
	eng1 := sim.NewEngine(1)
	targets1 := map[string]Target{"a": {ID: a1.ID, BaseBps: 100e6}, "b": {ID: b1.ID, BaseBps: 100e6}}
	if err := plan.Schedule(eng1, net1, targets1); err != nil {
		t.Fatal(err)
	}
	eng1.Run(15 * time.Second)

	// Driver path: deterministic SharedNetwork, ops buffered per instant,
	// committed by the parallel engine's barrier.
	topo2, a2, b2 := build()
	shared := netsim.NewShared(netsim.NewNetwork(topo2), netsim.SharedConfig{Deterministic: true})
	drv := shared.Driver(1)
	pe := sim.NewParallel(1, 1, 1)
	targets2 := map[string]Target{"a": {ID: a2.ID, BaseBps: 100e6}, "b": {ID: b2.ID, BaseBps: 100e6}}
	if err := plan.ScheduleDriver(pe.Partition(0), drv, targets2); err != nil {
		t.Fatal(err)
	}
	pe.OnInstantEnd(func(*sim.ParallelEngine) { shared.Commit() })
	pe.Run(15 * time.Second)
	shared.Close()

	if a2.Capacity != a1.Capacity || b2.Capacity != b1.Capacity {
		t.Errorf("driver path capacities (a=%v b=%v) differ from direct (a=%v b=%v)",
			a2.Capacity, b2.Capacity, a1.Capacity, b1.Capacity)
	}
	if a2.Capacity != 10e6 || b2.Capacity != 1 {
		t.Errorf("mid-fault capacities a=%v b=%v, want 10e6 and floor 1", a2.Capacity, b2.Capacity)
	}
}

func TestScheduleDriverUnknownLink(t *testing.T) {
	shared := netsim.NewShared(netsim.NewNetwork(netsim.NewTopology()), netsim.SharedConfig{})
	defer shared.Close()
	p := &Plan{LinkFaults: []LinkFault{{Link: "nope", Window: Window{Start: 1, End: 2}, Factor: 0.5}}}
	if err := p.ScheduleDriver(sim.NewEngine(1), shared.Driver(1), map[string]Target{}); err == nil {
		t.Fatal("unknown link name accepted")
	}
}
