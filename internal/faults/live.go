package faults

import (
	"context"
	"math"
	"sync"
	"time"
)

// Live is the interactive counterpart of a Plan's partner faults: a mutable,
// concurrency-safe set of outage and latency-spike windows that operators
// open and close at runtime (the control plane's partner-outage and
// latency-spike impairments). A Plan is sealed at generation time; Live
// windows are added while the system runs, but evaluate exactly like plan
// windows — against a clock on the same timeline — so a gated poller cannot
// tell the difference.
type Live struct {
	clock func() time.Duration

	mu      sync.Mutex
	nextID  int
	outages map[int]Window
	spikes  map[int]LatencySpike
}

// NewLive builds an empty live fault set on the given timeline clock
// (typically WallClock for a running process, or a simulator clock in
// tests).
func NewLive(clock func() time.Duration) *Live {
	return &Live{
		clock:   clock,
		nextID:  1,
		outages: make(map[int]Window),
		spikes:  make(map[int]LatencySpike),
	}
}

// Now reports the current position on the live set's timeline.
func (l *Live) Now() time.Duration { return l.clock() }

// openEnd marks a window with no scheduled end; it stays open until
// cancelled.
const openEnd = time.Duration(math.MaxInt64)

func (l *Live) window(d time.Duration) Window {
	start := l.clock()
	end := openEnd
	if d > 0 {
		end = start + d
	}
	return Window{Start: start, End: end}
}

// AddOutage opens a partner-outage window starting now. d <= 0 means
// open-ended (until Cancel). Returns the window's ID and the window.
func (l *Live) AddOutage(d time.Duration) (int, Window) {
	l.mu.Lock()
	defer l.mu.Unlock()
	id := l.nextID
	l.nextID++
	w := l.window(d)
	l.outages[id] = w
	return id, w
}

// AddLatencySpike opens a latency-spike window starting now, adding extra
// delay to every gated exchange inside it. d <= 0 means open-ended.
func (l *Live) AddLatencySpike(extra, d time.Duration) (int, Window) {
	l.mu.Lock()
	defer l.mu.Unlock()
	id := l.nextID
	l.nextID++
	w := l.window(d)
	l.spikes[id] = LatencySpike{Window: w, Extra: extra}
	return id, w
}

// Cancel closes a window now (expired windows are simply dropped). It
// reports whether the ID named a known window.
func (l *Live) Cancel(id int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.outages[id]; ok {
		delete(l.outages, id)
		return true
	}
	if _, ok := l.spikes[id]; ok {
		delete(l.spikes, id)
		return true
	}
	return false
}

// PartnerUp reports whether the partner exchange is up right now.
func (l *Live) PartnerUp() bool {
	now := l.clock()
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, w := range l.outages {
		if w.Contains(now) {
			return false
		}
	}
	return true
}

// Delay reports the extra exchange latency injected right now (the sum of
// all live spike windows containing now, mirroring Plan.PartnerDelay).
func (l *Live) Delay() time.Duration {
	now := l.clock()
	l.mu.Lock()
	defer l.mu.Unlock()
	var d time.Duration
	for _, s := range l.spikes {
		if s.Contains(now) {
			d += s.Extra
		}
	}
	return d
}

// Gate wraps a looking-glass-style fetch function with the live fault set,
// like WrapFetch does for a sealed Plan: latency spikes delay the call
// (respecting ctx cancellation) and outage windows fail it with
// ErrPartnerDown. A nil Live gates nothing.
func Gate[T any](l *Live, fetch func(context.Context) (T, error)) func(context.Context) (T, error) {
	if l == nil {
		return fetch
	}
	return func(ctx context.Context) (T, error) {
		var zero T
		if err := injectDelay(ctx, l.Delay()); err != nil {
			return zero, err
		}
		if !l.PartnerUp() {
			return zero, ErrPartnerDown
		}
		return fetch(ctx)
	}
}
