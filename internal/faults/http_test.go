package faults

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a settable plan clock for tests.
type fakeClock struct{ now atomic.Int64 }

func (c *fakeClock) set(t time.Duration) { c.now.Store(int64(t)) }
func (c *fakeClock) read() time.Duration { return time.Duration(c.now.Load()) }

func chaosPlan() *Plan {
	return &Plan{
		PartnerOutages: []Window{{Start: 10 * time.Minute, End: 20 * time.Minute}},
		ErrorBursts:    []Window{{Start: 30 * time.Minute, End: 35 * time.Minute}},
		LatencySpikes:  []LatencySpike{{Window: Window{Start: 40 * time.Minute, End: 45 * time.Minute}, Extra: 5 * time.Millisecond}},
	}
}

func TestTransportInjectsFaults(t *testing.T) {
	var served atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		io.WriteString(w, "ok")
	}))
	defer ts.Close()

	clk := &fakeClock{}
	client := &http.Client{Transport: &Transport{Plan: chaosPlan(), Clock: clk.read}}

	// Healthy: request reaches the server.
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || served.Load() != 1 {
		t.Fatalf("healthy request: status %d, served %d", resp.StatusCode, served.Load())
	}

	// Outage: the exchange fails without touching the network.
	clk.set(15 * time.Minute)
	if _, err := client.Get(ts.URL); !errors.Is(err, ErrPartnerDown) {
		t.Fatalf("outage error = %v, want ErrPartnerDown", err)
	}
	if served.Load() != 1 {
		t.Error("outage request reached the server")
	}

	// Error burst: a synthesized 503, again without a real round trip.
	clk.set(31 * time.Minute)
	resp, err = client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || len(body) == 0 {
		t.Errorf("burst response = %d %q", resp.StatusCode, body)
	}
	if served.Load() != 1 {
		t.Error("burst request reached the server")
	}

	// Latency spike: slowed but successful.
	clk.set(41 * time.Minute)
	start := time.Now()
	resp, err = client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Errorf("spiked request took %v, want ≥5ms", elapsed)
	}
	if served.Load() != 2 {
		t.Error("spiked request did not reach the server")
	}
}

func TestWrapFetch(t *testing.T) {
	clk := &fakeClock{}
	var calls int
	fetch := WrapFetch(chaosPlan(), clk.read, func(context.Context) (string, error) {
		calls++
		return "fresh", nil
	})

	if v, err := fetch(context.Background()); err != nil || v != "fresh" || calls != 1 {
		t.Fatalf("healthy fetch = %q, %v (calls %d)", v, err, calls)
	}
	clk.set(15 * time.Minute)
	if _, err := fetch(context.Background()); !errors.Is(err, ErrPartnerDown) {
		t.Fatalf("outage fetch error = %v", err)
	}
	clk.set(32 * time.Minute)
	if _, err := fetch(context.Background()); !errors.Is(err, ErrInjected) {
		t.Fatalf("burst fetch error = %v", err)
	}
	if calls != 1 {
		t.Errorf("faulted fetches reached the inner function (%d calls)", calls)
	}
}

func TestWrapFetchDelayRespectsContext(t *testing.T) {
	p := &Plan{LatencySpikes: []LatencySpike{{Window: Window{Start: 0, End: time.Hour}, Extra: time.Minute}}}
	fetch := WrapFetch(p, func() time.Duration { return time.Second }, func(context.Context) (int, error) {
		t.Error("fetch ran despite cancelled context")
		return 0, nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := fetch(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}
