package faults

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestLiveWindows drives the mutable fault set on a fake clock: windows
// open, expire, and cancel exactly like sealed plan windows.
func TestLiveWindows(t *testing.T) {
	now := time.Duration(0)
	l := NewLive(func() time.Duration { return now })

	if !l.PartnerUp() || l.Delay() != 0 {
		t.Fatal("fresh live set should be clean")
	}

	oid, w := l.AddOutage(10 * time.Second)
	if w.Start != 0 || w.End != 10*time.Second {
		t.Errorf("outage window = %+v", w)
	}
	if l.PartnerUp() {
		t.Error("partner up inside outage window")
	}
	now = 11 * time.Second
	if !l.PartnerUp() {
		t.Error("partner down after window expired")
	}

	sid, _ := l.AddLatencySpike(200*time.Millisecond, 0) // open-ended
	if got := l.Delay(); got != 200*time.Millisecond {
		t.Errorf("delay = %v, want 200ms", got)
	}
	now = 100 * time.Hour
	if got := l.Delay(); got != 200*time.Millisecond {
		t.Errorf("open-ended spike expired: delay = %v", got)
	}
	if !l.Cancel(sid) {
		t.Error("cancel known spike failed")
	}
	if got := l.Delay(); got != 0 {
		t.Errorf("delay after cancel = %v", got)
	}
	// Expired windows stay addressable until cancelled (expiry is lazy).
	if !l.Cancel(oid) {
		t.Error("cancel of expired outage id failed")
	}
	if l.Cancel(oid) {
		t.Error("double cancel reported success")
	}
}

// TestLiveGate pins the fetch gate: outage → ErrPartnerDown, spike → delay,
// clean → passthrough; nil Live gates nothing.
func TestLiveGate(t *testing.T) {
	now := time.Duration(0)
	l := NewLive(func() time.Duration { return now })
	calls := 0
	fetch := func(context.Context) (int, error) { calls++; return 42, nil }
	gated := Gate(l, fetch)

	if v, err := gated(context.Background()); err != nil || v != 42 {
		t.Fatalf("clean gate = %d, %v", v, err)
	}
	id, _ := l.AddOutage(0)
	if _, err := gated(context.Background()); !errors.Is(err, ErrPartnerDown) {
		t.Fatalf("outage gate err = %v, want ErrPartnerDown", err)
	}
	l.Cancel(id)
	if v, err := gated(context.Background()); err != nil || v != 42 {
		t.Fatalf("post-cancel gate = %d, %v", v, err)
	}
	if calls != 2 {
		t.Errorf("underlying fetch ran %d times, want 2", calls)
	}

	// A spike's delay respects context cancellation.
	l.AddLatencySpike(time.Hour, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := gated(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("spiked gate err = %v, want deadline exceeded", err)
	}

	if ungated := Gate[int](nil, fetch); ungated == nil {
		t.Fatal("nil live gate returned nil")
	}
}
