// Package faults provides deterministic, seeded fault plans for the chaos
// experiments (E15) and for hardening tests of the partner exchange.
//
// A Plan is pure data: a set of link-capacity faults (flaps, partial
// degradations, outages) plus partner-exchange faults (outage windows,
// latency spikes, error bursts) positioned on the simulation timeline.
// Plans come either from an explicit literal or from Generate, which
// places fault windows with a seeded RNG — the same seed always yields the
// same plan, so every chaos run is bit-for-bit reproducible.
//
// Link faults are applied to a netsim.Network through Schedule: each fault
// instant becomes one sim.Engine event that commits all of that instant's
// capacity changes inside a single netsim Batch, i.e. one reallocation per
// fault regardless of how many links it touches. Partner faults gate
// looking-glass exchanges: in-sim through PartnerUp/PartnerErrored/
// PartnerDelay, and against real HTTP through Transport and WrapFetch
// (http.go).
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"eona/internal/netsim"
	"eona/internal/sim"
)

// Window is a half-open interval [Start, End) on the simulation clock.
type Window struct {
	Start, End time.Duration
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t time.Duration) bool { return t >= w.Start && t < w.End }

// Duration returns the window's length.
func (w Window) Duration() time.Duration { return w.End - w.Start }

// LinkFault degrades one named link for the duration of its window: the
// link's capacity becomes Factor × its base capacity at Start and is
// restored at End. Factor 0 models a full outage (capacity is floored at
// 1 bit/s because netsim requires positive capacities — flows stay routed
// and starve, which is what a dead link does to long-lived sessions).
type LinkFault struct {
	Link string
	Window
	Factor float64
}

// LatencySpike adds Extra delay to every partner exchange inside its
// window.
type LatencySpike struct {
	Window
	Extra time.Duration
}

// Plan is a fully materialized fault schedule. The zero value (and a nil
// *Plan) is the empty plan: no faults, partner always up.
type Plan struct {
	// Seed records the seed the plan was generated from (informational).
	Seed int64
	// LinkFaults are capacity faults, sorted by Start.
	LinkFaults []LinkFault
	// PartnerOutages are windows during which the partner exchange is
	// entirely down (fetches fail, stores are not refreshed).
	PartnerOutages []Window
	// ErrorBursts are windows during which the partner responds, but with
	// errors (HTTP 5xx / decode failures).
	ErrorBursts []Window
	// LatencySpikes slow exchanges down without failing them.
	LatencySpikes []LatencySpike
}

// PartnerUp reports whether the partner exchange is reachable at t. A nil
// plan is always up.
func (p *Plan) PartnerUp(t time.Duration) bool {
	if p == nil {
		return true
	}
	for _, w := range p.PartnerOutages {
		if w.Contains(t) {
			return false
		}
	}
	return true
}

// PartnerErrored reports whether an exchange at t lands in an error burst.
func (p *Plan) PartnerErrored(t time.Duration) bool {
	if p == nil {
		return false
	}
	for _, w := range p.ErrorBursts {
		if w.Contains(t) {
			return true
		}
	}
	return false
}

// PartnerDelay returns the extra exchange latency injected at t (0 outside
// every spike; overlapping spikes add up).
func (p *Plan) PartnerDelay(t time.Duration) time.Duration {
	if p == nil {
		return 0
	}
	var d time.Duration
	for _, s := range p.LatencySpikes {
		if s.Contains(t) {
			d += s.Extra
		}
	}
	return d
}

// Target binds a plan link name to a simulated link and its healthy
// capacity.
type Target struct {
	ID      netsim.LinkID
	BaseBps float64
}

// linkChange is one resolved capacity edit: set link id to bps.
type linkChange struct {
	id  netsim.LinkID
	bps float64
}

// linkInstants resolves the plan's link faults against targets and groups
// the capacity changes by instant (a fault's Start and End are each an
// instant, possibly shared by several faults). Instants come back sorted.
// Unknown link names are an error: a plan that names links the scenario
// does not have is a configuration bug, not a fault to inject.
func (p *Plan) linkInstants(targets map[string]Target) ([]time.Duration, map[time.Duration][]linkChange, error) {
	at := map[time.Duration][]linkChange{}
	for _, f := range p.LinkFaults {
		tgt, ok := targets[f.Link]
		if !ok {
			return nil, nil, fmt.Errorf("faults: plan names unknown link %q", f.Link)
		}
		degraded := tgt.BaseBps * f.Factor
		if degraded < 1 {
			degraded = 1 // netsim requires positive capacity
		}
		at[f.Start] = append(at[f.Start], linkChange{tgt.ID, degraded})
		at[f.End] = append(at[f.End], linkChange{tgt.ID, tgt.BaseBps})
	}
	instants := make([]time.Duration, 0, len(at))
	for t := range at {
		instants = append(instants, t)
	}
	sort.Slice(instants, func(i, j int) bool { return instants[i] < instants[j] })
	return instants, at, nil
}

// Schedule installs the plan's link faults onto the engine. Every fault
// instant becomes one event whose capacity changes are committed in a
// single Batch — one reallocation per instant. Faults at or beyond the run
// horizon simply never fire.
func (p *Plan) Schedule(eng *sim.Engine, net *netsim.Network, targets map[string]Target) error {
	if p == nil {
		return nil
	}
	instants, at, err := p.linkInstants(targets)
	if err != nil {
		return err
	}
	for _, t := range instants {
		changes := at[t]
		eng.ScheduleAt(t, func(*sim.Engine) {
			net.Batch(func() {
				for _, c := range changes {
					net.SetLinkCapacity(c.id, c.bps)
				}
			})
		})
	}
	return nil
}

// CapacityChange is one resolved capacity edit of a fired fault instant,
// as exported to an event sink.
type CapacityChange struct {
	Link netsim.LinkID `json:"link"`
	Bps  float64       `json:"bps"`
}

// Event is one fired fault instant: every capacity edit the plan committed
// at At. A journal records these so a recovered run can audit which fault
// windows had already fired at the crash (the capacity edits themselves
// also land in the netsim op log, which is what recovery replays — the
// Event stream is the plan-level view).
type Event struct {
	At      time.Duration    `json:"at"`
	Changes []CapacityChange `json:"changes"`
}

// Sink receives fault events as they fire. Implemented by the journal
// writer; Append errors are retained by the sink itself (the engine
// callback has nowhere to return them), so callers check the sink after
// the run.
type Sink interface {
	AppendFault(e Event) error
}

// ScheduleDriver installs the plan's link faults onto the engine through a
// netsim.Driver instead of a bare Network — the fault-schedule partition of
// a multi-driver run. Each instant's capacity changes are stamped with the
// driver's (driver, seq) identity; under a deterministic-mode SharedNetwork
// they buffer until the per-instant barrier calls Commit, which applies the
// whole instant's ops in canonical order and publishes one snapshot — the
// multi-driver equivalent of Schedule's one-Batch-per-instant rule.
func (p *Plan) ScheduleDriver(eng *sim.Engine, drv *netsim.Driver, targets map[string]Target) error {
	return p.ScheduleDriverTo(eng, drv, targets, nil)
}

// ScheduleDriverTo is ScheduleDriver with an event sink: each fault instant
// that fires is also appended to sink (when non-nil) as an Event, in fire
// order — the durable audit trail of which faults a crashed run had
// already injected.
func (p *Plan) ScheduleDriverTo(eng *sim.Engine, drv *netsim.Driver, targets map[string]Target, sink Sink) error {
	if p == nil {
		return nil
	}
	instants, at, err := p.linkInstants(targets)
	if err != nil {
		return err
	}
	for _, t := range instants {
		t, changes := t, at[t]
		eng.ScheduleAt(t, func(*sim.Engine) {
			for _, c := range changes {
				drv.SetLinkCapacity(c.id, c.bps)
			}
			if sink != nil {
				ev := Event{At: t, Changes: make([]CapacityChange, 0, len(changes))}
				for _, c := range changes {
					ev.Changes = append(ev.Changes, CapacityChange{Link: c.id, Bps: c.bps})
				}
				_ = sink.AppendFault(ev) // sink retains its own first error
			}
		})
	}
	return nil
}

// LinkFaultConfig describes one link's fault process for Generate.
type LinkFaultConfig struct {
	// Link is the plan-level link name (resolved by Schedule's targets).
	Link string
	// Count is how many faults to place. When At is set, exactly one
	// fault starts there and Count is ignored.
	Count int
	// At pins a single fault's start time exactly (no jitter) when
	// positive. Sweeps that need a fault at a known instant use this;
	// chaos sweeps leave it zero and let the seed place Count faults.
	At time.Duration
	// Duration is each fault's length.
	Duration time.Duration
	// Factor is the capacity multiplier while faulted (0 = outage).
	Factor float64
}

// PartnerFaultConfig describes the partner-exchange fault process for
// Generate. The single outage window is pinned (OutageAt/OutageLen)
// because chaos sweeps vary its length as the independent variable; bursts
// and spikes are seed-placed.
type PartnerFaultConfig struct {
	OutageAt, OutageLen time.Duration

	ErrorBursts int
	BurstLen    time.Duration

	LatencySpikes int
	SpikeLen      time.Duration
	SpikeExtra    time.Duration
}

// Config parameterizes Generate.
type Config struct {
	Seed    int64
	Horizon time.Duration
	Links   []LinkFaultConfig
	Partner PartnerFaultConfig
}

// Generate materializes a Plan from a seeded config. Unpinned fault starts
// are placed by slotting: the horizon is divided into Count equal slots
// and each fault starts uniformly at random within its slot (clamped so it
// ends inside the slot), which guarantees same-link faults never overlap
// and keeps placement deterministic per seed.
func Generate(cfg Config) *Plan {
	if cfg.Horizon <= 0 {
		panic("faults: Generate requires a positive horizon")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &Plan{Seed: cfg.Seed}
	for _, lc := range cfg.Links {
		if lc.Duration <= 0 {
			panic(fmt.Sprintf("faults: non-positive fault duration for link %q", lc.Link))
		}
		if lc.At > 0 {
			p.LinkFaults = append(p.LinkFaults, LinkFault{
				Link:   lc.Link,
				Window: Window{Start: lc.At, End: lc.At + lc.Duration},
				Factor: lc.Factor,
			})
			continue
		}
		for _, w := range slotWindows(rng, cfg.Horizon, lc.Count, lc.Duration) {
			p.LinkFaults = append(p.LinkFaults, LinkFault{Link: lc.Link, Window: w, Factor: lc.Factor})
		}
	}
	sort.Slice(p.LinkFaults, func(i, j int) bool { return p.LinkFaults[i].Start < p.LinkFaults[j].Start })

	pc := cfg.Partner
	if pc.OutageLen > 0 {
		p.PartnerOutages = append(p.PartnerOutages, Window{Start: pc.OutageAt, End: pc.OutageAt + pc.OutageLen})
	}
	p.ErrorBursts = slotWindows(rng, cfg.Horizon, pc.ErrorBursts, pc.BurstLen)
	for _, w := range slotWindows(rng, cfg.Horizon, pc.LatencySpikes, pc.SpikeLen) {
		p.LatencySpikes = append(p.LatencySpikes, LatencySpike{Window: w, Extra: pc.SpikeExtra})
	}
	return p
}

// slotWindows places count non-overlapping windows of length dur: one per
// equal slot of the horizon, starting uniformly within the slot.
func slotWindows(rng *rand.Rand, horizon time.Duration, count int, dur time.Duration) []Window {
	if count <= 0 || dur <= 0 {
		return nil
	}
	slot := horizon / time.Duration(count)
	var out []Window
	for i := 0; i < count; i++ {
		base := time.Duration(i) * slot
		room := slot - dur
		if room < 0 {
			room = 0
		}
		start := base
		if room > 0 {
			start += time.Duration(rng.Int63n(int64(room)))
		}
		end := start + dur
		if end > base+slot {
			end = base + slot
		}
		out = append(out, Window{Start: start, End: end})
	}
	return out
}
