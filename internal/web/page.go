package web

import (
	"math/rand"
	"time"

	"eona/internal/qoe"
)

// Page describes the load-relevant structure of a web page: how many bytes
// must arrive and how many sequential round-trip "waves" the dependency
// graph forces (HTML → CSS/JS → fonts/images → XHR is 3–4 waves on typical
// pages).
type Page struct {
	// TotalBytes across all critical resources.
	TotalBytes int
	// Waves is the critical-path depth in round trips.
	Waves int
	// ServerThinkTime is origin processing before the first byte.
	ServerThinkTime time.Duration
}

// SamplePage draws a page from a realistic mix (landing pages to article
// pages): 200 KB–2.5 MB, 2–5 waves.
func SamplePage(rng *rand.Rand) Page {
	return Page{
		TotalBytes:      200_000 + rng.Intn(2_300_000),
		Waves:           2 + rng.Intn(4),
		ServerThinkTime: time.Duration(30+rng.Intn(170)) * time.Millisecond,
	}
}

// Load computes the page-load outcome over a channel using the standard
// first-order PLT model: a connection-setup and first-byte phase
// (TTFB = 2×RTT + think), then one RTT per dependency wave, the transfer
// time of the critical bytes at the channel bandwidth, and a fixed pause
// per handover. Aborted is set when the load would exceed the patience
// bound (15s), after which real users are gone.
func Load(p Page, c Channel) qoe.WebMetrics {
	ttfb := 2*c.RTT + p.ServerThinkTime
	transfer := time.Duration(float64(p.TotalBytes*8) / c.Bandwidth * float64(time.Second))
	plt := ttfb + time.Duration(p.Waves)*c.RTT + transfer +
		time.Duration(c.Handovers)*HandoverPause
	const patience = 15 * time.Second
	m := qoe.WebMetrics{TTFB: ttfb, PageLoadTime: plt}
	if plt > patience {
		m.Aborted = true
	}
	return m
}
