// Package web models the Figure 1(a) delivery chain — web browsing over a
// cellular network — well enough to reproduce the paper's Figure 4 in its
// native setting: a cellular InfP trying to estimate web experience from
// radio and flow-level statistics versus receiving it directly over
// EONA-A2I.
//
// The model has two parts: a radio access channel whose state (signal
// quality, congestion, inter-RAT handovers — the "IRAT handover, etc." of
// Figure 4) determines bandwidth and latency, and a page-load model that
// turns a page's resource structure plus the channel into a time-to-first-
// byte and a page-load time.
package web

import (
	"fmt"
	"math/rand"
	"time"
)

// RadioState is the coarse radio condition a cellular operator observes
// per bearer.
type RadioState int

const (
	// RadioGood: strong signal, modern cell.
	RadioGood RadioState = iota
	// RadioFair: mid-cell, moderate interference.
	RadioFair
	// RadioPoor: cell edge or indoor, weak signal.
	RadioPoor
)

// String names the state.
func (r RadioState) String() string {
	switch r {
	case RadioGood:
		return "good"
	case RadioFair:
		return "fair"
	case RadioPoor:
		return "poor"
	default:
		return fmt.Sprintf("RadioState(%d)", int(r))
	}
}

// Channel is a sampled cellular bearer: the conditions one page load
// experiences.
type Channel struct {
	State RadioState
	// Bandwidth is the achievable downlink rate in bits/s after radio
	// scheduling and cell load.
	Bandwidth float64
	// RTT is the radio round-trip (includes core network) —
	// RAN-dominated.
	RTT time.Duration
	// Handovers counts inter-RAT/cell handovers during the load; each
	// stalls the bearer for HandoverPause.
	Handovers int
	// CellLoad is the sector's utilization in [0,1] (scheduler sharing).
	CellLoad float64
}

// HandoverPause is the bearer outage per handover.
const HandoverPause = 300 * time.Millisecond

// SampleChannel draws a channel from a realistic mix: mostly good/fair
// radio, load-dependent bandwidth, heavy-tailed RTT, occasional handovers
// (mobility).
func SampleChannel(rng *rand.Rand) Channel {
	var c Channel
	switch p := rng.Float64(); {
	case p < 0.5:
		c.State = RadioGood
		c.Bandwidth = 8e6 + rng.Float64()*22e6
		c.RTT = time.Duration(30+rng.Intn(30)) * time.Millisecond
	case p < 0.85:
		c.State = RadioFair
		c.Bandwidth = 2e6 + rng.Float64()*6e6
		c.RTT = time.Duration(50+rng.Intn(60)) * time.Millisecond
	default:
		c.State = RadioPoor
		c.Bandwidth = 0.3e6 + rng.Float64()*1.2e6
		c.RTT = time.Duration(90+rng.Intn(160)) * time.Millisecond
	}
	c.CellLoad = rng.Float64()
	// Cell load steals scheduler slots: effective bandwidth shrinks.
	c.Bandwidth *= 1 - 0.7*c.CellLoad
	// Queueing under load inflates RTT.
	c.RTT += time.Duration(float64(60*time.Millisecond) * c.CellLoad * c.CellLoad)
	// Mobility: ~20% of loads see at least one handover.
	if rng.Float64() < 0.2 {
		c.Handovers = 1 + rng.Intn(2)
	}
	return c
}
