package web

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"eona/internal/qoe"
)

func TestRadioStateStrings(t *testing.T) {
	if RadioGood.String() != "good" || RadioFair.String() != "fair" || RadioPoor.String() != "poor" {
		t.Error("radio state strings wrong")
	}
	if RadioState(9).String() == "" {
		t.Error("unknown state should still render")
	}
}

func TestSampleChannelDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	counts := map[RadioState]int{}
	for i := 0; i < 5000; i++ {
		c := SampleChannel(rng)
		counts[c.State]++
		if c.Bandwidth <= 0 {
			t.Fatalf("non-positive bandwidth: %+v", c)
		}
		if c.RTT < 30*time.Millisecond {
			t.Fatalf("RTT below radio floor: %+v", c)
		}
		if c.CellLoad < 0 || c.CellLoad > 1 {
			t.Fatalf("cell load out of range: %+v", c)
		}
	}
	if counts[RadioGood] < 2000 || counts[RadioPoor] > 1200 {
		t.Errorf("state mix off: %v", counts)
	}
}

func TestChannelQualityOrdering(t *testing.T) {
	// Averaged over many samples, good radio must deliver more
	// bandwidth and less RTT than poor radio.
	rng := rand.New(rand.NewSource(2))
	var bw [3]float64
	var rtt [3]time.Duration
	var n [3]int
	for i := 0; i < 20000; i++ {
		c := SampleChannel(rng)
		bw[c.State] += c.Bandwidth
		rtt[c.State] += c.RTT
		n[c.State]++
	}
	for s := 0; s < 3; s++ {
		if n[s] == 0 {
			t.Fatalf("state %d never sampled", s)
		}
		bw[s] /= float64(n[s])
		rtt[s] /= time.Duration(n[s])
	}
	if !(bw[RadioGood] > bw[RadioFair] && bw[RadioFair] > bw[RadioPoor]) {
		t.Errorf("bandwidth ordering broken: %v", bw)
	}
	if !(rtt[RadioGood] < rtt[RadioFair] && rtt[RadioFair] < rtt[RadioPoor]) {
		t.Errorf("RTT ordering broken: %v", rtt)
	}
}

func TestLoadComposition(t *testing.T) {
	p := Page{TotalBytes: 1_000_000, Waves: 3, ServerThinkTime: 100 * time.Millisecond}
	c := Channel{State: RadioGood, Bandwidth: 8e6, RTT: 50 * time.Millisecond}
	m := Load(p, c)
	wantTTFB := 200 * time.Millisecond // 2×RTT + think
	if m.TTFB != wantTTFB {
		t.Errorf("TTFB = %v, want %v", m.TTFB, wantTTFB)
	}
	// PLT = TTFB + 3×RTT + 8Mb/8Mbps + 0 handovers = 0.2+0.15+1.0
	want := wantTTFB + 150*time.Millisecond + time.Second
	if m.PageLoadTime != want {
		t.Errorf("PLT = %v, want %v", m.PageLoadTime, want)
	}
	if m.Aborted {
		t.Error("1.35s load should not abort")
	}
}

func TestLoadHandoverPenalty(t *testing.T) {
	p := Page{TotalBytes: 500_000, Waves: 2, ServerThinkTime: 50 * time.Millisecond}
	base := Load(p, Channel{Bandwidth: 5e6, RTT: 60 * time.Millisecond})
	ho := Load(p, Channel{Bandwidth: 5e6, RTT: 60 * time.Millisecond, Handovers: 2})
	if got := ho.PageLoadTime - base.PageLoadTime; got != 2*HandoverPause {
		t.Errorf("handover penalty = %v, want %v", got, 2*HandoverPause)
	}
}

func TestLoadAbortsOnPatience(t *testing.T) {
	p := Page{TotalBytes: 2_500_000, Waves: 5, ServerThinkTime: 200 * time.Millisecond}
	c := Channel{State: RadioPoor, Bandwidth: 0.3e6, RTT: 250 * time.Millisecond}
	m := Load(p, c)
	if !m.Aborted {
		t.Errorf("67s load should abort: %+v", m)
	}
	if qoe.WebScore(m) != 0 {
		t.Error("aborted load must score 0")
	}
}

func TestSamplePageRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		p := SamplePage(rng)
		if p.TotalBytes < 200_000 || p.TotalBytes > 2_500_000 {
			t.Fatalf("page bytes out of range: %d", p.TotalBytes)
		}
		if p.Waves < 2 || p.Waves > 5 {
			t.Fatalf("waves out of range: %d", p.Waves)
		}
	}
}

// Property: PLT is monotone — more bytes, more waves, more RTT, or less
// bandwidth never makes a page load faster.
func TestQuickLoadMonotone(t *testing.T) {
	f := func(bytesK uint16, waves uint8, rttMs uint8, bwKbps uint16) bool {
		p := Page{
			TotalBytes:      int(bytesK)*1000 + 1000,
			Waves:           int(waves%5) + 1,
			ServerThinkTime: 50 * time.Millisecond,
		}
		c := Channel{
			Bandwidth: float64(bwKbps)*1000 + 100_000,
			RTT:       time.Duration(int(rttMs)+20) * time.Millisecond,
		}
		base := Load(p, c).PageLoadTime

		bigger := p
		bigger.TotalBytes += 100_000
		if Load(bigger, c).PageLoadTime < base {
			return false
		}
		deeper := p
		deeper.Waves++
		if Load(deeper, c).PageLoadTime < base {
			return false
		}
		slower := c
		slower.Bandwidth /= 2
		if Load(p, slower).PageLoadTime < base {
			return false
		}
		laggier := c
		laggier.RTT += 50 * time.Millisecond
		return Load(p, laggier).PageLoadTime >= base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleDeterministic(t *testing.T) {
	a := SampleChannel(rand.New(rand.NewSource(7)))
	b := SampleChannel(rand.New(rand.NewSource(7)))
	if a != b {
		t.Error("SampleChannel not deterministic per seed")
	}
}
