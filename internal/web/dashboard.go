package web

import "net/http"

// DashboardHandler serves the embedded operations dashboard: a single
// self-contained HTML page over the /v1 control plane — topology/link table,
// a live utilization sparkline fed by the SSE stream, and an impairment
// form. The page itself is public; every API call it makes carries the
// operator's bearer token (kept in localStorage), so the auth story is the
// same as curl's. The stream is consumed with fetch + ReadableStream rather
// than EventSource because EventSource cannot send an Authorization header.
func DashboardHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(dashboardHTML))
	}
}

const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>EONA operations</title>
<style>
  body { font: 14px/1.4 system-ui, sans-serif; margin: 1.5rem; max-width: 72rem; color: #1a202c; }
  h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.6rem; }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: left; padding: .3rem .6rem; border-bottom: 1px solid #e2e8f0; font-variant-numeric: tabular-nums; }
  th { background: #f7fafc; }
  .bar { display: inline-block; height: .7rem; background: #3182ce; vertical-align: middle; border-radius: 2px; }
  .sev { color: #c53030; font-weight: 600; } .high { color: #dd6b20; } .mod { color: #b7791f; }
  #status { color: #718096; } .err { color: #c53030; }
  input, select, button { font: inherit; padding: .25rem .5rem; margin-right: .4rem; }
  canvas { border: 1px solid #e2e8f0; background: #fff; }
  form { margin: .6rem 0; }
  .muted { color: #a0aec0; }
</style>
</head>
<body>
<h1>EONA operations dashboard</h1>
<p>
  <label>Token <input id="token" size="24" placeholder="bearer token"></label>
  <button onclick="connect()">Connect</button>
  <span id="status">disconnected</span>
</p>

<h2>Metrics <span class="muted">(mean util blue, max util red, via /v1/stream)</span></h2>
<canvas id="spark" width="900" height="120"></canvas>
<div id="counters" class="muted"></div>

<h2>Topology</h2>
<table id="links"><thead><tr>
  <th>link</th><th>route</th><th>capacity</th><th>rate</th><th>util</th><th>congestion</th><th>flows</th>
</tr></thead><tbody></tbody></table>

<h2>Inject impairment</h2>
<form onsubmit="inject(event)">
  <select id="kind">
    <option value="link-throttle">link-throttle</option>
    <option value="link-flap">link-flap</option>
    <option value="latency-spike">latency-spike</option>
    <option value="partner-outage">partner-outage</option>
  </select>
  <select id="impLink"></select>
  <input id="factor" size="5" value="0.5" title="throttle factor [0,1)">
  <input id="duration" size="6" value="30s" title="duration, empty = until restored">
  <input id="extra" size="6" value="200ms" title="extra latency for latency-spike">
  <button>Inject</button>
</form>
<table id="imps"><thead><tr>
  <th>id</th><th>kind</th><th>link</th><th>applied</th><th>active</th><th></th>
</tr></thead><tbody></tbody></table>

<script>
'use strict';
let streaming = false;
const hist = [];
const $ = id => document.getElementById(id);
$('token').value = localStorage.getItem('eona-token') || '';

function hdrs() { return { 'Authorization': 'Bearer ' + $('token').value }; }
function mbps(b) { return (b / 1e6).toFixed(1) + ' Mbps'; }
async function api(path, opts) {
  const r = await fetch(path, Object.assign({ headers: hdrs() }, opts || {}));
  const body = await r.json().catch(() => ({}));
  if (!r.ok) throw new Error((body.error && body.error.message) || ('HTTP ' + r.status));
  return body;
}

function drawLinks(links) {
  const tb = $('links').tBodies[0];
  tb.innerHTML = '';
  for (const l of links) {
    const row = tb.insertRow();
    const cls = l.congestion === 'severe' ? 'sev' : l.congestion === 'high' ? 'high' :
                l.congestion === 'moderate' ? 'mod' : '';
    row.innerHTML = '<td>' + l.name + '</td><td>' + l.from + ' → ' + l.to +
      '</td><td>' + mbps(l.capacity_bps) + '</td><td>' + mbps(l.rate_bps) +
      '</td><td><span class="bar" style="width:' + Math.round(l.utilization * 120) + 'px"></span> ' +
      (l.utilization * 100).toFixed(0) + '%</td><td class="' + cls + '">' + l.congestion +
      '</td><td>' + l.flows + '</td>';
  }
  const sel = $('impLink');
  if (sel.options.length !== links.length) {
    sel.innerHTML = links.map(l => '<option>' + l.name + '</option>').join('');
  }
}

function drawSpark() {
  const c = $('spark'), g = c.getContext('2d');
  g.clearRect(0, 0, c.width, c.height);
  const n = hist.length;
  if (n < 2) return;
  const step = c.width / Math.max(n - 1, 1);
  for (const [key, color] of [['mean_util', '#3182ce'], ['max_util', '#e53e3e']]) {
    g.beginPath();
    hist.forEach((s, i) => {
      const y = c.height - 4 - s[key] * (c.height - 8);
      i ? g.lineTo(i * step, y) : g.moveTo(0, y);
    });
    g.strokeStyle = color; g.lineWidth = 1.5; g.stroke();
  }
}

async function refreshImps() {
  const data = await api('/v1/impairments');
  const tb = $('imps').tBodies[0];
  tb.innerHTML = '';
  for (const im of data.impairments) {
    const row = tb.insertRow();
    row.innerHTML = '<td>' + im.id + '</td><td>' + im.kind + '</td><td>' + (im.link || '—') +
      '</td><td>' + (im.applied_bps ? mbps(im.applied_bps) : im.extra || '—') +
      '</td><td>' + im.active + '</td><td>' +
      (im.active ? '<button onclick="restore(' + im.id + ')">restore</button>' : '') + '</td>';
  }
}

async function inject(ev) {
  ev.preventDefault();
  const kind = $('kind').value;
  const body = { kind: kind, duration: $('duration').value };
  if (kind === 'link-throttle' || kind === 'link-flap') body.link = $('impLink').value;
  if (kind === 'link-throttle') body.factor = parseFloat($('factor').value);
  if (kind === 'latency-spike') body.extra = $('extra').value;
  if (!body.duration) delete body.duration;
  try {
    await api('/v1/impairments', { method: 'POST', body: JSON.stringify(body) });
    await refreshImps();
  } catch (e) { setStatus('inject failed: ' + e.message, true); }
}

async function restore(id) {
  try {
    await api('/v1/impairments?id=' + id, { method: 'DELETE' });
    await refreshImps();
  } catch (e) { setStatus('restore failed: ' + e.message, true); }
}

function setStatus(msg, isErr) {
  $('status').textContent = msg;
  $('status').className = isErr ? 'err' : '';
}

async function stream() {
  // fetch + ReadableStream: EventSource cannot carry the bearer token.
  const resp = await fetch('/v1/stream?interval=1s', { headers: hdrs() });
  if (!resp.ok) { setStatus('stream failed: HTTP ' + resp.status, true); streaming = false; return; }
  setStatus('streaming');
  const rd = resp.body.getReader();
  const dec = new TextDecoder();
  let buf = '';
  for (;;) {
    const { done, value } = await rd.read();
    if (done) break;
    buf += dec.decode(value, { stream: true });
    let i;
    while ((i = buf.indexOf('\n\n')) >= 0) {
      const chunk = buf.slice(0, i); buf = buf.slice(i + 2);
      if (!chunk.startsWith('data: ')) continue;
      const s = JSON.parse(chunk.slice(6));
      hist.push(s);
      if (hist.length > 300) hist.shift();
      drawLinks(s.links);
      drawSpark();
      $('counters').textContent = 'flows ' + s.flows + ' · reallocations ' + s.reallocations +
        ' · qoe ingested ' + s.read_models.qoe_ingested +
        ' · active impairments ' + s.active_impairments;
    }
  }
  setStatus('stream ended', true);
  streaming = false;
}

async function connect() {
  localStorage.setItem('eona-token', $('token').value);
  try {
    const topo = await api('/v1/topology');
    drawLinks(topo.links);
    await refreshImps();
  } catch (e) { setStatus(e.message, true); return; }
  if (!streaming) { streaming = true; stream(); }
}
</script>
</body>
</html>
`
