package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(3*time.Second, func(*Engine) { got = append(got, 3) })
	e.Schedule(1*time.Second, func(*Engine) { got = append(got, 1) })
	e.Schedule(2*time.Second, func(*Engine) { got = append(got, 2) })
	e.RunUntilIdle()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func(*Engine) { got = append(got, i) })
	}
	e.RunUntilIdle()
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie-break order = %v", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.Schedule(5*time.Second, func(en *Engine) { at = en.Now() })
	end := e.Run(10 * time.Second)
	if at != 5*time.Second {
		t.Errorf("event fired at %v, want 5s", at)
	}
	if end != 10*time.Second {
		t.Errorf("Run returned %v, want horizon 10s", end)
	}
}

func TestHorizonExcludesLaterEvents(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.Schedule(10*time.Second, func(*Engine) { fired = true })
	e.Run(5 * time.Second)
	if fired {
		t.Error("event beyond horizon fired")
	}
	// Event at exactly the horizon fires.
	e2 := NewEngine(1)
	fired2 := false
	e2.Schedule(5*time.Second, func(*Engine) { fired2 = true })
	e2.Run(5 * time.Second)
	if !fired2 {
		t.Error("event at horizon did not fire")
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(time.Second, func(*Engine) { fired = true })
	e.Cancel(ev)
	e.RunUntilIdle()
	if fired {
		t.Error("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
	e.Cancel(ev) // idempotent
	e.Cancel(nil)
}

func TestScheduleInsideEvent(t *testing.T) {
	e := NewEngine(1)
	var times []Time
	e.Schedule(time.Second, func(en *Engine) {
		times = append(times, en.Now())
		en.Schedule(time.Second, func(en2 *Engine) {
			times = append(times, en2.Now())
		})
	})
	e.RunUntilIdle()
	if len(times) != 2 || times[0] != time.Second || times[1] != 2*time.Second {
		t.Fatalf("times = %v", times)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10*time.Second, func(en *Engine) {
		defer func() {
			if recover() == nil {
				t.Error("ScheduleAt in the past did not panic")
			}
		}()
		en.ScheduleAt(5*time.Second, func(*Engine) {})
	})
	e.RunUntilIdle()
}

func TestEvery(t *testing.T) {
	e := NewEngine(1)
	n := 0
	e.Every(time.Second, func(*Engine) bool {
		n++
		return n < 5
	})
	e.Run(100 * time.Second)
	if n != 5 {
		t.Errorf("ticker fired %d times, want 5", n)
	}
}

func TestEveryStopFunc(t *testing.T) {
	e := NewEngine(1)
	n := 0
	stop := e.Every(time.Second, func(*Engine) bool { n++; return true })
	e.Schedule(3500*time.Millisecond, func(*Engine) { stop() })
	e.Run(10 * time.Second)
	if n != 3 {
		t.Errorf("ticker fired %d times, want 3", n)
	}
}

func TestEveryZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Every(0) did not panic")
		}
	}()
	NewEngine(1).Every(0, func(*Engine) bool { return true })
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	n := 0
	e.Every(time.Second, func(en *Engine) bool {
		n++
		if n == 3 {
			en.Stop()
		}
		return true
	})
	e.Run(100 * time.Second)
	if n != 3 {
		t.Errorf("processed %d ticks, want 3 (Stop ignored)", n)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		e := NewEngine(42)
		var vals []int64
		e.Every(time.Second, func(en *Engine) bool {
			vals = append(vals, en.Rand().Int63n(1000))
			return len(vals) < 20
		})
		e.RunUntilIdle()
		return vals
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.Schedule(-time.Second, func(*Engine) { fired = true })
	e.RunUntilIdle()
	if !fired {
		t.Error("negative-delay event did not fire")
	}
}

func TestLenCountsPending(t *testing.T) {
	e := NewEngine(1)
	ev := e.Schedule(time.Second, func(*Engine) {})
	e.Schedule(2*time.Second, func(*Engine) {})
	if e.Len() != 2 {
		t.Fatalf("Len = %d, want 2", e.Len())
	}
	e.Cancel(ev)
	if e.Len() != 1 {
		t.Fatalf("Len after cancel = %d, want 1", e.Len())
	}
}

// Property: for any set of non-negative delays, events fire in sorted order
// and the clock never runs backwards.
func TestQuickMonotoneClock(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(7)
		var seen []Time
		for _, d := range delays {
			e.Schedule(time.Duration(d)*time.Millisecond, func(en *Engine) {
				seen = append(seen, en.Now())
			})
		}
		e.RunUntilIdle()
		if len(seen) != len(delays) {
			return false
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
