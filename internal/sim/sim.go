// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of scheduled
// events. Events scheduled for the same instant fire in the order they were
// scheduled (FIFO tie-breaking by sequence number), which makes every run
// bit-for-bit reproducible given the same seed. All EONA experiments run on
// top of this engine so that results in EXPERIMENTS.md can be regenerated
// exactly.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, measured as an offset from the start of
// the simulation. The zero Time is the simulation epoch.
type Time = time.Duration

// Event is a scheduled callback. The callback receives the engine so that it
// can schedule further events.
type Event struct {
	at  Time
	seq uint64
	fn  func(*Engine)

	index     int // heap index; -1 when not queued
	cancelled bool
}

// At reports the virtual time at which the event fires.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all model code runs inside event callbacks on the calling
// goroutine.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	rng     *rand.Rand
	stopped bool
	tickEnd []func(*Engine)

	// Processed counts events that have fired, for diagnostics and as a
	// runaway guard in tests.
	Processed uint64
}

// NewEngine returns an engine whose random source is seeded with seed.
// Engines with equal seeds and equal schedules produce identical runs.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Len returns the number of pending (non-cancelled) events.
func (e *Engine) Len() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// ErrPastEvent is returned by ScheduleAt when the requested time is before
// the current virtual time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// ScheduleAt schedules fn to run at absolute virtual time at. It panics if
// at is before Now; simulations that need "as soon as possible" semantics
// should pass Now().
func (e *Engine) ScheduleAt(at Time, fn func(*Engine)) *Event {
	if at < e.now {
		panic(fmt.Errorf("%w: at=%v now=%v", ErrPastEvent, at, e.now))
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Schedule schedules fn to run after delay d (relative to Now).
func (e *Engine) Schedule(d time.Duration, fn func(*Engine)) *Event {
	if d < 0 {
		d = 0
	}
	return e.ScheduleAt(e.now+d, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled || ev.index < 0 {
		if ev != nil {
			ev.cancelled = true
		}
		return
	}
	ev.cancelled = true
}

// Every schedules fn to run every period, starting after the first period
// elapses. The returned stop function cancels the ticker — including the
// already-queued next tick, so a stopped ticker leaves no dead event behind
// to inflate Len, Processed, or the idle-run clock. If fn returns false the
// ticker stops itself. Calling stop is idempotent; calling it from inside fn
// suppresses the reschedule.
func (e *Engine) Every(period time.Duration, fn func(*Engine) bool) (stop func()) {
	if period <= 0 {
		panic("sim: Every requires a positive period")
	}
	stopped := false
	var pending *Event
	var tick func(*Engine)
	tick = func(en *Engine) {
		if stopped {
			return
		}
		pending = nil // this tick just fired
		if !fn(en) {
			stopped = true
			return
		}
		if !stopped { // fn may have called stop
			pending = en.Schedule(period, tick)
		}
	}
	pending = e.Schedule(period, tick)
	return func() {
		stopped = true
		if pending != nil {
			e.Cancel(pending)
			pending = nil
		}
	}
}

// Stop halts the run loop after the current event completes. Pending
// end-of-tick callbacks are not flushed; they carry over to the next Run.
func (e *Engine) Stop() { e.stopped = true }

// OnTickEnd registers fn to run once every already-queued event at the
// current instant has fired — i.e. just before virtual time would next
// advance (or the run loop return). Callbacks run in registration order and
// may schedule events; events they add at the current instant fire before
// time advances and may trigger a further round of tick-end callbacks.
//
// The hook is one-shot: a callback that wants to run at the end of a later
// tick registers itself again. control.Coalescer uses it to fold all
// monitor reactions of one simulated instant into a single allocator batch.
func (e *Engine) OnTickEnd(fn func(*Engine)) {
	e.tickEnd = append(e.tickEnd, fn)
}

// flushTickEnd runs and clears the registered tick-end callbacks. Callbacks
// registered while flushing land in the next flush (same instant if the
// clock has not advanced by then).
func (e *Engine) flushTickEnd() {
	fns := e.tickEnd
	e.tickEnd = nil
	for _, fn := range fns {
		fn(e)
	}
}

// Run processes events until the queue is empty, Stop is called, or the
// clock would pass horizon (events at exactly horizon still fire). It
// returns the virtual time at which processing stopped.
func (e *Engine) Run(horizon Time) Time {
	return e.run(horizon, true)
}

// RunUntilIdle processes events until none remain or Stop is called. Unlike
// Run, draining the queue leaves the clock at the last processed event —
// not at the sentinel horizon — so later Schedule calls keep working
// instead of overflowing into an ErrPastEvent panic.
func (e *Engine) RunUntilIdle() Time {
	return e.run(Time(1<<63-1), false)
}

// run is the shared loop. advance controls whether a drained queue jumps
// the clock forward to horizon (Run's contract) or leaves it at the last
// processed event (RunUntilIdle's).
func (e *Engine) run(horizon Time, advance bool) Time {
	e.stopped = false
	for !e.stopped {
		// Tick boundary: no queued event remains at the current
		// instant, so flush end-of-tick callbacks before the clock can
		// advance (or the loop exit).
		if len(e.tickEnd) > 0 && (len(e.queue) == 0 || e.queue[0].at > e.now) {
			e.flushTickEnd()
			continue
		}
		if len(e.queue) == 0 {
			break
		}
		next := e.queue[0]
		if next.at > horizon {
			break
		}
		heap.Pop(&e.queue)
		if next.cancelled {
			continue
		}
		e.now = next.at
		e.Processed++
		next.fn(e)
	}
	if advance && e.now < horizon && !e.stopped {
		e.now = horizon
	}
	return e.now
}

// peek returns the time of the next live event, discarding cancelled events
// from the head of the queue on the way. ok is false when no live event
// remains queued.
func (e *Engine) peek() (at Time, ok bool) {
	for len(e.queue) > 0 && e.queue[0].cancelled {
		heap.Pop(&e.queue)
	}
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}

// hasWorkAt reports whether the engine has a queued event at exactly t, or
// pending end-of-tick callbacks. Precondition of the parallel run loop: no
// live event is queued before t.
func (e *Engine) hasWorkAt(t Time) bool {
	if len(e.tickEnd) > 0 {
		return true
	}
	at, ok := e.peek()
	return ok && at == t
}

// runInstant advances the clock to t and fires every queued event scheduled
// at exactly t — including events callbacks add at t while it runs — then
// flushes end-of-tick hooks, looping until the instant is fully drained.
// Later events stay queued. It is the per-partition step of a
// ParallelEngine's lockstep loop; callers must guarantee no live event is
// queued before t.
func (e *Engine) runInstant(t Time) {
	e.now = t
	for !e.stopped {
		if len(e.queue) > 0 && e.queue[0].at == t {
			next := heap.Pop(&e.queue).(*Event)
			if next.cancelled {
				continue
			}
			e.Processed++
			next.fn(e)
			continue
		}
		if len(e.tickEnd) > 0 {
			e.flushTickEnd()
			continue
		}
		break
	}
}
