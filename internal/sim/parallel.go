package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ParallelEngine is a multi-driver discrete-event engine: P partition
// engines advance in lockstep over virtual instants, and within one instant
// the partitions' events run concurrently on up to W worker goroutines.
//
// The determinism contract has three parts:
//
//  1. Partitioning rule — every mutable piece of scenario state is owned by
//     exactly one partition, and only that partition's callbacks touch it.
//     Event sources that share nothing (per-region session arrivals, a
//     region's monitor fleet, a fault schedule) each live in their own
//     partition. Within a partition, events fire in (time, schedule order),
//     exactly like a serial Engine — each partition IS an Engine.
//
//  2. Per-instant barrier — when every partition has drained instant t
//     (including its end-of-tick hooks), the engine runs the registered
//     OnInstantEnd hooks on the coordinating goroutine, alone. This is
//     where cross-partition effects commit: hooks typically call a
//     deterministic-mode netsim.SharedNetwork's Commit, which applies the
//     instant's buffered ops in canonical (driver, seq) order and publishes
//     exactly one snapshot for the instant. Hooks may schedule events into
//     any partition; partition callbacks must only schedule into their own.
//
//  3. Worker-count independence — the worker count W (and goroutine
//     scheduling generally) affects wall-clock only, never results: cross-
//     partition interaction happens only through the barrier, and the
//     barrier's op order is (driver, seq), which no interleaving perturbs.
//     W=1 runs the partitions of each instant sequentially in partition
//     order on the calling goroutine — the serial reference the
//     differential tests pin bit-identical against W=N.
//
// A ParallelEngine with one partition behaves exactly like that partition's
// serial Engine (same seed, same event order, same tick-end semantics), so
// existing single-threaded scenarios can run on it unchanged.
type ParallelEngine struct {
	parts   []*Engine
	workers int
	now     Time
	stopped atomic.Bool

	// instantEnd hooks run after every fully-drained instant, in
	// registration order, exclusively on the coordinating goroutine.
	instantEnd []func(*ParallelEngine)

	// Instants counts barrier rounds (one per distinct drained instant,
	// plus re-runs when a barrier hook schedules same-instant work).
	Instants uint64
}

// NewParallel returns an engine with the given number of partitions, run by
// up to workers goroutines per instant. Partition p's random source is
// seeded seed+p, so partition 0 of NewParallel(seed, 1, 1) reproduces
// NewEngine(seed) exactly. workers <= 0 means GOMAXPROCS; the worker count
// never affects results, only wall-clock.
func NewParallel(seed int64, partitions, workers int) *ParallelEngine {
	if partitions <= 0 {
		panic(fmt.Sprintf("sim: NewParallel requires at least one partition, got %d", partitions))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pe := &ParallelEngine{workers: workers}
	for p := 0; p < partitions; p++ {
		pe.parts = append(pe.parts, NewEngine(seed+int64(p)))
	}
	return pe
}

// Partition returns partition p's engine. Schedule a source's events on its
// own partition; the returned *Engine is only safe to use from that
// partition's callbacks (or between Run calls / inside barrier hooks).
func (pe *ParallelEngine) Partition(p int) *Engine { return pe.parts[p] }

// Partitions returns the partition count.
func (pe *ParallelEngine) Partitions() int { return len(pe.parts) }

// Workers returns the effective worker-goroutine count.
func (pe *ParallelEngine) Workers() int { return pe.workers }

// Now returns the engine's virtual clock: the last drained instant (or the
// horizon after a bounded Run that outlived its events).
func (pe *ParallelEngine) Now() Time { return pe.now }

// Stop halts the run loop after the current instant's barrier completes.
// Safe to call from partition callbacks and barrier hooks.
func (pe *ParallelEngine) Stop() { pe.stopped.Store(true) }

// OnInstantEnd registers fn to run after every drained instant, on the
// coordinating goroutine with no partition running. Unlike Engine.OnTickEnd
// the hook is persistent. This is the commit barrier: wire a deterministic
// SharedNetwork's Commit here so every instant's buffered ops apply in
// (driver, seq) order and exactly one snapshot publishes per instant.
func (pe *ParallelEngine) OnInstantEnd(fn func(*ParallelEngine)) {
	pe.instantEnd = append(pe.instantEnd, fn)
}

// Processed totals events fired across all partitions.
func (pe *ParallelEngine) Processed() uint64 {
	var n uint64
	for _, p := range pe.parts {
		n += p.Processed
	}
	return n
}

// Len totals pending (non-cancelled) events across all partitions.
func (pe *ParallelEngine) Len() int {
	n := 0
	for _, p := range pe.parts {
		n += p.Len()
	}
	return n
}

// Run processes instants until no partition has events left, Stop is
// called, or the clock would pass horizon (an instant at exactly horizon
// still runs, barrier included). It returns the virtual time at which
// processing stopped.
func (pe *ParallelEngine) Run(horizon Time) Time {
	return pe.run(horizon, true)
}

// RunUntilIdle processes instants until none remain or Stop is called,
// leaving the clock at the last drained instant.
func (pe *ParallelEngine) RunUntilIdle() Time {
	return pe.run(Time(1<<63-1), false)
}

func (pe *ParallelEngine) run(horizon Time, advance bool) Time {
	pe.stopped.Store(false)
	for _, p := range pe.parts {
		p.stopped = false
	}
	for !pe.stopped.Load() {
		t, ok := pe.nextInstant()
		if !ok || t > horizon {
			break
		}
		pe.runOneInstant(t)
		pe.now = t
		pe.Instants++
		for _, fn := range pe.instantEnd {
			fn(pe)
		}
		for _, p := range pe.parts {
			if p.stopped {
				pe.stopped.Store(true)
			}
		}
	}
	if advance && pe.now < horizon && !pe.stopped.Load() {
		pe.setNow(horizon)
	}
	return pe.now
}

// nextInstant finds the earliest live event time across partitions. A
// partition holding un-flushed tick-end callbacks (possible only if a
// barrier hook registered one) keeps the current instant alive.
func (pe *ParallelEngine) nextInstant() (Time, bool) {
	var t Time
	found := false
	for _, p := range pe.parts {
		if len(p.tickEnd) > 0 && (!found || pe.now < t) {
			t, found = pe.now, true
		}
		if at, ok := p.peek(); ok && (!found || at < t) {
			t, found = at, true
		}
	}
	return t, found
}

// runOneInstant drains instant t in every partition. Idle partitions just
// have their clocks advanced; active ones run concurrently on up to
// pe.workers goroutines (sequentially, in partition order, when one worker
// suffices — the serial reference path).
func (pe *ParallelEngine) runOneInstant(t Time) {
	var active []int
	for i, p := range pe.parts {
		if p.hasWorkAt(t) {
			active = append(active, i)
		} else if p.now < t {
			p.now = t
		}
	}
	w := pe.workers
	if w > len(active) {
		w = len(active)
	}
	if w <= 1 {
		for _, i := range active {
			pe.parts[i].runInstant(t)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= len(active) {
					return
				}
				pe.parts[active[j]].runInstant(t)
			}
		}()
	}
	wg.Wait()
}

// setNow advances the engine and every partition clock to t (used for the
// end-of-Run jump to the horizon, mirroring Engine.Run).
func (pe *ParallelEngine) setNow(t Time) {
	pe.now = t
	for _, p := range pe.parts {
		if p.now < t {
			p.now = t
		}
	}
}

// EveryOn is a convenience for partitioned periodic sources: it installs an
// Every ticker on partition p. The returned stop func must only be called
// from that partition's callbacks or between runs.
func (pe *ParallelEngine) EveryOn(p int, period time.Duration, fn func(*Engine) bool) (stop func()) {
	return pe.parts[p].Every(period, fn)
}
