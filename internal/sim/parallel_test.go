package sim

import (
	"sync/atomic"
	"testing"
	"time"
)

// A one-partition ParallelEngine must reproduce a serial Engine exactly:
// same event order, same rng stream, same Processed count, same final
// clock.
func TestParallelOnePartitionMatchesSerial(t *testing.T) {
	type trace struct {
		order []int
		rands []int64
		end   Time
		procd uint64
	}
	scenario := func(e *Engine, run func(Time) Time) trace {
		var tr trace
		for i := 0; i < 5; i++ {
			i := i
			e.Schedule(time.Duration(5-i)*time.Second, func(en *Engine) {
				tr.order = append(tr.order, i)
				tr.rands = append(tr.rands, en.Rand().Int63n(1000))
			})
		}
		e.Every(2*time.Second, func(en *Engine) bool {
			tr.order = append(tr.order, 100)
			tr.rands = append(tr.rands, en.Rand().Int63n(1000))
			return en.Now() < 6*time.Second
		})
		tr.end = run(20 * time.Second)
		tr.procd = e.Processed
		return tr
	}
	se := NewEngine(42)
	serial := scenario(se, se.Run)
	pe := NewParallel(42, 1, 1)
	par := scenario(pe.Partition(0), pe.Run)

	if len(serial.order) != len(par.order) {
		t.Fatalf("event counts differ: %d vs %d", len(serial.order), len(par.order))
	}
	for i := range serial.order {
		if serial.order[i] != par.order[i] || serial.rands[i] != par.rands[i] {
			t.Fatalf("diverge at %d: (%d,%d) vs (%d,%d)",
				i, serial.order[i], serial.rands[i], par.order[i], par.rands[i])
		}
	}
	if serial.end != par.end || serial.procd != par.procd {
		t.Fatalf("end/processed differ: (%v,%d) vs (%v,%d)",
			serial.end, serial.procd, par.end, par.procd)
	}
}

// Worker count must not change results: a partitioned scenario run with 1
// worker (the serial reference) and with 4 workers produces identical
// per-partition event traces, Processed counts, instants and final clocks.
func TestParallelWorkerCountIndependence(t *testing.T) {
	run := func(workers int) ([][]Time, uint64, uint64, Time) {
		const parts = 6
		pe := NewParallel(9, parts, workers)
		traces := make([][]Time, parts)
		for p := 0; p < parts; p++ {
			p := p
			eng := pe.Partition(p)
			// Periodic work at a per-partition phase plus bursts
			// landing on shared instants.
			eng.Every(time.Duration(p+1)*time.Second, func(en *Engine) bool {
				traces[p] = append(traces[p], en.Now())
				if en.Now() == 6*time.Second {
					en.Schedule(0, func(en2 *Engine) {
						traces[p] = append(traces[p], en2.Now())
					})
				}
				return true
			})
		}
		end := pe.Run(12 * time.Second)
		return traces, pe.Processed(), pe.Instants, end
	}
	t1, p1, i1, e1 := run(1)
	t4, p4, i4, e4 := run(4)
	if p1 != p4 || i1 != i4 || e1 != e4 {
		t.Fatalf("processed/instants/end differ: (%d,%d,%v) vs (%d,%d,%v)", p1, i1, e1, p4, i4, e4)
	}
	for p := range t1 {
		if len(t1[p]) != len(t4[p]) {
			t.Fatalf("partition %d trace lengths differ: %d vs %d", p, len(t1[p]), len(t4[p]))
		}
		for i := range t1[p] {
			if t1[p][i] != t4[p][i] {
				t.Fatalf("partition %d diverges at %d: %v vs %v", p, i, t1[p][i], t4[p][i])
			}
		}
	}
}

// The barrier runs once per drained instant, after every partition's events
// at that instant, and never concurrently with partition callbacks.
func TestParallelInstantBarrier(t *testing.T) {
	const parts = 4
	pe := NewParallel(1, parts, parts)
	var inInstant atomic.Int32
	var barrierAt []Time
	// Partition callbacks run concurrently, so each records its tick times
	// in its own slice; aggregation happens after the run.
	ticks := make([][]Time, parts)
	for p := 0; p < parts; p++ {
		p := p
		eng := pe.Partition(p)
		eng.Every(time.Second, func(en *Engine) bool {
			inInstant.Add(1)
			ticks[p] = append(ticks[p], en.Now())
			inInstant.Add(-1)
			return en.Now() < 3*time.Second
		})
	}
	pe.OnInstantEnd(func(pe *ParallelEngine) {
		if inInstant.Load() != 0 {
			t.Error("barrier ran while a partition callback was active")
		}
		barrierAt = append(barrierAt, pe.Now())
	})
	pe.RunUntilIdle()
	want := []Time{time.Second, 2 * time.Second, 3 * time.Second}
	if len(barrierAt) != len(want) {
		t.Fatalf("barrier ran at %v, want %v", barrierAt, want)
	}
	for i := range want {
		if barrierAt[i] != want[i] {
			t.Fatalf("barrier ran at %v, want %v", barrierAt, want)
		}
	}
	for p := 0; p < parts; p++ {
		if len(ticks[p]) != len(want) {
			t.Fatalf("partition %d ticked at %v, want %v", p, ticks[p], want)
		}
		for i := range want {
			if ticks[p][i] != want[i] {
				t.Errorf("partition %d ticked at %v, want %v", p, ticks[p], want)
			}
		}
	}
}

// Barrier hooks may schedule follow-up events into any partition, including
// at the current instant (which re-runs the instant before time advances).
func TestParallelBarrierSchedules(t *testing.T) {
	pe := NewParallel(1, 2, 2)
	var got []Time
	pe.Partition(0).Schedule(time.Second, func(*Engine) {})
	first := true
	pe.OnInstantEnd(func(pe *ParallelEngine) {
		if first {
			first = false
			pe.Partition(1).ScheduleAt(pe.Now(), func(en *Engine) {
				got = append(got, en.Now())
			})
			pe.Partition(1).Schedule(time.Second, func(en *Engine) {
				got = append(got, en.Now())
			})
		}
	})
	pe.RunUntilIdle()
	if len(got) != 2 || got[0] != time.Second || got[1] != 2*time.Second {
		t.Fatalf("barrier-scheduled events fired at %v, want [1s 2s]", got)
	}
}

// Stop from a partition callback halts the run after the current instant.
func TestParallelStop(t *testing.T) {
	pe := NewParallel(1, 3, 3)
	var n atomic.Int64
	for p := 0; p < 3; p++ {
		eng := pe.Partition(p)
		eng.Every(time.Second, func(en *Engine) bool {
			n.Add(1)
			if en.Now() == 2*time.Second {
				pe.Stop()
			}
			return true
		})
	}
	end := pe.Run(100 * time.Second)
	if end != 2*time.Second {
		t.Errorf("stopped at %v, want 2s", end)
	}
	if got := n.Load(); got != 6 {
		t.Errorf("ticks = %d, want 6 (3 partitions × 2 instants)", got)
	}
}

// Engine.Stop on a partition halts the whole lockstep run, mirroring the
// serial contract.
func TestParallelPartitionStop(t *testing.T) {
	pe := NewParallel(1, 2, 1)
	pe.Partition(0).Schedule(time.Second, func(en *Engine) { en.Stop() })
	pe.Partition(1).Schedule(5*time.Second, func(*Engine) { t.Error("event after Stop fired") })
	end := pe.Run(100 * time.Second)
	if end != time.Second {
		t.Errorf("stopped at %v, want 1s (no horizon jump after Stop)", end)
	}
}

// RunUntilIdle leaves the lockstep clock at the last drained instant (the
// same regression contract as the serial engine), and scheduling afterwards
// works.
func TestParallelRunUntilIdleClock(t *testing.T) {
	pe := NewParallel(1, 2, 2)
	pe.Partition(1).Schedule(3*time.Second, func(*Engine) {})
	if end := pe.RunUntilIdle(); end != 3*time.Second {
		t.Fatalf("idle clock = %v, want 3s", end)
	}
	fired := false
	pe.Partition(0).Schedule(time.Second, func(*Engine) { fired = true })
	pe.RunUntilIdle()
	if !fired {
		t.Error("post-idle event did not fire")
	}
	if pe.Now() != 4*time.Second {
		t.Errorf("clock = %v, want 4s", pe.Now())
	}
}

// Cancelled events neither define instants nor count as work: a partition
// whose only remaining event is cancelled is idle.
func TestParallelCancelledEventsIgnored(t *testing.T) {
	pe := NewParallel(1, 2, 2)
	ev := pe.Partition(0).Schedule(time.Second, func(*Engine) { t.Error("cancelled event fired") })
	pe.Partition(0).Cancel(ev)
	pe.Partition(1).Schedule(2*time.Second, func(*Engine) {})
	barriers := 0
	pe.OnInstantEnd(func(*ParallelEngine) { barriers++ })
	end := pe.RunUntilIdle()
	if end != 2*time.Second {
		t.Errorf("idle clock = %v, want 2s", end)
	}
	if barriers != 1 {
		t.Errorf("barriers = %d, want 1 (cancelled event created an instant)", barriers)
	}
	if got := pe.Processed(); got != 1 {
		t.Errorf("Processed = %d, want 1", got)
	}
}

func TestParallelZeroPartitionsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewParallel(seed, 0, 1) did not panic")
		}
	}()
	NewParallel(1, 0, 1)
}

// BenchmarkParallelEngineInstants prices the lockstep machinery itself:
// P partitions ticking every instant, no payload. The workers=1 row is the
// serial-reference overhead; multi-worker rows add the dispatch cost (and,
// on multi-core hardware, recover it with real parallelism once callbacks
// do non-trivial work).
func BenchmarkParallelEngineInstants(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(map[int]string{1: "workers-1", 4: "workers-4"}[workers], func(b *testing.B) {
			pe := NewParallel(1, 8, workers)
			for p := 0; p < 8; p++ {
				pe.Partition(p).Every(time.Millisecond, func(*Engine) bool { return true })
			}
			b.ResetTimer()
			horizon := time.Duration(b.N) * time.Millisecond
			pe.Run(horizon)
		})
	}
}
