package sim

import (
	"testing"
	"time"
)

// The tick-end hook fires after every already-queued event at the current
// instant, before the clock advances to the next event.
func TestOnTickEndRunsAfterSameInstantEvents(t *testing.T) {
	e := NewEngine(1)
	var got []string
	for i := 0; i < 3; i++ {
		e.Schedule(5*time.Second, func(en *Engine) {
			got = append(got, "event")
			en.OnTickEnd(func(*Engine) { got = append(got, "tick-end") })
		})
	}
	e.Schedule(6*time.Second, func(*Engine) { got = append(got, "later") })
	e.RunUntilIdle()
	want := []string{"event", "event", "event", "tick-end", "tick-end", "tick-end", "later"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// The hook also flushes when the queue drains entirely (no later event to
// advance toward) and when the next event is beyond the horizon.
func TestOnTickEndFlushesAtRunExit(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.Schedule(time.Second, func(en *Engine) {
		en.OnTickEnd(func(*Engine) { ran++ })
	})
	e.RunUntilIdle()
	if ran != 1 {
		t.Fatalf("queue-drain flush: ran = %d, want 1", ran)
	}

	e2 := NewEngine(1)
	ran2 := 0
	var at Time
	e2.Schedule(time.Second, func(en *Engine) {
		en.OnTickEnd(func(en *Engine) { ran2++; at = en.Now() })
	})
	e2.Schedule(time.Hour, func(*Engine) {})
	e2.Run(2 * time.Second)
	if ran2 != 1 {
		t.Fatalf("horizon flush: ran = %d, want 1", ran2)
	}
	if at != time.Second {
		t.Fatalf("horizon flush ran at %v, want 1s", at)
	}
}

// A tick-end callback may schedule events at the current instant; they fire
// before time advances, and may register a further round of callbacks for
// the same instant.
func TestOnTickEndCallbackMaySchedule(t *testing.T) {
	e := NewEngine(1)
	var got []string
	e.Schedule(time.Second, func(en *Engine) {
		got = append(got, "event")
		en.OnTickEnd(func(en *Engine) {
			got = append(got, "flush1")
			en.Schedule(0, func(en *Engine) {
				got = append(got, "same-instant")
				en.OnTickEnd(func(*Engine) { got = append(got, "flush2") })
			})
		})
	})
	e.Schedule(2*time.Second, func(*Engine) { got = append(got, "later") })
	e.RunUntilIdle()
	want := []string{"event", "flush1", "same-instant", "flush2", "later"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// The hook is one-shot: it does not fire again at later ticks unless
// re-registered, and callbacks run in registration order.
func TestOnTickEndOneShotAndOrdered(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(time.Second, func(en *Engine) {
		en.OnTickEnd(func(*Engine) { got = append(got, 1) })
		en.OnTickEnd(func(*Engine) { got = append(got, 2) })
	})
	e.Schedule(5*time.Second, func(*Engine) {})
	e.RunUntilIdle()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, want [1 2]", got)
	}
}

// A callback registered before Run flushes at the initial instant, even
// when the first queued event is later.
func TestOnTickEndBeforeRun(t *testing.T) {
	e := NewEngine(1)
	var at Time = -1
	fired := false
	e.OnTickEnd(func(en *Engine) { at = en.Now() })
	e.Schedule(3*time.Second, func(*Engine) { fired = true })
	e.RunUntilIdle()
	if at != 0 {
		t.Fatalf("pre-run callback ran at %v, want 0", at)
	}
	if !fired {
		t.Fatal("queued event did not fire")
	}
}
