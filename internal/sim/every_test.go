package sim

import (
	"testing"
	"time"
)

// Regression: Every's stop func used to only flip a closure flag, leaving
// the already-queued tick event in the heap. The dead event still counted
// in Len, fired as a no-op (inflating Processed), and dragged the clock
// forward under RunUntilIdle.
func TestEveryStopCancelsPendingTick(t *testing.T) {
	e := NewEngine(1)
	stop := e.Every(10*time.Second, func(*Engine) bool { return true })
	stop()
	if got := e.Len(); got != 0 {
		t.Fatalf("Len after stop = %d, want 0 (dead tick left queued)", got)
	}
	end := e.RunUntilIdle()
	if e.Processed != 0 {
		t.Errorf("Processed = %d, want 0 (stopped ticker fired)", e.Processed)
	}
	if end != 0 {
		t.Errorf("idle clock = %v, want 0 (dead tick advanced the clock)", end)
	}
}

// Regression: a ticker that stops itself by returning false must not leave
// a pending event either (the next tick is only scheduled after fn returns
// true, so the false path just has to not reschedule).
func TestEveryFalseReturnLeavesNoEvent(t *testing.T) {
	e := NewEngine(1)
	n := 0
	stop := e.Every(time.Second, func(*Engine) bool {
		n++
		return n < 3
	})
	e.RunUntilIdle()
	if n != 3 {
		t.Fatalf("ticks = %d, want 3", n)
	}
	if got := e.Len(); got != 0 {
		t.Errorf("Len after self-stop = %d, want 0", got)
	}
	if e.Processed != 3 {
		t.Errorf("Processed = %d, want 3", e.Processed)
	}
	stop() // late stop after self-stop is a harmless no-op
	if got := e.Len(); got != 0 {
		t.Errorf("Len after late stop = %d, want 0", got)
	}
}

// TestEverySemantics tables the stop-path corner cases.
func TestEverySemantics(t *testing.T) {
	cases := []struct {
		name string
		run  func(e *Engine) (ticks int)
	}{
		{
			// stop() before the first tick ever fires: nothing runs.
			name: "stop-before-first-tick",
			run: func(e *Engine) int {
				n := 0
				stop := e.Every(time.Second, func(*Engine) bool { n++; return true })
				stop()
				e.RunUntilIdle()
				return n
			},
		},
		{
			// stop() from inside fn: the returned true must not
			// reschedule past the stop.
			name: "stop-inside-fn",
			run: func(e *Engine) int {
				n := 0
				var stop func()
				stop = e.Every(time.Second, func(*Engine) bool {
					n++
					if n == 2 {
						stop()
					}
					return true
				})
				e.RunUntilIdle()
				return n
			},
		},
		{
			// A fresh Every after stopping the first keeps its own
			// state: restart works and the old ticker stays dead.
			name: "restart-after-stop",
			run: func(e *Engine) int {
				n := 0
				stop := e.Every(time.Second, func(*Engine) bool { n += 100; return true })
				e.Schedule(1500*time.Millisecond, func(en *Engine) {
					stop()
					en.Every(time.Second, func(*Engine) bool {
						n++
						return n%100 < 3
					})
				})
				e.Run(10 * time.Second)
				return n
			},
		},
	}
	want := map[string]int{
		"stop-before-first-tick": 0,
		"stop-inside-fn":         2,
		"restart-after-stop":     103, // one old tick (at 1s), then 3 new ones
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			e := NewEngine(7)
			if got := tc.run(e); got != want[tc.name] {
				t.Errorf("ticks = %d, want %d", got, want[tc.name])
			}
			if got := e.Len(); got != 0 && tc.name != "restart-after-stop" {
				t.Errorf("Len after run = %d, want 0", got)
			}
		})
	}
}

// Regression: Run used to set now = horizon unconditionally when the queue
// drained, so RunUntilIdle's 1<<63-1 sentinel left the clock at max-Time
// and any later Schedule overflowed into an ErrPastEvent panic.
func TestScheduleAfterRunUntilIdle(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(5*time.Second, func(*Engine) {})
	end := e.RunUntilIdle()
	if end != 5*time.Second {
		t.Fatalf("idle clock = %v, want 5s (last processed event)", end)
	}
	fired := false
	e.Schedule(time.Second, func(*Engine) { fired = true }) // used to panic
	e.RunUntilIdle()
	if !fired {
		t.Error("post-idle event did not fire")
	}
	if got := e.Now(); got != 6*time.Second {
		t.Errorf("clock = %v, want 6s", got)
	}
}

// An empty engine stays at time zero after an idle run and remains usable.
func TestRunUntilIdleEmptyEngine(t *testing.T) {
	e := NewEngine(1)
	if end := e.RunUntilIdle(); end != 0 {
		t.Fatalf("idle clock on empty engine = %v, want 0", end)
	}
	fired := false
	e.Schedule(time.Second, func(*Engine) { fired = true })
	e.RunUntilIdle()
	if !fired {
		t.Error("event did not fire")
	}
}

// Bounded Run keeps its horizon-jump contract: the clock parks at the
// horizon even when the queue drains early, and scheduling afterwards is
// relative to the horizon.
func TestRunStillAdvancesToHorizon(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(time.Second, func(*Engine) {})
	if end := e.Run(30 * time.Second); end != 30*time.Second {
		t.Fatalf("Run returned %v, want 30s", end)
	}
	var at Time
	e.Schedule(time.Second, func(en *Engine) { at = en.Now() })
	e.RunUntilIdle()
	if at != 31*time.Second {
		t.Errorf("post-horizon event fired at %v, want 31s", at)
	}
}
