package cdn

import (
	"testing"
	"testing/quick"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(2)
	if c.Request(1) {
		t.Error("first request should miss")
	}
	if !c.Request(1) {
		t.Error("second request should hit")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d, want 1/1", hits, misses)
	}
	if c.HitRatio() != 0.5 {
		t.Errorf("hit ratio = %v, want 0.5", c.HitRatio())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Request(1)
	c.Request(2)
	c.Request(1) // 1 is now MRU
	c.Request(3) // evicts 2
	if !c.Contains(1) {
		t.Error("recently used object evicted")
	}
	if c.Contains(2) {
		t.Error("LRU object not evicted")
	}
	if !c.Contains(3) {
		t.Error("new object not inserted")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestCacheZeroCapacity(t *testing.T) {
	c := NewCache(0)
	if c.Request(1) {
		t.Error("zero-capacity cache hit")
	}
	if c.Request(1) {
		t.Error("zero-capacity cache cached an object")
	}
	if c.Len() != 0 {
		t.Error("zero-capacity cache stored an object")
	}
	c.Warm(1, 2)
	if c.Len() != 0 {
		t.Error("Warm stored into zero-capacity cache")
	}
}

func TestCacheNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative capacity did not panic")
		}
	}()
	NewCache(-1)
}

func TestCacheWarm(t *testing.T) {
	c := NewCache(3)
	c.Warm(1, 2, 3)
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 0 || misses != 0 {
		t.Error("Warm should not count hits or misses")
	}
	if !c.Request(2) {
		t.Error("warmed object should hit")
	}
	c.Warm(2) // already present: refreshed, not duplicated
	if c.Len() != 3 {
		t.Error("Warm duplicated an object")
	}
	c.Warm(4) // evicts LRU
	if c.Len() != 3 {
		t.Errorf("Len after over-warm = %d, want 3", c.Len())
	}
}

// Regression: re-warming an already-cached object must refresh its recency,
// otherwise re-warmed popular content sits at the LRU tail and is evicted
// first by the next insertion wave.
func TestCacheWarmRefreshesRecency(t *testing.T) {
	c := NewCache(2)
	c.Warm(1, 2) // order (MRU→LRU): 2, 1
	c.Warm(1)    // re-warm 1: order must become 1, 2
	c.Warm(3)    // evicts the true LRU
	if !c.Contains(1) {
		t.Error("re-warmed object evicted: Warm did not refresh recency")
	}
	if c.Contains(2) {
		t.Error("stale object survived over re-warmed one")
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 0 {
		t.Errorf("re-warm counted hits/misses: %d/%d", hits, misses)
	}
}

func TestCacheFlush(t *testing.T) {
	c := NewCache(2)
	c.Request(1)
	c.Flush()
	if c.Len() != 0 || c.Contains(1) {
		t.Error("Flush did not empty cache")
	}
}

// Property: the cache never exceeds capacity and Contains is consistent with
// what Request reported.
func TestQuickCacheInvariants(t *testing.T) {
	f := func(ids []uint8, capacity uint8) bool {
		cap := int(capacity%16) + 1
		c := NewCache(cap)
		for _, id := range ids {
			c.Request(ContentID(id))
			// Pull-through: the object must be cached after any
			// request, and the cache never exceeds capacity.
			if !c.Contains(ContentID(id)) || c.Len() > cap {
				return false
			}
			// An immediate re-request must hit.
			if !c.Request(ContentID(id)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
