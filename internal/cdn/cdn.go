package cdn

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"eona/internal/netsim"
)

// Server is one delivery server inside a cluster, with a finite concurrent
// session capacity. Servers can be administratively asleep (the §2
// energy-saving knob) or unhealthy (the §2 coarse-control failure).
type Server struct {
	ID       string
	Capacity int
	active   int
	healthy  bool
	asleep   bool
}

// NewServer returns a healthy, awake server.
func NewServer(id string, capacity int) *Server {
	if capacity <= 0 {
		panic(fmt.Sprintf("cdn: server %s needs positive capacity", id))
	}
	return &Server{ID: id, Capacity: capacity, healthy: true}
}

// Active returns the number of sessions currently assigned.
func (s *Server) Active() int { return s.active }

// Load returns active/capacity in [0, 1].
func (s *Server) Load() float64 { return float64(s.active) / float64(s.Capacity) }

// Available reports whether the server can accept another session.
func (s *Server) Available() bool {
	return s.healthy && !s.asleep && s.active < s.Capacity
}

// Healthy reports server health.
func (s *Server) Healthy() bool { return s.healthy }

// SetHealthy marks the server failed or recovered. Existing sessions on a
// failed server are the scenario's responsibility to migrate.
func (s *Server) SetHealthy(h bool) { s.healthy = h }

// Asleep reports whether the server is powered down.
func (s *Server) Asleep() bool { return s.asleep }

// SetAsleep powers the server down or up (energy-saving scenario, §2).
func (s *Server) SetAsleep(a bool) { s.asleep = a }

// ErrNoServer is returned when no server in a cluster can accept a session.
var ErrNoServer = errors.New("cdn: no available server in cluster")

// Cluster is a co-located group of servers sharing one content cache,
// attached to one network node.
type Cluster struct {
	Name string
	// Node is where the cluster sits in the simulated topology.
	Node netsim.NodeID
	// OriginPenalty is the extra startup delay a cache miss costs
	// (origin round trip plus fill).
	OriginPenalty time.Duration

	Servers []*Server
	Cache   *Cache
}

// NewCluster builds a cluster of n identical servers with the given
// per-server session capacity and a cache of cacheObjects objects.
func NewCluster(name string, node netsim.NodeID, n, serverCapacity, cacheObjects int, originPenalty time.Duration) *Cluster {
	if n <= 0 {
		panic("cdn: cluster needs at least one server")
	}
	c := &Cluster{
		Name:          name,
		Node:          node,
		OriginPenalty: originPenalty,
		Cache:         NewCache(cacheObjects),
	}
	for i := 0; i < n; i++ {
		c.Servers = append(c.Servers, NewServer(fmt.Sprintf("%s-s%02d", name, i), serverCapacity))
	}
	return c
}

// TotalCapacity sums the capacity of awake, healthy servers.
func (c *Cluster) TotalCapacity() int {
	total := 0
	for _, s := range c.Servers {
		if s.healthy && !s.asleep {
			total += s.Capacity
		}
	}
	return total
}

// ActiveSessions sums active sessions across all servers.
func (c *Cluster) ActiveSessions() int {
	total := 0
	for _, s := range c.Servers {
		total += s.active
	}
	return total
}

// Load returns cluster-wide active/available-capacity; 1 when no capacity
// is available.
func (c *Cluster) Load() float64 {
	cap := c.TotalCapacity()
	if cap == 0 {
		return 1
	}
	l := float64(c.ActiveSessions()) / float64(cap)
	if l > 1 {
		l = 1
	}
	return l
}

// AwakeServers counts servers that are powered up (healthy or not).
func (c *Cluster) AwakeServers() int {
	n := 0
	for _, s := range c.Servers {
		if !s.asleep {
			n++
		}
	}
	return n
}

// PickServer returns the least-loaded available server, breaking ties by ID
// for determinism, or ErrNoServer.
func (c *Cluster) PickServer() (*Server, error) {
	var best *Server
	for _, s := range c.Servers {
		if !s.Available() {
			continue
		}
		if best == nil || s.Load() < best.Load() || (s.Load() == best.Load() && s.ID < best.ID) {
			best = s
		}
	}
	if best == nil {
		return nil, ErrNoServer
	}
	return best, nil
}

// Alternatives lists available servers other than exclude, least-loaded
// first — the raw data behind the I2A alternative-server hint of §2.
func (c *Cluster) Alternatives(exclude *Server) []*Server {
	var out []*Server
	for _, s := range c.Servers {
		if s == exclude || !s.Available() {
			continue
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Load() != out[j].Load() {
			return out[i].Load() < out[j].Load()
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Assignment records a session placed on a server.
type Assignment struct {
	Cluster *Cluster
	Server  *Server
	// CacheHit reports whether the content was already cached.
	CacheHit bool
	// StartupPenalty is the extra startup delay from an origin fetch
	// (zero on a hit).
	StartupPenalty time.Duration

	released bool
}

// Assign admits a session for content onto the cluster's best server,
// performing the pull-through cache lookup. It returns ErrNoServer if the
// cluster is full.
func (c *Cluster) Assign(content ContentID) (*Assignment, error) {
	s, err := c.PickServer()
	if err != nil {
		return nil, err
	}
	return c.AssignTo(s, content)
}

// AssignTo admits a session onto a specific server (used when following an
// I2A alternative-server hint). The server must be available.
func (c *Cluster) AssignTo(s *Server, content ContentID) (*Assignment, error) {
	if !s.Available() {
		return nil, ErrNoServer
	}
	s.active++
	hit := c.Cache.Request(content)
	a := &Assignment{Cluster: c, Server: s, CacheHit: hit}
	if !hit {
		a.StartupPenalty = c.OriginPenalty
	}
	return a, nil
}

// Release frees the session's server slot. Releasing twice is a no-op.
func (a *Assignment) Release() {
	if a == nil || a.released {
		return
	}
	a.released = true
	if a.Server.active > 0 {
		a.Server.active--
	}
}

// CDN is a named collection of clusters.
type CDN struct {
	Name     string
	Clusters []*Cluster
}

// New builds a CDN from clusters.
func New(name string, clusters ...*Cluster) *CDN {
	if len(clusters) == 0 {
		panic("cdn: CDN needs at least one cluster")
	}
	return &CDN{Name: name, Clusters: clusters}
}

// Cluster returns the named cluster, or nil.
func (c *CDN) Cluster(name string) *Cluster {
	for _, cl := range c.Clusters {
		if cl.Name == name {
			return cl
		}
	}
	return nil
}

// BestCluster returns the least-loaded cluster with available capacity,
// breaking ties by name, or nil if the CDN is saturated.
func (c *CDN) BestCluster() *Cluster {
	var best *Cluster
	for _, cl := range c.Clusters {
		if _, err := cl.PickServer(); err != nil {
			continue
		}
		if best == nil || cl.Load() < best.Load() || (cl.Load() == best.Load() && cl.Name < best.Name) {
			best = cl
		}
	}
	return best
}

// TotalCapacity sums available capacity across clusters.
func (c *CDN) TotalCapacity() int {
	total := 0
	for _, cl := range c.Clusters {
		total += cl.TotalCapacity()
	}
	return total
}

// ActiveSessions sums sessions across clusters.
func (c *CDN) ActiveSessions() int {
	total := 0
	for _, cl := range c.Clusters {
		total += cl.ActiveSessions()
	}
	return total
}
