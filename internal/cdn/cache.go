// Package cdn models a content delivery network: named clusters attached to
// network nodes, servers with finite session capacity, and pull-through LRU
// content caches whose misses cost extra startup delay (an origin fetch).
//
// The model exists to make the paper's §2 "coarse control" scenario
// quantitative: switching to an alternative server *inside* the same CDN
// keeps cache locality (likely hit) and is cheap, while switching to a whole
// different CDN lands on a cold cache and disrupts the session. The CDN also
// exports the raw data behind EONA-I2A hints: per-server load and
// alternative-server lists.
package cdn

import "container/list"

// ContentID identifies an object in the catalog.
type ContentID int

// Cache is an LRU cache counted in objects. The zero value is unusable;
// construct with NewCache.
type Cache struct {
	capacity int
	ll       *list.List // front = most recent; values are ContentID
	index    map[ContentID]*list.Element

	hits, misses uint64
}

// NewCache returns an LRU cache holding up to capacity objects.
// A capacity of zero is legal and models a cacheless proxy: every lookup
// misses.
func NewCache(capacity int) *Cache {
	if capacity < 0 {
		panic("cdn: negative cache capacity")
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		index:    make(map[ContentID]*list.Element),
	}
}

// Capacity returns the configured object capacity.
func (c *Cache) Capacity() int { return c.capacity }

// Len returns the number of cached objects.
func (c *Cache) Len() int { return c.ll.Len() }

// Contains reports whether id is cached, without touching recency or
// hit/miss counters.
func (c *Cache) Contains(id ContentID) bool {
	_, ok := c.index[id]
	return ok
}

// Request performs a pull-through lookup: on hit the object is refreshed to
// most-recently-used and true is returned; on miss the object is fetched
// (inserted, evicting the LRU entry if full) and false is returned.
func (c *Cache) Request(id ContentID) (hit bool) {
	if e, ok := c.index[id]; ok {
		c.ll.MoveToFront(e)
		c.hits++
		return true
	}
	c.misses++
	if c.capacity == 0 {
		return false
	}
	if c.ll.Len() >= c.capacity {
		lru := c.ll.Back()
		c.ll.Remove(lru)
		delete(c.index, lru.Value.(ContentID))
	}
	c.index[id] = c.ll.PushFront(id)
	return false
}

// Warm inserts objects without counting misses — used to set up
// already-popular content at scenario start. Warming an already-cached
// object refreshes it to most-recently-used: re-warmed popular content must
// not linger at the LRU tail where the next fill wave would evict it first.
func (c *Cache) Warm(ids ...ContentID) {
	for _, id := range ids {
		if e, ok := c.index[id]; ok {
			c.ll.MoveToFront(e)
			continue
		}
		if c.capacity == 0 {
			continue
		}
		if c.ll.Len() >= c.capacity {
			lru := c.ll.Back()
			c.ll.Remove(lru)
			delete(c.index, lru.Value.(ContentID))
		}
		c.index[id] = c.ll.PushFront(id)
	}
}

// Flush empties the cache (models a cluster restart or config change).
func (c *Cache) Flush() {
	c.ll.Init()
	c.index = make(map[ContentID]*list.Element)
}

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// HitRatio returns hits/(hits+misses), or 0 before any request.
func (c *Cache) HitRatio() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
