package cdn

import (
	"errors"
	"testing"
	"time"
)

func testCluster() *Cluster {
	return NewCluster("east", "cdnX-east", 3, 10, 100, 2*time.Second)
}

func TestNewClusterShape(t *testing.T) {
	c := testCluster()
	if len(c.Servers) != 3 {
		t.Fatalf("servers = %d, want 3", len(c.Servers))
	}
	if c.TotalCapacity() != 30 {
		t.Errorf("capacity = %d, want 30", c.TotalCapacity())
	}
	if c.Servers[0].ID != "east-s00" {
		t.Errorf("server ID = %q", c.Servers[0].ID)
	}
}

func TestPickServerLeastLoaded(t *testing.T) {
	c := testCluster()
	// Put 2 sessions on s00, 1 on s01.
	c.Servers[0].active = 2
	c.Servers[1].active = 1
	s, err := c.PickServer()
	if err != nil {
		t.Fatal(err)
	}
	if s.ID != "east-s02" {
		t.Errorf("picked %q, want east-s02 (empty)", s.ID)
	}
}

func TestPickServerTieBreakByID(t *testing.T) {
	c := testCluster()
	s, err := c.PickServer()
	if err != nil {
		t.Fatal(err)
	}
	if s.ID != "east-s00" {
		t.Errorf("tie-break picked %q, want east-s00", s.ID)
	}
}

func TestPickServerSkipsUnavailable(t *testing.T) {
	c := testCluster()
	c.Servers[0].SetHealthy(false)
	c.Servers[1].SetAsleep(true)
	s, err := c.PickServer()
	if err != nil {
		t.Fatal(err)
	}
	if s.ID != "east-s02" {
		t.Errorf("picked %q, want east-s02", s.ID)
	}
	c.Servers[2].active = 10 // full
	if _, err := c.PickServer(); !errors.Is(err, ErrNoServer) {
		t.Errorf("err = %v, want ErrNoServer", err)
	}
}

func TestAssignAndRelease(t *testing.T) {
	c := testCluster()
	a, err := c.Assign(ContentID(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.CacheHit {
		t.Error("cold cache should miss")
	}
	if a.StartupPenalty != 2*time.Second {
		t.Errorf("penalty = %v, want 2s", a.StartupPenalty)
	}
	if c.ActiveSessions() != 1 {
		t.Errorf("active = %d, want 1", c.ActiveSessions())
	}
	b, err := c.Assign(ContentID(7))
	if err != nil {
		t.Fatal(err)
	}
	if !b.CacheHit || b.StartupPenalty != 0 {
		t.Error("second request for same content should hit with no penalty")
	}
	a.Release()
	b.Release()
	if c.ActiveSessions() != 0 {
		t.Errorf("active after release = %d, want 0", c.ActiveSessions())
	}
	a.Release() // double release is a no-op
	if c.ActiveSessions() != 0 {
		t.Error("double release decremented")
	}
	var nilA *Assignment
	nilA.Release()
}

func TestAssignToUnavailableServer(t *testing.T) {
	c := testCluster()
	c.Servers[0].SetHealthy(false)
	if _, err := c.AssignTo(c.Servers[0], 1); !errors.Is(err, ErrNoServer) {
		t.Errorf("err = %v, want ErrNoServer", err)
	}
}

func TestAlternativesSortedByLoad(t *testing.T) {
	c := testCluster()
	c.Servers[0].active = 5
	c.Servers[1].active = 2
	alts := c.Alternatives(c.Servers[2])
	if len(alts) != 2 {
		t.Fatalf("alternatives = %d, want 2", len(alts))
	}
	if alts[0].ID != "east-s01" || alts[1].ID != "east-s00" {
		t.Errorf("order = %s,%s want east-s01,east-s00", alts[0].ID, alts[1].ID)
	}
	c.Servers[1].SetHealthy(false)
	if got := c.Alternatives(c.Servers[2]); len(got) != 1 {
		t.Errorf("alternatives with failed server = %d, want 1", len(got))
	}
}

func TestClusterLoadAndSleep(t *testing.T) {
	c := testCluster()
	if c.Load() != 0 {
		t.Errorf("empty load = %v", c.Load())
	}
	c.Servers[0].active = 10
	c.Servers[1].active = 5
	if got := c.Load(); got != 0.5 {
		t.Errorf("load = %v, want 0.5", got)
	}
	c.Servers[2].SetAsleep(true)
	// capacity drops to 20, active still 15
	if got := c.Load(); got != 0.75 {
		t.Errorf("load after sleep = %v, want 0.75", got)
	}
	if c.AwakeServers() != 2 {
		t.Errorf("awake = %d, want 2", c.AwakeServers())
	}
	for _, s := range c.Servers {
		s.SetAsleep(true)
	}
	if c.Load() != 1 {
		t.Error("all-asleep cluster load should be 1")
	}
}

func TestCDNBestCluster(t *testing.T) {
	east := NewCluster("east", "e", 1, 10, 10, time.Second)
	west := NewCluster("west", "w", 1, 10, 10, time.Second)
	c := New("cdnX", east, west)
	east.Servers[0].active = 8
	if got := c.BestCluster(); got != west {
		t.Errorf("best = %v, want west", got.Name)
	}
	west.Servers[0].active = 10 // full
	if got := c.BestCluster(); got != east {
		t.Errorf("best = %v, want east", got.Name)
	}
	east.Servers[0].active = 10
	if got := c.BestCluster(); got != nil {
		t.Errorf("best on saturated CDN = %v, want nil", got.Name)
	}
	if c.TotalCapacity() != 20 || c.ActiveSessions() != 20 {
		t.Error("CDN totals wrong")
	}
}

func TestCDNClusterLookup(t *testing.T) {
	east := NewCluster("east", "e", 1, 10, 10, time.Second)
	c := New("cdnX", east)
	if c.Cluster("east") != east {
		t.Error("lookup failed")
	}
	if c.Cluster("nope") != nil {
		t.Error("missing cluster should be nil")
	}
}

func TestConstructorValidation(t *testing.T) {
	cases := []func(){
		func() { NewServer("s", 0) },
		func() { NewCluster("c", "n", 0, 1, 1, 0) },
		func() { New("cdn") },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}
