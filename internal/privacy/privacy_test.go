package privacy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSuppressSmallGroups(t *testing.T) {
	in := map[string]uint64{"big": 100, "medium": 10, "tiny": 3}
	out := SuppressSmallGroups(in, 10)
	if _, ok := out["tiny"]; ok {
		t.Error("tiny group not suppressed")
	}
	if out["big"] != 100 || out["medium"] != 10 {
		t.Error("groups at or above k must survive")
	}
	if len(in) != 3 {
		t.Error("input map modified")
	}
	all := SuppressSmallGroups(in, 0)
	if len(all) != 3 {
		t.Error("k=0 should suppress nothing")
	}
}

func TestLaplaceMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 200000
	scale := 2.0
	sum, sumAbs := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := Laplace(rng, scale)
		sum += v
		sumAbs += math.Abs(v)
	}
	if mean := sum / n; math.Abs(mean) > 0.05 {
		t.Errorf("Laplace mean = %v, want ≈0", mean)
	}
	// E|X| = scale for Laplace.
	if meanAbs := sumAbs / n; math.Abs(meanAbs-scale) > 0.05 {
		t.Errorf("Laplace E|X| = %v, want %v", meanAbs, scale)
	}
	if Laplace(rng, 0) != 0 || Laplace(rng, -1) != 0 {
		t.Error("non-positive scale should produce zero noise")
	}
}

func TestNoiserDisabled(t *testing.T) {
	n := NewNoiser(0, 1, 1)
	if n.Noise(42) != 42 {
		t.Error("ε=0 should disable noise")
	}
}

func TestNoiserScalesWithEpsilon(t *testing.T) {
	spread := func(eps float64) float64 {
		n := NewNoiser(eps, 1, 7)
		s := 0.0
		for i := 0; i < 10000; i++ {
			s += math.Abs(n.Noise(0))
		}
		return s / 10000
	}
	tight, loose := spread(10), spread(0.1)
	if loose < 10*tight {
		t.Errorf("noise at ε=0.1 (%v) should dwarf ε=10 (%v)", loose, tight)
	}
}

func TestNoisyCountNonNegative(t *testing.T) {
	n := NewNoiser(0.01, 1, 3)
	for i := 0; i < 1000; i++ {
		if n.NoisyCount(1) < 0 {
			t.Fatal("NoisyCount went negative")
		}
	}
}

func TestCoarsenFloat(t *testing.T) {
	if got := CoarsenFloat(0.87, 0.05); math.Abs(got-0.85) > 1e-12 {
		t.Errorf("CoarsenFloat = %v, want 0.85", got)
	}
	if CoarsenFloat(3.7, 0) != 3.7 {
		t.Error("step 0 should be identity")
	}
}

func TestCoarsenDuration(t *testing.T) {
	d := 7*time.Minute + 23*time.Second
	if got := CoarsenDuration(d, 5*time.Minute); got != 5*time.Minute {
		t.Errorf("CoarsenDuration = %v, want 5m", got)
	}
	if CoarsenDuration(d, 0) != d {
		t.Error("granularity 0 should be identity")
	}
}

// Property: suppression keeps exactly the groups with count ≥ k, and never
// invents counts.
func TestQuickSuppression(t *testing.T) {
	f := func(counts map[int8]uint8, k uint8) bool {
		in := make(map[int8]uint64, len(counts))
		for key, c := range counts {
			in[key] = uint64(c)
		}
		out := SuppressSmallGroups(in, uint64(k))
		for key, c := range in {
			_, kept := out[key]
			want := uint64(k) <= 1 || c >= uint64(k)
			if kept != want || (kept && out[key] != c) {
				return false
			}
		}
		return len(out) <= len(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: coarsening never increases a value and moves it by less than
// one step.
func TestQuickCoarsenFloat(t *testing.T) {
	f := func(vRaw int16, stepRaw uint8) bool {
		v := float64(vRaw) / 10
		step := float64(stepRaw%50)/100 + 0.01
		got := CoarsenFloat(v, step)
		return got <= v+1e-9 && v-got < step+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
