// Package privacy implements the "blinding" techniques §4 proposes for
// balancing interface effectiveness against minimality: k-anonymity
// suppression of small groups, Laplace noise on exported counts
// (differential-privacy style, after McSherry & Mahajan), and attribute
// coarsening. The E11 experiment sweeps these knobs and measures how much
// control quality the EONA loops retain at each blinding level.
package privacy

import (
	"math"
	"math/rand"
	"time"
)

// SuppressSmallGroups removes entries whose count is below k — the
// k-anonymity rule that prevents an A2I summary from identifying individual
// subscribers. k ≤ 1 suppresses nothing. The input map is not modified.
func SuppressSmallGroups[K comparable](counts map[K]uint64, k uint64) map[K]uint64 {
	out := make(map[K]uint64, len(counts))
	for key, c := range counts {
		if k <= 1 || c >= k {
			out[key] = c
		}
	}
	return out
}

// Laplace draws Laplace(0, scale) noise using inverse-CDF sampling from the
// provided deterministic source.
func Laplace(rng *rand.Rand, scale float64) float64 {
	if scale <= 0 {
		return 0
	}
	u := rng.Float64() - 0.5
	return -scale * sign(u) * math.Log(1-2*math.Abs(u))
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// Noiser adds ε-differentially-private noise to exported aggregates.
// Smaller Epsilon means more noise and more privacy.
type Noiser struct {
	// Epsilon is the privacy budget; ≤ 0 disables noising.
	Epsilon float64
	// Sensitivity is the max influence of one session on the aggregate
	// (1 for counts; the value range for bounded means).
	Sensitivity float64
	rng         *rand.Rand
}

// NewNoiser builds a noiser with a deterministic seed.
func NewNoiser(epsilon, sensitivity float64, seed int64) *Noiser {
	return &Noiser{Epsilon: epsilon, Sensitivity: sensitivity, rng: rand.New(rand.NewSource(seed))}
}

// Noise returns v plus Laplace(sensitivity/ε) noise. Counts may go
// negative; callers that need non-negative values should clamp, accepting
// the small bias.
func (n *Noiser) Noise(v float64) float64 {
	if n.Epsilon <= 0 {
		return v
	}
	return v + Laplace(n.rng, n.Sensitivity/n.Epsilon)
}

// NoisyCount noises a count and clamps it at zero.
func (n *Noiser) NoisyCount(c uint64) float64 {
	v := n.Noise(float64(c))
	if v < 0 {
		return 0
	}
	return v
}

// CoarsenFloat rounds v down to a multiple of step (step ≤ 0 returns v
// unchanged) — e.g., exporting congestion as 5%-granularity utilization
// instead of exact load.
func CoarsenFloat(v, step float64) float64 {
	if step <= 0 {
		return v
	}
	return math.Floor(v/step) * step
}

// CoarsenDuration truncates d to a multiple of granularity — e.g.,
// timestamps exported at 5-minute granularity.
func CoarsenDuration(d, granularity time.Duration) time.Duration {
	if granularity <= 0 {
		return d
	}
	return d - d%granularity
}
