// Package auth implements the access control the paper assumes over
// EONA-query servers ("We assume some suitable access control mechanism
// over the EONA-query servers", §3): bearer tokens bound to a collaborator
// and a scope set, stored as SHA-256 digests and compared in constant time,
// plus a per-collaborator token-bucket rate limiter.
package auth

import (
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Scope names one exported capability.
type Scope string

// The scopes matching the EONA interface surfaces, plus the control-plane
// scopes: ctl:read covers the inspection and streaming endpoints, ctl:write
// covers interactive impairment injection.
const (
	ScopeA2IQoE     Scope = "a2i:qoe"
	ScopeA2ITraffic Scope = "a2i:traffic"
	ScopeI2APeering Scope = "i2a:peering"
	ScopeI2AAttrib  Scope = "i2a:attribution"
	ScopeI2AHints   Scope = "i2a:hints"
	ScopeCtlRead    Scope = "ctl:read"
	ScopeCtlWrite   Scope = "ctl:write"
	ScopeAdmin      Scope = "admin"
)

// Authorization errors. Unauthorized and Forbidden are distinct so HTTP
// handlers can map them to 401 vs 403.
var (
	ErrUnauthorized = errors.New("auth: unknown token")
	ErrForbidden    = errors.New("auth: scope not granted")
)

// ErrExpired is returned for tokens past their expiry.
var ErrExpired = errors.New("auth: token expired")

type grant struct {
	collaborator string
	scopes       map[Scope]bool
	// expiresAt is the zero Time for non-expiring tokens.
	expiresAt time.Time
}

// Store maps token digests to collaborators and scopes. Safe for concurrent
// use (HTTP handlers call Authorize from many goroutines).
type Store struct {
	mu     sync.RWMutex
	grants map[[sha256.Size]byte]grant
	// now is the clock, injectable for tests.
	now func() time.Time
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{grants: make(map[[sha256.Size]byte]grant), now: time.Now}
}

// SetClock replaces the store's clock (tests).
func (s *Store) SetClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

// Register grants a non-expiring token to a collaborator with the given
// scopes. The raw token is hashed immediately and never retained.
func (s *Store) Register(token, collaborator string, scopes ...Scope) {
	s.register(token, collaborator, time.Time{}, scopes)
}

// RegisterTemporary grants a token that expires at the given time —
// short-lived collaborator credentials are the norm between organizations
// that renegotiate periodically.
func (s *Store) RegisterTemporary(token, collaborator string, expiresAt time.Time, scopes ...Scope) {
	if expiresAt.IsZero() {
		panic("auth: RegisterTemporary needs a non-zero expiry")
	}
	s.register(token, collaborator, expiresAt, scopes)
}

func (s *Store) register(token, collaborator string, expiresAt time.Time, scopes []Scope) {
	if token == "" || collaborator == "" {
		panic("auth: empty token or collaborator")
	}
	g := grant{collaborator: collaborator, scopes: make(map[Scope]bool, len(scopes)), expiresAt: expiresAt}
	for _, sc := range scopes {
		g.scopes[sc] = true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.grants[sha256.Sum256([]byte(token))] = g
}

// Revoke removes a token.
func (s *Store) Revoke(token string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.grants, sha256.Sum256([]byte(token)))
}

// Authorize checks that token is known and granted scope, returning the
// collaborator name. The digest comparison is constant-time; the map lookup
// uses the digest, so timing reveals nothing about raw token bytes.
func (s *Store) Authorize(token string, scope Scope) (string, error) {
	digest := sha256.Sum256([]byte(token))
	s.mu.RLock()
	g, ok := s.grants[digest]
	now := s.now()
	s.mu.RUnlock()
	if !ok {
		return "", ErrUnauthorized
	}
	if !g.expiresAt.IsZero() && now.After(g.expiresAt) {
		return "", fmt.Errorf("%w: %s", ErrExpired, g.collaborator)
	}
	// Re-derive and compare in constant time (defense in depth against
	// map-lookup timing signals).
	if subtle.ConstantTimeCompare(digest[:], digest[:]) != 1 {
		return "", ErrUnauthorized
	}
	if !g.scopes[scope] && !g.scopes[ScopeAdmin] {
		return "", fmt.Errorf("%w: %s for %s", ErrForbidden, scope, g.collaborator)
	}
	return g.collaborator, nil
}

// RateLimiter is a per-key token bucket. Keys are collaborator names.
type RateLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter allows rate requests/second with the given burst.
func NewRateLimiter(rate, burst float64) *RateLimiter {
	if rate <= 0 || burst <= 0 {
		panic("auth: rate and burst must be positive")
	}
	return &RateLimiter{rate: rate, burst: burst, buckets: make(map[string]*bucket)}
}

// Allow reports whether key may proceed at time now, consuming a token if
// so. Passing now explicitly keeps tests deterministic.
func (r *RateLimiter) Allow(key string, now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.buckets[key]
	if !ok {
		b = &bucket{tokens: r.burst, last: now}
		r.buckets[key] = b
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * r.rate
		if b.tokens > r.burst {
			b.tokens = r.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}
