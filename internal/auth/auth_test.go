package auth

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAuthorize(t *testing.T) {
	s := NewStore()
	s.Register("secret-isp1", "isp1", ScopeI2APeering, ScopeI2AAttrib)
	collab, err := s.Authorize("secret-isp1", ScopeI2APeering)
	if err != nil {
		t.Fatal(err)
	}
	if collab != "isp1" {
		t.Errorf("collaborator = %q", collab)
	}
}

func TestAuthorizeUnknownToken(t *testing.T) {
	s := NewStore()
	s.Register("real", "isp1", ScopeI2APeering)
	if _, err := s.Authorize("fake", ScopeI2APeering); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("err = %v, want ErrUnauthorized", err)
	}
}

func TestAuthorizeMissingScope(t *testing.T) {
	s := NewStore()
	s.Register("tok", "isp1", ScopeI2APeering)
	if _, err := s.Authorize("tok", ScopeA2IQoE); !errors.Is(err, ErrForbidden) {
		t.Errorf("err = %v, want ErrForbidden", err)
	}
}

func TestAdminScopeGrantsEverything(t *testing.T) {
	s := NewStore()
	s.Register("root", "operator", ScopeAdmin)
	for _, sc := range []Scope{ScopeA2IQoE, ScopeA2ITraffic, ScopeI2APeering, ScopeI2AAttrib, ScopeI2AHints} {
		if _, err := s.Authorize("root", sc); err != nil {
			t.Errorf("admin denied %s: %v", sc, err)
		}
	}
}

func TestRevoke(t *testing.T) {
	s := NewStore()
	s.Register("tok", "isp1", ScopeI2APeering)
	s.Revoke("tok")
	if _, err := s.Authorize("tok", ScopeI2APeering); !errors.Is(err, ErrUnauthorized) {
		t.Error("revoked token still works")
	}
}

func TestRegisterValidation(t *testing.T) {
	s := NewStore()
	for i, fn := range []func(){
		func() { s.Register("", "x") },
		func() { s.Register("x", "") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore()
	s.Register("tok", "isp1", ScopeI2APeering)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if i%4 == 0 {
					s.Register("tok2", "isp2", ScopeA2IQoE)
				}
				s.Authorize("tok", ScopeI2APeering)
			}
		}(i)
	}
	wg.Wait()
}

func TestTemporaryTokenExpiry(t *testing.T) {
	s := NewStore()
	t0 := time.Unix(1000, 0)
	s.SetClock(func() time.Time { return t0 })
	s.RegisterTemporary("tmp", "partner", t0.Add(time.Hour), ScopeI2APeering)

	if _, err := s.Authorize("tmp", ScopeI2APeering); err != nil {
		t.Fatalf("fresh temporary token denied: %v", err)
	}
	// Advance past expiry.
	s.SetClock(func() time.Time { return t0.Add(2 * time.Hour) })
	if _, err := s.Authorize("tmp", ScopeI2APeering); !errors.Is(err, ErrExpired) {
		t.Errorf("expired token err = %v, want ErrExpired", err)
	}
	// Non-expiring tokens are unaffected by the clock.
	s.Register("forever", "partner", ScopeI2APeering)
	if _, err := s.Authorize("forever", ScopeI2APeering); err != nil {
		t.Errorf("permanent token denied: %v", err)
	}
}

func TestRegisterTemporaryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero expiry did not panic")
		}
	}()
	NewStore().RegisterTemporary("t", "c", time.Time{}, ScopeAdmin)
}

func TestRateLimiterBurstThenRefill(t *testing.T) {
	rl := NewRateLimiter(1, 3) // 1 rps, burst 3
	now := time.Unix(0, 0)
	for i := 0; i < 3; i++ {
		if !rl.Allow("isp1", now) {
			t.Fatalf("burst request %d denied", i)
		}
	}
	if rl.Allow("isp1", now) {
		t.Error("4th immediate request allowed")
	}
	if !rl.Allow("isp1", now.Add(time.Second)) {
		t.Error("request after refill denied")
	}
	if rl.Allow("isp1", now.Add(time.Second)) {
		t.Error("only one token should have refilled")
	}
}

func TestRateLimiterPerKey(t *testing.T) {
	rl := NewRateLimiter(1, 1)
	now := time.Unix(100, 0)
	if !rl.Allow("a", now) || !rl.Allow("b", now) {
		t.Error("separate keys should have separate buckets")
	}
	if rl.Allow("a", now) {
		t.Error("key a should be exhausted")
	}
}

func TestRateLimiterCapsAtBurst(t *testing.T) {
	rl := NewRateLimiter(100, 2)
	now := time.Unix(0, 0)
	rl.Allow("k", now)
	// A long quiet period must not accumulate more than burst tokens.
	later := now.Add(time.Hour)
	allowed := 0
	for i := 0; i < 10; i++ {
		if rl.Allow("k", later) {
			allowed++
		}
	}
	if allowed != 2 {
		t.Errorf("allowed %d after idle, want burst=2", allowed)
	}
}

func TestRateLimiterValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad limiter params did not panic")
		}
	}()
	NewRateLimiter(0, 1)
}
