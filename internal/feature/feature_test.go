package feature

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEntropy(t *testing.T) {
	if got := Entropy(nil); got != 0 {
		t.Errorf("empty entropy = %v", got)
	}
	if got := Entropy([]string{"a", "a", "a"}); got != 0 {
		t.Errorf("pure entropy = %v, want 0", got)
	}
	if got := Entropy([]string{"a", "b"}); math.Abs(got-1) > 1e-12 {
		t.Errorf("fair coin entropy = %v, want 1", got)
	}
	if got := Entropy([]string{"a", "b", "c", "d"}); math.Abs(got-2) > 1e-12 {
		t.Errorf("4-way entropy = %v, want 2", got)
	}
}

func TestInformationGainPerfectPredictor(t *testing.T) {
	attr := []string{"x", "x", "y", "y"}
	labels := []string{"good", "good", "bad", "bad"}
	if got := InformationGain(attr, labels); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect predictor gain = %v, want 1", got)
	}
}

func TestInformationGainIrrelevantAttr(t *testing.T) {
	attr := []string{"x", "y", "x", "y"}
	labels := []string{"good", "good", "bad", "bad"}
	if got := InformationGain(attr, labels); got != 0 {
		t.Errorf("irrelevant attribute gain = %v, want 0", got)
	}
}

func TestInformationGainValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched lengths did not panic")
		}
	}()
	InformationGain([]string{"a"}, []string{"x", "y"})
}

func TestInformationGainEmpty(t *testing.T) {
	if got := InformationGain(nil, nil); got != 0 {
		t.Errorf("empty gain = %v", got)
	}
}

func TestRankOrdersAttributes(t *testing.T) {
	labels := []string{"good", "good", "bad", "bad"}
	attrs := map[string][]string{
		"cdn":    {"x", "x", "y", "y"}, // perfect
		"device": {"p", "q", "p", "q"}, // useless
	}
	ranked := Rank(attrs, labels)
	if len(ranked) != 2 {
		t.Fatalf("ranked = %d entries", len(ranked))
	}
	if ranked[0].Attribute != "cdn" || ranked[1].Attribute != "device" {
		t.Errorf("rank order = %v", ranked)
	}
	if ranked[0].Gain <= ranked[1].Gain {
		t.Error("gains not descending")
	}
}

func TestRankTieBreakByName(t *testing.T) {
	labels := []string{"g", "b"}
	attrs := map[string][]string{
		"zeta":  {"1", "2"},
		"alpha": {"1", "2"},
	}
	ranked := Rank(attrs, labels)
	if ranked[0].Attribute != "alpha" {
		t.Errorf("tie-break order = %v", ranked)
	}
}

func TestDiscretize(t *testing.T) {
	got := Discretize([]float64{0, 5, 10}, 2)
	if got[0] != "b0" || got[2] != "b1" {
		t.Errorf("bins = %v", got)
	}
	if got[1] != "b1" {
		t.Errorf("midpoint bin = %v, want b1 (5/10*2 = 1)", got[1])
	}
	constant := Discretize([]float64{7, 7, 7}, 4)
	for _, b := range constant {
		if b != "b0" {
			t.Errorf("constant input bin = %v, want b0", b)
		}
	}
	if Discretize(nil, 3) != nil {
		t.Error("empty input should return nil")
	}
	wide := Discretize([]float64{0, 99}, 15)
	if wide[1] != "b14" {
		t.Errorf("two-digit bin = %v, want b14", wide[1])
	}
}

func TestDiscretizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("n=0 did not panic")
		}
	}()
	Discretize([]float64{1}, 0)
}

// Property: information gain is non-negative and never exceeds the label
// entropy.
func TestQuickGainBounds(t *testing.T) {
	f := func(pairs []struct{ A, L uint8 }) bool {
		if len(pairs) == 0 {
			return true
		}
		attr := make([]string, len(pairs))
		labels := make([]string, len(pairs))
		for i, p := range pairs {
			attr[i] = binName(int(p.A % 4))
			labels[i] = binName(int(p.L % 3))
		}
		gain := InformationGain(attr, labels)
		return gain >= 0 && gain <= Entropy(labels)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
