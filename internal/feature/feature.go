// Package feature implements the attribute-selection machinery §4 points to
// for "identifying useful knobs and data": Shannon entropy and information
// gain over discretized session attributes, so an AppP/InfP pair can rank
// which attributes (client ISP, CDN, peering point, bitrate, ...) actually
// carry information about experience and belong in a narrow EONA interface.
package feature

import (
	"math"
	"sort"
)

// Entropy returns the Shannon entropy (bits) of a discrete label
// distribution.
func Entropy(labels []string) float64 {
	if len(labels) == 0 {
		return 0
	}
	counts := map[string]int{}
	for _, l := range labels {
		counts[l]++
	}
	n := float64(len(labels))
	h := 0.0
	for _, c := range counts {
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// InformationGain returns H(labels) − H(labels | attr): how many bits of
// uncertainty about the label the attribute removes. attr and labels must be
// parallel slices.
func InformationGain(attr, labels []string) float64 {
	if len(attr) != len(labels) {
		panic("feature: attr and labels must be parallel")
	}
	if len(labels) == 0 {
		return 0
	}
	groups := map[string][]string{}
	for i, a := range attr {
		groups[a] = append(groups[a], labels[i])
	}
	cond := 0.0
	n := float64(len(labels))
	for _, g := range groups {
		cond += float64(len(g)) / n * Entropy(g)
	}
	ig := Entropy(labels) - cond
	if ig < 0 {
		ig = 0 // numerical guard
	}
	return ig
}

// Ranked is one attribute with its information gain.
type Ranked struct {
	Attribute string
	Gain      float64
}

// Rank computes information gain for each named attribute column and
// returns them highest-gain first (ties broken by name for determinism).
func Rank(attrs map[string][]string, labels []string) []Ranked {
	out := make([]Ranked, 0, len(attrs))
	for name, col := range attrs {
		out = append(out, Ranked{Attribute: name, Gain: InformationGain(col, labels)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Gain != out[j].Gain {
			return out[i].Gain > out[j].Gain
		}
		return out[i].Attribute < out[j].Attribute
	})
	return out
}

// Discretize maps continuous values onto n equal-width bins labelled
// "b0".."b<n-1>", which makes them usable as attributes or labels. Constant
// inputs map to "b0".
func Discretize(values []float64, n int) []string {
	if n <= 0 {
		panic("feature: bin count must be positive")
	}
	if len(values) == 0 {
		return nil
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	out := make([]string, len(values))
	for i, v := range values {
		bin := 0
		if hi > lo {
			bin = int(float64(n) * (v - lo) / (hi - lo))
			if bin >= n {
				bin = n - 1
			}
		}
		out[i] = binName(bin)
	}
	return out
}

func binName(i int) string {
	const digits = "0123456789"
	if i < 10 {
		return "b" + string(digits[i])
	}
	return "b" + string(digits[i/10]) + string(digits[i%10])
}
