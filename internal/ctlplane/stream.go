package ctlplane

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"eona/internal/lookingglass"
)

// minStreamInterval bounds how hard one SSE subscriber can hammer the
// sampler.
const minStreamInterval = 50 * time.Millisecond

// StreamSample is one SSE event: the node's live metrics sampled off the
// snapshot pointer. Sampling is pull-only — the publish path never knows a
// subscriber exists, so streaming adds zero allocations to it.
type StreamSample struct {
	Seq         uint64         `json:"seq"`
	Flows       int            `json:"flows"`
	MeanUtil    float64        `json:"mean_util"`
	MaxUtil     float64        `json:"max_util"`
	Links       []LinkStatus   `json:"links"`
	Allocator   uint64         `json:"reallocations"`
	ReadModels  ReadModelStats `json:"read_models"`
	Impairments int            `json:"active_impairments"`
}

func (s *Server) sample() StreamSample {
	snap := s.cfg.Shared.Snapshot()
	links := s.linkStatuses(snap)
	out := StreamSample{
		Seq:        snap.Seq,
		Flows:      snap.NumFlows(),
		Links:      links,
		Allocator:  snap.Stats().Reallocations,
		ReadModels: s.readModelStats(),
	}
	for _, l := range links {
		out.MeanUtil += l.Utilization
		if l.Utilization > out.MaxUtil {
			out.MaxUtil = l.Utilization
		}
	}
	if len(links) > 0 {
		out.MeanUtil /= float64(len(links))
	}
	s.mu.Lock()
	for _, imp := range s.imps {
		if imp.Active {
			out.Impairments++
		}
	}
	s.mu.Unlock()
	return out
}

// handleStream serves Server-Sent Events: one StreamSample immediately, then
// one per interval (?interval=250ms, default 1s, floor 50ms) until the
// client disconnects or ?count=N samples were sent (0 = unbounded; tests
// and curl smoke use a bound).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request, _ string) {
	fl, ok := w.(http.Flusher)
	if !ok {
		lookingglass.WriteError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	interval := time.Second
	if q := r.URL.Query().Get("interval"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil || d <= 0 {
			lookingglass.WriteError(w, http.StatusBadRequest, "bad interval "+strconv.Quote(q))
			return
		}
		if d < minStreamInterval {
			d = minStreamInterval
		}
		interval = d
	}
	count := 0
	if q := r.URL.Query().Get("count"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			lookingglass.WriteError(w, http.StatusBadRequest, "bad count "+strconv.Quote(q))
			return
		}
		count = n
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	ctx := r.Context()
	for sent := 0; ; {
		data, err := json.Marshal(s.sample())
		if err != nil {
			s.logf("ctlplane: stream marshal: %v", err)
			return
		}
		fmt.Fprintf(w, "data: %s\n\n", data)
		fl.Flush()
		sent++
		if count > 0 && sent >= count {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}
