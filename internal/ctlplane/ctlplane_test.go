package ctlplane

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"eona/internal/auth"
	"eona/internal/faults"
	"eona/internal/journal"
	"eona/internal/lookingglass"
	"eona/internal/netsim"
	"eona/internal/projection"
)

// fixture is one control plane over a two-link demo network, mounted behind
// a real auth store: reader (ctl:read), writer (ctl:write), admin.
type fixture struct {
	t      *testing.T
	srv    *Server
	shared *netsim.SharedNetwork
	topo   *netsim.Topology
	util   *projection.LinkUtil
	eng    *projection.Engine
	ts     *httptest.Server
	flow   *netsim.Flow
	closed bool
}

func newFixture(t *testing.T, jw *journal.Writer, live *faults.Live) *fixture {
	t.Helper()
	topo := netsim.NewTopology()
	topo.AddLink("a", "b", 100e6, 5*time.Millisecond, "access")
	topo.AddLink("b", "c", 50e6, 10*time.Millisecond, "peering")
	util := projection.NewLinkUtil()
	eng, err := projection.NewEngine(projection.Config{Writer: jw, CheckpointEvery: 4}, util)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AppendTopology(netsim.ExportTopology(topo)); err != nil {
		t.Fatal(err)
	}
	shared := netsim.NewShared(netsim.NewNetwork(topo), netsim.SharedConfig{Journal: eng, SnapshotEvery: 4})
	links := topo.Links()
	f := shared.StartFlow(netsim.Path{links[0], links[1]}, 30e6, "demo")
	shared.Commit()

	clock := time.Duration(0)
	srv, err := New(Config{
		Shared:   shared,
		Topo:     topo,
		Engine:   eng,
		LinkUtil: util,
		Partner:  live,
		Clock:    func() time.Duration { clock += time.Millisecond; return clock },
	})
	if err != nil {
		t.Fatal(err)
	}

	store := auth.NewStore()
	store.Register("reader-token", "reader", auth.ScopeCtlRead)
	store.Register("writer-token", "writer", auth.ScopeCtlWrite)
	store.Register("admin-token", "ops", auth.ScopeAdmin)
	rt := lookingglass.NewRoutes(store, nil)
	srv.Register(rt)
	ts := httptest.NewServer(rt.Handler())

	fx := &fixture{t: t, srv: srv, shared: shared, topo: topo, util: util, eng: eng, ts: ts, flow: f}
	t.Cleanup(fx.close)
	return fx
}

func (fx *fixture) close() {
	if fx.closed {
		return
	}
	fx.closed = true
	fx.ts.Close()
	fx.shared.Close()
}

func (fx *fixture) do(method, path, token, body string) (int, []byte) {
	fx.t.Helper()
	req, err := http.NewRequest(method, fx.ts.URL+path, strings.NewReader(body))
	if err != nil {
		fx.t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fx.t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		fx.t.Fatal(err)
	}
	return resp.StatusCode, b
}

func envelopeCode(t *testing.T, body []byte) int {
	t.Helper()
	var ee lookingglass.ErrorEnvelope
	if err := json.Unmarshal(body, &ee); err != nil || ee.Err.Message == "" {
		t.Fatalf("body is not the unified error envelope: %s", body)
	}
	return ee.Err.Code
}

// TestEndpointScopes walks every /v1 control-plane route through the scope
// guard: no token → 401, wrong scope → 403, right scope (and admin) → 2xx.
// Every denial must speak the unified error envelope.
func TestEndpointScopes(t *testing.T) {
	fx := newFixture(t, nil, nil)
	throttle := `{"kind":"link-throttle","link":"peering","factor":0.5}`
	cases := []struct {
		method, path, body string
		goodToken          string
		wrongToken         string
		wantGood           int
	}{
		{"GET", "/v1/topology", "", "reader-token", "writer-token", 200},
		{"GET", "/v1/links", "", "reader-token", "writer-token", 200},
		{"GET", "/v1/flows", "", "reader-token", "writer-token", 200},
		{"GET", "/v1/components", "", "reader-token", "writer-token", 200},
		{"GET", "/v1/stats", "", "reader-token", "writer-token", 200},
		{"GET", "/v1/stream?count=1&interval=50ms", "", "reader-token", "writer-token", 200},
		{"GET", "/v1/impairments", "", "reader-token", "writer-token", 200},
		{"POST", "/v1/impairments", throttle, "writer-token", "reader-token", 201},
		{"DELETE", "/v1/impairments?id=1", "", "writer-token", "reader-token", 200},
	}
	for _, tc := range cases {
		name := tc.method + " " + tc.path
		if code, body := fx.do(tc.method, tc.path, "", tc.body); code != 401 || envelopeCode(t, body) != 401 {
			t.Errorf("%s without token: code %d, body %s", name, code, body)
		}
		if code, body := fx.do(tc.method, tc.path, tc.wrongToken, tc.body); code != 403 || envelopeCode(t, body) != 403 {
			t.Errorf("%s wrong scope: code %d, body %s", name, code, body)
		}
		if code, body := fx.do(tc.method, tc.path, tc.goodToken, tc.body); code != tc.wantGood {
			t.Errorf("%s right scope: code %d, want %d (body %s)", name, code, tc.wantGood, body)
		}
	}
	// Admin implies both scopes.
	if code, _ := fx.do("GET", "/v1/stats", "admin-token", ""); code != 200 {
		t.Errorf("admin GET stats: %d", code)
	}
	if code, _ := fx.do("POST", "/v1/impairments", "admin-token", throttle); code != 201 {
		t.Errorf("admin POST impairment: %d", code)
	}
}

// TestImpairmentValidation pins the 4xx surface of the write endpoints.
func TestImpairmentValidation(t *testing.T) {
	fx := newFixture(t, nil, nil)
	cases := []struct {
		name, body string
		want       int
	}{
		{"malformed json", `{"kind":`, 400},
		{"unknown field", `{"kind":"link-flap","link":"peering","nope":1}`, 400},
		{"unknown kind", `{"kind":"gremlins"}`, 400},
		{"unknown link", `{"kind":"link-throttle","link":"backbone","factor":0.5}`, 404},
		{"missing factor", `{"kind":"link-throttle","link":"peering"}`, 400},
		{"factor too big", `{"kind":"link-throttle","link":"peering","factor":1.5}`, 400},
		{"bad duration", `{"kind":"link-flap","link":"peering","duration":"soon"}`, 400},
		{"partner outage without partner", `{"kind":"partner-outage"}`, 409},
		{"latency spike without partner", `{"kind":"latency-spike","extra":"100ms"}`, 409},
	}
	for _, tc := range cases {
		code, body := fx.do("POST", "/v1/impairments", "writer-token", tc.body)
		if code != tc.want {
			t.Errorf("%s: code %d, want %d (body %s)", tc.name, code, tc.want, body)
			continue
		}
		if got := envelopeCode(t, body); got != tc.want {
			t.Errorf("%s: envelope code %d, want %d", tc.name, got, tc.want)
		}
	}
	if code, body := fx.do("DELETE", "/v1/impairments?id=abc", "writer-token", ""); code != 400 {
		t.Errorf("bad restore id: %d %s", code, body)
	}
	if code, body := fx.do("DELETE", "/v1/impairments?id=99", "writer-token", ""); code != 404 {
		t.Errorf("unknown restore id: %d %s", code, body)
	}
}

// TestPartnerImpairments drives latency-spike and partner-outage through a
// live fault set and checks the poller-facing gate state flips.
func TestPartnerImpairments(t *testing.T) {
	live := faults.NewLive(faults.WallClock(time.Now()))
	fx := newFixture(t, nil, live)

	code, body := fx.do("POST", "/v1/impairments", "writer-token", `{"kind":"partner-outage"}`)
	if code != 201 {
		t.Fatalf("outage: %d %s", code, body)
	}
	var imp Impairment
	if err := json.Unmarshal(body, &imp); err != nil {
		t.Fatal(err)
	}
	if live.PartnerUp() {
		t.Error("partner still up during outage impairment")
	}
	if code, _ := fx.do("DELETE", fmt.Sprintf("/v1/impairments?id=%d", imp.ID), "writer-token", ""); code != 200 {
		t.Fatalf("restore outage: %d", code)
	}
	if !live.PartnerUp() {
		t.Error("partner still down after restore")
	}

	code, body = fx.do("POST", "/v1/impairments", "writer-token", `{"kind":"latency-spike","extra":"150ms"}`)
	if code != 201 {
		t.Fatalf("spike: %d %s", code, body)
	}
	if got := live.Delay(); got != 150*time.Millisecond {
		t.Errorf("live delay = %v, want 150ms", got)
	}
}

// TestImpairmentJournalRoundTrip is the acceptance pin: an interactive
// throttle must land in the journal as a capacity op plus a fault event,
// survive recovery, and be visible through MaterializeAt at an offset
// straddling it.
func TestImpairmentJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	jw, err := journal.Open(journal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	fx := newFixture(t, jw, nil)
	peering := fx.topo.Links()[1]

	code, body := fx.do("POST", "/v1/impairments", "writer-token",
		`{"kind":"link-throttle","link":"peering","factor":0.5}`)
	if code != 201 {
		t.Fatalf("inject: %d %s", code, body)
	}
	var imp Impairment
	if err := json.Unmarshal(body, &imp); err != nil {
		t.Fatal(err)
	}
	if imp.BaseBps != 50e6 || imp.AppliedBps != 25e6 {
		t.Fatalf("impairment record = %+v", imp)
	}
	// The live read surface sees the degraded link immediately.
	code, body = fx.do("GET", "/v1/links", "reader-token", "")
	if code != 200 || !strings.Contains(string(body), `"capacity_bps":25000000`) {
		t.Fatalf("links after throttle: %d %s", code, body)
	}
	// Restore interactively, then shut down cleanly.
	if code, _ := fx.do("DELETE", fmt.Sprintf("/v1/impairments?id=%d", imp.ID), "writer-token", ""); code != 200 {
		t.Fatal("restore failed")
	}
	fx.close()
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Faults) != 2 {
		t.Fatalf("recovered %d fault events, want 2 (inject + restore): %+v", len(rec.Faults), rec.Faults)
	}
	if ch := rec.Faults[0].Changes; len(ch) != 1 || ch[0].Link != peering.ID || ch[0].Bps != 25e6 {
		t.Errorf("inject fault event = %+v", rec.Faults[0])
	}
	if ch := rec.Faults[1].Changes; len(ch) != 1 || ch[0].Bps != 50e6 {
		t.Errorf("restore fault event = %+v", rec.Faults[1])
	}

	// Op stream: start, throttle, restore — find the capacity ops.
	var capOps []int
	for i, op := range rec.Ops {
		if op.Op.Kind == netsim.OpSetLinkCapacity {
			capOps = append(capOps, i)
		}
	}
	if len(capOps) != 2 {
		t.Fatalf("recovered %d capacity ops, want 2: %+v", len(capOps), rec.Ops)
	}

	// Time travel: just past the throttle the link is degraded; at the end
	// it is restored.
	mid, _, err := rec.MaterializeAt(capOps[0] + 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := mid.Snapshot().Capacity(peering.ID); got != 25e6 {
		t.Errorf("capacity at straddling offset = %v, want 25e6", got)
	}
	end, _, err := rec.MaterializeAt(len(rec.Ops))
	if err != nil {
		t.Fatal(err)
	}
	if got := end.Snapshot().Capacity(peering.ID); got != 50e6 {
		t.Errorf("capacity at end = %v, want 50e6", got)
	}
}

// TestStreamObservesCapacityChange subscribes to the SSE stream and asserts
// a mid-stream SetLinkCapacity shows up in a later sample.
func TestStreamObservesCapacityChange(t *testing.T) {
	fx := newFixture(t, nil, nil)
	peering := fx.topo.Links()[1]

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", fx.ts.URL+"/v1/stream?interval=50ms&count=100", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer reader-token")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != "text/event-stream" {
		t.Fatalf("stream: %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}

	sc := bufio.NewScanner(resp.Body)
	samples := 0
	changed := false
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var sample StreamSample
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &sample); err != nil {
			t.Fatalf("bad sample %q: %v", line, err)
		}
		samples++
		if samples == 1 {
			// First sample observed — mutate mid-stream.
			fx.shared.SetLinkCapacity(peering.ID, 10e6)
			fx.shared.Commit()
			continue
		}
		for _, l := range sample.Links {
			if l.ID == int(peering.ID) && l.CapacityBps == 10e6 {
				changed = true
			}
		}
		if changed {
			break
		}
	}
	if err := sc.Err(); err != nil && !changed {
		t.Fatal(err)
	}
	if !changed {
		t.Fatalf("capacity change never observed in %d samples", samples)
	}
}

// TestStreamAddsNoPublishAllocs is the acceptance pin for "SSE adds 0
// allocations to the snapshot publish path": the same mutation loop must
// allocate no more with an idle SSE subscriber attached than without one.
// (The publish path itself is not absolutely allocation-free under churn —
// chunk refills allocate — which is why this is a differential pin.)
func TestStreamAddsNoPublishAllocs(t *testing.T) {
	fx := newFixture(t, nil, nil)
	demand := 10e6
	mutate := func() {
		demand = 22e6 - demand // alternate 10e6 / 12e6 so every op mutates
		fx.shared.SetDemand(fx.flow, demand)
		fx.shared.Commit()
	}
	base := testing.AllocsPerRun(300, mutate)

	// Attach a subscriber that reads one sample then idles for an hour —
	// it holds the connection but touches nothing during the measurement.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", fx.ts.URL+"/v1/stream?interval=1h", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer reader-token")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}

	with := testing.AllocsPerRun(300, mutate)
	if with > base+0.5 {
		t.Errorf("publish path allocs rose with an SSE subscriber: %.2f → %.2f per mutation", base, with)
	}
}

// TestReadEndpointPayloads spot-checks the inspection payload shapes.
func TestReadEndpointPayloads(t *testing.T) {
	fx := newFixture(t, nil, nil)

	code, body := fx.do("GET", "/v1/topology", "reader-token", "")
	if code != 200 {
		t.Fatalf("topology: %d", code)
	}
	var topo struct {
		Nodes []string     `json:"nodes"`
		Links []LinkStatus `json:"links"`
	}
	if err := json.Unmarshal(body, &topo); err != nil {
		t.Fatal(err)
	}
	if len(topo.Nodes) != 3 || len(topo.Links) != 2 {
		t.Errorf("topology = %d nodes, %d links", len(topo.Nodes), len(topo.Links))
	}
	if topo.Links[1].Name != "peering" || topo.Links[1].CapacityBps != 50e6 {
		t.Errorf("peering link = %+v", topo.Links[1])
	}

	code, body = fx.do("GET", "/v1/flows", "reader-token", "")
	var flows struct {
		Count int `json:"count"`
		Flows []struct {
			ID   int64   `json:"ID"`
			Rate float64 `json:"Rate"`
			Tag  string  `json:"Tag"`
		} `json:"flows"`
	}
	if err := json.Unmarshal(body, &flows); err != nil || code != 200 {
		t.Fatalf("flows: %d %v", code, err)
	}
	if flows.Count != 1 || len(flows.Flows) != 1 || flows.Flows[0].Tag != "demo" || flows.Flows[0].Rate != 30e6 {
		t.Errorf("flows = %s", body)
	}

	code, body = fx.do("GET", "/v1/components", "reader-token", "")
	var comps struct {
		Count int `json:"count"`
	}
	if err := json.Unmarshal(body, &comps); err != nil || code != 200 || comps.Count != 1 {
		t.Errorf("components: %d %s", code, body)
	}

	code, body = fx.do("GET", "/v1/stats", "reader-token", "")
	var stats struct {
		Flows      int            `json:"flows"`
		Links      int            `json:"links"`
		ReadModels ReadModelStats `json:"read_models"`
	}
	if err := json.Unmarshal(body, &stats); err != nil || code != 200 {
		t.Fatalf("stats: %d %v", code, err)
	}
	if stats.Flows != 1 || stats.Links != 2 {
		t.Errorf("stats = %s", body)
	}
	if stats.ReadModels.OpsFolded == 0 || stats.ReadModels.FlowStarts != 1 {
		t.Errorf("read models = %+v", stats.ReadModels)
	}
}
