// Package ctlplane is the live control plane over a running EONA node: a
// REST API (mounted on the looking glass's route registry) that inspects the
// network from lock-free snapshots, injects impairments interactively, and
// streams metrics — the operations surface §4 argues the I2A/A2I exchange
// needs for operators to trust it.
//
// Design invariant: interactive ops are journaled ops. Every impairment the
// API applies goes through the same durable path as scripted chaos — link
// throttles/flaps become SetLinkCapacity ops plus a faults.Event annotation
// appended through the projection engine's sink, partner outages and latency
// spikes open faults.Live windows and journal an annotation event. A node
// that crashes mid-demo replays the impairment exactly; eona-trace lists it;
// MaterializeAt rebuilds the degraded network at any offset. Nothing the
// dashboard does is off the record.
//
// Read endpoints serve from netsim.Snapshot pointers and never touch the
// write path; the SSE stream samples the same pointers on a ticker, adding
// zero allocations to the snapshot publish path (pinned by test).
package ctlplane

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"eona/internal/auth"
	"eona/internal/faults"
	"eona/internal/lookingglass"
	"eona/internal/netsim"
	"eona/internal/projection"
)

// Config wires a control plane to a running node. Shared and Topo are
// required; the rest degrade gracefully when nil (no journal annotation, no
// partner impairments, reduced stats).
type Config struct {
	// Shared is the running network; reads come from its snapshots, link
	// impairments go through its owner goroutine.
	Shared *netsim.SharedNetwork
	// Topo names the links (impairments address links by name).
	Topo *netsim.Topology
	// Engine, when set, journals every impairment as a faults.Event through
	// the durable sink (and surfaces read-model counters).
	Engine *projection.Engine
	// LinkUtil and QoE, when set, enrich /v1/stats and the SSE stream.
	LinkUtil *projection.LinkUtil
	QoE      *projection.QoE
	// Partner, when set, enables partner-outage and latency-spike
	// impairments gating the node's poller.
	Partner *faults.Live
	// Clock positions impairment events on the fault timeline; defaults to
	// faults.WallClock(time.Now()). Share it with Partner's clock.
	Clock func() time.Duration
	// Logf, when set, logs impairment activity.
	Logf func(format string, args ...any)
}

// Server is the control-plane API. Create with New, mount with Register.
type Server struct {
	cfg   Config
	clock func() time.Duration

	mu     sync.Mutex
	nextID int
	imps   map[int]*impairment
}

// New validates the wiring and builds a control plane.
func New(cfg Config) (*Server, error) {
	if cfg.Shared == nil {
		return nil, errors.New("ctlplane: nil shared network")
	}
	if cfg.Topo == nil {
		return nil, errors.New("ctlplane: nil topology")
	}
	clock := cfg.Clock
	if clock == nil {
		clock = faults.WallClock(time.Now())
	}
	return &Server{cfg: cfg, clock: clock, nextID: 1, imps: make(map[int]*impairment)}, nil
}

// Register mounts the control-plane routes on a registry. Inspection and
// streaming require scope ctl:read, impairment injection ctl:write (admin
// implies both).
func (s *Server) Register(rt *lookingglass.Routes) {
	rt.Handle("GET", "/v1/topology", auth.ScopeCtlRead, s.handleTopology)
	rt.Handle("GET", "/v1/links", auth.ScopeCtlRead, s.handleLinks)
	rt.Handle("GET", "/v1/flows", auth.ScopeCtlRead, s.handleFlows)
	rt.Handle("GET", "/v1/components", auth.ScopeCtlRead, s.handleComponents)
	rt.Handle("GET", "/v1/stats", auth.ScopeCtlRead, s.handleStats)
	rt.Handle("GET", "/v1/stream", auth.ScopeCtlRead, s.handleStream)
	rt.Handle("GET", "/v1/impairments", auth.ScopeCtlRead, s.handleList)
	rt.Handle("POST", "/v1/impairments", auth.ScopeCtlWrite, s.handleInject)
	rt.Handle("DELETE", "/v1/impairments", auth.ScopeCtlWrite, s.handleRestore)
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// --- Read surface -----------------------------------------------------------

// LinkStatus is one link's live state as served by /v1/links (and embedded
// in /v1/topology and the SSE stream).
type LinkStatus struct {
	ID          int     `json:"id"`
	Name        string  `json:"name"`
	From        string  `json:"from"`
	To          string  `json:"to"`
	CapacityBps float64 `json:"capacity_bps"`
	RateBps     float64 `json:"rate_bps"`
	Utilization float64 `json:"utilization"`
	HeadroomBps float64 `json:"headroom_bps"`
	Congestion  string  `json:"congestion"`
	Flows       int     `json:"flows"`
	ActiveFlows int     `json:"active_flows"`
	QueueDelay  string  `json:"queue_delay"`
}

func (s *Server) linkStatuses(snap *netsim.Snapshot) []LinkStatus {
	links := s.cfg.Topo.Links()
	out := make([]LinkStatus, 0, len(links))
	for _, l := range links {
		out = append(out, LinkStatus{
			ID:          int(l.ID),
			Name:        l.Name,
			From:        string(l.From),
			To:          string(l.To),
			CapacityBps: snap.Capacity(l.ID),
			RateBps:     snap.LinkRate(l.ID),
			Utilization: snap.Utilization(l.ID),
			HeadroomBps: snap.Headroom(l.ID),
			Congestion:  snap.Congestion(l.ID).String(),
			Flows:       snap.FlowsOn(l.ID),
			ActiveFlows: snap.ActiveFlowsOn(l.ID),
			QueueDelay:  snap.QueueDelay(l.ID).String(),
		})
	}
	return out
}

func (s *Server) handleTopology(w http.ResponseWriter, r *http.Request, _ string) {
	snap := s.cfg.Shared.Snapshot()
	writeJSON(w, struct {
		Nodes []netsim.NodeID `json:"nodes"`
		Links []LinkStatus    `json:"links"`
	}{Nodes: s.cfg.Topo.Nodes(), Links: s.linkStatuses(snap)})
}

func (s *Server) handleLinks(w http.ResponseWriter, r *http.Request, _ string) {
	writeJSON(w, struct {
		Seq   uint64       `json:"seq"`
		Links []LinkStatus `json:"links"`
	}{Seq: s.cfg.Shared.Snapshot().Seq, Links: s.linkStatuses(s.cfg.Shared.Snapshot())})
}

func (s *Server) handleFlows(w http.ResponseWriter, r *http.Request, _ string) {
	snap := s.cfg.Shared.Snapshot()
	views := make([]netsim.FlowView, 0, snap.NumFlows())
	snap.Flows(func(v netsim.FlowView) { views = append(views, v) })
	sort.Slice(views, func(i, j int) bool { return views[i].ID < views[j].ID })
	writeJSON(w, struct {
		Seq   uint64            `json:"seq"`
		Count int               `json:"count"`
		Flows []netsim.FlowView `json:"flows"`
	}{Seq: snap.Seq, Count: snap.NumFlows(), Flows: views})
}

func (s *Server) handleComponents(w http.ResponseWriter, r *http.Request, _ string) {
	snap := s.cfg.Shared.Snapshot()
	comps := snap.Components()
	writeJSON(w, struct {
		Seq        uint64                 `json:"seq"`
		Count      int                    `json:"count"`
		Components []netsim.ComponentView `json:"components"`
	}{Seq: snap.Seq, Count: len(comps), Components: comps})
}

// ReadModelStats summarizes the journal-backed read models for /v1/stats.
type ReadModelStats struct {
	OpsFolded     uint64 `json:"ops_folded"`
	FlowStarts    uint64 `json:"flow_starts"`
	FlowStops     uint64 `json:"flow_stops"`
	CapacityEdits uint64 `json:"capacity_edits"`
	UtilSamples   int    `json:"util_samples"`
	Poisoned      bool   `json:"poisoned"`
	QoEIngested   uint64 `json:"qoe_ingested"`
	QoEGroups     int    `json:"qoe_groups"`
}

func (s *Server) readModelStats() ReadModelStats {
	var rm ReadModelStats
	if u := s.cfg.LinkUtil; u != nil {
		rm.OpsFolded = u.Ops()
		rm.FlowStarts = u.Starts()
		rm.FlowStops = u.Stops()
		rm.CapacityEdits = u.CapacityEdits()
		rm.UtilSamples = len(u.Series())
		rm.Poisoned = u.Poisoned()
	}
	if q := s.cfg.QoE; q != nil {
		rm.QoEIngested = q.Ingested()
		rm.QoEGroups = len(q.Summaries())
	}
	return rm
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request, _ string) {
	snap := s.cfg.Shared.Snapshot()
	s.mu.Lock()
	active := 0
	for _, imp := range s.imps {
		if imp.Active {
			active++
		}
	}
	s.mu.Unlock()
	writeJSON(w, struct {
		Seq               uint64         `json:"seq"`
		Flows             int            `json:"flows"`
		Links             int            `json:"links"`
		Allocator         netsim.Stats   `json:"allocator"`
		ReadModels        ReadModelStats `json:"read_models"`
		ActiveImpairments int            `json:"active_impairments"`
	}{
		Seq:               snap.Seq,
		Flows:             snap.NumFlows(),
		Links:             snap.NumLinks(),
		Allocator:         snap.Stats(),
		ReadModels:        s.readModelStats(),
		ActiveImpairments: active,
	})
}

// --- Impairments ------------------------------------------------------------

// Impairment kinds accepted by POST /v1/impairments.
const (
	KindLinkThrottle = "link-throttle"
	KindLinkFlap     = "link-flap"
	KindLatencySpike = "latency-spike"
	KindPartnerOut   = "partner-outage"
)

// ImpairRequest is the POST /v1/impairments body.
type ImpairRequest struct {
	// Kind selects the impairment: link-throttle, link-flap, latency-spike
	// or partner-outage.
	Kind string `json:"kind"`
	// Link names the target link (by topology name) for link kinds.
	Link string `json:"link,omitempty"`
	// Factor scales the link's capacity for link-throttle, in [0,1).
	Factor *float64 `json:"factor,omitempty"`
	// Duration bounds the impairment (Go duration string, e.g. "30s");
	// empty or "0s" means until explicitly restored via DELETE.
	Duration string `json:"duration,omitempty"`
	// Extra is the added exchange latency for latency-spike (duration
	// string).
	Extra string `json:"extra,omitempty"`
}

// Impairment is one injected impairment's public record.
type Impairment struct {
	ID         int     `json:"id"`
	Kind       string  `json:"kind"`
	Link       string  `json:"link,omitempty"`
	Factor     float64 `json:"factor,omitempty"`
	BaseBps    float64 `json:"base_bps,omitempty"`
	AppliedBps float64 `json:"applied_bps,omitempty"`
	Extra      string  `json:"extra,omitempty"`
	Duration   string  `json:"duration,omitempty"`
	InjectedAt string  `json:"injected_at"`
	Active     bool    `json:"active"`
}

type impairment struct {
	Impairment
	linkID netsim.LinkID
	liveID int
	timer  *time.Timer
}

// journalFault appends one fault annotation to the durable sink. Partner
// impairments carry no capacity changes — the event marks the instant on the
// fault timeline; link impairments carry the applied capacities (their
// SetLinkCapacity ops are journaled by the shared network itself).
func (s *Server) journalFault(changes []faults.CapacityChange) {
	if s.cfg.Engine == nil {
		return
	}
	if err := s.cfg.Engine.AppendFault(faults.Event{At: s.clock(), Changes: changes}); err != nil {
		s.logf("ctlplane: journal fault: %v", err)
	}
}

// applyCapacity routes one interactive capacity change through the owner
// goroutine, fences until it committed (so the next snapshot read observes
// it), then journals the fault annotation.
func (s *Server) applyCapacity(id netsim.LinkID, bps float64) {
	s.cfg.Shared.SetLinkCapacity(id, bps)
	s.cfg.Shared.Commit()
	s.journalFault([]faults.CapacityChange{{Link: id, Bps: bps}})
}

func (s *Server) linkByName(name string) (*netsim.Link, bool) {
	for _, l := range s.cfg.Topo.Links() {
		if l.Name == name {
			return l, true
		}
	}
	return nil, false
}

func parseOptionalDuration(q string) (time.Duration, error) {
	if q == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(q)
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration %q", q)
	}
	return d, nil
}

func (s *Server) handleInject(w http.ResponseWriter, r *http.Request, collab string) {
	var req ImpairRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		lookingglass.WriteError(w, http.StatusBadRequest, "bad impairment body: "+err.Error())
		return
	}
	dur, err := parseOptionalDuration(req.Duration)
	if err != nil {
		lookingglass.WriteError(w, http.StatusBadRequest, "bad duration: "+err.Error())
		return
	}

	imp := &impairment{Impairment: Impairment{
		Kind:       req.Kind,
		Duration:   req.Duration,
		InjectedAt: s.clock().String(),
		Active:     true,
	}}

	switch req.Kind {
	case KindLinkThrottle, KindLinkFlap:
		l, ok := s.linkByName(req.Link)
		if !ok {
			lookingglass.WriteError(w, http.StatusNotFound, "unknown link "+strconv.Quote(req.Link))
			return
		}
		factor := 0.0 // a flap cuts the link to the 1 bps floor
		if req.Kind == KindLinkThrottle {
			if req.Factor == nil {
				lookingglass.WriteError(w, http.StatusBadRequest, "link-throttle requires factor in [0,1)")
				return
			}
			factor = *req.Factor
			if factor < 0 || factor >= 1 {
				lookingglass.WriteError(w, http.StatusBadRequest, fmt.Sprintf("factor %v outside [0,1)", factor))
				return
			}
		}
		base := s.cfg.Shared.Snapshot().Capacity(l.ID)
		applied := base * factor
		if applied < 1 {
			applied = 1 // the faults-package floor: links degrade, never vanish
		}
		imp.Link, imp.Factor, imp.BaseBps, imp.AppliedBps, imp.linkID = l.Name, factor, base, applied, l.ID
		s.applyCapacity(l.ID, applied)

	case KindLatencySpike:
		if s.cfg.Partner == nil {
			lookingglass.WriteError(w, http.StatusConflict, "no partner exchange to impair (run with -peer)")
			return
		}
		extra, err := time.ParseDuration(req.Extra)
		if err != nil || extra <= 0 {
			lookingglass.WriteError(w, http.StatusBadRequest, "latency-spike requires positive extra duration")
			return
		}
		imp.Extra = extra.String()
		imp.liveID, _ = s.cfg.Partner.AddLatencySpike(extra, dur)
		s.journalFault(nil)

	case KindPartnerOut:
		if s.cfg.Partner == nil {
			lookingglass.WriteError(w, http.StatusConflict, "no partner exchange to impair (run with -peer)")
			return
		}
		imp.liveID, _ = s.cfg.Partner.AddOutage(dur)
		s.journalFault(nil)

	default:
		lookingglass.WriteError(w, http.StatusBadRequest, "unknown impairment kind "+strconv.Quote(req.Kind))
		return
	}

	s.mu.Lock()
	imp.ID = s.nextID
	s.nextID++
	s.imps[imp.ID] = imp
	if dur > 0 {
		id := imp.ID
		imp.timer = time.AfterFunc(dur, func() { s.restoreByID(id) })
	}
	s.mu.Unlock()

	s.logf("ctlplane: %s injected impairment %d (%s %s)", collab, imp.ID, imp.Kind, imp.Link)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(imp.Impairment)
}

// restoreByID undoes one impairment: link kinds re-apply the recorded base
// capacity (journaled like the injection), partner kinds close their live
// window. Idempotent; timers and DELETE race safely.
func (s *Server) restoreByID(id int) (Impairment, bool) {
	s.mu.Lock()
	imp, ok := s.imps[id]
	if !ok || !imp.Active {
		var rec Impairment
		if ok {
			rec = imp.Impairment
		}
		s.mu.Unlock()
		return rec, ok
	}
	imp.Active = false
	if imp.timer != nil {
		imp.timer.Stop()
	}
	rec := imp.Impairment
	s.mu.Unlock()

	switch rec.Kind {
	case KindLinkThrottle, KindLinkFlap:
		s.applyCapacity(imp.linkID, rec.BaseBps)
	case KindLatencySpike, KindPartnerOut:
		if s.cfg.Partner != nil {
			s.cfg.Partner.Cancel(imp.liveID)
		}
		s.journalFault(nil)
	}
	s.logf("ctlplane: restored impairment %d (%s %s)", id, rec.Kind, rec.Link)
	return rec, true
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request, _ string) {
	q := r.URL.Query().Get("id")
	id, err := strconv.Atoi(q)
	if err != nil {
		lookingglass.WriteError(w, http.StatusBadRequest, "bad impairment id "+strconv.Quote(q))
		return
	}
	rec, ok := s.restoreByID(id)
	if !ok {
		lookingglass.WriteError(w, http.StatusNotFound, fmt.Sprintf("no impairment %d", id))
		return
	}
	rec.Active = false
	writeJSON(w, rec)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request, _ string) {
	s.mu.Lock()
	out := make([]Impairment, 0, len(s.imps))
	for _, imp := range s.imps {
		out = append(out, imp.Impairment)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, struct {
		Impairments []Impairment `json:"impairments"`
	}{Impairments: out})
}
