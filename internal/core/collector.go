package core

import (
	"sort"
	"time"

	"eona/internal/agg"
	"eona/internal/privacy"
)

// ExportPolicy controls how much an A2I export reveals — the §4 knob for
// "balancing effectiveness vs. minimality". The zero value exports
// everything exactly.
type ExportPolicy struct {
	// MinGroupSessions suppresses summary groups with fewer sessions
	// (k-anonymity). 0 or 1 disables suppression.
	MinGroupSessions uint64
	// NoiseEpsilon, when positive, adds Laplace noise with this ε to
	// exported counts and means.
	NoiseEpsilon float64
	// CoarsenScoreStep, when positive, rounds exported mean scores down
	// to multiples of this step.
	CoarsenScoreStep float64
}

// Collector is the AppP-side A2I producer: it ingests per-session
// QoERecords and serves blinded, windowed summaries and traffic estimates.
// Ingest is O(1) per record (see BenchmarkE7Scalability).
type Collector struct {
	AppP   string
	Policy ExportPolicy

	rollup *agg.Rollup[SummaryKey]
	// traffic accumulates bit-volume and session counts per CDN over a
	// sliding window to produce TrafficEstimates.
	trafficBits     map[string]*agg.Windowed
	trafficSessions map[string]*agg.Windowed
	window          time.Duration
	noiser          *privacy.Noiser
	volNoiser       *privacy.Noiser
	ingested        uint64
}

// volumeSensitivity is the assumed max contribution of one session to a
// traffic-volume estimate (a high-rung stream), used to scale Laplace noise
// on exported volumes.
const volumeSensitivity = 3e6

// NewCollector builds a collector for one AppP. window sizes the traffic
// estimate window (default 5 minutes if zero); seed feeds the privacy
// noiser.
//
// Deprecated: use NewA2ICollector(CollectorConfig{...}), which names the
// parameters and covers both single-goroutine and sharded collectors.
func NewCollector(appP string, policy ExportPolicy, window time.Duration, seed int64) *Collector {
	if window <= 0 {
		window = 5 * time.Minute
	}
	return &Collector{
		AppP:            appP,
		Policy:          policy,
		rollup:          agg.NewRollup[SummaryKey](),
		trafficBits:     make(map[string]*agg.Windowed),
		trafficSessions: make(map[string]*agg.Windowed),
		window:          window,
		noiser:          privacy.NewNoiser(policy.NoiseEpsilon, 1, seed),
		volNoiser:       privacy.NewNoiser(policy.NoiseEpsilon, volumeSensitivity, seed+1),
	}
}

// Ingest records one finished session.
func (c *Collector) Ingest(rec QoERecord) {
	c.ingested++
	key := SummaryKey{ClientISP: rec.ClientISP, CDN: rec.CDN, Cluster: rec.Cluster}
	c.rollup.Observe(key, "score", rec.Score)
	c.rollup.Observe(key, "bufratio", rec.BufferingRatio)
	c.rollup.Observe(key, "bitrate", rec.AvgBitrateBps)
	c.rollup.Observe(key, "startup", rec.StartupDelay.Seconds())
	abandoned := 0.0
	if rec.Abandoned {
		abandoned = 1
	}
	c.rollup.Observe(key, "abandoned", abandoned)

	wb, ok := c.trafficBits[rec.CDN]
	if !ok {
		wb = agg.NewWindowed(10, c.window/10)
		c.trafficBits[rec.CDN] = wb
		c.trafficSessions[rec.CDN] = agg.NewWindowed(10, c.window/10)
	}
	wb.Add(rec.Timestamp, rec.AvgBitrateBps*rec.PlayTime.Seconds())
	c.trafficSessions[rec.CDN].Add(rec.Timestamp, 1)
}

// Ingested returns the total number of records ingested.
func (c *Collector) Ingested() uint64 { return c.ingested }

// Summaries returns the per-group A2I summaries blinded under the
// collector's own policy.
func (c *Collector) Summaries() []QoESummary {
	return c.summariesUnder(c.Policy, c.noiser)
}

// SummariesUnder returns the summaries blinded under a different policy —
// the §4 requirement that providers "must be able to specify what can or
// cannot be shared" per collaborator. seed keeps each partner's noise
// stream independent and reproducible.
func (c *Collector) SummariesUnder(policy ExportPolicy, seed int64) []QoESummary {
	return c.summariesUnder(policy, privacy.NewNoiser(policy.NoiseEpsilon, 1, seed))
}

func (c *Collector) summariesUnder(policy ExportPolicy, noiser *privacy.Noiser) []QoESummary {
	return summarizeRollup(c.rollup, c.rollup.Keys(), policy, noiser)
}

// summarizeRollup renders the groups named by keys, in that order, under a
// policy. Suppressed groups are skipped; noise is drawn only for surviving
// groups, in key order, so the noiser stream position is a deterministic
// function of the exported set. Shared by Collector and ShardedCollector.
func summarizeRollup(r *agg.Rollup[SummaryKey], keys []SummaryKey, policy ExportPolicy, noiser *privacy.Noiser) []QoESummary {
	var out []QoESummary
	for _, k := range keys {
		if s, ok := summarizeGroup(r.Group(k), k, policy, noiser); ok {
			out = append(out, s)
		}
	}
	return out
}

// summarizeGroup renders one group under a policy, reporting false when the
// group is absent or suppressed by k-anonymity.
func summarizeGroup(g *agg.Group, k SummaryKey, policy ExportPolicy, noiser *privacy.Noiser) (QoESummary, bool) {
	if g == nil {
		return QoESummary{}, false
	}
	sessions := g.Metric("score").Count()
	if policy.MinGroupSessions > 1 && sessions < policy.MinGroupSessions {
		return QoESummary{}, false
	}
	s := QoESummary{
		Key:                k,
		Sessions:           float64(sessions),
		MeanScore:          g.Metric("score").Mean(),
		MeanBufferingRatio: g.Metric("bufratio").Mean(),
		MeanBitrateBps:     g.Metric("bitrate").Mean(),
		MeanStartupSec:     g.Metric("startup").Mean(),
		AbandonmentRate:    g.Metric("abandoned").Mean(),
	}
	if policy.NoiseEpsilon > 0 {
		s.Sessions = noiser.NoisyCount(sessions)
		s.MeanScore = clampScore(noiser.Noise(s.MeanScore))
		s.MeanBufferingRatio = clamp01(noiser.Noise(s.MeanBufferingRatio))
	}
	s.MeanScore = privacy.CoarsenFloat(s.MeanScore, policy.CoarsenScoreStep)
	return s, true
}

// SummaryFor returns the summary for one group, if it survives blinding.
// It renders only the requested group — O(1) in the number of groups,
// where it used to materialize every summary per lookup.
func (c *Collector) SummaryFor(key SummaryKey) (QoESummary, bool) {
	return summarizeGroup(c.rollup.Group(key), key, c.Policy, c.noiser)
}

// TrafficEstimates returns per-CDN demand estimates over the window ending
// at now: mean bits/s plus sessions completed in the window.
func (c *Collector) TrafficEstimates(now time.Duration) []TrafficEstimate {
	return trafficEstimates(c.AppP, c.trafficBits, c.trafficSessions,
		c.window, now, c.Policy, c.noiser, c.volNoiser)
}

// trafficEstimates renders per-CDN windowed volume/session estimates under
// a policy. Shared by Collector and ShardedCollector.
func trafficEstimates(appP string, trafficBits, trafficSessions map[string]*agg.Windowed,
	window, now time.Duration, policy ExportPolicy, noiser, volNoiser *privacy.Noiser) []TrafficEstimate {
	var out []TrafficEstimate
	// Deterministic order: iterate CDNs sorted.
	cdns := make([]string, 0, len(trafficBits))
	for cdnName := range trafficBits {
		cdns = append(cdns, cdnName)
	}
	sort.Strings(cdns)
	for _, cdnName := range cdns {
		bits := trafficBits[cdnName].Sum(now)
		sessions := trafficSessions[cdnName].Sum(now)
		est := TrafficEstimate{
			AppP:      appP,
			CDN:       cdnName,
			VolumeBps: bits / window.Seconds(),
			Sessions:  sessions,
		}
		if policy.NoiseEpsilon > 0 {
			est.Sessions = noiser.NoisyCount(uint64(est.Sessions))
			if v := volNoiser.Noise(est.VolumeBps); v > 0 {
				est.VolumeBps = v
			} else {
				est.VolumeBps = 0
			}
		}
		out = append(out, est)
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func clampScore(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 100 {
		return 100
	}
	return v
}
