package core

import (
	"sync"
	"testing"
	"time"
)

func TestRegistryGating(t *testing.T) {
	r := NewRegistry()
	r.Register(Partner{
		Name:     "isp-a",
		Policy:   ExportPolicy{MinGroupSessions: 10},
		Surfaces: map[Surface]bool{SurfaceQoESummaries: true},
	})
	if !r.Allowed("isp-a", SurfaceQoESummaries) {
		t.Error("granted surface denied")
	}
	if r.Allowed("isp-a", SurfaceTraffic) {
		t.Error("ungranted surface allowed")
	}
	if r.Allowed("stranger", SurfaceQoESummaries) {
		t.Error("unknown partner allowed")
	}
	p, ok := r.Partner("isp-a")
	if !ok || p.Policy.MinGroupSessions != 10 {
		t.Errorf("Partner = %+v, %v", p, ok)
	}
	if _, ok := r.Partner("stranger"); ok {
		t.Error("unknown partner found")
	}
}

func TestRegistryOptOut(t *testing.T) {
	r := NewRegistry()
	r.Register(Partner{Name: "isp-a", Surfaces: map[Surface]bool{SurfacePeering: true}})
	r.Remove("isp-a")
	if r.Allowed("isp-a", SurfacePeering) {
		t.Error("removed partner still allowed")
	}
	if len(r.Names()) != 0 {
		t.Error("Names nonempty after removal")
	}
}

func TestRegistryPolicyForUnknownIsRestrictive(t *testing.T) {
	r := NewRegistry()
	pol, _ := r.PolicyFor("stranger")
	// The restrictive default must suppress every group.
	col := NewCollector("vod", ExportPolicy{}, time.Minute, 1)
	for i := 0; i < 100; i++ {
		col.Ingest(rec("isp1", "cdnX", "east", 80, 0, 0))
	}
	if got := col.SummariesUnder(pol, 1); len(got) != 0 {
		t.Errorf("restrictive default leaked %d groups", len(got))
	}
}

func TestRegistryCopySemantics(t *testing.T) {
	r := NewRegistry()
	surfaces := map[Surface]bool{SurfaceQoESummaries: true}
	r.Register(Partner{Name: "p", Surfaces: surfaces})
	surfaces[SurfaceTraffic] = true // caller mutates its map afterwards
	if r.Allowed("p", SurfaceTraffic) {
		t.Error("registry shares the caller's map")
	}
	got, _ := r.Partner("p")
	got.Surfaces[SurfaceAttribution] = true
	if r.Allowed("p", SurfaceAttribution) {
		t.Error("Partner() leaks internal state")
	}
}

func TestRegistryValidationAndString(t *testing.T) {
	r := NewRegistry()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty name did not panic")
			}
		}()
		r.Register(Partner{})
	}()
	r.Register(Partner{Name: "b"})
	r.Register(Partner{Name: "a"})
	names := r.Names()
	if len(names) != 2 || names[0] != "a" {
		t.Errorf("Names = %v", names)
	}
	if s := r.String(); s == "" {
		t.Error("empty String")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Register(Partner{Name: "p", Surfaces: map[Surface]bool{SurfacePeering: true}})
				r.Allowed("p", SurfacePeering)
				r.PolicyFor("p")
				r.Names()
			}
		}(i)
	}
	wg.Wait()
}

func TestSummariesUnderPerPartnerPolicies(t *testing.T) {
	col := NewCollector("vod", ExportPolicy{}, time.Minute, 1)
	for i := 0; i < 5; i++ {
		col.Ingest(rec("isp1", "cdnX", "east", 77, 0.01, 0))
	}
	col.Ingest(rec("isp1", "cdnY", "west", 40, 0.2, 0))

	// Trusted partner: everything, exactly.
	trusted := col.SummariesUnder(ExportPolicy{}, 1)
	if len(trusted) != 2 || trusted[0].MeanScore != 77 {
		t.Errorf("trusted view = %+v", trusted)
	}
	// Restricted partner: small groups suppressed, scores coarsened.
	restricted := col.SummariesUnder(ExportPolicy{MinGroupSessions: 3, CoarsenScoreStep: 10}, 2)
	if len(restricted) != 1 {
		t.Fatalf("restricted view has %d groups, want 1", len(restricted))
	}
	if restricted[0].MeanScore != 70 {
		t.Errorf("restricted score = %v, want coarsened 70", restricted[0].MeanScore)
	}
	// The collector's own policy is untouched.
	if own := col.Summaries(); len(own) != 2 {
		t.Errorf("own view changed: %d groups", len(own))
	}
}
