package core

import "time"

// Delayed models the §5 staleness challenge: "the data exported by the EONA
// interfaces may have some inherent delay". A producer Sets values at
// publication time; a consumer Gets the newest value that is at least Delay
// old — exactly what a periodically-polled looking-glass server serves.
//
// Every EONA control loop in internal/control reads interface data through
// a Delayed so the E6 experiment can sweep staleness from zero to minutes.
type Delayed[T any] struct {
	// Delay is the propagation/refresh latency of the interface.
	Delay time.Duration

	entries []delayedEntry[T]
}

type delayedEntry[T any] struct {
	at time.Duration
	v  T
}

// NewDelayed creates a store with the given interface delay.
func NewDelayed[T any](delay time.Duration) *Delayed[T] {
	if delay < 0 {
		panic("core: negative interface delay")
	}
	return &Delayed[T]{Delay: delay}
}

// Set publishes a value at virtual time now. Times must be non-decreasing.
func (d *Delayed[T]) Set(now time.Duration, v T) {
	if n := len(d.entries); n > 0 && d.entries[n-1].at > now {
		panic("core: Delayed.Set times must be non-decreasing")
	}
	d.entries = append(d.entries, delayedEntry[T]{at: now, v: v})
	d.prune(now)
}

// Get returns the newest value visible at time now (published at or before
// now−Delay) and true, or the zero value and false if nothing is visible
// yet.
func (d *Delayed[T]) Get(now time.Duration) (T, bool) {
	cutoff := now - d.Delay
	for i := len(d.entries) - 1; i >= 0; i-- {
		if d.entries[i].at <= cutoff {
			return d.entries[i].v, true
		}
	}
	var zero T
	return zero, false
}

// Age returns how old the visible value is at time now, or false if none is
// visible.
func (d *Delayed[T]) Age(now time.Duration) (time.Duration, bool) {
	cutoff := now - d.Delay
	for i := len(d.entries) - 1; i >= 0; i-- {
		if d.entries[i].at <= cutoff {
			return now - d.entries[i].at, true
		}
	}
	return 0, false
}

// prune drops entries that can never be returned again: everything older
// than the newest already-visible entry.
func (d *Delayed[T]) prune(now time.Duration) {
	cutoff := now - d.Delay
	newestVisible := -1
	for i := len(d.entries) - 1; i >= 0; i-- {
		if d.entries[i].at <= cutoff {
			newestVisible = i
			break
		}
	}
	if newestVisible > 0 {
		d.entries = append(d.entries[:0], d.entries[newestVisible:]...)
	}
}

// Len returns the number of retained entries (for tests).
func (d *Delayed[T]) Len() int { return len(d.entries) }
