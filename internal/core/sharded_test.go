package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"
)

// genRecords builds a deterministic stream of QoERecords spread over many
// sessions, ISPs, CDNs, and clusters.
func genRecords(n int, seed int64) []QoERecord {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]QoERecord, n)
	for i := range recs {
		recs[i] = QoERecord{
			SessionID:      fmt.Sprintf("sess-%d", rng.Intn(n/2+1)),
			Timestamp:      time.Duration(i) * 7 * time.Millisecond,
			AppP:           "appp-1",
			ClientISP:      fmt.Sprintf("isp%d", rng.Intn(5)),
			CDN:            fmt.Sprintf("cdn%d", rng.Intn(3)),
			Cluster:        fmt.Sprintf("cl%d", rng.Intn(4)),
			Score:          rng.Float64() * 100,
			BufferingRatio: rng.Float64() * 0.2,
			AvgBitrateBps:  1e6 + rng.Float64()*4e6,
			StartupDelay:   time.Duration(rng.Intn(4000)) * time.Millisecond,
			PlayTime:       time.Duration(30+rng.Intn(300)) * time.Second,
			Abandoned:      rng.Intn(10) == 0,
		}
	}
	return recs
}

func summariesAlmostEqual(t *testing.T, got, want []QoESummary, exact bool) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("summary count = %d, want %d", len(got), len(want))
	}
	const tol = 1e-9
	for i := range want {
		g, w := got[i], want[i]
		if g.Key != w.Key {
			t.Fatalf("summary[%d] key = %+v, want %+v (export order not preserved)", i, g.Key, w.Key)
		}
		if g.Sessions != w.Sessions {
			t.Errorf("summary[%d] sessions = %v, want %v", i, g.Sessions, w.Sessions)
		}
		if exact {
			if g != w {
				t.Errorf("summary[%d] not bit-identical:\n got %+v\nwant %+v", i, g, w)
			}
			continue
		}
		for _, f := range []struct {
			name   string
			gv, wv float64
		}{
			{"MeanScore", g.MeanScore, w.MeanScore},
			{"MeanBufferingRatio", g.MeanBufferingRatio, w.MeanBufferingRatio},
			{"MeanBitrateBps", g.MeanBitrateBps, w.MeanBitrateBps},
			{"MeanStartupSec", g.MeanStartupSec, w.MeanStartupSec},
			{"AbandonmentRate", g.AbandonmentRate, w.AbandonmentRate},
		} {
			if relDiff(f.gv, f.wv) > tol {
				t.Errorf("summary[%d] %s = %v, want %v", i, f.name, f.gv, f.wv)
			}
		}
	}
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if d == 0 {
		return 0
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return d / scale
}

// TestShardedCollectorEquivalence: with NoiseEpsilon=0, a ShardedCollector
// at any shard count produces the same summaries and traffic estimates as
// the single-goroutine Collector — identical keys, order, and session
// counts; means exact at 1 shard and within fp tolerance otherwise.
func TestShardedCollectorEquivalence(t *testing.T) {
	recs := genRecords(8000, 11)
	window := 2 * time.Minute
	now := recs[len(recs)-1].Timestamp

	for _, policy := range []ExportPolicy{
		{},
		{MinGroupSessions: 50},
	} {
		single := NewCollector("appp-1", policy, window, 42)
		for _, r := range recs {
			single.Ingest(r)
		}
		wantSum := single.Summaries()
		wantTraffic := single.TrafficEstimates(now)

		for _, nsh := range []int{1, 2, 3, 8} {
			t.Run(fmt.Sprintf("policy%v/shards=%d", policy.MinGroupSessions, nsh), func(t *testing.T) {
				sc := NewShardedCollector("appp-1", policy, window, 42, nsh)
				defer sc.Close()
				for _, r := range recs {
					sc.Ingest(r)
				}
				summariesAlmostEqual(t, sc.Summaries(), wantSum, nsh == 1)

				gotTraffic := sc.TrafficEstimates(now)
				if len(gotTraffic) != len(wantTraffic) {
					t.Fatalf("traffic count = %d, want %d", len(gotTraffic), len(wantTraffic))
				}
				for i := range wantTraffic {
					g, w := gotTraffic[i], wantTraffic[i]
					if g.CDN != w.CDN || g.AppP != w.AppP || g.Sessions != w.Sessions {
						t.Errorf("traffic[%d] = %+v, want %+v", i, g, w)
					}
					if relDiff(g.VolumeBps, w.VolumeBps) > 1e-9 {
						t.Errorf("traffic[%d] VolumeBps = %v, want %v", i, g.VolumeBps, w.VolumeBps)
					}
				}
			})
		}
	}
}

// TestShardedCollectorBatchEquivalence: IngestBatch is equivalent to
// one-by-one Ingest.
func TestShardedCollectorBatchEquivalence(t *testing.T) {
	recs := genRecords(4000, 5)
	one := NewShardedCollector("appp-1", ExportPolicy{}, time.Minute, 9, 4)
	defer one.Close()
	for _, r := range recs {
		one.Ingest(r)
	}
	batched := NewShardedCollector("appp-1", ExportPolicy{}, time.Minute, 9, 4)
	defer batched.Close()
	for i := 0; i < len(recs); i += 512 {
		end := i + 512
		if end > len(recs) {
			end = len(recs)
		}
		batched.IngestBatch(recs[i:end])
	}
	if got, want := batched.Summaries(), one.Summaries(); !reflect.DeepEqual(got, want) {
		t.Error("batched ingest summaries differ from per-record ingest")
	}
	if got, want := batched.Ingested(), one.Ingested(); got != want {
		t.Errorf("Ingested = %d, want %d", got, want)
	}
}

// TestShardedCollectorSummaryFor checks single-group lookups against the
// full merged export.
func TestShardedCollectorSummaryFor(t *testing.T) {
	recs := genRecords(3000, 3)
	sc := NewShardedCollector("appp-1", ExportPolicy{MinGroupSessions: 10}, time.Minute, 1, 4)
	defer sc.Close()
	for _, r := range recs {
		sc.Ingest(r)
	}
	for _, want := range sc.Summaries() {
		got, ok := sc.SummaryFor(want.Key)
		if !ok {
			t.Fatalf("SummaryFor(%+v) suppressed but present in Summaries", want.Key)
		}
		if got != want {
			t.Errorf("SummaryFor(%+v) = %+v, want %+v", want.Key, got, want)
		}
	}
	if _, ok := sc.SummaryFor(SummaryKey{ClientISP: "no-such"}); ok {
		t.Error("SummaryFor of absent group reported ok")
	}
}

// TestShardedCollectorNoiseDeterminism: with noise enabled, two identical
// instances produce byte-identical query results — noise depends on
// (seed, query index), not goroutine scheduling.
func TestShardedCollectorNoiseDeterminism(t *testing.T) {
	recs := genRecords(3000, 21)
	policy := ExportPolicy{NoiseEpsilon: 0.5, MinGroupSessions: 5}
	mk := func() *ShardedCollector {
		sc := NewShardedCollector("appp-1", policy, time.Minute, 7, 4)
		for _, r := range recs {
			sc.Ingest(r)
		}
		return sc
	}
	a, b := mk(), mk()
	defer a.Close()
	defer b.Close()
	now := recs[len(recs)-1].Timestamp
	for q := 0; q < 3; q++ {
		if got, want := a.Summaries(), b.Summaries(); !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: summaries not deterministic", q)
		}
		if got, want := a.TrafficEstimates(now), b.TrafficEstimates(now); !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: traffic estimates not deterministic", q)
		}
	}
	// Distinct query indices must draw distinct noise.
	s1, s2 := a.Summaries(), a.Summaries()
	if reflect.DeepEqual(s1, s2) {
		t.Error("consecutive noisy queries returned identical noise draws")
	}
}

// TestShardedCollectorConcurrent hammers concurrent producers and readers;
// run under -race this is the data-race acceptance test.
func TestShardedCollectorConcurrent(t *testing.T) {
	const producers, perProducer = 4, 2000
	sc := NewShardedCollector("appp-1", ExportPolicy{}, time.Minute, 1, 4)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			recs := genRecords(perProducer, int64(100+p))
			for i, r := range recs {
				if i%3 == 0 {
					sc.IngestBatch(recs[i : i+1])
				} else {
					sc.Ingest(r)
				}
			}
		}(p)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					sc.Summaries()
					sc.TrafficEstimates(time.Minute)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	sc.Flush()
	if got := sc.Ingested(); got != producers*perProducer {
		t.Errorf("Ingested = %d, want %d", got, producers*perProducer)
	}
	total := 0.0
	for _, s := range sc.Summaries() {
		total += s.Sessions
	}
	if total != producers*perProducer {
		t.Errorf("summed sessions = %v, want %d", total, producers*perProducer)
	}

	sc.Close()
	sc.Close() // idempotent
	// Queries remain valid after Close.
	after := 0.0
	for _, s := range sc.Summaries() {
		after += s.Sessions
	}
	if after != total {
		t.Errorf("post-Close sessions = %v, want %v", after, total)
	}
}

func TestShardedCollectorZeroShardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("0 shards did not panic")
		}
	}()
	NewShardedCollector("appp-1", ExportPolicy{}, time.Minute, 1, 0)
}

func TestShardOfStable(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16} {
		for i := 0; i < 100; i++ {
			id := fmt.Sprintf("sess-%d", i)
			a, b := shardOf(id, n), shardOf(id, n)
			if a != b {
				t.Fatalf("shardOf(%q, %d) unstable: %d vs %d", id, n, a, b)
			}
			if a < 0 || a >= n {
				t.Fatalf("shardOf(%q, %d) = %d out of range", id, n, a)
			}
		}
	}
}

func BenchmarkCollectorIngest(b *testing.B) {
	recs := genRecords(1<<14, 1)
	c := NewCollector("appp-1", ExportPolicy{}, time.Minute, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Ingest(recs[i&(1<<14-1)])
	}
}

func BenchmarkShardedCollectorIngest(b *testing.B) {
	recs := genRecords(1<<14, 1)
	for _, nsh := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", nsh), func(b *testing.B) {
			sc := NewShardedCollector("appp-1", ExportPolicy{}, time.Minute, 1, nsh)
			defer sc.Close()
			b.ReportAllocs()
			b.ResetTimer()
			const batch = 512
			for i := 0; i < b.N; i += batch {
				end := i + batch
				if end > b.N {
					end = b.N
				}
				lo := i & (1<<14 - 1)
				hi := lo + (end - i)
				if hi > 1<<14 {
					hi = 1 << 14
				}
				sc.IngestBatch(recs[lo:hi])
			}
			b.StopTimer()
			sc.Flush()
		})
	}
}

// TestIngestAllocFree pins Collector.Ingest at zero allocations in steady
// state: once the rollup groups and per-CDN traffic windows exist, ingesting
// another record must not allocate (the E7 hot loop runs millions of these).
func TestIngestAllocFree(t *testing.T) {
	recs := genRecords(1<<12, 1)
	c := NewCollector("appp-1", ExportPolicy{}, time.Minute, 1)
	for _, r := range recs {
		c.Ingest(r) // warm every group and window
	}
	i := 0
	op := func() {
		c.Ingest(recs[i&(1<<12-1)])
		i++
	}
	if a := testing.AllocsPerRun(500, op); a != 0 {
		t.Errorf("Collector.Ingest allocates %v allocs/op in steady state, want 0", a)
	}
}
