package core

import (
	"reflect"
	"testing"
	"time"
)

// TestNewA2ICollectorSelectsForm pins the dispatch rule: Shards 0 and 1
// both build the single-goroutine Collector, anything above builds the
// sharded one with the requested shard count.
func TestNewA2ICollectorSelectsForm(t *testing.T) {
	for _, shards := range []int{0, 1} {
		c := NewA2ICollector(CollectorConfig{AppP: "vod", Shards: shards})
		if _, ok := c.(*Collector); !ok {
			t.Errorf("Shards=%d built %T, want *Collector", shards, c)
		}
		// No-op lifecycle hooks must be callable.
		c.Flush()
		c.Close()
	}
	c := NewA2ICollector(CollectorConfig{AppP: "vod", Shards: 4})
	sc, ok := c.(*ShardedCollector)
	if !ok {
		t.Fatalf("Shards=4 built %T, want *ShardedCollector", c)
	}
	if sc.Shards() != 4 {
		t.Errorf("shard count = %d, want 4", sc.Shards())
	}
	sc.Close()
}

// TestNewA2ICollectorMatchesDeprecatedConstructors is the deprecation
// equivalence pin: a config-built collector produces byte-identical
// exports to one built with the positional constructor, for both forms.
func TestNewA2ICollectorMatchesDeprecatedConstructors(t *testing.T) {
	recs := genRecords(2_000, 11)
	policy := ExportPolicy{MinGroupSessions: 3, NoiseEpsilon: 2, CoarsenScoreStep: 5}
	now := 20 * time.Second

	check := func(label string, a, b A2ICollector) {
		t.Helper()
		for _, r := range recs {
			a.Ingest(r)
		}
		b.IngestBatch(recs)
		a.Flush()
		b.Flush()
		if ai, bi := a.Ingested(), b.Ingested(); ai != bi {
			t.Errorf("%s: ingested %d vs %d", label, ai, bi)
		}
		if as, bs := a.Summaries(), b.Summaries(); !reflect.DeepEqual(as, bs) {
			t.Errorf("%s: summaries differ", label)
		}
		if as, bs := a.SummariesUnder(ExportPolicy{}, 7), b.SummariesUnder(ExportPolicy{}, 7); !reflect.DeepEqual(as, bs) {
			t.Errorf("%s: partner summaries differ", label)
		}
		if at, bt := a.TrafficEstimates(now), b.TrafficEstimates(now); !reflect.DeepEqual(at, bt) {
			t.Errorf("%s: traffic estimates differ", label)
		}
		a.Close()
		b.Close()
	}

	check("single",
		NewCollector("vod", policy, time.Minute, 9),
		NewA2ICollector(CollectorConfig{AppP: "vod", Policy: policy, Window: time.Minute, Seed: 9}))
	check("sharded",
		NewShardedCollector("vod", policy, time.Minute, 9, 3),
		NewA2ICollector(CollectorConfig{AppP: "vod", Policy: policy, Window: time.Minute, Seed: 9, Shards: 3}))
}
