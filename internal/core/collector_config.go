package core

import "time"

// CollectorConfig is the one constructor input for A2I collectors. The two
// positional constructors (NewCollector's four arguments, NewShardedCollector's
// five) grew apart one parameter at a time; the config struct replaces both.
// The zero value is runnable: anonymous AppP, export-everything policy,
// 5-minute traffic window, seed 0, single-shard.
type CollectorConfig struct {
	// AppP names the application provider the collector aggregates for.
	AppP string
	// Policy is the default blinding applied to exports.
	Policy ExportPolicy
	// Window sizes the traffic-estimate window (default 5 minutes).
	Window time.Duration
	// Seed feeds the privacy noisers; per-partner and per-shard streams are
	// derived from it, so runs are reproducible.
	Seed int64
	// Shards selects cluster mode: values above 1 build a ShardedCollector
	// with that many goroutine-owned shards. 0 and 1 both mean the plain
	// single-goroutine Collector.
	Shards int
}

// A2ICollector is the collector surface the rest of the system consumes,
// implemented by both *Collector and *ShardedCollector. Code written
// against it is oblivious to whether ingest is single-goroutine or
// sharded; Flush and Close are no-ops on the single-goroutine form.
type A2ICollector interface {
	// Ingest records one finished session.
	Ingest(rec QoERecord)
	// IngestBatch records a batch of finished sessions.
	IngestBatch(recs []QoERecord)
	// Ingested returns the total number of records ingested.
	Ingested() uint64
	// Summaries returns the per-group exports under the default policy.
	Summaries() []QoESummary
	// SummariesUnder re-blinds the exports under a partner's policy.
	SummariesUnder(policy ExportPolicy, seed int64) []QoESummary
	// SummaryFor returns one group's export, if it survives blinding.
	SummaryFor(key SummaryKey) (QoESummary, bool)
	// TrafficEstimates returns per-CDN demand estimates at now.
	TrafficEstimates(now time.Duration) []TrafficEstimate
	// Flush blocks until every record ingested so far is visible to
	// queries. No-op on a single-goroutine collector.
	Flush()
	// Close flushes and stops any background goroutines. No-op on a
	// single-goroutine collector.
	Close()
}

var (
	_ A2ICollector = (*Collector)(nil)
	_ A2ICollector = (*ShardedCollector)(nil)
)

// NewA2ICollector builds the collector cfg describes: a *Collector when
// cfg.Shards <= 1, a *ShardedCollector otherwise. The concrete types stay
// exported for callers that need them; type-assert the result if so.
func NewA2ICollector(cfg CollectorConfig) A2ICollector {
	if cfg.Shards > 1 {
		return NewShardedCollector(cfg.AppP, cfg.Policy, cfg.Window, cfg.Seed, cfg.Shards)
	}
	return NewCollector(cfg.AppP, cfg.Policy, cfg.Window, cfg.Seed)
}

// IngestBatch records a batch of finished sessions.
func (c *Collector) IngestBatch(recs []QoERecord) {
	for _, rec := range recs {
		c.Ingest(rec)
	}
}

// Flush is a no-op: a single-goroutine Collector is always caught up. It
// exists so *Collector satisfies A2ICollector.
func (c *Collector) Flush() {}

// Close is a no-op: a single-goroutine Collector owns no goroutines. It
// exists so *Collector satisfies A2ICollector.
func (c *Collector) Close() {}
