// Package core defines EONA proper: the two information-sharing interfaces
// the paper introduces between application providers (AppPs) and
// infrastructure providers (InfPs), and the §4 recipe for deriving them.
//
//   - EONA-A2I (application → infrastructure): client-side experience
//     measurements with attributes, plus per-CDN traffic volume estimates
//     (types QoERecord, QoESummary, TrafficEstimate; producer Collector).
//   - EONA-I2A (infrastructure → application): hints about infrastructure
//     decisions and state — peering points with congestion/headroom,
//     bottleneck attribution, and alternative-server hints (types
//     PeeringInfo, Attribution, ServerHint).
//
// Both interfaces carry *information*, never control: there is deliberately
// no type in this package that lets one party set another party's knob.
// Staleness — the §5 challenge that interface data is inherently delayed —
// is modeled by Delayed, which every EONA control loop in internal/control
// reads through.
package core

import (
	"time"

	"eona/internal/netsim"
	"eona/internal/qoe"
)

// QoERecord is one session's client-side measurement with the attributes
// the paper names for A2I export: "critical application-centric experience
// measures collected from client-side measurements together with relevant
// attributes (e.g., the client ISP, and the server location)".
type QoERecord struct {
	SessionID string        `json:"session_id"`
	Timestamp time.Duration `json:"timestamp"`

	// Attributes.
	AppP      string `json:"appp"`
	ClientISP string `json:"client_isp"`
	CDN       string `json:"cdn"`
	Cluster   string `json:"cluster"`

	// Experience measures.
	Score           float64       `json:"score"`
	BufferingRatio  float64       `json:"buffering_ratio"`
	AvgBitrateBps   float64       `json:"avg_bitrate_bps"`
	StartupDelay    time.Duration `json:"startup_delay"`
	PlayTime        time.Duration `json:"play_time"`
	BitrateSwitches int           `json:"bitrate_switches"`
	CDNSwitches     int           `json:"cdn_switches"`
	Abandoned       bool          `json:"abandoned"`
}

// RecordFrom flattens player metrics into a QoERecord using the given
// scoring model.
func RecordFrom(model qoe.Model, m qoe.SessionMetrics, sessionID, appP, clientISP, cdnName, cluster string, at time.Duration) QoERecord {
	return QoERecord{
		SessionID:       sessionID,
		Timestamp:       at,
		AppP:            appP,
		ClientISP:       clientISP,
		CDN:             cdnName,
		Cluster:         cluster,
		Score:           model.Score(m),
		BufferingRatio:  m.BufferingRatio(),
		AvgBitrateBps:   m.AvgBitrate,
		StartupDelay:    m.StartupDelay,
		PlayTime:        m.PlayTime,
		BitrateSwitches: m.BitrateSwitches,
		CDNSwitches:     m.CDNSwitches,
		Abandoned:       m.Abandoned,
	}
}

// SummaryKey identifies one A2I aggregation group.
type SummaryKey struct {
	ClientISP string `json:"client_isp"`
	CDN       string `json:"cdn"`
	Cluster   string `json:"cluster"`
}

// QoESummary is the aggregated A2I export for one group: enough for an InfP
// to see how its subscribers experience each CDN, without any per-user
// information.
type QoESummary struct {
	Key                SummaryKey `json:"key"`
	Sessions           float64    `json:"sessions"` // float: may be noised
	MeanScore          float64    `json:"mean_score"`
	MeanBufferingRatio float64    `json:"mean_buffering_ratio"`
	MeanBitrateBps     float64    `json:"mean_bitrate_bps"`
	MeanStartupSec     float64    `json:"mean_startup_sec"`
	AbandonmentRate    float64    `json:"abandonment_rate"`
}

// TrafficEstimate is the A2I item from the §4 illustrative example: "an
// estimate of the total volume of traffic intended to different CDNs so
// that the InfP can decide a suitable traffic split across peering points".
type TrafficEstimate struct {
	AppP      string  `json:"appp"`
	CDN       string  `json:"cdn"`
	VolumeBps float64 `json:"volume_bps"`
	Sessions  float64 `json:"sessions"`
}

// BottleneckSegment says where on the delivery path an InfP locates the
// problem — the I2A attribution that lets an AppP distinguish "the ISP
// access is congested, lower the bitrate" (Figure 3) from "the CDN server
// is the problem, switch server" (§2).
type BottleneckSegment int

const (
	// SegmentNone: no bottleneck observed.
	SegmentNone BottleneckSegment = iota
	// SegmentAccess: the ISP's shared access/aggregation network.
	SegmentAccess
	// SegmentPeering: the egress/peering point toward the CDN.
	SegmentPeering
	// SegmentCDN: beyond the ISP — the CDN's servers or upstream.
	SegmentCDN
)

// String returns the lowercase segment name.
func (b BottleneckSegment) String() string {
	switch b {
	case SegmentNone:
		return "none"
	case SegmentAccess:
		return "access"
	case SegmentPeering:
		return "peering"
	case SegmentCDN:
		return "cdn"
	default:
		return "unknown"
	}
}

// Attribution is the I2A congestion-attribution hint.
type Attribution struct {
	// CDN is the CDN whose delivery path this attribution describes.
	CDN     string                 `json:"cdn"`
	Segment BottleneckSegment      `json:"segment"`
	Level   netsim.CongestionLevel `json:"level"`
	// SuggestedCapBps, when positive, is the per-session bitrate the
	// InfP estimates its access network can sustain — the actionable
	// form of "switch down bitrate to make the ISP less congested".
	SuggestedCapBps float64 `json:"suggested_cap_bps"`
}

// PeeringInfo is the I2A peering hint from the §4 example: the InfP
// "inform[s] the AppPs of its multiple peering points for the different
// CDNs and the congestion level on each peering point".
type PeeringInfo struct {
	PeeringID   string                 `json:"peering_id"`
	CDN         string                 `json:"cdn"`
	Congestion  netsim.CongestionLevel `json:"congestion"`
	HeadroomBps float64                `json:"headroom_bps"`
	CapacityBps float64                `json:"capacity_bps"`
	// Current marks the peering point the ISP's TE currently uses for
	// this CDN — "the ISP's current decision" the oscillation fix needs.
	Current bool `json:"current"`
}

// ServerHint is the I2A alternative-server hint from §2: "if the CDN can
// provide hints on alternative servers, the video player can reconnect to a
// different server and continue to play".
type ServerHint struct {
	ServerID string  `json:"server_id"`
	Cluster  string  `json:"cluster"`
	Load     float64 `json:"load"`
	// CacheLikely reports whether the requested content is likely cached
	// at the hinted server's cluster.
	CacheLikely bool `json:"cache_likely"`
}
