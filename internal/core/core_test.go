package core

import (
	"math"
	"testing"
	"time"

	"eona/internal/qoe"
)

func rec(ispName, cdnName, cluster string, score, bufratio float64, at time.Duration) QoERecord {
	return QoERecord{
		SessionID:      "s",
		Timestamp:      at,
		AppP:           "vod",
		ClientISP:      ispName,
		CDN:            cdnName,
		Cluster:        cluster,
		Score:          score,
		BufferingRatio: bufratio,
		AvgBitrateBps:  2e6,
		PlayTime:       10 * time.Minute,
	}
}

func TestCollectorSummaries(t *testing.T) {
	c := NewCollector("vod", ExportPolicy{}, time.Minute, 1)
	c.Ingest(rec("isp1", "cdnX", "east", 80, 0.01, 0))
	c.Ingest(rec("isp1", "cdnX", "east", 60, 0.03, time.Second))
	c.Ingest(rec("isp1", "cdnY", "west", 40, 0.10, time.Second))
	sums := c.Summaries()
	if len(sums) != 2 {
		t.Fatalf("summaries = %d, want 2", len(sums))
	}
	x, ok := c.SummaryFor(SummaryKey{ClientISP: "isp1", CDN: "cdnX", Cluster: "east"})
	if !ok {
		t.Fatal("cdnX summary missing")
	}
	if x.Sessions != 2 || x.MeanScore != 70 {
		t.Errorf("cdnX summary = %+v", x)
	}
	if math.Abs(x.MeanBufferingRatio-0.02) > 1e-12 {
		t.Errorf("mean bufratio = %v, want 0.02", x.MeanBufferingRatio)
	}
	if c.Ingested() != 3 {
		t.Errorf("Ingested = %d", c.Ingested())
	}
}

func TestCollectorKAnonymity(t *testing.T) {
	c := NewCollector("vod", ExportPolicy{MinGroupSessions: 3}, time.Minute, 1)
	for i := 0; i < 3; i++ {
		c.Ingest(rec("isp1", "cdnX", "east", 80, 0, 0))
	}
	c.Ingest(rec("isp1", "cdnY", "west", 40, 0, 0)) // only 1 session
	sums := c.Summaries()
	if len(sums) != 1 {
		t.Fatalf("summaries = %d, want 1 (small group suppressed)", len(sums))
	}
	if sums[0].Key.CDN != "cdnX" {
		t.Errorf("surviving group = %+v", sums[0].Key)
	}
	if _, ok := c.SummaryFor(SummaryKey{ClientISP: "isp1", CDN: "cdnY", Cluster: "west"}); ok {
		t.Error("suppressed group still visible via SummaryFor")
	}
}

func TestCollectorNoise(t *testing.T) {
	exact := NewCollector("vod", ExportPolicy{}, time.Minute, 1)
	noisy := NewCollector("vod", ExportPolicy{NoiseEpsilon: 0.5}, time.Minute, 1)
	for i := 0; i < 50; i++ {
		r := rec("isp1", "cdnX", "east", 70, 0.02, 0)
		exact.Ingest(r)
		noisy.Ingest(r)
	}
	e := exact.Summaries()[0]
	n := noisy.Summaries()[0]
	if e.MeanScore != 70 {
		t.Fatalf("exact mean = %v", e.MeanScore)
	}
	if n.MeanScore == 70 && n.Sessions == 50 {
		t.Error("noise policy produced exact values (suspicious)")
	}
	if n.MeanScore < 0 || n.MeanScore > 100 || n.MeanBufferingRatio < 0 || n.MeanBufferingRatio > 1 {
		t.Errorf("noised values out of range: %+v", n)
	}
}

func TestCollectorCoarsening(t *testing.T) {
	c := NewCollector("vod", ExportPolicy{CoarsenScoreStep: 10}, time.Minute, 1)
	c.Ingest(rec("isp1", "cdnX", "east", 77, 0, 0))
	s := c.Summaries()[0]
	if s.MeanScore != 70 {
		t.Errorf("coarsened score = %v, want 70", s.MeanScore)
	}
}

func TestTrafficEstimates(t *testing.T) {
	c := NewCollector("vod", ExportPolicy{}, time.Minute, 1)
	// 2 Mbps × 600s of play = 1.2e9 bits within the window buckets.
	c.Ingest(rec("isp1", "cdnX", "east", 80, 0, 30*time.Second))
	c.Ingest(rec("isp1", "cdnY", "west", 80, 0, 30*time.Second))
	c.Ingest(rec("isp1", "cdnX", "east", 80, 0, 45*time.Second))
	ests := c.TrafficEstimates(time.Minute)
	if len(ests) != 2 {
		t.Fatalf("estimates = %d, want 2", len(ests))
	}
	if ests[0].CDN != "cdnX" || ests[1].CDN != "cdnY" {
		t.Errorf("estimate order = %v,%v (want sorted)", ests[0].CDN, ests[1].CDN)
	}
	if ests[0].Sessions != 2 || ests[1].Sessions != 1 {
		t.Errorf("session counts = %v,%v", ests[0].Sessions, ests[1].Sessions)
	}
	if ests[0].VolumeBps <= ests[1].VolumeBps {
		t.Error("cdnX volume should exceed cdnY")
	}
	// Outside the window everything ages out.
	later := c.TrafficEstimates(time.Hour)
	for _, e := range later {
		if e.Sessions != 0 {
			t.Errorf("stale estimate = %+v", e)
		}
	}
}

func TestRecordFrom(t *testing.T) {
	model := qoe.DefaultModel()
	m := qoe.SessionMetrics{
		StartupDelay:  time.Second,
		PlayTime:      9 * time.Minute,
		BufferingTime: time.Minute,
		AvgBitrate:    3e6,
		CDNSwitches:   2,
		Abandoned:     true,
	}
	r := RecordFrom(model, m, "sess-1", "vod", "isp1", "cdnX", "east", 42*time.Second)
	if r.SessionID != "sess-1" || r.ClientISP != "isp1" || r.CDN != "cdnX" {
		t.Errorf("attributes wrong: %+v", r)
	}
	if math.Abs(r.BufferingRatio-0.1) > 1e-9 {
		t.Errorf("bufratio = %v, want 0.1", r.BufferingRatio)
	}
	if r.Score != model.Score(m) {
		t.Errorf("score = %v, want %v", r.Score, model.Score(m))
	}
	if !r.Abandoned || r.CDNSwitches != 2 {
		t.Error("flags not propagated")
	}
}

func TestDelayedVisibility(t *testing.T) {
	d := NewDelayed[int](10 * time.Second)
	if _, ok := d.Get(0); ok {
		t.Error("empty store returned a value")
	}
	d.Set(0, 1)
	if _, ok := d.Get(5 * time.Second); ok {
		t.Error("value visible before delay elapsed")
	}
	if v, ok := d.Get(10 * time.Second); !ok || v != 1 {
		t.Errorf("Get(10s) = %v,%v want 1,true", v, ok)
	}
	d.Set(20*time.Second, 2)
	if v, _ := d.Get(25 * time.Second); v != 1 {
		t.Errorf("Get(25s) = %v, want still 1", v)
	}
	if v, _ := d.Get(30 * time.Second); v != 2 {
		t.Errorf("Get(30s) = %v, want 2", v)
	}
	if age, ok := d.Age(30 * time.Second); !ok || age != 10*time.Second {
		t.Errorf("Age = %v,%v", age, ok)
	}
}

func TestDelayedZeroDelay(t *testing.T) {
	d := NewDelayed[string](0)
	d.Set(time.Second, "fresh")
	if v, ok := d.Get(time.Second); !ok || v != "fresh" {
		t.Error("zero-delay store should be immediately visible")
	}
}

func TestDelayedPrunes(t *testing.T) {
	d := NewDelayed[int](time.Second)
	for i := 0; i < 100; i++ {
		d.Set(time.Duration(i)*time.Second, i)
	}
	if d.Len() > 3 {
		t.Errorf("retained %d entries, want pruning", d.Len())
	}
	if v, _ := d.Get(100 * time.Second); v != 99 {
		t.Errorf("latest visible = %v, want 99", v)
	}
}

func TestDelayedValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative delay did not panic")
			}
		}()
		NewDelayed[int](-time.Second)
	}()
	d := NewDelayed[int](0)
	d.Set(10*time.Second, 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Set did not panic")
		}
	}()
	d.Set(5*time.Second, 2)
}

func TestSegmentStrings(t *testing.T) {
	cases := map[BottleneckSegment]string{
		SegmentNone: "none", SegmentAccess: "access",
		SegmentPeering: "peering", SegmentCDN: "cdn",
		BottleneckSegment(99): "unknown",
	}
	for seg, want := range cases {
		if seg.String() != want {
			t.Errorf("%d.String() = %q, want %q", seg, seg.String(), want)
		}
	}
}
