package core

import (
	"fmt"
	"sort"

	"eona/internal/agg"
)

// MetricState is one named Welford accumulator of a rollup group.
type MetricState struct {
	Name    string
	Welford agg.WelfordState
}

// GroupState is one rollup group: its key plus every metric, sorted by
// metric name so the export is deterministic.
type GroupState struct {
	Key     SummaryKey
	Metrics []MetricState
}

// TrafficState is one CDN's windowed traffic accumulators.
type TrafficState struct {
	CDN            string
	Bits, Sessions agg.WindowedState
}

// CollectorState is a Collector's full aggregation state as data — what a
// projection checkpoint persists. Groups appear in first-observation order
// and traffic entries sorted by CDN, so exporting the same collector state
// always yields the same bytes once encoded. Policy, window and seed are
// deliberately absent: they are configuration, not accumulated state, and a
// restored collector is built with the same CollectorConfig as the original
// (noise streams restart from the seed, the same semantics a journal
// restart has always had).
type CollectorState struct {
	Ingested uint64
	Groups   []GroupState
	Traffic  []TrafficState
}

// ExportState captures the collector's aggregation state. The result shares
// no memory with the collector.
func (c *Collector) ExportState() CollectorState {
	st := CollectorState{Ingested: c.ingested}
	for _, key := range c.rollup.Keys() {
		g := c.rollup.Group(key)
		gs := GroupState{Key: key}
		for _, name := range g.Metrics() {
			gs.Metrics = append(gs.Metrics, MetricState{Name: name, Welford: g.Metric(name).State()})
		}
		st.Groups = append(st.Groups, gs)
	}
	for _, cdn := range sortedCDNs(c.trafficBits) {
		st.Traffic = append(st.Traffic, TrafficState{
			CDN:      cdn,
			Bits:     c.trafficBits[cdn].State(),
			Sessions: c.trafficSessions[cdn].State(),
		})
	}
	return st
}

// ImportState restores an exported aggregation state onto a fresh collector
// built with the same CollectorConfig. Groups are re-created in the
// exported (first-observation) order, so iteration order — and therefore
// summary order and noise-stream consumption — matches the original
// collector exactly. The collector must be fresh: importing over existing
// observations is an error.
func (c *Collector) ImportState(st CollectorState) error {
	if c.ingested != 0 || c.rollup.Len() != 0 || len(c.trafficBits) != 0 {
		return fmt.Errorf("core: ImportState on a non-fresh collector (%d ingested, %d groups)", c.ingested, c.rollup.Len())
	}
	c.ingested = st.Ingested
	for _, gs := range st.Groups {
		g := c.rollup.Ensure(gs.Key)
		for _, ms := range gs.Metrics {
			g.Metric(ms.Name).Restore(ms.Welford)
		}
	}
	for _, ts := range st.Traffic {
		bits, err := agg.RestoreWindowed(ts.Bits)
		if err != nil {
			return fmt.Errorf("core: ImportState traffic bits for %q: %w", ts.CDN, err)
		}
		sessions, err := agg.RestoreWindowed(ts.Sessions)
		if err != nil {
			return fmt.Errorf("core: ImportState traffic sessions for %q: %w", ts.CDN, err)
		}
		c.trafficBits[ts.CDN] = bits
		c.trafficSessions[ts.CDN] = sessions
	}
	return nil
}

func sortedCDNs(m map[string]*agg.Windowed) []string {
	cdns := make([]string, 0, len(m))
	for cdn := range m {
		cdns = append(cdns, cdn)
	}
	sort.Strings(cdns)
	return cdns
}
