package core

import "testing"

func TestFigure5RecipeValid(t *testing.T) {
	if err := Figure5Recipe().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFigure5WideInterface(t *testing.T) {
	iface, err := Figure5Recipe().WideInterface()
	if err != nil {
		t.Fatal(err)
	}
	// The wide interface must contain exactly the paper's shared items —
	// and must NOT contain the private attributes.
	wantA2I := []string{"qoe_per_cdn", "traffic_volume_per_cdn"}
	wantI2A := []string{"current_egress", "peering_capacity", "peering_congestion"}
	for _, name := range wantA2I {
		if !iface.Contains(name) {
			t.Errorf("wide interface missing A2I item %q", name)
		}
	}
	for _, name := range wantI2A {
		if !iface.Contains(name) {
			t.Errorf("wide interface missing I2A item %q", name)
		}
	}
	if iface.Contains("user_identity") || iface.Contains("isp_topology_full") {
		t.Error("private attribute leaked into the wide interface")
	}
	if iface.Size() != len(wantA2I)+len(wantI2A) {
		t.Errorf("interface size = %d, want %d", iface.Size(), len(wantA2I)+len(wantI2A))
	}
	// Directions.
	for _, it := range iface.Items {
		switch it.Data {
		case "qoe_per_cdn", "traffic_volume_per_cdn":
			if it.Direction != A2I {
				t.Errorf("%s direction = %v, want A2I", it.Data, it.Direction)
			}
		default:
			if it.Direction != I2A {
				t.Errorf("%s direction = %v, want I2A", it.Data, it.Direction)
			}
		}
	}
}

func TestWideInterfaceConsumers(t *testing.T) {
	iface, _ := Figure5Recipe().WideInterface()
	for _, it := range iface.Items {
		if it.Data != "peering_congestion" {
			continue
		}
		// Both AppP knobs need the InfP's congestion data.
		if len(it.Consumers) != 2 || it.Consumers[0] != "bitrate" || it.Consumers[1] != "cdn_choice" {
			t.Errorf("peering_congestion consumers = %v", it.Consumers)
		}
	}
}

func TestNarrow(t *testing.T) {
	iface, _ := Figure5Recipe().WideInterface()
	narrow := iface.Narrow("peering_congestion", "qoe_per_cdn", "not_a_real_item")
	if narrow.Size() != 2 {
		t.Errorf("narrow size = %d, want 2", narrow.Size())
	}
	if !narrow.Contains("peering_congestion") || !narrow.Contains("qoe_per_cdn") {
		t.Error("narrow lost kept items")
	}
	if narrow.Contains("current_egress") {
		t.Error("narrow retained dropped item")
	}
	empty := iface.Narrow()
	if empty.Size() != 0 {
		t.Error("empty narrow should share nothing")
	}
}

func TestRecipeValidationErrors(t *testing.T) {
	base := Figure5Recipe()

	dupKnob := base
	dupKnob.Knobs = append(dupKnob.Knobs, Knob{Name: "bitrate", Owner: OwnerInfP})
	if err := dupKnob.Validate(); err == nil {
		t.Error("duplicate knob accepted")
	}

	dupData := base
	dupData.Data = append(dupData.Data, DataAttr{Name: "qoe_per_cdn", Owner: OwnerInfP})
	if err := dupData.Validate(); err == nil {
		t.Error("duplicate data accepted")
	}

	badUseKnob := base
	badUseKnob.Uses = append(badUseKnob.Uses, Use{Knob: "ghost", Data: "qoe_per_cdn"})
	if err := badUseKnob.Validate(); err == nil {
		t.Error("unknown knob in use accepted")
	}
	if _, err := badUseKnob.WideInterface(); err == nil {
		t.Error("WideInterface should surface validation errors")
	}

	badUseData := base
	badUseData.Uses = append(badUseData.Uses, Use{Knob: "bitrate", Data: "ghost"})
	if err := badUseData.Validate(); err == nil {
		t.Error("unknown data in use accepted")
	}
}

func TestFigure3Recipe(t *testing.T) {
	r := Figure3Recipe()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	iface, err := r.WideInterface()
	if err != nil {
		t.Fatal(err)
	}
	wantI2A := []string{"access_congestion", "bottleneck_attribution", "sustainable_session_rate"}
	wantA2I := []string{"session_count", "session_qoe"}
	for _, name := range wantI2A {
		if !iface.Contains(name) {
			t.Errorf("missing I2A item %q", name)
		}
	}
	for _, name := range wantA2I {
		if !iface.Contains(name) {
			t.Errorf("missing A2I item %q", name)
		}
	}
	if iface.Contains("subscriber_identity") {
		t.Error("private attribute leaked")
	}
	if iface.Size() != 5 {
		t.Errorf("interface size = %d, want 5", iface.Size())
	}
	// The E1 controller's narrow subset: congestion + suggested rate
	// I2A, QoE A2I.
	narrow := iface.Narrow("access_congestion", "sustainable_session_rate", "session_qoe")
	if narrow.Size() != 3 {
		t.Errorf("narrow size = %d, want 3", narrow.Size())
	}
}

func TestSameOwnerUsesStayPrivate(t *testing.T) {
	r := Recipe{
		UseCase: "trivial",
		Knobs:   []Knob{{Name: "k", Owner: OwnerAppP}},
		Data:    []DataAttr{{Name: "d", Owner: OwnerAppP}},
		Uses:    []Use{{Knob: "k", Data: "d"}},
	}
	iface, err := r.WideInterface()
	if err != nil {
		t.Fatal(err)
	}
	if iface.Size() != 0 {
		t.Errorf("same-owner use produced interface items: %+v", iface.Items)
	}
}

func TestOwnerDirectionStrings(t *testing.T) {
	if OwnerAppP.String() != "AppP" || OwnerInfP.String() != "InfP" {
		t.Error("Owner strings wrong")
	}
	if A2I.String() != "A2I" || I2A.String() != "I2A" {
		t.Error("Direction strings wrong")
	}
}
