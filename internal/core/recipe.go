package core

import (
	"fmt"
	"sort"
)

// This file makes the §4 "recipe for interface design" executable:
//
//  1. enumerate use cases (the caller's job — a Recipe describes one),
//  2. posit a hypothetical global controller using all data to set all
//     knobs (the Uses edges),
//  3. map knobs and data to their natural owners; every Use edge whose knob
//     owner differs from its data owner is information that must cross an
//     EONA interface — the *wide* interface,
//  4. narrow: keep only the critical items, hiding the rest.
//
// E8 measures the QoE cost of each narrowing step against the global
// controller oracle.

// Owner is a party in the delivery ecosystem.
type Owner int

const (
	// OwnerAppP is the application provider.
	OwnerAppP Owner = iota
	// OwnerInfP is the infrastructure provider.
	OwnerInfP
)

// String names the owner.
func (o Owner) String() string {
	if o == OwnerAppP {
		return "AppP"
	}
	return "InfP"
}

// Direction is which way an interface item flows.
type Direction int

const (
	// A2I: AppP data needed by an InfP knob.
	A2I Direction = iota
	// I2A: InfP data needed by an AppP knob.
	I2A
)

// String names the direction.
func (d Direction) String() string {
	if d == A2I {
		return "A2I"
	}
	return "I2A"
}

// Knob is a control variable with its natural owner.
type Knob struct {
	Name  string
	Owner Owner
}

// DataAttr is an observable with its natural owner.
type DataAttr struct {
	Name  string
	Owner Owner
}

// Use is one edge of the hypothetical global controller's optimization:
// setting Knob requires reading Data.
type Use struct {
	Knob string
	Data string
}

// Recipe describes one use case per §4.
type Recipe struct {
	UseCase string
	Knobs   []Knob
	Data    []DataAttr
	Uses    []Use
}

// Item is one element of a derived interface: a data attribute that must be
// shared, and the direction it flows.
type Item struct {
	Data      string
	Direction Direction
	// Consumers lists the knobs (on the other side) that need it.
	Consumers []string
}

// Interface is a set of shared items.
type Interface struct {
	Items []Item
}

// Contains reports whether the interface shares the named data attribute.
func (iface Interface) Contains(data string) bool {
	for _, it := range iface.Items {
		if it.Data == data {
			return true
		}
	}
	return false
}

// Size returns the number of shared attributes.
func (iface Interface) Size() int { return len(iface.Items) }

// Validate checks referential integrity of the recipe.
func (r Recipe) Validate() error {
	knobs := map[string]Owner{}
	for _, k := range r.Knobs {
		if _, dup := knobs[k.Name]; dup {
			return fmt.Errorf("core: duplicate knob %q", k.Name)
		}
		knobs[k.Name] = k.Owner
	}
	data := map[string]Owner{}
	for _, d := range r.Data {
		if _, dup := data[d.Name]; dup {
			return fmt.Errorf("core: duplicate data attribute %q", d.Name)
		}
		data[d.Name] = d.Owner
	}
	for _, u := range r.Uses {
		if _, ok := knobs[u.Knob]; !ok {
			return fmt.Errorf("core: use references unknown knob %q", u.Knob)
		}
		if _, ok := data[u.Data]; !ok {
			return fmt.Errorf("core: use references unknown data %q", u.Data)
		}
	}
	return nil
}

// WideInterface derives step 3 of the recipe: every data attribute that a
// differently-owned knob needs, with its flow direction. The result is
// deterministic (sorted by data name).
func (r Recipe) WideInterface() (Interface, error) {
	if err := r.Validate(); err != nil {
		return Interface{}, err
	}
	knobOwner := map[string]Owner{}
	for _, k := range r.Knobs {
		knobOwner[k.Name] = k.Owner
	}
	dataOwner := map[string]Owner{}
	for _, d := range r.Data {
		dataOwner[d.Name] = d.Owner
	}
	consumers := map[string][]string{}
	for _, u := range r.Uses {
		if knobOwner[u.Knob] == dataOwner[u.Data] {
			continue // stays inside one party; not interface material
		}
		consumers[u.Data] = append(consumers[u.Data], u.Knob)
	}
	var items []Item
	for dataName, knobNames := range consumers {
		dir := I2A
		if dataOwner[dataName] == OwnerAppP {
			dir = A2I
		}
		sort.Strings(knobNames)
		items = append(items, Item{Data: dataName, Direction: dir, Consumers: dedup(knobNames)})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].Data < items[j].Data })
	return Interface{Items: items}, nil
}

// Narrow keeps only the named data attributes of an interface — step 4 of
// the recipe. Unknown names are ignored (they were already private).
func (iface Interface) Narrow(keep ...string) Interface {
	keepSet := map[string]bool{}
	for _, k := range keep {
		keepSet[k] = true
	}
	var out Interface
	for _, it := range iface.Items {
		if keepSet[it.Data] {
			out.Items = append(out.Items, it)
		}
	}
	return out
}

func dedup(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// Figure3Recipe encodes the flash-crowd use case (Figure 3, §2 "lack of
// visibility") through the same §4 recipe: the global controller would cap
// player bitrates using the ISP's access-congestion observations, and tune
// the ISP's traffic management using the AppP's session counts and
// experience. Its wide interface derives the exact items the E1 controller
// exchanges: access congestion + a suggested sustainable rate flowing I2A,
// session experience + population flowing A2I.
func Figure3Recipe() Recipe {
	return Recipe{
		UseCase: "Figure 3: flash crowd congests the access ISP",
		Knobs: []Knob{
			{Name: "bitrate_cap", Owner: OwnerAppP},
			{Name: "cdn_choice", Owner: OwnerAppP},
			{Name: "traffic_management", Owner: OwnerInfP},
		},
		Data: []DataAttr{
			{Name: "session_qoe", Owner: OwnerAppP},
			{Name: "session_count", Owner: OwnerAppP},
			{Name: "access_congestion", Owner: OwnerInfP},
			{Name: "sustainable_session_rate", Owner: OwnerInfP},
			{Name: "bottleneck_attribution", Owner: OwnerInfP},
			{Name: "subscriber_identity", Owner: OwnerInfP}, // private
		},
		Uses: []Use{
			// The global controller caps bitrates from the ISP's view...
			{Knob: "bitrate_cap", Data: "access_congestion"},
			{Knob: "bitrate_cap", Data: "sustainable_session_rate"},
			{Knob: "bitrate_cap", Data: "session_qoe"},
			// ...suppresses futile CDN switching using attribution...
			{Knob: "cdn_choice", Data: "bottleneck_attribution"},
			{Knob: "cdn_choice", Data: "session_qoe"},
			// ...and manages ISP traffic with the AppP's population view.
			{Knob: "traffic_management", Data: "session_count"},
			{Knob: "traffic_management", Data: "session_qoe"},
			{Knob: "traffic_management", Data: "access_congestion"},
		},
	}
}

// Figure5Recipe is the paper's §4 illustrative example, encoded: the
// oscillation scenario of Figure 5 with its knobs, data, and the global
// controller's uses. Deriving its wide interface yields exactly the A2I and
// I2A items the paper lists.
func Figure5Recipe() Recipe {
	return Recipe{
		UseCase: "Figure 5: AppP CDN selection vs ISP egress selection oscillation",
		Knobs: []Knob{
			{Name: "cdn_choice", Owner: OwnerAppP},
			{Name: "bitrate", Owner: OwnerAppP},
			{Name: "peering_split", Owner: OwnerInfP},
		},
		Data: []DataAttr{
			{Name: "qoe_per_cdn", Owner: OwnerAppP},
			{Name: "traffic_volume_per_cdn", Owner: OwnerAppP},
			{Name: "peering_congestion", Owner: OwnerInfP},
			{Name: "peering_capacity", Owner: OwnerInfP},
			{Name: "current_egress", Owner: OwnerInfP},
			{Name: "user_identity", Owner: OwnerAppP},     // private: never used cross-party
			{Name: "isp_topology_full", Owner: OwnerInfP}, // private: never used cross-party
		},
		Uses: []Use{
			// The global controller sets the ISP's peering split using
			// the AppP's experience and volume data...
			{Knob: "peering_split", Data: "qoe_per_cdn"},
			{Knob: "peering_split", Data: "traffic_volume_per_cdn"},
			{Knob: "peering_split", Data: "peering_congestion"},
			{Knob: "peering_split", Data: "peering_capacity"},
			// ...and sets the AppP's CDN choice and bitrate using the
			// ISP's peering state and decisions.
			{Knob: "cdn_choice", Data: "peering_congestion"},
			{Knob: "cdn_choice", Data: "peering_capacity"},
			{Knob: "cdn_choice", Data: "current_egress"},
			{Knob: "cdn_choice", Data: "qoe_per_cdn"},
			{Knob: "bitrate", Data: "peering_congestion"},
			{Knob: "bitrate", Data: "qoe_per_cdn"},
		},
	}
}
