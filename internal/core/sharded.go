package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"eona/internal/agg"
	"eona/internal/privacy"
)

// shardChanBuffer bounds each shard's ingest queue. A full queue blocks the
// producer — backpressure, not loss — so the collector's memory stays
// bounded however fast records arrive.
const shardChanBuffer = 1024

// ShardedCollector is the cluster-mode A2I producer: N independent
// Collector shards, selected by FNV-1a hash of the session ID, each owned
// by its own goroutine and fed through a bounded channel. Readers never
// take a lock: queries travel in-band through the same channels, each shard
// replies with a snapshot (a clone of its rollup and traffic windows), and
// the merge step combines the snapshots with agg's Merge operations into
// the same QoESummary/TrafficEstimate outputs the single-goroutine
// Collector produces.
//
// Semantics relative to Collector, for the same record stream from one
// producer goroutine:
//
//   - Group key sets, export order (global first-observation order,
//     recovered from per-record sequence numbers), session counts, and
//     k-anonymity suppression decisions are identical.
//   - With Policy.NoiseEpsilon == 0 and one shard the outputs are
//     bit-identical. Across shard counts, counts and sums of integral
//     values stay exact; means of a group whose sessions span shards agree
//     to floating-point associativity (~1e-12 relative), and are exact
//     whenever all of a group's sessions hash to one shard.
//   - With NoiseEpsilon > 0 the noise stream differs from Collector's (see
//     the per-query noiser note below) but remains deterministic: it
//     depends only on (seed, query index), never on goroutine scheduling.
//
// Ingest and IngestBatch are safe for concurrent producers, and queries are
// safe concurrently with ingest (each query sees, per shard, a prefix of
// that shard's stream containing at least every record whose Ingest call
// returned before the query started). Close must not race with producers
// or queries; after Close, queries read the quiescent shard state directly.
type ShardedCollector struct {
	AppP   string
	Policy ExportPolicy

	window time.Duration
	seed   int64
	shards []*collectorShard
	wg     sync.WaitGroup

	// seq stamps every record with a global arrival index so the merge
	// step can reconstruct the single-collector export order.
	seq      atomic.Uint64
	ingested atomic.Uint64
	// queries derives a fresh deterministic noiser per query: the single
	// Collector advances one noiser stream across calls, which a
	// lock-free reader cannot share, so each sharded query draws from a
	// stream seeded by (seed, query index) instead.
	queries atomic.Uint64
	closing sync.Once
	closed  atomic.Bool
}

type collectorShard struct {
	ch  chan shardMsg
	col *Collector
	// firstSeq records the smallest arrival index at which the shard saw
	// each group, for global export-order reconstruction at merge time.
	firstSeq map[SummaryKey]uint64
}

type shardRec struct {
	rec QoERecord
	seq uint64
}

// shardMsg is the sum type flowing through a shard's channel: exactly one
// of rec (single record), batch, or snap (snapshot request) is set.
type shardMsg struct {
	rec   shardRec
	batch []shardRec
	snap  chan<- shardSnapshot
}

type shardSnapshot struct {
	rollup          *agg.Rollup[SummaryKey]
	firstSeq        map[SummaryKey]uint64
	trafficBits     map[string]*agg.Windowed
	trafficSessions map[string]*agg.Windowed
}

// NewShardedCollector builds a collector with the given number of shards
// (panics when shards < 1). window and seed behave as in NewCollector; each
// shard's private Collector gets its own seed derived from the base seed,
// so per-shard noise streams are independent and reproducible.
//
// Deprecated: use NewA2ICollector(CollectorConfig{..., Shards: n}), which
// names the parameters and covers both collector forms.
func NewShardedCollector(appP string, policy ExportPolicy, window time.Duration, seed int64, shards int) *ShardedCollector {
	if shards < 1 {
		panic(fmt.Sprintf("core: ShardedCollector needs at least 1 shard, got %d", shards))
	}
	if window <= 0 {
		window = 5 * time.Minute
	}
	sc := &ShardedCollector{
		AppP:   appP,
		Policy: policy,
		window: window,
		seed:   seed,
		shards: make([]*collectorShard, shards),
	}
	for i := range sc.shards {
		s := &collectorShard{
			ch:       make(chan shardMsg, shardChanBuffer),
			col:      NewCollector(appP, policy, window, seed+int64(2*(i+1))),
			firstSeq: make(map[SummaryKey]uint64),
		}
		sc.shards[i] = s
		sc.wg.Add(1)
		go func() {
			defer sc.wg.Done()
			s.run()
		}()
	}
	return sc
}

// shardOf hashes a session ID with FNV-1a (inlined: hash/fnv allocates) so
// all of a session's records land on one shard.
func shardOf(sessionID string, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(sessionID); i++ {
		h ^= uint64(sessionID[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

func (s *collectorShard) run() {
	for m := range s.ch {
		switch {
		case m.snap != nil:
			m.snap <- s.snapshot()
		case m.batch != nil:
			for _, r := range m.batch {
				s.ingest(r)
			}
		default:
			s.ingest(m.rec)
		}
	}
}

func (s *collectorShard) ingest(r shardRec) {
	key := SummaryKey{ClientISP: r.rec.ClientISP, CDN: r.rec.CDN, Cluster: r.rec.Cluster}
	if q, ok := s.firstSeq[key]; !ok || r.seq < q {
		s.firstSeq[key] = r.seq
	}
	s.col.Ingest(r.rec)
}

// snapshot clones the shard's state. It runs on the shard goroutine, so it
// observes a consistent prefix of the shard's stream; the clones are handed
// to the reader, which merges them without ever touching live accumulators.
func (s *collectorShard) snapshot() shardSnapshot {
	fs := make(map[SummaryKey]uint64, len(s.firstSeq))
	for k, q := range s.firstSeq {
		fs[k] = q
	}
	bits := make(map[string]*agg.Windowed, len(s.col.trafficBits))
	for cdnName, w := range s.col.trafficBits {
		bits[cdnName] = w.Clone()
	}
	sessions := make(map[string]*agg.Windowed, len(s.col.trafficSessions))
	for cdnName, w := range s.col.trafficSessions {
		sessions[cdnName] = w.Clone()
	}
	return shardSnapshot{
		rollup:          s.col.rollup.Clone(),
		firstSeq:        fs,
		trafficBits:     bits,
		trafficSessions: sessions,
	}
}

// Ingest routes one finished session to its shard, blocking only when that
// shard's queue is full.
func (sc *ShardedCollector) Ingest(rec QoERecord) {
	sc.ingested.Add(1)
	r := shardRec{rec: rec, seq: sc.seq.Add(1)}
	sc.shards[shardOf(rec.SessionID, len(sc.shards))].ch <- shardMsg{rec: r}
}

// IngestBatch routes a batch of records, one channel send per touched shard
// — the high-throughput path for frontends that deliver measurements in
// batches, amortizing channel synchronization across the batch.
func (sc *ShardedCollector) IngestBatch(recs []QoERecord) {
	if len(recs) == 0 {
		return
	}
	n := uint64(len(recs))
	base := sc.seq.Add(n) - n
	sc.ingested.Add(n)
	batches := make([][]shardRec, len(sc.shards))
	for i := range recs {
		s := shardOf(recs[i].SessionID, len(sc.shards))
		batches[s] = append(batches[s], shardRec{rec: recs[i], seq: base + uint64(i) + 1})
	}
	for s, b := range batches {
		if len(b) > 0 {
			sc.shards[s].ch <- shardMsg{batch: b}
		}
	}
}

// Ingested returns the number of records accepted so far, including any
// still queued in shard channels; Flush settles the difference.
func (sc *ShardedCollector) Ingested() uint64 { return sc.ingested.Load() }

// Shards returns the shard count.
func (sc *ShardedCollector) Shards() int { return len(sc.shards) }

// Flush blocks until every record accepted before the call has been folded
// into its shard's rollup.
func (sc *ShardedCollector) Flush() {
	if sc.closed.Load() {
		return
	}
	sc.snapshots() // an in-band round trip through every shard queue
}

// Close drains and stops the shard goroutines. Queries remain valid after
// Close (they read the quiescent shards directly); Ingest does not.
// Close is idempotent.
func (sc *ShardedCollector) Close() {
	sc.closing.Do(func() {
		for _, s := range sc.shards {
			close(s.ch)
		}
		sc.wg.Wait()
		sc.closed.Store(true)
	})
}

func (sc *ShardedCollector) snapshots() []shardSnapshot {
	out := make([]shardSnapshot, len(sc.shards))
	if sc.closed.Load() {
		// Shard goroutines have exited and Close's Wait established the
		// happens-before edge: read the quiescent state without cloning.
		for i, s := range sc.shards {
			out[i] = shardSnapshot{
				rollup:          s.col.rollup,
				firstSeq:        s.firstSeq,
				trafficBits:     s.col.trafficBits,
				trafficSessions: s.col.trafficSessions,
			}
		}
		return out
	}
	// Fan the request out to every shard before collecting any reply, so
	// the shards snapshot concurrently.
	replies := make([]chan shardSnapshot, len(sc.shards))
	for i, s := range sc.shards {
		replies[i] = make(chan shardSnapshot, 1)
		s.ch <- shardMsg{snap: replies[i]}
	}
	for i := range replies {
		out[i] = <-replies[i]
	}
	return out
}

// mergedState is the reader-side combination of all shard snapshots.
type mergedState struct {
	rollup *agg.Rollup[SummaryKey]
	// keys holds the merged groups in global first-observation order —
	// the order a single Collector would have exported.
	keys            []SummaryKey
	trafficBits     map[string]*agg.Windowed
	trafficSessions map[string]*agg.Windowed
}

func (sc *ShardedCollector) merge() mergedState {
	snaps := sc.snapshots()
	m := mergedState{
		rollup:          agg.NewRollup[SummaryKey](),
		trafficBits:     make(map[string]*agg.Windowed),
		trafficSessions: make(map[string]*agg.Windowed),
	}
	firstSeq := make(map[SummaryKey]uint64)
	for _, sn := range snaps {
		m.rollup.Merge(sn.rollup)
		for k, q := range sn.firstSeq {
			if cur, ok := firstSeq[k]; !ok || q < cur {
				firstSeq[k] = q
			}
		}
		mergeWindowedInto(m.trafficBits, sn.trafficBits)
		mergeWindowedInto(m.trafficSessions, sn.trafficSessions)
	}
	m.keys = m.rollup.Keys()
	sort.Slice(m.keys, func(i, j int) bool { return firstSeq[m.keys[i]] < firstSeq[m.keys[j]] })
	return m
}

func mergeWindowedInto(dst, src map[string]*agg.Windowed) {
	for k, w := range src {
		if d, ok := dst[k]; ok {
			d.Merge(w)
		} else {
			dst[k] = w.Clone()
		}
	}
}

// queryNoisers returns fresh noisers for one query, seeded by the query
// index so results are reproducible independent of scheduling.
func (sc *ShardedCollector) queryNoisers(policy ExportPolicy) (noiser, volNoiser *privacy.Noiser) {
	q := int64(sc.queries.Add(1))
	seed := sc.seed + q*1_000_003
	return privacy.NewNoiser(policy.NoiseEpsilon, 1, seed),
		privacy.NewNoiser(policy.NoiseEpsilon, volumeSensitivity, seed+1)
}

// Summaries merges every shard's rollup and blinds the result under the
// collector's own policy.
func (sc *ShardedCollector) Summaries() []QoESummary {
	m := sc.merge()
	noiser, _ := sc.queryNoisers(sc.Policy)
	return summarizeRollup(m.rollup, m.keys, sc.Policy, noiser)
}

// SummariesUnder renders the merged summaries under a different policy —
// the per-collaborator export path, mirroring Collector.SummariesUnder.
func (sc *ShardedCollector) SummariesUnder(policy ExportPolicy, seed int64) []QoESummary {
	m := sc.merge()
	return summarizeRollup(m.rollup, m.keys, policy, privacy.NewNoiser(policy.NoiseEpsilon, 1, seed))
}

// SummaryFor returns the merged summary for one group, if it survives
// blinding.
func (sc *ShardedCollector) SummaryFor(key SummaryKey) (QoESummary, bool) {
	m := sc.merge()
	noiser, _ := sc.queryNoisers(sc.Policy)
	return summarizeGroup(m.rollup.Group(key), key, sc.Policy, noiser)
}

// TrafficEstimates merges every shard's traffic windows and renders per-CDN
// demand estimates over the window ending at now.
func (sc *ShardedCollector) TrafficEstimates(now time.Duration) []TrafficEstimate {
	m := sc.merge()
	noiser, volNoiser := sc.queryNoisers(sc.Policy)
	return trafficEstimates(sc.AppP, m.trafficBits, m.trafficSessions,
		sc.window, now, sc.Policy, noiser, volNoiser)
}
