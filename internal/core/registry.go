package core

import (
	"fmt"
	"sort"
	"sync"
)

// Surface names one exported interface surface, for per-collaborator
// gating.
type Surface string

// The exportable surfaces.
const (
	SurfaceQoESummaries Surface = "a2i.qoe_summaries"
	SurfaceTraffic      Surface = "a2i.traffic_estimates"
	SurfacePeering      Surface = "i2a.peering_info"
	SurfaceAttribution  Surface = "i2a.attribution"
	SurfaceServerHints  Surface = "i2a.server_hints"
)

// Partner is one collaborator's standing with this provider: which
// surfaces it may read and under which blinding policy — §3's "choose the
// subset of collaborators to export EONA interfaces [to]" plus §4's "must
// be able to specify what can or cannot be shared".
type Partner struct {
	Name string
	// Policy blinds this partner's A2I exports.
	Policy ExportPolicy
	// NoiseSeed keeps the partner's noise stream independent.
	NoiseSeed int64
	// Surfaces this partner may read.
	Surfaces map[Surface]bool
}

// Registry tracks collaborators. Safe for concurrent use (looking-glass
// handlers consult it per request).
type Registry struct {
	mu       sync.RWMutex
	partners map[string]*Partner
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{partners: make(map[string]*Partner)}
}

// Register adds or replaces a partner. A copy is stored.
func (r *Registry) Register(p Partner) {
	if p.Name == "" {
		panic("core: partner needs a name")
	}
	cp := p
	cp.Surfaces = make(map[Surface]bool, len(p.Surfaces))
	for s, ok := range p.Surfaces {
		cp.Surfaces[s] = ok
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.partners[p.Name] = &cp
}

// Remove opts a partner out entirely ("participation in EONA is optional").
func (r *Registry) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.partners, name)
}

// Partner returns a copy of the named partner's standing.
func (r *Registry) Partner(name string) (Partner, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.partners[name]
	if !ok {
		return Partner{}, false
	}
	cp := *p
	cp.Surfaces = make(map[Surface]bool, len(p.Surfaces))
	for s, v := range p.Surfaces {
		cp.Surfaces[s] = v
	}
	return cp, true
}

// Allowed reports whether the named partner may read a surface. Unknown
// partners may read nothing.
func (r *Registry) Allowed(name string, s Surface) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.partners[name]
	return ok && p.Surfaces[s]
}

// PolicyFor returns the partner's blinding policy and noise seed; unknown
// partners get the most restrictive default (suppress everything via an
// impossible group floor).
func (r *Registry) PolicyFor(name string) (ExportPolicy, int64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.partners[name]
	if !ok {
		return ExportPolicy{MinGroupSessions: ^uint64(0)}, 0
	}
	return p.Policy, p.NoiseSeed
}

// Names lists registered partners, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.partners))
	for n := range r.partners {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// String summarizes the registry for operator logs.
func (r *Registry) String() string {
	names := r.Names()
	return fmt.Sprintf("core.Registry(%d partners: %v)", len(names), names)
}
