package lookingglass

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// HistoryResponse wraps one historical read-model query: the stream offset
// the data was materialized at, the newest offset the journal knows, and
// the rebuilt view itself.
type HistoryResponse struct {
	Offset    int `json:"offset"`
	MaxOffset int `json:"max_offset"`
	Data      any `json:"data"`
}

// HistoryHandler serves time-travel queries over a journaled read model:
// GET ?offset=N rebuilds the view as it stood after the first N journal
// records and returns it. offset omitted or -1 means the newest journaled
// offset. maxOffset reports the stream length; at materializes the view —
// typically projection.MaterializeAt over a recovered journal, which is
// O(distance to the nearest checkpoint), not O(history).
//
// The handler is read-only and idempotent; mount it unauthenticated or
// behind whatever auth the caller's registry applies. Errors use the
// unified {"error":{...}} envelope like every other /v1 endpoint.
func HistoryHandler(maxOffset func() int, at func(offset int) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		max := maxOffset()
		offset := max
		if q := r.URL.Query().Get("offset"); q != "" {
			n, err := strconv.Atoi(q)
			if err != nil {
				WriteError(w, http.StatusBadRequest, fmt.Sprintf("bad offset %q", q))
				return
			}
			if n >= 0 {
				offset = n
			}
		}
		if offset > max {
			WriteError(w, http.StatusBadRequest, fmt.Sprintf("offset %d beyond journal end %d", offset, max))
			return
		}
		data, err := at(offset)
		if err != nil {
			WriteError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(HistoryResponse{Offset: offset, MaxOffset: max, Data: data})
	}
}
