package lookingglass

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"eona/internal/auth"
)

func decodeEnvelope(t *testing.T, body string) APIError {
	t.Helper()
	var ee ErrorEnvelope
	if err := json.Unmarshal([]byte(body), &ee); err != nil || ee.Err.Message == "" {
		t.Fatalf("body is not the unified error envelope: %q", body)
	}
	return ee.Err
}

// TestRoutesDispatch pins the registry's dispatch and error surface: exact
// path match, 404/405 with the unified envelope, Allow header on 405, scope
// guarding, and public routes.
func TestRoutesDispatch(t *testing.T) {
	store := auth.NewStore()
	store.Register("tok", "partner", auth.ScopeCtlRead)
	rt := NewRoutes(store, nil)
	rt.HandleFunc("GET", "/v1/health", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	})
	var sawCollab string
	rt.Handle("GET", "/v1/guarded", auth.ScopeCtlRead, func(w http.ResponseWriter, r *http.Request, collab string) {
		sawCollab = collab
		w.Write([]byte("in"))
	})
	rt.Handle("POST", "/v1/guarded", auth.ScopeCtlWrite, func(w http.ResponseWriter, r *http.Request, _ string) {})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	get := func(path, token string) (int, string, http.Header) {
		req, _ := http.NewRequest("GET", ts.URL+path, nil)
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String(), resp.Header
	}

	// Public route needs no token.
	if code, body, _ := get("/v1/health", ""); code != 200 || body != "ok" {
		t.Errorf("health = %d %q", code, body)
	}
	// Unknown path → enveloped 404.
	if code, body, _ := get("/v1/nope", ""); code != 404 || decodeEnvelope(t, body).Code != 404 {
		t.Errorf("unknown path = %d %q", code, body)
	}
	// Known path, unregistered method → enveloped 405 with Allow.
	req, _ := http.NewRequest("PUT", ts.URL+"/v1/guarded", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("PUT guarded = %d", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != "GET, POST" {
		t.Errorf("Allow = %q, want \"GET, POST\"", allow)
	}
	// Scope guard: missing token, granted, not granted.
	if code, body, _ := get("/v1/guarded", ""); code != 401 || decodeEnvelope(t, body).Code != 401 {
		t.Errorf("guarded without token = %d %q", code, body)
	}
	if code, body, _ := get("/v1/guarded", "tok"); code != 200 || body != "in" || sawCollab != "partner" {
		t.Errorf("guarded with token = %d %q (collab %q)", code, body, sawCollab)
	}

	// Table reflects registration order.
	tab := rt.Table()
	if len(tab) != 3 || tab[0].Pattern != "/v1/health" || tab[1].Scope != auth.ScopeCtlRead {
		t.Errorf("table = %+v", tab)
	}
}

// TestRoutesPanics pins the registry's wiring-bug panics.
func TestRoutesPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	rt := NewRoutes(nil, nil)
	mustPanic("scoped route without store", func() {
		rt.Handle("GET", "/v1/x", auth.ScopeCtlRead, nil)
	})
	rt.HandleFunc("GET", "/v1/x", func(http.ResponseWriter, *http.Request) {})
	mustPanic("duplicate route", func() {
		rt.HandleFunc("GET", "/v1/x", func(http.ResponseWriter, *http.Request) {})
	})
}

// TestHistoryHandlerEnvelope pins the bugfix: HistoryHandler errors used to
// be raw text/plain; they must now speak the unified JSON envelope.
func TestHistoryHandlerEnvelope(t *testing.T) {
	h := HistoryHandler(
		func() int { return 10 },
		func(offset int) (any, error) { return map[string]int{"offset": offset}, nil },
	)
	for _, tc := range []struct {
		query string
		want  int
	}{
		{"?offset=abc", 400},
		{"?offset=11", 400},
	} {
		rr := httptest.NewRecorder()
		h(rr, httptest.NewRequest("GET", "/v1/history/summaries"+tc.query, nil))
		if rr.Code != tc.want {
			t.Errorf("%s: code %d, want %d", tc.query, rr.Code, tc.want)
		}
		if ae := decodeEnvelope(t, rr.Body.String()); ae.Code != tc.want {
			t.Errorf("%s: envelope code %d, want %d", tc.query, ae.Code, tc.want)
		}
		if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: content type %q", tc.query, ct)
		}
	}
}
