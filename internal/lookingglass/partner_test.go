package lookingglass

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"eona/internal/auth"
	"eona/internal/core"
)

// newHTTPTestServer serves srv over loopback and returns its base URL.
func newHTTPTestServer(t *testing.T, srv *Server) string {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// Per-partner exports end to end: two collaborators with different tokens
// query the same endpoint and receive differently-blinded views, wired
// through a core.Registry.
func TestPerPartnerBlindedExports(t *testing.T) {
	col := core.NewCollector("vod", core.ExportPolicy{}, time.Minute, 1)
	for i := 0; i < 5; i++ {
		col.Ingest(core.QoERecord{ClientISP: "isp1", CDN: "cdnX", Cluster: "east", Score: 77, PlayTime: 10 * time.Minute})
	}
	col.Ingest(core.QoERecord{ClientISP: "isp1", CDN: "cdnY", Cluster: "west", Score: 40, PlayTime: 10 * time.Minute})

	reg := core.NewRegistry()
	reg.Register(core.Partner{
		Name:      "trusted-isp",
		Policy:    core.ExportPolicy{},
		NoiseSeed: 1,
		Surfaces:  map[core.Surface]bool{core.SurfaceQoESummaries: true},
	})
	reg.Register(core.Partner{
		Name:      "restricted-isp",
		Policy:    core.ExportPolicy{MinGroupSessions: 3, CoarsenScoreStep: 10},
		NoiseSeed: 2,
		Surfaces:  map[core.Surface]bool{core.SurfaceQoESummaries: true},
	})

	store := auth.NewStore()
	store.Register("tok-trusted", "trusted-isp", auth.ScopeA2IQoE)
	store.Register("tok-restricted", "restricted-isp", auth.ScopeA2IQoE)
	srv := NewServer(store, nil, Sources{
		QoESummariesFor: func(partner string) []core.QoESummary {
			if !reg.Allowed(partner, core.SurfaceQoESummaries) {
				return nil
			}
			pol, seed := reg.PolicyFor(partner)
			return col.SummariesUnder(pol, seed)
		},
	})
	ts := newHTTPTestServer(t, srv)
	ctx := context.Background()

	trusted, err := NewClient(ts, "tok-trusted", nil).QoESummaries(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(trusted) != 2 || trusted[0].MeanScore != 77 {
		t.Errorf("trusted view = %+v", trusted)
	}

	restricted, err := NewClient(ts, "tok-restricted", nil).QoESummaries(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(restricted) != 1 {
		t.Fatalf("restricted view has %d groups, want 1 (small group suppressed)", len(restricted))
	}
	if restricted[0].MeanScore != 70 {
		t.Errorf("restricted score = %v, want 70 (coarsened)", restricted[0].MeanScore)
	}
}

func TestPerPartnerVariantPreferredOverPlain(t *testing.T) {
	store := auth.NewStore()
	store.Register("tok", "partner-x", auth.ScopeA2IQoE)
	var sawPartner string
	srv := NewServer(store, nil, Sources{
		QoESummaries: func() []core.QoESummary {
			t.Error("plain variant called despite per-partner variant present")
			return nil
		},
		QoESummariesFor: func(partner string) []core.QoESummary {
			sawPartner = partner
			return nil
		},
	})
	ts := newHTTPTestServer(t, srv)
	if _, err := NewClient(ts, "tok", nil).QoESummaries(context.Background()); err != nil {
		t.Fatal(err)
	}
	if sawPartner != "partner-x" {
		t.Errorf("partner passed through = %q, want partner-x", sawPartner)
	}
}
