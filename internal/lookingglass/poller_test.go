package lookingglass

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"eona/internal/core"
)

func TestPollPublishesAndRefreshes(t *testing.T) {
	var mu sync.Mutex
	val := 1
	fetch := func(context.Context) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return val, nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	snap, done := Poll(ctx, 5*time.Millisecond, fetch)

	waitFor(t, func() bool { v, _, ok := snap.Get(); return ok && v == 1 })
	mu.Lock()
	val = 2
	mu.Unlock()
	waitFor(t, func() bool { v, _, _ := snap.Get(); return v == 2 })

	if age, ok := snap.Age(time.Now()); !ok || age < 0 || age > time.Minute {
		t.Errorf("Age = %v, %v", age, ok)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("poller did not stop on cancel")
	}
}

func TestPollKeepsStaleValueOnError(t *testing.T) {
	var mu sync.Mutex
	fail := false
	fetch := func(context.Context) (string, error) {
		mu.Lock()
		defer mu.Unlock()
		if fail {
			return "", errors.New("peer down")
		}
		return "fresh", nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	snap, _ := Poll(ctx, 5*time.Millisecond, fetch)
	waitFor(t, func() bool { _, _, ok := snap.Get(); return ok })

	mu.Lock()
	fail = true
	mu.Unlock()
	waitFor(t, func() bool { return snap.Err() != nil })

	// Stale beats absent: the last good value survives the outage.
	if v, _, ok := snap.Get(); !ok || v != "fresh" {
		t.Errorf("stale value lost during outage: %q, %v", v, ok)
	}

	mu.Lock()
	fail = false
	mu.Unlock()
	waitFor(t, func() bool { return snap.Err() == nil })
}

func TestPollNeverSucceeded(t *testing.T) {
	fetch := func(context.Context) (int, error) { return 0, errors.New("always down") }
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	snap, _ := Poll(ctx, 5*time.Millisecond, fetch)
	waitFor(t, func() bool { return snap.Err() != nil })
	if _, _, ok := snap.Get(); ok {
		t.Error("Get reported ok with no successful poll")
	}
	if _, ok := snap.Age(time.Now()); ok {
		t.Error("Age reported ok with no successful poll")
	}
}

// Regression: while polls fail, Get's fetchedAt freezes at the last success
// but LastAttempt keeps advancing — a control loop can tell "failing" from
// "slow interval". Before the fix, fail() recorded no timestamp and a peer
// that died kept reporting the stale fetchedAt as its only clock.
func TestSnapshotLastAttemptAdvancesOnFailure(t *testing.T) {
	var mu sync.Mutex
	fail := false
	fetch := func(context.Context) (string, error) {
		mu.Lock()
		defer mu.Unlock()
		if fail {
			return "", errors.New("peer down")
		}
		return "fresh", nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	snap, _ := Poll(ctx, 2*time.Millisecond, fetch)
	waitFor(t, func() bool { _, _, ok := snap.Get(); return ok })
	_, fetchedAt, _ := snap.Get()
	firstAttempt, ok := snap.LastAttempt()
	if !ok {
		t.Fatal("LastAttempt not recorded after a successful poll")
	}
	if firstAttempt.Before(fetchedAt) {
		t.Errorf("LastAttempt %v before fetchedAt %v after success", firstAttempt, fetchedAt)
	}

	mu.Lock()
	fail = true
	mu.Unlock()
	waitFor(t, func() bool { return snap.Err() != nil })
	// Let at least one more failing poll land.
	waitFor(t, func() bool {
		at, _ := snap.LastAttempt()
		return at.After(firstAttempt)
	})

	_, fetchedAt2, _ := snap.Get()
	if !fetchedAt2.Equal(fetchedAt) {
		t.Errorf("fetchedAt moved during outage: %v -> %v", fetchedAt, fetchedAt2)
	}
	at, _ := snap.LastAttempt()
	if !at.After(fetchedAt) {
		t.Errorf("LastAttempt %v did not advance past stale fetchedAt %v", at, fetchedAt)
	}
	if since, ok := snap.SinceAttempt(time.Now()); !ok || since < 0 || since > time.Minute {
		t.Errorf("SinceAttempt = %v, %v", since, ok)
	}
}

func TestSnapshotLastAttemptBeforeAnyPoll(t *testing.T) {
	var s Snapshot[int]
	if _, ok := s.LastAttempt(); ok {
		t.Error("LastAttempt ok with no poll completed")
	}
	if _, ok := s.SinceAttempt(time.Now()); ok {
		t.Error("SinceAttempt ok with no poll completed")
	}
}

func TestSnapshotLastAttemptOnNeverSucceeded(t *testing.T) {
	fetch := func(context.Context) (int, error) { return 0, errors.New("always down") }
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	snap, _ := Poll(ctx, 2*time.Millisecond, fetch)
	waitFor(t, func() bool { return snap.Err() != nil })
	if _, _, ok := snap.Get(); ok {
		t.Error("Get ok with no success")
	}
	// Even with zero successes the attempt clock must run: this is what
	// distinguishes "failing since start" from "not polling at all".
	if _, ok := snap.LastAttempt(); !ok {
		t.Error("LastAttempt not recorded for failing-only poller")
	}
}

func TestPollBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero interval did not panic")
		}
	}()
	Poll(context.Background(), 0, func(context.Context) (int, error) { return 0, nil })
}

func TestPollAgainstRealServer(t *testing.T) {
	ts, store := newTestServer(t, nil, testSources())
	client := NewClient(ts.URL, "tok-full", ts.Client())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	snap, _ := Poll(ctx, 10*time.Millisecond, func(ctx context.Context) ([]core.PeeringInfo, error) {
		return client.PeeringInfo(ctx, "cdnX")
	})
	waitFor(t, func() bool { _, _, ok := snap.Get(); return ok })
	v, _, _ := snap.Get()
	if len(v) != 1 || v[0].PeeringID != "B" {
		t.Errorf("polled peering = %+v", v)
	}

	// Revoke the token mid-flight: the poller keeps the stale snapshot
	// and surfaces the error.
	store.Revoke("tok-full")
	waitFor(t, func() bool { return snap.Err() != nil })
	var se *StatusError
	if !errors.As(snap.Err(), &se) || se.Code != 401 {
		t.Errorf("post-revocation poll error = %v, want 401", snap.Err())
	}
	if v, _, ok := snap.Get(); !ok || len(v) != 1 {
		t.Error("stale snapshot lost after revocation")
	}
}

func TestSnapshotConcurrentAccess(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	snap, _ := Poll(ctx, time.Millisecond, func(context.Context) (int, error) {
		n++
		return n, nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				snap.Get()
				snap.Err()
				snap.Age(time.Now())
				snap.LastAttempt()
				snap.SinceAttempt(time.Now())
			}
		}()
	}
	wg.Wait()
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not met within deadline")
}
