package lookingglass

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"eona/internal/core"
	"eona/internal/netsim"
)

// sharedISP builds a small InfP view: an access link plus two peering
// links, with greedy flows saturating peering B, wrapped in a
// SharedNetwork so the I2A surfaces can be served lock-free.
func sharedISP() (*netsim.SharedNetwork, []netsim.LinkID) {
	topo := netsim.NewTopology()
	access := topo.AddLink("clients", "border", 100e6, 2*time.Millisecond, "access")
	peerB := topo.AddLink("border", "cdnX", 50e6, time.Millisecond, "peering-B")
	peerC := topo.AddLink("border", "cdnY", 200e6, time.Millisecond, "peering-C")
	n := netsim.NewNetwork(topo)
	n.Batch(func() {
		for k := 0; k < 4; k++ {
			n.StartFlow(netsim.Path{access, peerB}, math.Inf(1), "cdnX")
		}
		n.StartFlow(netsim.Path{access, peerC}, 10e6, "cdnY")
	})
	s := netsim.NewShared(n, netsim.SharedConfig{})
	return s, []netsim.LinkID{access.ID, peerB.ID, peerC.ID}
}

// snapshotSources serves the I2A surfaces straight off the shared
// network's latest snapshot — the Server never touches the live Network,
// so request handling cannot race the writer.
func snapshotSources(s *netsim.SharedNetwork, access, peerB, peerC netsim.LinkID) Sources {
	peering := func(sn *netsim.Snapshot, id netsim.LinkID, name, cdn string, current bool) core.PeeringInfo {
		return core.PeeringInfo{
			PeeringID:   name,
			CDN:         cdn,
			Congestion:  sn.Congestion(id),
			HeadroomBps: sn.Headroom(id),
			CapacityBps: sn.Capacity(id),
			Current:     current,
		}
	}
	return Sources{
		PeeringInfo: func(cdn string) []core.PeeringInfo {
			sn := s.Snapshot()
			all := []core.PeeringInfo{
				peering(sn, peerB, "peering-B", "cdnX", true),
				peering(sn, peerC, "peering-C", "cdnY", false),
			}
			if cdn == "" {
				return all
			}
			var out []core.PeeringInfo
			for _, p := range all {
				if p.CDN == cdn {
					out = append(out, p)
				}
			}
			return out
		},
		Attribution: func(cdn string) (core.Attribution, bool) {
			sn := s.Snapshot()
			return core.Attribution{
				CDN:     cdn,
				Segment: core.SegmentAccess,
				Level:   sn.Congestion(access),
			}, true
		},
	}
}

// TestServerFromSharedSnapshotUnderChurn is the I2A wiring pin for the
// shared network: a lookingglass Server answers peering/attribution
// queries from published snapshots while a Poller and direct snapshot
// readers run concurrently with capacity churn — all under -race — and a
// mid-poll SetLinkCapacity is observed by the poller within a few
// intervals.
func TestServerFromSharedSnapshotUnderChurn(t *testing.T) {
	shared, ids := sharedISP()
	defer shared.Close()
	access, peerB, peerC := ids[0], ids[1], ids[2]

	ts, _ := newTestServer(t, nil, snapshotSources(shared, access, peerB, peerC))
	client := NewClient(ts.URL, "tok-full", ts.Client())

	// Saturated 50e6 peering under four greedy flows: severe congestion.
	pre, err := client.PeeringInfo(context.Background(), "cdnX")
	if err != nil {
		t.Fatal(err)
	}
	if len(pre) != 1 || pre[0].Congestion != netsim.CongestionSevere || pre[0].CapacityBps != 50e6 {
		t.Fatalf("pre-churn peering = %+v", pre)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	snap, done := PollWith(ctx, PollConfig{Interval: 2 * time.Millisecond},
		func(ctx context.Context) ([]core.PeeringInfo, error) {
			return client.PeeringInfo(ctx, "cdnX")
		})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Direct snapshot readers, racing the poller and the writer.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sn := shared.Snapshot()
				_ = sn.Congestion(peerB)
				_ = sn.Headroom(peerC)
				_ = sn.Utilization(access)
			}
		}(g)
	}
	// Writer: capacity churn on the uncongested peering while the poller
	// watches the congested one.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			shared.SetLinkCapacity(peerC, 150e6+1e6*float64(i%10))
		}
	}()

	// Mid-poll capacity upgrade of peering B: 50e6 → 500e6 drops its
	// congestion below severe (flows are capped by the 100e6 access link).
	time.Sleep(10 * time.Millisecond)
	shared.SetLinkCapacity(peerB, 500e6)

	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, _, ok := snap.Get(); ok && len(v) == 1 &&
			v[0].CapacityBps == 500e6 && v[0].Congestion != netsim.CongestionSevere {
			break
		}
		if time.Now().After(deadline) {
			v, _, ok := snap.Get()
			t.Fatalf("poller never observed the capacity change: %+v ok=%v", v, ok)
		}
		time.Sleep(time.Millisecond)
	}

	close(stop)
	wg.Wait()
	cancel()
	<-done

	// Attribution answers from the same snapshot plane.
	att, err := client.Attribution(context.Background(), "cdnX")
	if err != nil {
		t.Fatal(err)
	}
	if att.Level != shared.Congestion(access) {
		t.Errorf("attribution level %v != snapshot congestion %v", att.Level, shared.Congestion(access))
	}
	if h := snap.Health(time.Now()); h.Successes == 0 {
		t.Errorf("poller health recorded no successes: %+v", h)
	}
}
