package lookingglass

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"eona/internal/core"
	"eona/internal/wire"
)

// Client consumes a peer's looking-glass server. It transparently uses
// conditional requests: each URL's last ETag and envelope are cached, and a
// 304 Not Modified reuses the cached envelope — polling an unchanged
// endpoint costs a header round trip, not a body.
type Client struct {
	base  string
	token string
	http  *http.Client

	mu    sync.Mutex
	cache map[string]cachedResponse
}

type cachedResponse struct {
	etag string
	env  wire.Envelope
}

// NewClient targets baseURL (e.g. "http://peer.example:8080") with a bearer
// token. httpClient may be nil; a client with a 10s timeout is used.
func NewClient(baseURL, token string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{base: baseURL, token: token, http: httpClient, cache: make(map[string]cachedResponse)}
}

// maxResponseBytes bounds response bodies; EONA exports are aggregates and
// should be small.
const maxResponseBytes = 16 << 20

// maxErrorMessageBytes bounds how much of an error response body ends up in
// a StatusError. A misbehaving peer can return megabytes of garbage with its
// 500; that belongs on the floor, not in every log line and wrapped error up
// the stack.
const maxErrorMessageBytes = 1 << 10

func truncateMessage(s string) string {
	if len(s) <= maxErrorMessageBytes {
		return s
	}
	return s[:maxErrorMessageBytes] + "... (truncated)"
}

// StatusError reports a non-2xx looking-glass response.
type StatusError struct {
	Code    int
	Message string
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("lookingglass: HTTP %d: %s", e.Code, e.Message)
}

func (c *Client) get(ctx context.Context, path string, query url.Values, want wire.MessageType) (wire.Envelope, error) {
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return wire.Envelope{}, fmt.Errorf("lookingglass: build request: %w", err)
	}
	req.Header.Set("Authorization", "Bearer "+c.token)
	c.mu.Lock()
	cached, hasCached := c.cache[u]
	c.mu.Unlock()
	if hasCached {
		req.Header.Set("If-None-Match", cached.etag)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return wire.Envelope{}, fmt.Errorf("lookingglass: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotModified && hasCached {
		return cached.env, nil
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return wire.Envelope{}, fmt.Errorf("lookingglass: read %s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		// Error responses carry the unified {"error":{...}} envelope; older
		// peers used a wire TypeError envelope — accept both, else fall back
		// to the raw body.
		var ee ErrorEnvelope
		if jerr := json.Unmarshal(body, &ee); jerr == nil && ee.Err.Message != "" {
			return wire.Envelope{}, &StatusError{Code: resp.StatusCode, Message: truncateMessage(ee.Err.Message)}
		}
		if env, derr := wire.Decode(body); derr == nil {
			if eb, perr := wire.DecodePayload[wire.ErrorBody](env, wire.TypeError); perr == nil {
				return wire.Envelope{}, &StatusError{Code: resp.StatusCode, Message: truncateMessage(eb.Message)}
			}
		}
		return wire.Envelope{}, &StatusError{Code: resp.StatusCode, Message: truncateMessage(string(body))}
	}
	env, err := wire.Decode(body)
	if err != nil {
		return wire.Envelope{}, err
	}
	if env.Type != want {
		return wire.Envelope{}, fmt.Errorf("%w: got %q, want %q", wire.ErrType, env.Type, want)
	}
	if etag := resp.Header.Get("ETag"); etag != "" {
		c.mu.Lock()
		c.cache[u] = cachedResponse{etag: etag, env: env}
		c.mu.Unlock()
	}
	return env, nil
}

// QoESummaries fetches the peer AppP's A2I summaries.
func (c *Client) QoESummaries(ctx context.Context) ([]core.QoESummary, error) {
	env, err := c.get(ctx, "/v1/a2i/summaries", nil, wire.TypeQoESummaries)
	if err != nil {
		return nil, err
	}
	return wire.DecodePayload[[]core.QoESummary](env, wire.TypeQoESummaries)
}

// TrafficEstimates fetches the peer AppP's A2I traffic estimates.
func (c *Client) TrafficEstimates(ctx context.Context) ([]core.TrafficEstimate, error) {
	env, err := c.get(ctx, "/v1/a2i/traffic", nil, wire.TypeTrafficEstimates)
	if err != nil {
		return nil, err
	}
	return wire.DecodePayload[[]core.TrafficEstimate](env, wire.TypeTrafficEstimates)
}

// PeeringInfo fetches the peer InfP's peering hints, optionally filtered by
// CDN.
func (c *Client) PeeringInfo(ctx context.Context, cdn string) ([]core.PeeringInfo, error) {
	q := url.Values{}
	if cdn != "" {
		q.Set("cdn", cdn)
	}
	env, err := c.get(ctx, "/v1/i2a/peering", q, wire.TypePeeringInfo)
	if err != nil {
		return nil, err
	}
	return wire.DecodePayload[[]core.PeeringInfo](env, wire.TypePeeringInfo)
}

// Attribution fetches the peer InfP's bottleneck attribution for a CDN.
func (c *Client) Attribution(ctx context.Context, cdn string) (core.Attribution, error) {
	q := url.Values{}
	q.Set("cdn", cdn)
	env, err := c.get(ctx, "/v1/i2a/attribution", q, wire.TypeAttribution)
	if err != nil {
		return core.Attribution{}, err
	}
	return wire.DecodePayload[core.Attribution](env, wire.TypeAttribution)
}

// ServerHints fetches the peer CDN/InfP's alternative-server hints.
func (c *Client) ServerHints(ctx context.Context, cdn, cluster string) ([]core.ServerHint, error) {
	q := url.Values{}
	q.Set("cdn", cdn)
	q.Set("cluster", cluster)
	env, err := c.get(ctx, "/v1/i2a/hints", q, wire.TypeServerHints)
	if err != nil {
		return nil, err
	}
	return wire.DecodePayload[[]core.ServerHint](env, wire.TypeServerHints)
}
