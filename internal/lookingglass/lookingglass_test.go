package lookingglass

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"eona/internal/auth"
	"eona/internal/core"
	"eona/internal/netsim"
)

func testSources() Sources {
	return Sources{
		QoESummaries: func() []core.QoESummary {
			return []core.QoESummary{{
				Key:       core.SummaryKey{ClientISP: "isp1", CDN: "cdnX", Cluster: "east"},
				Sessions:  10,
				MeanScore: 82,
			}}
		},
		TrafficEstimates: func() []core.TrafficEstimate {
			return []core.TrafficEstimate{{AppP: "vod", CDN: "cdnX", VolumeBps: 5e8, Sessions: 10}}
		},
		PeeringInfo: func(cdn string) []core.PeeringInfo {
			out := []core.PeeringInfo{
				{PeeringID: "B", CDN: "cdnX", Congestion: netsim.CongestionHigh, HeadroomBps: 1e6, CapacityBps: 1e8, Current: true},
				{PeeringID: "C", CDN: "cdnY", Congestion: netsim.CongestionNone, HeadroomBps: 4e8, CapacityBps: 5e8},
			}
			if cdn == "" {
				return out
			}
			var filtered []core.PeeringInfo
			for _, p := range out {
				if p.CDN == cdn {
					filtered = append(filtered, p)
				}
			}
			return filtered
		},
		Attribution: func(cdn string) (core.Attribution, bool) {
			if cdn != "cdnX" {
				return core.Attribution{}, false
			}
			return core.Attribution{CDN: "cdnX", Segment: core.SegmentAccess, Level: netsim.CongestionSevere, SuggestedCapBps: 1.5e6}, true
		},
		ServerHints: func(cdn, cluster string) []core.ServerHint {
			return []core.ServerHint{{ServerID: cluster + "-s01", Cluster: cluster, Load: 0.4, CacheLikely: true}}
		},
	}
}

func newTestServer(t *testing.T, limiter *auth.RateLimiter, src Sources) (*httptest.Server, *auth.Store) {
	t.Helper()
	store := auth.NewStore()
	store.Register("tok-full", "partner", auth.ScopeA2IQoE, auth.ScopeA2ITraffic,
		auth.ScopeI2APeering, auth.ScopeI2AAttrib, auth.ScopeI2AHints)
	store.Register("tok-narrow", "restricted", auth.ScopeI2APeering)
	srv := NewServer(store, limiter, src)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, store
}

func TestEndToEndAllSurfaces(t *testing.T) {
	ts, _ := newTestServer(t, nil, testSources())
	c := NewClient(ts.URL, "tok-full", ts.Client())
	ctx := context.Background()

	sums, err := c.QoESummaries(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 1 || sums[0].MeanScore != 82 {
		t.Errorf("summaries = %+v", sums)
	}

	traffic, err := c.TrafficEstimates(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(traffic) != 1 || traffic[0].VolumeBps != 5e8 {
		t.Errorf("traffic = %+v", traffic)
	}

	peering, err := c.PeeringInfo(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(peering) != 2 {
		t.Errorf("peering (all) = %+v", peering)
	}
	peeringX, err := c.PeeringInfo(ctx, "cdnX")
	if err != nil {
		t.Fatal(err)
	}
	if len(peeringX) != 1 || peeringX[0].PeeringID != "B" || !peeringX[0].Current {
		t.Errorf("peering (cdnX) = %+v", peeringX)
	}

	att, err := c.Attribution(ctx, "cdnX")
	if err != nil {
		t.Fatal(err)
	}
	if att.Segment != core.SegmentAccess || att.SuggestedCapBps != 1.5e6 {
		t.Errorf("attribution = %+v", att)
	}

	hints, err := c.ServerHints(ctx, "cdnX", "east")
	if err != nil {
		t.Fatal(err)
	}
	if len(hints) != 1 || hints[0].ServerID != "east-s01" || !hints[0].CacheLikely {
		t.Errorf("hints = %+v", hints)
	}
}

func TestAuthRejections(t *testing.T) {
	ts, _ := newTestServer(t, nil, testSources())
	ctx := context.Background()

	// No token.
	noTok := NewClient(ts.URL, "", ts.Client())
	var se *StatusError
	if _, err := noTok.PeeringInfo(ctx, ""); !errors.As(err, &se) || se.Code != 401 {
		t.Errorf("missing token err = %v, want 401", err)
	}

	// Wrong token.
	bad := NewClient(ts.URL, "nope", ts.Client())
	if _, err := bad.PeeringInfo(ctx, ""); !errors.As(err, &se) || se.Code != 401 {
		t.Errorf("bad token err = %v, want 401", err)
	}

	// Valid token, missing scope.
	narrow := NewClient(ts.URL, "tok-narrow", ts.Client())
	if _, err := narrow.QoESummaries(ctx); !errors.As(err, &se) || se.Code != 403 {
		t.Errorf("missing scope err = %v, want 403", err)
	}
	// ...but the granted scope works.
	if _, err := narrow.PeeringInfo(ctx, ""); err != nil {
		t.Errorf("granted scope failed: %v", err)
	}
}

func TestNotOfferedSurfaces(t *testing.T) {
	ts, _ := newTestServer(t, nil, Sources{}) // owner offers nothing
	c := NewClient(ts.URL, "tok-full", ts.Client())
	ctx := context.Background()
	var se *StatusError
	if _, err := c.QoESummaries(ctx); !errors.As(err, &se) || se.Code != 404 {
		t.Errorf("unoffered surface err = %v, want 404", err)
	}
	if _, err := c.ServerHints(ctx, "cdnX", "east"); !errors.As(err, &se) || se.Code != 404 {
		t.Errorf("unoffered hints err = %v, want 404", err)
	}
}

func TestAttributionMissingCDN(t *testing.T) {
	ts, _ := newTestServer(t, nil, testSources())
	c := NewClient(ts.URL, "tok-full", ts.Client())
	var se *StatusError
	if _, err := c.Attribution(context.Background(), "cdnZ"); !errors.As(err, &se) || se.Code != 404 {
		t.Errorf("unknown cdn err = %v, want 404", err)
	}
}

func TestRateLimiting(t *testing.T) {
	ts, _ := newTestServer(t, auth.NewRateLimiter(1, 2), testSources())
	c := NewClient(ts.URL, "tok-full", ts.Client())
	ctx := context.Background()
	var limited bool
	for i := 0; i < 5; i++ {
		_, err := c.PeeringInfo(ctx, "")
		var se *StatusError
		if errors.As(err, &se) && se.Code == 429 {
			limited = true
		}
	}
	if !limited {
		t.Error("burst of 5 requests never hit the rate limit")
	}
}

func TestRevocationTakesEffect(t *testing.T) {
	ts, store := newTestServer(t, nil, testSources())
	c := NewClient(ts.URL, "tok-full", ts.Client())
	ctx := context.Background()
	if _, err := c.PeeringInfo(ctx, ""); err != nil {
		t.Fatal(err)
	}
	store.Revoke("tok-full")
	var se *StatusError
	if _, err := c.PeeringInfo(ctx, ""); !errors.As(err, &se) || se.Code != 401 {
		t.Errorf("post-revocation err = %v, want 401", err)
	}
}

func TestEnvelopeTimestampInjectable(t *testing.T) {
	store := auth.NewStore()
	store.Register("tok", "p", auth.ScopeI2APeering)
	srv := NewServer(store, nil, testSources())
	srv.Now = func() int64 { return 777 } // simulator clock
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, "tok", ts.Client())
	env, err := c.get(context.Background(), "/v1/i2a/peering", nil, "i2a.peering_info")
	if err != nil {
		t.Fatal(err)
	}
	if env.GeneratedAtMs != 777 {
		t.Errorf("GeneratedAtMs = %d, want 777", env.GeneratedAtMs)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts, _ := newTestServer(t, nil, testSources())
	resp, err := ts.Client().Post(ts.URL+"/v1/i2a/peering", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("POST status = %d, want 405", resp.StatusCode)
	}
}

func TestClientTimeout(t *testing.T) {
	ts, _ := newTestServer(t, nil, testSources())
	c := NewClient(ts.URL, "tok-full", nil) // default client
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.PeeringInfo(ctx, ""); err != nil {
		t.Fatalf("default-client request failed: %v", err)
	}
	// A cancelled context fails fast.
	dead, kill := context.WithCancel(context.Background())
	kill()
	if _, err := c.PeeringInfo(dead, ""); err == nil {
		t.Error("cancelled context did not fail")
	}
}
