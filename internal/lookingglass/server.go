// Package lookingglass implements the query servers §3 proposes: "InfPs and
// AppPs can establish 'looking glass'-like servers that can be queried to
// implement the respective interfaces".
//
// A Server exposes whichever interface surfaces its owner provides (an AppP
// sets the A2I sources, an InfP the I2A sources) over HTTP+JSON using the
// wire envelope, behind bearer-token scopes and per-collaborator rate
// limits. A Client consumes a peer's server. Both sides are plain stdlib
// net/http and are exercised over httptest and loopback TCP in the tests.
package lookingglass

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"log"
	"net/http"
	"strings"
	"time"

	"eona/internal/auth"
	"eona/internal/core"
	"eona/internal/wire"
)

// Sources supplies the data a server exports. Nil funcs mean "surface not
// offered" and return 404. Each func is called per request; implementations
// close over the owner's state (and its simulator clock, if any).
type Sources struct {
	// A2I surfaces (set by an AppP).
	QoESummaries     func() []core.QoESummary
	TrafficEstimates func() []core.TrafficEstimate

	// I2A surfaces (set by an InfP). The cdn argument comes from the
	// ?cdn= query parameter and may be empty.
	PeeringInfo func(cdn string) []core.PeeringInfo
	Attribution func(cdn string) (core.Attribution, bool)
	ServerHints func(cdn, cluster string) []core.ServerHint

	// Per-partner A2I variants, preferred over the plain funcs when
	// non-nil: the authenticated collaborator name is passed through so
	// the owner can apply partner-specific blinding policies (§4: "AppPs
	// and InfPs must be able to specify what can or cannot be shared").
	// Wire them to a core.Registry + Collector.SummariesUnder.
	QoESummariesFor     func(partner string) []core.QoESummary
	TrafficEstimatesFor func(partner string) []core.TrafficEstimate
}

// Server is an EONA looking-glass HTTP server.
type Server struct {
	auth    *auth.Store
	limiter *auth.RateLimiter
	src     Sources
	// Now supplies timestamps for envelopes; defaults to wall clock
	// milliseconds. Experiments inject the simulator clock.
	Now func() int64
	// Logf, when set, logs denied and failed requests.
	Logf func(format string, args ...any)
}

// NewServer builds a server. limiter may be nil (no rate limiting).
func NewServer(store *auth.Store, limiter *auth.RateLimiter, src Sources) *Server {
	if store == nil {
		panic("lookingglass: nil auth store")
	}
	return &Server{
		auth:    store,
		limiter: limiter,
		src:     src,
		Now:     func() int64 { return time.Now().UnixMilli() },
	}
}

// Routes returns a route registry preloaded with the EONA looking-glass
// endpoints:
//
//	GET /v1/a2i/summaries          (scope a2i:qoe)
//	GET /v1/a2i/traffic            (scope a2i:traffic)
//	GET /v1/i2a/peering?cdn=X      (scope i2a:peering)
//	GET /v1/i2a/attribution?cdn=X  (scope i2a:attribution)
//	GET /v1/i2a/hints?cdn=X&cluster=Y (scope i2a:hints)
//
// Callers compose further endpoints (health, history, control plane) onto
// the same registry; they share the scope guard, rate limiter and error
// envelope.
func (s *Server) Routes() *Routes {
	rt := NewRoutes(s.auth, s.limiter)
	rt.Logf = s.logf
	rt.Handle("GET", "/v1/a2i/summaries", auth.ScopeA2IQoE, s.handleSummaries)
	rt.Handle("GET", "/v1/a2i/traffic", auth.ScopeA2ITraffic, s.handleTraffic)
	rt.Handle("GET", "/v1/i2a/peering", auth.ScopeI2APeering, s.handlePeering)
	rt.Handle("GET", "/v1/i2a/attribution", auth.ScopeI2AAttrib, s.handleAttribution)
	rt.Handle("GET", "/v1/i2a/hints", auth.ScopeI2AHints, s.handleHints)
	return rt
}

// Handler returns the HTTP handler exposing the looking-glass routes.
func (s *Server) Handler() http.Handler {
	return s.Routes().Handler()
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func bearerToken(r *http.Request) (string, bool) {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if !strings.HasPrefix(h, prefix) || len(h) == len(prefix) {
		return "", false
	}
	return h[len(prefix):], true
}

func (s *Server) deny(w http.ResponseWriter, code int, msg string) {
	WriteError(w, code, msg)
}

func (s *Server) reply(w http.ResponseWriter, r *http.Request, t wire.MessageType, payload any) {
	// ETag over the payload (not the envelope: the envelope timestamp
	// changes every call even when the data hasn't) so pollers can use
	// If-None-Match and skip unchanged bodies — EONA peers poll these
	// endpoints continuously.
	body, err := json.Marshal(payload)
	if err != nil {
		s.logf("lookingglass: marshal %s: %v", t, err)
		http.Error(w, "encoding failure", http.StatusInternalServerError)
		return
	}
	sum := sha256.Sum256(body)
	etag := `"` + hex.EncodeToString(sum[:8]) + `"`
	w.Header().Set("ETag", etag)
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	data, err := wire.Encode(t, s.Now(), payload)
	if err != nil {
		s.logf("lookingglass: encode %s: %v", t, err)
		http.Error(w, "encoding failure", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(data); err != nil {
		s.logf("lookingglass: write response: %v", err)
	}
}

func (s *Server) handleSummaries(w http.ResponseWriter, r *http.Request, collab string) {
	switch {
	case s.src.QoESummariesFor != nil:
		s.reply(w, r, wire.TypeQoESummaries, s.src.QoESummariesFor(collab))
	case s.src.QoESummaries != nil:
		s.reply(w, r, wire.TypeQoESummaries, s.src.QoESummaries())
	default:
		s.deny(w, http.StatusNotFound, "a2i summaries not offered")
	}
}

func (s *Server) handleTraffic(w http.ResponseWriter, r *http.Request, collab string) {
	switch {
	case s.src.TrafficEstimatesFor != nil:
		s.reply(w, r, wire.TypeTrafficEstimates, s.src.TrafficEstimatesFor(collab))
	case s.src.TrafficEstimates != nil:
		s.reply(w, r, wire.TypeTrafficEstimates, s.src.TrafficEstimates())
	default:
		s.deny(w, http.StatusNotFound, "a2i traffic not offered")
	}
}

func (s *Server) handlePeering(w http.ResponseWriter, r *http.Request, _ string) {
	if s.src.PeeringInfo == nil {
		s.deny(w, http.StatusNotFound, "i2a peering not offered")
		return
	}
	s.reply(w, r, wire.TypePeeringInfo, s.src.PeeringInfo(r.URL.Query().Get("cdn")))
}

func (s *Server) handleAttribution(w http.ResponseWriter, r *http.Request, _ string) {
	if s.src.Attribution == nil {
		s.deny(w, http.StatusNotFound, "i2a attribution not offered")
		return
	}
	cdn := r.URL.Query().Get("cdn")
	att, ok := s.src.Attribution(cdn)
	if !ok {
		s.deny(w, http.StatusNotFound, "no attribution for cdn "+cdn)
		return
	}
	s.reply(w, r, wire.TypeAttribution, att)
}

func (s *Server) handleHints(w http.ResponseWriter, r *http.Request, _ string) {
	if s.src.ServerHints == nil {
		s.deny(w, http.StatusNotFound, "i2a hints not offered")
		return
	}
	q := r.URL.Query()
	s.reply(w, r, wire.TypeServerHints, s.src.ServerHints(q.Get("cdn"), q.Get("cluster")))
}

// ListenAndServe runs the server on addr until the listener fails. Intended
// for cmd/eona-lg; tests use Handler with httptest.
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      10 * time.Second,
		IdleTimeout:       60 * time.Second,
		ErrorLog:          log.New(logWriter{s}, "", 0),
	}
	return srv.ListenAndServe()
}

type logWriter struct{ s *Server }

func (lw logWriter) Write(p []byte) (int, error) {
	lw.s.logf("%s", strings.TrimSpace(string(p)))
	return len(p), nil
}
