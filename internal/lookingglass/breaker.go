package lookingglass

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: exchanges flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: consecutive failures tripped the breaker; exchanges
	// are skipped until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed and one probe exchange is in
	// flight; its outcome closes or re-opens the breaker.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Default breaker parameters, applied by NewBreaker for zero config
// fields.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 30 * time.Second
)

// BreakerConfig parameterizes a Breaker.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that opens the breaker.
	// Zero selects DefaultBreakerThreshold; negative disables the
	// breaker (it stays closed forever).
	Threshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe. Zero selects DefaultBreakerCooldown.
	Cooldown time.Duration
}

// BreakerCounters are cumulative breaker statistics, exported so a live
// poller's health is observable (cmd/eona-lg /v1/health).
type BreakerCounters struct {
	// Allowed counts exchanges the breaker admitted (probes included).
	Allowed uint64
	// Skipped counts exchanges suppressed while open or while a probe
	// was in flight.
	Skipped uint64
	// Opens counts closed/half-open → open transitions.
	Opens uint64
	// Probes counts half-open probe admissions.
	Probes uint64
	// Successes and Failures count reported exchange outcomes.
	Successes, Failures uint64
}

// Breaker is a consecutive-failure circuit breaker
// (closed → open → half-open probe → closed). It is safe for concurrent
// use. Callers ask Allow before each exchange and report the outcome with
// OnSuccess/OnFailure; time is passed in explicitly so simulated and
// wall-clock users share one implementation.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	state     BreakerState
	consec    int
	openedAt  time.Time
	c         BreakerCounters
}

// NewBreaker builds a breaker, applying defaults for zero config fields.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold == 0 {
		cfg.Threshold = DefaultBreakerThreshold
	}
	if cfg.Cooldown == 0 {
		cfg.Cooldown = DefaultBreakerCooldown
	}
	return &Breaker{threshold: cfg.Threshold, cooldown: cfg.Cooldown}
}

// Allow reports whether an exchange may proceed at now. While open it
// returns false until the cooldown elapses, then admits exactly one
// half-open probe; further exchanges are skipped until the probe's outcome
// is reported.
func (b *Breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			b.c.Skipped++
			return false
		}
		b.state = BreakerHalfOpen
		b.c.Probes++
		b.c.Allowed++
		return true
	case BreakerHalfOpen:
		b.c.Skipped++
		return false
	default:
		b.c.Allowed++
		return true
	}
}

// OnSuccess reports a successful exchange: the failure streak resets and
// the breaker closes (a successful half-open probe closes it).
func (b *Breaker) OnSuccess(time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.c.Successes++
	b.consec = 0
	b.state = BreakerClosed
}

// OnFailure reports a failed exchange. A failed half-open probe re-opens
// immediately; in the closed state the breaker opens once the consecutive
// failure streak reaches the threshold.
func (b *Breaker) OnFailure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.c.Failures++
	b.consec++
	if b.state == BreakerHalfOpen || (b.state == BreakerClosed && b.threshold > 0 && b.consec >= b.threshold) {
		b.state = BreakerOpen
		b.openedAt = now
		b.c.Opens++
	}
}

// State returns the current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// ConsecutiveFailures returns the current failure streak.
func (b *Breaker) ConsecutiveFailures() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.consec
}

// Counters returns a snapshot of the cumulative statistics.
func (b *Breaker) Counters() BreakerCounters {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.c
}
