package lookingglass

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

func historyTS(t *testing.T) *httptest.Server {
	t.Helper()
	h := HistoryHandler(
		func() int { return 10 },
		func(offset int) (any, error) {
			if offset == 7 {
				return nil, fmt.Errorf("synthetic materialization failure")
			}
			return map[string]int{"offset_seen": offset}, nil
		})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts
}

func getHistory(t *testing.T, url string) (int, HistoryResponse) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr HistoryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, hr
}

func TestHistoryHandlerOffsets(t *testing.T) {
	ts := historyTS(t)

	// Explicit offset.
	code, hr := getHistory(t, ts.URL+"?offset=3")
	if code != http.StatusOK || hr.Offset != 3 || hr.MaxOffset != 10 {
		t.Fatalf("offset=3 → %d %+v", code, hr)
	}
	if m, ok := hr.Data.(map[string]any); !ok || m["offset_seen"] != float64(3) {
		t.Fatalf("data = %+v", hr.Data)
	}

	// Omitted and -1 both mean newest.
	for _, q := range []string{"", "?offset=-1"} {
		code, hr = getHistory(t, ts.URL+q)
		if code != http.StatusOK || hr.Offset != 10 {
			t.Fatalf("%q → %d offset %d, want newest 10", q, code, hr.Offset)
		}
	}

	// Beyond the end and non-numeric are client errors.
	for _, q := range []string{"?offset=11", "?offset=abc"} {
		if code, _ = getHistory(t, ts.URL+q); code != http.StatusBadRequest {
			t.Fatalf("%q → %d, want 400", q, code)
		}
	}

	// Materialization failure surfaces as a server error.
	if code, _ = getHistory(t, ts.URL+"?offset=7"); code != http.StatusInternalServerError {
		t.Fatalf("failing offset → %d, want 500", code)
	}
}
