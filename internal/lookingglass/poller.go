package lookingglass

import (
	"context"
	"sync"
	"time"
)

// Snapshot is the freshest value a Poller has fetched, safe for concurrent
// reads by a control loop while the poller refreshes it in the background.
// A Snapshot is the wall-clock counterpart of core.Delayed: control loops
// read whatever the last successful poll returned, however old it is —
// which is exactly the staleness the E6 experiment characterizes.
type Snapshot[T any] struct {
	mu sync.RWMutex
	v  T
	at time.Time
	ok bool
	// attemptAt is when the most recent poll finished, successful or
	// not. While polls fail, at freezes (stale beats absent) but
	// attemptAt keeps advancing — the signal a control loop needs to
	// tell "the peer is failing" apart from "the interval is slow".
	attemptAt time.Time
	attempted bool
	err       error
}

// Get returns the latest value, when it was fetched, and whether any fetch
// has succeeded yet.
func (s *Snapshot[T]) Get() (v T, fetchedAt time.Time, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.v, s.at, s.ok
}

// Err returns the error of the most recent poll (nil after a success).
func (s *Snapshot[T]) Err() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.err
}

// Age returns time since the last successful fetch, or false if none.
func (s *Snapshot[T]) Age(now time.Time) (time.Duration, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.ok {
		return 0, false
	}
	return now.Sub(s.at), true
}

// LastAttempt returns when the most recent poll finished — successful or
// failed — and false if no poll has completed yet. Together with Get, a
// control loop can distinguish a failing peer (LastAttempt fresh, fetchedAt
// stale) from a slow polling interval (both old).
func (s *Snapshot[T]) LastAttempt() (time.Time, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.attemptAt, s.attempted
}

// SinceAttempt returns time since the last completed poll attempt, or false
// if none has completed.
func (s *Snapshot[T]) SinceAttempt(now time.Time) (time.Duration, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.attempted {
		return 0, false
	}
	return now.Sub(s.attemptAt), true
}

func (s *Snapshot[T]) set(v T, at time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.v, s.at, s.ok, s.err = v, at, true, nil
	s.attemptAt, s.attempted = at, true
}

func (s *Snapshot[T]) fail(err error, at time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.err = err
	s.attemptAt, s.attempted = at, true
}

// Poll fetches fetch() immediately and then every interval until ctx is
// cancelled, publishing results into the returned Snapshot. Failed polls
// keep the previous value (stale beats absent — the §5 staleness stance)
// and record the error. The done channel closes when the polling goroutine
// exits.
func Poll[T any](ctx context.Context, interval time.Duration, fetch func(context.Context) (T, error)) (*Snapshot[T], <-chan struct{}) {
	if interval <= 0 {
		panic("lookingglass: poll interval must be positive")
	}
	snap := &Snapshot[T]{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		poll := func() {
			v, err := fetch(ctx)
			if err != nil {
				snap.fail(err, time.Now())
				return
			}
			snap.set(v, time.Now())
		}
		poll()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				poll()
			}
		}
	}()
	return snap, done
}
