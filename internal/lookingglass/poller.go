package lookingglass

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"time"
)

// DecayConfidence grades a datum of the given age: 1 at age 0, halving
// every halfLife, decaying toward (but never reaching) 0. A non-positive
// halfLife disables decay (confidence stays 1 at any age) — the legacy
// binary fresh/stale stance. This is the §5 staleness contract consumers
// build on: between successful exchanges confidence is strictly
// non-increasing, and only a fresh exchange restores it to 1.
func DecayConfidence(age, halfLife time.Duration) float64 {
	if halfLife <= 0 || age <= 0 {
		return 1
	}
	return math.Pow(0.5, float64(age)/float64(halfLife))
}

// Snapshot is the freshest value a Poller has fetched, safe for concurrent
// reads by a control loop while the poller refreshes it in the background.
// A Snapshot is the wall-clock counterpart of core.Delayed: control loops
// read whatever the last successful poll returned, however old it is —
// which is exactly the staleness the E6 experiment characterizes, and
// Confidence grades (E15).
type Snapshot[T any] struct {
	mu sync.RWMutex
	v  T
	at time.Time
	ok bool
	// attemptAt is when the most recent poll finished, successful or
	// not. While polls fail, at freezes (stale beats absent) but
	// attemptAt keeps advancing — the signal a control loop needs to
	// tell "the peer is failing" apart from "the interval is slow".
	attemptAt time.Time
	attempted bool
	err       error

	// halfLife parameterizes Confidence; zero means no decay.
	halfLife time.Duration
	// Robustness counters, maintained by the polling loop.
	polls, successes, failures, retries, skipped uint64
	consecFails                                  int
	breaker                                      *Breaker
}

// Get returns the latest value, when it was fetched, and whether any fetch
// has succeeded yet.
func (s *Snapshot[T]) Get() (v T, fetchedAt time.Time, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.v, s.at, s.ok
}

// Err returns the error of the most recent poll (nil after a success).
func (s *Snapshot[T]) Err() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.err
}

// Age returns time since the last successful fetch, or false if none.
func (s *Snapshot[T]) Age(now time.Time) (time.Duration, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.ok {
		return 0, false
	}
	return now.Sub(s.at), true
}

// Confidence grades the snapshot's trustworthiness at now: 0 before any
// successful fetch, 1 at the instant of a fetch, and exponentially
// decaying with age on the configured half-life (see DecayConfidence).
// Consumers hold last-known-good state with decaying trust instead of a
// binary fresh/stale cliff; control policies compare this against their
// confidence floor to decide when to fall back to baseline rules.
func (s *Snapshot[T]) Confidence(now time.Time) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.ok {
		return 0
	}
	return DecayConfidence(now.Sub(s.at), s.halfLife)
}

// SetHalfLife configures the Confidence decay half-life (non-positive
// disables decay). PollWith sets it from its config; bare Snapshots and
// legacy Poll default to no decay.
func (s *Snapshot[T]) SetHalfLife(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.halfLife = d
}

// Seed warm-starts the snapshot with a value recovered from durable state
// (e.g. a journaled poll result): consumers see it — with its original
// fetch time, so Confidence decays from when it was actually fetched, not
// from process start — until the first live poll replaces it. Counters are
// untouched: a seed is not a poll. Only values older than the current one
// are ignored, so a late Seed cannot clobber a live fetch.
func (s *Snapshot[T]) Seed(v T, fetchedAt time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ok && !s.at.Before(fetchedAt) {
		return
	}
	s.v, s.at, s.ok = v, fetchedAt, true
}

// LastAttempt returns when the most recent poll finished — successful or
// failed — and false if no poll has completed yet. Together with Get, a
// control loop can distinguish a failing peer (LastAttempt fresh, fetchedAt
// stale) from a slow polling interval (both old).
func (s *Snapshot[T]) LastAttempt() (time.Time, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.attemptAt, s.attempted
}

// SinceAttempt returns time since the last completed poll attempt, or false
// if none has completed.
func (s *Snapshot[T]) SinceAttempt(now time.Time) (time.Duration, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.attempted {
		return 0, false
	}
	return now.Sub(s.attemptAt), true
}

// Health is a point-in-time view of a poller's robustness counters — what
// an operator needs to tell a healthy poller from one riding its breaker.
type Health struct {
	// Polls counts completed fetch attempts; Successes + Failures.
	Polls uint64
	// Successes and Failures count attempt outcomes.
	Successes, Failures uint64
	// Retries counts attempts made while already in a failure streak.
	Retries uint64
	// Skipped counts scheduled polls suppressed by an open breaker.
	Skipped uint64
	// ConsecutiveFailures is the current failure streak.
	ConsecutiveFailures int
	// Breaker is the breaker position (closed for breakerless pollers).
	Breaker BreakerState
	// BreakerCounters are the breaker's cumulative statistics.
	BreakerCounters BreakerCounters
	// Confidence is the snapshot's decayed trust at the query instant.
	Confidence float64
	// LastSuccess and LastAttempt are zero until the respective event.
	LastSuccess, LastAttempt time.Time
}

// Health reports the poller's robustness counters at now.
func (s *Snapshot[T]) Health(now time.Time) Health {
	s.mu.RLock()
	h := Health{
		Polls:               s.polls,
		Successes:           s.successes,
		Failures:            s.failures,
		Retries:             s.retries,
		Skipped:             s.skipped,
		ConsecutiveFailures: s.consecFails,
	}
	if s.ok {
		h.LastSuccess = s.at
		h.Confidence = DecayConfidence(now.Sub(s.at), s.halfLife)
	}
	if s.attempted {
		h.LastAttempt = s.attemptAt
	}
	br := s.breaker
	s.mu.RUnlock()
	if br != nil {
		h.Breaker = br.State()
		h.BreakerCounters = br.Counters()
	}
	return h
}

func (s *Snapshot[T]) set(v T, at time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.v, s.at, s.ok, s.err = v, at, true, nil
	s.attemptAt, s.attempted = at, true
	s.polls++
	s.successes++
	if s.consecFails > 0 {
		s.retries++
	}
	s.consecFails = 0
}

func (s *Snapshot[T]) fail(err error, at time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.err = err
	s.attemptAt, s.attempted = at, true
	s.polls++
	s.failures++
	if s.consecFails > 0 {
		s.retries++
	}
	s.consecFails++
}

func (s *Snapshot[T]) recordSkip() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.skipped++
}

// PollConfig parameterizes PollWith. Only Interval is required; zero
// fields take the documented defaults.
type PollConfig struct {
	// Interval is the steady-state delay between successful polls.
	// Required, positive.
	Interval time.Duration
	// AttemptTimeout bounds each fetch via a derived context, so a hung
	// peer cannot wedge the polling loop past cancellation (the fetch
	// must honor its context, as HTTP fetches do). Default: Interval,
	// floored at MinAttemptTimeout.
	AttemptTimeout time.Duration
	// BackoffBase is the delay before the first retry after a failure
	// (default Interval). Subsequent consecutive failures multiply the
	// delay by BackoffFactor (default 2) up to BackoffMax (default
	// 8×Interval), each jittered by ±BackoffJitter fraction (default
	// 0.1; set negative for none).
	BackoffBase   time.Duration
	BackoffMax    time.Duration
	BackoffFactor float64
	BackoffJitter float64
	// Seed drives the jitter RNG; same seed, same retry schedule.
	Seed int64
	// Breaker configures the consecutive-failure circuit breaker
	// (BreakerConfig defaults apply; Threshold −1 disables).
	Breaker BreakerConfig
	// HalfLife is the Confidence decay half-life (0 = no decay).
	HalfLife time.Duration
}

// MinAttemptTimeout floors the derived per-attempt timeout so that tests
// polling at millisecond intervals don't time out real loopback fetches.
const MinAttemptTimeout = 250 * time.Millisecond

func (c PollConfig) withDefaults() PollConfig {
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = c.Interval
	}
	if c.AttemptTimeout < MinAttemptTimeout {
		c.AttemptTimeout = MinAttemptTimeout
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = c.Interval
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 8 * c.Interval
	}
	if c.BackoffFactor == 0 {
		c.BackoffFactor = 2
	}
	if c.BackoffJitter == 0 {
		c.BackoffJitter = 0.1
	}
	return c
}

// PollWith fetches fetch() immediately and then repeatedly until ctx is
// cancelled, publishing results into the returned Snapshot. It is the
// hardened form of Poll: each attempt runs under a derived per-attempt
// timeout, failures retry on jittered exponential backoff instead of the
// steady interval, and a consecutive-failure circuit breaker suppresses
// fetches entirely while a peer is down, probing half-open after a
// cooldown. Failed polls keep the previous value (stale beats absent — the
// §5 staleness stance) and record the error; Snapshot.Confidence grades
// how far trust in that stale value has decayed. The done channel closes
// when the polling goroutine exits.
func PollWith[T any](ctx context.Context, cfg PollConfig, fetch func(context.Context) (T, error)) (*Snapshot[T], <-chan struct{}) {
	if cfg.Interval <= 0 {
		panic("lookingglass: poll interval must be positive")
	}
	cfg = cfg.withDefaults()
	snap := &Snapshot[T]{halfLife: cfg.HalfLife}
	var br *Breaker
	if cfg.Breaker.Threshold >= 0 {
		br = NewBreaker(cfg.Breaker)
		snap.breaker = br
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	done := make(chan struct{})
	go func() {
		defer close(done)
		consec := 0
		attempt := func() {
			if br != nil && !br.Allow(time.Now()) {
				snap.recordSkip()
				return
			}
			actx, cancel := context.WithTimeout(ctx, cfg.AttemptTimeout)
			v, err := fetch(actx)
			cancel()
			now := time.Now()
			if err != nil {
				consec++
				if br != nil {
					br.OnFailure(now)
				}
				snap.fail(err, now)
				return
			}
			consec = 0
			if br != nil {
				br.OnSuccess(now)
			}
			snap.set(v, now)
		}
		attempt()
		for {
			d := cfg.Interval
			if consec > 0 {
				d = backoffDelay(cfg, consec, rng)
			}
			timer := time.NewTimer(d)
			select {
			case <-ctx.Done():
				timer.Stop()
				return
			case <-timer.C:
				attempt()
			}
		}
	}()
	return snap, done
}

// backoffDelay computes the jittered exponential retry delay for the
// consec'th consecutive failure (consec ≥ 1).
func backoffDelay(cfg PollConfig, consec int, rng *rand.Rand) time.Duration {
	d := float64(cfg.BackoffBase)
	for i := 1; i < consec; i++ {
		d *= cfg.BackoffFactor
		if d >= float64(cfg.BackoffMax) {
			break
		}
	}
	if d > float64(cfg.BackoffMax) {
		d = float64(cfg.BackoffMax)
	}
	if cfg.BackoffJitter > 0 {
		d *= 1 + cfg.BackoffJitter*(2*rng.Float64()-1)
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}

// Poll fetches fetch() immediately and then every interval until ctx is
// cancelled, publishing results into the returned Snapshot. Failed polls
// keep the previous value (stale beats absent — the §5 staleness stance)
// and record the error. Each attempt runs under a derived context bounded
// by the interval (floored at MinAttemptTimeout), so a hung fetch cannot
// wedge the loop past ctx cancellation. The done channel closes when the
// polling goroutine exits. For retry backoff, circuit breaking, and
// confidence decay, use PollWith.
func Poll[T any](ctx context.Context, interval time.Duration, fetch func(context.Context) (T, error)) (*Snapshot[T], <-chan struct{}) {
	return PollWith(ctx, PollConfig{
		Interval:      interval,
		BackoffFactor: 1,
		BackoffJitter: -1,
		Breaker:       BreakerConfig{Threshold: -1},
	}, fetch)
}
