package lookingglass

import (
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"strings"
	"time"

	"eona/internal/auth"
)

// APIError is the single JSON error body every endpoint mounted on a Routes
// registry speaks, nested under "error":
//
//	{"error":{"code":404,"message":"no such endpoint: /v1/nope"}}
type APIError struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

// ErrorEnvelope is the on-wire shape of an error response.
type ErrorEnvelope struct {
	Err APIError `json:"error"`
}

// WriteError writes the unified JSON error envelope with the given status.
func WriteError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(ErrorEnvelope{Err: APIError{Code: code, Message: msg}})
}

// RouteInfo describes one registered endpoint; Routes.Table exposes the full
// set for docs and the dashboard.
type RouteInfo struct {
	Method  string     `json:"method"`
	Pattern string     `json:"pattern"`
	Scope   auth.Scope `json:"scope,omitempty"`
}

type route struct {
	info    RouteInfo
	handler func(http.ResponseWriter, *http.Request, string)
}

// Routes is a composable route registry: exact method+path patterns, shared
// bearer-token scope guarding, and one JSON error envelope for every 4xx/5xx
// (including its own 404s and 405s). The looking glass, health, history and
// control-plane endpoints all mount here so eona-lg serves a single coherent
// /v1 surface.
type Routes struct {
	auth    *auth.Store
	limiter *auth.RateLimiter
	// Logf, when set, logs denied and failed requests.
	Logf func(format string, args ...any)

	byPath map[string]map[string]route
	order  []RouteInfo
}

// NewRoutes builds an empty registry. store may be nil only if every route
// added is public (scope ""); limiter may be nil (no rate limiting).
func NewRoutes(store *auth.Store, limiter *auth.RateLimiter) *Routes {
	return &Routes{
		auth:    store,
		limiter: limiter,
		byPath:  make(map[string]map[string]route),
	}
}

// Handle registers a scoped endpoint. The handler receives the authenticated
// collaborator name. Scope "" means public: no token required, collab is "".
// Registering a scoped route without an auth store, or the same method+path
// twice, panics — both are wiring bugs.
func (rt *Routes) Handle(method, pattern string, scope auth.Scope, h func(http.ResponseWriter, *http.Request, string)) {
	if scope != "" && rt.auth == nil {
		panic("lookingglass: scoped route " + pattern + " registered without an auth store")
	}
	byMethod, ok := rt.byPath[pattern]
	if !ok {
		byMethod = make(map[string]route)
		rt.byPath[pattern] = byMethod
	}
	if _, dup := byMethod[method]; dup {
		panic("lookingglass: duplicate route " + method + " " + pattern)
	}
	info := RouteInfo{Method: method, Pattern: pattern, Scope: scope}
	byMethod[method] = route{info: info, handler: h}
	rt.order = append(rt.order, info)
}

// HandleFunc registers a public plain http.HandlerFunc endpoint.
func (rt *Routes) HandleFunc(method, pattern string, h http.HandlerFunc) {
	rt.Handle(method, pattern, "", func(w http.ResponseWriter, r *http.Request, _ string) { h(w, r) })
}

// Table lists the registered routes in registration order.
func (rt *Routes) Table() []RouteInfo {
	out := make([]RouteInfo, len(rt.order))
	copy(out, rt.order)
	return out
}

// Handler returns the registry as an http.Handler.
func (rt *Routes) Handler() http.Handler { return rt }

// ServeHTTP dispatches on exact path, then method, then scope guard.
func (rt *Routes) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	byMethod, ok := rt.byPath[r.URL.Path]
	if !ok {
		WriteError(w, http.StatusNotFound, "no such endpoint: "+r.URL.Path)
		return
	}
	rte, ok := byMethod[r.Method]
	if !ok {
		allow := make([]string, 0, len(byMethod))
		for m := range byMethod {
			allow = append(allow, m)
		}
		sort.Strings(allow)
		w.Header().Set("Allow", strings.Join(allow, ", "))
		WriteError(w, http.StatusMethodNotAllowed, r.Method+" not allowed for "+r.URL.Path)
		return
	}
	if rte.info.Scope == "" {
		rte.handler(w, r, "")
		return
	}
	token, ok := bearerToken(r)
	if !ok {
		WriteError(w, http.StatusUnauthorized, "missing bearer token")
		return
	}
	collab, err := rt.auth.Authorize(token, rte.info.Scope)
	if err != nil {
		code := http.StatusUnauthorized
		if errors.Is(err, auth.ErrForbidden) {
			code = http.StatusForbidden
		}
		rt.logf("lookingglass: denied %s %s: %v", r.Method, r.URL.Path, err)
		WriteError(w, code, err.Error())
		return
	}
	if rt.limiter != nil && !rt.limiter.Allow(collab, time.Now()) {
		WriteError(w, http.StatusTooManyRequests, "rate limit exceeded")
		return
	}
	rte.handler(w, r, collab)
}

func (rt *Routes) logf(format string, args ...any) {
	if rt.Logf != nil {
		rt.Logf(format, args...)
	}
}
