package lookingglass

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"eona/internal/auth"
	"eona/internal/core"
	"eona/internal/netsim"
)

// countingTransport counts response status codes seen by the client.
type countingTransport struct {
	inner       http.RoundTripper
	ok, notMod  atomic.Int64
	bodiesBytes atomic.Int64
}

func (c *countingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	resp, err := c.inner.RoundTrip(r)
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		c.ok.Add(1)
	case http.StatusNotModified:
		c.notMod.Add(1)
	}
	return resp, nil
}

func TestConditionalRequests(t *testing.T) {
	mutablePeering := []core.PeeringInfo{
		{PeeringID: "B", CDN: "cdnX", Congestion: netsim.CongestionNone, CapacityBps: 100e6},
	}
	store := auth.NewStore()
	store.Register("tok", "p", auth.ScopeI2APeering)
	srv := NewServer(store, nil, Sources{
		PeeringInfo: func(string) []core.PeeringInfo { return mutablePeering },
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ct := &countingTransport{inner: http.DefaultTransport}
	client := NewClient(ts.URL, "tok", &http.Client{Transport: ct})
	ctx := context.Background()

	// First fetch: full body.
	v1, err := client.PeeringInfo(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if ct.ok.Load() != 1 || ct.notMod.Load() != 0 {
		t.Fatalf("after first fetch: ok=%d notMod=%d", ct.ok.Load(), ct.notMod.Load())
	}

	// Unchanged data: 304s, same result.
	for i := 0; i < 3; i++ {
		v, err := client.PeeringInfo(ctx, "")
		if err != nil {
			t.Fatal(err)
		}
		if len(v) != len(v1) || v[0] != v1[0] {
			t.Fatalf("cached result diverged: %+v", v)
		}
	}
	if ct.notMod.Load() != 3 {
		t.Errorf("notMod = %d, want 3", ct.notMod.Load())
	}

	// Data changes: full body again, new value visible.
	mutablePeering[0].Congestion = netsim.CongestionSevere
	v2, err := client.PeeringInfo(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if v2[0].Congestion != netsim.CongestionSevere {
		t.Errorf("change not observed through cache: %+v", v2[0])
	}
	if ct.ok.Load() != 2 {
		t.Errorf("ok = %d, want 2 (one refetch)", ct.ok.Load())
	}
}

func TestETagHeaderShape(t *testing.T) {
	store := auth.NewStore()
	store.Register("tok", "p", auth.ScopeI2APeering)
	srv := NewServer(store, nil, Sources{
		PeeringInfo: func(string) []core.PeeringInfo { return nil },
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/i2a/peering", nil)
	req.Header.Set("Authorization", "Bearer tok")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	etag := resp.Header.Get("ETag")
	if len(etag) != 18 || etag[0] != '"' || etag[len(etag)-1] != '"' {
		t.Errorf("ETag = %q, want quoted 16-hex-char tag", etag)
	}

	// Raw conditional request returns 304 with empty body.
	req2, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/i2a/peering", nil)
	req2.Header.Set("Authorization", "Bearer tok")
	req2.Header.Set("If-None-Match", etag)
	resp2, err := ts.Client().Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Errorf("status = %d, want 304", resp2.StatusCode)
	}
	body, _ := io.ReadAll(resp2.Body)
	if len(body) != 0 {
		t.Errorf("304 carried a body of %d bytes", len(body))
	}
}

func TestErrorsNotCached(t *testing.T) {
	// 4xx responses must not poison the conditional cache.
	store := auth.NewStore()
	store.Register("tok", "p", auth.ScopeI2APeering)
	srv := NewServer(store, nil, Sources{}) // surface not offered: 404
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL, "tok", ts.Client())
	for i := 0; i < 2; i++ {
		if _, err := client.PeeringInfo(context.Background(), ""); err == nil {
			t.Fatal("expected 404")
		}
	}
}
