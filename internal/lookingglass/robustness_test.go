package lookingglass

import (
	"context"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDecayConfidence(t *testing.T) {
	hl := time.Hour
	cases := []struct {
		age  time.Duration
		want float64
	}{
		{0, 1},
		{-time.Minute, 1},
		{time.Hour, 0.5},
		{2 * time.Hour, 0.25},
		{3 * time.Hour, 0.125},
	}
	for _, c := range cases {
		if got := DecayConfidence(c.age, hl); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("DecayConfidence(%v, 1h) = %v, want %v", c.age, got, c.want)
		}
	}
	// No half-life means no decay: the legacy binary stance.
	if got := DecayConfidence(100*time.Hour, 0); got != 1 {
		t.Errorf("DecayConfidence with zero half-life = %v, want 1", got)
	}
	// Monotone non-increasing between fetches (the §5 contract).
	prev := 1.0
	for age := time.Duration(0); age <= 10*time.Hour; age += 7 * time.Minute {
		c := DecayConfidence(age, hl)
		if c > prev {
			t.Fatalf("confidence rose with age: %v at %v after %v", c, age, prev)
		}
		prev = c
	}
}

func TestSnapshotConfidence(t *testing.T) {
	t0 := time.Now()
	s := &Snapshot[int]{}
	if c := s.Confidence(t0); c != 0 {
		t.Errorf("confidence before any success = %v, want 0", c)
	}
	s.SetHalfLife(time.Hour)
	s.set(42, t0)
	if c := s.Confidence(t0); c != 1 {
		t.Errorf("confidence at fetch instant = %v, want 1", c)
	}
	if c := s.Confidence(t0.Add(time.Hour)); math.Abs(c-0.5) > 1e-12 {
		t.Errorf("confidence after one half-life = %v, want 0.5", c)
	}
	// A failed poll keeps decaying the old value's trust; a fresh success
	// restores it to 1.
	s.fail(errors.New("down"), t0.Add(30*time.Minute))
	if c := s.Confidence(t0.Add(time.Hour)); math.Abs(c-0.5) > 1e-12 {
		t.Errorf("confidence after failure = %v, want 0.5 (age from last success)", c)
	}
	s.set(43, t0.Add(2*time.Hour))
	if c := s.Confidence(t0.Add(2 * time.Hour)); c != 1 {
		t.Errorf("confidence after recovery = %v, want 1", c)
	}
}

func TestBreakerTransitions(t *testing.T) {
	t0 := time.Now()
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Minute})

	// Closed: failures below threshold keep it closed.
	for i := 0; i < 2; i++ {
		if !b.Allow(t0) {
			t.Fatal("closed breaker refused an exchange")
		}
		b.OnFailure(t0)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2/3 failures = %v, want closed", b.State())
	}
	// A success resets the streak.
	b.OnSuccess(t0)
	if b.ConsecutiveFailures() != 0 {
		t.Fatal("success did not reset the failure streak")
	}

	// Threshold consecutive failures open it.
	for i := 0; i < 3; i++ {
		b.Allow(t0)
		b.OnFailure(t0)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3 failures = %v, want open", b.State())
	}
	if b.Allow(t0.Add(30 * time.Second)) {
		t.Error("open breaker admitted an exchange before cooldown")
	}

	// Cooldown elapses: exactly one half-open probe is admitted.
	probeAt := t0.Add(time.Minute)
	if !b.Allow(probeAt) {
		t.Fatal("breaker did not admit the half-open probe after cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", b.State())
	}
	if b.Allow(probeAt) {
		t.Error("second exchange admitted while probe in flight")
	}

	// Failed probe re-opens immediately and restarts the cooldown.
	b.OnFailure(probeAt)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if b.Allow(probeAt.Add(30 * time.Second)) {
		t.Error("re-opened breaker admitted an exchange before new cooldown")
	}

	// Successful probe closes.
	probe2 := probeAt.Add(time.Minute)
	if !b.Allow(probe2) {
		t.Fatal("second probe not admitted")
	}
	b.OnSuccess(probe2)
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	if !b.Allow(probe2) {
		t.Error("closed breaker refused an exchange after recovery")
	}

	c := b.Counters()
	if c.Opens != 2 || c.Probes != 2 {
		t.Errorf("counters = %+v, want 2 opens and 2 probes", c)
	}
	if c.Skipped == 0 || c.Allowed == 0 {
		t.Errorf("counters = %+v, want nonzero allowed and skipped", c)
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: -1})
	t0 := time.Now()
	for i := 0; i < 100; i++ {
		if !b.Allow(t0) {
			t.Fatal("disabled breaker refused an exchange")
		}
		b.OnFailure(t0)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("disabled breaker state = %v, want closed", b.State())
	}
}

// Regression: a fetch that hangs (honoring only its context) used to wedge
// the polling goroutine forever — no retries, no error surfaced, and the
// snapshot frozen. The per-attempt timeout bounds each fetch so the loop
// keeps breathing.
func TestPollAttemptTimeoutUnwedgesHungFetch(t *testing.T) {
	var calls atomic.Int64
	fetch := func(ctx context.Context) (int, error) {
		calls.Add(1)
		<-ctx.Done() // hang until the per-attempt deadline fires
		return 0, ctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	snap, done := Poll(ctx, 10*time.Millisecond, fetch)

	waitFor(t, func() bool { return snap.Err() != nil })
	if !errors.Is(snap.Err(), context.DeadlineExceeded) {
		t.Errorf("hung fetch error = %v, want deadline exceeded", snap.Err())
	}
	// The loop must move on to further attempts, not stay wedged in one.
	waitFor(t, func() bool { return calls.Load() >= 2 })

	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("poller did not stop on cancel")
	}
}

// PollWith rides its breaker through an outage: failures open it, scheduled
// polls are skipped instead of hammering the dead peer, a half-open probe
// discovers recovery, and the snapshot refreshes.
func TestPollWithBreakerRecovery(t *testing.T) {
	var down atomic.Bool
	down.Store(true)
	fetch := func(context.Context) (string, error) {
		if down.Load() {
			return "", errors.New("peer down")
		}
		return "recovered", nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	snap, _ := PollWith(ctx, PollConfig{
		Interval:    5 * time.Millisecond,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
		Breaker:     BreakerConfig{Threshold: 2, Cooldown: 40 * time.Millisecond},
		HalfLife:    time.Hour,
	}, fetch)

	// Outage: the breaker opens and starts skipping scheduled polls.
	waitFor(t, func() bool { return snap.Health(time.Now()).Skipped > 0 })
	h := snap.Health(time.Now())
	if h.BreakerCounters.Opens == 0 {
		t.Errorf("health during outage = %+v, want an open", h)
	}
	if h.Failures == 0 || h.ConsecutiveFailures == 0 {
		t.Errorf("health during outage = %+v, want failures recorded", h)
	}

	// Recovery: a half-open probe finds the peer back and closes the loop.
	down.Store(false)
	waitFor(t, func() bool { v, _, ok := snap.Get(); return ok && v == "recovered" })
	waitFor(t, func() bool { return snap.Health(time.Now()).Breaker == BreakerClosed })
	h = snap.Health(time.Now())
	if h.BreakerCounters.Probes == 0 {
		t.Errorf("health after recovery = %+v, want a probe", h)
	}
	if h.Retries == 0 {
		t.Errorf("health after recovery = %+v, want retries counted", h)
	}
	if h.Confidence <= 0.9 {
		t.Errorf("confidence right after recovery = %v, want ~1", h.Confidence)
	}
}

// Snapshot methods must be race-free under concurrent set/fail/read load;
// run with -race to enforce.
func TestSnapshotConcurrentConfidence(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var n atomic.Int64
	snap, _ := PollWith(ctx, PollConfig{
		Interval:    time.Millisecond,
		BackoffBase: time.Millisecond,
		HalfLife:    time.Second,
		Breaker:     BreakerConfig{Threshold: 3, Cooldown: 5 * time.Millisecond},
	}, func(context.Context) (int64, error) {
		// Alternate success and failure so set, fail, and the breaker all
		// churn while readers run.
		v := n.Add(1)
		if v%2 == 0 {
			return 0, errors.New("flaky")
		}
		return v, nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 300; j++ {
				snap.Get()
				snap.Err()
				snap.Confidence(time.Now())
				snap.Health(time.Now())
				snap.Age(time.Now())
				snap.LastAttempt()
			}
		}()
	}
	wg.Wait()
}

// Regression: StatusError used to embed the entire error response body; a
// misbehaving peer answering 500 with megabytes of garbage turned every log
// line into a payload dump.
func TestStatusErrorBodyTruncated(t *testing.T) {
	huge := strings.Repeat("x", 1<<20)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		io.WriteString(w, huge)
	}))
	defer ts.Close()

	client := NewClient(ts.URL, "tok", ts.Client())
	_, err := client.PeeringInfo(context.Background(), "cdnX")
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("error = %v, want StatusError", err)
	}
	if se.Code != http.StatusInternalServerError {
		t.Errorf("code = %d, want 500", se.Code)
	}
	if len(se.Message) > maxErrorMessageBytes+len("... (truncated)") {
		t.Errorf("message length = %d, want ≤ %d", len(se.Message), maxErrorMessageBytes)
	}
	if !strings.HasSuffix(se.Message, "... (truncated)") {
		t.Errorf("message not marked truncated: %q...", se.Message[:40])
	}
	if len(se.Error()) > 2048 {
		t.Errorf("Error() string still huge: %d bytes", len(se.Error()))
	}
}
