package projection

import (
	"time"

	"eona/internal/agg"
	"eona/internal/core"
)

// QoE is the A2I read model: per-(ISP, CDN, cluster) QoE rollups and
// per-CDN traffic estimates, maintained incrementally by folding ingest
// records into a core.Collector. Queries delegate to the collector — the
// same O(1) group lookups live nodes serve — so a projection-backed node
// answers exactly what a collector that ingested the full history would,
// which TestQoEFolderMatchesCollector pins bit for bit.
type QoE struct {
	Base
	cfg core.CollectorConfig
	col *core.Collector
}

// NewQoE builds the folder over a fresh collector. cfg.Shards is forced to
// the single-goroutine collector: a folder is already single-writer under
// the engine lock, and checkpoint state export lives on *Collector.
func NewQoE(cfg core.CollectorConfig) *QoE {
	cfg.Shards = 0
	q := &QoE{cfg: cfg}
	q.Reset()
	return q
}

func (q *QoE) Name() string { return "qoe" }

// Reset rebuilds the empty collector (noise streams restart from the
// configured seed, as on any journal restart).
func (q *QoE) Reset() {
	q.col = core.NewA2ICollector(q.cfg).(*core.Collector)
}

// FoldIngest feeds one session record into the rollups.
func (q *QoE) FoldIngest(rec core.QoERecord) { q.col.Ingest(rec) }

// Ingested returns the number of sessions folded.
func (q *QoE) Ingested() uint64 { return q.col.Ingested() }

// Summaries returns the per-group exports under the configured policy.
func (q *QoE) Summaries() []core.QoESummary { return q.col.Summaries() }

// SummaryFor returns one group's export — an O(1) lookup into maintained
// state, allocation-free at steady state (pinned by
// TestProjectedQueryAllocFree).
func (q *QoE) SummaryFor(key core.SummaryKey) (core.QoESummary, bool) {
	return q.col.SummaryFor(key)
}

// TrafficEstimates returns per-CDN demand estimates at now.
func (q *QoE) TrafficEstimates(now time.Duration) []core.TrafficEstimate {
	return q.col.TrafficEstimates(now)
}

// Collector exposes the maintained collector for callers that serve the
// full A2ICollector query surface (eona-lg). Mutating it outside the fold
// path breaks the checkpoint contract.
func (q *QoE) Collector() *core.Collector { return q.col }

// EncodeState writes the collector's aggregation state: ingest count, then
// groups in first-observation order (metrics name-sorted within each), then
// traffic rings CDN-sorted — the deterministic orders ExportState already
// guarantees, so equal collector states encode equal bytes.
func (q *QoE) EncodeState(buf []byte) []byte {
	st := q.col.ExportState()
	buf = putUvarint(buf, st.Ingested)
	buf = putUvarint(buf, uint64(len(st.Groups)))
	for _, g := range st.Groups {
		buf = putStr(buf, g.Key.ClientISP)
		buf = putStr(buf, g.Key.CDN)
		buf = putStr(buf, g.Key.Cluster)
		buf = putUvarint(buf, uint64(len(g.Metrics)))
		for _, m := range g.Metrics {
			buf = putStr(buf, m.Name)
			buf = putUvarint(buf, m.Welford.N)
			buf = putF64(buf, m.Welford.Mean)
			buf = putF64(buf, m.Welford.M2)
			buf = putF64(buf, m.Welford.Min)
			buf = putF64(buf, m.Welford.Max)
		}
	}
	buf = putUvarint(buf, uint64(len(st.Traffic)))
	for _, t := range st.Traffic {
		buf = putStr(buf, t.CDN)
		buf = putWindowed(buf, t.Bits)
		buf = putWindowed(buf, t.Sessions)
	}
	return buf
}

func putWindowed(buf []byte, st agg.WindowedState) []byte {
	buf = putI64(buf, int64(st.BucketDur))
	buf = putUvarint(buf, uint64(len(st.Buckets)))
	for i := range st.Buckets {
		buf = putF64(buf, st.Buckets[i])
		buf = putI64(buf, int64(st.Starts[i]))
	}
	return buf
}

func (q *QoE) DecodeState(p []byte) error {
	r := &reader{b: p}
	var st core.CollectorState
	st.Ingested = r.uvarint("qoe ingested")
	ng := r.uvarint("qoe group count")
	for i := uint64(0); r.err == nil && i < ng; i++ {
		var g core.GroupState
		g.Key.ClientISP = r.str("group isp")
		g.Key.CDN = r.str("group cdn")
		g.Key.Cluster = r.str("group cluster")
		nm := r.uvarint("group metric count")
		for j := uint64(0); r.err == nil && j < nm; j++ {
			var m core.MetricState
			m.Name = r.str("metric name")
			m.Welford.N = r.uvarint("metric n")
			m.Welford.Mean = r.f64("metric mean")
			m.Welford.M2 = r.f64("metric m2")
			m.Welford.Min = r.f64("metric min")
			m.Welford.Max = r.f64("metric max")
			g.Metrics = append(g.Metrics, m)
		}
		st.Groups = append(st.Groups, g)
	}
	nt := r.uvarint("qoe traffic count")
	for i := uint64(0); r.err == nil && i < nt; i++ {
		var t core.TrafficState
		t.CDN = r.str("traffic cdn")
		t.Bits = readWindowed(r, "traffic bits")
		t.Sessions = readWindowed(r, "traffic sessions")
		st.Traffic = append(st.Traffic, t)
	}
	if err := r.done("qoe state"); err != nil {
		return err
	}
	q.Reset()
	return q.col.ImportState(st)
}

func readWindowed(r *reader, what string) agg.WindowedState {
	var st agg.WindowedState
	st.BucketDur = time.Duration(r.i64(what + " bucket duration"))
	n := r.uvarint(what + " bucket count")
	if r.err == nil && n > uint64(len(r.b))/16+1 {
		r.fail(what + " buckets")
	}
	for i := uint64(0); r.err == nil && i < n; i++ {
		st.Buckets = append(st.Buckets, r.f64(what+" bucket"))
		st.Starts = append(st.Starts, time.Duration(r.i64(what+" bucket start")))
	}
	return st
}
