package projection

import (
	"fmt"

	"eona/internal/journal"
)

// foldStream folds rec.Stream[from:to) into f, dispatching each entry to
// the per-kind slice it indexes. Checkpoint frames are skipped — they are
// commits about the stream, not part of it — but they still occupy stream
// positions, which is what lets a checkpoint's offset index this stream
// directly.
func foldStream(rec *journal.Recovered, f Folder, from, to int) error {
	if from < 0 || to > len(rec.Stream) || from > to {
		return fmt.Errorf("projection: fold range [%d, %d) out of stream bounds [0, %d)", from, to, len(rec.Stream))
	}
	for _, ent := range rec.Stream[from:to] {
		switch ent.Kind {
		case journal.KindTopo:
			if rec.Topo != nil {
				f.FoldTopo(*rec.Topo)
			}
		case journal.KindOp:
			or := rec.Ops[ent.Index]
			f.FoldOp(or.Op, or.Digest)
		case journal.KindNetSnap:
			sr := &rec.Snapshots[ent.Index]
			f.FoldSnapshot(sr.OpIndex, &sr.State)
		case journal.KindFault:
			f.FoldFault(rec.Faults[ent.Index])
		case journal.KindIngest:
			f.FoldIngest(rec.Ingests[ent.Index])
		case journal.KindPoll:
			f.FoldPoll(rec.Polls[ent.Index])
		case journal.KindOpaque:
			f.FoldOpaque()
		case journal.KindCheckpoint:
			// Not folded.
		default:
			return fmt.Errorf("projection: unknown stream record kind %v", ent.Kind)
		}
	}
	return nil
}

// Fold rebuilds f from scratch over the first `offset` stream records —
// the serial reference MaterializeAt is differentially tested against.
func Fold(rec *journal.Recovered, f Folder, offset int) error {
	f.Reset()
	return foldStream(rec, f, 0, offset)
}

// MaterializeAt rebuilds each folder's read model as of stream offset —
// time travel for derived state, the projection counterpart of
// journal.Recovered.MaterializeAt. For each folder the newest checkpoint
// committed at or below offset is decoded and only the gap up to offset is
// folded: O(distance to the nearest checkpoint), not O(offset). Folders
// with no usable checkpoint fold from scratch.
func MaterializeAt(rec *journal.Recovered, offset int, folders ...Folder) error {
	if offset < 0 || offset > len(rec.Stream) {
		return fmt.Errorf("projection: offset %d out of stream bounds [0, %d]", offset, len(rec.Stream))
	}
	for _, f := range folders {
		from := 0
		f.Reset()
		// Checkpoints per name are in append order; take the newest one at
		// or below the target offset.
		cps := rec.Checkpoints[f.Name()]
		for i := len(cps) - 1; i >= 0; i-- {
			if cps[i].Offset <= uint64(offset) {
				if err := f.DecodeState(cps[i].State); err != nil {
					return fmt.Errorf("projection: materialize %q: %w", f.Name(), err)
				}
				from = int(cps[i].Offset)
				break
			}
		}
		if err := foldStream(rec, f, from, offset); err != nil {
			return fmt.Errorf("projection: materialize %q: %w", f.Name(), err)
		}
	}
	return nil
}
