package projection

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"time"

	"eona/internal/core"
	"eona/internal/faults"
	"eona/internal/journal"
	"eona/internal/netsim"
)

// fixtures builds the projection test topologies through the public netsim
// API — the same three shapes the journal crash sweep runs over.
func fixtures() map[string]func() (*netsim.Network, []netsim.Path, netsim.TopoState) {
	build := func(mk func(t *netsim.Topology) []netsim.Path) func() (*netsim.Network, []netsim.Path, netsim.TopoState) {
		return func() (*netsim.Network, []netsim.Path, netsim.TopoState) {
			topo := netsim.NewTopology()
			paths := mk(topo)
			return netsim.NewNetwork(topo), paths, netsim.ExportTopology(topo)
		}
	}
	return map[string]func() (*netsim.Network, []netsim.Path, netsim.TopoState){
		"line": build(func(t *netsim.Topology) []netsim.Path {
			a := t.AddLink("a", "b", 100, time.Millisecond, "")
			b := t.AddLink("b", "c", 80, time.Millisecond, "")
			c := t.AddLink("c", "d", 120, time.Millisecond, "")
			return []netsim.Path{{a, b, c}, {a}, {b, c}}
		}),
		"hub": build(func(t *netsim.Topology) []netsim.Path {
			hub := t.AddLink("hubA", "hubB", 1000, time.Millisecond, "")
			ps := []netsim.Path{{hub}}
			for _, n := range []string{"a", "b", "c", "d"} {
				l := t.AddLink(netsim.NodeID(n), "hubA", 90, time.Millisecond, "")
				ps = append(ps, netsim.Path{l}, netsim.Path{l, hub})
			}
			return ps
		}),
		"mesh": build(func(t *netsim.Topology) []netsim.Path {
			ab := t.AddLink("a", "b", 150, time.Millisecond, "core")
			bc := t.AddLink("b", "c", 60, 2*time.Millisecond, "edge")
			ac := t.AddLink("a", "c", 200, time.Millisecond, "express")
			cd := t.AddLink("c", "d", 90, time.Millisecond, "")
			return []netsim.Path{{ab, bc}, {ac}, {ab, bc, cd}, {ac, cd}, {bc}}
		}),
	}
}

// qoeCfg is the collector configuration every projection test uses; noise
// off so query outputs are directly comparable.
func qoeCfg() core.CollectorConfig {
	return core.CollectorConfig{AppP: "appp-test", Window: 5 * time.Minute, Seed: 42}
}

func newFolders() (*QoE, *Hints, *Engagement, *LinkUtil) {
	return NewQoE(qoeCfg()), NewHints(), NewEngagement(), NewLinkUtil()
}

// synthIngest builds the i'th deterministic session record.
func synthIngest(rng *rand.Rand, i int) core.QoERecord {
	isps := []string{"isp-a", "isp-b"}
	cdns := []string{"cdnX", "cdnY"}
	return core.QoERecord{
		SessionID:       "s-" + string(rune('a'+i%26)),
		Timestamp:       time.Duration(i) * time.Second,
		AppP:            "appp-test",
		ClientISP:       isps[rng.Intn(len(isps))],
		CDN:             cdns[rng.Intn(len(cdns))],
		Cluster:         "c1",
		Score:           40 + 60*rng.Float64(),
		BufferingRatio:  rng.Float64() / 10,
		AvgBitrateBps:   2e6 + 1e6*rng.Float64(),
		StartupDelay:    time.Duration(rng.Intn(3000)) * time.Millisecond,
		PlayTime:        time.Duration(60+rng.Intn(600)) * time.Second,
		BitrateSwitches: rng.Intn(4),
		CDNSwitches:     rng.Intn(2),
		Abandoned:       rng.Intn(8) == 0,
	}
}

// driveProjected journals a seeded mixed workload through an Engine: netsim
// ops from a deterministic SharedNetwork (with periodic snapshots),
// interleaved with ingests, polls and a fault event between commit rounds.
// Returns the live final network.
func driveProjected(t testing.TB, e *Engine, net *netsim.Network, paths []netsim.Path, ts netsim.TopoState, seed int64, rounds, opsPerRound, snapEvery int) *netsim.Network {
	t.Helper()
	if err := e.AppendTopology(ts); err != nil {
		t.Fatal(err)
	}
	s := netsim.NewShared(net, netsim.SharedConfig{
		Deterministic: true, Record: true,
		Journal: e, SnapshotEvery: snapEvery,
	})
	drv := s.Driver(1)
	rng := rand.New(rand.NewSource(seed))
	var handles []*netsim.Flow
	ingested := 0
	for r := 0; r < rounds; r++ {
		for k := 0; k < opsPerRound; k++ {
			op := rng.Intn(6)
			if len(handles) == 0 {
				op = 0
			}
			pi := rng.Intn(len(paths))
			val := float64(1 + rng.Intn(300))
			if rng.Intn(6) == 0 {
				val = math.Inf(1)
			}
			switch op {
			case 0:
				handles = append(handles, drv.StartFlow(paths[pi], val, "proj"))
			case 1:
				drv.StopFlow(handles[rng.Intn(len(handles))])
			case 2:
				drv.SetDemand(handles[rng.Intn(len(handles))], val)
			case 3:
				drv.SetWeight(handles[rng.Intn(len(handles))], float64(1+rng.Intn(4)))
			case 4:
				drv.SetPath(handles[rng.Intn(len(handles))], paths[pi])
			case 5:
				p := paths[pi]
				drv.SetLinkCapacity(p[rng.Intn(len(p))].ID, float64(50+rng.Intn(200)))
			}
		}
		s.Commit() // fence: every op above is journaled and folded
		for k := 0; k < 5; k++ {
			if err := e.AppendIngest(synthIngest(rng, ingested)); err != nil {
				t.Fatal(err)
			}
			ingested++
		}
		if err := e.AppendPoll(journal.PollRecord{
			Source: "peer-" + string(rune('a'+r%3)),
			At:     time.Unix(0, int64(r)*1e9).UTC(),
			Data:   json.RawMessage(`{"round":` + string(rune('0'+r%10)) + `}`),
		}); err != nil {
			t.Fatal(err)
		}
		if r%3 == 1 {
			if err := e.AppendFault(faults.Event{At: time.Duration(r) * time.Second}); err != nil {
				t.Fatal(err)
			}
		}
	}
	final := s.Close()
	if err := s.JournalError(); err != nil {
		t.Fatalf("journal error during drive: %v", err)
	}
	return final
}

// folderDigests snapshots every folder's state fingerprint.
func folderDigests(folders ...Folder) map[string]uint64 {
	out := make(map[string]uint64, len(folders))
	for _, f := range folders {
		out[f.Name()] = StateDigest(f)
	}
	return out
}

// TestResumeEqualsFromScratchFold drives a journaled run on every fixture,
// then rebuilds the read models two ways — checkpoint resume and
// from-scratch fold of the full recovered stream — and requires both equal
// to the live folders bit for bit (state-encoding fingerprints).
func TestResumeEqualsFromScratchFold(t *testing.T) {
	for name, build := range fixtures() {
		build := build
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			w, err := journal.Open(journal.Config{Dir: dir, Sync: journal.SyncNever})
			if err != nil {
				t.Fatal(err)
			}
			qoe, hints, eng, lu := newFolders()
			e, err := NewEngine(Config{Writer: w, CheckpointEvery: 16}, qoe, hints, eng, lu)
			if err != nil {
				t.Fatal(err)
			}
			net, paths, ts := build()
			driveProjected(t, e, net, paths, ts, 7, 6, 8, 8)
			live := folderDigests(qoe, hints, eng, lu)
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			rec, err := journal.Recover(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(rec.Checkpoints) == 0 {
				t.Fatal("no checkpoints recovered; cadence not exercised")
			}

			// Arm 1: checkpoint resume.
			q2, h2, e2, l2 := newFolders()
			eng2, err := NewEngine(Config{}, q2, h2, e2, l2)
			if err != nil {
				t.Fatal(err)
			}
			stats, err := eng2.Resume(rec)
			if err != nil {
				t.Fatal(err)
			}
			for fname, d := range folderDigests(q2, h2, e2, l2) {
				if d != live[fname] {
					t.Errorf("resume: folder %q digest %016x != live %016x", fname, d, live[fname])
				}
				if stats.TailFolded[fname] >= len(rec.Stream) {
					t.Errorf("resume: folder %q refolded the whole stream (%d records); checkpoint unused", fname, stats.TailFolded[fname])
				}
			}

			// Arm 2: from-scratch fold of the full stream.
			q3, h3, e3, l3 := newFolders()
			for _, f := range []Folder{q3, h3, e3, l3} {
				if err := Fold(rec, f, len(rec.Stream)); err != nil {
					t.Fatal(err)
				}
			}
			for fname, d := range folderDigests(q3, h3, e3, l3) {
				if d != live[fname] {
					t.Errorf("from-scratch: folder %q digest %016x != live %016x", fname, d, live[fname])
				}
			}

			// The projected QoE queries must match a collector that ingested
			// the same history directly (same config, noise off).
			col := core.NewA2ICollector(qoeCfg())
			rec.ReplayIngests(col)
			wantSums := col.Summaries()
			gotSums := q2.Summaries()
			if len(wantSums) != len(gotSums) {
				t.Fatalf("projected %d summaries, collector %d", len(gotSums), len(wantSums))
			}
			for i := range wantSums {
				if wantSums[i] != gotSums[i] {
					t.Errorf("summary %d: projected %+v != collector %+v", i, gotSums[i], wantSums[i])
				}
			}
			now := time.Duration(3600) * time.Second
			wantTE, gotTE := col.TrafficEstimates(now), q2.TrafficEstimates(now)
			if len(wantTE) != len(gotTE) {
				t.Fatalf("projected %d traffic estimates, collector %d", len(gotTE), len(wantTE))
			}
			for i := range wantTE {
				if wantTE[i] != gotTE[i] {
					t.Errorf("traffic %d: projected %+v != collector %+v", i, gotTE[i], wantTE[i])
				}
			}
		})
	}
}

// TestMaterializeAtDifferentialSweep probes every op index of a journaled
// run on every fixture: the snapshot-accelerated batched
// journal.MaterializeAt must land on a network digest-identical to a serial
// unbatched prefix replay, and projection.MaterializeAt at every stream
// offset must equal a from-scratch fold to the same offset.
func TestMaterializeAtDifferentialSweep(t *testing.T) {
	for name, build := range fixtures() {
		build := build
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			w, err := journal.Open(journal.Config{Dir: dir, Sync: journal.SyncNever})
			if err != nil {
				t.Fatal(err)
			}
			qoe, hints, eng, lu := newFolders()
			e, err := NewEngine(Config{Writer: w, CheckpointEvery: 16}, qoe, hints, eng, lu)
			if err != nil {
				t.Fatal(err)
			}
			net, paths, ts := build()
			driveProjected(t, e, net, paths, ts, 11, 5, 8, 8)
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			rec, err := journal.Recover(dir)
			if err != nil {
				t.Fatal(err)
			}

			// Network time travel: every op index.
			for op := 0; op <= len(rec.Ops); op++ {
				fast, _, err := rec.MaterializeAt(op)
				if err != nil {
					t.Fatalf("MaterializeAt(%d): %v", op, err)
				}
				slow, err := rec.ReplayPrefix(op)
				if err != nil {
					t.Fatalf("ReplayPrefix(%d): %v", op, err)
				}
				if df, ds := fast.StateDigest(), slow.StateDigest(); df != ds {
					t.Fatalf("op %d: materialized digest %016x != serial prefix %016x", op, df, ds)
				}
			}

			// Read-model time travel: strided stream offsets plus the exact
			// end.
			offsets := []int{}
			for off := 0; off < len(rec.Stream); off += 7 {
				offsets = append(offsets, off)
			}
			offsets = append(offsets, len(rec.Stream))
			q2, h2, e2, l2 := newFolders()
			ref := []Folder{q2, h2, e2, l2}
			q3, h3, e3, l3 := newFolders()
			fast := []Folder{q3, h3, e3, l3}
			for _, off := range offsets {
				if err := MaterializeAt(rec, off, fast...); err != nil {
					t.Fatalf("projection MaterializeAt(%d): %v", off, err)
				}
				for i, f := range ref {
					if err := Fold(rec, f, off); err != nil {
						t.Fatalf("fold to %d: %v", off, err)
					}
					if df, ds := StateDigest(fast[i]), StateDigest(f); df != ds {
						t.Fatalf("offset %d folder %q: materialized %016x != from-scratch %016x", off, f.Name(), df, ds)
					}
				}
			}
		})
	}
}

// TestOpaquePoisonRule: an opaque batch marker latches LinkUtil.Poisoned,
// blocks network materialization past it but not before it, and leaves
// ingest-derived folders untouched.
func TestOpaquePoisonRule(t *testing.T) {
	dir := t.TempDir()
	w, err := journal.Open(journal.Config{Dir: dir, Sync: journal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	qoe, hints, eng, lu := newFolders()
	e, err := NewEngine(Config{Writer: w, CheckpointEvery: 8}, qoe, hints, eng, lu)
	if err != nil {
		t.Fatal(err)
	}
	net, paths, ts := fixtures()["line"]()
	driveProjected(t, e, net, paths, ts, 3, 2, 6, 0)
	if lu.Poisoned() {
		t.Fatal("poisoned before any opaque marker")
	}
	if err := e.AppendOpaque(); err != nil {
		t.Fatal(err)
	}
	if !lu.Poisoned() {
		t.Fatal("opaque marker did not latch Poisoned")
	}
	rng := rand.New(rand.NewSource(99))
	if err := e.AppendIngest(synthIngest(rng, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Opaque {
		t.Fatal("recovery missed the opaque marker")
	}
	if _, _, err := rec.RecoverNetwork(); err == nil {
		t.Fatal("RecoverNetwork must refuse an opaque log")
	}
	// Materialization strictly before the marker stays sound.
	if _, _, err := rec.MaterializeAt(len(rec.Ops)); err != nil {
		t.Fatalf("materialize at the opaque boundary must work: %v", err)
	}
	// Resumed folders reproduce the poison flag and the post-marker ingest.
	q2, h2, e2, l2 := newFolders()
	eng2, err := NewEngine(Config{}, q2, h2, e2, l2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.Resume(rec); err != nil {
		t.Fatal(err)
	}
	if !l2.Poisoned() {
		t.Fatal("resumed LinkUtil lost the poison flag")
	}
	if q2.Ingested() != qoe.Ingested() {
		t.Fatalf("resumed ingest count %d != live %d", q2.Ingested(), qoe.Ingested())
	}
}

// TestCheckpointStateRoundTrip: every folder's encode→decode→encode is
// byte-stable on a populated state — the canonical-encoding property the
// checkpoint fingerprints rely on.
func TestCheckpointStateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := journal.Open(journal.Config{Dir: dir, Sync: journal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	qoe, hints, eng, lu := newFolders()
	e, err := NewEngine(Config{Writer: w}, qoe, hints, eng, lu)
	if err != nil {
		t.Fatal(err)
	}
	net, paths, ts := fixtures()["mesh"]()
	driveProjected(t, e, net, paths, ts, 5, 4, 8, 8)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	fresh := func(name string) Folder {
		q, h, g, l := newFolders()
		switch name {
		case q.Name():
			return q
		case h.Name():
			return h
		case g.Name():
			return g
		default:
			return l
		}
	}
	for _, f := range []Folder{qoe, hints, eng, lu} {
		enc := f.EncodeState(nil)
		g := fresh(f.Name())
		if err := g.DecodeState(enc); err != nil {
			t.Fatalf("%s: decode: %v", f.Name(), err)
		}
		re := g.EncodeState(nil)
		if string(enc) != string(re) {
			t.Fatalf("%s: decode→encode not byte-stable (%d vs %d bytes)", f.Name(), len(enc), len(re))
		}
		// Truncated payloads must fail loudly, never half-decode.
		for _, cut := range []int{0, 1, len(enc) / 2, len(enc) - 1} {
			if cut >= len(enc) {
				continue
			}
			if err := fresh(f.Name()).DecodeState(enc[:cut]); err == nil && cut != 0 {
				// A zero-length prefix can be a legitimately empty state for
				// some folders; any longer strict prefix must error.
				t.Errorf("%s: decode of %d-byte prefix succeeded", f.Name(), cut)
			}
		}
	}
}

// TestProjectedQueryAllocFree pins the projected query path: once the read
// models are warm, group lookups, hint fetches and engagement rows allocate
// nothing.
func TestProjectedQueryAllocFree(t *testing.T) {
	qoe, hints, eng, lu := newFolders()
	e, err := NewEngine(Config{}, qoe, hints, eng, lu)
	if err != nil {
		t.Fatal(err)
	}
	net, paths, ts := fixtures()["line"]()
	driveProjected(t, e, net, paths, ts, 13, 4, 8, 8)

	key := core.SummaryKey{ClientISP: "isp-a", CDN: "cdnX", Cluster: "c1"}
	if _, ok := qoe.SummaryFor(key); !ok {
		t.Fatalf("warmup: group %+v not present", key)
	}
	var sink float64
	query := func() {
		s, _ := qoe.SummaryFor(key)
		row, _ := eng.Row("isp-a")
		pr, _ := hints.Latest("peer-a")
		sink = s.MeanScore + row.PlaySeconds + float64(len(pr.Data)) + float64(lu.Ops())
	}
	query()
	if a := testing.AllocsPerRun(500, query); a != 0 {
		t.Errorf("projected query path allocates %v allocs/op, want 0 (sink %v)", a, sink)
	}
}

// TestEngineErrLatching: appends keep folding after the writer dies; Err
// surfaces the latched write error.
func TestEngineErrLatching(t *testing.T) {
	dir := t.TempDir()
	w, err := journal.Open(journal.Config{Dir: dir, Sync: journal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	qoe, _, _, _ := newFolders()
	e, err := NewEngine(Config{Writer: w}, qoe)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	_ = e.AppendIngest(synthIngest(rng, 0))
	if qoe.Ingested() != 1 {
		t.Fatalf("fold skipped on write error: ingested %d", qoe.Ingested())
	}
	if e.Err() == nil {
		t.Fatal("writer error not surfaced")
	}
}
