package projection

import "eona/internal/core"

// EngagementRow is one ISP's accumulated engagement: the paper's core
// observation is that delivery quality drives engagement (play time,
// abandonment), so the engagement projection keeps exactly the per-ISP
// engagement surface an AppP watches to decide where quality problems are
// costing it viewers.
type EngagementRow struct {
	ISP         string
	Sessions    uint64
	PlaySeconds float64
	ScoreSum    float64
	Abandoned   uint64
	Switches    uint64 // bitrate + CDN switches, a quality-instability proxy
}

// MeanScore returns the ISP's mean session score (0 when empty).
func (e EngagementRow) MeanScore() float64 {
	if e.Sessions == 0 {
		return 0
	}
	return e.ScoreSum / float64(e.Sessions)
}

// AbandonRate returns the fraction of sessions abandoned (0 when empty).
func (e EngagementRow) AbandonRate() float64 {
	if e.Sessions == 0 {
		return 0
	}
	return float64(e.Abandoned) / float64(e.Sessions)
}

// Engagement is the per-ISP engagement read model, folded from ingest
// records. ISPs are kept in first-observation order for a deterministic
// encoding.
type Engagement struct {
	Base
	rows  map[string]*EngagementRow
	order []string
}

// NewEngagement builds an empty engagement projection.
func NewEngagement() *Engagement {
	e := &Engagement{}
	e.Reset()
	return e
}

func (e *Engagement) Name() string { return "engagement" }

func (e *Engagement) Reset() {
	e.rows = make(map[string]*EngagementRow)
	e.order = e.order[:0]
}

func (e *Engagement) FoldIngest(rec core.QoERecord) {
	row, ok := e.rows[rec.ClientISP]
	if !ok {
		row = &EngagementRow{ISP: rec.ClientISP}
		e.rows[rec.ClientISP] = row
		e.order = append(e.order, rec.ClientISP)
	}
	row.Sessions++
	row.PlaySeconds += rec.PlayTime.Seconds()
	row.ScoreSum += rec.Score
	if rec.Abandoned {
		row.Abandoned++
	}
	row.Switches += uint64(rec.BitrateSwitches) + uint64(rec.CDNSwitches)
}

// Row returns one ISP's engagement, an O(1) lookup.
func (e *Engagement) Row(isp string) (EngagementRow, bool) {
	row, ok := e.rows[isp]
	if !ok {
		return EngagementRow{}, false
	}
	return *row, true
}

// Rows returns every ISP's engagement in first-observation order.
func (e *Engagement) Rows() []EngagementRow {
	out := make([]EngagementRow, 0, len(e.order))
	for _, isp := range e.order {
		out = append(out, *e.rows[isp])
	}
	return out
}

func (e *Engagement) EncodeState(buf []byte) []byte {
	buf = putUvarint(buf, uint64(len(e.order)))
	for _, isp := range e.order {
		row := e.rows[isp]
		buf = putStr(buf, isp)
		buf = putUvarint(buf, row.Sessions)
		buf = putF64(buf, row.PlaySeconds)
		buf = putF64(buf, row.ScoreSum)
		buf = putUvarint(buf, row.Abandoned)
		buf = putUvarint(buf, row.Switches)
	}
	return buf
}

func (e *Engagement) DecodeState(p []byte) error {
	r := &reader{b: p}
	n := r.uvarint("engagement row count")
	rows := make(map[string]*EngagementRow, n)
	var order []string
	for i := uint64(0); r.err == nil && i < n; i++ {
		row := &EngagementRow{}
		row.ISP = r.str("engagement isp")
		row.Sessions = r.uvarint("engagement sessions")
		row.PlaySeconds = r.f64("engagement play seconds")
		row.ScoreSum = r.f64("engagement score sum")
		row.Abandoned = r.uvarint("engagement abandoned")
		row.Switches = r.uvarint("engagement switches")
		rows[row.ISP] = row
		order = append(order, row.ISP)
	}
	if err := r.done("engagement state"); err != nil {
		return err
	}
	e.rows, e.order = rows, order
	return nil
}
