package projection

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Checkpoint state codecs are binary for the same reason the journal's op
// records are: aggregator state routinely carries values JSON cannot
// (±Inf demands in link-utilization inputs), and a canonical byte encoding
// is what makes state digests meaningful — encode(decode(p)) == p, so a
// folder's Fingerprint can be compared across processes. Varints for
// counts, fixed 8-byte little-endian for float bits.

// reader walks a checkpoint payload; the first malformed field latches err
// and later reads return zeros, so decoders check once at the end. Mirrors
// the journal's frame-payload reader (unexported there).
type reader struct {
	b   []byte
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("projection: truncated or malformed %s", what)
	}
}

func (r *reader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) u64(what string) uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *reader) i64(what string) int64   { return int64(r.u64(what)) }
func (r *reader) f64(what string) float64 { return math.Float64frombits(r.u64(what)) }

func (r *reader) str(what string) string {
	n := r.uvarint(what)
	if r.err != nil {
		return ""
	}
	if uint64(len(r.b)) < n {
		r.fail(what)
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *reader) bytes(what string) []byte {
	n := r.uvarint(what)
	if r.err != nil {
		return nil
	}
	if uint64(len(r.b)) < n {
		r.fail(what)
		return nil
	}
	b := append([]byte(nil), r.b[:n]...)
	r.b = r.b[n:]
	return b
}

func (r *reader) done(what string) error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("projection: %d trailing bytes after %s", len(r.b), what)
	}
	return nil
}

func putUvarint(buf []byte, v uint64) []byte { return binary.AppendUvarint(buf, v) }
func putU64(buf []byte, v uint64) []byte     { return binary.LittleEndian.AppendUint64(buf, v) }
func putI64(buf []byte, v int64) []byte      { return putU64(buf, uint64(v)) }
func putF64(buf []byte, v float64) []byte    { return putU64(buf, math.Float64bits(v)) }

func putStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func putBytes(buf, p []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(p)))
	return append(buf, p...)
}
